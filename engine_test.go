package parbitonic

import (
	"context"
	"math/rand"
	"testing"

	"parbitonic/internal/spmd"
)

// TestEngineReuse runs many sorts of varying sizes and contents
// through ONE engine per backend and checks every output against the
// standard library — the pooled-engine contract internal/serve relies
// on: construction once, correct results forever after.
func TestEngineReuse(t *testing.T) {
	for _, backend := range []Backend{Simulated, Native} {
		for _, alg := range []Algorithm{SmartBitonic, SampleSort} {
			e, err := NewEngine(Config{Processors: 4, Algorithm: alg, Backend: backend})
			if err != nil {
				t.Fatalf("%v/%v: NewEngine: %v", backend, alg, err)
			}
			rng := rand.New(rand.NewSource(42))
			for run, n := range []int{64, 256, 64, 1024, 32, 256} {
				keys := make([]uint32, n)
				for i := range keys {
					keys[i] = rng.Uint32()
				}
				ref := sortedRef(keys)
				if _, err := e.Sort(keys); err != nil {
					t.Fatalf("%v/%v run %d: %v", backend, alg, run, err)
				}
				for i := range keys {
					if keys[i] != ref[i] {
						t.Fatalf("%v/%v run %d: output diverges from reference at %d", backend, alg, run, i)
					}
				}
			}
		}
	}
}

// TestEngineReuseAfterFailure checks a pooled engine survives an
// aborted run: a pre-canceled context fails fast with the typed error,
// and the very next sort on the same engine is correct (the staging
// recycler must not resurrect slices the abort left in limbo).
func TestEngineReuseAfterFailure(t *testing.T) {
	for _, backend := range []Backend{Simulated, Native} {
		e, err := NewEngine(Config{Processors: 4, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint32, 256)
		for i := range keys {
			keys[i] = uint32(len(keys) - i)
		}
		// Warm the staging recycler with a successful run first.
		if _, err := e.Sort(keys); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.SortContext(ctx, keys); err == nil {
			t.Fatalf("%v: canceled sort succeeded", backend)
		}
		for i := range keys {
			keys[i] = uint32(i % 37)
		}
		ref := sortedRef(keys)
		if _, err := e.Sort(keys); err != nil {
			t.Fatalf("%v: sort after failure: %v", backend, err)
		}
		for i := range keys {
			if keys[i] != ref[i] {
				t.Fatalf("%v: post-failure output wrong at %d", backend, i)
			}
		}
		_ = spmd.ErrCanceled // typed-error documentation anchor
	}
}

// TestSortPaddedNoRetention is the regression test for the pooled
// SortPadded staging buffer: results must be copied out, never
// returned as views into the engine's recycled padBuf, so a later
// padded sort on the same engine cannot corrupt an earlier result.
func TestSortPaddedNoRetention(t *testing.T) {
	e, err := NewEngine(Config{Processors: 4, Backend: Native})
	if err != nil {
		t.Fatal(err)
	}
	first := []uint32{9, 3, 7, 1, 8, 2, 6} // odd length forces padding
	want := sortedRef(first)
	if _, err := e.SortPadded(first); err != nil {
		t.Fatal(err)
	}
	if len(e.padBuf) == 0 {
		t.Fatal("padded run did not use the engine's recycled buffer")
	}
	if &first[0] == &e.padBuf[0] {
		t.Fatal("SortPadded returned a view into the recycled pad buffer")
	}
	// Scribble over the recycled buffer the way the next pooled request
	// would: if the first result aliased it, this corrupts the result.
	second := make([]uint32, 100)
	for i := range second {
		second[i] = uint32(1000 + i%13)
	}
	if _, err := e.SortPadded(second); err != nil {
		t.Fatal(err)
	}
	for i := range e.padBuf {
		e.padBuf[i] = 0xDEAD
	}
	for i := range first {
		if first[i] != want[i] {
			t.Fatalf("first result corrupted by pooled reuse at %d: got %d want %d", i, first[i], want[i])
		}
	}
}

// TestPaddedSize pins the padded-shape contract batching layers build
// buffers against.
func TestPaddedSize(t *testing.T) {
	cases := []struct{ keys, p, want int }{
		{1, 1, 1},
		{3, 1, 4},
		{1, 4, 8},   // minimum 2 keys per processor
		{7, 4, 8},   // rounds to share 2
		{9, 4, 16},  // share 4 after ceil-div
		{64, 4, 64}, // already exact
		{65, 4, 128},
	}
	for _, c := range cases {
		if got := PaddedSize(c.keys, c.p); got != c.want {
			t.Errorf("PaddedSize(%d, %d) = %d, want %d", c.keys, c.p, got, c.want)
		}
	}
}

// BenchmarkEngineReuse quantifies what pooling buys: the same 1k-key
// request sorted through one long-lived engine vs paying engine
// construction per request (the EXPERIMENTS.md batching baseline).
func BenchmarkEngineReuse(b *testing.B) {
	const n = 1024
	cfg := Config{Processors: 4, Backend: Native}
	src := make([]uint32, n)
	rng := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = rng.Uint32()
	}
	keys := make([]uint32, n)

	b.Run("pooled-engine", func(b *testing.B) {
		e, err := NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(keys, src)
			if _, err := e.Sort(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-request-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(keys, src)
			if _, err := Sort(keys, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
