package parbitonic_test

import (
	"slices"
	"testing"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/workload"
)

// The tests in this file cover the shared-memory fast path: the native
// backend's zero-copy DirectRemap (internal/spmd/direct.go), the
// in-place P=1 engine path, and the overhauled localsort kernels, for
// every element type rather than only uint32 (backend_test.go).
//
// Shape note: with P processors the Smart algorithm takes the fused
// FullSort path when lgP(lgP+1)/2 <= lg(N/P); DirectRemap runs on the
// optimized path (tall P, small N/P) and on every remap of the
// cyclic-blocked and blocked-merge baselines. The shapes below are
// chosen so both regimes are exercised.

// checkSortedPerm fails the test unless out is non-decreasing under
// less and is a multiset permutation of in under the total order total
// (which must refine less). This is the right contract for KV64: the
// sort orders by K alone, so records with equal keys may legally appear
// in any payload order.
func checkSortedPerm[E element.Elem](t *testing.T, in, out []E, less, total func(a, b E) bool) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("length changed: in %d, out %d", len(in), len(out))
	}
	for i := 1; i < len(out); i++ {
		if less(out[i], out[i-1]) {
			t.Fatalf("output not sorted at %d: %v after %v", i, out[i], out[i-1])
		}
	}
	a := slices.Clone(in)
	b := slices.Clone(out)
	slices.SortFunc(a, func(x, y E) int {
		if total(x, y) {
			return -1
		}
		if total(y, x) {
			return 1
		}
		return 0
	})
	slices.SortFunc(b, func(x, y E) int {
		if total(x, y) {
			return -1
		}
		if total(y, x) {
			return 1
		}
		return 0
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output is not a permutation of input (first diff at canonical index %d: %v vs %v)", i, a[i], b[i])
		}
	}
}

func runTypedNative[E element.Elem](t *testing.T, less, total func(a, b E) bool) {
	t.Helper()
	shapes := []struct{ p, n int }{
		{1, 256}, // in-place single-proc fast path
		{2, 128}, // FullSort regime
		{8, 64},  // baselines remap every round
		{8, 16},  // optimized Smart regime: DirectRemap on the smart path
		{16, 32}, // tall machine, tiny blocks
	}
	algs := []parbitonic.Algorithm{
		parbitonic.SmartBitonic,
		parbitonic.CyclicBlockedBitonic,
		parbitonic.BlockedMergeBitonic,
	}
	dists := []workload.Dist{workload.Uniform31, workload.FewDistinct, workload.Reverse}
	for _, sh := range shapes {
		for _, alg := range algs {
			if alg == parbitonic.CyclicBlockedBitonic && sh.n < sh.p*sh.p {
				continue // cyclic-blocked requires N >= P^2 (§2.3)
			}
			for _, d := range dists {
				in := workload.Elems[E](d, sh.n, uint64(sh.p*1000+sh.n)+uint64(d))
				keys := slices.Clone(in)
				cfg := parbitonic.Config{
					Processors: sh.p,
					Algorithm:  alg,
					Backend:    parbitonic.Native,
					Verify:     true,
				}
				if _, err := parbitonic.Sort(keys, cfg); err != nil {
					t.Fatalf("p=%d n=%d %v %v: %v", sh.p, sh.n, alg, d, err)
				}
				checkSortedPerm(t, in, keys, less, total)
			}
		}
	}
}

// TestNativeTypedMatchesReference proves the native fast path sorts
// correctly for all five element types, against an independent
// reference order, across machine shapes that hit the in-place P=1
// path, the FullSort regime, and the DirectRemap regime.
func TestNativeTypedMatchesReference(t *testing.T) {
	lt := func(a, b uint32) bool { return a < b }
	t.Run("u32", func(t *testing.T) { runTypedNative(t, lt, lt) })
	lt64 := func(a, b uint64) bool { return a < b }
	t.Run("u64", func(t *testing.T) { runTypedNative(t, lt64, lt64) })
	ltf32 := func(a, b float32) bool { return a < b }
	t.Run("f32", func(t *testing.T) { runTypedNative(t, ltf32, ltf32) })
	ltf64 := func(a, b float64) bool { return a < b }
	t.Run("f64", func(t *testing.T) { runTypedNative(t, ltf64, ltf64) })
	t.Run("kv64", func(t *testing.T) {
		less := func(a, b element.KV64) bool { return a.K < b.K }
		total := func(a, b element.KV64) bool {
			if a.K != b.K {
				return a.K < b.K
			}
			return a.V < b.V
		}
		runTypedNative(t, less, total)
	})
}

// TestNativeSimulatedIdentical is the seam test for the zero-copy
// remap: the simulator runs the packed RemapExchange, the native
// backend runs DirectRemap, and since the bitonic network is
// data-oblivious and both paths realize the same permutation, the two
// backends must produce element-for-element identical output — payload
// order of tied KV64 records included. It also checks the §3.4
// communication counters agree, since DirectRemap charges
// packed-path-parity volumes and message counts.
func TestNativeSimulatedIdentical(t *testing.T) {
	shapes := []struct{ p, n int }{{8, 16}, {8, 64}, {16, 32}, {4, 256}}
	algs := []parbitonic.Algorithm{
		parbitonic.SmartBitonic,
		parbitonic.CyclicBlockedBitonic,
		parbitonic.BlockedMergeBitonic,
	}
	for _, sh := range shapes {
		for _, alg := range algs {
			if alg == parbitonic.CyclicBlockedBitonic && sh.n < sh.p*sh.p {
				continue // cyclic-blocked requires N >= P^2 (§2.3)
			}
			in := workload.Elems[element.KV64](workload.FewDistinct, sh.n, uint64(31*sh.p+sh.n))
			sim := slices.Clone(in)
			nat := slices.Clone(in)
			// FusePackUnpack on the simulated Smart run so the simulator
			// picks the same compute mode the native backend forces;
			// otherwise FullSort vs optimized merge tied payloads in a
			// different (equally valid) order. The baselines reject the
			// flag and have a single compute mode anyway.
			simRes, err := parbitonic.Sort(sim, parbitonic.Config{
				Processors: sh.p, Algorithm: alg, Verify: true,
				FusePackUnpack: alg == parbitonic.SmartBitonic,
			})
			if err != nil {
				t.Fatalf("simulated p=%d n=%d %v: %v", sh.p, sh.n, alg, err)
			}
			natRes, err := parbitonic.Sort(nat, parbitonic.Config{
				Processors: sh.p, Algorithm: alg, Backend: parbitonic.Native, Verify: true,
			})
			if err != nil {
				t.Fatalf("native p=%d n=%d %v: %v", sh.p, sh.n, alg, err)
			}
			for i := range sim {
				if sim[i] != nat[i] {
					t.Fatalf("p=%d n=%d %v: outputs diverge at %d: simulated %v, native %v",
						sh.p, sh.n, alg, i, sim[i], nat[i])
				}
			}
			if simRes.Remaps != natRes.Remaps ||
				simRes.VolumeSent != natRes.VolumeSent ||
				simRes.MessagesSent != natRes.MessagesSent {
				t.Errorf("p=%d n=%d %v: counters diverge: simulated R=%d V=%d M=%d, native R=%d V=%d M=%d",
					sh.p, sh.n, alg,
					simRes.Remaps, simRes.VolumeSent, simRes.MessagesSent,
					natRes.Remaps, natRes.VolumeSent, natRes.MessagesSent)
			}
		}
	}
}

// TestDirectRemapHammer re-runs native sorts through a reused engine so
// the buffer pool recycles DirectRemap arrays across runs. Under -race
// this hammers the ownership hand-off: a buffer released to the pool
// before its consumers' barrier, or a diagonal slot cleared early,
// shows up as a data race or a verification failure.
func TestDirectRemapHammer(t *testing.T) {
	cases := []struct {
		p, n int
		alg  parbitonic.Algorithm
	}{
		{8, 16, parbitonic.SmartBitonic},          // optimized path DirectRemaps
		{8, 512, parbitonic.CyclicBlockedBitonic}, // both conversion remaps direct
		{8, 512, parbitonic.BlockedMergeBitonic},  // PairExchange + deferred spare recycling
	}
	const reps = 30
	for _, c := range cases {
		e, err := parbitonic.NewEngineOf[element.KV64](parbitonic.Config{
			Processors: c.p, Algorithm: c.alg, Backend: parbitonic.Native, Verify: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", c.alg, err)
		}
		for r := 0; r < reps; r++ {
			keys := workload.Elems[element.KV64](workload.FullRange, c.n, uint64(r+1))
			if _, err := e.Sort(keys); err != nil {
				t.Fatalf("%v rep %d: %v", c.alg, r, err)
			}
		}
	}
}
