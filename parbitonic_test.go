package parbitonic

import (
	"sort"
	"testing"
	"testing/quick"

	"parbitonic/internal/workload"
)

func sortedRef(keys []uint32) []uint32 {
	out := append([]uint32(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func allAlgorithms() []Algorithm {
	return []Algorithm{SmartBitonic, CyclicBlockedBitonic, BlockedMergeBitonic, SampleSort, RadixSort}
}

func TestSortAllAlgorithms(t *testing.T) {
	for _, alg := range allAlgorithms() {
		for _, p := range []int{1, 2, 8, 16} {
			keys := workload.Keys(workload.Uniform31, p*256, 11)
			want := sortedRef(keys)
			res, err := Sort(keys, Config{Processors: p, Algorithm: alg})
			if err != nil {
				t.Fatalf("%v P=%d: %v", alg, p, err)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("%v P=%d: wrong key at %d", alg, p, i)
				}
			}
			if res.Keys != p*256 || res.Time <= 0 {
				t.Errorf("%v P=%d: suspicious result %+v", alg, p, res)
			}
			if res.TimePerKey() <= 0 {
				t.Errorf("%v: TimePerKey %v", alg, res.TimePerKey())
			}
		}
	}
}

func TestSortValidation(t *testing.T) {
	keys := make([]uint32, 64)
	cases := []Config{
		{Processors: 0},
		{Processors: 3},
		{Processors: 128}, // 64 keys over 128 procs
		{Processors: 4, Algorithm: Algorithm(99)},         // unknown algorithm
		{Processors: 16, Algorithm: CyclicBlockedBitonic}, // n=4 < P=16
	}
	for i, cfg := range cases {
		if _, err := Sort(keys, cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
	if _, err := Sort[uint32](nil, Config{Processors: 1}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Sort(make([]uint32, 48), Config{Processors: 4}); err == nil {
		t.Error("non-power-of-two share should fail")
	}
}

func TestConfigKnobs(t *testing.T) {
	keys := workload.Keys(workload.Uniform31, 16*1024, 3)
	long, err := Sort(append([]uint32(nil), keys...), Config{Processors: 16})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Sort(append([]uint32(nil), keys...), Config{Processors: 16, ShortMessages: true})
	if err != nil {
		t.Fatal(err)
	}
	if long.Time >= short.Time {
		t.Errorf("long messages should win: %v vs %v", long.Time, short.Time)
	}
	fused, err := Sort(append([]uint32(nil), keys...), Config{Processors: 16, FusePackUnpack: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.PackTime != 0 || fused.UnpackTime != 0 {
		t.Error("fused run should report zero pack/unpack time")
	}
	sim, err := Sort(append([]uint32(nil), keys...), Config{Processors: 16, SimulateSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.ComputeTime <= long.ComputeTime {
		t.Errorf("simulated steps should cost more compute: %v vs %v", sim.ComputeTime, long.ComputeTime)
	}
	custom := &ModelParams{L: 1, O: 0.5, Gap: 2, GKey: 0.1, ShortKey: 3}
	res, err := Sort(append([]uint32(nil), keys...), Config{Processors: 16, Model: custom})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferTime >= long.TransferTime {
		t.Errorf("cheaper model should lower transfer time: %v vs %v", res.TransferTime, long.TransferTime)
	}
}

func TestBitonicUtilities(t *testing.T) {
	s := []uint32{3, 5, 9, 7, 2, 1}
	if !IsBitonic(s) {
		t.Error("rise-then-fall should be bitonic")
	}
	if IsBitonic([]uint32{1, 5, 2, 6, 3}) {
		t.Error("zigzag should not be bitonic")
	}
	if i := MinIndexBitonic(s); s[i] != 1 {
		t.Errorf("MinIndexBitonic found %d", s[i])
	}
	dst := make([]uint32, len(s))
	SortBitonicSequence(dst, s, true)
	for i := 1; i < len(dst); i++ {
		if dst[i-1] > dst[i] {
			t.Fatalf("not sorted: %v", dst)
		}
	}
}

func TestSmartScheduleFacade(t *testing.T) {
	infos := SmartSchedule(8, 4) // the paper's N=256, P=16 example
	if len(infos) != 7 {
		t.Fatalf("expected 7 remaps, got %d", len(infos))
	}
	wantBits := []int{1, 2, 3, 3, 4, 4, 2}
	for i, info := range infos {
		if info.BitsChanged != wantBits[i] {
			t.Errorf("remap %d: %d bits, want %d", i, info.BitsChanged, wantBits[i])
		}
		if len(info.BitPattern) != 8 {
			t.Errorf("remap %d: bad pattern %q", i, info.BitPattern)
		}
	}
	if infos[0].Kind != "inside" || infos[1].Kind != "crossing" || infos[6].Kind != "last" {
		t.Errorf("unexpected kinds: %v %v %v", infos[0].Kind, infos[1].Kind, infos[6].Kind)
	}
}

func TestPredictFacade(t *testing.T) {
	preds := Predict(20, 4, false, nil)
	if len(preds) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(preds))
	}
	byName := map[string]Prediction{}
	for _, p := range preds {
		byName[p.Strategy] = p
	}
	sm, cb := byName["smart"], byName["cyclic-blocked"]
	if !(sm.Remaps < cb.Remaps && sm.Volume < cb.Volume && sm.CommTime < cb.CommTime) {
		t.Errorf("smart should dominate cyclic-blocked under LogP: %+v vs %+v", sm, cb)
	}
	predsLong := Predict(20, 1, true, nil)
	for _, p := range predsLong {
		if p.CommTime <= 0 {
			t.Errorf("nonpositive predicted time: %+v", p)
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range allAlgorithms() {
		s := a.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("bad name for %d: %q", int(a), s)
		}
		seen[s] = true
	}
	if Algorithm(99).String() != "unknown" {
		t.Error("fallback name broken")
	}
}

func TestQuickPublicSort(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		p := 1 << uint(rng.Intn(4))
		n := 1 << uint(3+rng.Intn(5))
		alg := allAlgorithms()[rng.Intn(5)]
		if alg == CyclicBlockedBitonic && n < p {
			alg = SmartBitonic
		}
		dist := workload.Dists()[rng.Intn(len(workload.Dists()))]
		keys := workload.Keys(dist, p*n, seed)
		want := sortedRef(keys)
		if _, err := Sort(keys, Config{Processors: p, Algorithm: alg}); err != nil {
			return false
		}
		for i := range want {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSortPadded(t *testing.T) {
	for _, count := range []int{1, 5, 63, 100, 1000, 1024} {
		keys := workload.Keys(workload.FullRange, count, 9)
		want := sortedRef(keys)
		res, err := SortPadded(keys, Config{Processors: 8})
		if err != nil {
			t.Fatalf("count=%d: %v", count, err)
		}
		if len(keys) != count {
			t.Fatalf("count=%d: length changed to %d", count, len(keys))
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("count=%d: wrong key at %d", count, i)
			}
		}
		if res.Keys < count {
			t.Fatalf("count=%d: padded run sorted fewer keys (%d)", count, res.Keys)
		}
	}
	// Maximal keys in the input must survive padding.
	keys := []uint32{^uint32(0), 5, ^uint32(0)}
	if _, err := SortPadded(keys, Config{Processors: 2}); err != nil {
		t.Fatal(err)
	}
	if keys[0] != 5 || keys[1] != ^uint32(0) || keys[2] != ^uint32(0) {
		t.Fatalf("maximal keys lost: %v", keys)
	}
	if _, err := SortPadded[uint32](nil, Config{Processors: 2}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := SortPadded(make([]uint32, 4), Config{Processors: 3}); err == nil {
		t.Error("bad P should error")
	}
}

func TestTraceThroughFacade(t *testing.T) {
	rec := new(TraceRecorder)
	keys := workload.Keys(workload.Uniform31, 4096, 2)
	if _, err := Sort(keys, Config{Processors: 8, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("facade trace recorded nothing")
	}
	if rec.WaitShare() < 0 || rec.WaitShare() > 1 {
		t.Fatalf("wait share %v out of range", rec.WaitShare())
	}
}

func TestRemapStrategies(t *testing.T) {
	keys := workload.Keys(workload.Uniform31, 16*1024, 4)
	var volumes []int
	for _, strat := range []RemapStrategy{HeadRemap, TailRemap, MiddleRemap1, MiddleRemap2} {
		work := append([]uint32(nil), keys...)
		res, err := Sort(work, Config{Processors: 16, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		want := sortedRef(keys)
		for i := range want {
			if work[i] != want[i] {
				t.Fatalf("strategy %v did not sort", strat)
			}
		}
		volumes = append(volumes, res.VolumeSent)
	}
	// Lemma 5 as measured through the public API.
	if volumes[1] > volumes[0] {
		t.Errorf("tail volume %d exceeds head %d", volumes[1], volumes[0])
	}
	if volumes[2] < volumes[0] {
		t.Errorf("middle1 volume %d below head %d", volumes[2], volumes[0])
	}
}
