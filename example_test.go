package parbitonic_test

import (
	"fmt"

	"parbitonic"
)

// Sorting with the paper's smart bitonic sort on a simulated 8-processor
// machine.
func ExampleSort() {
	keys := []uint32{7, 3, 1, 4, 0, 6, 5, 2, 15, 11, 9, 12, 8, 14, 13, 10}
	res, err := parbitonic.Sort(keys, parbitonic.Config{Processors: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println(keys)
	fmt.Println("remaps per processor:", res.Remaps)
	// Output:
	// [0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15]
	// remaps per processor: 9
}

// The smart remap schedule for the paper's running example: N=256 keys
// on P=16 processors (Figures 3.3 and 3.4). Note the changed-bit
// sequence 1 2 3 3 4 4 2.
func ExampleSmartSchedule() {
	for _, r := range parbitonic.SmartSchedule(8, 4) {
		fmt.Printf("stage %d step %d: %-8s bits=%d %s\n", r.Stage, r.Step, r.Kind, r.BitsChanged, r.BitPattern)
	}
	// Output:
	// stage 5 step 5: inside   bits=1 PPPLLLLP
	// stage 5 step 1: crossing bits=2 PPLLLPPL
	// stage 6 step 3: crossing bits=3 PLPPPLLL
	// stage 7 step 6: inside   bits=3 PPLLLLPP
	// stage 7 step 2: crossing bits=4 LLPPPPLL
	// stage 8 step 6: inside   bits=4 PPLLLLPP
	// stage 8 step 2: last     bits=2 PPPPLLLL
}

// The §3.4 analysis: communication metrics of the three remapping
// strategies for 1M keys on 16 processors.
func ExamplePredict() {
	for _, p := range parbitonic.Predict(20, 4, false, nil) {
		fmt.Printf("%-14s R=%-2d V=%d\n", p.Strategy, p.Remaps, p.Volume)
	}
	// Output:
	// blocked        R=10 V=655360
	// cyclic-blocked R=8  V=491520
	// smart          R=5  V=262144
}

// Sorting a bitonic sequence in linear time (Lemma 9), after locating
// its minimum in logarithmic time (Algorithm 2).
func ExampleSortBitonicSequence() {
	bitonic := []uint32{4, 7, 9, 12, 10, 5, 2, 1}
	fmt.Println("bitonic:", parbitonic.IsBitonic(bitonic))
	fmt.Println("min at index:", parbitonic.MinIndexBitonic(bitonic))
	sorted := make([]uint32, len(bitonic))
	parbitonic.SortBitonicSequence(sorted, bitonic, true)
	fmt.Println(sorted)
	// Output:
	// bitonic: true
	// min at index: 7
	// [1 2 4 5 7 9 10 12]
}
