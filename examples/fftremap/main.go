// Fftremap demonstrates the thesis's closing "future work" claim: the
// smart-remap technique applies beyond sorting to any butterfly
// computation, FFT included. Here a distributed number-theoretic
// transform (an exact FFT over Z_p) runs with the same layout/remap
// machinery as the sort: lg n butterfly steps execute locally between
// remaps, needing only ceil(lgP / lg n) + 1 remaps instead of lg P
// pairwise exchange steps.
package main

import (
	"fmt"
	"log"

	"parbitonic/internal/machine"
	"parbitonic/internal/ntt"
	"parbitonic/internal/workload"
)

func main() {
	const (
		p   = 16
		lgn = 12
		n   = 1 << lgn
	)
	rng := workload.NewRNG(2024)
	points := make([]uint32, p*n)
	for i := range points {
		points[i] = rng.Uint32() % ntt.Modulus
	}

	// Distributed forward transform + inverse = identity.
	deal := func() [][]uint32 {
		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), points[i*n:(i+1)*n]...)
		}
		return data
	}
	m, err := machine.New(machine.DefaultConfig(p))
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := ntt.ParallelForward(m, deal())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ntt.ParallelInverse(m, m.Data()); err != nil {
		log.Fatal(err)
	}
	back := m.Data()
	for i := 0; i < p; i++ {
		for j := 0; j < n; j++ {
			if back[i][j] != points[i*n+j] {
				log.Fatalf("roundtrip mismatch at proc %d index %d", i, j)
			}
		}
	}
	fmt.Printf("%d-point distributed NTT on %d processors: forward+inverse = identity\n", p*n, p)

	fmt.Println("\nLayout chain for the forward butterfly (each covers lg n steps):")
	for i, l := range ntt.LayoutChain(lgn+4, 4) {
		fmt.Printf("  chunk %d: %s\n", i, l)
	}

	m2, err := machine.New(machine.DefaultConfig(p))
	if err != nil {
		log.Fatal(err)
	}
	blocked, err := ntt.BlockedForward(m2, deal())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommunication, remapped vs fixed-blocked butterfly (per processor):\n")
	fmt.Printf("  remapped: %d remaps, %d points moved\n", fwd.Mean.Remaps, fwd.Mean.VolumeSent)
	fmt.Printf("  blocked:  %d exchange steps, %d points moved\n", blocked.Mean.MessagesSent, blocked.Mean.VolumeSent)
	fmt.Printf("  volume ratio %.2fx in favour of remapping — the same effect the\n",
		float64(blocked.Mean.VolumeSent)/float64(fwd.Mean.VolumeSent))
	fmt.Println("  thesis exploits for bitonic sort, transplanted to the FFT.")
}
