// Sortrace races the paper's smart bitonic sort against parallel radix
// sort and parallel sample sort (§5.5) over several input
// distributions, showing the paper's qualitative conclusions:
//
//   - sample sort is fastest on well-distributed keys,
//   - bitonic sort beats radix sort at small per-processor counts,
//   - bitonic sort is oblivious to the distribution, while sample
//     sort's balance (and therefore speed) collapses on low-entropy
//     inputs.
package main

import (
	"fmt"
	"log"

	"parbitonic"
	"parbitonic/internal/workload"
)

func race(p, n int, dist workload.Dist, seed uint64) map[parbitonic.Algorithm]parbitonic.Result {
	out := map[parbitonic.Algorithm]parbitonic.Result{}
	for _, alg := range []parbitonic.Algorithm{parbitonic.SmartBitonic, parbitonic.RadixSort, parbitonic.SampleSort} {
		keys := workload.Keys(dist, p*n, seed)
		res, err := parbitonic.Sort(keys, parbitonic.Config{Processors: p, Algorithm: alg, FusePackUnpack: alg == parbitonic.SmartBitonic})
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				log.Fatalf("%v did not sort %v input", alg, dist)
			}
		}
		out[alg] = res
	}
	return out
}

func main() {
	const p = 16

	fmt.Println("Per-key model time (us) by per-processor count, uniform keys, P=16:")
	fmt.Printf("  %-10s %-10s %-10s %-10s %s\n", "keys/proc", "bitonic", "radix", "sample", "fastest")
	for _, n := range []int{1 << 9, 1 << 12, 1 << 15, 1 << 18} {
		rs := race(p, n, workload.Uniform31, 42)
		bi, ra, sa := rs[parbitonic.SmartBitonic], rs[parbitonic.RadixSort], rs[parbitonic.SampleSort]
		fastest := "sample"
		if bi.Time < sa.Time && bi.Time < ra.Time {
			fastest = "bitonic"
		} else if ra.Time < sa.Time {
			fastest = "radix"
		}
		fmt.Printf("  %-10d %-10.3f %-10.3f %-10.3f %s\n",
			n, bi.TimePerKey(), ra.TimePerKey(), sa.TimePerKey(), fastest)
	}
	fmt.Println()

	fmt.Println("Distribution sensitivity at 64K keys/proc (per-key us):")
	fmt.Printf("  %-12s %-10s %-10s\n", "input", "bitonic", "sample")
	for _, dist := range []workload.Dist{workload.Uniform31, workload.Gaussian, workload.FewDistinct, workload.AllEqual} {
		rs := race(p, 1<<16, dist, 42)
		fmt.Printf("  %-12v %-10.3f %-10.3f\n", dist,
			rs[parbitonic.SmartBitonic].TimePerKey(), rs[parbitonic.SampleSort].TimePerKey())
	}
	fmt.Println()
	fmt.Println("Bitonic sort's time is identical across distributions (it is")
	fmt.Println("oblivious); sample sort degrades as key entropy drops because its")
	fmt.Println("splitters no longer balance the all-to-all exchange (§5.5).")
}
