// Modelstudy performs the §3.4.3 what-if analysis: given LogGP machine
// parameters, which remapping strategy has the lowest communication
// time? It sweeps the message mode, the machine size and the data size
// and prints the winner for each regime — including the paper's
// observation that for P=2 with long messages the plain blocked
// strategy can win outright.
package main

import (
	"fmt"

	"parbitonic"
)

func main() {
	fmt.Println("Predicted communication time by strategy (Meiko-like LogGP parameters)")
	fmt.Println()

	for _, mode := range []struct {
		name string
		long bool
	}{{"short messages (LogP)", false}, {"long messages (LogGP)", true}} {
		fmt.Printf("== %s ==\n", mode.name)
		fmt.Printf("%-6s %-6s   %-42s %s\n", "lgP", "lgN", "R / V / M per strategy", "winner")
		for _, dims := range [][2]int{{1, 21}, {2, 22}, {4, 24}, {5, 25}, {6, 26}} {
			lgP, lgN := dims[0], dims[1]
			preds := parbitonic.Predict(lgN, lgP, mode.long, nil)
			best := preds[0]
			summary := ""
			for _, p := range preds {
				if p.CommTime < best.CommTime {
					best = p
				}
				summary += fmt.Sprintf("%s R=%d ", abbrev(p.Strategy), p.Remaps)
			}
			fmt.Printf("%-6d %-6d   %-42s %s (%.0f us)\n", lgP, lgN, summary, best.Strategy, best.CommTime)
		}
		fmt.Println()
	}

	fmt.Println("Detail for P=2 with long messages — the paper's small-P exception:")
	for _, p := range parbitonic.Predict(21, 1, true, nil) {
		fmt.Printf("  %-16s R=%-3d V=%-8d M=%-6d comm=%.0f us\n", p.Strategy, p.Remaps, p.Volume, p.Msg, p.CommTime)
	}
	fmt.Println()

	fmt.Println("Same machine but with a 10x faster long-message bandwidth:")
	fast := &parbitonic.ModelParams{L: 7.5, O: 1.7, Gap: 13.2, GKey: 0.064, ShortKey: 52.8}
	for _, p := range parbitonic.Predict(24, 4, true, fast) {
		fmt.Printf("  %-16s comm=%.0f us\n", p.Strategy, p.CommTime)
	}
}

func abbrev(s string) string {
	switch s {
	case "blocked":
		return "blk"
	case "cyclic-blocked":
		return "cyc"
	case "smart":
		return "smt"
	}
	return s
}
