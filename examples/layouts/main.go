// Layouts walks the paper's running example (Figures 3.3 and 3.4):
// the smart remap schedule for N=256 keys on P=16 processors, showing
// for each remap its position in the bitonic sorting network, its
// inside/crossing classification, the absolute-address bit pattern of
// the layout it installs, and the Lemma 3 changed-bit count that
// governs how much data moves. It then scales the comparison with the
// cyclic-blocked strategy across machine sizes.
package main

import (
	"fmt"

	"parbitonic"
)

func main() {
	fmt.Println("The paper's example: N=256, P=16 (Figures 3.3/3.4)")
	fmt.Println()
	for i, r := range parbitonic.SmartSchedule(8, 4) {
		fmt.Printf("remap %d: stage %d step %d (%s)\n", i, r.Stage, r.Step, r.Kind)
		fmt.Printf("         layout %s  — %d bits change, so each processor keeps n/2^%d of its keys\n",
			r.BitPattern, r.BitsChanged, r.BitsChanged)
		fmt.Printf("         then %d network steps run with no communication at all\n", r.StepsAfter)
	}
	fmt.Println()
	fmt.Println("Changed-bit sequence (paper says 1 2 3 3 4 4 2):")
	fmt.Print("  ")
	for _, r := range parbitonic.SmartSchedule(8, 4) {
		fmt.Printf("%d ", r.BitsChanged)
	}
	fmt.Println()
	fmt.Println()

	fmt.Println("Remap counts, smart vs cyclic-blocked (2 lgP), as the machine grows:")
	fmt.Printf("  %-10s %-8s %-14s\n", "P", "smart", "cyclic-blocked")
	for lgP := 1; lgP <= 6; lgP++ {
		lgN := lgP + 16 // 64K keys per processor
		sched := parbitonic.SmartSchedule(lgN, lgP)
		fmt.Printf("  %-10d %-8d %-14d\n", 1<<uint(lgP), len(sched), 2*lgP)
	}
	fmt.Println()
	fmt.Println("The smart schedule achieves the Lemma 1 lower bound: after every")
	fmt.Println("remap exactly lg(n) steps of the sorting network execute locally.")
}
