// Quickstart: sort one million keys on a simulated 16-processor machine
// with the paper's smart bitonic sort, using only the public API.
package main

import (
	"fmt"
	"log"

	"parbitonic"
)

func main() {
	// Any deterministic keys will do; here a multiplicative scramble.
	const total = 1 << 20
	keys := make([]uint32, total)
	for i := range keys {
		keys[i] = uint32(i) * 2654435761 & 0x7fffffff
	}

	res, err := parbitonic.Sort(keys, parbitonic.Config{Processors: 16})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			log.Fatalf("not sorted at %d", i)
		}
	}

	fmt.Printf("sorted %d keys with %s\n", res.Keys, res.Algorithm)
	fmt.Printf("model time: %.1f us (%.4f us/key)\n", res.Time, res.TimePerKey())
	fmt.Printf("per processor: %d remaps, %d keys moved, %d messages\n",
		res.Remaps, res.VolumeSent, res.MessagesSent)
	fmt.Printf("smallest key %d, largest key %d\n", keys[0], keys[len(keys)-1])
}
