// Command mdlint checks that every relative link in the repo's
// markdown files resolves to an existing file. External links
// (http/https/mailto) and pure-anchor links (#section) are skipped —
// the check must work offline in CI — but a #fragment on a relative
// link is verified to point at a real heading in the target file.
//
// Usage:
//
//	mdlint README.md DESIGN.md ...
//	mdlint            # lints every *.md at the repo root
//
// Links inside fenced code blocks are ignored. Exits 1 with one
// "file:line: message" per broken link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target).
// Targets with spaces or nested parens are out of scope — the repo
// doesn't use them.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// fenceRE matches the opening/closing line of a fenced code block.
var fenceRE = regexp.MustCompile("^\\s*(```|~~~)")

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "mdlint: no markdown files found")
			os.Exit(2)
		}
	}
	broken := 0
	for _, f := range files {
		broken += lintFile(f)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken links\n", broken)
		os.Exit(1)
	}
}

// lintFile reports the number of broken relative links in one
// markdown file, printing each as file:line: message.
func lintFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		return 1
	}
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			if msg := checkTarget(path, m[1]); msg != "" {
				fmt.Printf("%s:%d: %s\n", path, i+1, msg)
				broken++
			}
		}
	}
	return broken
}

// checkTarget validates one link target relative to the file that
// contains it; an empty return means the link is fine.
func checkTarget(from, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return ""
	case strings.HasPrefix(target, "#"):
		return "" // same-file anchor; heading drift is not worth a CI gate
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := filepath.Join(filepath.Dir(from), file)
	if _, err := os.Stat(resolved); err != nil {
		return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
	}
	if frag != "" && strings.HasSuffix(file, ".md") && !hasHeading(resolved, frag) {
		return fmt.Sprintf("broken anchor %q: no heading matches #%s in %s", target, frag, resolved)
	}
	return ""
}

// hasHeading reports whether a markdown file contains a heading whose
// GitHub-style slug equals frag.
func hasHeading(path, frag string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if slug(strings.TrimLeft(line, "# ")) == strings.ToLower(frag) {
			return true
		}
	}
	return false
}

// slug approximates GitHub's heading-anchor algorithm: lowercase,
// spaces to dashes, punctuation dropped.
func slug(heading string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '-':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
