// Command layout-viz prints the smart remap schedule and the
// absolute-address bit patterns of its layouts — a textual rendering of
// Figures 3.3 and 3.4 of the paper for any (N, P).
//
// Usage:
//
//	layout-viz [-lgn total-lg-keys] [-lgp lg-procs]
//
// The default reproduces the paper's running example: N=256 keys on
// P=16 processors (7 remaps, changed-bit sequence 1 2 3 3 4 4 2).
package main

import (
	"flag"
	"fmt"
	"os"

	"parbitonic"
	"parbitonic/internal/logp"
)

func main() {
	lgN := flag.Int("lgn", 8, "lg of the total number of keys")
	lgP := flag.Int("lgp", 4, "lg of the number of processors")
	flag.Parse()
	if *lgP < 1 || *lgN <= *lgP {
		fmt.Fprintln(os.Stderr, "need lgn > lgp >= 1")
		os.Exit(2)
	}

	n := 1 << uint(*lgN-*lgP)
	fmt.Printf("Smart remap schedule for N=%d keys on P=%d processors (n=%d per processor)\n\n",
		1<<uint(*lgN), 1<<uint(*lgP), n)
	fmt.Printf("%-3s  %-6s %-5s %-9s %-6s %-5s  %s\n",
		"#", "stage", "step", "kind", "steps", "bits", "absolute-address pattern (msb..lsb, P=proc, L=local)")
	infos := parbitonic.SmartSchedule(*lgN, *lgP)
	totalBits := 0
	for i, r := range infos {
		fmt.Printf("%-3d  %-6d %-5d %-9s %-6d %-5d  %s\n",
			i, r.Stage, r.Step, r.Kind, r.StepsAfter, r.BitsChanged, r.BitPattern)
		totalBits += r.BitsChanged
	}

	sm := logp.Smart(*lgN, *lgP)
	cb := logp.CyclicBlocked(*lgP, n)
	fmt.Printf("\nremaps: smart %d vs cyclic-blocked %d\n", sm.R, cb.R)
	fmt.Printf("volume per processor: smart %d vs cyclic-blocked %d keys (ratio %.2f, paper predicts ~2(1-1/P)=%.2f)\n",
		sm.V, cb.V, float64(cb.V)/float64(sm.V), 2*(1-1/float64(int(1)<<uint(*lgP))))
	fmt.Printf("messages per processor: smart %d vs cyclic-blocked %d\n", sm.M, cb.M)
}
