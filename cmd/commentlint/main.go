// Command commentlint enforces the repo's godoc contract: every
// exported identifier — package, top-level func, type, const, var,
// method, struct field, and interface method — must carry a doc
// comment, and declaration comments must start with the identifier
// they document (standard godoc style).
//
// Usage:
//
//	commentlint ./internal/spmd ./internal/serve ...
//
// With no arguments it lints the package directories named in the CI
// lint job. Exits 1 and prints one "file:line: message" per violation
// when any exported identifier is undocumented. Test files are
// skipped. Grouped const/var specs may share the group's doc comment;
// struct fields and interface methods may use a trailing line comment
// instead of a leading one.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// defaultDirs is the lint scope when no arguments are given: the
// packages the ISSUE-4 godoc audit covers, plus the serve layer and
// the autotuner it introduced.
var defaultDirs = []string{
	"./internal/spmd", "./internal/machine", "./internal/native",
	"./internal/obs", "./internal/fault", "./internal/verify",
	"./internal/core", "./internal/addr", "./internal/serve",
	"./internal/tune",
}

// violation is one undocumented (or mis-documented) exported
// identifier, carrying the position to report.
type violation struct {
	pos token.Position
	msg string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var all []violation
	for _, dir := range dirs {
		vs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		all = append(all, vs...)
	}
	for _, v := range all {
		fmt.Printf("%s:%d: %s\n", v.pos.Filename, v.pos.Line, v.msg)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "commentlint: %d undocumented exported identifiers\n", len(all))
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and returns the doc
// violations of its exported declarations.
func lintDir(dir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("commentlint: %s: %w", dir, err)
	}
	var vs []violation
	for _, pkg := range pkgs {
		docd := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				docd = true
			}
			for _, decl := range f.Decls {
				vs = append(vs, lintDecl(fset, decl)...)
			}
		}
		if !docd {
			vs = append(vs, violation{
				pos: token.Position{Filename: dir},
				msg: fmt.Sprintf("package %s has no package doc comment", pkg.Name),
			})
		}
	}
	return vs, nil
}

// lintDecl checks one top-level declaration, descending into struct
// fields and interface methods of exported types.
func lintDecl(fset *token.FileSet, decl ast.Decl) []violation {
	var vs []violation
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if exportedRecv(d) && d.Doc == nil {
			vs = append(vs, undoc(fset, d.Pos(), "func", d.Name.Name))
		} else if d.Doc != nil {
			vs = append(vs, checkStart(fset, d.Doc, d.Name.Name)...)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if s.Doc == nil && d.Doc == nil {
					vs = append(vs, undoc(fset, s.Pos(), "type", s.Name.Name))
				}
				vs = append(vs, lintTypeBody(fset, s)...)
			case *ast.ValueSpec:
				// A const/var group's doc covers its specs.
				if s.Doc != nil || s.Comment != nil || d.Doc != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						vs = append(vs, undoc(fset, name.Pos(), kindOf(d.Tok), name.Name))
					}
				}
			}
		}
	}
	return vs
}

// lintTypeBody checks the exported fields of a struct type and the
// exported methods of an interface type. A trailing same-line comment
// counts as documentation for either.
func lintTypeBody(fset *token.FileSet, s *ast.TypeSpec) []violation {
	var vs []violation
	var fields *ast.FieldList
	kind := "field"
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
		kind = "interface method"
	default:
		return nil
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				vs = append(vs, undoc(fset, name.Pos(),
					kind, s.Name.Name+"."+name.Name))
			}
		}
	}
	return vs
}

// exportedRecv reports whether a func decl is part of the exported
// API surface: a top-level function, or a method on an exported
// receiver type.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[K]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// checkStart enforces the godoc convention that a declaration comment
// begins with the name it documents (allowing the "A"/"An"/"The"
// article prefixes gofmt tolerates).
func checkStart(fset *token.FileSet, doc *ast.CommentGroup, name string) []violation {
	text := strings.TrimSpace(doc.Text())
	if text == "" {
		return []violation{undoc(fset, doc.Pos(), "func", name)}
	}
	for _, prefix := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(text, prefix+name) {
			return nil
		}
	}
	// Deprecated markers and build-tag style comments are left alone.
	if strings.HasPrefix(text, "Deprecated:") {
		return nil
	}
	return []violation{{
		pos: fset.Position(doc.Pos()),
		msg: fmt.Sprintf("doc comment for %s should start with %q", name, name),
	}}
}

// undoc builds the standard "exported X is undocumented" violation.
func undoc(fset *token.FileSet, pos token.Pos, kind, name string) violation {
	return violation{
		pos: fset.Position(pos),
		msg: fmt.Sprintf("exported %s %s has no doc comment", kind, name),
	}
}

// kindOf names a GenDecl token for the violation message.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
