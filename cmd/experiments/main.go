// Command experiments regenerates every table and figure of the
// paper's evaluation on the simulated machine and prints them as
// markdown, side by side with the paper's Meiko CS-2 measurements.
//
// Usage:
//
//	experiments [-scale N] [-seed S] [-only id-substring] [-auto]
//	experiments -load-url http://host:8357 [-load-reqs N]
//
// -scale divides the paper's key counts by 2^N (default 6; 0 runs the
// paper's full sizes, up to 32M keys, which takes a few minutes).
// -auto appends the autotuned-vs-fixed sweep: the cost-model planner
// (internal/tune, TUNING.md) raced against every fixed shape on the
// native backend.
//
// With -load-url the command becomes an HTTP load generator instead:
// it sweeps client concurrency against a running sort-server (see
// cmd/sort-server) and prints throughput and latency percentiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parbitonic/element"
	"parbitonic/internal/experiments"
)

// slug turns an experiment ID into a file name.
func slug(id string) string {
	var sb strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r + 32)
		case r == ' ' || r == '.' || r == '/':
			sb.WriteByte('-')
		}
	}
	return strings.Trim(strings.ReplaceAll(sb.String(), "---", "-"), "-")
}

func main() {
	scale := flag.Int("scale", 6, "divide the paper's key counts by 2^scale")
	seed := flag.Uint64("seed", 1996, "workload seed")
	only := flag.String("only", "", "run only experiments whose ID contains this substring")
	keytype := flag.String("keytype", "u32", "element type for the element-parameterized experiments: u32, u64, f32, f64, kv64")
	charts := flag.Bool("charts", true, "render figures as ASCII charts below their tables")
	svgDir := flag.String("svg", "", "also write each figure as an SVG file into this directory")
	loadURL := flag.String("load-url", "", "load-generator mode: drive a running sort-server at this base URL instead of the reproduction suite")
	loadReqs := flag.Int("load-reqs", 64, "load-generator mode: requests per client")
	auto := flag.Bool("auto", false, "also run the autotuned-vs-fixed native sweep (measures wall clock; see TUNING.md)")
	flag.Parse()

	if *loadURL != "" {
		tab := experiments.LoadHTTP(*loadURL, *loadReqs, *seed)
		tab.Render(os.Stdout)
		return
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	elem, err := element.ParseType(*keytype)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Elem: elem}
	fmt.Printf("# Reproduction run (scale 1/2^%d of paper sizes, seed %d)\n\n", *scale, *seed)
	start := time.Now()
	runners := []func(experiments.Config) *experiments.Table{
		experiments.Table51, experiments.Table52, experiments.Fig53, experiments.Fig54,
		experiments.Table53, experiments.Table54, experiments.Fig57, experiments.Fig58,
		experiments.AnalysisRVM, experiments.AblationShift, experiments.AblationCompute,
		experiments.FutureWorkOverlap, experiments.NativeThroughput,
		experiments.ElemWidth, experiments.ServeLoad,
	}
	if *auto {
		runners = append(runners, experiments.AutotunedVsFixed)
	}
	ran := 0
	for _, run := range runners {
		tab := run(cfg)
		if *only != "" && !strings.Contains(tab.ID, *only) {
			continue
		}
		tab.Render(os.Stdout)
		if *charts {
			if c := tab.Chart(); c != nil {
				fmt.Println("```")
				fmt.Print(c.Render())
				fmt.Println("```")
				fmt.Println()
			}
		}
		if *svgDir != "" {
			if c := tab.SVG(); c != nil {
				name := filepath.Join(*svgDir, slug(tab.ID)+".svg")
				if err := os.WriteFile(name, []byte(c.Render()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("_figure written to %s_\n\n", name)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("_%d experiments in %.1fs wall time._\n", ran, time.Since(start).Seconds())
}
