// Command bitonic-sort sorts a synthetic workload with a chosen
// algorithm and prints the execution statistics — a quick way to poke
// at the library from the shell. By default it runs on the simulated
// machine and reports model time; -backend native runs the same
// algorithm as real goroutines and reports wall-clock time.
//
// Usage:
//
//	bitonic-sort [-p procs] [-n keys-per-proc] [-alg name] [-dist name]
//	             [-keytype u32|u64|f32|f64|kv64] [-backend simulated|native]
//	             [-short] [-simulate] [-fused] [-seed S] [-timeout D]
//	             [-verify] [-v]
//
// Observability (see internal/obs):
//
//	-trace-out FILE        write a Chrome trace-event JSON of the run
//	                       (load in chrome://tracing or ui.perfetto.dev)
//	-metrics-addr ADDR     serve Prometheus /metrics and expvar
//	                       /debug/vars on ADDR for the process lifetime
//	                       (":0" picks a free port; the bound address is
//	                       printed)
//	-metrics-snapshot FILE after the sort, scrape the metrics endpoint
//	                       and save the exposition ("-" = stdout)
//	-drift                 print the model-drift report: measured
//	                       remaps/volume/messages/comm-time vs the §3.4
//	                       closed forms
//	-slog                  structured run logs (log/slog) on stderr
//
// Autotuning (see internal/tune and TUNING.md):
//
//	-calibrate             microbenchmark this host's kernel and
//	                       exchange costs and write the machine profile,
//	                       then exit (-quick for a faster, coarser pass)
//	-auto                  let the cost model pick algorithm, strategy
//	                       and processor count for the workload size;
//	                       -p becomes the P cap and -alg is ignored
//	-profile FILE          machine profile location for -calibrate and
//	                       -auto (default: the user cache dir)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/tune"
	"parbitonic/internal/workload"
)

var algorithms = map[string]parbitonic.Algorithm{
	"smart":          parbitonic.SmartBitonic,
	"cyclic-blocked": parbitonic.CyclicBlockedBitonic,
	"blocked-merge":  parbitonic.BlockedMergeBitonic,
	"sample":         parbitonic.SampleSort,
	"radix":          parbitonic.RadixSort,
}

var dists = map[string]workload.Dist{
	"uniform":     workload.Uniform31,
	"fullrange":   workload.FullRange,
	"sorted":      workload.Sorted,
	"reverse":     workload.Reverse,
	"fewdistinct": workload.FewDistinct,
	"gaussian":    workload.Gaussian,
	"allequal":    workload.AllEqual,
}

func main() {
	p := flag.Int("p", 16, "number of simulated processors (power of two)")
	n := flag.Int("n", 1<<16, "keys per processor (power of two)")
	algName := flag.String("alg", "smart", "algorithm: smart, cyclic-blocked, blocked-merge, sample, radix")
	backendName := flag.String("backend", "simulated", "execution backend: simulated (model time) or native (wall-clock)")
	distName := flag.String("dist", "uniform", "distribution: uniform, fullrange, sorted, reverse, fewdistinct, gaussian, allequal")
	keytypeName := flag.String("keytype", "u32", "element type: u32, u64, f32, f64, kv64 (kv64 = 64-bit key + 64-bit payload)")
	short := flag.Bool("short", false, "use short (elementwise) messages")
	simulate := flag.Bool("simulate", false, "simulate every network step instead of optimized local sorts")
	fused := flag.Bool("fused", false, "fuse pack/unpack into local computation (§4.3)")
	seed := flag.Uint64("seed", 1, "workload seed")
	timeout := flag.Duration("timeout", 0, "abort the sort after this duration (0 = no limit)")
	doVerify := flag.Bool("verify", false, "verify the output: per-processor order, boundaries, multiset checksum")
	verbose := flag.Bool("v", false, "print the first and last few output keys")
	showTrace := flag.Bool("trace", false, "print a per-processor virtual-time timeline")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and expvar /debug/vars on this address (\":0\" = any free port)")
	metricsSnapshot := flag.String("metrics-snapshot", "", "after the sort, scrape the metrics endpoint into this file (\"-\" = stdout; requires -metrics-addr)")
	drift := flag.Bool("drift", false, "print the model-drift report (measured vs §3.4 closed-form predictions)")
	logRuns := flag.Bool("slog", false, "emit structured run logs (log/slog) on stderr")
	auto := flag.Bool("auto", false, "autotune: the cost model picks algorithm, strategy and P (-p caps P, -alg is ignored)")
	calibrate := flag.Bool("calibrate", false, "calibrate this host's machine profile and exit")
	quick := flag.Bool("quick", false, "with -calibrate: a faster, coarser calibration pass")
	profilePath := flag.String("profile", "", "machine profile path for -calibrate/-auto (default: the user cache dir)")
	flag.Parse()

	if *calibrate {
		if err := runCalibrate(*profilePath, *quick, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	alg, ok := algorithms[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	dist, ok := dists[*distName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	keytype, kerr := element.ParseType(*keytypeName)
	if kerr != nil {
		fmt.Fprintln(os.Stderr, kerr)
		os.Exit(2)
	}
	var backend parbitonic.Backend
	switch *backendName {
	case "simulated":
		backend = parbitonic.Simulated
	case "native":
		backend = parbitonic.Native
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendName)
		os.Exit(2)
	}

	var rec *parbitonic.TraceRecorder
	if *showTrace {
		rec = new(parbitonic.TraceRecorder)
	}

	// Assemble the observability pipeline from the requested sinks;
	// obs.Multi skips nil entries, so unused sinks cost nothing.
	var chrome *obs.ChromeTrace
	if *traceOut != "" {
		chrome = obs.NewChromeTrace()
	}
	var metrics *obs.Metrics
	var metricsURL string
	if *metricsAddr != "" {
		metrics = obs.NewMetrics()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listener: %v\n", err)
			os.Exit(1)
		}
		metricsURL = "http://" + ln.Addr().String()
		fmt.Printf("metrics          %s/metrics (expvar at /debug/vars)\n", metricsURL)
		srv := &http.Server{Handler: metrics.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
	} else if *metricsSnapshot != "" {
		fmt.Fprintln(os.Stderr, "-metrics-snapshot requires -metrics-addr")
		os.Exit(2)
	}
	var logs *obs.SlogSink
	if *logRuns {
		logs = obs.NewSlogSink(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	var sinks []obs.Sink
	if chrome != nil {
		sinks = append(sinks, chrome)
	}
	if metrics != nil {
		sinks = append(sinks, metrics)
	}
	if logs != nil {
		sinks = append(sinks, logs)
	}
	var sink parbitonic.Sink
	if len(sinks) > 0 {
		sink = obs.Multi(sinks...)
	}
	var observe func(parbitonic.SortReport)
	var report parbitonic.SortReport
	if *drift || *auto {
		observe = func(r parbitonic.SortReport) { report = r }
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ecfg := parbitonic.Config{
		Processors:     *p,
		Algorithm:      alg,
		Backend:        backend,
		ShortMessages:  *short,
		SimulateSteps:  *simulate,
		FusePackUnpack: *fused,
		Trace:          rec,
		Verify:         *doVerify,
		Obs:            sink,
		Observe:        observe,
		Auto:           *auto,
		ProfilePath:    *profilePath,
	}
	headTail := 0
	if *verbose {
		headTail = 5
	}
	var out sortOutcome
	var err error
	switch keytype {
	case element.TU32:
		out, err = runSort[uint32](ctx, dist, *p, *n, *seed, ecfg, headTail)
	case element.TU64:
		out, err = runSort[uint64](ctx, dist, *p, *n, *seed, ecfg, headTail)
	case element.TF32:
		out, err = runSort[float32](ctx, dist, *p, *n, *seed, ecfg, headTail)
	case element.TF64:
		out, err = runSort[float64](ctx, dist, *p, *n, *seed, ecfg, headTail)
	case element.TKV64:
		out, err = runSort[element.KV64](ctx, dist, *p, *n, *seed, ecfg, headTail)
	}
	if err != nil {
		switch {
		case errors.Is(err, spmd.ErrDeadline):
			fmt.Fprintf(os.Stderr, "sort aborted: exceeded -timeout %v (%v)\n", *timeout, err)
		case errors.Is(err, spmd.ErrCanceled):
			fmt.Fprintf(os.Stderr, "sort canceled: %v\n", err)
		default:
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
	res := out.res

	if backend == parbitonic.Native {
		fmt.Printf("algorithm        %s (%s %s keys, native backend)\n", res.Algorithm, *distName, keytype)
	} else {
		fmt.Printf("algorithm        %s (%s %s keys, %s messages)\n", res.Algorithm, *distName, keytype, msgMode(*short))
	}
	procs := *p
	if *auto && report.Plan != nil {
		fmt.Printf("plan             %v\n", *report.Plan)
		procs = report.Plan.Processors
	}
	fmt.Printf("keys             %d total = %d procs x %d\n", res.Keys, procs, res.Keys/procs)
	if backend == parbitonic.Native {
		fmt.Printf("wall time        %.1f us  (%.4f us/key)\n", res.Time, res.TimePerKey())
	} else {
		fmt.Printf("model time       %.1f us  (%.4f us/key)\n", res.Time, res.TimePerKey())
	}
	fmt.Printf("per-processor    remaps=%d  volume=%d keys  messages=%d\n", res.Remaps, res.VolumeSent, res.MessagesSent)
	fmt.Printf("phase breakdown  compute=%.1f  pack=%.1f  transfer=%.1f  unpack=%.1f (us)\n",
		res.ComputeTime, res.PackTime, res.TransferTime, res.UnpackTime)
	if *doVerify {
		fmt.Println("verify           ok (local order, boundaries, multiset checksum)")
	}
	if *showTrace {
		fmt.Print(rec.Timeline(100))
		fmt.Printf("barrier-wait share: %.1f%%\n", rec.WaitShare()*100)
	}
	if *drift {
		fmt.Print(report)
	}
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := chrome.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace            %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsSnapshot != "" {
		if err := scrapeMetrics(metricsURL+"/metrics", *metricsSnapshot); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-snapshot: %v\n", err)
			os.Exit(1)
		}
		if *metricsSnapshot != "-" {
			fmt.Printf("metrics snapshot %s\n", *metricsSnapshot)
		}
	}
	if *verbose {
		fmt.Printf("head %s ... tail %s\n", out.head, out.tail)
	}
}

// sortOutcome carries a finished run's statistics plus rendered
// head/tail samples of the sorted output (for -v).
type sortOutcome struct {
	res        parbitonic.Result
	head, tail string
}

// runSort generates the workload for one element type, sorts it, and
// checks global sortedness (by key, for record elements).
func runSort[E element.Elem](ctx context.Context, dist workload.Dist, p, n int, seed uint64, cfg parbitonic.Config, headTail int) (sortOutcome, error) {
	keys := workload.Elems[E](dist, p*n, seed)
	res, err := parbitonic.SortContext(ctx, keys, cfg)
	if err != nil {
		return sortOutcome{}, err
	}
	for i := 1; i < len(keys); i++ {
		if element.Less(keys[i], keys[i-1]) {
			return sortOutcome{}, fmt.Errorf("OUTPUT NOT SORTED at %d", i)
		}
	}
	out := sortOutcome{res: res}
	if headTail > 0 {
		k := headTail
		if len(keys) < 2*k {
			k = len(keys) / 2
		}
		out.head = fmt.Sprintf("%v", keys[:k])
		out.tail = fmt.Sprintf("%v", keys[len(keys)-k:])
	}
	return out, nil
}

// runCalibrate microbenchmarks the host's per-element kernel costs and
// exchange-path LogGP analogues and writes the machine profile the
// planner reads (see internal/tune and TUNING.md).
func runCalibrate(path string, quick bool, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if path == "" {
		var err error
		path, err = tune.DefaultPath()
		if err != nil {
			return err
		}
	}
	prof, err := tune.Calibrate(ctx, tune.Options{Quick: quick})
	if err != nil {
		return err
	}
	if err := prof.Save(path); err != nil {
		return err
	}
	fmt.Printf("calibrated       %s/%s, %d CPUs (quick=%v)\n", prof.GoOS, prof.GoArch, prof.CPUs, prof.Quick)
	for _, t := range element.Types() {
		k, ok := prof.Kernels[t.String()]
		if !ok {
			continue
		}
		fmt.Printf("%-8s         radix=%.2f  merge=%.2f  compare=%.2f  copy=%.2f (ns/elem)\n",
			t, k.RadixPassNS, k.MergeNS, k.CompareNS, k.CopyNS)
	}
	fmt.Printf("comm             remap=%.0f ns  word=%.2f ns  msg=%.0f ns\n",
		prof.Comm.RemapNS, prof.Comm.WordNS, prof.Comm.MsgNS)
	fmt.Printf("profile          %s\n", path)
	return nil
}

func msgMode(short bool) string {
	if short {
		return "short"
	}
	return "long"
}

// scrapeMetrics fetches the Prometheus exposition over the process's
// own HTTP listener — exercising the same path an external scraper
// would — and writes it to path ("-" = stdout).
func scrapeMetrics(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var out io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	_, err = io.Copy(out, resp.Body)
	return err
}
