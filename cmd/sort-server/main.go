// Command sort-server runs the parallel bitonic sort as an HTTP
// service: pooled engines, request batching, and bounded-queue
// backpressure (internal/serve), with Prometheus metrics and optional
// chaos injection.
//
// Usage:
//
//	sort-server [-addr :8357] [-p procs] [-alg name] [-backend name]
//	            [-verify] [-max-batch N] [-max-batch-keys N]
//	            [-max-delay dur] [-queue N] [-parallel N]
//	            [-retries N] [-breaker] [-degraded]
//	            [-slo-ms N] [-slo-target F] [-slog]
//	            [-chaos-every N] [-chaos-seed S]
//	            [-auto] [-profile FILE]
//
// With -auto, each server consults the cost-model planner per request
// size instead of the fixed -p/-alg shape: engines pool under the
// plan-chosen shapes, choices surface as plan_chosen/plan-drift
// metrics and plan events, and -p caps the candidate P (see
// internal/tune and TUNING.md; run bitonic-sort -calibrate to write
// the machine profile).
//
// Endpoints: POST /sort (JSON {"keys":[...]} or
// application/octet-stream — a legacy little-endian uint32 stream or
// a versioned binary frame whose header names the element type: u32,
// u64, f32, f64 or kv64; optional ?timeout_ms=N), GET /healthz
// (503-unready under sustained SLO burn), GET /stats, GET /metrics
// (Prometheus, including per-stage latency histograms, tail quantile
// estimates and runtime health), GET /debug/sortz (live ops page;
// ?format=json), GET /debug/vars (expvar). Every element type is
// served; each gets its own engine pool and batcher behind one
// gateway. Every response echoes X-Request-ID (client-supplied,
// traceparent-derived, or minted). See README.md for the frame layout
// and OPERATIONS.md for the runbook.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parbitonic"
	"parbitonic/internal/fault"
	"parbitonic/internal/obs"
	"parbitonic/internal/serve"
)

var algorithms = map[string]parbitonic.Algorithm{
	"smart":          parbitonic.SmartBitonic,
	"cyclic-blocked": parbitonic.CyclicBlockedBitonic,
	"blocked-merge":  parbitonic.BlockedMergeBitonic,
	"sample":         parbitonic.SampleSort,
	"radix":          parbitonic.RadixSort,
}

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	p := flag.Int("p", 4, "processors per engine (power of two)")
	algName := flag.String("alg", "smart", "algorithm: smart, cyclic-blocked, blocked-merge, sample, radix")
	backendName := flag.String("backend", "native", "execution backend: native (wall-clock) or simulated (model time)")
	verifyFlag := flag.Bool("verify", false, "verify every run's output (sortedness + checksum) before responding")
	maxBatch := flag.Int("max-batch", 16, "most requests coalesced into one engine run (1 disables batching)")
	maxBatchKeys := flag.Int("max-batch-keys", 1<<20, "summed key cap of a batch; longer requests run solo")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "batching window: how long to hold a batch open for companions")
	queue := flag.Int("queue", 256, "admission queue depth; a full queue rejects with 429")
	parallel := flag.Int("parallel", 0, "concurrent engine runs (0 = GOMAXPROCS/p)")
	retries := flag.Int("retries", 2, "retry budget per request for transient engine failures (0 disables)")
	breaker := flag.Bool("breaker", true, "per-element-type circuit breaker: fail fast while the backend is persistently failing")
	degraded := flag.Bool("degraded", true, "degraded-mode fallback: serve via a sequential sort when the breaker is open or retries are exhausted")
	sloMS := flag.Float64("slo-ms", 0, "latency SLO threshold in milliseconds (0 disables SLO tracking)")
	sloTarget := flag.Float64("slo-target", 0.99, "fraction of requests that must finish under -slo-ms")
	slogFlag := flag.Bool("slog", false, "structured run/event logs (log/slog JSON on stderr, request IDs included)")
	chaosEvery := flag.Int("chaos-every", 0, "inject a fault on every Nth engine run (0 disables chaos)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos plan seed (replayable)")
	auto := flag.Bool("auto", false, "autotune: the cost model picks each run's shape per request size (-p caps P, -alg is ignored; see TUNING.md)")
	profilePath := flag.String("profile", "", "machine profile path for -auto (default: the user cache dir)")
	flag.Parse()

	alg, ok := algorithms[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	var backend parbitonic.Backend
	switch *backendName {
	case "native":
		backend = parbitonic.Native
	case "simulated":
		backend = parbitonic.Simulated
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendName)
		os.Exit(2)
	}

	runMetrics := obs.NewMetrics()
	var sink obs.Sink = runMetrics
	if *slogFlag {
		sink = obs.Multi(runMetrics, obs.NewSlogSink(slog.New(slog.NewJSONHandler(os.Stderr, nil))))
	}
	engine := parbitonic.Config{
		Processors:  *p,
		Algorithm:   alg,
		Backend:     backend,
		Verify:      *verifyFlag,
		Obs:         sink,
		Auto:        *auto,
		ProfilePath: *profilePath,
	}
	var injected func() uint64
	if *chaosEvery > 0 {
		engine.WrapCharger, injected = fault.ChaosWrapper(fault.ChaosConfig{
			P:     *p,
			Every: *chaosEvery,
			Seed:  *chaosSeed,
			Sink:  runMetrics,
		})
		fmt.Fprintf(os.Stderr, "sort-server: CHAOS ON — a fault every %d runs, seed %d\n", *chaosEvery, *chaosSeed)
	}

	cfgRetries := *retries
	if cfgRetries <= 0 {
		cfgRetries = -1 // flag 0 means "no retries"; Config 0 means "default"
	}
	gw, err := serve.NewGateway(serve.Config{
		Engine:         engine,
		MaxBatch:       *maxBatch,
		MaxBatchKeys:   *maxBatchKeys,
		MaxDelay:       *maxDelay,
		QueueDepth:     *queue,
		Parallel:       *parallel,
		Retries:        cfgRetries,
		DisableBreaker: !*breaker,
		Degraded:       *degraded,
		SLO: obs.SLOConfig{
			Threshold: time.Duration(*sloMS * float64(time.Millisecond)),
			Target:    *sloTarget,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: serve.NewGatewayHandler(gw, runMetrics)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "sort-server: draining...")
		hs.Close()
		gw.Close()
		if injected != nil {
			fmt.Fprintf(os.Stderr, "sort-server: %d faults injected\n", injected())
		}
	}()

	sloNote := "off"
	if *sloMS > 0 {
		sloNote = fmt.Sprintf("%gms@%g", *sloMS, *sloTarget)
	}
	fmt.Fprintf(os.Stderr, "sort-server: listening on %s (P=%d, %s, %s backend, batch<=%d/%v, queue %d, retries %d, breaker %v, degraded %v, slo %s)\n",
		*addr, *p, *algName, *backendName, *maxBatch, *maxDelay, *queue, *retries, *breaker, *degraded, sloNote)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}
