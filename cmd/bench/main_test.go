package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snap builds a one-group native snapshot plus one simulated entry,
// the minimal shape the gates operate on.
func snap(entries ...Entry) *Snapshot {
	return &Snapshot{Schema: BenchSchema, Version: BenchVersion, CPUs: 1, Entries: entries}
}

func native(config string, minUS float64) Entry {
	return Entry{Backend: "native", Config: config, Elem: "u32", Size: 1024, US: minUS, MinUS: minUS}
}

func autoEntry(planConfig string, minUS float64) Entry {
	e := native("auto", minUS)
	e.Plan = "smart-bitonic P=1 native predicted=34µs (fallback profile)"
	e.PlanConfig = planConfig
	e.PredictedUS = 34
	return e
}

func TestGateAutoChosenShapeWins(t *testing.T) {
	// The planner chose the best fixed shape; its own noisy auto-run
	// time (worse than best+10%) must not fail the gate.
	s := snap(native("smart/p1", 100), native("smart/p4", 500), autoEntry("smart/p1", 130))
	if f := gateAuto(s, 0.10); len(f) != 0 {
		t.Fatalf("gate failed for a best-shape plan: %v", f)
	}
}

func TestGateAutoBadChoiceFails(t *testing.T) {
	// The planner chose the worst shape: both clauses fire.
	s := snap(native("smart/p1", 100), native("smart/p4", 500), autoEntry("smart/p4", 490))
	f := gateAuto(s, 0.10)
	if len(f) != 1 {
		t.Fatalf("failures = %v, want exactly the within-tolerance clause", f)
	}
	if !strings.Contains(f[0], "not within 10%") {
		t.Fatalf("failure = %q, want the tolerance clause", f[0])
	}

	// Slower than every fixed shape (an unswept plan measured
	// directly): the worst-shape clause fires too.
	s = snap(native("smart/p1", 100), native("smart/p4", 500), autoEntry("radix/p1", 600))
	f = gateAuto(s, 0.10)
	if len(f) != 2 {
		t.Fatalf("failures = %v, want both clauses", f)
	}
}

func TestGateAutoUnsweptPlanUsesAutoTime(t *testing.T) {
	// A plan outside the fixed sweep is judged by the auto run itself.
	s := snap(native("smart/p1", 100), native("smart/p4", 500), autoEntry("sample/p2", 105))
	if f := gateAuto(s, 0.10); len(f) != 0 {
		t.Fatalf("gate failed for a competitive unswept plan: %v", f)
	}
}

func TestCompareSimulatedStrict(t *testing.T) {
	sim := func(us float64) Entry {
		return Entry{Backend: "simulated", Config: "smart/p4", Elem: "u32", Size: 1024, US: us, MinUS: us}
	}
	base := snap(sim(1000))
	host := snap(sim(1000.5))
	if f, _ := compare(host, base, 0.001, 3.0); len(f) != 0 {
		t.Fatalf("0.05%% deviation failed the 0.1%% gate: %v", f)
	}
	host = snap(sim(1010))
	f, _ := compare(host, base, 0.001, 3.0)
	if len(f) != 1 || !strings.Contains(f[0], "cost model changed") {
		t.Fatalf("1%% deviation: failures = %v, want the simulated clause", f)
	}
}

func TestCompareNativeNormalizedRatios(t *testing.T) {
	// Baseline host: p4 is 2x the p1 anchor. This host: p4 is 8x the
	// anchor — beyond the 3x ratio tolerance, so a warning (never a
	// hard failure; the caller escalates under -strict-native).
	base := snap(native("smart/p1", 100), native("smart/p4", 200))
	host := snap(native("smart/p1", 50), native("smart/p4", 400))
	f, w := compare(host, base, 0.001, 3.0)
	if len(f) != 0 {
		t.Fatalf("native deviation reported as failure: %v", f)
	}
	if len(w) != 1 || !strings.Contains(w[0], "normalized ratio") {
		t.Fatalf("warnings = %v, want one ratio warning", w)
	}

	// Within tolerance: 2x vs 3x is inside a 3x factor.
	host = snap(native("smart/p1", 50), native("smart/p4", 150))
	if _, w := compare(host, base, 0.001, 3.0); len(w) != 0 {
		t.Fatalf("in-tolerance ratios warned: %v", w)
	}
}

func TestCompareSkipsMissingEntries(t *testing.T) {
	// The quick sweep is a subset of the full grid: baseline entries
	// with no host counterpart are skipped, not failed.
	base := snap(
		Entry{Backend: "simulated", Config: "smart/p4", Elem: "u64", Size: 1 << 16, US: 5, MinUS: 5},
	)
	host := snap()
	if f, w := compare(host, base, 0.001, 3.0); len(f) != 0 || len(w) != 0 {
		t.Fatalf("missing host entries gated: failures %v warnings %v", f, w)
	}
}

func TestLoadSnapshotValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := loadSnapshot(write("ok.json", `{"schema":"parbitonic-bench","version":2}`)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if _, err := loadSnapshot(write("schema.json", `{"schema":"other","version":2}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := loadSnapshot(write("version.json", `{"schema":"parbitonic-bench","version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := loadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRelDev(t *testing.T) {
	for _, tc := range []struct{ a, b, want float64 }{
		{100, 100, 0}, {110, 100, 0.1}, {90, 100, 0.1}, {0, 0, 0}, {5, 0, 1},
	} {
		if got := relDev(tc.a, tc.b); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("relDev(%g, %g) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}
