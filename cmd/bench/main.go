// Command bench runs the repository's pinned benchmark sweep — sizes ×
// element types × backends, fixed shapes plus the autotuner — and
// writes a schema-versioned BENCH_<name>.json snapshot. It is the
// reproducible performance-trajectory harness: CI runs it with -quick
// against the committed BENCH_baseline.json and fails on regression.
//
// Usage:
//
//	bench [-quick] [-out FILE] [-baseline FILE] [-reps N]
//	      [-profile FILE] [-sim-tolerance F] [-native-tolerance F]
//	      [-strict-native]
//
// Three gates, strongest evidence first:
//
//   - Autotuner gate (always, self-contained): for every native
//     (size, elem) group, the Auto run must beat the worst fixed shape
//     and land within 10% of the best (min over reps on both sides).
//     This is the acceptance bar for Config.Auto: the planner may not
//     pick a bad shape, and must be competitive with the best.
//   - Simulated gate (with -baseline): simulated entries are model
//     time — deterministic and host-independent — so they must match
//     the baseline within -sim-tolerance (default 0.1%). A mismatch
//     means the cost model changed; regenerate the baseline if that
//     was intended.
//   - Native shape gate (with -baseline): native wall times are
//     host-dependent, so entries are normalized per (size, elem)
//     group to the smart/p1 anchor and the RATIOS compared within a
//     factor of -native-tolerance. Warns by default (CPU counts
//     differ across hosts); -strict-native turns warnings into
//     failures for same-host trend tracking.
//
// See TUNING.md for how to read BENCH_*.json and when to regenerate
// the baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/localsort"
	"parbitonic/internal/workload"
)

// BenchSchema and BenchVersion identify the snapshot format; Load
// rejects anything else, so readers never misinterpret a foreign or
// future file.
const (
	BenchSchema  = "parbitonic-bench"
	BenchVersion = 2 // v2: kernel microbench entries (backend "kernel")
)

// Entry is one measured configuration. US is the trimmed-mean time in
// the backend's own unit — wall µs for native, model µs for simulated
// — and MinUS the fastest rep (the noise-robust value the gates use).
type Entry struct {
	Backend string  `json:"backend"` // "native" or "simulated"
	Config  string  `json:"config"`  // "auto", "smart/p1", "cyclic-blocked/p2", ...
	Elem    string  `json:"elem"`
	Size    int     `json:"size"` // total keys
	US      float64 `json:"us"`
	MinUS   float64 `json:"min_us"`
	// Plan, PlanConfig and PredictedUS are set for auto entries: what
	// the planner chose (PlanConfig in the fixed sweep's config-key
	// form, e.g. "smart/p1") and what it predicted, so snapshots
	// record mispredictions.
	Plan        string  `json:"plan,omitempty"`
	PlanConfig  string  `json:"plan_config,omitempty"`
	PredictedUS float64 `json:"predicted_us,omitempty"`
}

// Snapshot is the BENCH_*.json document.
type Snapshot struct {
	Schema  string  `json:"schema"`
	Version int     `json:"version"`
	Quick   bool    `json:"quick"`
	GoOS    string  `json:"goos"`
	GoArch  string  `json:"goarch"`
	CPUs    int     `json:"cpus"`
	Entries []Entry `json:"entries"`
}

func main() {
	quick := flag.Bool("quick", false, "smaller sizes and fewer reps (the CI sweep)")
	out := flag.String("out", "BENCH_host.json", "snapshot output path")
	baseline := flag.String("baseline", "", "compare against this committed snapshot and gate on regression")
	reps := flag.Int("reps", 0, "native reps per entry after one warmup (0 = 5, or 3 with -quick)")
	profilePath := flag.String("profile", "", "machine profile for the auto entries (default: the user cache dir)")
	simTol := flag.Float64("sim-tolerance", 0.001, "max relative deviation of simulated model times from baseline")
	nativeTol := flag.Float64("native-tolerance", 3.0, "max factor between host and baseline normalized native ratios")
	strictNative := flag.Bool("strict-native", false, "fail (not warn) on native ratio deviations — same-host trend tracking")
	autoTol := flag.Float64("auto-tolerance", 0.10, "auto must be within this fraction of the best fixed shape")
	flag.Parse()

	r := *reps
	if r <= 0 {
		r = 5
		if *quick {
			r = 3
		}
	}
	snap, err := runSweep(*quick, r, *profilePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, _ := json.MarshalIndent(snap, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("bench: %d entries -> %s (quick=%v, %d CPUs)\n", len(snap.Entries), *out, *quick, snap.CPUs)

	failures := gateAuto(snap, *autoTol)
	if *baseline != "" {
		base, err := loadSnapshot(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: baseline: %v\n", err)
			os.Exit(1)
		}
		f, warns := compare(snap, base, *simTol, *nativeTol)
		for _, w := range warns {
			if *strictNative {
				failures = append(failures, w)
			} else {
				fmt.Printf("bench: WARN %s\n", w)
			}
		}
		failures = append(failures, f...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "bench: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("bench: all gates passed")
}

// sweepSizes and sweepElems pin the sweep so every snapshot measures
// the same grid and baselines stay comparable.
func sweepSizes(quick bool) []int {
	if quick {
		return []int{1 << 10, 1 << 12}
	}
	return []int{1 << 12, 1 << 14, 1 << 16}
}

func sweepElems(quick bool) []element.Type {
	if quick {
		return []element.Type{element.TU32, element.TKV64}
	}
	return []element.Type{element.TU32, element.TU64, element.TKV64}
}

// fixedShapes are the fixed configurations each group races: every
// algorithm the planner can choose, at P up to 4 (P=1 collapses them
// all to one sequential sort, so only smart runs there). Covering the
// full candidate set means an auto plan always has a fixed twin
// measured by the same methodology for the gate to score.
func fixedShapes(size int) []parbitonic.Config {
	var out []parbitonic.Config
	algs := []parbitonic.Algorithm{
		parbitonic.SmartBitonic, parbitonic.CyclicBlockedBitonic, parbitonic.BlockedMergeBitonic,
		parbitonic.SampleSort, parbitonic.RadixSort,
	}
	for p := 1; p <= 4 && p <= size/2; p *= 2 {
		for _, alg := range algs {
			if p == 1 && alg != parbitonic.SmartBitonic {
				continue
			}
			out = append(out, parbitonic.Config{Processors: p, Algorithm: alg})
		}
	}
	return out
}

// shapeName renders a fixed shape's stable entry key.
func shapeName(cfg parbitonic.Config) string {
	var alg string
	switch cfg.Algorithm {
	case parbitonic.SmartBitonic:
		alg = "smart"
	case parbitonic.CyclicBlockedBitonic:
		alg = "cyclic-blocked"
	case parbitonic.BlockedMergeBitonic:
		alg = "blocked-merge"
	case parbitonic.SampleSort:
		alg = "sample"
	case parbitonic.RadixSort:
		alg = "radix"
	default:
		alg = cfg.Algorithm.String()
	}
	return fmt.Sprintf("%s/p%d", alg, cfg.Processors)
}

// runSweep measures the full grid and assembles the snapshot.
func runSweep(quick bool, reps int, profilePath string) (*Snapshot, error) {
	snap := &Snapshot{
		Schema: BenchSchema, Version: BenchVersion, Quick: quick,
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH, CPUs: runtime.NumCPU(),
	}
	for _, size := range sweepSizes(quick) {
		for _, et := range sweepElems(quick) {
			for _, backend := range []parbitonic.Backend{parbitonic.Simulated, parbitonic.Native} {
				entries, err := benchGroup(et, size, backend, reps, profilePath)
				if err != nil {
					return nil, fmt.Errorf("bench: %v %v size %d: %w", et, backend, size, err)
				}
				snap.Entries = append(snap.Entries, entries...)
			}
		}
	}
	snap.Entries = append(snap.Entries, kernelSweep(quick, reps)...)
	return snap, nil
}

// kernelSweep measures the localsort kernel layer directly — the
// microbench section of the snapshot (backend "kernel"), one size per
// sweep so the end-to-end trajectory can be split into kernel-level
// and orchestration-level movement. Kernel times are wall µs and
// host-dependent; the gates leave them alone, they are recorded for
// trend tracking.
func kernelSweep(quick bool, reps int) []Entry {
	size := 1 << 20
	if quick {
		size = 1 << 16
	}
	var out []Entry
	for _, et := range sweepElems(quick) {
		switch et {
		case element.TU32:
			out = append(out, kernelGroupOf[uint32](size, reps)...)
		case element.TU64:
			out = append(out, kernelGroupOf[uint64](size, reps)...)
		case element.TF32:
			out = append(out, kernelGroupOf[float32](size, reps)...)
		case element.TF64:
			out = append(out, kernelGroupOf[float64](size, reps)...)
		case element.TKV64:
			out = append(out, kernelGroupOf[element.KV64](size, reps)...)
		}
	}
	return out
}

// kernelGroupOf measures one element type's kernels: the hybrid radix
// sort, the full local sort (radix + direction fix-up), the bitonic
// merge of a bitonic sequence, and the two-way merge — the per-phase
// primitives every parallel run is built from.
func kernelGroupOf[E element.Elem](size, reps int) []Entry {
	keys := workload.Elems[E](workload.Uniform31, size, 1996)
	work := make([]E, size)
	scratch := make([]E, size)

	// A bitonic input for the merge kernel: ascending then descending.
	bitonic := append([]E(nil), keys...)
	localsort.SortScratch(bitonic[:size/2], true, scratch)
	localsort.SortScratch(bitonic[size/2:], false, scratch)
	a := append([]E(nil), keys[:size/2]...)
	b := append([]E(nil), keys[size/2:]...)
	localsort.SortScratch(a, true, scratch)
	localsort.SortScratch(b, true, scratch)

	var out []Entry
	for _, k := range []struct {
		name string
		f    func()
	}{
		{"radix", func() { copy(work, keys); localsort.RadixSortScratch(work, scratch) }},
		{"localsort", func() { copy(work, keys); localsort.SortScratch(work, true, scratch) }},
		{"bitonic-merge", func() { bitseq.SortBitonic(work, bitonic, true) }},
		{"merge-two", func() { localsort.MergeTwo(work, a, b, true) }},
	} {
		mean, min := measureKernel(reps, k.f)
		out = append(out, Entry{
			Backend: "kernel", Config: k.name,
			Elem: element.TypeOf[E]().String(), Size: size,
			US: mean, MinUS: min,
		})
	}
	return out
}

// measureKernel is measureSort's methodology for an in-process kernel:
// one warmup, reps wall-clock measurements, trimmed mean + minimum.
func measureKernel(reps int, f func()) (mean, min float64) {
	times := make([]float64, 0, reps)
	for i := 0; i <= reps; i++ {
		start := time.Now()
		f()
		if i == 0 {
			continue // warmup
		}
		times = append(times, float64(time.Since(start).Nanoseconds())/1e3)
	}
	sort.Float64s(times)
	lo, hi := 0, len(times)
	if len(times) >= 5 {
		lo, hi = 1, len(times)-1
	}
	sum := 0.0
	for _, t := range times[lo:hi] {
		sum += t
	}
	return sum / float64(hi-lo), times[0]
}

// benchGroup measures one (elem, size, backend) group: every fixed
// shape plus the autotuner.
func benchGroup(et element.Type, size int, backend parbitonic.Backend, reps int, profilePath string) ([]Entry, error) {
	switch et {
	case element.TU32:
		return benchGroupOf[uint32](size, backend, reps, profilePath)
	case element.TU64:
		return benchGroupOf[uint64](size, backend, reps, profilePath)
	case element.TF32:
		return benchGroupOf[float32](size, backend, reps, profilePath)
	case element.TF64:
		return benchGroupOf[float64](size, backend, reps, profilePath)
	case element.TKV64:
		return benchGroupOf[element.KV64](size, backend, reps, profilePath)
	}
	return nil, fmt.Errorf("unknown element type %v", et)
}

func benchGroupOf[E element.Elem](size int, backend parbitonic.Backend, reps int, profilePath string) ([]Entry, error) {
	bname := "simulated"
	if backend == parbitonic.Native {
		bname = "native"
	} else {
		reps = 1 // model time is deterministic
	}
	var entries []Entry
	for _, cfg := range fixedShapes(size) {
		cfg.Backend = backend
		// Same instrumentation as the auto run below, so the
		// comparison measures the shape and not the reporting.
		cfg.Observe = func(parbitonic.SortReport) {}
		mean, min, err := measureSort[E](size, cfg, reps)
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{
			Backend: bname, Config: shapeName(cfg),
			Elem: element.TypeOf[E]().String(), Size: size,
			US: mean, MinUS: min,
		})
	}
	// Processors caps the planner's candidate P at the fixed sweep's
	// ceiling: the race stays apples-to-apples, and the simulated auto
	// plan (hence its model time, which the strict baseline gate
	// checks) cannot vary with the host's GOMAXPROCS.
	auto := parbitonic.Config{Auto: true, Processors: 4, Backend: backend, ProfilePath: profilePath}
	var plan parbitonic.Plan
	auto.Observe = func(r parbitonic.SortReport) {
		if r.Plan != nil {
			plan = *r.Plan
		}
	}
	mean, min, err := measureSort[E](size, auto, reps)
	if err != nil {
		return nil, err
	}
	entries = append(entries, Entry{
		Backend: bname, Config: "auto",
		Elem: element.TypeOf[E]().String(), Size: size,
		US: mean, MinUS: min,
		Plan:        plan.String(),
		PlanConfig:  shapeName(parbitonic.Config{Processors: plan.Processors, Algorithm: plan.Algorithm}),
		PredictedUS: plan.PredictedUS,
	})
	return entries, nil
}

// measureSort runs one warmup plus reps measured sorts and returns the
// trimmed mean (drop min and max when reps >= 5) and the minimum of
// the measured times, in the backend's µs.
func measureSort[E element.Elem](size int, cfg parbitonic.Config, reps int) (mean, min float64, err error) {
	times := make([]float64, 0, reps)
	for i := 0; i <= reps; i++ {
		data := workload.Elems[E](workload.Uniform31, size, 1996)
		res, serr := parbitonic.SortContext(context.Background(), data, cfg)
		if serr != nil {
			return 0, 0, serr
		}
		if i == 0 {
			continue // warmup
		}
		times = append(times, res.Time)
	}
	sort.Float64s(times)
	lo, hi := 0, len(times)
	if len(times) >= 5 {
		lo, hi = 1, len(times)-1
	}
	sum := 0.0
	for _, t := range times[lo:hi] {
		sum += t
	}
	return sum / float64(hi-lo), times[0], nil
}

// groupKey identifies a (backend, elem, size) gate group.
type groupKey struct {
	backend, elem string
	size          int
}

// entryKey identifies one entry across snapshots.
type entryKey struct {
	groupKey
	config string
}

func index(s *Snapshot) map[entryKey]Entry {
	out := make(map[entryKey]Entry, len(s.Entries))
	for _, e := range s.Entries {
		out[entryKey{groupKey{e.Backend, e.Elem, e.Size}, e.Config}] = e
	}
	return out
}

// gateAuto enforces the autotuner acceptance bar on every native
// group: the planner's choice beats the worst fixed shape and lands
// within tol of the best. The planner is judged on the shape it
// chose, so the gate scores the fixed sweep's own measurement of that
// shape (identical methodology on both sides, min over reps) — the
// separate auto-run measurement of the same configuration would only
// add a second helping of timer noise. When the chosen shape is
// missing from the fixed sweep (a non-bitonic plan), the auto run's
// time stands in for it.
func gateAuto(s *Snapshot, tol float64) []string {
	groups := map[groupKey][]Entry{}
	for _, e := range s.Entries {
		if e.Backend != "native" {
			continue
		}
		groups[groupKey{e.Backend, e.Elem, e.Size}] = append(groups[groupKey{e.Backend, e.Elem, e.Size}], e)
	}
	var failures []string
	for k, entries := range groups {
		var auto *Entry
		best, worst := 0.0, 0.0
		fixed := map[string]float64{}
		for i, e := range entries {
			if e.Config == "auto" {
				auto = &entries[i]
				continue
			}
			fixed[e.Config] = e.MinUS
			if best == 0 || e.MinUS < best {
				best = e.MinUS
			}
			if e.MinUS > worst {
				worst = e.MinUS
			}
		}
		if auto == nil || best == 0 {
			continue
		}
		chosen, ok := fixed[auto.PlanConfig]
		if !ok {
			chosen = auto.MinUS
		}
		if chosen > worst {
			failures = append(failures, fmt.Sprintf(
				"auto gate %s/%s/%d: chosen shape %.1fus slower than the worst fixed shape %.1fus (plan %s)",
				k.backend, k.elem, k.size, chosen, worst, auto.Plan))
		}
		if chosen > best*(1+tol) {
			failures = append(failures, fmt.Sprintf(
				"auto gate %s/%s/%d: chosen shape %.1fus not within %.0f%% of the best fixed shape %.1fus (plan %s)",
				k.backend, k.elem, k.size, chosen, tol*100, best, auto.Plan))
		}
	}
	sort.Strings(failures)
	return failures
}

// compare checks the host snapshot against the committed baseline over
// their common entries. Simulated model times are deterministic, so
// deviations beyond simTol are failures. Native wall times are
// host-dependent: each entry is normalized to its group's smart/p1
// anchor and the ratios compared within a factor of nativeTol —
// returned as warnings for the caller to escalate (-strict-native).
func compare(host, base *Snapshot, simTol, nativeTol float64) (failures, warnings []string) {
	hi, bi := index(host), index(base)
	for k, be := range bi {
		he, ok := hi[k]
		if !ok {
			continue // the quick sweep is a subset of the full grid
		}
		switch k.backend {
		case "simulated":
			if dev := relDev(he.US, be.US); dev > simTol {
				failures = append(failures, fmt.Sprintf(
					"simulated %s/%s/%d %s: model time %.2fus vs baseline %.2fus (%.2f%% > %.2f%%) — the cost model changed; regenerate the baseline if intended",
					k.backend, k.elem, k.size, k.config, he.US, be.US, dev*100, simTol*100))
			}
		case "native":
			anchor := entryKey{k.groupKey, "smart/p1"}
			ha, hok := hi[anchor]
			ba, bok := bi[anchor]
			if !hok || !bok || k.config == "smart/p1" || ha.MinUS == 0 || ba.MinUS == 0 {
				continue
			}
			hr, br := he.MinUS/ha.MinUS, be.MinUS/ba.MinUS
			if hr > br*nativeTol || br > hr*nativeTol {
				warnings = append(warnings, fmt.Sprintf(
					"native %s/%d %s: normalized ratio %.2f vs baseline %.2f (beyond x%.1f; hosts have %d vs %d CPUs)",
					k.elem, k.size, k.config, hr, br, nativeTol, host.CPUs, base.CPUs))
			}
		}
	}
	sort.Strings(failures)
	sort.Strings(warnings)
	return failures, warnings
}

func relDev(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}

// loadSnapshot reads and validates a BENCH_*.json file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, BenchSchema)
	}
	if s.Version != BenchVersion {
		return nil, fmt.Errorf("%s: version %d, want %d — regenerate with this cmd/bench", path, s.Version, BenchVersion)
	}
	return &s, nil
}
