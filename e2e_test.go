package parbitonic_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runGo executes `go run <pkg> <args...>` and returns combined output.
func runGo(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

func wantAll(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n----\n%s", w, out)
		}
	}
}

// End-to-end: every command and example must build, run, and produce
// its headline output. Skipped under -short (each invocation compiles
// a binary).
func TestE2ECommands(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e compiles and runs the binaries")
	}
	t.Run("bitonic-sort", func(t *testing.T) {
		out := runGo(t, "./cmd/bitonic-sort", "-p", "8", "-n", "1024", "-alg", "smart", "-trace")
		wantAll(t, out, "algorithm        smart-bitonic", "model time", "remaps=", "virtual-time timeline", "barrier-wait share")
	})
	t.Run("bitonic-sort-all-algorithms", func(t *testing.T) {
		for _, alg := range []string{"cyclic-blocked", "blocked-merge", "sample", "radix"} {
			out := runGo(t, "./cmd/bitonic-sort", "-p", "4", "-n", "512", "-alg", alg)
			wantAll(t, out, "model time")
		}
	})
	t.Run("bitonic-sort-observability", func(t *testing.T) {
		// One CLI run with the full telemetry pipeline: trace file,
		// metrics endpoint + snapshot, drift report, structured logs.
		dir := t.TempDir()
		tracePath := filepath.Join(dir, "trace.json")
		snapPath := filepath.Join(dir, "metrics.prom")
		out := runGo(t, "./cmd/bitonic-sort",
			"-p", "8", "-n", "1024", "-backend", "native",
			"-metrics-addr", ":0", "-metrics-snapshot", snapPath,
			"-trace-out", tracePath, "-drift", "-slog", "-verify")
		wantAll(t, out,
			"metrics          http://", "/metrics",
			"model-drift report: smart-bitonic on native",
			"remaps", "1.0000",
			"trace            "+tracePath,
			"metrics snapshot "+snapPath,
			"sort run started", "sort run finished", // slog on stderr
			"verify           ok")

		// The trace must be valid Chrome trace-event JSON with one
		// named track per processor and complete spans carrying rounds.
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Tid  int            `json:"tid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		tracks, spanProcs := map[int]bool{}, map[int]bool{}
		for _, e := range doc.TraceEvents {
			switch {
			case e.Ph == "M" && e.Name == "thread_name":
				tracks[e.Tid] = true
			case e.Ph == "X":
				spanProcs[e.Tid] = true
				if _, ok := e.Args["round"]; !ok {
					t.Fatalf("span %+v missing round arg", e)
				}
			}
		}
		if len(tracks) != 8 || len(spanProcs) != 8 {
			t.Errorf("trace has %d tracks and %d processors with spans, want 8 and 8", len(tracks), len(spanProcs))
		}

		// The scrape must carry the counters and histograms.
		snap, err := os.ReadFile(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		wantAll(t, string(snap),
			`parbitonic_runs_total{outcome="ok"} 1`,
			`parbitonic_events_total{kind="fault"} 0`,
			`parbitonic_events_total{kind="verify-failure"} 0`,
			"parbitonic_keys_sorted_total 8192",
			"parbitonic_phase_seconds_bucket",
			`parbitonic_phase_seconds_count{phase="compute"}`)
	})
	t.Run("layout-viz", func(t *testing.T) {
		out := runGo(t, "./cmd/layout-viz")
		wantAll(t, out, "Smart remap schedule", "PPPLLLLP", "smart 7 vs cyclic-blocked 8")
	})
	t.Run("experiments", func(t *testing.T) {
		out := runGo(t, "./cmd/experiments", "-scale", "10", "-only", "Lemma 5", "-charts=false")
		wantAll(t, out, "Lemma 5", "| head | tail |")
	})
	t.Run("experiments-svg", func(t *testing.T) {
		dir := t.TempDir()
		out := runGo(t, "./cmd/experiments", "-scale", "10", "-only", "5.3", "-svg", dir)
		wantAll(t, out, "figure written to")
	})
}

func TestE2EExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e compiles and runs the binaries")
	}
	t.Run("quickstart", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/quickstart"), "sorted 1048576 keys", "smallest key")
	})
	t.Run("layouts", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/layouts"), "1 2 3 3 4 4 2", "Lemma 1 lower bound")
	})
	t.Run("modelstudy", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/modelstudy"), "winner", "small-P exception")
	})
	t.Run("sortrace", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/sortrace"), "fastest", "oblivious")
	})
	t.Run("fftremap", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/fftremap"), "forward+inverse = identity", "volume ratio")
	})
}
