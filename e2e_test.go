package parbitonic_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runGo executes `go run <pkg> <args...>` and returns combined output.
func runGo(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

func wantAll(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n----\n%s", w, out)
		}
	}
}

// End-to-end: every command and example must build, run, and produce
// its headline output. Skipped under -short (each invocation compiles
// a binary).
func TestE2ECommands(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e compiles and runs the binaries")
	}
	t.Run("bitonic-sort", func(t *testing.T) {
		out := runGo(t, "./cmd/bitonic-sort", "-p", "8", "-n", "1024", "-alg", "smart", "-trace")
		wantAll(t, out, "algorithm        smart-bitonic", "model time", "remaps=", "virtual-time timeline", "barrier-wait share")
	})
	t.Run("bitonic-sort-all-algorithms", func(t *testing.T) {
		for _, alg := range []string{"cyclic-blocked", "blocked-merge", "sample", "radix"} {
			out := runGo(t, "./cmd/bitonic-sort", "-p", "4", "-n", "512", "-alg", alg)
			wantAll(t, out, "model time")
		}
	})
	t.Run("layout-viz", func(t *testing.T) {
		out := runGo(t, "./cmd/layout-viz")
		wantAll(t, out, "Smart remap schedule", "PPPLLLLP", "smart 7 vs cyclic-blocked 8")
	})
	t.Run("experiments", func(t *testing.T) {
		out := runGo(t, "./cmd/experiments", "-scale", "10", "-only", "Lemma 5", "-charts=false")
		wantAll(t, out, "Lemma 5", "| head | tail |")
	})
	t.Run("experiments-svg", func(t *testing.T) {
		dir := t.TempDir()
		out := runGo(t, "./cmd/experiments", "-scale", "10", "-only", "5.3", "-svg", dir)
		wantAll(t, out, "figure written to")
	})
}

func TestE2EExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e compiles and runs the binaries")
	}
	t.Run("quickstart", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/quickstart"), "sorted 1048576 keys", "smallest key")
	})
	t.Run("layouts", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/layouts"), "1 2 3 3 4 4 2", "Lemma 1 lower bound")
	})
	t.Run("modelstudy", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/modelstudy"), "winner", "small-P exception")
	})
	t.Run("sortrace", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/sortrace"), "fastest", "oblivious")
	})
	t.Run("fftremap", func(t *testing.T) {
		wantAll(t, runGo(t, "./examples/fftremap"), "forward+inverse = identity", "volume ratio")
	})
}
