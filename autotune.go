package parbitonic

import (
	"fmt"
	"runtime"
	"time"

	"parbitonic/element"
	"parbitonic/internal/intbits"
	"parbitonic/internal/obs"
	"parbitonic/internal/tune"
)

// Plan is one autotuner decision: the execution shape the cost model
// predicts fastest for a given data size and element type, plus the
// prediction itself. Plans come from PlanFor (explicitly) or from
// Config.Auto (implicitly, per Sort call); apply one with Apply.
//
// Predicted times are microseconds in the backend's own unit — wall
// clock for Native (from the machine profile, see internal/tune and
// TUNING.md), model time for Simulated (the simulator's own cost
// model, so the plan ranking matches what simulated runs would
// report). The two are never compared against each other.
type Plan struct {
	Algorithm  Algorithm
	Processors int
	Backend    Backend
	Strategy   RemapStrategy
	// KeysPerProc is the padded per-processor share the score assumed
	// (PaddedSize(keys, Processors) / Processors).
	KeysPerProc int
	// PredictedUS = ComputeUS + CommUS: the predicted per-processor
	// time in microseconds.
	PredictedUS float64
	ComputeUS   float64
	CommUS      float64
	// R, V and M are the §3.4 communication metrics the score used:
	// remaps, volume (elements) and messages per processor.
	R, V, M int
	// ProfileSource is "calibrated" when a machine profile was found
	// and "fallback" when the shipped defaults scored the plan — run
	// bitonic-sort -calibrate to replace fallbacks with measurements.
	ProfileSource string
}

// String renders the plan compactly.
func (p Plan) String() string {
	s := ""
	if p.Strategy != HeadRemap {
		s = fmt.Sprintf("/%v", p.Strategy.schedule())
	}
	return fmt.Sprintf("%v P=%d %v%s predicted=%.0fµs (%s profile)",
		p.Algorithm, p.Processors, p.Backend, s, p.PredictedUS, p.ProfileSource)
}

// Apply returns cfg specialized to this plan: Processors, Algorithm
// and Strategy replaced by the plan's choices and Auto cleared, every
// other field (Backend, Verify, telemetry sinks, model overrides)
// preserved. The result is a normal fixed-shape Config, usable with
// NewEngineOf.
func (p Plan) Apply(cfg Config) Config {
	cfg.Auto = false
	cfg.Processors = p.Processors
	cfg.Algorithm = p.Algorithm
	cfg.Strategy = p.Strategy
	return cfg
}

// PlanFor scores every candidate plan for sorting totalKeys elements
// of type E and returns the predicted-fastest one. cfg supplies the
// constraints: Backend fixes which backend candidates run on (plans
// are never compared across backends), Processors caps the candidate
// P (0 means GOMAXPROCS; Native plans are additionally clamped to
// GOMAXPROCS, since oversubscribed goroutines cannot deliver the
// parallel speedup the per-processor model predicts), and ProfilePath
// overrides the machine profile location (empty means the default
// cache path, falling back to shipped defaults when no profile
// exists). Ties break
// deterministically: smaller P, then algorithm declaration order.
func PlanFor[E element.Elem](totalKeys int, cfg Config) (Plan, error) {
	return planFor(totalKeys, element.TypeOf[E](), cfg, 0)
}

// planFor is PlanFor over a runtime element.Type, with an optional
// additional cap on P (0 = none) for callers whose key count must
// divide exactly.
func planFor(totalKeys int, t element.Type, cfg Config, maxPCap int) (Plan, error) {
	prof, _, err := tune.LoadOrFallback(cfg.ProfilePath)
	if err != nil {
		return Plan{}, fmt.Errorf("parbitonic: machine profile: %w", err)
	}
	maxP := cfg.Processors
	if maxP <= 0 {
		maxP = runtime.GOMAXPROCS(0)
	}
	if maxPCap > 0 && maxP > maxPCap {
		maxP = maxPCap
	}
	// On the native backend every predicted cost — kernels and channel
	// copies alike — is CPU work, so P beyond the schedulable cores
	// only adds time-slicing overhead the per-processor model cannot
	// see. Clamp the candidates rather than let the planner predict
	// parallel speedup the host cannot deliver. (Simulated plans model
	// a machine that really has P processors, so they are not clamped.)
	if cfg.Backend == Native {
		if c := runtime.GOMAXPROCS(0); maxP > c {
			maxP = c
		}
	}
	backend := tune.BackendSimulated
	if cfg.Backend == Native {
		backend = tune.BackendNative
	}
	pl := &tune.Planner{Profile: prof, MaxP: maxP, Backend: backend}
	tp, err := pl.Plan(totalKeys, t)
	if err != nil {
		return Plan{}, err
	}
	return planFromTune(tp, cfg.Backend)
}

// planFromTune converts the internal planner's plan to the public
// shape.
func planFromTune(tp tune.Plan, backend Backend) (Plan, error) {
	var alg Algorithm
	switch tp.Algorithm {
	case tune.AlgSmart:
		alg = SmartBitonic
	case tune.AlgCyclicBlocked:
		alg = CyclicBlockedBitonic
	case tune.AlgBlockedMerge:
		alg = BlockedMergeBitonic
	case tune.AlgSampleSort:
		alg = SampleSort
	case tune.AlgRadixSort:
		alg = RadixSort
	default:
		return Plan{}, fmt.Errorf("parbitonic: planner returned unknown algorithm %q", tp.Algorithm)
	}
	strat := HeadRemap
	switch tp.Strategy {
	case "tail":
		strat = TailRemap
	case "middle1":
		strat = MiddleRemap1
	case "middle2":
		strat = MiddleRemap2
	}
	return Plan{
		Algorithm:     alg,
		Processors:    tp.Processors,
		Backend:       backend,
		Strategy:      strat,
		KeysPerProc:   tp.KeysPerProc,
		PredictedUS:   tp.PredictedUS,
		ComputeUS:     tp.ComputeUS,
		CommUS:        tp.CommUS,
		R:             tp.R,
		V:             tp.V,
		M:             tp.M,
		ProfileSource: tp.Source,
	}, nil
}

// resolveAuto replaces an Auto config with the planner's choice for
// this key count. strict callers (Sort, whose length must divide
// exactly) additionally cap P so the per-processor share stays a
// power of two of at least 2 — for a power-of-two length that is
// P <= len/2; a length Sort would reject anyway resolves to P=1 and
// fails with Sort's usual shape error. The resolved config carries a
// plan event into cfg.Obs and a plan-time drift quantity into
// cfg.Observe reports.
func resolveAuto[E element.Elem](cfg Config, total int, strict bool) (Config, error) {
	cap := 0
	if strict {
		if total >= 2 && intbits.IsPow2(total) {
			cap = total / 2
		} else {
			cap = 1
		}
	}
	plan, err := planFor(total, element.TypeOf[E](), cfg, cap)
	if err != nil {
		return Config{}, err
	}
	out := plan.Apply(cfg)
	if out.Obs != nil {
		out.Obs.Emit(obs.Event{
			Kind:   obs.EventPlan,
			Detail: plan.String(),
			Wall:   time.Now().UnixNano(),
		})
	}
	if orig := out.Observe; orig != nil {
		out.Observe = func(rep SortReport) {
			p := plan
			rep.Plan = &p
			rep.Quantities = append(rep.Quantities, DriftQuantity{
				Name:      "plan-time",
				Measured:  rep.Result.Time,
				Predicted: plan.PredictedUS,
			})
			orig(rep)
		}
	}
	return out, nil
}
