package trace

import (
	"strings"
	"testing"
)

func TestAddAndTotals(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 10})
	r.Add(Event{Proc: 1, Phase: Wait, Start: 5, End: 10})
	r.Add(Event{Proc: 0, Phase: Transfer, Start: 10, End: 12})
	r.Add(Event{Proc: 0, Phase: Pack, Start: 12, End: 12}) // zero length: dropped
	totals := r.PhaseTotals()
	if totals[Compute] != 10 || totals[Wait] != 5 || totals[Transfer] != 2 || totals[Pack] != 0 {
		t.Errorf("totals %v", totals)
	}
	if got := r.WaitShare(); got < 0.29 || got > 0.30 {
		t.Errorf("wait share %v, want 5/17", got)
	}
}

func TestEventsSorted(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 1, Phase: Compute, Start: 3, End: 4})
	r.Add(Event{Proc: 0, Phase: Compute, Start: 5, End: 6})
	r.Add(Event{Proc: 0, Phase: Compute, Start: 1, End: 2})
	ev := r.Events()
	if ev[0].Proc != 0 || ev[0].Start != 1 || ev[2].Proc != 1 {
		t.Errorf("events not sorted: %v", ev)
	}
}

func TestTimelineRendering(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 50})
	r.Add(Event{Proc: 0, Phase: Transfer, Start: 50, End: 100})
	r.Add(Event{Proc: 1, Phase: Compute, Start: 0, End: 20})
	r.Add(Event{Proc: 1, Phase: Wait, Start: 20, End: 100})
	out := r.Timeline(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "C") || !strings.Contains(lines[1], "T") {
		t.Errorf("proc 0 row missing phases: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".") {
		t.Errorf("proc 1 row missing wait: %q", lines[2])
	}
	// Proc 0's first half is compute, second half transfer.
	row := lines[1][strings.Index(lines[1], "|")+1:]
	if row[0] != 'C' || row[18] != 'T' {
		t.Errorf("phase placement wrong: %q", row)
	}
}

func TestTimelineEmptyAndReset(t *testing.T) {
	var r Recorder
	if !strings.Contains(r.Timeline(10), "no events") {
		t.Error("empty timeline should say so")
	}
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 1})
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset should clear")
	}
}

func TestPhaseStrings(t *testing.T) {
	for ph, want := range map[Phase]string{Compute: "compute", Pack: "pack", Transfer: "transfer", Unpack: "unpack", Wait: "wait", Phase('z'): "?"} {
		if ph.String() != want {
			t.Errorf("%c -> %q want %q", byte(ph), ph.String(), want)
		}
	}
}
