package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndTotals(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 10})
	r.Add(Event{Proc: 1, Phase: Wait, Start: 5, End: 10})
	r.Add(Event{Proc: 0, Phase: Transfer, Start: 10, End: 12})
	r.Add(Event{Proc: 0, Phase: Pack, Start: 12, End: 12}) // zero length: dropped
	totals := r.PhaseTotals()
	if totals[Compute] != 10 || totals[Wait] != 5 || totals[Transfer] != 2 || totals[Pack] != 0 {
		t.Errorf("totals %v", totals)
	}
	if got := r.WaitShare(); got < 0.29 || got > 0.30 {
		t.Errorf("wait share %v, want 5/17", got)
	}
}

func TestEventsSorted(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 1, Phase: Compute, Start: 3, End: 4})
	r.Add(Event{Proc: 0, Phase: Compute, Start: 5, End: 6})
	r.Add(Event{Proc: 0, Phase: Compute, Start: 1, End: 2})
	ev := r.Events()
	if ev[0].Proc != 0 || ev[0].Start != 1 || ev[2].Proc != 1 {
		t.Errorf("events not sorted: %v", ev)
	}
}

func TestTimelineRendering(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 50})
	r.Add(Event{Proc: 0, Phase: Transfer, Start: 50, End: 100})
	r.Add(Event{Proc: 1, Phase: Compute, Start: 0, End: 20})
	r.Add(Event{Proc: 1, Phase: Wait, Start: 20, End: 100})
	out := r.Timeline(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "C") || !strings.Contains(lines[1], "T") {
		t.Errorf("proc 0 row missing phases: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".") {
		t.Errorf("proc 1 row missing wait: %q", lines[2])
	}
	// Proc 0's first half is compute, second half transfer.
	row := lines[1][strings.Index(lines[1], "|")+1:]
	if row[0] != 'C' || row[18] != 'T' {
		t.Errorf("phase placement wrong: %q", row)
	}
}

func TestTimelineEmptyAndReset(t *testing.T) {
	var r Recorder
	if !strings.Contains(r.Timeline(10), "no events") {
		t.Error("empty timeline should say so")
	}
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 1})
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset should clear")
	}
}

// An event ending exactly at the makespan lands in the last bucket —
// the b1 == width clamp must not drop it or index out of range.
func TestTimelineEventAtMakespanBoundary(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 100})
	r.Add(Event{Proc: 0, Phase: Transfer, Start: 90, End: 100}) // End == makespan
	out := r.Timeline(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row := lines[1][strings.Index(lines[1], "|")+1:]
	if len(row) < 10 {
		t.Fatalf("row too short: %q", row)
	}
	// The last bucket holds 10µs of compute and 10µs of transfer; the
	// fixed-order tie-break keeps compute, but the bucket must be
	// non-blank either way.
	if row[9] == ' ' {
		t.Errorf("bucket at makespan boundary is blank: %q", row)
	}
}

// Zero and negative widths fall back to 80 buckets instead of
// panicking or dividing by zero.
func TestTimelineWidthFallback(t *testing.T) {
	var r Recorder
	r.Add(Event{Proc: 0, Phase: Compute, Start: 0, End: 10})
	for _, w := range []int{0, -5} {
		out := r.Timeline(w)
		if !strings.Contains(out, "80 buckets") {
			t.Errorf("Timeline(%d) did not fall back to 80 buckets:\n%s", w, out)
		}
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		row := lines[1][strings.Index(lines[1], "|")+1:]
		if got := strings.LastIndex(row, "|"); got != 80 {
			t.Errorf("Timeline(%d) row is %d buckets wide, want 80: %q", w, got, row)
		}
	}
}

// When two phases split a bucket exactly evenly the winner is the one
// earlier in the fixed phase order (C, P, T, U, .), independent of map
// iteration order — render twice and demand byte equality as well.
func TestTimelineBucketTieBreak(t *testing.T) {
	var r Recorder
	// One bucket (width 1) with a perfect 50/50 split of wait and
	// compute; compute precedes wait in the fixed order and must win.
	r.Add(Event{Proc: 0, Phase: Wait, Start: 0, End: 5})
	r.Add(Event{Proc: 0, Phase: Compute, Start: 5, End: 10})
	out := r.Timeline(1)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row := lines[1][strings.Index(lines[1], "|")+1:]
	if row[0] != 'C' {
		t.Errorf("tie broke to %q, want C (fixed phase order)", row[0])
	}
	for i := 0; i < 10; i++ {
		if again := r.Timeline(1); again != out {
			t.Fatalf("rendering is not deterministic:\n%s\nvs\n%s", out, again)
		}
	}
}

// Concurrent Add from many goroutines (the recorder's production
// use: one goroutine per processor) must be race-free and lose
// nothing. Run with -race to make this bite.
func TestConcurrentAdd(t *testing.T) {
	var r Recorder
	const procs, events = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				start := float64(i)
				r.Add(Event{Proc: p, Phase: Compute, Start: start, End: start + 1})
				if i%10 == 0 {
					r.PhaseTotals() // aggregate while writers are active
					r.WaitShare()
				}
			}
		}(p)
	}
	wg.Wait()
	if got := len(r.Events()); got != procs*events {
		t.Errorf("recorded %d events, want %d", got, procs*events)
	}
	if tot := r.PhaseTotals()[Compute]; tot != procs*events {
		t.Errorf("compute total %v, want %d", tot, procs*events)
	}
}

func TestPhaseStrings(t *testing.T) {
	for ph, want := range map[Phase]string{Compute: "compute", Pack: "pack", Transfer: "transfer", Unpack: "unpack", Wait: "wait", Phase('z'): "?"} {
		if ph.String() != want {
			t.Errorf("%c -> %q want %q", byte(ph), ph.String(), want)
		}
	}
}
