// Package trace records per-processor virtual-time events from the
// simulated machine and renders them as a textual Gantt timeline. It
// makes visible what the aggregate numbers hide: where each processor
// spends its modelled time and how much of it is idling at barriers —
// the load imbalance that, e.g., sample sort suffers on skewed inputs
// (§5.5).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase identifies what a processor was doing during an event.
type Phase byte

const (
	Compute  Phase = 'C'
	Pack     Phase = 'P'
	Transfer Phase = 'T'
	Unpack   Phase = 'U'
	Wait     Phase = '.' // idle at a barrier waiting for slower peers
)

func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Pack:
		return "pack"
	case Transfer:
		return "transfer"
	case Unpack:
		return "unpack"
	case Wait:
		return "wait"
	}
	return "?"
}

// Event is one span of virtual time on one processor.
type Event struct {
	Proc       int
	Phase      Phase
	Start, End float64 // model µs
}

// Recorder collects events; safe for concurrent use by the machine's
// processor goroutines.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Add records an event. Zero-length events are dropped.
func (r *Recorder) Add(e Event) {
	if e.End <= e.Start {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by processor and
// start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// PhaseTotals sums the recorded time by phase across all processors.
// It aggregates in a single pass under the lock — no copy, no sort —
// so it is cheap enough to poll mid-run.
func (r *Recorder) PhaseTotals() map[Phase]float64 {
	totals := map[Phase]float64{}
	r.mu.Lock()
	for _, e := range r.events {
		totals[e.Phase] += e.End - e.Start
	}
	r.mu.Unlock()
	return totals
}

// WaitShare returns the fraction of total recorded time spent idling at
// barriers — a direct load-imbalance measure. It reuses PhaseTotals'
// single aggregation pass.
func (r *Recorder) WaitShare() float64 {
	totals := r.PhaseTotals()
	var all float64
	for _, v := range totals {
		all += v
	}
	if all == 0 {
		return 0
	}
	return totals[Wait] / all
}

// Timeline renders a Gantt chart: one row per processor, `width`
// buckets across the makespan, each bucket showing the phase that
// dominated it (blank when nothing was recorded there).
func (r *Recorder) Timeline(width int) string {
	if width <= 0 {
		width = 80
	}
	events := r.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}
	maxProc, makespan := 0, 0.0
	for _, e := range events {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
		if e.End > makespan {
			makespan = e.End
		}
	}
	bucket := makespan / float64(width)
	if bucket == 0 {
		bucket = 1
	}
	// weights[proc][bucket][phase] accumulated via a dense map keyed by
	// phase letter.
	type cell map[Phase]float64
	grid := make([][]cell, maxProc+1)
	for p := range grid {
		grid[p] = make([]cell, width)
	}
	for _, e := range events {
		b0 := int(e.Start / bucket)
		b1 := int(e.End / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := float64(b) * bucket
			hi := lo + bucket
			overlap := minF(e.End, hi) - maxF(e.Start, lo)
			if overlap <= 0 {
				continue
			}
			if grid[e.Proc][b] == nil {
				grid[e.Proc][b] = cell{}
			}
			grid[e.Proc][b][e.Phase] += overlap
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "virtual-time timeline (%.0f µs across %d buckets); C=compute P=pack T=transfer U=unpack .=wait\n",
		makespan, width)
	for p := 0; p <= maxProc; p++ {
		fmt.Fprintf(&sb, "proc %3d |", p)
		for b := 0; b < width; b++ {
			c := grid[p][b]
			if len(c) == 0 {
				sb.WriteByte(' ')
				continue
			}
			best, bestW := Phase(' '), -1.0
			// Deterministic tie-break: iterate phases in fixed order.
			for _, ph := range []Phase{Compute, Pack, Transfer, Unpack, Wait} {
				if w, ok := c[ph]; ok && w > bestW {
					best, bestW = ph, w
				}
			}
			sb.WriteByte(byte(best))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
