// Package tune closes the loop the paper opens in §3.4: it measures
// the cost parameters of the machine it is running on and uses the
// paper's closed forms to pick the execution plan — algorithm,
// processor count, backend, remap strategy — that the model predicts
// fastest for a given data size and element type.
//
// The package has three parts:
//
//   - A calibrator (Calibrate) that microbenchmarks the host's local
//     kernels — radix pass, linear merge, compare-exchange sweep, bulk
//     copy, per element type — and fits the effective LogGP-style
//     communication parameters of the native backend's exchange path
//     from measured runs, producing a Profile.
//   - A versioned machine-profile JSON (Profile, Save/Load,
//     DefaultPath) so calibration is paid once per host, not per
//     process.
//   - A planner (Planner) that enumerates candidate plans and scores
//     each with the §3.4 cost model T = (L+2o-g)R + GV + (g-G)M plus
//     the local-computation terms, returning the predicted-fastest
//     Plan.
//
// The shipped defaults in spmd.DefaultCosts and logp.MeikoCS2 model
// the paper's 1996 Meiko CS-2; Fallback is this package's equivalent
// for hosts that have never been calibrated. See TUNING.md for the
// handbook.
package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"parbitonic/element"
)

// ProfileSchema identifies the profile JSON document type; Load
// rejects documents claiming a different schema.
const ProfileSchema = "parbitonic-profile"

// ProfileVersion is the current profile format version. Load rejects
// profiles written by a different (older or newer) version: cost
// semantics may have changed, so a stale profile must be re-calibrated
// rather than silently misread. Unknown JSON fields are ignored, so
// adding fields does not require a version bump.
//
// Version 2: the localsort kernel overhaul (cache-blocked hybrid
// radix, branchless splits, mod-free bitonic merges) changed every
// measured kernel constant, so version-1 profiles describe kernels
// that no longer exist and must be re-calibrated.
const ProfileVersion = 2

// KernelCosts are the measured local-computation costs for one element
// type, in nanoseconds per element.
type KernelCosts struct {
	// RadixPassNS is one counting pass of LSD radix sort, per element
	// (localsort.RadixSort runs KeyBits/32*3 such passes).
	RadixPassNS float64 `json:"radix_pass_ns"`
	// MergeNS is one linear two-way merge, per element emitted
	// (localsort.MergeTwo).
	MergeNS float64 `json:"merge_ns"`
	// CompareNS is one compare-exchange network step over the local
	// data, per element (bitseq.Split).
	CompareNS float64 `json:"compare_ns"`
	// CopyNS is one bulk copy pass, per element — the pack/unpack
	// analogue of the native exchange path.
	CopyNS float64 `json:"copy_ns"`
}

// CommCosts are the fitted communication costs of the native backend's
// exchange path, in nanoseconds, expressed in the §3.4 shape
// T_comm = RemapNS·R + WordNS·(V·words) + MsgNS·M. RemapNS plays the
// role of (L+2o-g) — the fixed per-collective cost, dominated on a
// shared-memory host by barrier synchronization — WordNS the role of G
// (per 4-byte word of volume), and MsgNS the role of (g-G) (per
// message).
type CommCosts struct {
	// RemapNS is the fixed cost per collective exchange (the (L+2o-g)
	// analogue).
	RemapNS float64 `json:"remap_ns"`
	// WordNS is the cost per 4-byte word of transferred volume (the G
	// analogue).
	WordNS float64 `json:"word_ns"`
	// MsgNS is the cost per message (the (g-G) analogue).
	MsgNS float64 `json:"msg_ns"`
}

// Profile is a calibrated machine profile: everything the planner
// needs to score a plan on this host. It is persisted as versioned
// JSON (see Save, Load, DefaultPath).
type Profile struct {
	// Schema identifies the document kind; see ProfileSchema.
	Schema string `json:"schema"`
	// Version is the document format version; see ProfileVersion.
	Version int `json:"version"`

	// CreatedAt is the RFC 3339 calibration time, informational only.
	CreatedAt string `json:"created_at,omitempty"`
	// GoOS names the calibrated host's OS; the planner warns nothing,
	// but operators can tell a foreign profile at a glance.
	GoOS string `json:"goos,omitempty"`
	// GoArch names the calibrated host's architecture.
	GoArch string `json:"goarch,omitempty"`
	// CPUs is the calibrated host's logical CPU count.
	CPUs int `json:"cpus,omitempty"`
	// Quick records that the profile came from a -quick calibration
	// (fewer reps, smaller inputs — wider error bars).
	Quick bool `json:"quick,omitempty"`
	// Source is "calibrated" for measured profiles and "fallback" for
	// the shipped defaults.
	Source string `json:"source"`

	// Kernels maps element type names (element.Type.String: "u32",
	// "u64", "f32", "f64", "kv64") to their measured kernel costs. At
	// minimum "u32" must be present; missing types are width-scaled
	// from it (see KernelsFor).
	Kernels map[string]KernelCosts `json:"kernels"`

	// Comm holds the fitted native-backend communication costs.
	Comm CommCosts `json:"comm"`
}

// Validate checks that the profile is internally usable: correct
// schema/version, a "u32" kernel entry, and finite positive costs.
func (p *Profile) Validate() error {
	if p.Schema != ProfileSchema {
		return fmt.Errorf("tune: profile schema %q, want %q", p.Schema, ProfileSchema)
	}
	if p.Version != ProfileVersion {
		return fmt.Errorf("tune: profile version %d, want %d — re-run calibration (-calibrate)", p.Version, ProfileVersion)
	}
	base, ok := p.Kernels["u32"]
	if !ok {
		return fmt.Errorf("tune: profile has no u32 kernel costs")
	}
	for name, k := range p.Kernels {
		for _, c := range []struct {
			field string
			v     float64
		}{
			{"radix_pass_ns", k.RadixPassNS}, {"merge_ns", k.MergeNS},
			{"compare_ns", k.CompareNS}, {"copy_ns", k.CopyNS},
		} {
			if !(c.v > 0) || c.v > 1e9 {
				return fmt.Errorf("tune: kernel %s.%s = %v is not a positive cost", name, c.field, c.v)
			}
		}
	}
	_ = base
	for _, c := range []struct {
		field string
		v     float64
	}{
		{"remap_ns", p.Comm.RemapNS}, {"word_ns", p.Comm.WordNS}, {"msg_ns", p.Comm.MsgNS},
	} {
		if c.v < 0 || c.v != c.v {
			return fmt.Errorf("tune: comm %s = %v must be finite and non-negative", c.field, c.v)
		}
	}
	return nil
}

// KernelsFor returns the kernel costs for element type t. Types the
// profile was not calibrated for are width-scaled from the u32 entry:
// per-element costs multiply by the element's size in 32-bit words
// (the memory-bound approximation spmd's chargers use). The profile
// must have passed Validate.
func (p *Profile) KernelsFor(t element.Type) KernelCosts {
	if k, ok := p.Kernels[t.String()]; ok {
		return k
	}
	base := p.Kernels["u32"]
	w := float64(t.Width() / 4)
	return KernelCosts{
		RadixPassNS: base.RadixPassNS * w,
		MergeNS:     base.MergeNS * w,
		CompareNS:   base.CompareNS * w,
		CopyNS:      base.CopyNS * w,
	}
}

// Fallback returns the shipped default profile: representative costs
// for a contemporary x86-64 server core, used when no calibrated
// profile exists. Like spmd.DefaultCosts for the simulator, these are
// fallbacks, not measurements of your machine — run the calibrator
// (bitonic-sort -calibrate) for host-accurate planning.
func Fallback() *Profile {
	mk := func(w float64) KernelCosts {
		return KernelCosts{
			RadixPassNS: 1.4 * w,
			MergeNS:     2.4 * w,
			CompareNS:   1.6 * w,
			CopyNS:      0.35 * w,
		}
	}
	return &Profile{
		Schema:  ProfileSchema,
		Version: ProfileVersion,
		Source:  "fallback",
		Kernels: map[string]KernelCosts{
			"u32":  mk(1),
			"u64":  mk(2),
			"f32":  mk(1.2),
			"f64":  mk(2.4),
			"kv64": mk(4),
		},
		Comm: CommCosts{RemapNS: 30000, WordNS: 0.35, MsgNS: 300},
	}
}

// DefaultPath returns the default on-disk location of the machine
// profile: <user cache dir>/parbitonic/profile.json.
func DefaultPath() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tune: no user cache dir: %w", err)
	}
	return filepath.Join(dir, "parbitonic", "profile.json"), nil
}

// Load reads and validates a profile from path. A profile written by a
// different format version is rejected (re-calibrate instead); unknown
// JSON fields are ignored, so profiles from newer builds that only
// added fields still load.
func Load(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("tune: profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tune: profile %s: %w", path, err)
	}
	return &p, nil
}

// Save writes the profile as indented JSON to path, creating parent
// directories as needed. The write is atomic (temp file + rename) so a
// crash cannot leave a truncated profile behind.
func (p *Profile) Save(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".profile-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadOrFallback loads the profile at path (or DefaultPath when path
// is empty) and falls back to the shipped defaults when none exists.
// The boolean reports whether a calibrated profile was found. Errors
// other than absence — corrupt JSON, version mismatch — are returned,
// not masked: a profile the operator wrote deliberately should never
// be silently ignored.
func LoadOrFallback(path string) (*Profile, bool, error) {
	if path == "" {
		p, err := DefaultPath()
		if err != nil {
			return Fallback(), false, nil
		}
		path = p
	}
	prof, err := Load(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Fallback(), false, nil
		}
		return nil, false, err
	}
	return prof, true, nil
}

// hostStamp fills the informational host fields of a profile.
func hostStamp(p *Profile) {
	p.GoOS = runtime.GOOS
	p.GoArch = runtime.GOARCH
	p.CPUs = runtime.NumCPU()
}
