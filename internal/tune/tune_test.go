package tune

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"parbitonic/element"
	"parbitonic/internal/logp"
)

// exampleProfile loads the committed test profile that TUNING.md's
// worked example is written against.
func exampleProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := Load(filepath.Join("testdata", "profile_example.json"))
	if err != nil {
		t.Fatalf("loading example profile: %v", err)
	}
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := Fallback()
	p.CreatedAt = "2026-08-08T00:00:00Z"
	hostStamp(p)
	path := filepath.Join(t.TempDir(), "nested", "profile.json")
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\nsaved  %+v\nloaded %+v", p, got)
	}
}

func TestProfileForwardCompat(t *testing.T) {
	// Unknown fields must be ignored: a profile written by a future
	// build that only added fields still loads.
	raw, err := os.ReadFile(filepath.Join("testdata", "profile_example.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["future_field"] = map[string]any{"nested": true}
	doc["another_unknown"] = 42
	withUnknown, _ := json.Marshal(doc)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, withUnknown, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatalf("profile with unknown fields must load: %v", err)
	}
	if p.Comm.RemapNS != 10000 {
		t.Errorf("RemapNS = %v after unknown-field load, want 10000", p.Comm.RemapNS)
	}

	// A different format version must be rejected, not misread.
	doc["version"] = ProfileVersion + 1
	versioned, _ := json.Marshal(doc)
	if err := os.WriteFile(path, versioned, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("profile with version mismatch must be rejected")
	}

	// So must a foreign schema.
	doc["version"] = ProfileVersion
	doc["schema"] = "something-else"
	foreign, _ := json.Marshal(doc)
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("profile with foreign schema must be rejected")
	}
}

func TestProfileValidate(t *testing.T) {
	p := Fallback()
	delete(p.Kernels, "u32")
	if err := p.Validate(); err == nil {
		t.Error("profile without u32 kernels must not validate")
	}
	p = Fallback()
	k := p.Kernels["u32"]
	k.MergeNS = -1
	p.Kernels["u32"] = k
	if err := p.Validate(); err == nil {
		t.Error("negative kernel cost must not validate")
	}
}

func TestKernelsForScalesMissingTypes(t *testing.T) {
	p := exampleProfile(t)
	// u64 is present verbatim.
	if got := p.KernelsFor(element.TU64); got.MergeNS != 4.0 {
		t.Errorf("u64 MergeNS = %v, want the profile's 4.0", got.MergeNS)
	}
	// kv64 is absent: width-scaled (16 bytes = 4 words) from u32.
	got := p.KernelsFor(element.TKV64)
	if got.MergeNS != 8.0 || got.CopyNS != 2.0 {
		t.Errorf("kv64 scaled kernels = %+v, want 4x the u32 costs", got)
	}
}

func TestLoadOrFallback(t *testing.T) {
	// Missing file falls back.
	p, calibrated, err := LoadOrFallback(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || calibrated || p.Source != "fallback" {
		t.Errorf("missing profile: got (%v, %v, %v), want fallback", p.Source, calibrated, err)
	}
	// A corrupt file the operator pointed at must error, not be masked.
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOrFallback(path); err == nil {
		t.Error("corrupt profile must surface an error")
	}
}

// TestPlannerGoldenSmall hand-computes the worked example of TUNING.md
// from the committed profile: sorting 4096 uint32 keys on up to 4
// processors. Every plan cost below is derived by hand from the §3.4
// closed forms and the profile's round-number costs; the planner must
// reproduce them exactly.
func TestPlannerGoldenSmall(t *testing.T) {
	pl := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendNative}
	ranked, err := pl.Rank(4096, element.TU32)
	if err != nil {
		t.Fatal(err)
	}

	// P=1: compute only, 3 radix passes x 1 ns over 4096 keys = 12.288 µs.
	best := ranked[0]
	if best.Algorithm != AlgSmart || best.Processors != 1 {
		t.Fatalf("best plan = %v, want sequential smart (P=1)", best)
	}
	wantSeq := 3 * 0.001 * 4096 // µs
	if !close(best.PredictedUS, wantSeq) {
		t.Errorf("P=1 predicted = %v µs, want %v", best.PredictedUS, wantSeq)
	}

	// P=2 smart: n=2048, lgN=12, lgP=1. The schedule has R=2 remaps,
	// each changing 1 bit: V = 2*(2048-1024) = 2048, M = 2*(2^1-1) = 2.
	// Those metrics must agree with logp.Smart.
	sm := logp.Smart(12, 1)
	if sm.R != 2 || sm.V != 2048 || sm.M != 2 {
		t.Fatalf("logp.Smart(12,1) = %+v; the hand computation below assumes R=2,V=2048,M=2", sm)
	}
	p2 := findPlan(ranked, AlgSmart, 2, "head")
	if p2 == nil {
		t.Fatal("no P=2 smart plan in ranking")
	}
	// compute = 3 passes·1ns·2048 + 2 merges·2ns·2048   = 6.144+8.192 µs
	// comm    = 10µs·2 + 0.001µs·2048 + 0.1µs·2         = 22.248 µs
	wantCompute := 3*0.001*2048 + 2*0.002*2048
	wantComm := 10.0*2 + 0.001*2048 + 0.1*2
	if !close(p2.ComputeUS, wantCompute) || !close(p2.CommUS, wantComm) {
		t.Errorf("P=2 smart = compute %v comm %v, want %v / %v",
			p2.ComputeUS, p2.CommUS, wantCompute, wantComm)
	}
	if p2.R != 2 || p2.V != 2048 || p2.M != 2 {
		t.Errorf("P=2 smart metrics = R=%d V=%d M=%d, want 2/2048/2", p2.R, p2.V, p2.M)
	}

	// P=2 blocked-merge: R=1 step, V=2048, M=1; the compare-split works
	// over 2n keys. compute = 6.144 + 1·2ns·2·2048 + 1ns·2048 = 16.384,
	// comm = 10 + 2.048 + 0.1 = 12.148.
	bm := findPlan(ranked, AlgBlockedMerge, 2, "head")
	if bm == nil {
		t.Fatal("no P=2 blocked-merge plan in ranking")
	}
	if !close(bm.PredictedUS, 16.384+12.148) {
		t.Errorf("P=2 blocked-merge predicted = %v, want 28.532", bm.PredictedUS)
	}

	// Determinism: ranking twice gives the same order.
	again, _ := pl.Rank(4096, element.TU32)
	for i := range ranked {
		if ranked[i] != again[i] {
			t.Fatalf("rank not deterministic at %d: %v vs %v", i, ranked[i], again[i])
		}
	}
}

// TestPlannerPrefersParallelAtScale: with the same profile, a large
// input amortizes the fixed remap cost and the planner must leave P=1.
func TestPlannerPrefersParallelAtScale(t *testing.T) {
	pl := &Planner{Profile: exampleProfile(t), MaxP: 8, Backend: BackendNative}
	plan, err := pl.Plan(1<<22, element.TU32)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Processors < 2 {
		t.Errorf("plan for 4M keys = %v, want a parallel shape", plan)
	}
	seq := findPlan(mustRank(t, pl, 1<<22, element.TU32), AlgSmart, 1, "head")
	if seq == nil || seq.PredictedUS <= plan.PredictedUS {
		t.Errorf("sequential (%v) should predict slower than chosen %v", seq, plan)
	}
}

// TestPlannerSimulatedMatchesModel: simulated-backend scores must be
// expressed in the simulator's own units — the comm term must equal
// logp.TotalLong under Meiko parameters exactly.
func TestPlannerSimulatedMatchesModel(t *testing.T) {
	pl := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendSimulated}
	ranked := mustRank(t, pl, 4096, element.TU32)
	p2 := findPlan(ranked, AlgSmart, 2, "head")
	if p2 == nil {
		t.Fatal("no P=2 simulated smart plan")
	}
	params := logp.MeikoCS2(2)
	sm := logp.Smart(12, 1)
	want := params.TotalLong(sm.R, sm.V, sm.M)
	if !close(p2.CommUS, want) {
		t.Errorf("simulated comm = %v, want logp.TotalLong = %v", p2.CommUS, want)
	}
	// The profile's native costs must not leak into simulated scores:
	// wiping them changes nothing.
	blank := &Planner{Profile: Fallback(), MaxP: 4, Backend: BackendSimulated}
	b2 := findPlan(mustRank(t, blank, 4096, element.TU32), AlgSmart, 2, "head")
	if b2 == nil || !close(b2.PredictedUS, p2.PredictedUS) {
		t.Errorf("simulated score depends on the machine profile: %v vs %v", b2, p2)
	}
}

// TestPlannerWidthScaling: a wider element must never score cheaper
// than the same plan shape for a narrower one.
func TestPlannerWidthScaling(t *testing.T) {
	pl := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendNative}
	for _, n := range []int{1 << 10, 1 << 16} {
		u32 := findPlan(mustRank(t, pl, n, element.TU32), AlgSmart, 2, "head")
		u64 := findPlan(mustRank(t, pl, n, element.TU64), AlgSmart, 2, "head")
		if u32 == nil || u64 == nil {
			t.Fatalf("missing P=2 smart plan at n=%d", n)
		}
		if u64.PredictedUS <= u32.PredictedUS {
			t.Errorf("n=%d: u64 plan (%v µs) must cost more than u32 (%v µs)",
				n, u64.PredictedUS, u32.PredictedUS)
		}
	}
}

// TestPlannerStrategies: the Lemma 5 variants appear only when asked,
// only on the simulated backend, and never beat Head under the default
// model (they imply step simulation).
func TestPlannerStrategies(t *testing.T) {
	base := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendSimulated}
	if p := findPlan(mustRank(t, base, 1<<14, element.TU32), AlgSmart, 4, "tail"); p != nil {
		t.Error("tail strategy enumerated without AllStrategies")
	}
	all := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendSimulated, AllStrategies: true}
	ranked := mustRank(t, all, 1<<14, element.TU32)
	tail := findPlan(ranked, AlgSmart, 4, "tail")
	head := findPlan(ranked, AlgSmart, 4, "head")
	if tail == nil || head == nil {
		t.Fatal("missing strategy plans under AllStrategies")
	}
	if tail.PredictedUS <= head.PredictedUS {
		t.Errorf("tail (step simulation, %v µs) should score above head (%v µs)",
			tail.PredictedUS, head.PredictedUS)
	}
	native := &Planner{Profile: exampleProfile(t), MaxP: 4, Backend: BackendNative, AllStrategies: true}
	if p := findPlan(mustRank(t, native, 1<<14, element.TU32), AlgSmart, 4, "tail"); p != nil {
		t.Error("native backend must not enumerate step-simulation strategies")
	}
}

func TestPlannerRejectsBadInput(t *testing.T) {
	pl := NewPlanner(exampleProfile(t))
	if _, err := pl.Plan(0, element.TU32); err == nil {
		t.Error("planning 0 keys must error")
	}
	bad := &Planner{Profile: exampleProfile(t), Backend: Backend("quantum")}
	if _, err := bad.Plan(1024, element.TU32); err == nil {
		t.Error("unknown backend must error")
	}
}

// TestCalibrateDeterminismBounds runs the quick calibrator twice and
// checks the runs agree within generous bounds: microbenchmarks on a
// shared CI host jitter, but a kernel cost from one run may not be a
// multiple of the other's.
func TestCalibrateDeterminismBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration microbenchmarks in -short mode")
	}
	ctx := context.Background()
	a, err := Calibrate(ctx, Options{Quick: true, MaxP: 2})
	if err != nil {
		t.Fatalf("first calibration: %v", err)
	}
	b, err := Calibrate(ctx, Options{Quick: true, MaxP: 2})
	if err != nil {
		t.Fatalf("second calibration: %v", err)
	}
	const tol = 8.0 // generous: CI neighbours can steal most of a core
	for _, typ := range []string{"u32", "u64", "f32", "f64", "kv64"} {
		ka, kb := a.Kernels[typ], b.Kernels[typ]
		for _, pair := range [][2]float64{
			{ka.RadixPassNS, kb.RadixPassNS},
			{ka.MergeNS, kb.MergeNS},
			{ka.CompareNS, kb.CompareNS},
			{ka.CopyNS, kb.CopyNS},
		} {
			lo, hi := pair[0], pair[1]
			if lo > hi {
				lo, hi = hi, lo
			}
			if !(lo > 0) || hi/lo > tol {
				t.Errorf("%s kernels disagree beyond %gx: %v vs %v", typ, tol, pair[0], pair[1])
			}
		}
	}
	if a.Source != "calibrated" || !a.Quick {
		t.Errorf("calibrated profile mislabeled: source=%q quick=%v", a.Source, a.Quick)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("calibrated profile invalid: %v", err)
	}
	if runtime.GOMAXPROCS(0) >= 2 && a.Comm.RemapNS <= 0 {
		t.Errorf("multi-core calibration fitted RemapNS = %v, want > 0 (barriers are not free)", a.Comm.RemapNS)
	}
}

func TestFitCommRecoversKnownModel(t *testing.T) {
	// Synthesize observations from a known model; the fit must recover
	// it (no noise, exactly determined).
	want := CommCosts{RemapNS: 20000, WordNS: 2, MsgNS: 500}
	var runs []commRun
	for _, rv := range [][3]float64{
		{2, 2048, 2}, {3, 8192, 6}, {4, 1024, 12}, {6, 65536, 30}, {2, 512, 2},
	} {
		runs = append(runs, commRun{
			r: rv[0], v: rv[1], m: rv[2],
			residualNS: want.RemapNS*rv[0] + want.WordNS*rv[1] + want.MsgNS*rv[2],
		})
	}
	got, err := fitComm(runs)
	if err != nil {
		t.Fatal(err)
	}
	if !close(got.RemapNS, want.RemapNS) || !close(got.WordNS, want.WordNS) || !close(got.MsgNS, want.MsgNS) {
		t.Errorf("fit = %+v, want %+v", got, want)
	}

	// A column pulling negative must clamp to zero, not go negative.
	for i := range runs {
		runs[i].residualNS = 100*runs[i].r - 50*runs[i].m
		if runs[i].residualNS < 0 {
			runs[i].residualNS = 0
		}
	}
	got, err = fitComm(runs)
	if err != nil {
		t.Fatal(err)
	}
	if got.RemapNS < 0 || got.WordNS < 0 || got.MsgNS < 0 {
		t.Errorf("fit produced negative costs: %+v", got)
	}
}

func mustRank(t *testing.T, pl *Planner, total int, typ element.Type) []Plan {
	t.Helper()
	r, err := pl.Rank(total, typ)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func findPlan(plans []Plan, alg string, p int, strat string) *Plan {
	for i := range plans {
		if plans[i].Algorithm == alg && plans[i].Processors == p && plans[i].Strategy == strat {
			return &plans[i]
		}
	}
	return nil
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
