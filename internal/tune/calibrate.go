package tune

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/core"
	"parbitonic/internal/intbits"
	"parbitonic/internal/localsort"
	"parbitonic/internal/native"
	"parbitonic/internal/spmd"
	"parbitonic/internal/workload"
)

// Options configures a calibration run.
type Options struct {
	// Quick trades accuracy for speed: smaller inputs, fewer
	// repetitions. Meant for CI smoke runs; interactive calibration
	// should leave it false.
	Quick bool
	// Seed seeds the deterministic workload generator; 0 means 1.
	Seed uint64
	// MaxP caps the processor counts the communication fit runs at;
	// 0 means min(GOMAXPROCS, 8).
	MaxP int
}

// Calibrate microbenchmarks the host and returns a machine profile:
// per-element kernel costs for every element type (radix pass, linear
// merge, compare-exchange sweep, bulk copy — measured with warmup and
// trimmed means) and the fitted communication costs of the native
// backend's exchange path (a least-squares fit of makespan minus
// measured busy time against the run's R/V/M counters, the §3.4
// metrics). The context aborts the communication runs; kernel
// microbenchmarks check it between measurements.
func Calibrate(ctx context.Context, opts Options) (*Profile, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	n, reps := 1<<16, 7
	if opts.Quick {
		n, reps = 1<<14, 3
	}

	p := &Profile{
		Schema:    ProfileSchema,
		Version:   ProfileVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:     opts.Quick,
		Source:    "calibrated",
		Kernels:   make(map[string]KernelCosts),
	}
	hostStamp(p)

	for _, t := range element.Types() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var k KernelCosts
		var err error
		switch t {
		case element.TU32:
			k, err = kernelCosts[uint32](ctx, n, reps, opts.Seed)
		case element.TU64:
			k, err = kernelCosts[uint64](ctx, n, reps, opts.Seed)
		case element.TF32:
			k, err = kernelCosts[float32](ctx, n, reps, opts.Seed)
		case element.TF64:
			k, err = kernelCosts[float64](ctx, n, reps, opts.Seed)
		case element.TKV64:
			k, err = kernelCosts[element.KV64](ctx, n, reps, opts.Seed)
		}
		if err != nil {
			return nil, err
		}
		p.Kernels[t.String()] = k
	}

	comm, err := calibrateComm(ctx, opts)
	if err != nil {
		return nil, err
	}
	p.Comm = comm

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tune: calibration produced an invalid profile: %w", err)
	}
	return p, nil
}

// kernelCosts measures the four local kernels for element type E over
// n-element inputs, reps times each, returning trimmed means in
// nanoseconds per element.
func kernelCosts[E element.Elem](ctx context.Context, n, reps int, seed uint64) (KernelCosts, error) {
	base := workload.Elems[E](workload.FullRange, n, seed)
	buf := make([]E, n)
	dst := make([]E, n)

	// Sorted ascending halves for the merge kernel; rebuilt fresh per
	// measurement is unnecessary (MergeTwo does not mutate its inputs).
	a := append([]E(nil), base[:n/2]...)
	b := append([]E(nil), base[n/2:]...)
	localsort.RadixSort(a)
	localsort.RadixSort(b)

	// A bitonic sequence for the compare-exchange kernel: ascending
	// first half then descending second half. Split mutates, so it is
	// rebuilt from this template before every measurement.
	bitonic := make([]E, n)
	copy(bitonic, a)
	for i, v := range b {
		bitonic[n-1-i] = v
	}

	passes := localsort.RadixPassesOf[E]()
	radix, err := measure(ctx, reps, func() {
		copy(buf, base)
	}, func() {
		localsort.RadixSort(buf)
	})
	if err != nil {
		return KernelCosts{}, err
	}
	merge, err := measure(ctx, reps, nil, func() {
		localsort.MergeTwo(dst, a, b, true)
	})
	if err != nil {
		return KernelCosts{}, err
	}
	compare, err := measure(ctx, reps, func() {
		copy(buf, bitonic)
	}, func() {
		bitseq.Split(buf)
	})
	if err != nil {
		return KernelCosts{}, err
	}
	cp, err := measure(ctx, reps, nil, func() {
		copy(dst, base)
	})
	if err != nil {
		return KernelCosts{}, err
	}

	k := KernelCosts{
		RadixPassNS: radix / float64(n) / float64(passes),
		MergeNS:     merge / float64(n),
		CompareNS:   compare / float64(n),
		CopyNS:      cp / float64(n),
	}
	// Clock-resolution floor: a pass can measure as ~0 on very fast
	// hosts with quick sizes; a zero cost would make the planner treat
	// the kernel as free.
	const floorNS = 0.01
	if k.RadixPassNS < floorNS {
		k.RadixPassNS = floorNS
	}
	if k.MergeNS < floorNS {
		k.MergeNS = floorNS
	}
	if k.CompareNS < floorNS {
		k.CompareNS = floorNS
	}
	if k.CopyNS < floorNS {
		k.CopyNS = floorNS
	}
	return k, nil
}

// measure times fn reps times (plus one warmup), running setup
// untimed before each, and returns the trimmed-mean duration in
// nanoseconds: with five or more reps the fastest and slowest are
// dropped, otherwise the median is used.
func measure(ctx context.Context, reps int, setup, fn func()) (float64, error) {
	if setup != nil {
		setup()
	}
	fn() // warmup
	samples := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if setup != nil {
			setup()
		}
		t0 := time.Now()
		fn()
		samples = append(samples, float64(time.Since(t0).Nanoseconds()))
	}
	sort.Float64s(samples)
	if len(samples) >= 5 {
		samples = samples[1 : len(samples)-1]
	} else if len(samples) >= 3 {
		samples = samples[len(samples)/2 : len(samples)/2+1]
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples)), nil
}

// commRun is one observation for the communication fit: the §3.4
// counters of a measured native run and its unexplained time (makespan
// minus mean per-processor busy time), in nanoseconds.
type commRun struct {
	r, v, m    float64
	residualNS float64
}

// calibrateComm fits CommCosts from measured native runs. For several
// (P, n, algorithm) shapes it runs the real parallel sort, reads the
// measured R/V/M counters and per-phase busy times, and fits
//
//	makespan − busy ≈ RemapNS·R + WordNS·V + MsgNS·M
//
// by non-negative least squares. On a shared-memory host the residual
// is barrier synchronization plus exchange hand-off — the effective
// (L+2o−g), G and (g−G) of this machine's "network". A single-core
// host cannot run the fit and gets the fallback communication costs.
func calibrateComm(ctx context.Context, opts Options) (CommCosts, error) {
	maxP := opts.MaxP
	if maxP <= 0 {
		maxP = runtime.GOMAXPROCS(0)
		if maxP > 8 {
			maxP = 8
		}
	}
	maxP = intbits.CeilPow2(maxP)
	for maxP > runtime.GOMAXPROCS(0) {
		maxP /= 2
	}
	if maxP < 2 {
		return Fallback().Comm, nil
	}

	sizes := []int{1 << 11, 1 << 13}
	runReps := 3
	if opts.Quick {
		sizes = []int{1 << 10, 1 << 12}
		runReps = 2
	}

	var runs []commRun
	for p := 2; p <= maxP; p *= 2 {
		eng, err := native.NewOf[uint32](native.Config{P: p})
		if err != nil {
			return CommCosts{}, err
		}
		for _, n := range sizes {
			for _, alg := range []core.Algorithm{core.Smart, core.CyclicBlocked} {
				res, err := bestOf(ctx, eng, p, n, alg, runReps, opts.Seed)
				if err != nil {
					return CommCosts{}, err
				}
				busy := res.Mean.Total()
				residual := res.Time - busy
				if residual < 0 {
					residual = 0
				}
				runs = append(runs, commRun{
					r:          float64(res.Mean.Remaps),
					v:          float64(res.Mean.VolumeSent),
					m:          float64(res.Mean.MessagesSent),
					residualNS: residual * 1e3, // µs → ns
				})
			}
		}
	}
	c, err := fitComm(runs)
	if err != nil {
		return CommCosts{}, err
	}
	return c, nil
}

// bestOf runs the (p, n, alg) native sort reps times and returns the
// fastest run — the observation closest to the machine's cost floor.
func bestOf(ctx context.Context, eng *native.EngineOf[uint32], p, n int, alg core.Algorithm, reps int, seed uint64) (spmd.Result, error) {
	copts := core.Options{Algorithm: alg}
	if alg == core.Smart {
		copts.Fused = true
		lgn, lgP := intbits.Log2(n), intbits.Log2(p)
		if lgP*(lgP+1)/2 <= lgn {
			copts.Compute = core.FullSort
		}
	}
	var best spmd.Result
	for i := 0; i < reps; i++ {
		data := workload.PerProcOf[uint32](workload.FullRange, p, n, seed+uint64(i))
		res, err := core.SortContext(ctx, eng, data, copts)
		if err != nil {
			return spmd.Result{}, err
		}
		if i == 0 || res.Time < best.Time {
			best = res
		}
	}
	return best, nil
}

// fitComm solves the three-parameter non-negative least-squares
// problem residual ≈ a·R + b·V + c·M over the observed runs: the
// unconstrained normal equations first, then columns whose coefficient
// comes out negative are dropped (clamped to zero) and the rest
// refit — a tiny active-set NNLS adequate for three variables.
func fitComm(runs []commRun) (CommCosts, error) {
	if len(runs) < 3 {
		return CommCosts{}, fmt.Errorf("tune: %d communication observations, need >= 3", len(runs))
	}
	active := []bool{true, true, true}
	for iter := 0; iter < 4; iter++ {
		coef, ok := solveLSQ(runs, active)
		if !ok {
			return CommCosts{}, fmt.Errorf("tune: singular communication fit")
		}
		clamped := false
		for i, v := range coef {
			if active[i] && v < 0 {
				active[i] = false
				clamped = true
			}
		}
		if !clamped {
			return CommCosts{RemapNS: coef[0], WordNS: coef[1], MsgNS: coef[2]}, nil
		}
	}
	return CommCosts{}, fmt.Errorf("tune: communication fit did not converge")
}

// solveLSQ solves the normal equations of the least-squares fit over
// the active columns; inactive columns get coefficient 0.
func solveLSQ(runs []commRun, active []bool) ([3]float64, bool) {
	var cols []int
	for i, a := range active {
		if a {
			cols = append(cols, i)
		}
	}
	k := len(cols)
	var out [3]float64
	if k == 0 {
		return out, true
	}
	// Build AtA (k×k) and Atb (k).
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	for _, r := range runs {
		x := [3]float64{r.r, r.v, r.m}
		for i, ci := range cols {
			for j, cj := range cols {
				ata[i][j] += x[ci] * x[cj]
			}
			atb[i] += x[ci] * r.residualNS
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for row := col + 1; row < k; row++ {
			if abs(ata[row][col]) > abs(ata[pivot][col]) {
				pivot = row
			}
		}
		if abs(ata[pivot][col]) < 1e-12 {
			return out, false
		}
		ata[col], ata[pivot] = ata[pivot], ata[col]
		atb[col], atb[pivot] = atb[pivot], atb[col]
		for row := col + 1; row < k; row++ {
			f := ata[row][col] / ata[col][col]
			for c := col; c < k; c++ {
				ata[row][c] -= f * ata[col][c]
			}
			atb[row] -= f * atb[col]
		}
	}
	sol := make([]float64, k)
	for row := k - 1; row >= 0; row-- {
		s := atb[row]
		for c := row + 1; c < k; c++ {
			s -= ata[row][c] * sol[c]
		}
		sol[row] = s / ata[row][row]
	}
	for i, ci := range cols {
		out[ci] = sol[i]
	}
	return out, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
