package tune

import (
	"fmt"
	"runtime"
	"sort"

	"parbitonic/element"
	"parbitonic/internal/intbits"
	"parbitonic/internal/logp"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
)

// Backend names an execution backend in a plan. The strings match the
// public parbitonic.Backend names; this package carries its own type
// because the import direction runs the other way (the root package
// imports tune).
type Backend string

// Plan backends.
const (
	// BackendSimulated scores plans in model microseconds on the
	// simulated LogGP machine (spmd.DefaultCosts + logp.MeikoCS2).
	BackendSimulated Backend = "simulated"
	// BackendNative scores plans in predicted wall-clock microseconds
	// from the machine profile. This is the default.
	BackendNative Backend = "native"
)

// Algorithm names as they appear in plans; they match the public
// parbitonic.Algorithm String names.
const (
	AlgSmart         = "smart-bitonic"
	AlgCyclicBlocked = "cyclic-blocked-bitonic"
	AlgBlockedMerge  = "blocked-merge-bitonic"
	AlgSampleSort    = "sample-sort"
	AlgRadixSort     = "radix-sort"
)

// Plan is one scored execution plan: the shape to run plus what the
// cost model predicts it costs. Times are microseconds — wall-clock
// predictions for BackendNative, model time for BackendSimulated.
type Plan struct {
	// Algorithm is the parbitonic.Algorithm String name (AlgSmart...).
	Algorithm string `json:"algorithm"`
	// Processors is the engine size P (power of two, >= 1).
	Processors int `json:"processors"`
	// Backend the plan is scored for.
	Backend Backend `json:"backend"`
	// Strategy is the smart remap strategy name ("head" unless the
	// planner was asked to consider the Lemma 5 variants).
	Strategy string `json:"strategy"`
	// KeysPerProc is the padded per-processor share n the score used.
	KeysPerProc int `json:"keys_per_proc"`
	// PredictedUS = ComputeUS + CommUS, the per-processor predicted
	// time in microseconds.
	PredictedUS float64 `json:"predicted_us"`
	// ComputeUS is the predicted local-computation time.
	ComputeUS float64 `json:"compute_us"`
	// CommUS is the predicted communication time: the §3.4 closed form
	// (L+2o−g)R + G·V + (g−G)M under the profile's fitted parameters.
	CommUS float64 `json:"comm_us"`
	// R is the §3.4 remap count the score used.
	R int `json:"r"`
	// V is the §3.4 transferred volume (elements per processor).
	V int `json:"v"`
	// M is the §3.4 message count per processor.
	M int `json:"m"`
	// Source is the profile source the score came from ("calibrated"
	// or "fallback").
	Source string `json:"source"`
}

// String renders the plan compactly: alg/P/backend and the predicted
// cost.
func (p Plan) String() string {
	s := ""
	if p.Strategy != "" && p.Strategy != "head" {
		s = "/" + p.Strategy
	}
	return fmt.Sprintf("%s P=%d %s%s (predicted %.0fµs)", p.Algorithm, p.Processors, p.Backend, s, p.PredictedUS)
}

// Planner scores candidate plans for this machine. The zero value is
// not usable; construct with NewPlanner or fill Profile explicitly.
type Planner struct {
	// Profile supplies the cost parameters; see Calibrate, Load,
	// Fallback.
	Profile *Profile
	// MaxP caps the candidate processor counts; 0 means GOMAXPROCS.
	// Non-powers of two are floored to the previous power of two.
	MaxP int
	// Backend constrains candidates to one backend. Plans are never
	// compared across backends: simulated scores are model
	// microseconds on the paper's Meiko CS-2, native scores are
	// predicted wall microseconds on this host, and the two units are
	// incommensurable. Empty means BackendNative.
	Backend Backend
	// AllStrategies additionally enumerates the Lemma 5 remap-shift
	// strategies (tail/middle1/middle2) for the smart algorithm.
	// Simulated backend only: non-Head strategies imply step-by-step
	// compare-exchange simulation, which is a model ablation rather
	// than a way to sort fast.
	AllStrategies bool
}

// NewPlanner returns a planner over the given profile (nil means
// Fallback) targeting the native backend.
func NewPlanner(p *Profile) *Planner {
	if p == nil {
		p = Fallback()
	}
	return &Planner{Profile: p, Backend: BackendNative}
}

// Plan returns the predicted-fastest plan for sorting totalKeys
// elements of type t. Ties break deterministically: smaller P first,
// then algorithm order (smart, cyclic-blocked, blocked-merge, sample,
// radix), then strategy order — so equal-cost candidates always
// resolve to the same plan on every host.
func (pl *Planner) Plan(totalKeys int, t element.Type) (Plan, error) {
	ranked, err := pl.Rank(totalKeys, t)
	if err != nil {
		return Plan{}, err
	}
	return ranked[0], nil
}

// Rank returns every candidate plan, best first, under the same
// deterministic ordering as Plan.
func (pl *Planner) Rank(totalKeys int, t element.Type) ([]Plan, error) {
	if totalKeys < 1 {
		return nil, fmt.Errorf("tune: cannot plan for %d keys", totalKeys)
	}
	prof := pl.Profile
	if prof == nil {
		prof = Fallback()
	}
	backend := pl.Backend
	if backend == "" {
		backend = BackendNative
	}
	if backend != BackendNative && backend != BackendSimulated {
		return nil, fmt.Errorf("tune: unknown backend %q", backend)
	}
	maxP := pl.MaxP
	if maxP <= 0 {
		maxP = runtime.GOMAXPROCS(0)
	}
	for maxP&(maxP-1) != 0 {
		maxP &= maxP - 1 // clear lowest set bit: floors to a power of two
	}

	cs := pl.costSetFor(prof, backend, t)
	var plans []Plan
	for p := 1; p <= maxP; p *= 2 {
		plans = append(plans, pl.candidates(prof, cs, backend, totalKeys, p, t)...)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("tune: no candidate plans for %d keys on <=%d processors", totalKeys, maxP)
	}
	sort.SliceStable(plans, func(i, j int) bool {
		a, b := plans[i], plans[j]
		if a.PredictedUS != b.PredictedUS {
			return a.PredictedUS < b.PredictedUS
		}
		if a.Processors != b.Processors {
			return a.Processors < b.Processors
		}
		if ra, rb := algRank(a.Algorithm), algRank(b.Algorithm); ra != rb {
			return ra < rb
		}
		return stratRank(a.Strategy) < stratRank(b.Strategy)
	})
	return plans, nil
}

// costSet holds the per-element cost parameters of one scoring basis,
// in microseconds. For the native backend they come from the machine
// profile; for the simulated backend from the simulator's own model
// (spmd.DefaultCosts + logp.MeikoCS2), so a simulated plan's score is
// the model time the simulator itself would report.
type costSet struct {
	radixPass, merge, compare, pack, unpack float64 // per element
	commFixed, commWord, commMsg            float64 // per remap / 32-bit word / message
	words                                   int
	passes                                  int
	// cacheFactor multiplies compute terms by the simulator's cache
	// penalty; identity for native (real caches are in the measured
	// kernels).
	cacheFactor func(nWords int) float64
}

func (pl *Planner) costSetFor(prof *Profile, backend Backend, t element.Type) costSet {
	w := t.Width() / 4
	passes := spmd.DefaultCosts().RadixPasses * t.KeyBits() / 32
	if backend == BackendNative {
		k := prof.KernelsFor(t)
		return costSet{
			radixPass:   k.RadixPassNS / 1e3,
			merge:       k.MergeNS / 1e3,
			compare:     k.CompareNS / 1e3,
			pack:        k.CopyNS / 1e3,
			unpack:      k.CopyNS / 1e3,
			commFixed:   prof.Comm.RemapNS / 1e3,
			commWord:    prof.Comm.WordNS / 1e3,
			commMsg:     prof.Comm.MsgNS / 1e3,
			words:       w,
			passes:      passes,
			cacheFactor: func(int) float64 { return 1 },
		}
	}
	costs := spmd.DefaultCosts()
	params := logp.MeikoCS2(1) // L/o/g/G are P-independent
	fw := float64(w)
	return costSet{
		radixPass:   costs.RadixPass,
		merge:       costs.Merge * fw,
		compare:     costs.CompareExchange * fw,
		pack:        costs.Pack * fw,
		unpack:      costs.Unpack * fw,
		commFixed:   params.L + 2*params.O - params.Gap,
		commWord:    params.GKey,
		commMsg:     params.Gap - params.GKey,
		words:       w,
		passes:      passes,
		cacheFactor: costs.CacheFactor,
	}
}

// comm evaluates the §3.4 closed form for the given metrics under this
// cost set, scaling volume to 32-bit words.
func (c costSet) comm(r, v, m int) float64 {
	if r <= 0 {
		return 0
	}
	return c.commFixed*float64(r) + c.commWord*float64(v*c.words) + c.commMsg*float64(m)
}

// candidates scores every algorithm (and, when asked, strategy) at one
// processor count.
func (pl *Planner) candidates(prof *Profile, cs costSet, backend Backend, totalKeys, p int, t element.Type) []Plan {
	// Mirror PaddedSize: the per-processor share the engine would run.
	n := intbits.CeilPow2((totalKeys + p - 1) / p)
	if p > 1 && n < 2 {
		n = 2
	}
	cf := cs.cacheFactor(n * cs.words)
	fn := float64(n)
	radixAll := float64(cs.passes) * cs.radixPass * fn * cf

	mk := func(alg string, m logp.Metrics, computeUS float64) Plan {
		commUS := cs.comm(m.R, m.V, m.M)
		return Plan{
			Algorithm:   alg,
			Processors:  p,
			Backend:     backend,
			Strategy:    "head",
			KeysPerProc: n,
			PredictedUS: computeUS + commUS,
			ComputeUS:   computeUS,
			CommUS:      commUS,
			R:           m.R, V: m.V, M: m.M,
			Source: prof.Source,
		}
	}

	if p == 1 {
		// Sequential: one local radix sort, no communication.
		return []Plan{mk(AlgSmart, logp.Metrics{}, radixAll)}
	}

	lgP := intbits.Log2(p)
	lgN := intbits.Log2(n) + lgP
	var plans []Plan

	// Smart bitonic (Head): R merges after the initial local sort; the
	// native path is fused (no separate pack/unpack), the simulated
	// default packs and unpacks every transferred element.
	smart := logp.Smart(lgN, lgP)
	computeSmart := radixAll + float64(smart.R)*cs.merge*fn*cf
	if backend == BackendSimulated {
		computeSmart += (cs.pack + cs.unpack) * float64(smart.V) * cf
	}
	plans = append(plans, mk(AlgSmart, smart, computeSmart))

	// Lemma 5 remap-shift variants: step-by-step compare-exchange
	// simulation over every network step, simulated backend only.
	if pl.AllStrategies && backend == BackendSimulated {
		lgn := lgN - lgP
		localSteps := lgn*(lgn+1)/2 + schedule.TotalSteps(lgN, lgP)
		for _, strat := range []schedule.Strategy{schedule.Tail, schedule.Middle1, schedule.Middle2} {
			sched := schedule.New(lgN, lgP, strat)
			m := logp.Metrics{R: len(sched), V: schedule.Volume(sched, n), M: schedule.Messages(sched)}
			compute := float64(localSteps)*cs.compare*fn*cf + (cs.pack+cs.unpack)*float64(m.V)*cf
			pln := mk(AlgSmart, m, compute)
			pln.Strategy = strat.String()
			plans = append(plans, pln)
		}
	}

	// Cyclic-blocked ([CDMS94]): needs N >= P² (n >= P); one merge
	// pass per remap plus pack/unpack of everything transferred.
	if n >= p {
		m := logp.CyclicBlocked(lgP, n)
		compute := radixAll + float64(m.R)*cs.merge*fn*cf + (cs.pack+cs.unpack)*float64(m.V)*cf
		plans = append(plans, mk(AlgCyclicBlocked, m, compute))
	}

	// Blocked merge ([BLM+91]): every remote step compare-splits 2n
	// keys.
	bm := logp.Blocked(lgP, n)
	computeBM := radixAll + float64(bm.R)*cs.merge*2*fn*cf + (cs.pack+cs.unpack)*float64(bm.V)*cf
	plans = append(plans, mk(AlgBlockedMerge, bm, computeBM))

	// Sample sort ([AISS95]): one all-to-all round, then each
	// processor merges the P received runs (~lgP linear passes).
	sm := logp.Metrics{R: 1, V: n, M: p - 1}
	computeSample := radixAll + float64(lgP)*cs.merge*fn*cf + (cs.pack+cs.unpack)*float64(sm.V)*cf
	plans = append(plans, mk(AlgSampleSort, sm, computeSample))

	// Parallel radix sort ([AISS95]): one counting pass plus one
	// all-to-all scatter per digit.
	rm := logp.Metrics{R: cs.passes, V: cs.passes * n, M: cs.passes * (p - 1)}
	computeRadix := radixAll + (cs.pack+cs.unpack)*float64(rm.V)*cf
	plans = append(plans, mk(AlgRadixSort, rm, computeRadix))

	return plans
}

func algRank(alg string) int {
	switch alg {
	case AlgSmart:
		return 0
	case AlgCyclicBlocked:
		return 1
	case AlgBlockedMerge:
		return 2
	case AlgSampleSort:
		return 3
	case AlgRadixSort:
		return 4
	}
	return 5
}

func stratRank(s string) int {
	switch s {
	case "", "head":
		return 0
	case "tail":
		return 1
	case "middle1":
		return 2
	case "middle2":
		return 3
	}
	return 4
}
