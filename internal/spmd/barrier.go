package spmd

import (
	"sync"

	"parbitonic/internal/obs"
	"parbitonic/internal/trace"
)

// barrier is a reusable sense-reversing barrier for exactly p
// goroutines that additionally reduces the participants' clocks to
// their maximum (the bulk-synchronous interpretation of a collective
// phase — valid for virtual and wall clocks alike). It can be poisoned
// to unblock everyone when one participant fails or the run is
// canceled, preventing deadlock: released waiters unwind with the
// poisonPanic sentinel, which the engine's worker recovery swallows.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	gen     uint64
	maxSeen float64
	prevMax float64
	broken  bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// maxClock enters the barrier with the processor's clock; on release
// every participant's clock is the maximum entered this round. On the
// way through it also serves the observability layer: the idle gap up
// to the round maximum becomes a wait span, the processor's buffered
// spans are flushed to the sink (outside the barrier lock), and the
// goroutine's pprof phase label reads "wait" while blocked.
func (b *barrier) maxClock(pr *PC) {
	prevTag := pr.curTag
	pr.tag(int(obs.PhaseWait))
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(poisonPanic{})
	}
	if pr.Clock > b.maxSeen {
		b.maxSeen = pr.Clock
	}
	b.count++
	if b.count == b.p {
		// Last arriver releases the round.
		b.prevMax = b.maxSeen
		b.maxSeen = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		gen := b.gen
		for gen == b.gen && !b.broken {
			b.cond.Wait()
		}
		if b.broken {
			b.mu.Unlock()
			panic(poisonPanic{})
		}
	}
	if b.prevMax > pr.Clock {
		pr.Span(trace.Wait, pr.Clock, b.prevMax)
	}
	pr.Clock = b.prevMax
	b.mu.Unlock()
	pr.flushObs()
	pr.tag(prevTag)
	pr.st.charge.Synced(pr)
}

// poison releases all waiters with the unwind sentinel so a failed
// processor or a canceled context does not deadlock the engine.
func (b *barrier) poison() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset repairs a poisoned barrier so the engine can be reused.
func (b *barrier) reset() {
	b.mu.Lock()
	b.broken = false
	b.count = 0
	b.maxSeen = 0
	b.mu.Unlock()
}
