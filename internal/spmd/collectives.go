package spmd

// Collective operations built on Exchange, in the style of the Split-C
// bulk operations the paper's implementation uses. All of them are
// collective: every processor must call them in the same round.

import "parbitonic/element"

// AllGather sends mine to every processor and returns all
// contributions indexed by source (the local contribution included).
func (p *ProcOf[E]) AllGather(mine []E) [][]E {
	out := make([][]E, p.e.p)
	for q := range out {
		out[q] = mine
	}
	return p.Exchange(out)
}

// Broadcast distributes root's data to every processor; callers other
// than root pass nil. Returns the broadcast data.
func (p *ProcOf[E]) Broadcast(root int, data []E) []E {
	out := make([][]E, p.e.p)
	if p.ID == root {
		for q := range out {
			out[q] = data
		}
	}
	in := p.Exchange(out)
	return in[root]
}

// AllReduceSum element-wise sums every processor's vector (vectors must
// have equal length on all processors) and returns the total on every
// processor. The sum is over the elements' order images, folded back
// modulo the key width — native unsigned addition for integer
// elements (the primitive counting sorts need); float elements sum
// their order images, which is rarely meaningful.
func (p *ProcOf[E]) AllReduceSum(mine []E) []E {
	in := p.AllGather(mine)
	acc := make([]uint64, len(mine))
	for _, v := range in {
		if len(v) != len(mine) {
			panic("spmd: AllReduceSum length mismatch across processors")
		}
		for i, x := range v {
			acc[i] += element.Bits(x)
		}
	}
	out := make([]E, len(mine))
	for i, a := range acc {
		out[i] = element.FromBits[E](a, 0)
	}
	return out
}

// ExclusiveScanSum returns, for each element position, the sum of the
// vectors of all lower-ranked processors (an exclusive prefix sum
// across processor rank, element-wise) — the primitive behind rank
// computation in counting-based sorts. Sums are over order images,
// like AllReduceSum.
func (p *ProcOf[E]) ExclusiveScanSum(mine []E) []E {
	in := p.AllGather(mine)
	acc := make([]uint64, len(mine))
	for src := 0; src < p.ID; src++ {
		v := in[src]
		if len(v) != len(mine) {
			panic("spmd: ExclusiveScanSum length mismatch across processors")
		}
		for i, x := range v {
			acc[i] += element.Bits(x)
		}
	}
	out := make([]E, len(mine))
	for i, a := range acc {
		out[i] = element.FromBits[E](a, 0)
	}
	return out
}
