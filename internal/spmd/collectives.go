package spmd

// Collective operations built on Exchange, in the style of the Split-C
// bulk operations the paper's implementation uses. All of them are
// collective: every processor must call them in the same round.

// AllGather sends mine to every processor and returns all
// contributions indexed by source (the local contribution included).
func (p *Proc) AllGather(mine []uint32) [][]uint32 {
	out := make([][]uint32, p.e.p)
	for q := range out {
		out[q] = mine
	}
	return p.Exchange(out)
}

// Broadcast distributes root's data to every processor; callers other
// than root pass nil. Returns the broadcast data.
func (p *Proc) Broadcast(root int, data []uint32) []uint32 {
	out := make([][]uint32, p.e.p)
	if p.ID == root {
		for q := range out {
			out[q] = data
		}
	}
	in := p.Exchange(out)
	return in[root]
}

// AllReduceSum element-wise sums every processor's vector (vectors must
// have equal length on all processors) and returns the total on every
// processor.
func (p *Proc) AllReduceSum(mine []uint32) []uint32 {
	in := p.AllGather(mine)
	out := make([]uint32, len(mine))
	for _, v := range in {
		if len(v) != len(mine) {
			panic("spmd: AllReduceSum length mismatch across processors")
		}
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

// ExclusiveScanSum returns, for each element position, the sum of the
// vectors of all lower-ranked processors (an exclusive prefix sum
// across processor rank, element-wise) — the primitive behind rank
// computation in counting-based sorts.
func (p *Proc) ExclusiveScanSum(mine []uint32) []uint32 {
	in := p.AllGather(mine)
	out := make([]uint32, len(mine))
	for src := 0; src < p.ID; src++ {
		v := in[src]
		if len(v) != len(mine) {
			panic("spmd: ExclusiveScanSum length mismatch across processors")
		}
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}
