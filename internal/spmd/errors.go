package spmd

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is wrapped by the error RunContext returns when the
// context is canceled before the run completes. Match with
// errors.Is(err, spmd.ErrCanceled).
var ErrCanceled = errors.New("spmd: run canceled")

// ErrDeadline is wrapped by the error RunContext returns when the
// context's deadline expires before the run completes. Match with
// errors.Is(err, spmd.ErrDeadline).
var ErrDeadline = errors.New("spmd: run deadline exceeded")

// ctxError converts a non-nil context error into the runtime's typed
// cancellation errors, keeping the context cause in the chain so
// errors.Is works against both the spmd sentinel and the context one.
func ctxError(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, cause)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// PanicError reports a processor body that panicked during a run. The
// engine recovers the panic on the processor's own goroutine, unblocks
// every other processor by poisoning the barrier, and returns the
// failure as this error — the panic never escapes Run. Match with
// errors.As.
type PanicError struct {
	Proc  int    // ID of the processor that panicked
	Value any    // the recovered panic value, verbatim
	Stack []byte // the panicking goroutine's stack at recovery
}

// Error formats the failure as "spmd: processor N panicked: value".
func (e *PanicError) Error() string {
	return fmt.Sprintf("spmd: processor %d panicked: %v", e.Proc, e.Value)
}

// poisonPanic is the sentinel thrown through processor bodies to
// unwind them when the run aborts (peer panic or context
// cancellation). The worker recovery swallows it — the abort cause has
// already been recorded by whoever initiated the abort — so it is
// never visible to callers.
type poisonPanic struct{}
