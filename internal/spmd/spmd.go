// Package spmd is the abstract SPMD runtime every parallel algorithm
// in this module is written against: P processors with private
// memories, bulk-synchronous collective exchanges, and remap routing
// driven by addr.RemapPlan — the Split-C programming model of the
// paper, minus any commitment to *how* time is accounted.
//
// What a run costs is delegated to a Charger, which is what makes the
// runtime pluggable:
//
//   - internal/machine supplies the LogP/LogGP virtual-time charger —
//     every phase advances a per-processor model clock by the formulas
//     of §3.4, reproducing the paper's tables and figures;
//   - internal/native supplies the wall-clock charger — no model
//     arithmetic on the hot path, phases are timed with the real
//     clock, and the same algorithms run at hardware speed.
//
// Both backends implement Backend and report through the same Stats
// and Result shapes, so callers switch between "predict what the 1996
// Meiko would do" and "sort as fast as this machine allows" without
// touching algorithm code.
//
// The data plane is generic over the element layer: EngineOf[E] and
// ProcOf[E] carry any parbitonic/element type through the exchange
// board, buffer pool and remap phases, while the per-processor core
// every Charger sees (PC) stays non-generic — time accounting never
// depends on the element type beyond its width, which the engine
// captures once at construction (see PC.Words). The Engine, Proc and
// Backend aliases pin E = uint32, the paper's native element.
package spmd

import (
	"context"

	"parbitonic/element"
	"parbitonic/internal/intbits"
)

// CostModel gives the virtual cost, in model microseconds per element,
// of each local-computation routine. The defaults are calibrated so the
// simulated per-key times land in the same regime as the paper's Meiko
// CS-2 measurements (see DESIGN.md §2); only relative magnitudes carry
// meaning. Wall-clock backends carry a CostModel for API compatibility
// but never consult it.
//
// The per-element values are calibrated for the paper's 4-byte keys.
// Wider elements charge proportionally more: every memory-bound charge
// scales by the element's size in 32-bit words, and radix passes by
// the key width in 32-bit units (see the PC charge helpers), so a
// uint32 run is numerically unchanged while a uint64 run pays for
// moving twice the bytes and digesting twice the key bits.
type CostModel struct {
	RadixPass       float64 // one counting pass of LSD radix sort, per key
	RadixPasses     int     // passes needed for 32-bit keys
	Merge           float64 // linear merge / bitonic-merge-sort work, per key
	CompareExchange float64 // one simulated network step, per key
	Pack            float64 // packing into long messages, per key
	Unpack          float64 // unpacking from long messages, per key

	// CacheAlpha adds a relative penalty per doubling of the local data
	// size beyond 2^LgCacheKeys keys, modelling the cache misses the
	// paper observes ("when we increase the number of elements, a higher
	// percentage of the total execution time is spent during the local
	// computation phases... due to cache misses", §5.3). Every
	// computation charge is multiplied by
	// 1 + CacheAlpha * max(0, lg n - LgCacheKeys).
	CacheAlpha  float64 // relative penalty per doubling past the cache size
	LgCacheKeys int     // lg of the local key count that still fits in cache
}

// DefaultCosts returns the shipped fallback cost model for the
// simulated Meiko CS-2 — fixed constants, not measurements of this
// host (host measurement lives in internal/tune; run
// bitonic-sort -calibrate to produce a machine profile). The per-key
// values are model microseconds per local element, back-solved from
// the paper's per-key tables: pack/unpack reproduce Table 5.4's
// 0.35/0.13 µs per key at P=16 over 5 remaps; radix/merge/
// compare-exchange place the three algorithms of Table 5.1 in the
// measured ratios; the cache term reproduces the per-key growth with
// n. LgCacheKeys = 18 is the CS-2 node's 1 MB external cache in
// 4-byte keys.
func DefaultCosts() CostModel {
	return CostModel{
		RadixPass:       0.50,
		RadixPasses:     3,
		Merge:           0.90,
		CompareExchange: 0.55,
		Pack:            0.55,
		Unpack:          0.25,
		CacheAlpha:      0.045,
		LgCacheKeys:     18,
	}
}

// CacheFactor is the cache-miss multiplier for memory-bound work over n
// local keys. Callers working in wider elements pass the footprint in
// 4-byte words (n times the element's word count), since LgCacheKeys
// measures the cache in 4-byte keys.
func (c CostModel) CacheFactor(n int) float64 {
	if c.CacheAlpha == 0 {
		return 1
	}
	lg := intbits.Log2(n)
	if lg <= c.LgCacheKeys {
		return 1
	}
	return 1 + c.CacheAlpha*float64(lg-c.LgCacheKeys)
}

// Stats accumulates per-processor counters and per-phase time. Under
// the simulator the times are model microseconds of virtual clock;
// under the native backend they are measured wall-clock microseconds.
type Stats struct {
	Remaps       int // collective remap operations participated in
	MessagesSent int // messages to *other* processors
	VolumeSent   int // elements sent to other processors

	ComputeTime  float64 // local sorts, merges, compare-exchange steps
	PackTime     float64 // packing keys into long messages
	TransferTime float64 // collective exchanges (the LogGP wire term)
	UnpackTime   float64 // unpacking received messages into place
}

// CommTime returns the communication portion of the time: packing,
// transfer and unpacking.
func (s Stats) CommTime() float64 { return s.PackTime + s.TransferTime + s.UnpackTime }

// Total returns all charged time.
func (s Stats) Total() float64 { return s.ComputeTime + s.CommTime() }

func (s *Stats) add(o Stats) {
	s.Remaps += o.Remaps
	s.MessagesSent += o.MessagesSent
	s.VolumeSent += o.VolumeSent
	s.ComputeTime += o.ComputeTime
	s.PackTime += o.PackTime
	s.TransferTime += o.TransferTime
	s.UnpackTime += o.UnpackTime
}

// Result is what a completed SPMD run reports.
type Result struct {
	Time    float64 // makespan: the maximum final processor clock, µs
	PerProc []Stats // per-processor stats, indexed by Proc.ID
	Sum     Stats   // per-processor stats summed over all processors
	Mean    Stats   // per-processor averages (the machine is symmetric)
}

// TimePerKey returns Time divided by the total key count, the paper's
// "execution time per key" metric.
func (r Result) TimePerKey(totalKeys int) float64 { return r.Time / float64(totalKeys) }

// Charger decides what every phase of a run costs. The simulator's
// charger advances virtual clocks by the LogGP formulas; the native
// charger timestamps phases with the real clock. Implementations own
// the updates to p.Clock, p.Stats time fields and the trace recorder;
// the runtime calls them at every phase boundary.
//
// Chargers see the element-independent processor core (*PC), never the
// generic processor: counts are in elements, and width-dependent
// scaling reads p.Words — one charger implementation serves every
// element instantiation.
type Charger interface {
	// Start is called on the processor's own goroutine before the body.
	Start(p *PC)
	// Compute charges local computation whose modelled cost is t model
	// µs (wall-clock chargers ignore t and measure instead).
	Compute(p *PC, t float64)
	// Pack charges the long-message packing pass over n local elements.
	Pack(p *PC, n int)
	// Unpack charges the long-message unpacking pass over n local
	// elements.
	Unpack(p *PC, n int)
	// Transfer charges one collective exchange round in which the
	// processor sent `volume` elements in `msgs` messages to other
	// processors.
	Transfer(p *PC, volume, msgs int)
	// Synced is called after every barrier release (the processor's
	// clock has been advanced to the round maximum).
	Synced(p *PC)
}

// BackendOf is a complete execution engine for SPMD algorithm bodies
// over element type E. core.Sort and the psort sorters accept any
// backend; internal/machine (LogGP simulation) and internal/native
// (wall-clock execution) provide the two implementations.
//
// Both run methods share the engine's fail-safe semantics: a processor
// panic is contained and returned as a *PanicError (never re-panicked),
// and a canceled or expired context aborts the run promptly — blocked
// processors are released through the poisoned barrier — with an error
// wrapping ErrCanceled or ErrDeadline. The backend remains usable
// after any failure.
type BackendOf[E element.Elem] interface {
	// P returns the processor count.
	P() int
	// Run executes body once per processor, concurrently, SPMD style,
	// and aggregates the results. data[i] becomes processor i's initial
	// local memory (may be nil). Equivalent to RunContext with a
	// background context.
	Run(data [][]E, body func(p *ProcOf[E])) (Result, error)
	// RunContext is Run under a context: cancellation or deadline
	// expiry aborts the run and returns a typed error instead of
	// hanging at the next barrier.
	RunContext(ctx context.Context, data [][]E, body func(p *ProcOf[E])) (Result, error)
	// Data returns the final local data of every processor after a Run.
	Data() [][]E
}

// Backend is the uint32 backend interface, the element type of the
// paper's experiments.
type Backend = BackendOf[uint32]
