package spmd

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parbitonic/internal/obs"
	"parbitonic/internal/trace"
)

// PC is the element-independent core of a processor: identity, clock,
// stats, routing scratch and observability state. It is the type every
// Charger is written against — nothing a charger needs depends on the
// element type, so one charger implementation serves every EngineOf
// instantiation. The generic ProcOf[E] embeds a PC, promoting its
// fields and methods onto the processor the algorithm bodies see.
type PC struct {
	ID int // processor index in [0, P)

	// Clock is the processor's accumulated time in µs: virtual model
	// time under the simulator, measured wall time under the native
	// backend. Barriers advance it to the round maximum either way.
	Clock float64
	Stats Stats // counters and per-phase time accumulated this run

	st *state

	// ops reaches back into the generic processor for the few
	// element-touching operations the non-generic world needs (the
	// fault injector's key corruption); set once at engine construction.
	ops procOps

	// Per-processor routing scratch, reused across remap rounds.
	dest, off []int32
	nl        []int32
	grp       []int // destination-group scratch, rewritten per round

	// Observability state, touched only by the owning goroutine: spans
	// buffer between barrier flushes, and the precomputed pprof label
	// contexts (one per phase tag; nil when profiling is off).
	obsBuf   []obs.Span
	labelCtx []context.Context
	curTag   int
}

// procOps is the seam through which element-independent code touches a
// processor's generic data: ProcOf[E] implements it, PC carries it, and
// the fault injector's Corrupt plan uses it without knowing E.
type procOps interface {
	// DataLen returns the length of the processor's local data.
	DataLen() int
	// CorruptKey flips the top key bit of local element i, the
	// type-generic form of the injector's single-bit corruption.
	CorruptKey(i int)
}

// state is the element-independent half of an engine: processor count,
// cost policy, the exchange barrier and the abort machinery. EngineOf
// embeds a *state; PC points at the same one, which is how chargers
// and the barrier serve every element instantiation with one compiled
// body.
type state struct {
	p      int
	long   bool
	shared bool
	costs  CostModel
	charge Charger
	rec    *trace.Recorder
	sink   obs.Sink          // nil = observability disabled
	labels map[string]string // static telemetry labels
	bar    *barrier

	// words is the element width in 32-bit words and keyScale the key
	// width in 32-bit units — the two factors the charge helpers scale
	// by. Both are 1 for uint32, keeping the paper's model unchanged.
	words    int
	keyScale int

	// aborting flips to true the moment a run starts failing (processor
	// panic or context cancellation); blocked processors are unwound via
	// the poisoned barrier and running ones notice at their next phase
	// boundary with a single atomic load.
	aborting atomic.Bool
	abortErr error // first failure cause; written under abortMu
	abortMu  sync.Mutex
}

// ---- per-processor runtime services ----

// P returns the runtime's processor count.
func (p *PC) P() int { return p.st.p }

// Costs exposes the runtime's computation cost model.
func (p *PC) Costs() CostModel { return p.st.costs }

// Long reports whether the runtime uses long messages.
func (p *PC) Long() bool { return p.st.long }

// SharedMem reports whether the processors share one address space
// (EngineConfig.Shared): the capability gate for the zero-copy gather
// remap. False on the simulator, whose distributed-memory cost model
// must keep seeing the packed pipeline.
func (p *PC) SharedMem() bool { return p.st.shared }

// Words returns the engine's element width in 32-bit words (1 for
// uint32): the factor chargers scale memory-bound costs by.
func (p *PC) Words() int { return p.st.words }

// Aborting reports whether the current run is being torn down (a peer
// panicked or the context was canceled). It is a single atomic load —
// cheap enough for long local-computation loops to poll as a
// cooperative cancellation point; collectives check it implicitly.
func (p *PC) Aborting() bool { return p.st.aborting.Load() }

// checkAbort unwinds the calling processor if the run is aborting. The
// fast path is one atomic load.
func (p *PC) checkAbort() {
	if p.st.aborting.Load() {
		panic(poisonPanic{})
	}
}

// Barrier synchronizes all processors and advances every clock to the
// maximum (the runtime is bulk-synchronous between phases, like the
// barrier-separated phases of the Split-C implementation). If the run
// is aborting (peer panic, canceled context), Barrier unwinds instead
// of blocking; the abort check is a single atomic load.
func (p *PC) Barrier() {
	p.checkAbort()
	p.st.bar.maxClock(p)
}

// DataLen returns the processor's current local element count, through
// the element-independent seam.
func (p *PC) DataLen() int { return p.ops.DataLen() }

// CorruptKey flips the top key bit of local element i, through the
// element-independent seam. For uint32 data this is exactly
// Data[i] ^= 1<<31.
func (p *PC) CorruptKey(i int) { p.ops.CorruptKey(i) }

// ChargeCompute accounts for local computation whose modelled cost is
// t model µs.
func (p *PC) ChargeCompute(t float64) {
	p.checkAbort()
	p.st.charge.Compute(p, t)
}

// ChargeRadixSort charges a full local radix sort of n elements. The
// pass count scales with the key width (RadixPasses is calibrated for
// 32-bit keys) and the per-pass movement with the element's word
// width, so a uint32 charge is exactly the paper's.
func (p *PC) ChargeRadixSort(n int) {
	p.checkAbort()
	c := p.st.costs
	passes := c.RadixPass * float64(c.RadixPasses*p.st.keyScale)
	w := n * p.st.words
	p.st.charge.Compute(p, passes*float64(w)*c.CacheFactor(w))
}

// ChargeMerge charges linear merge work over n elements (bitonic merge
// sort, two-way or p-way merging — all O(n) routines of Chapter 4),
// scaled by the element's word width.
func (p *PC) ChargeMerge(n int) {
	p.checkAbort()
	c := p.st.costs
	w := n * p.st.words
	p.st.charge.Compute(p, c.Merge*float64(w)*c.CacheFactor(w))
}

// ChargeCompareExchange charges one simulated network step over n
// elements, scaled by the element's word width.
func (p *PC) ChargeCompareExchange(n int) {
	p.checkAbort()
	c := p.st.costs
	w := n * p.st.words
	p.st.charge.Compute(p, c.CompareExchange*float64(w)*c.CacheFactor(w))
}

// RouteTables returns the processor's reusable dest/off routing tables
// sized for n local keys — the same scratch the pack phase uses — so
// fused execution paths can route plans without allocating per round.
// The contents are overwritten by the next pack or RouteTables call.
func (p *PC) RouteTables(n int) (dest, off []int32) { return p.routeScratch(n) }

// routeScratch returns the per-processor dest/off routing tables sized
// for n local keys.
func (p *PC) routeScratch(n int) (dest, off []int32) {
	if cap(p.dest) < n {
		p.dest = make([]int32, n)
		p.off = make([]int32, n)
	}
	return p.dest[:n], p.off[:n]
}

// nlScratch returns the per-processor unpack table sized for msgLen.
func (p *PC) nlScratch(msgLen int) []int32 {
	if cap(p.nl) < msgLen {
		p.nl = make([]int32, msgLen)
	}
	return p.nl[:msgLen]
}

// ---- observability services ----

// obsPhase maps the trace recorder's phase letters onto the
// observability layer's dense phase enum.
func obsPhase(ph trace.Phase) obs.Phase {
	switch ph {
	case trace.Compute:
		return obs.PhaseCompute
	case trace.Pack:
		return obs.PhasePack
	case trace.Transfer:
		return obs.PhaseTransfer
	case trace.Unpack:
		return obs.PhaseUnpack
	case trace.Wait:
		return obs.PhaseWait
	}
	return obs.PhaseAbort
}

// Span records one completed phase span [start, end) on the
// processor's backend clock. It feeds both consumers at once: the
// trace recorder (if configured) for timeline rendering, and the
// observability sink (if configured) via the processor's private span
// buffer, stamped with the current remap round and a wall-clock
// timestamp. Chargers call it at every phase boundary; with neither
// consumer configured it is two pointer checks.
func (p *PC) Span(ph trace.Phase, start, end float64) {
	if r := p.st.rec; r != nil {
		r.Add(trace.Event{Proc: p.ID, Phase: ph, Start: start, End: end})
	}
	if p.st.sink != nil && end > start {
		p.obsBuf = append(p.obsBuf, obs.Span{
			Proc:  p.ID,
			Round: p.Stats.Remaps,
			Phase: obsPhase(ph),
			Start: start,
			End:   end,
			Wall:  time.Now().UnixNano(),
		})
	}
}

// flushObs hands the processor's buffered spans to the sink. Called at
// every barrier release (each processor flushes its own buffer, so the
// sink's lock is taken once per processor per barrier, never per span)
// and once more when the run ends.
func (p *PC) flushObs() {
	if p.st.sink == nil || len(p.obsBuf) == 0 {
		return
	}
	p.st.sink.FlushSpans(p.ID, p.obsBuf)
	p.obsBuf = p.obsBuf[:0]
}

// abortSpan records a zero-advance abort marker when the processor
// unwinds, so aborted work is visible in the span stream.
func (p *PC) abortSpan() {
	if p.st.sink == nil {
		return
	}
	p.obsBuf = append(p.obsBuf, obs.Span{
		Proc:  p.ID,
		Round: p.Stats.Remaps,
		Phase: obs.PhaseAbort,
		Start: p.Clock,
		End:   p.Clock,
		Wall:  time.Now().UnixNano(),
	})
}

// phaseTagNames order must match the obs.Phase constants; abort never
// becomes a goroutine label.
var phaseTagNames = [...]string{"compute", "pack", "transfer", "unpack", "wait"}

// initObs prepares the processor's observability state at run start:
// the span buffer is cleared and, when a sink is configured, one pprof
// label context per phase is prebuilt (proc, phase, plus the engine's
// static labels) and the goroutine labeled as computing — from here on
// a phase change is a single SetGoroutineLabels call with no
// allocation.
func (p *PC) initObs() {
	p.obsBuf = p.obsBuf[:0]
	if p.st.sink == nil {
		p.labelCtx = nil
		return
	}
	if p.labelCtx == nil {
		kv := make([]string, 0, 2*(2+len(p.st.labels)))
		kv = append(kv, "proc", strconv.Itoa(p.ID))
		for k, v := range p.st.labels {
			kv = append(kv, k, v)
		}
		p.labelCtx = make([]context.Context, len(phaseTagNames))
		for i, name := range phaseTagNames {
			args := append(kv[:len(kv):len(kv)], "phase", name)
			p.labelCtx[i] = pprof.WithLabels(context.Background(), pprof.Labels(args...))
		}
	}
	p.tag(int(obs.PhaseCompute))
}

// tag switches the goroutine's pprof phase label; no-op when profiling
// is off.
func (p *PC) tag(t int) {
	if p.labelCtx == nil {
		return
	}
	p.curTag = t
	pprof.SetGoroutineLabels(p.labelCtx[t])
}
