package spmd

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"parbitonic/element"
	"parbitonic/internal/intbits"
	"parbitonic/internal/obs"
	"parbitonic/internal/trace"
)

// EngineConfig configures the shared SPMD substrate.
type EngineConfig struct {
	P      int       // number of processors (power of two)
	Costs  CostModel // consulted by the model charge helpers
	Long   bool      // long messages (pack/unpack phases exist)
	Charge Charger   // time-accounting policy (simulated or wall-clock)

	// Trace, when non-nil, receives barrier-wait spans from the engine;
	// chargers add the busy-phase spans. Adds some overhead.
	Trace *trace.Recorder

	// Sink, when non-nil, receives the observability stream: run
	// lifecycle, per-processor phase spans (buffered per processor and
	// flushed at barriers — no hot-path locks), and abort events. The
	// engine also applies runtime/pprof labels (proc, phase, plus
	// Labels) to every processor goroutine so CPU profiles attribute
	// samples to bitonic phases. Nil disables all of it at the cost of
	// one pointer check per phase boundary.
	Sink obs.Sink

	// Labels are static telemetry labels ("alg", "backend", ...)
	// attached to run metadata and pprof goroutine labels. Read-only
	// after NewEngine.
	Labels map[string]string
}

// EngineOf is the concrete runtime both backends share, over element
// type E: the processor set, the exchange board and the clock-reducing
// barrier. Backend packages wrap it with their Charger and any
// backend-specific reporting.
type EngineOf[E element.Elem] struct {
	*state
	board [][]delivery[E] // board[src][dst], rewritten every exchange round
	procs []*ProcOf[E]

	// bufs recycles long-message buffers between remap rounds: a
	// receiver returns a message's backing array once it has unpacked
	// (or merged from) it, and any sender may pick it up for its next
	// pack. Buffers are always fully overwritten before being sent, so
	// stale contents are harmless.
	bufs sync.Pool
}

// Engine is the uint32 engine, the element type of the paper's
// experiments.
type Engine = EngineOf[uint32]

type delivery[E element.Elem] struct {
	data []E
}

// ProcOf is one processor of the runtime over element type E, owned by
// exactly one goroutine during Run. The embedded PC supplies identity,
// clock, stats and the charge/observability services.
type ProcOf[E element.Elem] struct {
	PC
	Data []E // local elements; algorithms read and replace freely

	e    *EngineOf[E]
	outs [][]E // pack-destination scratch, reused across remap rounds
}

// Proc is the uint32 processor, the element type of the paper's
// experiments.
type Proc = ProcOf[uint32]

// NewEngineOf creates the substrate for element type E. P must be a
// power of two and at least 1; cfg.Charge must be non-nil.
func NewEngineOf[E element.Elem](cfg EngineConfig) (*EngineOf[E], error) {
	if !intbits.IsPow2(cfg.P) {
		return nil, fmt.Errorf("spmd: P=%d must be a positive power of two", cfg.P)
	}
	if cfg.Charge == nil {
		return nil, fmt.Errorf("spmd: EngineConfig.Charge must be set")
	}
	if cfg.Costs.RadixPasses <= 0 {
		cfg.Costs = DefaultCosts()
	}
	st := &state{
		p:        cfg.P,
		long:     cfg.Long,
		costs:    cfg.Costs,
		charge:   cfg.Charge,
		rec:      cfg.Trace,
		sink:     cfg.Sink,
		labels:   cfg.Labels,
		bar:      newBarrier(cfg.P),
		words:    element.Words[E](),
		keyScale: element.KeyBits[E]() / 32,
	}
	e := &EngineOf[E]{state: st}
	e.board = make([][]delivery[E], cfg.P)
	for i := range e.board {
		e.board[i] = make([]delivery[E], cfg.P)
	}
	e.procs = make([]*ProcOf[E], cfg.P)
	for i := range e.procs {
		p := &ProcOf[E]{PC: PC{ID: i, st: st}, e: e}
		p.ops = p
		e.procs[i] = p
	}
	return e, nil
}

// NewEngine creates a uint32 substrate; see NewEngineOf.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return NewEngineOf[uint32](cfg)
}

// P returns the processor count.
func (e *EngineOf[E]) P() int { return e.p }

// abort records the first failure cause and unwinds every processor:
// blocked ones are released by the poisoned barrier, running ones
// notice at their next phase boundary.
func (st *state) abort(cause error) {
	st.abortMu.Lock()
	first := st.abortErr == nil
	if first {
		st.abortErr = cause
	}
	st.abortMu.Unlock()
	st.aborting.Store(true)
	st.bar.poison()
	if first && st.sink != nil {
		st.sink.Emit(abortEvent(cause))
	}
}

// abortEvent classifies an abort cause into a typed observability
// event so operators can count cancellations, deadline expiries and
// panics separately.
func abortEvent(cause error) obs.Event {
	ev := obs.Event{Kind: obs.EventAbort, Proc: -1, Wall: time.Now().UnixNano()}
	if cause != nil {
		ev.Detail = cause.Error()
	}
	var pe *PanicError
	switch {
	case errors.Is(cause, ErrCanceled):
		ev.Kind = obs.EventCancel
	case errors.Is(cause, ErrDeadline):
		ev.Kind = obs.EventDeadline
	case errors.As(cause, &pe):
		ev.Kind = obs.EventPanic
		ev.Proc = pe.Proc
	}
	return ev
}

// recoverState repairs the engine after an aborted run — the barrier is
// un-poisoned, the exchange board drained of any half-published
// deliveries, and every processor's pack-destination scratch cleared
// (an abort between pack and clearOuts leaves stale out-slices that
// the NEXT run's exchange would deliver as phantom messages) — so the
// engine is immediately reusable.
func (e *EngineOf[E]) recoverState() {
	e.bar.reset()
	for i := range e.board {
		for j := range e.board[i] {
			e.board[i][j] = delivery[E]{}
		}
	}
	for _, p := range e.procs {
		p.clearOuts()
	}
	e.aborting.Store(false)
	e.abortErr = nil
}

// Run executes body once per processor, concurrently, SPMD style, and
// aggregates the results. It is RunContext with a background context.
func (e *EngineOf[E]) Run(data [][]E, body func(p *ProcOf[E])) (Result, error) {
	return e.RunContext(context.Background(), data, body)
}

// RunContext executes body once per processor, concurrently, SPMD
// style, and aggregates the results. data[i] becomes processor i's
// initial local memory (may be nil).
//
// Failure semantics: if a processor body panics, the panic is captured
// with its stack into a *PanicError, every other processor is promptly
// unwound (the barrier is poisoned, so nobody blocks forever on a dead
// peer), and the error is returned — the panic does not propagate. If
// ctx is canceled or its deadline expires mid-run, the run aborts the
// same way and the returned error wraps ErrCanceled or ErrDeadline
// (and the context's own error). After any failure the engine is
// reusable; the processors' Data is unspecified.
func (e *EngineOf[E]) RunContext(ctx context.Context, data [][]E, body func(p *ProcOf[E])) (Result, error) {
	if data != nil && len(data) != e.p {
		return Result{}, fmt.Errorf("spmd: Run got %d data slices for %d processors", len(data), e.p)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, ctxError(err)
	}
	e.aborting.Store(false)
	e.abortErr = nil

	runStart := time.Now()
	if e.sink != nil {
		keys := 0
		for _, d := range data {
			keys += len(d)
		}
		// The owning request IDs ride the context from the serve layer;
		// carrying them on RunMeta is what lets a trace or log line of
		// this run join the per-request telemetry upstream.
		e.sink.RunStart(obs.RunMeta{
			P: e.p, Keys: keys, Labels: e.labels, Start: runStart,
			Requests: obs.RequestIDsFrom(ctx),
		})
	}

	// The watcher turns a context cancellation into an engine abort; it
	// is torn down before RunContext returns so no goroutine outlives
	// the call.
	var watcher sync.WaitGroup
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				e.state.abort(ctxError(ctx.Err()))
			case <-watchDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for i := range e.procs {
		p := e.procs[i]
		p.Clock = 0
		p.Stats = Stats{}
		if data != nil {
			p.Data = data[i]
		} else {
			p.Data = nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, unwinding := r.(poisonPanic); unwinding {
						p.abortSpan()
						return // abort propagation; the cause is already recorded
					}
					p.abortSpan()
					e.state.abort(&PanicError{Proc: p.ID, Value: r, Stack: debug.Stack()})
				}
			}()
			p.initObs()
			e.charge.Start(&p.PC)
			body(p)
		}()
	}
	wg.Wait()
	close(watchDone)
	watcher.Wait()

	// All goroutines are joined: abortErr is stable without the mutex,
	// but take it anyway to keep the race detector's model exact.
	e.abortMu.Lock()
	err := e.abortErr
	e.abortMu.Unlock()
	if e.sink != nil {
		// Residual spans recorded since the last barrier (single-threaded
		// here: all workers are joined).
		for _, p := range e.procs {
			p.flushObs()
		}
	}
	if err != nil {
		if e.sink != nil {
			e.sink.RunEnd(obs.RunSummary{
				Err:         err.Error(),
				WallSeconds: time.Since(runStart).Seconds(),
			})
		}
		e.recoverState()
		return Result{}, err
	}

	var res Result
	res.PerProc = make([]Stats, e.p)
	for i, p := range e.procs {
		res.PerProc[i] = p.Stats
		res.Sum.add(p.Stats)
		if p.Clock > res.Time {
			res.Time = p.Clock
		}
	}
	res.Mean = res.Sum
	f := float64(e.p)
	res.Mean.Remaps /= e.p
	res.Mean.MessagesSent /= e.p
	res.Mean.VolumeSent /= e.p
	res.Mean.ComputeTime /= f
	res.Mean.PackTime /= f
	res.Mean.TransferTime /= f
	res.Mean.UnpackTime /= f
	if e.sink != nil {
		keys := 0
		for _, p := range e.procs {
			keys += len(p.Data)
		}
		e.sink.RunEnd(obs.RunSummary{
			Makespan:     res.Time,
			WallSeconds:  time.Since(runStart).Seconds(),
			Keys:         keys,
			Remaps:       res.Sum.Remaps,
			Volume:       res.Sum.VolumeSent,
			Messages:     res.Sum.MessagesSent,
			ComputeTime:  res.Sum.ComputeTime,
			PackTime:     res.Sum.PackTime,
			TransferTime: res.Sum.TransferTime,
			UnpackTime:   res.Sum.UnpackTime,
		})
	}
	return res, nil
}

// Data returns the final local data of every processor after a Run.
func (e *EngineOf[E]) Data() [][]E {
	out := make([][]E, e.p)
	for i, p := range e.procs {
		out[i] = p.Data
	}
	return out
}

// ---- per-processor generic services ----

// DataLen returns the processor's local element count (the procOps
// seam the fault injector's corruption plans go through).
func (p *ProcOf[E]) DataLen() int { return len(p.Data) }

// CorruptKey flips the top key bit of local element i through the
// element's order image, preserving any payload: the generic form of
// Data[i] ^= 1<<31 on uint32 data.
func (p *ProcOf[E]) CorruptKey(i int) {
	v := p.Data[i]
	bits := element.Bits(v) ^ 1<<(element.KeyBits[E]()-1)
	p.Data[i] = element.FromBits[E](bits, element.Aux(v))
}

// GetBuf returns an n-element buffer, recycled from the engine's
// message pool when one of sufficient capacity is available. Contents
// are undefined; callers must overwrite every slot.
func (p *ProcOf[E]) GetBuf(n int) []E {
	if v := p.e.bufs.Get(); v != nil {
		if b := v.([]E); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]E, n)
}

// PutBuf returns a buffer to the message pool. Only hand back buffers
// no other processor can still read — typically messages this
// processor received and has fully consumed.
func (p *ProcOf[E]) PutBuf(b []E) {
	if cap(b) == 0 {
		return
	}
	p.e.bufs.Put(b[:cap(b)])
}

// outScratch returns the per-processor destination-slice table (all
// entries nil). Callers must nil the entries they set once the round's
// exchange has completed; clearOuts does that.
func (p *ProcOf[E]) outScratch() [][]E {
	if p.outs == nil {
		p.outs = make([][]E, p.e.p)
	}
	return p.outs
}

func (p *ProcOf[E]) clearOuts() {
	for i := range p.outs {
		p.outs[i] = nil
	}
}
