package spmd

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parbitonic/internal/intbits"
	"parbitonic/internal/obs"
	"parbitonic/internal/trace"
)

// EngineConfig configures the shared SPMD substrate.
type EngineConfig struct {
	P      int       // number of processors (power of two)
	Costs  CostModel // consulted by the model charge helpers
	Long   bool      // long messages (pack/unpack phases exist)
	Charge Charger   // time-accounting policy (simulated or wall-clock)

	// Trace, when non-nil, receives barrier-wait spans from the engine;
	// chargers add the busy-phase spans. Adds some overhead.
	Trace *trace.Recorder

	// Sink, when non-nil, receives the observability stream: run
	// lifecycle, per-processor phase spans (buffered per processor and
	// flushed at barriers — no hot-path locks), and abort events. The
	// engine also applies runtime/pprof labels (proc, phase, plus
	// Labels) to every processor goroutine so CPU profiles attribute
	// samples to bitonic phases. Nil disables all of it at the cost of
	// one pointer check per phase boundary.
	Sink obs.Sink

	// Labels are static telemetry labels ("alg", "backend", ...)
	// attached to run metadata and pprof goroutine labels. Read-only
	// after NewEngine.
	Labels map[string]string
}

// Engine is the concrete runtime both backends share: the processor
// set, the exchange board and the clock-reducing barrier. Backend
// packages wrap it with their Charger and any backend-specific
// reporting.
type Engine struct {
	p      int
	long   bool
	costs  CostModel
	charge Charger
	rec    *trace.Recorder
	sink   obs.Sink          // nil = observability disabled
	labels map[string]string // static telemetry labels
	board  [][]delivery      // board[src][dst], rewritten every exchange round
	bar    *barrier
	procs  []*Proc

	// aborting flips to true the moment a run starts failing (processor
	// panic or context cancellation); blocked processors are unwound via
	// the poisoned barrier and running ones notice at their next phase
	// boundary with a single atomic load.
	aborting atomic.Bool
	abortErr error // first failure cause; written under abortMu
	abortMu  sync.Mutex

	// bufs recycles long-message buffers between remap rounds: a
	// receiver returns a message's backing array once it has unpacked
	// (or merged from) it, and any sender may pick it up for its next
	// pack. Buffers are always fully overwritten before being sent, so
	// stale contents are harmless.
	bufs sync.Pool
}

type delivery struct {
	data []uint32
}

// Proc is one processor of the runtime, owned by exactly one goroutine
// during Run.
type Proc struct {
	ID   int      // processor index in [0, P)
	Data []uint32 // local keys; algorithms read and replace freely

	// Clock is the processor's accumulated time in µs: virtual model
	// time under the simulator, measured wall time under the native
	// backend. Barriers advance it to the round maximum either way.
	Clock float64
	Stats Stats // counters and per-phase time accumulated this run

	e *Engine

	// Per-processor routing scratch, reused across remap rounds.
	dest, off []int32
	nl        []int32
	outs      [][]uint32

	// Observability state, touched only by the owning goroutine: spans
	// buffer between barrier flushes, and the precomputed pprof label
	// contexts (one per phase tag; nil when profiling is off).
	obsBuf   []obs.Span
	labelCtx []context.Context
	curTag   int
}

// NewEngine creates the substrate. P must be a power of two and at
// least 1; cfg.Charge must be non-nil.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if !intbits.IsPow2(cfg.P) {
		return nil, fmt.Errorf("spmd: P=%d must be a positive power of two", cfg.P)
	}
	if cfg.Charge == nil {
		return nil, fmt.Errorf("spmd: EngineConfig.Charge must be set")
	}
	if cfg.Costs.RadixPasses <= 0 {
		cfg.Costs = DefaultCosts()
	}
	e := &Engine{
		p:      cfg.P,
		long:   cfg.Long,
		costs:  cfg.Costs,
		charge: cfg.Charge,
		rec:    cfg.Trace,
		sink:   cfg.Sink,
		labels: cfg.Labels,
		bar:    newBarrier(cfg.P),
	}
	e.board = make([][]delivery, cfg.P)
	for i := range e.board {
		e.board[i] = make([]delivery, cfg.P)
	}
	e.procs = make([]*Proc, cfg.P)
	for i := range e.procs {
		e.procs[i] = &Proc{ID: i, e: e}
	}
	return e, nil
}

// P returns the processor count.
func (e *Engine) P() int { return e.p }

// abort records the first failure cause and unwinds every processor:
// blocked ones are released by the poisoned barrier, running ones
// notice at their next phase boundary.
func (e *Engine) abort(cause error) {
	e.abortMu.Lock()
	first := e.abortErr == nil
	if first {
		e.abortErr = cause
	}
	e.abortMu.Unlock()
	e.aborting.Store(true)
	e.bar.poison()
	if first && e.sink != nil {
		e.sink.Emit(abortEvent(cause))
	}
}

// abortEvent classifies an abort cause into a typed observability
// event so operators can count cancellations, deadline expiries and
// panics separately.
func abortEvent(cause error) obs.Event {
	ev := obs.Event{Kind: obs.EventAbort, Proc: -1, Wall: time.Now().UnixNano()}
	if cause != nil {
		ev.Detail = cause.Error()
	}
	var pe *PanicError
	switch {
	case errors.Is(cause, ErrCanceled):
		ev.Kind = obs.EventCancel
	case errors.Is(cause, ErrDeadline):
		ev.Kind = obs.EventDeadline
	case errors.As(cause, &pe):
		ev.Kind = obs.EventPanic
		ev.Proc = pe.Proc
	}
	return ev
}

// recoverState repairs the engine after an aborted run — the barrier is
// un-poisoned, the exchange board drained of any half-published
// deliveries, and every processor's pack-destination scratch cleared
// (an abort between pack and clearOuts leaves stale out-slices that
// the NEXT run's exchange would deliver as phantom messages) — so the
// engine is immediately reusable.
func (e *Engine) recoverState() {
	e.bar.reset()
	for i := range e.board {
		for j := range e.board[i] {
			e.board[i][j] = delivery{}
		}
	}
	for _, p := range e.procs {
		p.clearOuts()
	}
	e.aborting.Store(false)
	e.abortErr = nil
}

// Run executes body once per processor, concurrently, SPMD style, and
// aggregates the results. It is RunContext with a background context.
func (e *Engine) Run(data [][]uint32, body func(p *Proc)) (Result, error) {
	return e.RunContext(context.Background(), data, body)
}

// RunContext executes body once per processor, concurrently, SPMD
// style, and aggregates the results. data[i] becomes processor i's
// initial local memory (may be nil).
//
// Failure semantics: if a processor body panics, the panic is captured
// with its stack into a *PanicError, every other processor is promptly
// unwound (the barrier is poisoned, so nobody blocks forever on a dead
// peer), and the error is returned — the panic does not propagate. If
// ctx is canceled or its deadline expires mid-run, the run aborts the
// same way and the returned error wraps ErrCanceled or ErrDeadline
// (and the context's own error). After any failure the engine is
// reusable; the processors' Data is unspecified.
func (e *Engine) RunContext(ctx context.Context, data [][]uint32, body func(p *Proc)) (Result, error) {
	if data != nil && len(data) != e.p {
		return Result{}, fmt.Errorf("spmd: Run got %d data slices for %d processors", len(data), e.p)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, ctxError(err)
	}
	e.aborting.Store(false)
	e.abortErr = nil

	runStart := time.Now()
	if e.sink != nil {
		keys := 0
		for _, d := range data {
			keys += len(d)
		}
		e.sink.RunStart(obs.RunMeta{P: e.p, Keys: keys, Labels: e.labels, Start: runStart})
	}

	// The watcher turns a context cancellation into an engine abort; it
	// is torn down before RunContext returns so no goroutine outlives
	// the call.
	var watcher sync.WaitGroup
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				e.abort(ctxError(ctx.Err()))
			case <-watchDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for i := range e.procs {
		p := e.procs[i]
		p.Clock = 0
		p.Stats = Stats{}
		if data != nil {
			p.Data = data[i]
		} else {
			p.Data = nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, unwinding := r.(poisonPanic); unwinding {
						p.abortSpan()
						return // abort propagation; the cause is already recorded
					}
					p.abortSpan()
					e.abort(&PanicError{Proc: p.ID, Value: r, Stack: debug.Stack()})
				}
			}()
			p.initObs()
			e.charge.Start(p)
			body(p)
		}()
	}
	wg.Wait()
	close(watchDone)
	watcher.Wait()

	// All goroutines are joined: abortErr is stable without the mutex,
	// but take it anyway to keep the race detector's model exact.
	e.abortMu.Lock()
	err := e.abortErr
	e.abortMu.Unlock()
	if e.sink != nil {
		// Residual spans recorded since the last barrier (single-threaded
		// here: all workers are joined).
		for _, p := range e.procs {
			p.flushObs()
		}
	}
	if err != nil {
		if e.sink != nil {
			e.sink.RunEnd(obs.RunSummary{
				Err:         err.Error(),
				WallSeconds: time.Since(runStart).Seconds(),
			})
		}
		e.recoverState()
		return Result{}, err
	}

	var res Result
	res.PerProc = make([]Stats, e.p)
	for i, p := range e.procs {
		res.PerProc[i] = p.Stats
		res.Sum.add(p.Stats)
		if p.Clock > res.Time {
			res.Time = p.Clock
		}
	}
	res.Mean = res.Sum
	f := float64(e.p)
	res.Mean.Remaps /= e.p
	res.Mean.MessagesSent /= e.p
	res.Mean.VolumeSent /= e.p
	res.Mean.ComputeTime /= f
	res.Mean.PackTime /= f
	res.Mean.TransferTime /= f
	res.Mean.UnpackTime /= f
	if e.sink != nil {
		keys := 0
		for _, p := range e.procs {
			keys += len(p.Data)
		}
		e.sink.RunEnd(obs.RunSummary{
			Makespan:     res.Time,
			WallSeconds:  time.Since(runStart).Seconds(),
			Keys:         keys,
			Remaps:       res.Sum.Remaps,
			Volume:       res.Sum.VolumeSent,
			Messages:     res.Sum.MessagesSent,
			ComputeTime:  res.Sum.ComputeTime,
			PackTime:     res.Sum.PackTime,
			TransferTime: res.Sum.TransferTime,
			UnpackTime:   res.Sum.UnpackTime,
		})
	}
	return res, nil
}

// Data returns the final local data of every processor after a Run.
func (e *Engine) Data() [][]uint32 {
	out := make([][]uint32, e.p)
	for i, p := range e.procs {
		out[i] = p.Data
	}
	return out
}

// ---- per-processor runtime services ----

// P returns the runtime's processor count.
func (p *Proc) P() int { return p.e.p }

// Costs exposes the runtime's computation cost model.
func (p *Proc) Costs() CostModel { return p.e.costs }

// Long reports whether the runtime uses long messages.
func (p *Proc) Long() bool { return p.e.long }

// Aborting reports whether the current run is being torn down (a peer
// panicked or the context was canceled). It is a single atomic load —
// cheap enough for long local-computation loops to poll as a
// cooperative cancellation point; collectives check it implicitly.
func (p *Proc) Aborting() bool { return p.e.aborting.Load() }

// checkAbort unwinds the calling processor if the run is aborting. The
// fast path is one atomic load.
func (p *Proc) checkAbort() {
	if p.e.aborting.Load() {
		panic(poisonPanic{})
	}
}

// ChargeCompute accounts for local computation whose modelled cost is
// t model µs.
func (p *Proc) ChargeCompute(t float64) {
	p.checkAbort()
	p.e.charge.Compute(p, t)
}

// ChargeRadixSort charges a full local radix sort of n keys.
func (p *Proc) ChargeRadixSort(n int) {
	p.checkAbort()
	c := p.e.costs
	p.e.charge.Compute(p, c.RadixPass*float64(c.RadixPasses)*float64(n)*c.CacheFactor(n))
}

// ChargeMerge charges linear merge work over n keys (bitonic merge
// sort, two-way or p-way merging — all O(n) routines of Chapter 4).
func (p *Proc) ChargeMerge(n int) {
	p.checkAbort()
	c := p.e.costs
	p.e.charge.Compute(p, c.Merge*float64(n)*c.CacheFactor(n))
}

// ChargeCompareExchange charges one simulated network step over n keys.
func (p *Proc) ChargeCompareExchange(n int) {
	p.checkAbort()
	c := p.e.costs
	p.e.charge.Compute(p, c.CompareExchange*float64(n)*c.CacheFactor(n))
}

// GetBuf returns an n-key buffer, recycled from the engine's message
// pool when one of sufficient capacity is available. Contents are
// undefined; callers must overwrite every slot.
func (p *Proc) GetBuf(n int) []uint32 {
	if v := p.e.bufs.Get(); v != nil {
		if b := v.([]uint32); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]uint32, n)
}

// PutBuf returns a buffer to the message pool. Only hand back buffers
// no other processor can still read — typically messages this
// processor received and has fully consumed.
func (p *Proc) PutBuf(b []uint32) {
	if cap(b) == 0 {
		return
	}
	p.e.bufs.Put(b[:cap(b)])
}

// routeScratch returns the per-processor dest/off routing tables sized
// for n local keys.
func (p *Proc) routeScratch(n int) (dest, off []int32) {
	if cap(p.dest) < n {
		p.dest = make([]int32, n)
		p.off = make([]int32, n)
	}
	return p.dest[:n], p.off[:n]
}

// nlScratch returns the per-processor unpack table sized for msgLen.
func (p *Proc) nlScratch(msgLen int) []int32 {
	if cap(p.nl) < msgLen {
		p.nl = make([]int32, msgLen)
	}
	return p.nl[:msgLen]
}

// outScratch returns the per-processor destination-slice table (all
// entries nil). Callers must nil the entries they set once the round's
// exchange has completed; clearOuts does that.
func (p *Proc) outScratch() [][]uint32 {
	if p.outs == nil {
		p.outs = make([][]uint32, p.e.p)
	}
	return p.outs
}

func (p *Proc) clearOuts() {
	for i := range p.outs {
		p.outs[i] = nil
	}
}

// ---- observability services ----

// obsPhase maps the trace recorder's phase letters onto the
// observability layer's dense phase enum.
func obsPhase(ph trace.Phase) obs.Phase {
	switch ph {
	case trace.Compute:
		return obs.PhaseCompute
	case trace.Pack:
		return obs.PhasePack
	case trace.Transfer:
		return obs.PhaseTransfer
	case trace.Unpack:
		return obs.PhaseUnpack
	case trace.Wait:
		return obs.PhaseWait
	}
	return obs.PhaseAbort
}

// Span records one completed phase span [start, end) on the
// processor's backend clock. It feeds both consumers at once: the
// trace recorder (if configured) for timeline rendering, and the
// observability sink (if configured) via the processor's private span
// buffer, stamped with the current remap round and a wall-clock
// timestamp. Chargers call it at every phase boundary; with neither
// consumer configured it is two pointer checks.
func (p *Proc) Span(ph trace.Phase, start, end float64) {
	if r := p.e.rec; r != nil {
		r.Add(trace.Event{Proc: p.ID, Phase: ph, Start: start, End: end})
	}
	if p.e.sink != nil && end > start {
		p.obsBuf = append(p.obsBuf, obs.Span{
			Proc:  p.ID,
			Round: p.Stats.Remaps,
			Phase: obsPhase(ph),
			Start: start,
			End:   end,
			Wall:  time.Now().UnixNano(),
		})
	}
}

// flushObs hands the processor's buffered spans to the sink. Called at
// every barrier release (each processor flushes its own buffer, so the
// sink's lock is taken once per processor per barrier, never per span)
// and once more when the run ends.
func (p *Proc) flushObs() {
	if p.e.sink == nil || len(p.obsBuf) == 0 {
		return
	}
	p.e.sink.FlushSpans(p.ID, p.obsBuf)
	p.obsBuf = p.obsBuf[:0]
}

// abortSpan records a zero-advance abort marker when the processor
// unwinds, so aborted work is visible in the span stream.
func (p *Proc) abortSpan() {
	if p.e.sink == nil {
		return
	}
	p.obsBuf = append(p.obsBuf, obs.Span{
		Proc:  p.ID,
		Round: p.Stats.Remaps,
		Phase: obs.PhaseAbort,
		Start: p.Clock,
		End:   p.Clock,
		Wall:  time.Now().UnixNano(),
	})
}

// phaseTagNames order must match the obs.Phase constants; abort never
// becomes a goroutine label.
var phaseTagNames = [...]string{"compute", "pack", "transfer", "unpack", "wait"}

// initObs prepares the processor's observability state at run start:
// the span buffer is cleared and, when a sink is configured, one pprof
// label context per phase is prebuilt (proc, phase, plus the engine's
// static labels) and the goroutine labeled as computing — from here on
// a phase change is a single SetGoroutineLabels call with no
// allocation.
func (p *Proc) initObs() {
	p.obsBuf = p.obsBuf[:0]
	if p.e.sink == nil {
		p.labelCtx = nil
		return
	}
	if p.labelCtx == nil {
		kv := make([]string, 0, 2*(2+len(p.e.labels)))
		kv = append(kv, "proc", strconv.Itoa(p.ID))
		for k, v := range p.e.labels {
			kv = append(kv, k, v)
		}
		p.labelCtx = make([]context.Context, len(phaseTagNames))
		for i, name := range phaseTagNames {
			args := append(kv[:len(kv):len(kv)], "phase", name)
			p.labelCtx[i] = pprof.WithLabels(context.Background(), pprof.Labels(args...))
		}
	}
	p.tag(int(obs.PhaseCompute))
}

// tag switches the goroutine's pprof phase label; no-op when profiling
// is off.
func (p *Proc) tag(t int) {
	if p.labelCtx == nil {
		return
	}
	p.curTag = t
	pprof.SetGoroutineLabels(p.labelCtx[t])
}
