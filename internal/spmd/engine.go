package spmd

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"parbitonic/element"
	"parbitonic/internal/intbits"
	"parbitonic/internal/obs"
	"parbitonic/internal/trace"
)

// EngineConfig configures the shared SPMD substrate.
type EngineConfig struct {
	P      int       // number of processors (power of two)
	Costs  CostModel // consulted by the model charge helpers
	Long   bool      // long messages (pack/unpack phases exist)
	Charge Charger   // time-accounting policy (simulated or wall-clock)

	// Shared declares that the backend's processors share one address
	// space whose memory-access cost IS the machine being measured —
	// the native backend. It unlocks the zero-copy gather remap
	// (DirectRemap): processors read each other's memories directly
	// instead of packing message buffers. The simulator leaves it
	// false; its processors model distributed memories and must keep
	// charging the §3.4 pack/transfer/unpack pipeline unchanged.
	Shared bool

	// Trace, when non-nil, receives barrier-wait spans from the engine;
	// chargers add the busy-phase spans. Adds some overhead.
	Trace *trace.Recorder

	// Sink, when non-nil, receives the observability stream: run
	// lifecycle, per-processor phase spans (buffered per processor and
	// flushed at barriers — no hot-path locks), and abort events. The
	// engine also applies runtime/pprof labels (proc, phase, plus
	// Labels) to every processor goroutine so CPU profiles attribute
	// samples to bitonic phases. Nil disables all of it at the cost of
	// one pointer check per phase boundary.
	Sink obs.Sink

	// Labels are static telemetry labels ("alg", "backend", ...)
	// attached to run metadata and pprof goroutine labels. Read-only
	// after NewEngine.
	Labels map[string]string
}

// EngineOf is the concrete runtime both backends share, over element
// type E: the processor set, the exchange board and the clock-reducing
// barrier. Backend packages wrap it with their Charger and any
// backend-specific reporting.
type EngineOf[E element.Elem] struct {
	*state
	board [][]delivery[E] // board[src][dst], rewritten every exchange round
	procs []*ProcOf[E]

	// dataOut and statsOut are the recycled Data() and Result.PerProc
	// backing arrays, so a steady-state run allocates neither; both are
	// valid until the engine's next run.
	dataOut  [][]E
	statsOut []Stats

	// The persistent worker set: spawned once on the first run and fed
	// one runReq per processor per run, so steady-state runs spawn no
	// goroutines (a per-run `go` statement heap-allocates its argument
	// frame). Workers hold only the channels and the exited group —
	// never the engine — so an abandoned engine is collectable and
	// life's finalizer releases its workers; Close does so
	// deterministically. runWG joins the run's bodies; watchWG joins
	// the context watcher.
	work    chan runReq[E]
	life    *engineLife
	exited  *sync.WaitGroup
	runWG   sync.WaitGroup
	watchWG sync.WaitGroup
}

// runReq is one processor's share of a run, handed to a parked worker.
type runReq[E element.Elem] struct {
	p    *ProcOf[E]
	body func(*ProcOf[E])
}

// engineLife owns the workers' stop channel. It is referenced by the
// engine only — never by the workers — so when the engine becomes
// unreachable the finalizer on engineLife runs (the engine's internal
// proc↔engine cycle carries no finalizer and collects normally) and
// the parked workers exit. Forgetting Close therefore leaks nothing
// permanently.
type engineLife struct {
	stop chan struct{}
	once sync.Once
}

func (l *engineLife) shutdown() { l.once.Do(func() { close(l.stop) }) }

// Engine is the uint32 engine, the element type of the paper's
// experiments.
type Engine = EngineOf[uint32]

type delivery[E element.Elem] struct {
	data []E
}

// ProcOf is one processor of the runtime over element type E, owned by
// exactly one goroutine during Run. The embedded PC supplies identity,
// clock, stats and the charge/observability services.
type ProcOf[E element.Elem] struct {
	PC
	Data []E // local elements; algorithms read and replace freely

	// Scratch is per-processor working state owned by the algorithm
	// body. The engine never touches it, and it survives across runs,
	// so bodies that run repeatedly on one engine can park reusable
	// tables and closures here instead of rebuilding them every run.
	Scratch any

	e    *EngineOf[E]
	outs [][]E // pack-destination scratch, reused across remap rounds
	srcs [][]E // gather-source scratch, reused across direct remap rounds
	in   [][]E // received-message table, rewritten by every Exchange

	// free recycles long-message buffers between remap rounds,
	// bucketed by power-of-two capacity class (bucket i holds buffers
	// with cap in [2^i, 2^(i+1))), so a small buffer is never burned
	// on a large request. A receiver returns a message's backing array
	// to its OWN free list once it has unpacked (or merged from) it;
	// inventories stay balanced because every processor sends and
	// receives the same message shape each round. Buffers are always
	// fully overwritten before being sent, so stale contents are
	// harmless. Per-processor lists mean no locks and no sync.Pool
	// boxing — steady-state recycling allocates nothing.
	free [maxBufClass][][]E
}

// maxBufClass bounds the buffer capacity classes: class i covers caps
// in [2^i, 2^(i+1)), so 48 classes cover any slice Go can allocate.
const maxBufClass = 48

// Proc is the uint32 processor, the element type of the paper's
// experiments.
type Proc = ProcOf[uint32]

// NewEngineOf creates the substrate for element type E. P must be a
// power of two and at least 1; cfg.Charge must be non-nil.
func NewEngineOf[E element.Elem](cfg EngineConfig) (*EngineOf[E], error) {
	if !intbits.IsPow2(cfg.P) {
		return nil, fmt.Errorf("spmd: P=%d must be a positive power of two", cfg.P)
	}
	if cfg.Charge == nil {
		return nil, fmt.Errorf("spmd: EngineConfig.Charge must be set")
	}
	if cfg.Costs.RadixPasses <= 0 {
		cfg.Costs = DefaultCosts()
	}
	st := &state{
		p:        cfg.P,
		long:     cfg.Long,
		shared:   cfg.Shared,
		costs:    cfg.Costs,
		charge:   cfg.Charge,
		rec:      cfg.Trace,
		sink:     cfg.Sink,
		labels:   cfg.Labels,
		bar:      newBarrier(cfg.P),
		words:    element.Words[E](),
		keyScale: element.KeyBits[E]() / 32,
	}
	e := &EngineOf[E]{state: st}
	e.board = make([][]delivery[E], cfg.P)
	for i := range e.board {
		e.board[i] = make([]delivery[E], cfg.P)
	}
	e.procs = make([]*ProcOf[E], cfg.P)
	for i := range e.procs {
		p := &ProcOf[E]{PC: PC{ID: i, st: st}, e: e}
		p.ops = p
		e.procs[i] = p
	}
	return e, nil
}

// NewEngine creates a uint32 substrate; see NewEngineOf.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return NewEngineOf[uint32](cfg)
}

// P returns the processor count.
func (e *EngineOf[E]) P() int { return e.p }

// abort records the first failure cause and unwinds every processor:
// blocked ones are released by the poisoned barrier, running ones
// notice at their next phase boundary.
func (st *state) abort(cause error) {
	st.abortMu.Lock()
	first := st.abortErr == nil
	if first {
		st.abortErr = cause
	}
	st.abortMu.Unlock()
	st.aborting.Store(true)
	st.bar.poison()
	if first && st.sink != nil {
		st.sink.Emit(abortEvent(cause))
	}
}

// abortEvent classifies an abort cause into a typed observability
// event so operators can count cancellations, deadline expiries and
// panics separately.
func abortEvent(cause error) obs.Event {
	ev := obs.Event{Kind: obs.EventAbort, Proc: -1, Wall: time.Now().UnixNano()}
	if cause != nil {
		ev.Detail = cause.Error()
	}
	var pe *PanicError
	switch {
	case errors.Is(cause, ErrCanceled):
		ev.Kind = obs.EventCancel
	case errors.Is(cause, ErrDeadline):
		ev.Kind = obs.EventDeadline
	case errors.As(cause, &pe):
		ev.Kind = obs.EventPanic
		ev.Proc = pe.Proc
	}
	return ev
}

// recoverState repairs the engine after an aborted run — the barrier is
// un-poisoned, the exchange board drained of any half-published
// deliveries, and every processor's pack-destination scratch cleared
// (an abort between pack and clearOuts leaves stale out-slices that
// the NEXT run's exchange would deliver as phantom messages) — so the
// engine is immediately reusable.
func (e *EngineOf[E]) recoverState() {
	e.bar.reset()
	for i := range e.board {
		for j := range e.board[i] {
			e.board[i][j] = delivery[E]{}
		}
	}
	for _, p := range e.procs {
		p.clearOuts()
	}
	e.aborting.Store(false)
	e.abortErr = nil
}

// Run executes body once per processor, concurrently, SPMD style, and
// aggregates the results. It is RunContext with a background context.
func (e *EngineOf[E]) Run(data [][]E, body func(p *ProcOf[E])) (Result, error) {
	return e.RunContext(context.Background(), data, body)
}

// RunContext executes body once per processor, concurrently, SPMD
// style, and aggregates the results. data[i] becomes processor i's
// initial local memory (may be nil).
//
// Failure semantics: if a processor body panics, the panic is captured
// with its stack into a *PanicError, every other processor is promptly
// unwound (the barrier is poisoned, so nobody blocks forever on a dead
// peer), and the error is returned — the panic does not propagate. If
// ctx is canceled or its deadline expires mid-run, the run aborts the
// same way and the returned error wraps ErrCanceled or ErrDeadline
// (and the context's own error). After any failure the engine is
// reusable; the processors' Data is unspecified.
func (e *EngineOf[E]) RunContext(ctx context.Context, data [][]E, body func(p *ProcOf[E])) (Result, error) {
	if data != nil && len(data) != e.p {
		return Result{}, fmt.Errorf("spmd: Run got %d data slices for %d processors", len(data), e.p)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, ctxError(err)
	}
	e.aborting.Store(false)
	e.abortErr = nil

	runStart := time.Now()
	if e.sink != nil {
		keys := 0
		for _, d := range data {
			keys += len(d)
		}
		// The owning request IDs ride the context from the serve layer;
		// carrying them on RunMeta is what lets a trace or log line of
		// this run join the per-request telemetry upstream.
		e.sink.RunStart(obs.RunMeta{
			P: e.p, Keys: keys, Labels: e.labels, Start: runStart,
			Requests: obs.RequestIDsFrom(ctx),
		})
	}

	// The watcher turns a context cancellation into an engine abort; it
	// is torn down before RunContext returns so no goroutine outlives
	// the call. Contexts that cannot be canceled need no watcher (and
	// no channel: an uncancellable steady-state run allocates nothing
	// here).
	var watchDone chan struct{}
	if ctx.Done() != nil {
		watchDone = make(chan struct{})
		e.watchWG.Add(1)
		go e.watchCtx(ctx, watchDone)
	}

	e.ensureWorkers()
	for i := range e.procs {
		p := e.procs[i]
		p.Clock = 0
		p.Stats = Stats{}
		if data != nil {
			p.Data = data[i]
		} else {
			p.Data = nil
		}
		e.runWG.Add(1)
		// The channel is buffered to e.p, so the sends never block and
		// each of the e.p parked workers takes exactly one request (a
		// worker busy with one request blocks on the run's barriers
		// until every peer request is taken).
		e.work <- runReq[E]{p: p, body: body}
	}
	e.runWG.Wait()
	if watchDone != nil {
		close(watchDone)
		e.watchWG.Wait()
	}

	// All goroutines are joined: abortErr is stable without the mutex,
	// but take it anyway to keep the race detector's model exact.
	e.abortMu.Lock()
	err := e.abortErr
	e.abortMu.Unlock()
	if e.sink != nil {
		// Residual spans recorded since the last barrier (single-threaded
		// here: all workers are joined).
		for _, p := range e.procs {
			p.flushObs()
		}
	}
	if err != nil {
		if e.sink != nil {
			e.sink.RunEnd(obs.RunSummary{
				Err:         err.Error(),
				WallSeconds: time.Since(runStart).Seconds(),
			})
		}
		e.recoverState()
		return Result{}, err
	}

	var res Result
	if cap(e.statsOut) < e.p {
		e.statsOut = make([]Stats, e.p)
	}
	res.PerProc = e.statsOut[:e.p]
	for i, p := range e.procs {
		res.PerProc[i] = p.Stats
		res.Sum.add(p.Stats)
		if p.Clock > res.Time {
			res.Time = p.Clock
		}
	}
	res.Mean = res.Sum
	f := float64(e.p)
	res.Mean.Remaps /= e.p
	res.Mean.MessagesSent /= e.p
	res.Mean.VolumeSent /= e.p
	res.Mean.ComputeTime /= f
	res.Mean.PackTime /= f
	res.Mean.TransferTime /= f
	res.Mean.UnpackTime /= f
	if e.sink != nil {
		keys := 0
		for _, p := range e.procs {
			keys += len(p.Data)
		}
		e.sink.RunEnd(obs.RunSummary{
			Makespan:     res.Time,
			WallSeconds:  time.Since(runStart).Seconds(),
			Keys:         keys,
			Remaps:       res.Sum.Remaps,
			Volume:       res.Sum.VolumeSent,
			Messages:     res.Sum.MessagesSent,
			ComputeTime:  res.Sum.ComputeTime,
			PackTime:     res.Sum.PackTime,
			TransferTime: res.Sum.TransferTime,
			UnpackTime:   res.Sum.UnpackTime,
		})
	}
	return res, nil
}

// watchCtx aborts the run when ctx is canceled; done tears it down.
func (e *EngineOf[E]) watchCtx(ctx context.Context, done chan struct{}) {
	defer e.watchWG.Done()
	select {
	case <-ctx.Done():
		e.state.abort(ctxError(ctx.Err()))
	case <-done:
	}
}

// ensureWorkers lazily spawns the engine's persistent processor
// workers on the first run.
func (e *EngineOf[E]) ensureWorkers() {
	if e.work != nil {
		return
	}
	e.work = make(chan runReq[E], e.p)
	e.life = &engineLife{stop: make(chan struct{})}
	e.exited = new(sync.WaitGroup)
	e.exited.Add(e.p)
	for i := 0; i < e.p; i++ {
		go procWorker(e.work, e.life.stop, e.exited)
	}
	runtime.SetFinalizer(e.life, (*engineLife).shutdown)
}

// Close releases the engine's persistent worker goroutines and waits
// for them to exit. It is idempotent, must not overlap a run in
// flight, and the engine must not be used afterwards. Engines that are
// simply dropped release their workers via finalizer once collected;
// Close exists for callers that need the release to be deterministic
// (pools, goroutine-leak accounting).
func (e *EngineOf[E]) Close() {
	if e.life == nil {
		return // workers were never started
	}
	runtime.SetFinalizer(e.life, nil)
	e.life.shutdown()
	e.exited.Wait()
}

// procWorker is one parked processor worker. It deliberately receives
// only the channels and the exit group — taking the engine (or
// anything that references it) would keep an abandoned engine
// reachable from this goroutine's stack forever and defeat the
// finalizer-based release.
func procWorker[E element.Elem](work <-chan runReq[E], stop <-chan struct{}, exited *sync.WaitGroup) {
	defer exited.Done()
	for {
		select {
		case req := <-work:
			req.p.e.execProc(req.p, req.body)
		case <-stop:
			return
		}
	}
}

// execProc is one processor's turn of a run: observability setup, the
// charger's clock start, then the algorithm body, with panics contained
// into an engine abort.
func (e *EngineOf[E]) execProc(p *ProcOf[E], body func(*ProcOf[E])) {
	defer e.runWG.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, unwinding := r.(poisonPanic); unwinding {
				p.abortSpan()
				return // abort propagation; the cause is already recorded
			}
			p.abortSpan()
			e.state.abort(&PanicError{Proc: p.ID, Value: r, Stack: debug.Stack()})
		}
	}()
	p.initObs()
	e.charge.Start(&p.PC)
	body(p)
}

// Data returns the final local data of every processor after a Run.
// The returned header array is recycled: it is valid until the
// engine's next Run (the element slices themselves are the
// processors' own and follow their ownership rules).
func (e *EngineOf[E]) Data() [][]E {
	if cap(e.dataOut) < e.p {
		e.dataOut = make([][]E, e.p)
	}
	out := e.dataOut[:e.p]
	for i, p := range e.procs {
		out[i] = p.Data
	}
	return out
}

// ---- per-processor generic services ----

// DataLen returns the processor's local element count (the procOps
// seam the fault injector's corruption plans go through).
func (p *ProcOf[E]) DataLen() int { return len(p.Data) }

// CorruptKey flips the top key bit of local element i through the
// element's order image, preserving any payload: the generic form of
// Data[i] ^= 1<<31 on uint32 data.
func (p *ProcOf[E]) CorruptKey(i int) {
	v := p.Data[i]
	bits := element.Bits(v) ^ 1<<(element.KeyBits[E]()-1)
	p.Data[i] = element.FromBits[E](bits, element.Aux(v))
}

// GetBuf returns an n-element buffer, recycled from the processor's
// free list when its capacity class has one, allocated otherwise.
// Contents are undefined; callers must overwrite every slot.
func (p *ProcOf[E]) GetBuf(n int) []E {
	if n == 0 {
		return nil
	}
	// Class ceil(lg n): every buffer parked there has cap >= 2^class >= n.
	c := bits.Len(uint(n - 1))
	if l := p.free[c]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[c] = l[:len(l)-1]
		return b[:n]
	}
	return make([]E, n)
}

// PutBuf parks a buffer on the processor's free list for a later
// GetBuf. Only hand back buffers no other processor can still read —
// typically messages this processor received and has fully consumed.
func (p *ProcOf[E]) PutBuf(b []E) {
	c := cap(b)
	if c == 0 {
		return
	}
	p.free[bits.Len(uint(c))-1] = append(p.free[bits.Len(uint(c))-1], b[:c])
}

// outScratch returns the per-processor destination-slice table (all
// entries nil). Callers must nil the entries they set once the round's
// exchange has completed; clearOuts does that.
func (p *ProcOf[E]) outScratch() [][]E {
	if p.outs == nil {
		p.outs = make([][]E, p.e.p)
	}
	return p.outs
}

func (p *ProcOf[E]) clearOuts() {
	for i := range p.outs {
		p.outs[i] = nil
	}
}
