package spmd

import (
	"fmt"

	"parbitonic/internal/addr"
	"parbitonic/internal/obs"
)

// DirectRemap routes p.Data from plan.Old to plan.New without packing:
// every processor publishes its local memory on the exchange board,
// and after a barrier each one GATHERS its new local array straight
// out of the senders' memories using the plan's inverse routing tables
// (addr.GatherLuts). One strided read pass replaces the packed path's
// pack-copy, message delivery and unpack-copy — a full copy of the
// volume saved per remap — which is the shared-memory fast path of the
// native backend: on a machine where "transfer" is just memory access,
// the optimal bulk transfer is no transfer at all.
//
// The placement is bit-identical to RemapExchange (the gather tables
// invert the pack/unpack masks exactly; see addr.TestGatherLutsInvertPlan),
// and the communication counters are identical too: VolumeSent and
// MessagesSent record what the packed path WOULD have sent, so results
// remain comparable across paths. Ownership hand-off is safe by
// bulk-synchrony: memories are published before the first barrier,
// every gather completes before the second, and only then does any
// processor recycle its old array.
//
// DirectRemap reports false — having done nothing — when the backend
// did not declare a shared address space (EngineConfig.Shared) or the
// plan is too large for gather tables; callers fall back to
// RemapExchange. The simulator therefore never takes this path and its
// LogGP charging stays untouched.
func (p *ProcOf[E]) DirectRemap(plan *addr.RemapPlan) bool {
	e := p.e
	if !e.shared {
		return false
	}
	group, local, ok := plan.GatherLuts()
	if !ok {
		return false
	}
	n := plan.Old.LocalN()
	if len(p.Data) != n {
		panic(fmt.Sprintf("spmd: processor %d holds %d keys, plan wants %d", p.ID, len(p.Data), n))
	}
	p.checkAbort()
	p.tag(int(obs.PhaseTransfer))

	// Publish this processor's memory on the board diagonal and keep
	// the packed path's counters: the gather below reads exactly the
	// elements the packed path would have shipped.
	e.board[p.ID][p.ID] = delivery[E]{data: p.Data}
	vol, msgs := plan.SendCounts(p.ID)
	p.Stats.VolumeSent += vol
	p.Stats.MessagesSent += msgs
	e.bar.maxClock(&p.PC) // all memories published

	senders := plan.Senders(p.ID)
	srcs := p.srcScratch(len(senders))
	for g, s := range senders {
		srcs[g] = e.board[s][s].data
	}
	base := plan.GatherLBase(p.ID)
	next := p.GetBuf(n)
	if base == 0 {
		for i, g := range group {
			next[i] = srcs[g][local[i]]
		}
	} else {
		for i, g := range group {
			next[i] = srcs[g][base|int(local[i])]
		}
	}
	for g := range srcs {
		srcs[g] = nil
	}
	e.charge.Transfer(&p.PC, vol, msgs)
	e.bar.maxClock(&p.PC) // every gather done; old memories reclaimable

	e.board[p.ID][p.ID] = delivery[E]{}
	old := p.Data
	p.Data = next
	p.PutBuf(old)
	p.tag(int(obs.PhaseCompute))
	p.Stats.Remaps++
	return true
}

// srcScratch returns the per-processor sender-memory table, reused
// across direct remap rounds so the gather allocates nothing in steady
// state.
func (p *ProcOf[E]) srcScratch(n int) [][]E {
	if cap(p.srcs) < n {
		p.srcs = make([][]E, n)
	}
	return p.srcs[:n]
}
