package spmd

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// nopCharger is a race-free charger for multi-processor failsafe tests
// (countCharger's plain counters are for the P=1 contract tests only).
type nopCharger struct{}

func (nopCharger) Start(*PC)              {}
func (nopCharger) Compute(*PC, float64)   {}
func (nopCharger) Pack(*PC, int)          {}
func (nopCharger) Unpack(*PC, int)        {}
func (nopCharger) Transfer(*PC, int, int) {}
func (nopCharger) Synced(*PC)             {}

// spin is a body that barriers forever; only an abort can unwind it.
func spin(p *Proc) {
	for {
		p.Barrier()
	}
}

// runWithWatchdog fails the test if RunContext has not returned within
// the bound — the deadlock-freedom assertion behind every abort path.
func runWithWatchdog(t *testing.T, bound time.Duration, e *Engine, ctx context.Context, body func(*Proc)) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := e.RunContext(ctx, nil, body)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(bound):
		t.Fatalf("RunContext still blocked after %v", bound)
		return nil
	}
}

func TestRunContextCancel(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 4, Charge: nopCharger{}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := runWithWatchdog(t, 2*time.Second, e, ctx, spin)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapping ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 4, Charge: nopCharger{}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := runWithWatchdog(t, 2*time.Second, e, ctx, spin)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want wrapping ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapping context.DeadlineExceeded", err)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 2, Charge: nopCharger{}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := e.RunContext(ctx, nil, func(p *Proc) { ran = true })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapping ErrCanceled", err)
	}
	if ran {
		t.Fatal("body ran under an already-canceled context")
	}
}

func TestPanicBecomesError(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 4, Charge: nopCharger{}})
	err := runWithWatchdog(t, 2*time.Second, e, context.Background(), func(p *Proc) {
		if p.ID == 1 {
			panic("kaboom")
		}
		spin(p)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Proc != 1 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = {Proc:%d Value:%v}, want {1 kaboom}", pe.Proc, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("PanicError.Stack does not look like a stack trace:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "processor 1") {
		t.Fatalf("PanicError.Error() = %q, want it to name the processor", pe.Error())
	}
}

// TestEngineReusableAfterAbort pins the recovery contract: a failed run
// (panic, then cancellation) leaves the engine ready for a clean run.
func TestEngineReusableAfterAbort(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 4, Charge: nopCharger{}})

	err := runWithWatchdog(t, 2*time.Second, e, context.Background(), func(p *Proc) {
		if p.ID == 0 {
			panic("first failure")
		}
		spin(p)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("first run: err = %v, want *PanicError", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := runWithWatchdog(t, 2*time.Second, e, ctx, spin); !errors.Is(err, ErrDeadline) {
		t.Fatalf("second run: err = %v, want wrapping ErrDeadline", err)
	}

	// Third run: clean, with real data and exchanges.
	data := [][]uint32{{3, 1}, {4, 2}, {8, 6}, {7, 5}}
	res, err := e.RunContext(context.Background(), data, func(p *Proc) {
		out := make([][]uint32, 4)
		out[(p.ID+1)%4] = p.Data
		in := p.Exchange(out)
		p.Data = in[(p.ID+3)%4]
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("clean run after aborts failed: %v", err)
	}
	if res.Sum.MessagesSent == 0 {
		t.Fatal("clean run recorded no exchanges")
	}
	for i, d := range e.Data() {
		src := (i + 3) % 4
		if len(d) != 2 || d[0] != data[src][0] {
			t.Fatalf("proc %d: data %v, want the rotation from proc %d", i, d, src)
		}
	}
}

// TestAbortUnblocksExchange checks the abort path releases processors
// blocked inside Exchange (not just plain Barrier).
func TestAbortUnblocksExchange(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 2, Charge: nopCharger{}})
	err := runWithWatchdog(t, 2*time.Second, e, context.Background(), func(p *Proc) {
		if p.ID == 1 {
			panic("peer died")
		}
		for {
			p.Exchange(make([][]uint32, 2))
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Proc != 1 {
		t.Fatalf("err = %v, want *PanicError from proc 1", err)
	}
}

func TestCtxErrorMapping(t *testing.T) {
	if err := ctxError(context.DeadlineExceeded); !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctxError(DeadlineExceeded) = %v", err)
	}
	if err := ctxError(context.Canceled); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("ctxError(Canceled) = %v", err)
	}
}

// TestNoStaleOutsAfterAbort pins the scratch-recovery contract behind
// engine pooling: a run that dies between pack (outScratch entries
// set) and clearOuts must not leak those out-slices into the NEXT
// run's exchange as phantom messages. Regression test for a bug found
// by chaos-testing pooled engines: a crash fault at remap round >= 1
// poisoned every later run on the engine with "lost keys across a
// remap".
func TestNoStaleOutsAfterAbort(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 2, Charge: nopCharger{}})

	// Run 1: both processors stage outgoing messages in the pooled
	// scratch the way pack does, then die before any clearOuts.
	err := runWithWatchdog(t, 2*time.Second, e, context.Background(), func(p *Proc) {
		out := p.outScratch()
		out[1-p.ID] = []uint32{0xBAD, 0xBAD}
		panic("mid-pack death")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("first run: err = %v, want *PanicError", err)
	}

	// Run 2: a clean exchange where nobody sends anything. Any stale
	// scratch entry from run 1 would surface as a phantom delivery.
	_, err = e.RunContext(context.Background(), nil, func(p *Proc) {
		in := p.Exchange(p.outScratch())
		for src, msg := range in {
			if src != p.ID && len(msg) > 0 {
				panic("phantom message from an aborted run's scratch")
			}
		}
		p.clearOuts()
	})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
}
