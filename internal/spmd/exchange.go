package spmd

import (
	"fmt"

	"parbitonic/internal/addr"
	"parbitonic/internal/obs"
)

// Exchange performs an all-to-all: out[q] is sent to processor q
// (out[p.ID] is kept locally, nil entries send nothing) and the result
// holds one slice per source processor (the local slice comes back in
// position p.ID). Only slice headers cross the board — the handoff is
// zero-copy; receivers read the sender's backing array directly.
// Transfer time is charged per the backend's policy and all clocks
// synchronize afterwards. The returned table is the processor's own
// scratch: it is rewritten by this processor's next Exchange, so
// consume it (or copy the headers out) before the next round.
func (p *ProcOf[E]) Exchange(out [][]E) [][]E {
	p.checkAbort()
	p.tag(int(obs.PhaseTransfer))
	e := p.e
	if len(out) != e.p {
		panic(fmt.Sprintf("spmd: Exchange wants %d destination slices, got %d", e.p, len(out)))
	}
	vol, msgs := 0, 0
	for q, msg := range out {
		e.board[p.ID][q] = delivery[E]{data: msg}
		if q != p.ID && len(msg) > 0 {
			vol += len(msg)
			msgs++
		}
	}
	p.Stats.VolumeSent += vol
	p.Stats.MessagesSent += msgs
	e.bar.maxClock(&p.PC) // publish sends
	if p.in == nil {
		p.in = make([][]E, e.p)
	}
	in := p.in
	for src := 0; src < e.p; src++ {
		in[src] = e.board[src][p.ID].data
	}
	e.charge.Transfer(&p.PC, vol, msgs)
	e.bar.maxClock(&p.PC) // everyone has read; board reusable, clocks synced
	p.tag(int(obs.PhaseCompute))
	return in
}

// PairExchange swaps data with one partner processor: both send their
// slice and receive the other's. Every processor must participate in
// the round (processors pair up mutually). Used by the Blocked-Merge
// baseline, whose remote steps exchange full halves between pairs.
func (p *ProcOf[E]) PairExchange(partner int, out []E) []E {
	p.checkAbort()
	p.tag(int(obs.PhaseTransfer))
	e := p.e
	if partner < 0 || partner >= e.p || partner == p.ID {
		panic(fmt.Sprintf("spmd: bad partner %d for processor %d", partner, p.ID))
	}
	e.board[p.ID][partner] = delivery[E]{data: out}
	p.Stats.VolumeSent += len(out)
	p.Stats.MessagesSent++
	e.bar.maxClock(&p.PC)
	in := e.board[partner][p.ID].data
	e.charge.Transfer(&p.PC, len(out), 1)
	e.bar.maxClock(&p.PC)
	p.tag(int(obs.PhaseCompute))
	return in
}

// planDests returns this processor's destination group under the
// plan, in per-processor scratch rewritten by the next call.
func (p *ProcOf[E]) planDests(plan *addr.RemapPlan) []int {
	p.grp = plan.AppendDests(p.grp[:0], p.ID)
	return p.grp
}

// pack routes p.Data into pooled per-destination message buffers per
// the plan. The returned slice is the per-processor out table; the
// caller must run it through Exchange before touching p.Data again and
// clear it afterwards.
func (p *ProcOf[E]) pack(plan *addr.RemapPlan, n int) [][]E {
	out := p.outScratch()
	for _, q := range p.planDests(plan) {
		out[q] = p.GetBuf(plan.MsgLen)
	}
	dest, off := p.routeScratch(n)
	plan.Route(p.ID, dest, off)
	for l := 0; l < n; l++ {
		out[dest[l]][off[l]] = p.Data[l]
	}
	return out
}

// RemapExchange routes p.Data from plan.Old to plan.New: it packs the
// local keys into per-destination long messages using the plan's pack
// mask, exchanges them, and unpacks into the new local order
// (Figure 3.17's three phases). Pack and unpack costs are charged
// unless fused is true, modelling §4.3's fusion of packing/unpacking
// with the local sorts (the data movement still happens; only the extra
// passes disappear).
//
// In short-message mode each key is its own message and no pack/unpack
// cost arises (there is nothing to pack), exactly as in §3.3.
//
// Message buffers come from the engine's pool: each received message's
// backing array is recycled once unpacked, so steady-state remapping
// allocates only the new local array.
func (p *ProcOf[E]) RemapExchange(plan *addr.RemapPlan, fused bool) {
	e := p.e
	n := plan.Old.LocalN()
	if len(p.Data) != n {
		panic(fmt.Sprintf("spmd: processor %d holds %d keys, plan wants %d", p.ID, len(p.Data), n))
	}
	p.tag(int(obs.PhasePack))
	out := p.pack(plan, n)
	if e.long && !fused {
		e.charge.Pack(&p.PC, n)
	}
	in := p.Exchange(out)
	p.clearOuts()
	// Unpack into the new local order. The new array comes from the
	// engine pool and the old one goes back to it: the exchange already
	// copied every key out of p.Data during pack, so the backing array
	// is free the moment the messages are in flight, and steady-state
	// remapping allocates nothing.
	p.tag(int(obs.PhaseUnpack))
	next := p.GetBuf(n)
	nl := p.nlScratch(plan.MsgLen)
	for src, msg := range in {
		if len(msg) == 0 {
			continue
		}
		plan.UnpackTable(src, nl)
		for i, v := range msg {
			next[nl[i]] = v
		}
		p.PutBuf(msg)
	}
	p.PutBuf(p.Data)
	p.Data = next
	if e.long && !fused {
		e.charge.Unpack(&p.PC, n)
	}
	p.tag(int(obs.PhaseCompute))
	p.Stats.Remaps++
}

// RemapExchangeRuns is RemapExchange without the unpack phase: it
// packs p.Data per the plan, exchanges, and returns the received long
// messages indexed by source processor so the caller can fuse the
// unpacking into its local computation (§4.3's p-way merge). p.Data is
// set to nil (the spent input array is recycled into the free list —
// the pack already copied every key out of it); the caller must
// install the merged result. No unpack time is charged, and pack time
// only when fusedPack is false. The returned messages are pooled
// buffers — hand them back with PutBuf once consumed.
func (p *ProcOf[E]) RemapExchangeRuns(plan *addr.RemapPlan, fusedPack bool) [][]E {
	e := p.e
	n := plan.Old.LocalN()
	if len(p.Data) != n {
		panic(fmt.Sprintf("spmd: processor %d holds %d keys, plan wants %d", p.ID, len(p.Data), n))
	}
	p.tag(int(obs.PhasePack))
	out := p.pack(plan, n)
	if e.long && !fusedPack {
		e.charge.Pack(&p.PC, n)
	}
	in := p.Exchange(out)
	p.clearOuts()
	p.PutBuf(p.Data)
	p.Data = nil
	p.Stats.Remaps++
	return in
}

// RemapExchangePrepacked performs a remap whose messages the caller has
// already packed (out[q] must be a plan.MsgLen slice for every group
// destination, nil elsewhere). Used when the local computation emits
// directly into the message buffers — the thesis's "single local
// computation step" future work — so neither pack nor unpack time is
// charged. Returns the received messages by source; p.Data is set nil.
func (p *ProcOf[E]) RemapExchangePrepacked(plan *addr.RemapPlan, out [][]E) [][]E {
	e := p.e
	if len(out) != e.p {
		panic(fmt.Sprintf("spmd: prepacked exchange wants %d slices, got %d", e.p, len(out)))
	}
	for _, q := range p.planDests(plan) {
		if len(out[q]) != plan.MsgLen {
			panic(fmt.Sprintf("spmd: prepacked message to %d has %d keys, plan wants %d", q, len(out[q]), plan.MsgLen))
		}
	}
	in := p.Exchange(out)
	p.Data = nil
	p.Stats.Remaps++
	return in
}

// PackBuffers returns pooled plan.MsgLen buffers for every destination
// of this processor under the plan, for use with
// RemapExchangePrepacked. The caller owns nil-ing its table entries
// after the exchange.
func (p *ProcOf[E]) PackBuffers(plan *addr.RemapPlan) [][]E {
	out := p.outScratch()
	for _, q := range p.planDests(plan) {
		out[q] = p.GetBuf(plan.MsgLen)
	}
	return out
}

// ClearPackBuffers nils the per-processor destination table filled by
// PackBuffers once the exchange round has completed.
func (p *ProcOf[E]) ClearPackBuffers() { p.clearOuts() }
