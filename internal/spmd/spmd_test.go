package spmd

import (
	"strings"
	"testing"
)

// countCharger counts hook invocations — a minimal third backend that
// pins the Charger contract the simulator and native backends rely on.
type countCharger struct {
	start, compute, pack, unpack, transfer, synced int
}

func (c *countCharger) Start(*PC)              { c.start++ }
func (c *countCharger) Compute(*PC, float64)   { c.compute++ }
func (c *countCharger) Pack(*PC, int)          { c.pack++ }
func (c *countCharger) Unpack(*PC, int)        { c.unpack++ }
func (c *countCharger) Transfer(*PC, int, int) { c.transfer++ }
func (c *countCharger) Synced(*PC)             { c.synced++ }

func mustEngine(t testing.TB, cfg EngineConfig) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestChargerHooksFire(t *testing.T) {
	ch := &countCharger{}
	e := mustEngine(t, EngineConfig{P: 1, Long: true, Charge: ch})
	if _, err := e.Run(nil, func(p *Proc) {
		p.ChargeCompute(1)
		p.Barrier()
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ch.start != 1 || ch.compute != 1 || ch.synced != 1 {
		t.Fatalf("hook counts start=%d compute=%d synced=%d, want 1 each", ch.start, ch.compute, ch.synced)
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	e := mustEngine(t, EngineConfig{P: 1, Charge: &countCharger{}})
	p := e.procs[0]
	b := p.GetBuf(64)
	if len(b) != 64 {
		t.Fatalf("GetBuf(64) returned %d keys", len(b))
	}
	b[0] = 7
	p.PutBuf(b)
	c := p.GetBuf(32)
	if len(c) != 32 {
		t.Fatalf("GetBuf(32) returned %d keys", len(c))
	}
	// A buffer smaller than requested must not be handed back short.
	p.PutBuf(make([]uint32, 4))
	d := p.GetBuf(128)
	if len(d) != 128 {
		t.Fatalf("GetBuf(128) returned %d keys", len(d))
	}
	p.PutBuf(nil) // must not panic
}

func TestNewEngineValidation(t *testing.T) {
	for _, p := range []int{0, 3, -4} {
		_, err := NewEngine(EngineConfig{P: p, Charge: &countCharger{}})
		if err == nil || !strings.Contains(err.Error(), "power of two") {
			t.Fatalf("P=%d: expected power-of-two error, got %v", p, err)
		}
	}
	if _, err := NewEngine(EngineConfig{P: 2}); err == nil || !strings.Contains(err.Error(), "Charge") {
		t.Fatalf("nil Charge: expected Charge error, got %v", err)
	}
}
