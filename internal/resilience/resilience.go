// Package resilience is the recovery layer of the sort service: the
// policies that turn the fail-safe runtime's *detected* faults into
// *healed* requests. The runtime (internal/spmd, internal/verify)
// classifies every failure into a typed error; this package decides
// what to do about each class:
//
//   - Retryable failures — a contained processor panic
//     (*spmd.PanicError) or a post-sort verification failure
//     (*verify.Error), both of which injected chaos faults surface as —
//     are transient: the same request on a fresh (or recovered) engine
//     usually succeeds. Policy schedules bounded retries with jittered
//     exponential backoff, never sleeping past the caller's context
//     deadline (deadline-budget accounting).
//
//   - Non-retryable failures — spmd.ErrCanceled / spmd.ErrDeadline
//     (the caller gave up; retrying sorts for nobody), admission
//     rejections, and validation errors (bad shape, NaN keys) — fail
//     immediately.
//
//   - Engine health — EngineHealthy tells an engine pool whether the
//     engine that produced an error may be recycled. Panics and
//     verification failures quarantine the engine (its internal state
//     is suspect even though the runtime nominally recovers it);
//     cancellation and deadline aborts do not (the engine is documented
//     reusable after them and the failure says nothing about its
//     health).
//
// Breaker (breaker.go) adds the third layer: when failures persist
// across requests, a circuit breaker stops offering traffic to the
// failing backend entirely until a probe succeeds.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// Retryable reports whether err is a transient engine-run failure a
// retry may heal: a contained processor panic (*spmd.PanicError) or a
// result-verification failure (*verify.Error) — the two shapes every
// injected chaos fault surfaces as. Cancellation, deadline expiry,
// admission rejections and validation errors are never retryable: the
// first two mean the caller has given up (errors.Is against
// spmd.ErrCanceled/ErrDeadline and the context sentinels), the rest
// are deterministic.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, spmd.ErrCanceled) || errors.Is(err, spmd.ErrDeadline) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *spmd.PanicError
	var ve *verify.Error
	return errors.As(err, &pe) || errors.As(err, &ve)
}

// EngineHealthy reports whether an engine whose run returned err may be
// recycled by a pool. A panicked engine (*spmd.PanicError) or one that
// produced verification-failing output (*verify.Error) is quarantined —
// the runtime recovers its goroutines, but an engine that just proved
// it can corrupt data has forfeited the benefit of the doubt. A nil
// error and the caller-driven aborts (cancel, deadline) leave the
// engine healthy: those runs say nothing about the engine itself.
func EngineHealthy(err error) bool {
	if err == nil {
		return true
	}
	var pe *spmd.PanicError
	var ve *verify.Error
	return !errors.As(err, &pe) && !errors.As(err, &ve)
}

// Policy bounds a retry loop: up to MaxRetries re-attempts after the
// first try, sleeping a jittered exponential backoff between attempts,
// and never retrying when the remaining context budget cannot absorb
// the backoff sleep. The zero value retries nothing; Default returns
// the serving defaults.
type Policy struct {
	// MaxRetries is the number of re-attempts after the first failed
	// try; 0 disables retrying.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means 50ms.
	MaxDelay time.Duration
}

// Default is the serving retry policy: 2 retries, 1ms base backoff
// capped at 50ms — tuned for sub-millisecond engine runs where a
// transient fault clears as soon as a fresh engine picks the work up.
func Default() Policy {
	return Policy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

func (p Policy) withDefaults() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return p
}

// Delay returns the backoff before retry `attempt` (0-based): BaseDelay
// doubled per attempt, capped at MaxDelay, with ±50% uniform jitter so
// a burst of simultaneous failures does not retry in lockstep.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter to [d/2, 3d/2); the bound stays positive because d >= 1ns.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// ShouldRetry decides whether a failed attempt (0-based) may be
// re-tried under ctx, and with what backoff: err must be Retryable,
// the attempt budget must not be exhausted, ctx must be live, and —
// the deadline-budget accounting — the remaining time to ctx's
// deadline must exceed the backoff sleep, so a retry never spends the
// caller's whole budget asleep just to be aborted at the deadline.
func (p Policy) ShouldRetry(ctx context.Context, attempt int, err error) (time.Duration, bool) {
	if attempt >= p.MaxRetries || !Retryable(err) || ctx.Err() != nil {
		return 0, false
	}
	d := p.Delay(attempt)
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
		return 0, false
	}
	return d, true
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case — the backoff sleep of a retry loop must not outlive the
// request it serves.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
