package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position: Closed (traffic
// flows), Open (traffic fails fast), HalfOpen (a bounded number of
// probes test whether the backend recovered).
type BreakerState int32

// The breaker states, in the order the breaker_state gauge exports
// them (0 closed, 1 open, 2 half-open).
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String returns the lowercase state name used in metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// transition is one staged state change, delivered to OnTransition
// after the breaker's lock is released.
type transition struct {
	from, to BreakerState
}

// BreakerConfig tunes a Breaker. The zero value of every field is
// usable: defaults are applied by NewBreaker.
type BreakerConfig struct {
	// Window is the number of recent run outcomes the failure rate is
	// computed over. 0 means 32.
	Window int
	// MinSamples is the fewest outcomes the window must hold before the
	// rate is acted on — a single early failure must not trip the
	// breaker. 0 means 8.
	MinSamples int
	// FailureRate opens the breaker when the windowed failure fraction
	// reaches it. 0 means 0.5.
	FailureRate float64
	// Cooldown is how long an open breaker waits before letting
	// half-open probes through. 0 means 1s.
	Cooldown time.Duration
	// HalfOpenProbes is how many requests may probe a half-open breaker
	// before an outcome arrives. 0 means 1.
	HalfOpenProbes int
	// Now overrides the clock, for tests. nil means time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, is called (outside the breaker's
	// lock) after every state change — the observability hook.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a failure-rate-windowed circuit breaker over engine-run
// outcomes: Closed until the windowed failure rate reaches FailureRate
// (with at least MinSamples outcomes), then Open — every Allow fails
// fast — for Cooldown, then HalfOpen: up to HalfOpenProbes requests
// pass, and the first recorded outcome decides (success closes the
// circuit and resets the window, failure re-opens it for another
// cooldown). Safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state    BreakerState
	ring     []bool // recent outcomes, true = failure
	pos      int    // next ring slot
	filled   int    // outcomes currently in the ring
	failures int    // failures currently in the ring

	openedAt    time.Time    // when the breaker last opened
	probes      int          // probes granted while half-open
	transitions uint64       // state changes, for metrics
	staged      []transition // OnTransition deliveries pending unlock
}

// NewBreaker builds a breaker from cfg (zero fields defaulted).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the breaker's current position. An open breaker whose
// cooldown has lapsed reports HalfOpen — the state the next request
// will actually see.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Transitions returns how many state changes the breaker has made.
func (b *Breaker) Transitions() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transitions
}

// RetryAfter returns how long until an open breaker admits probes —
// the honest Retry-After hint for a failed-fast request. Zero when not
// open.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	if left := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt); left > 0 {
		return left
	}
	return 0
}

// Allow reports whether a request may proceed. Closed always admits;
// Open fails fast until the cooldown lapses; the lapse moves the
// breaker to HalfOpen, where up to HalfOpenProbes requests are
// admitted as probes and the rest fail fast until an outcome arrives.
func (b *Breaker) Allow() (admitted bool) {
	b.mu.Lock()
	defer b.deliver()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.setState(HalfOpen)
		b.probes = 0
		fallthrough
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record feeds one engine-run outcome (failure = true) into the
// breaker. In Closed it slides the window and opens the circuit when
// the failure rate crosses the threshold; in HalfOpen the outcome
// decides the probe — success closes the circuit, failure re-opens it.
// In Open the outcome is ignored: a late result from a run admitted
// before the trip carries no admission-worthy information, and state
// only ever advances out of Open through Allow's cooldown gate.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.deliver()
	switch b.state {
	case Closed:
		b.push(failure)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureRate*float64(b.filled) {
			b.trip()
		}
	case HalfOpen:
		if failure {
			b.trip()
		} else {
			b.setState(Closed)
			b.reset()
		}
	}
}

// push slides one outcome into the ring window.
func (b *Breaker) push(failure bool) {
	if b.filled == len(b.ring) {
		if b.ring[b.pos] {
			b.failures--
		}
	} else {
		b.filled++
	}
	b.ring[b.pos] = failure
	if failure {
		b.failures++
	}
	b.pos = (b.pos + 1) % len(b.ring)
}

// trip opens the circuit and starts the cooldown clock. Callers hold mu.
func (b *Breaker) trip() {
	b.setState(Open)
	b.openedAt = b.cfg.Now()
	b.reset()
}

// reset clears the outcome window and probe count (a new state starts
// with fresh evidence). Callers hold mu.
func (b *Breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.pos, b.filled, b.failures, b.probes = 0, 0, 0, 0
}

// setState moves the breaker and stages the OnTransition delivery;
// callers hold mu.
func (b *Breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	b.staged = append(b.staged, transition{from: b.state, to: to})
	b.state = to
	b.transitions++
}

// deliver releases mu and then fires any staged OnTransition callbacks
// — outside the lock, so the hook may call back into the breaker.
func (b *Breaker) deliver() {
	staged := b.staged
	b.staged = nil
	hook := b.cfg.OnTransition
	b.mu.Unlock()
	if hook == nil {
		return
	}
	for _, tr := range staged {
		hook(tr.from, tr.to)
	}
}
