package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:      8,
		MinSamples:  4,
		FailureRate: 0.5,
		Cooldown:    time.Second,
		Now:         clk.Now,
	})
}

func TestBreakerStaysClosedBelowThreshold(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	// 1 failure in 4 samples: 25% < 50%, stays closed.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit")
	}
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(i%2 == 0) // 2 failures in 4 = exactly the 50% threshold
	}
	if got := b.State(); got != Open {
		t.Fatalf("state after 50%% failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must fail fast")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", ra)
	}
}

// TestBreakerHalfOpenProbeSucceeds is the satellite edge case: after
// the cooldown, exactly one probe is admitted; its success closes the
// circuit and traffic flows again.
func TestBreakerHalfOpenProbeSucceeds(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	clk.Advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker must hold back the second request (1 probe)")
	}
	b.Record(false) // the probe succeeded
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit freely again")
	}
}

// TestBreakerHalfOpenProbeFails is the other half of the satellite
// edge case: a failing probe re-opens the circuit for a fresh cooldown.
func TestBreakerHalfOpenProbeFails(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker must admit the probe")
	}
	b.Record(true) // the probe failed
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker must fail fast")
	}
	// A second cooldown admits another probe.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown must admit another probe")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	// Fill the window (8) with successes, then 3 failures: the window
	// holds 3/8 < 50% — stays closed even though the last 3 runs failed.
	for i := 0; i < 8; i++ {
		b.Record(false)
	}
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed (3/8 under threshold)", got)
	}
	// One more failure: 4/8 = 50% — trips.
	b.Record(true)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open (4/8 at threshold)", got)
	}
}

func TestBreakerTransitionHook(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var mu sync.Mutex
	var seen []string
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Second,
		Now: clk.Now,
		OnTransition: func(from, to BreakerState) {
			mu.Lock()
			seen = append(seen, from.String()+">"+to.String())
			mu.Unlock()
		},
	})
	b.Record(true)
	b.Record(true) // closed > open
	clk.Advance(time.Second)
	b.Allow()       // open > half-open (+ probe)
	b.Record(false) // half-open > closed
	mu.Lock()
	defer mu.Unlock()
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
	if got := b.Transitions(); got != 3 {
		t.Errorf("Transitions() = %d, want 3", got)
	}
}

// TestBreakerConcurrency hammers all methods under the race detector.
func TestBreakerConcurrency(t *testing.T) {
	b := NewBreaker(BreakerConfig{Cooldown: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record((g+i)%3 == 0)
				}
				_ = b.State()
				_ = b.RetryAfter()
				_ = b.Transitions()
			}
		}(g)
	}
	wg.Wait()
}
