package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"panic", &spmd.PanicError{Proc: 1, Value: "boom"}, true},
		{"wrapped panic", fmt.Errorf("run: %w", &spmd.PanicError{Proc: 0, Value: "x"}), true},
		{"verify", &verify.Error{Invariant: "multiset", Proc: -1}, true},
		{"canceled", fmt.Errorf("%w: gone", spmd.ErrCanceled), false},
		{"deadline", fmt.Errorf("%w: late", spmd.ErrDeadline), false},
		{"ctx canceled", context.Canceled, false},
		{"ctx deadline", context.DeadlineExceeded, false},
		{"validation", errors.New("parbitonic: keys[0] is NaN"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestEngineHealthyClassification: only panics and verification
// failures quarantine an engine; caller-driven aborts do NOT — the
// satellite's "quarantine must not fire on ErrCanceled".
func TestEngineHealthyClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, true},
		{"canceled", fmt.Errorf("%w: gone", spmd.ErrCanceled), true},
		{"deadline", fmt.Errorf("%w: late", spmd.ErrDeadline), true},
		{"validation", errors.New("bad shape"), true},
		{"panic", &spmd.PanicError{Proc: 2, Value: "boom"}, false},
		{"verify", &verify.Error{Invariant: "local-sorted", Proc: 0}, false},
	}
	for _, c := range cases {
		if got := EngineHealthy(c.err); got != c.want {
			t.Errorf("EngineHealthy(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPolicyDelayGrowsAndCaps(t *testing.T) {
	p := Policy{MaxRetries: 10, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	for attempt, wantCenter := range []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		10 * time.Millisecond, 10 * time.Millisecond, // capped
	} {
		for i := 0; i < 20; i++ {
			d := p.Delay(attempt)
			if d < wantCenter/2 || d >= wantCenter+wantCenter/2 {
				t.Fatalf("Delay(%d) = %v outside jitter band around %v", attempt, d, wantCenter)
			}
		}
	}
}

func TestShouldRetryBudget(t *testing.T) {
	p := Policy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	retryable := &spmd.PanicError{Proc: 0, Value: "x"}

	if _, ok := p.ShouldRetry(context.Background(), 0, retryable); !ok {
		t.Error("attempt 0 of 2 retries must be allowed")
	}
	if _, ok := p.ShouldRetry(context.Background(), 2, retryable); ok {
		t.Error("attempt 2 with MaxRetries=2 must be refused (budget spent)")
	}
	if _, ok := p.ShouldRetry(context.Background(), 0, errors.New("permanent")); ok {
		t.Error("non-retryable error must be refused")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := p.ShouldRetry(canceled, 0, retryable); ok {
		t.Error("a dead context must refuse retries")
	}
}

// TestShouldRetryDeadlineExhausted is the satellite edge case: the
// retry budget runs out exactly at the deadline — when the remaining
// context budget cannot absorb even the backoff sleep, the retry is
// refused rather than slept into the deadline.
func TestShouldRetryDeadlineExhausted(t *testing.T) {
	p := Policy{MaxRetries: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	retryable := &verify.Error{Invariant: "multiset", Proc: -1}

	// Deadline far beyond the max jittered backoff (75ms): retry allowed.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, ok := p.ShouldRetry(ctx, 0, retryable); !ok {
		t.Error("ample deadline budget must allow the retry")
	}

	// Deadline below the minimum jittered backoff (25ms): always refused.
	tight, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if d, ok := p.ShouldRetry(tight, 0, retryable); ok {
		t.Errorf("deadline-exhausted retry must be refused (got delay %v)", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under canceled ctx = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not wake on cancellation")
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("plain Sleep = %v", err)
	}
}
