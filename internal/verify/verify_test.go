package verify

import (
	"strings"
	"testing"
)

func TestChecksumOrderIndependent(t *testing.T) {
	a := Sum([]uint32{1, 2, 3, 4, 5})
	b := Sum([]uint32{5, 3, 1, 4, 2})
	if a != b {
		t.Fatalf("checksum is order-dependent: %+v vs %+v", a, b)
	}
	if c := Sum([]uint32{1, 2}).Add([]uint32{3, 4, 5}); c != a {
		t.Fatalf("Add-folded checksum %+v, want %+v", c, a)
	}
}

func TestChecksumDetectsSingleBitFlip(t *testing.T) {
	keys := []uint32{10, 20, 30, 40}
	want := Sum(keys)
	keys[2] ^= 1 << 31
	if Sum(keys) == want {
		t.Fatal("flipped bit not detected")
	}
}

func TestDistributedOK(t *testing.T) {
	data := [][]uint32{{1, 2}, {2, 3}, nil, {3, 9}}
	sum := Checksum{}
	for _, d := range data {
		sum = sum.Add(d)
	}
	if err := Distributed(data, sum); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}
}

func TestDistributedViolations(t *testing.T) {
	cases := []struct {
		name      string
		data      [][]uint32
		invariant string
		proc      int
	}{
		{"local unsorted", [][]uint32{{1, 2}, {5, 4}}, "local-sorted", 1},
		{"boundary inversion", [][]uint32{{5, 6}, {1, 2}}, "boundary-order", 1},
		{"boundary across empty", [][]uint32{{5, 6}, nil, {1, 2}}, "boundary-order", 2},
	}
	for _, tc := range cases {
		sum := Checksum{}
		for _, d := range tc.data {
			sum = sum.Add(d)
		}
		err := Distributed(tc.data, sum)
		if err == nil || err.Invariant != tc.invariant || err.Proc != tc.proc {
			t.Errorf("%s: got %v, want invariant %q at proc %d", tc.name, err, tc.invariant, tc.proc)
		}
	}
}

func TestDistributedMultiset(t *testing.T) {
	data := [][]uint32{{1, 2}, {3, 4}}
	sum := Sum([]uint32{1, 2, 3, 5}) // 4 swapped for 5 relative to the output
	err := Distributed(data, sum)
	if err == nil || err.Invariant != "multiset" || err.Proc != -1 {
		t.Fatalf("got %v, want multiset violation with Proc=-1", err)
	}
	if !strings.Contains(err.Error(), "multiset") {
		t.Fatalf("error text %q does not name the invariant", err.Error())
	}
}
