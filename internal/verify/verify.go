// Package verify implements the post-sort result verification behind
// parbitonic's Config.Verify — the discipline production sorters like
// AlphaSort ship with: never report a sort as done without checking
// the output. Three invariants are checked over the distributed
// output, cheapest first:
//
//  1. local-sorted — every processor's local keys are ascending;
//  2. boundary-order — the last key of processor q does not exceed the
//     first key of the next non-empty processor (with 1, this makes
//     the concatenated output globally sorted);
//  3. multiset — the output is a permutation of the input, witnessed
//     by an O(n) checksum (count, xor, and sum of all elements) taken
//     of the input before the sort ran.
//
// The checksum folds both the key's order image and the auxiliary
// payload word (zero for scalar elements), so for key+payload records
// a lost, duplicated, or corrupted payload is caught exactly like a
// corrupted key. It is a witness, not a proof — a corruption that
// preserves count, xor and sum simultaneously passes — but a single
// flipped bit, a lost message, or a duplicated element always changes
// at least one component.
package verify

import (
	"fmt"

	"parbitonic/element"
)

// Checksum is an order-independent fingerprint of an element multiset.
// Keys are folded through their order images; Aux folds the payload
// words of record elements (both components stay zero for scalars with
// no payload only when the keys themselves xor/sum to zero).
type Checksum struct {
	Count  int    // number of elements
	Xor    uint64 // xor of all key images
	Sum    uint64 // sum of all key images (mod 2^64)
	AuxXor uint64 // xor of all payload words
	AuxSum uint64 // sum of all payload words (mod 2^64)
}

// Sum fingerprints keys.
func Sum[E element.Elem](keys []E) Checksum {
	c := Checksum{Count: len(keys)}
	for _, k := range keys {
		b := element.Bits(k)
		a := element.Aux(k)
		c.Xor ^= b
		c.Sum += b
		c.AuxXor ^= a
		c.AuxSum += a
	}
	return c
}

// Add folds another uint32 slice into the checksum (for distributed
// inputs); Fold is the generic equivalent (Go methods cannot take type
// parameters).
func (c Checksum) Add(keys []uint32) Checksum {
	return Fold(c, keys)
}

// Fold folds another slice of any element type into the checksum.
func Fold[E element.Elem](c Checksum, keys []E) Checksum {
	d := Sum(keys)
	return Checksum{
		Count:  c.Count + d.Count,
		Xor:    c.Xor ^ d.Xor,
		Sum:    c.Sum + d.Sum,
		AuxXor: c.AuxXor ^ d.AuxXor,
		AuxSum: c.AuxSum + d.AuxSum,
	}
}

// Error names the first violated invariant of a failed verification.
type Error struct {
	Invariant string // "local-sorted", "boundary-order" or "multiset"
	Proc      int    // processor at fault; -1 when not attributable
	Detail    string // what was observed, e.g. the offending pair of keys
}

// Error formats the failure naming the invariant and the processor.
func (e *Error) Error() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("verify: invariant %q violated at processor %d: %s", e.Invariant, e.Proc, e.Detail)
	}
	return fmt.Sprintf("verify: invariant %q violated: %s", e.Invariant, e.Detail)
}

// Distributed checks the three output invariants over the final
// per-processor data of a run against the input fingerprint. It
// returns nil when the output is a correctly sorted permutation of the
// fingerprinted input, or an *Error naming the first violated
// invariant. For record elements "sorted" means sorted by key;
// payloads are covered by the multiset invariant.
func Distributed[E element.Elem](data [][]E, want Checksum) *Error {
	// 1. local-sorted, per processor.
	for p, d := range data {
		for i := 1; i < len(d); i++ {
			if element.Less(d[i], d[i-1]) {
				return &Error{
					Invariant: "local-sorted", Proc: p,
					Detail: fmt.Sprintf("keys[%d]=%v > keys[%d]=%v", i-1, d[i-1], i, d[i]),
				}
			}
		}
	}
	// 2. boundary-order between consecutive non-empty processors.
	var last E
	lastProc, seen := -1, false
	for p, d := range data {
		if len(d) == 0 {
			continue
		}
		if seen && element.Less(d[0], last) {
			return &Error{
				Invariant: "boundary-order", Proc: p,
				Detail: fmt.Sprintf("processor %d ends at %v but processor %d starts at %v", lastProc, last, p, d[0]),
			}
		}
		last, lastProc, seen = d[len(d)-1], p, true
	}
	// 3. multiset preservation via the checksum witness.
	got := Checksum{}
	for _, d := range data {
		got = Fold(got, d)
	}
	if got != want {
		return &Error{
			Invariant: "multiset", Proc: -1,
			Detail: fmt.Sprintf("output (count=%d xor=%#x sum=%d auxxor=%#x auxsum=%d) is not a permutation of the input (count=%d xor=%#x sum=%d auxxor=%#x auxsum=%d)",
				got.Count, got.Xor, got.Sum, got.AuxXor, got.AuxSum, want.Count, want.Xor, want.Sum, want.AuxXor, want.AuxSum),
		}
	}
	return nil
}
