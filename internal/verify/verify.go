// Package verify implements the post-sort result verification behind
// parbitonic's Config.Verify — the discipline production sorters like
// AlphaSort ship with: never report a sort as done without checking
// the output. Three invariants are checked over the distributed
// output, cheapest first:
//
//  1. local-sorted — every processor's local keys are ascending;
//  2. boundary-order — the last key of processor q does not exceed the
//     first key of the next non-empty processor (with 1, this makes
//     the concatenated output globally sorted);
//  3. multiset — the output is a permutation of the input, witnessed
//     by an O(n) checksum (count, xor, and sum of all keys) taken of
//     the input before the sort ran.
//
// The checksum is a witness, not a proof — a corruption that preserves
// count, xor and sum simultaneously passes — but a single flipped bit,
// a lost message, or a duplicated key always changes at least one of
// the three.
package verify

import "fmt"

// Checksum is an order-independent fingerprint of a key multiset.
type Checksum struct {
	Count int    // number of keys
	Xor   uint32 // xor of all keys
	Sum   uint64 // sum of all keys (mod 2^64)
}

// Sum fingerprints keys.
func Sum(keys []uint32) Checksum {
	c := Checksum{Count: len(keys)}
	for _, k := range keys {
		c.Xor ^= k
		c.Sum += uint64(k)
	}
	return c
}

// Add folds another slice into the checksum (for distributed inputs).
func (c Checksum) Add(keys []uint32) Checksum {
	d := Sum(keys)
	return Checksum{Count: c.Count + d.Count, Xor: c.Xor ^ d.Xor, Sum: c.Sum + d.Sum}
}

// Error names the first violated invariant of a failed verification.
type Error struct {
	Invariant string // "local-sorted", "boundary-order" or "multiset"
	Proc      int    // processor at fault; -1 when not attributable
	Detail    string // what was observed, e.g. the offending pair of keys
}

// Error formats the failure naming the invariant and the processor.
func (e *Error) Error() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("verify: invariant %q violated at processor %d: %s", e.Invariant, e.Proc, e.Detail)
	}
	return fmt.Sprintf("verify: invariant %q violated: %s", e.Invariant, e.Detail)
}

// Distributed checks the three output invariants over the final
// per-processor data of a run against the input fingerprint. It
// returns nil when the output is a correctly sorted permutation of the
// fingerprinted input, or an *Error naming the first violated
// invariant.
func Distributed(data [][]uint32, want Checksum) *Error {
	// 1. local-sorted, per processor.
	for p, d := range data {
		for i := 1; i < len(d); i++ {
			if d[i-1] > d[i] {
				return &Error{
					Invariant: "local-sorted", Proc: p,
					Detail: fmt.Sprintf("keys[%d]=%d > keys[%d]=%d", i-1, d[i-1], i, d[i]),
				}
			}
		}
	}
	// 2. boundary-order between consecutive non-empty processors.
	last, lastProc, seen := uint32(0), -1, false
	for p, d := range data {
		if len(d) == 0 {
			continue
		}
		if seen && last > d[0] {
			return &Error{
				Invariant: "boundary-order", Proc: p,
				Detail: fmt.Sprintf("processor %d ends at %d but processor %d starts at %d", lastProc, last, p, d[0]),
			}
		}
		last, lastProc, seen = d[len(d)-1], p, true
	}
	// 3. multiset preservation via the checksum witness.
	got := Checksum{}
	for _, d := range data {
		got = got.Add(d)
	}
	if got != want {
		return &Error{
			Invariant: "multiset", Proc: -1,
			Detail: fmt.Sprintf("output (count=%d xor=%#x sum=%d) is not a permutation of the input (count=%d xor=%#x sum=%d)",
				got.Count, got.Xor, got.Sum, want.Count, want.Xor, want.Sum),
		}
	}
	return nil
}
