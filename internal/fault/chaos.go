package fault

import (
	"sync"
	"sync/atomic"

	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
)

// Chaos drives repeated fault injection through a long-lived engine.
// An Injector fires exactly once, which fits a throwaway engine but
// not a pooled one (internal/serve reuses engines across requests —
// one planned fault would poison only the first run and then go
// silent). Chaos detects run boundaries and arms a fresh Injector,
// with a deterministically derived plan, for every Every-th run.
//
// Run boundaries are counted at Start: every processor calls Start
// exactly once per run, runs on one engine are serial, so the
// (starts / P)-th run begins when starts%P == 0. The armed plan for
// run r is RandomPlan(Seed+r, P, Rounds) — replayable from the seed
// alone, like everything else in this package.
//
// Wire it like an Injector:
//
//	ch := fault.NewChaos(fault.ChaosConfig{P: 8, Every: 10, Seed: 42})
//	cfg.WrapCharger = ch.Wrap
type Chaos struct {
	cfg   ChaosConfig
	inner spmd.Charger
	cur   atomic.Pointer[Injector] // armed injector for the current run; nil = fault-free run

	mu       sync.Mutex
	starts   uint64 // Start calls seen; starts/P = runs begun
	injected uint64 // armed injectors that actually fired
}

// ChaosConfig configures a Chaos wrapper.
type ChaosConfig struct {
	// P is the engine's processor count (used to detect run
	// boundaries); required.
	P int
	// Every arms a fault on every Every-th run (run 0, Every, 2*Every,
	// ...); 0 means every run.
	Every int
	// Seed derives each run's plan (Seed + run index); replay a chaos
	// session by reusing it.
	Seed uint64
	// Rounds bounds the target remap round of derived plans; 0 means 4.
	// A plan targeting a round the run never reaches simply never
	// fires.
	Rounds int
	// Sink, when non-nil, receives an obs.EventFault when an armed
	// fault fires.
	Sink obs.Sink
}

// NewChaos creates a repeating fault driver; bind it to a backend with
// Wrap. One Chaos tracks ONE engine — its run-boundary counting
// assumes serial runs. When the same configuration builds several
// engines (an engine pool), use ChaosWrapper instead, which hands each
// engine its own Chaos.
func NewChaos(cfg ChaosConfig) *Chaos {
	if cfg.Every < 1 {
		cfg.Every = 1
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 4
	}
	return &Chaos{cfg: cfg}
}

// ChaosWrapper returns a WrapCharger seam that creates a fresh Chaos
// per engine it wraps (engine pools construct engines on demand and
// run them concurrently; a shared Chaos would miscount run
// boundaries). Each engine's seed is salted with its construction
// index, so a pool under chaos stays replayable from cfg.Seed. The
// returned Injected func sums fired faults across all engines.
func ChaosWrapper(cfg ChaosConfig) (wrap func(spmd.Charger) spmd.Charger, injected func() uint64) {
	var mu sync.Mutex
	var all []*Chaos
	var engines uint64
	wrap = func(inner spmd.Charger) spmd.Charger {
		mu.Lock()
		c := cfg
		c.Seed += engines << 32
		engines++
		ch := NewChaos(c)
		all = append(all, ch)
		mu.Unlock()
		return ch.Wrap(inner)
	}
	injected = func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		var n uint64
		for _, ch := range all {
			n += ch.Injected()
		}
		return n
	}
	return wrap, injected
}

// Wrap installs the chaos driver around a backend's charger.
func (c *Chaos) Wrap(inner spmd.Charger) spmd.Charger {
	c.inner = inner
	return c
}

// Injected returns how many armed faults have actually fired so far.
func (c *Chaos) Injected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.injected
	if cur := c.cur.Load(); cur != nil && cur.Fired() {
		n++
	}
	return n
}

// boundary runs under mu on every Start call; on the first Start of a
// run it retires the previous run's injector and arms (or clears) the
// current one.
func (c *Chaos) boundary() {
	c.mu.Lock()
	run := c.starts / uint64(c.cfg.P)
	if c.starts%uint64(c.cfg.P) == 0 {
		if prev := c.cur.Load(); prev != nil && prev.Fired() {
			c.injected++
		}
		if run%uint64(c.cfg.Every) == 0 {
			inj := NewInjector(RandomPlan(c.cfg.Seed+run, c.cfg.P, c.cfg.Rounds))
			if c.cfg.Sink != nil {
				inj.Observe(c.cfg.Sink)
			}
			inj.inner = c.inner
			c.cur.Store(inj)
		} else {
			c.cur.Store(nil)
		}
	}
	c.starts++
	c.mu.Unlock()
}

// ---- spmd.Charger, delegating through the armed injector ----

// Start advances the run-boundary counter, then delegates to the
// armed injector (or straight to the inner charger between chaos
// runs).
func (c *Chaos) Start(p *spmd.PC) {
	c.boundary()
	if cur := c.cur.Load(); cur != nil {
		cur.Start(p)
		return
	}
	c.inner.Start(p)
}

// Compute delegates to the armed injector or the inner charger.
func (c *Chaos) Compute(p *spmd.PC, t float64) {
	if cur := c.cur.Load(); cur != nil {
		cur.Compute(p, t)
		return
	}
	c.inner.Compute(p, t)
}

// Pack delegates to the armed injector or the inner charger.
func (c *Chaos) Pack(p *spmd.PC, n int) {
	if cur := c.cur.Load(); cur != nil {
		cur.Pack(p, n)
		return
	}
	c.inner.Pack(p, n)
}

// Unpack delegates to the armed injector or the inner charger.
func (c *Chaos) Unpack(p *spmd.PC, n int) {
	if cur := c.cur.Load(); cur != nil {
		cur.Unpack(p, n)
		return
	}
	c.inner.Unpack(p, n)
}

// Transfer delegates to the armed injector or the inner charger.
func (c *Chaos) Transfer(p *spmd.PC, volume, msgs int) {
	if cur := c.cur.Load(); cur != nil {
		cur.Transfer(p, volume, msgs)
		return
	}
	c.inner.Transfer(p, volume, msgs)
}

// Synced delegates to the armed injector or the inner charger.
func (c *Chaos) Synced(p *spmd.PC) {
	if cur := c.cur.Load(); cur != nil {
		cur.Synced(p)
		return
	}
	c.inner.Synced(p)
}
