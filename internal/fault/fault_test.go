package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parbitonic/internal/machine"
	"parbitonic/internal/native"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
)

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		a := RandomPlan(seed, 8, 5)
		b := RandomPlan(seed, 8, 5)
		if a != b {
			t.Fatalf("seed %d: plans differ: %v vs %v", seed, a, b)
		}
		if a.Proc < 0 || a.Proc >= 8 {
			t.Fatalf("seed %d: proc %d out of range", seed, a.Proc)
		}
		if a.Round < 0 || a.Round >= 5 {
			t.Fatalf("seed %d: round %d out of range", seed, a.Round)
		}
		if a.Kind != Crash && a.Kind != Delay && a.Kind != Corrupt {
			t.Fatalf("seed %d: unknown kind %v", seed, a.Kind)
		}
	}
	// The three kinds must all be reachable.
	seen := map[Kind]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		seen[RandomPlan(seed, 8, 5).Kind] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 seeds produced only kinds %v", seen)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Kind: Crash, Proc: 3, Round: 2}
	if got := p.String(); got != "crash@proc3/round2" {
		t.Fatalf("Plan.String() = %q", got)
	}
}

func TestCrashInjection(t *testing.T) {
	plan := Plan{Kind: Crash, Proc: 2, Round: 1}
	inj := NewInjector(plan)
	cfg := machine.DefaultConfig(4)
	cfg.WrapCharger = inj.Wrap
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(nil, func(p *spmd.Proc) {
		for i := 0; i < 8; i++ {
			p.Stats.Remaps++ // stand-in for a remap round
			p.Barrier()
		}
	})
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *spmd.PanicError", err)
	}
	if pe.Proc != plan.Proc {
		t.Fatalf("panic on proc %d, want %d", pe.Proc, plan.Proc)
	}
	crashed, ok := pe.Value.(*Crashed)
	if !ok || crashed.Plan != plan {
		t.Fatalf("panic value %v, want *Crashed with plan %v", pe.Value, plan)
	}
	if !inj.Fired() {
		t.Fatal("Fired() = false after the crash surfaced")
	}
}

func TestInjectorFiresOnce(t *testing.T) {
	inj := NewInjector(Plan{Kind: Corrupt, Proc: 0, Round: 0})
	cfg := machine.DefaultConfig(2)
	cfg.WrapCharger = inj.Wrap
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]uint32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	if _, err := m.Run(data, func(p *spmd.Proc) {
		for i := 0; i < 4; i++ {
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Exactly one key of proc 0 carries the flipped top bit.
	flips := 0
	for _, k := range m.Data()[0] {
		if k&(1<<31) != 0 {
			flips++
		}
	}
	if flips != 1 {
		t.Fatalf("%d keys corrupted, want exactly 1 (one-shot injector)", flips)
	}
	if !inj.Fired() {
		t.Fatal("Fired() = false after corruption")
	}
}

func TestDelayInjectionYieldsToDeadline(t *testing.T) {
	inj := NewInjector(Plan{Kind: Delay, Proc: 1, Round: 0, Delay: 2 * time.Second})
	e, err := native.New(native.Config{P: 2, WrapCharger: inj.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.RunContext(ctx, nil, func(p *spmd.Proc) {
		p.Barrier()
	})
	if !errors.Is(err, spmd.ErrDeadline) {
		t.Fatalf("err = %v, want wrapping spmd.ErrDeadline", err)
	}
	// The 2s stall must not pin RunContext past the deadline: the delay
	// loop polls Proc.Aborting and bails out within a slice or two.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("RunContext held %v by a delay fault, want prompt abort", elapsed)
	}
}

// TestInjectionEmitsObsEvent wires an observed injector and a metrics
// sink into the same run: the injection must show up exactly once in
// the telemetry stream, tagged with the target's plan, and the crash
// it causes must additionally surface as a panic event from the
// engine's abort path.
func TestInjectionEmitsObsEvent(t *testing.T) {
	plan := Plan{Kind: Crash, Proc: 1, Round: 0}
	mx := obs.NewMetrics()
	ct := obs.NewChromeTrace()
	sink := obs.Multi(mx, ct)
	inj := NewInjector(plan).Observe(sink)
	cfg := machine.DefaultConfig(2)
	cfg.WrapCharger = inj.Wrap
	cfg.Sink = sink
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(nil, func(p *spmd.Proc) { p.Barrier() })
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *spmd.PanicError", err)
	}
	if got := mx.EventCount(obs.EventFault); got != 1 {
		t.Fatalf("fault events = %v, want 1", got)
	}
	if got := mx.EventCount(obs.EventPanic); got != 1 {
		t.Fatalf("panic events = %v, want 1", got)
	}
	found := false
	for _, e := range ct.Events() {
		if e.Kind == obs.EventFault {
			found = true
			if e.Proc != plan.Proc || !strings.Contains(e.Detail, plan.String()) {
				t.Fatalf("fault event %+v does not carry the plan %v", e, plan)
			}
		}
	}
	if !found {
		t.Fatal("Chrome trace sink saw no fault event")
	}
}

func TestPlanBeyondRunNeverFires(t *testing.T) {
	inj := NewInjector(Plan{Kind: Crash, Proc: 0, Round: 100})
	cfg := machine.DefaultConfig(2)
	cfg.WrapCharger = inj.Wrap
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil, func(p *spmd.Proc) { p.Barrier() }); err != nil {
		t.Fatalf("run with an unreachable plan failed: %v", err)
	}
	if inj.Fired() {
		t.Fatal("plan at round 100 fired in a 0-remap run")
	}
}
