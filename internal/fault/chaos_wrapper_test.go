package fault

import (
	"sync"
	"testing"

	"parbitonic/internal/machine"
	"parbitonic/internal/spmd"
)

// wrapBody is a 4-remap-round stand-in workload with local data for
// Corrupt plans to chew on.
func wrapBody(p *spmd.Proc) {
	for i := 0; i < 4; i++ {
		p.Stats.Remaps++
		p.Barrier()
	}
}

func wrapData() [][]uint32 {
	return [][]uint32{{1, 2, 3, 4}, {5, 6, 7, 8}}
}

// TestChaosRearmsAcrossRuns: unlike the one-shot Injector, a Chaos
// wrapper must fire on EVERY armed run of a long-lived engine, and the
// engine must stay usable across the injected failures.
func TestChaosRearmsAcrossRuns(t *testing.T) {
	ch := NewChaos(ChaosConfig{P: 2, Every: 2, Seed: 7, Rounds: 4})
	cfg := machine.DefaultConfig(2)
	cfg.WrapCharger = ch.Wrap
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	for i := 0; i < runs; i++ {
		// Armed runs may fail (Crash) or not (Delay, Corrupt); either way
		// the engine must accept the next run.
		_, _ = m.Run(wrapData(), wrapBody)
	}
	// Every=2 arms runs 0,2,4,6; each derived plan targets a round < 4
	// on a processor with data, so each armed injector fires.
	if got := ch.Injected(); got != runs/2 {
		t.Fatalf("Injected() = %d after %d runs with Every=2, want %d", got, runs, runs/2)
	}
}

// TestChaosReplayable: the same seed must drive the same fault
// sequence.
func TestChaosReplayable(t *testing.T) {
	trial := func() []error {
		ch := NewChaos(ChaosConfig{P: 2, Every: 1, Seed: 99, Rounds: 4})
		cfg := machine.DefaultConfig(2)
		cfg.WrapCharger = ch.Wrap
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var errs []error
		for i := 0; i < 6; i++ {
			_, err := m.Run(wrapData(), wrapBody)
			errs = append(errs, err)
		}
		return errs
	}
	a, b := trial(), trial()
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("run %d: outcomes diverge under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestChaosWrapperPerEngine: the pool-facing wrapper must hand each
// wrapped engine its own Chaos (independent run counting) and sum
// fired faults across them.
func TestChaosWrapperPerEngine(t *testing.T) {
	wrap, injected := ChaosWrapper(ChaosConfig{P: 2, Every: 1, Seed: 3, Rounds: 4})
	mk := func() *machine.Machine {
		cfg := machine.DefaultConfig(2)
		cfg.WrapCharger = wrap
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := mk(), mk()
	for i := 0; i < 3; i++ {
		_, _ = m1.Run(wrapData(), wrapBody)
		_, _ = m2.Run(wrapData(), wrapBody)
	}
	if got := injected(); got != 6 {
		t.Fatalf("injected() = %d across two engines × 3 armed runs, want 6", got)
	}
}

// TestChaosWrapperRace is the rearm race audit: it hammers the
// pool-facing wrapper the way a serving pool does — engines
// constructed through Wrap and run concurrently, each Chaos rearming
// at its run boundaries, while another goroutine polls the injected()
// sum the whole time (a metrics scrape). Any unsynchronized access to
// the starts/injected counters or the armed-injector pointer shows up
// under -race.
func TestChaosWrapperRace(t *testing.T) {
	wrap, injected := ChaosWrapper(ChaosConfig{P: 2, Every: 2, Seed: 11, Rounds: 4})
	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = injected()
			}
		}
	}()
	var engines sync.WaitGroup
	for g := 0; g < 4; g++ {
		engines.Add(1)
		go func() {
			defer engines.Done()
			cfg := machine.DefaultConfig(2)
			cfg.WrapCharger = wrap
			m, err := machine.New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 8; i++ {
				_, _ = m.Run(wrapData(), wrapBody)
			}
		}()
	}
	engines.Wait()
	close(stop)
	scrape.Wait()
	// 4 engines × 8 runs with Every=2 arm 4 runs each; every derived
	// plan targets a reachable round on a processor with data.
	if got := injected(); got != 16 {
		t.Errorf("injected() = %d, want 16", got)
	}
}
