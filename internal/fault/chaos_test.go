package fault

// The chaos suite: every algorithm on every backend, with crashes at
// every remap round, seeded random faults, and a 2-second watchdog
// proving the runtime never deadlocks — every injected fault surfaces
// as a bounded, typed error (or, for corruption, is caught by the
// result verification). Run with -race; CHAOS_SEEDS widens the random
// sweep (the nightly CI job uses 32 seeds).

import (
	"context"
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"parbitonic/internal/core"
	"parbitonic/internal/machine"
	"parbitonic/internal/native"
	"parbitonic/internal/psort"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

const (
	chaosP = 4  // processors
	chaosN = 64 // keys per processor
	// watchdog is the deadlock bound: every aborted run must return
	// within this, however the fault landed.
	watchdog = 2 * time.Second
)

type chaosAlgo struct {
	name string
	run  func(ctx context.Context, m spmd.Backend, data [][]uint32) (spmd.Result, error)
}

func coreRunner(a core.Algorithm) func(context.Context, spmd.Backend, [][]uint32) (spmd.Result, error) {
	return func(ctx context.Context, m spmd.Backend, data [][]uint32) (spmd.Result, error) {
		return core.SortContext(ctx, m, data, core.Options{Algorithm: a})
	}
}

var chaosAlgos = []chaosAlgo{
	{"smart", coreRunner(core.Smart)},
	{"cyclic-blocked", coreRunner(core.CyclicBlocked)},
	{"blocked-merge", coreRunner(core.BlockedMerge)},
	{"sample", func(ctx context.Context, m spmd.Backend, data [][]uint32) (spmd.Result, error) {
		res, err := psort.SampleSortContext(ctx, m, data)
		return res.Result, err
	}},
	{"radix", psort.RadixSortContext[uint32]},
}

var chaosBackends = []string{"simulated", "native"}

func chaosBackend(t testing.TB, kind string, wrap func(spmd.Charger) spmd.Charger) spmd.Backend {
	t.Helper()
	var m spmd.Backend
	var err error
	switch kind {
	case "simulated":
		cfg := machine.DefaultConfig(chaosP)
		cfg.WrapCharger = wrap
		m, err = machine.New(cfg)
	case "native":
		m, err = native.New(native.Config{P: chaosP, WrapCharger: wrap})
	default:
		t.Fatalf("unknown backend %q", kind)
	}
	if err != nil {
		t.Fatalf("%s backend: %v", kind, err)
	}
	return m
}

// chaosData returns fresh per-processor input (the runners take
// ownership) plus its multiset fingerprint.
func chaosData(seed uint64) ([][]uint32, verify.Checksum) {
	r := rng{seed}
	data := make([][]uint32, chaosP)
	var sum verify.Checksum
	for i := range data {
		data[i] = make([]uint32, chaosN)
		for j := range data[i] {
			data[i][j] = uint32(r.next()) &^ (1 << 31) // headroom for the corrupt bit-flip
		}
		sum = sum.Add(data[i])
	}
	return data, sum
}

// watchdogRun runs f with the deadlock watchdog.
func watchdogRun(t *testing.T, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(watchdog):
		t.Fatalf("run still blocked after %v — runtime deadlocked on an injected fault", watchdog)
		return nil
	}
}

// remapRounds runs the algorithm cleanly on the simulator and returns
// each processor's remap count — the space of meaningful fault rounds.
func remapRounds(t *testing.T, a chaosAlgo) []int {
	t.Helper()
	m := chaosBackend(t, "simulated", nil)
	data, sum := chaosData(1)
	res, err := a.run(context.Background(), m, data)
	if err != nil {
		t.Fatalf("clean %s run failed: %v", a.name, err)
	}
	if verr := verify.Distributed(m.Data(), sum); verr != nil {
		t.Fatalf("clean %s run produced bad output: %v", a.name, verr)
	}
	rounds := make([]int, chaosP)
	for i, st := range res.PerProc {
		rounds[i] = st.Remaps
	}
	return rounds
}

// TestCrashMatrix is the deadlock-freedom matrix: every algorithm on
// every backend, with the first and last processors crashed at each of
// their remap rounds (0 = before the first remap, R = at the final
// boundary). Every run must return a *spmd.PanicError carrying the
// injected *Crashed value within the watchdog bound.
func TestCrashMatrix(t *testing.T) {
	for _, a := range chaosAlgos {
		rounds := remapRounds(t, a)
		for _, backend := range chaosBackends {
			for _, proc := range []int{0, chaosP - 1} {
				for round := 0; round <= rounds[proc]; round++ {
					plan := Plan{Kind: Crash, Proc: proc, Round: round}
					t.Run(a.name+"/"+backend+"/"+plan.String(), func(t *testing.T) {
						inj := NewInjector(plan)
						m := chaosBackend(t, backend, inj.Wrap)
						data, _ := chaosData(2)
						err := watchdogRun(t, func() error {
							_, err := a.run(context.Background(), m, data)
							return err
						})
						var pe *spmd.PanicError
						if !errors.As(err, &pe) {
							t.Fatalf("err = %v, want *spmd.PanicError", err)
						}
						if pe.Proc != plan.Proc {
							t.Fatalf("panic on proc %d, want %d", pe.Proc, plan.Proc)
						}
						if c, ok := pe.Value.(*Crashed); !ok || c.Plan != plan {
							t.Fatalf("panic value %v, want injected *Crashed %v", pe.Value, plan)
						}
					})
				}
			}
		}
	}
}

// TestChaosSeeds sweeps seeded random plans over every algorithm ×
// backend: whatever the injector does, the run must end within the
// watchdog bound, and the outcome must be accounted for — a typed
// error, a deadline, or a verification catch. CHAOS_SEEDS sets the
// sweep width (default 4; the nightly CI job runs 32).
func TestChaosSeeds(t *testing.T) {
	seeds := 4
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", s)
		}
		seeds = v
	}
	for _, a := range chaosAlgos {
		rounds := remapRounds(t, a)
		minRounds := rounds[0]
		for _, r := range rounds {
			if r < minRounds {
				minRounds = r
			}
		}
		for _, backend := range chaosBackends {
			for seed := 0; seed < seeds; seed++ {
				plan := RandomPlan(uint64(seed)*1000003+7, chaosP, minRounds+1)
				if plan.Kind == Delay {
					plan.Delay = time.Second // long enough to trip the deadline below
				}
				t.Run(a.name+"/"+backend+"/"+plan.String(), func(t *testing.T) {
					inj := NewInjector(plan)
					m := chaosBackend(t, backend, inj.Wrap)
					data, sum := chaosData(uint64(seed) + 3)
					ctx := context.Background()
					if plan.Kind == Delay {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, 50*time.Millisecond)
						defer cancel()
					}
					err := watchdogRun(t, func() error {
						_, err := a.run(ctx, m, data)
						return err
					})
					switch {
					case err == nil:
						verr := verify.Distributed(m.Data(), sum)
						if plan.Kind == Corrupt && inj.Fired() {
							if verr == nil {
								t.Fatal("corruption fired but verification passed")
							}
						} else if verr != nil {
							t.Fatalf("no fault surfaced yet output is bad: %v", verr)
						}
					case errors.Is(err, spmd.ErrDeadline), errors.Is(err, spmd.ErrCanceled):
						if plan.Kind != Delay {
							t.Fatalf("unexpected context error for %v: %v", plan, err)
						}
					default:
						var pe *spmd.PanicError
						if !errors.As(err, &pe) {
							t.Fatalf("untyped failure for %v: %v", plan, err)
						}
						if _, ok := pe.Value.(*Crashed); !ok {
							t.Fatalf("genuine panic (not the injected crash) for %v: %v", plan, err)
						}
					}
				})
			}
		}
	}
}
