// Package fault is the deterministic fault injector for the SPMD
// runtime — the chaos half of the fail-safe story. It wraps a backend's
// spmd.Charger (the one seam every processor crosses at every phase
// boundary) and fires one planned fault when its target processor
// reaches its target remap round:
//
//   - Crash panics on the target processor, exercising the engine's
//     panic containment (*spmd.PanicError, poisoned barrier, no
//     deadlock);
//   - Delay stalls the target processor, exercising cancellation and
//     deadline paths (the stall polls Proc.Aborting so an aborted run
//     is not held hostage by the sleeper);
//   - Corrupt flips a bit in one of the target's local keys —
//     modelling an undetected corruption in a delivered message
//     payload — which the verification invariants (internal/verify,
//     parbitonic Config.Verify) must catch.
//
// Plans are either pinned explicitly or derived deterministically from
// a seed (RandomPlan), so every chaos-test failure is replayable.
//
// Wire an injector into a backend through the Config.WrapCharger seam:
//
//	inj := fault.NewInjector(fault.Plan{Kind: fault.Crash, Proc: 2, Round: 1})
//	cfg.WrapCharger = inj.Wrap
package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
)

// Kind selects what the injected fault does.
type Kind int

const (
	// Crash panics on the target processor.
	Crash Kind = iota
	// Delay stalls the target processor for Plan.Delay.
	Delay
	// Corrupt flips a bit in one of the target processor's local keys.
	Corrupt
)

// String returns the lowercase fault name ("crash", "delay",
// "corrupt").
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Plan pins one fault: Kind fires on processor Proc at the first phase
// boundary after it has completed Round remaps (Round 0 = before its
// first remap).
type Plan struct {
	Kind  Kind // what the fault does
	Proc  int  // target processor
	Round int  // remaps the target must complete before the fault fires
	// Delay is the stall duration for Delay faults; 0 means 10ms.
	Delay time.Duration
}

// String formats the plan as "kind@procN/roundR".
func (p Plan) String() string {
	return fmt.Sprintf("%v@proc%d/round%d", p.Kind, p.Proc, p.Round)
}

// Crashed is the panic value of an injected Crash fault, so chaos
// tests can tell an injected failure apart from a genuine bug: the
// *spmd.PanicError's Value must be exactly this.
type Crashed struct {
	Plan Plan // the plan whose Crash fired
}

// Error formats the crash as "fault: injected kind@procN/roundR".
func (c *Crashed) Error() string { return fmt.Sprintf("fault: injected %v", c.Plan) }

// RandomPlan derives a deterministic plan from seed for a machine of p
// processors whose run performs `rounds` remaps per processor
// (splitmix64 over the seed; the same seed always yields the same
// plan).
func RandomPlan(seed uint64, p, rounds int) Plan {
	r := rng{seed}
	if rounds < 1 {
		rounds = 1
	}
	return Plan{
		Kind:  Kind(r.next() % 3),
		Proc:  int(r.next() % uint64(p)),
		Round: int(r.next() % uint64(rounds)),
	}
}

// rng is splitmix64 — tiny, seedable, good enough to scatter plans.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Injector wraps a Charger and fires its plan exactly once per
// injector. Create a fresh Injector per run (Fired state is not
// reset by the engine).
type Injector struct {
	plan  Plan
	inner spmd.Charger
	fired atomic.Bool
	sink  obs.Sink
}

// NewInjector creates an injector for one planned fault. Bind it to a
// backend with Wrap (machine.Config.WrapCharger /
// native.Config.WrapCharger).
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan}
}

// Observe routes a telemetry event to sink when the fault fires,
// tagging the injection with the target processor, round, and clock so
// it shows up alongside the run's spans. Returns the injector for
// chaining. Sinks must tolerate concurrent Emit calls (all obs sinks
// do).
func (f *Injector) Observe(sink obs.Sink) *Injector {
	f.sink = sink
	return f
}

// Wrap installs the injector around a backend's charger.
func (f *Injector) Wrap(inner spmd.Charger) spmd.Charger {
	f.inner = inner
	return f
}

// Fired reports whether the planned fault has been injected. A plan
// whose round exceeds the run's actual remap count never fires.
func (f *Injector) Fired() bool { return f.fired.Load() }

// maybeFire injects the planned fault if p is the target processor at
// the target round. Called on every phase boundary of every processor;
// non-target processors pay two compares.
func (f *Injector) maybeFire(p *spmd.PC) {
	if p.ID != f.plan.Proc || p.Stats.Remaps < f.plan.Round {
		return
	}
	if f.plan.Kind == Corrupt && p.DataLen() == 0 {
		return // nothing to corrupt yet; retry at a later boundary
	}
	if !f.fired.CompareAndSwap(false, true) {
		return
	}
	if f.sink != nil {
		f.sink.Emit(obs.Event{
			Kind:   obs.EventFault,
			Proc:   p.ID,
			Round:  p.Stats.Remaps,
			Clock:  p.Clock,
			Detail: f.plan.String(),
			Wall:   time.Now().UnixNano(),
		})
	}
	switch f.plan.Kind {
	case Crash:
		panic(&Crashed{Plan: f.plan})
	case Delay:
		d := f.plan.Delay
		if d == 0 {
			d = 10 * time.Millisecond
		}
		// Stall in slices, yielding as soon as the run aborts, so a
		// delayed processor cannot pin RunContext past its deadline by
		// more than one slice.
		const slice = time.Millisecond
		for waited := time.Duration(0); waited < d && !p.Aborting(); waited += slice {
			time.Sleep(slice)
		}
	case Corrupt:
		r := rng{uint64(f.plan.Round)<<32 | uint64(f.plan.Proc)}
		i := int(r.next() % uint64(p.DataLen()))
		p.CorruptKey(i) // flip the top key bit: breaks multiset, often order too
	}
}

// ---- spmd.Charger, delegating after the injection check ----

// Start checks for injection, then delegates to the inner charger.
func (f *Injector) Start(p *spmd.PC) { f.maybeFire(p); f.inner.Start(p) }

// Compute checks for injection, then delegates to the inner charger.
func (f *Injector) Compute(p *spmd.PC, t float64) { f.maybeFire(p); f.inner.Compute(p, t) }

// Pack checks for injection, then delegates to the inner charger.
func (f *Injector) Pack(p *spmd.PC, n int) { f.maybeFire(p); f.inner.Pack(p, n) }

// Unpack checks for injection, then delegates to the inner charger.
func (f *Injector) Unpack(p *spmd.PC, n int) { f.maybeFire(p); f.inner.Unpack(p, n) }

// Transfer checks for injection, then delegates to the inner charger.
func (f *Injector) Transfer(p *spmd.PC, volume, msgs int) {
	f.maybeFire(p)
	f.inner.Transfer(p, volume, msgs)
}

// Synced checks for injection, then delegates to the inner charger.
func (f *Injector) Synced(p *spmd.PC) { f.maybeFire(p); f.inner.Synced(p) }
