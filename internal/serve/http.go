package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parbitonic/element"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// MaxBodyBytes caps a POST /sort body (64 MiB ≈ 16M binary keys);
// larger requests get 413.
const MaxBodyBytes = 64 << 20

// sortRequest / sortResponse are the JSON wire shapes of POST /sort.
type sortRequest struct {
	Keys []uint32 `json:"keys"`
}

type sortResponse struct {
	Keys []uint32 `json:"keys"`
	// Degraded is true when the sequential fallback served the request
	// (breaker open or retries exhausted); the result is correct, the
	// latency is not representative. Mirrored by the X-Sort-Degraded
	// response header so binary clients see it too.
	Degraded bool `json:"degraded,omitempty"`
	// RequestID echoes the request's ID (adopted from X-Request-ID /
	// traceparent, or minted); also on the X-Request-ID response header.
	RequestID string `json:"request_id,omitempty"`
}

// degradedHeader marks responses served by the sequential fallback.
const degradedHeader = "X-Sort-Degraded"

// requestIDHeader carries the request ID in and out: a client-supplied
// value is adopted (sanitized), otherwise one is minted, and EVERY
// response — success, 4xx, 5xx, frame error — echoes it back.
const requestIDHeader = "X-Request-ID"

// errorResponse is the JSON error shape of every non-2xx response.
// Code is set for frame-level rejections (FrameError) so binary
// clients can distinguish a width mismatch from a bad version.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// RequestID echoes the failing request's ID for log correlation.
	RequestID string `json:"request_id,omitempty"`
}

// requestID derives the request's ID: a sane X-Request-ID header wins,
// then the W3C traceparent's trace-id, then a freshly minted ID.
func requestID(r *http.Request) string {
	if id := obs.CleanRequestID(r.Header.Get(requestIDHeader)); id != "" {
		return id
	}
	if id := obs.ParseTraceparent(r.Header.Get("traceparent")); id != "" {
		return id
	}
	return obs.NewRequestID()
}

// front is what the /sort handler routes through: a u32 server for
// JSON and legacy binary bodies, plus the per-element-type servers
// reachable by versioned frames. NewHandler fronts a single u32
// server; NewGatewayHandler fronts a full Gateway.
type front struct {
	u32     *Server
	servers map[element.Type]elemServer
	order   []element.Type
	stats   func() map[string]any
}

// NewHandler builds the service's HTTP front end for a single uint32
// server:
//
//	POST /sort        sort keys; application/json {"keys":[...]} or
//	                  application/octet-stream — either a legacy
//	                  little-endian uint32 stream or a versioned
//	                  binary frame (see the frame format in
//	                  gateway.go; only element type u32 is enabled
//	                  here, others get 501); optional ?timeout_ms=N
//	                  per-request deadline
//	GET  /healthz     readiness: 200 "ok", or 503 with JSON reasons
//	                  under sustained SLO error-budget burn
//	GET  /stats       JSON snapshot of server + pool counters
//	GET  /metrics     Prometheus text: serve metrics (including stage
//	                  histograms, tail quantiles, SLO burn) plus
//	                  runtime health and, when runMetrics is non-nil,
//	                  the engine-run metrics
//	GET  /debug/sortz live ops page: recent slow requests with stage
//	                  breakdowns, breaker/pool state, active batches;
//	                  HTML by default, ?format=json for machines
//	GET  /debug/vars  expvar JSON (engine-run metrics; requires
//	                  runMetrics)
//
// Every /sort response carries X-Request-ID: the client's own (or its
// traceparent trace-id), else a minted one.
//
// Status mapping for /sort: 200 ok, 400 malformed input (typed code
// for bad frames), 413 oversize body, 429 ErrOverloaded (with
// Retry-After), 499 client-canceled, 501 element type not enabled,
// 503 ErrClosed, 504 deadline exceeded, 500 anything else.
func NewHandler(s *Server, runMetrics *obs.Metrics) http.Handler {
	f := &front{
		u32:     s,
		servers: map[element.Type]elemServer{element.TU32: s},
		order:   []element.Type{element.TU32},
		stats: func() map[string]any {
			st := statsFor(s.Metrics(), s.poolStats())
			st["queue_depth"] = s.Metrics().queueDepth()
			return st
		},
	}
	return newMux(f, runMetrics)
}

// NewGatewayHandler is NewHandler for a Gateway: versioned binary
// frames of every element type are served by their typed server, and
// /stats and /metrics aggregate across all of them (series are told
// apart by the elem label / stats key).
func NewGatewayHandler(g *Gateway, runMetrics *obs.Metrics) http.Handler {
	f := &front{
		u32:     g.u32,
		servers: g.servers,
		order:   g.order,
		stats: func() map[string]any {
			elems := make(map[string]any, len(g.order))
			for _, t := range g.order {
				s := g.servers[t]
				st := statsFor(s.Metrics(), s.poolStats())
				st["queue_depth"] = s.Metrics().queueDepth()
				elems[t.String()] = st
			}
			return map[string]any{"elems": elems}
		},
	}
	return newMux(f, runMetrics)
}

func newMux(f *front, runMetrics *obs.Metrics) http.Handler {
	rh := obs.NewRuntimeHealth()
	mux := http.NewServeMux()
	mux.HandleFunc("/sort", func(w http.ResponseWriter, r *http.Request) { handleSort(f, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Readiness degrades under sustained SLO error-budget burn: a
		// server that will miss its objective should stop advertising
		// itself before clients notice the tail.
		var unready []string
		for _, t := range f.order {
			m := f.servers[t].Metrics()
			if ok, burn := m.Stages().SLOReady(); !ok {
				unready = append(unready, fmt.Sprintf("%s: slo burn rate %.2f", m.Elem(), burn))
			}
		}
		if len(unready) > 0 {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"status": "unready", "reasons": unready})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(f.stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for i, t := range f.order {
			_ = f.servers[t].Metrics().writeProm(w, i == 0)
		}
		if runMetrics != nil {
			_ = runMetrics.WriteProm(w)
		}
		_ = rh.WriteProm(w)
	})
	mux.HandleFunc("/debug/sortz", func(w http.ResponseWriter, r *http.Request) { handleSortz(f, rh, w, r) })
	if runMetrics != nil {
		vars := runMetrics.ExpvarFunc()
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			fmt.Fprintf(w, "{\n%q: %s\n}\n", "parbitonic", vars.String())
		})
	}
	return mux
}

// statsFor renders one server's /stats section.
func statsFor(m *Metrics, ps PoolStats) map[string]any {
	batches, batched := m.BatchCount()
	return map[string]any{
		"requests": map[string]float64{
			"ok":           m.RequestCount("ok"),
			"overloaded":   m.RequestCount("overloaded"),
			"canceled":     m.RequestCount("canceled"),
			"deadline":     m.RequestCount("deadline"),
			"breaker-open": m.RequestCount("breaker-open"),
			"error":        m.RequestCount("error"),
		},
		"batches":          batches,
		"batched_requests": batched,
		"retries":          m.RetryCount(),
		"degraded":         m.DegradedCount(),
		"pool":             ps,
	}
}

func handleSort(f *front, w http.ResponseWriter, r *http.Request) {
	// Establish the request's identity first, so every response path —
	// including refusals — echoes the ID.
	id := requestID(r)
	w.Header().Set(requestIDHeader, id)
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)

	ctx := obs.WithRequestID(r.Context(), id)
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		ms, perr := strconv.Atoi(tm)
		if perr != nil || ms <= 0 {
			httpError(w, http.StatusBadRequest, "timeout_ms must be a positive integer")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	if r.Header.Get("Content-Type") == "application/octet-stream" {
		handleBinarySort(f, ctx, w, body)
		return
	}

	var req sortRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		if bodyTooLarge(w, err) {
			return
		}
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	sorted, degraded, err := f.u32.SortDegradable(ctx, req.Keys)
	if err != nil {
		sortError(w, err, f.u32.retryAfterSeconds(err))
		return
	}
	if degraded {
		w.Header().Set(degradedHeader, "1")
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(sortResponse{Keys: sorted, Degraded: degraded, RequestID: id})
}

// handleBinarySort serves an octet-stream body: a versioned frame is
// routed to the server of its element type and answered with a
// matching frame; a legacy body is a bare u32 stream answered in kind.
func handleBinarySort(f *front, ctx context.Context, w http.ResponseWriter, body io.Reader) {
	raw, err := io.ReadAll(body)
	if err != nil {
		if bodyTooLarge(w, err) {
			return
		}
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	t, payload, versioned, err := decodeFrame(raw)
	if err != nil {
		sortError(w, err, 0)
		return
	}
	if !versioned {
		keys, err := decodeLegacyKeys(payload)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		sorted, degraded, err := f.u32.SortDegradable(ctx, keys)
		if err != nil {
			sortError(w, err, f.u32.retryAfterSeconds(err))
			return
		}
		if degraded {
			w.Header().Set(degradedHeader, "1")
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		writeBinaryKeys(w, sorted)
		return
	}
	s, ok := f.servers[t]
	if !ok {
		httpError(w, http.StatusNotImplemented, fmt.Sprintf("element type %s is not enabled on this server", t))
		return
	}
	out, degraded, err := s.sortPayload(ctx, payload)
	if err != nil {
		sortError(w, err, s.retryAfterSeconds(err))
		return
	}
	if degraded {
		w.Header().Set(degradedHeader, "1")
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frameHeader(t))
	w.Write(out)
}

// bodyTooLarge answers 413 when err is the MaxBytesReader limit.
func bodyTooLarge(w http.ResponseWriter, err error) bool {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", MaxBodyBytes))
		return true
	}
	return false
}

// sortError answers a failed sort, mapping the error to its status and
// (for frame rejections) machine-readable code. retryAfter, when
// positive, is the server-derived backoff hint (seconds) attached to
// the refusals worth retrying: overload (429) and an open breaker
// (503) — not shutdown, whose 503 means "gone", not "later".
func sortError(w http.ResponseWriter, err error, retryAfter int) {
	var ferr *FrameError
	if errors.As(err, &ferr) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(errorResponse{Error: ferr.Error(), Code: ferr.Code, RequestID: w.Header().Get(requestIDHeader)})
		return
	}
	status, msg := sortStatus(err)
	if retryAfter > 0 && (errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBreakerOpen)) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	httpError(w, status, msg)
}

// sortStatus maps a Sort error onto an HTTP status: overload, an open
// breaker and shutdown are the service saying "not now" (429/503),
// deadline and cancellation are the request's own context (504/499),
// anything else — contained panics, verification failures, NaN
// rejections — is a 500.
func sortStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, err.Error()
	case errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, spmd.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, err.Error()
	case errors.Is(err, spmd.ErrCanceled), errors.Is(err, context.Canceled):
		return 499, err.Error() // client closed request (nginx convention)
	}
	var verr *verify.Error
	if errors.As(err, &verr) {
		return http.StatusInternalServerError, "result verification failed: " + err.Error()
	}
	return http.StatusInternalServerError, err.Error()
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, RequestID: w.Header().Get(requestIDHeader)})
}

// decodeLegacyKeys decodes an unversioned little-endian uint32 stream.
func decodeLegacyKeys(raw []byte) ([]uint32, error) {
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("binary body length %d is not a multiple of 4", len(raw))
	}
	keys := make([]uint32, len(raw)/4)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return keys, nil
}

// readBinaryKeys decodes a little-endian uint32 stream from r.
func readBinaryKeys(r io.Reader) ([]uint32, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeLegacyKeys(raw)
}

// writeBinaryKeys encodes keys as a little-endian uint32 stream.
func writeBinaryKeys(w io.Writer, keys []uint32) {
	buf := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(buf[4*i:], k)
	}
	w.Write(buf)
}
