package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// MaxBodyBytes caps a POST /sort body (64 MiB ≈ 16M binary keys);
// larger requests get 413.
const MaxBodyBytes = 64 << 20

// sortRequest / sortResponse are the JSON wire shapes of POST /sort.
type sortRequest struct {
	Keys []uint32 `json:"keys"`
}

type sortResponse struct {
	Keys []uint32 `json:"keys"`
}

// errorResponse is the JSON error shape of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler builds the service's HTTP front end:
//
//	POST /sort        sort keys; application/json {"keys":[...]} or
//	                  application/octet-stream (little-endian uint32s),
//	                  response in the request's content type; optional
//	                  ?timeout_ms=N per-request deadline
//	GET  /healthz     liveness: 200 "ok"
//	GET  /stats       JSON snapshot of server + pool counters
//	GET  /metrics     Prometheus text: serve metrics plus, when
//	                  runMetrics is non-nil, the engine-run metrics
//	GET  /debug/vars  expvar JSON (engine-run metrics; requires
//	                  runMetrics)
//
// Status mapping for /sort: 200 ok, 400 malformed input, 413 oversize
// body, 429 ErrOverloaded (with Retry-After), 499 client-canceled,
// 503 ErrClosed, 504 deadline exceeded, 500 anything else.
func NewHandler(s *Server, runMetrics *obs.Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sort", func(w http.ResponseWriter, r *http.Request) { handleSort(s, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		m := s.Metrics()
		batches, batched := m.BatchCount()
		ps := s.Pool().Stats()
		json.NewEncoder(w).Encode(map[string]any{
			"requests": map[string]float64{
				"ok":         m.RequestCount("ok"),
				"overloaded": m.RequestCount("overloaded"),
				"canceled":   m.RequestCount("canceled"),
				"deadline":   m.RequestCount("deadline"),
				"error":      m.RequestCount("error"),
			},
			"batches":          batches,
			"batched_requests": batched,
			"queue_depth":      m.queueDepth(),
			"pool":             ps,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Metrics().WriteProm(w)
		if runMetrics != nil {
			_ = runMetrics.WriteProm(w)
		}
	})
	if runMetrics != nil {
		vars := runMetrics.ExpvarFunc()
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			fmt.Fprintf(w, "{\n%q: %s\n}\n", "parbitonic", vars.String())
		})
	}
	return mux
}

func handleSort(s *Server, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	binaryIn := r.Header.Get("Content-Type") == "application/octet-stream"
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	var keys []uint32
	var err error
	if binaryIn {
		keys, err = readBinaryKeys(body)
	} else {
		var req sortRequest
		if derr := json.NewDecoder(body).Decode(&req); derr != nil {
			err = derr
		}
		keys = req.Keys
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", MaxBodyBytes))
			return
		}
		httpError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}

	ctx := r.Context()
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		ms, perr := strconv.Atoi(tm)
		if perr != nil || ms <= 0 {
			httpError(w, http.StatusBadRequest, "timeout_ms must be a positive integer")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	sorted, err := s.Sort(ctx, keys)
	if err != nil {
		status, msg := sortStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, msg)
		return
	}
	if binaryIn {
		w.Header().Set("Content-Type", "application/octet-stream")
		writeBinaryKeys(w, sorted)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(sortResponse{Keys: sorted})
}

// sortStatus maps a Server.Sort error onto an HTTP status: overload
// and shutdown are the service saying "not now" (429/503), deadline
// and cancellation are the request's own context (504/499), anything
// else — contained panics, verification failures — is a 500.
func sortStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, err.Error()
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, spmd.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, err.Error()
	case errors.Is(err, spmd.ErrCanceled), errors.Is(err, context.Canceled):
		return 499, err.Error() // client closed request (nginx convention)
	}
	var verr *verify.Error
	if errors.As(err, &verr) {
		return http.StatusInternalServerError, "result verification failed: " + err.Error()
	}
	return http.StatusInternalServerError, err.Error()
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// readBinaryKeys decodes a little-endian uint32 stream.
func readBinaryKeys(r io.Reader) ([]uint32, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("binary body length %d is not a multiple of 4", len(raw))
	}
	keys := make([]uint32, len(raw)/4)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return keys, nil
}

// writeBinaryKeys encodes keys as a little-endian uint32 stream.
func writeBinaryKeys(w io.Writer, keys []uint32) {
	buf := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(buf[4*i:], k)
	}
	w.Write(buf)
}
