package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/element"
)

func newTestGateway(t *testing.T) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewGatewayHandler(g, nil))
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

// frame builds a v1 request frame around payload.
func frame(t element.Type, payload []byte) []byte {
	return append(frameHeader(t), payload...)
}

func postSort(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/sort", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestGatewayLegacyU32 pins backward compatibility: an unversioned
// little-endian u32 stream sent to the gateway sorts on the u32 server
// and is answered unversioned, exactly like the pre-frame protocol.
func TestGatewayLegacyU32(t *testing.T) {
	_, ts := newTestGateway(t)
	keys := []uint32{9, 2, 7, 2, 0, 1<<31 + 5}
	raw := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(raw[4*i:], k)
	}
	resp := postSort(t, ts.URL, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, err := readBinaryKeys(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRef(keys)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("legacy round-trip wrong at %d: got %v want %v", i, got, want)
		}
	}
}

// TestGatewayU64Frame round-trips a versioned u64 frame, checking the
// response mirrors the request header.
func TestGatewayU64Frame(t *testing.T) {
	_, ts := newTestGateway(t)
	keys := []uint64{1 << 40, 3, ^uint64(0), 7, 3}
	payload := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(payload[8*i:], k)
	}
	resp := postSort(t, ts.URL, frame(element.TU64, payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	gotT, out, versioned, err := decodeFrame(raw)
	if err != nil || !versioned || gotT != element.TU64 {
		t.Fatalf("response not a u64 frame: type=%v versioned=%v err=%v", gotT, versioned, err)
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got := binary.LittleEndian.Uint64(out[8*i:]); got != want[i] {
			t.Fatalf("u64 round-trip wrong at %d: got %d want %d", i, got, want[i])
		}
	}
}

// TestGatewayKV64Frame round-trips records: keys sorted, each payload
// still riding with its key.
func TestGatewayKV64Frame(t *testing.T) {
	_, ts := newTestGateway(t)
	recs := []element.KV64{{K: 50, V: 500}, {K: 10, V: 100}, {K: 30, V: 300}}
	payload := make([]byte, 16*len(recs))
	for i, r := range recs {
		element.Put(payload[16*i:], r)
	}
	resp := postSort(t, ts.URL, frame(element.TKV64, payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	gotT, out, versioned, err := decodeFrame(raw)
	if err != nil || !versioned || gotT != element.TKV64 {
		t.Fatalf("response not a kv64 frame: type=%v versioned=%v err=%v", gotT, versioned, err)
	}
	want := []element.KV64{{K: 10, V: 100}, {K: 30, V: 300}, {K: 50, V: 500}}
	for i := range want {
		if got := element.Get[element.KV64](out[16*i:]); got != want[i] {
			t.Fatalf("kv64 round-trip wrong at %d: got %v want %v", i, got, want[i])
		}
	}
}

// TestGatewayFrameErrors drives each malformed-frame class and checks
// the typed 400 body carries the machine-readable code.
func TestGatewayFrameErrors(t *testing.T) {
	_, ts := newTestGateway(t)
	badVersion := frame(element.TU32, nil)
	badVersion[4] = 9
	badType := frame(element.TU32, nil)
	badType[5] = 200
	badReserved := frame(element.TU32, nil)
	badReserved[6] = 1
	cases := []struct {
		name string
		body []byte
		code string
	}{
		{"truncated-header", frameMagic[:], "truncated-header"},
		{"bad-version", badVersion, "bad-version"},
		{"bad-elem-type", badType, "bad-elem-type"},
		{"bad-reserved", badReserved, "bad-reserved"},
		// 5 bytes of u64 payload: not a multiple of the 8-byte element.
		{"width-mismatch", frame(element.TU64, []byte{1, 2, 3, 4, 5}), "width-mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSort(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Code != tc.code {
				t.Fatalf("error code %q, want %q (error: %s)", e.Code, tc.code, e.Error)
			}
		})
	}
}

// TestGatewayStatsAndMetrics checks the aggregated observability
// surface: /stats keys every element type, and a gateway /metrics
// scrape stays valid Prometheus exposition — per-elem series, but only
// ONE HELP/TYPE header block per metric name.
func TestGatewayStatsAndMetrics(t *testing.T) {
	_, ts := newTestGateway(t)
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, 42)
	if resp := postSort(t, ts.URL, frame(element.TU64, payload)); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed sort status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Elems map[string]json.RawMessage `json:"elems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, et := range element.Types() {
		if _, ok := st.Elems[et.String()]; !ok {
			t.Fatalf("/stats missing element section %q: %v", et.String(), st.Elems)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	if want := `parbitonic_serve_requests_total{elem="u64",outcome="ok"} 1`; !strings.Contains(string(text), want) {
		t.Fatalf("/metrics missing %q", want)
	}
	typeLines := 0
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "# TYPE parbitonic_serve_requests_total ") {
			typeLines++
		}
	}
	if typeLines != 1 {
		t.Fatalf("parbitonic_serve_requests_total has %d TYPE headers, want exactly 1", typeLines)
	}
}

// TestSingleServerRejectsForeignFrames: the plain (non-gateway) u32
// handler must answer versioned non-u32 frames with 501, not sort them
// wrong.
func TestSingleServerRejectsForeignFrames(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postSort(t, ts.URL, frame(element.TU64, make([]byte, 8)))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}
