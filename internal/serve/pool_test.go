package serve

import (
	"testing"

	"parbitonic"
)

func TestPoolReusesByShape(t *testing.T) {
	pl := NewPool(2)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}

	e1, err := pl.Get(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pl.Put(e1, 1024)
	e2, err := pl.Get(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Error("same shape must reuse the idle engine")
	}
	if st := pl.Stats(); st.Gets != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want Gets=2 Hits=1", st)
	}

	// A different padded share is a different shape: no reuse.
	pl.Put(e2, 1024)
	e3, err := pl.Get(cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e2 {
		t.Error("different share must not reuse the idle engine")
	}
	// Sizes that pad to the same share do share engines.
	pl.Put(e3, 4096)
	e4, err := pl.Get(cfg, 3000) // PaddedSize(3000,2) == PaddedSize(4096,2)
	if err != nil {
		t.Fatal(err)
	}
	if e4 != e3 {
		t.Error("sizes padding to the same share must reuse the engine")
	}
}

func TestPoolCapsIdle(t *testing.T) {
	pl := NewPool(1)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}
	e1, _ := pl.Get(cfg, 64)
	e2, _ := pl.Get(cfg, 64)
	pl.Put(e1, 64)
	pl.Put(e2, 64) // over the cap: dropped
	if st := pl.Stats(); st.Idle != 1 {
		t.Errorf("idle = %d, want 1 (per-shape cap)", st.Idle)
	}
	pl.Put(nil, 64) // must be a no-op
	if st := pl.Stats(); st.Idle != 1 {
		t.Errorf("idle after Put(nil) = %d, want 1", st.Idle)
	}
}

func TestPoolPropagatesConfigErrors(t *testing.T) {
	pl := NewPool(1)
	if _, err := pl.Get(parbitonic.Config{Processors: 3}, 64); err == nil {
		t.Fatal("expected an engine-construction error for P=3")
	}
}
