package serve

import (
	"testing"

	"parbitonic"
)

func TestPoolReusesByShape(t *testing.T) {
	pl := NewPool(2)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}

	e1, err := pl.Get(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pl.Put(e1, 1024, true)
	e2, err := pl.Get(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Error("same shape must reuse the idle engine")
	}
	if st := pl.Stats(); st.Gets != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want Gets=2 Hits=1", st)
	}

	// A different padded share is a different shape: no reuse.
	pl.Put(e2, 1024, true)
	e3, err := pl.Get(cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e2 {
		t.Error("different share must not reuse the idle engine")
	}
	// Sizes that pad to the same share do share engines.
	pl.Put(e3, 4096, true)
	e4, err := pl.Get(cfg, 3000) // PaddedSize(3000,2) == PaddedSize(4096,2)
	if err != nil {
		t.Fatal(err)
	}
	if e4 != e3 {
		t.Error("sizes padding to the same share must reuse the engine")
	}
}

func TestPoolCapsIdle(t *testing.T) {
	pl := NewPool(1)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}
	e1, _ := pl.Get(cfg, 64)
	e2, _ := pl.Get(cfg, 64)
	pl.Put(e1, 64, true)
	pl.Put(e2, 64, true) // over the cap: dropped
	if st := pl.Stats(); st.Idle != 1 {
		t.Errorf("idle = %d, want 1 (per-shape cap)", st.Idle)
	}
	pl.Put(nil, 64, true) // must be a no-op
	if st := pl.Stats(); st.Idle != 1 {
		t.Errorf("idle after Put(nil) = %d, want 1", st.Idle)
	}
}

// TestPoolQuarantineAndEviction: an unhealthy Put destroys the engine
// instead of recycling it; evictAfter consecutive unhealthy Puts for
// one shape flush that shape's whole idle set; a healthy Put resets
// the streak.
func TestPoolQuarantineAndEviction(t *testing.T) {
	pl := NewPool(8)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}

	e1, _ := pl.Get(cfg, 64)
	pl.Put(e1, 64, false)
	st := pl.Stats()
	if st.Idle != 0 || st.Quarantined != 1 {
		t.Fatalf("unhealthy Put must quarantine, got %+v", st)
	}
	e2, _ := pl.Get(cfg, 64)
	if e2 == e1 {
		t.Fatal("a quarantined engine must never be reused")
	}

	// Park two healthy engines, then fail the shape evictAfter times in
	// a row: the parked engines must be evicted too.
	h1, _ := pl.Get(cfg, 64)
	h2, _ := pl.Get(cfg, 64)
	pl.Put(h1, 64, true)
	pl.Put(h2, 64, true)
	// The healthy Puts reset the streak; now fail evictAfter times.
	for i := 0; i < evictAfter; i++ {
		f, _ := pl.Get(cfg, 4096) // different shape: streak is per shape
		pl.Put(f, 4096, false)
	}
	if st := pl.Stats(); st.Idle != 2 {
		t.Fatalf("another shape's streak must not evict this one: %+v", st)
	}
	for i := 0; i < evictAfter-1; i++ {
		pl.Put(e2, 64, false) // same engine pointer; only the verdict matters
	}
	if st := pl.Stats(); st.Idle != 2 || st.Evicted != 0 {
		t.Fatalf("below the streak threshold nothing evicts: %+v", st)
	}
	pl.Put(e2, 64, false) // streak reaches evictAfter
	if st := pl.Stats(); st.Idle != 0 || st.Evicted != 2 {
		t.Fatalf("streak must evict the shape's idle set: %+v", st)
	}
}

func TestPoolPropagatesConfigErrors(t *testing.T) {
	pl := NewPool(1)
	if _, err := pl.Get(parbitonic.Config{Processors: 3}, 64); err == nil {
		t.Fatal("expected an engine-construction error for P=3")
	}
}
