package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/fault"
	"parbitonic/internal/resilience"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// crashCharger panics on processor 1 at the start of EVERY run — a
// persistently failing backend, unlike the one-shot fault.Injector.
type crashCharger struct {
	spmd.Charger
}

func (c *crashCharger) Start(p *spmd.PC) {
	if p.ID == 1 {
		panic("persistent backend fault")
	}
	c.Charger.Start(p)
}

// persistentCrash returns a Config whose every engine run fails with a
// contained *spmd.PanicError.
func persistentCrash() parbitonic.Config {
	return parbitonic.Config{
		Processors: 2,
		Backend:    parbitonic.Native,
		WrapCharger: func(inner spmd.Charger) spmd.Charger {
			return &crashCharger{Charger: inner}
		},
	}
}

// TestBreakerOpensAndFailsFast: persistent engine failures open the
// per-server breaker; once open, requests are refused with
// ErrBreakerOpen before touching the queue.
func TestBreakerOpensAndFailsFast(t *testing.T) {
	s, err := New(Config{
		Engine:   persistentCrash(),
		MaxBatch: 1,
		Retries:  -1,
		Breaker: resilience.BreakerConfig{
			Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := []uint32{3, 1, 2, 4}
	var pe *spmd.PanicError
	for i := 0; i < 2; i++ {
		if _, err := s.Sort(context.Background(), keys); !errors.As(err, &pe) {
			t.Fatalf("request %d: want a contained panic, got %v", i, err)
		}
	}
	_, err = s.Sort(context.Background(), keys)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after 2 failures the breaker must fail fast, got %v", err)
	}
	if got := s.Metrics().RequestCount("breaker-open"); got != 1 {
		t.Errorf("breaker-open count = %v, want 1", got)
	}
	if secs := s.retryAfterSeconds(err); secs < 1 {
		t.Errorf("retryAfterSeconds(breaker open) = %d, want >= 1", secs)
	}
	if ps := s.Pool().Stats(); ps.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2", ps.Quarantined)
	}
}

// TestBreakerOpenDegradedEquality: with degraded mode on, an open
// breaker routes requests to the sequential fallback — the response is
// flagged degraded and is bit- and checksum-identical to the healthy
// path's output (satellite: multiset checksum via internal/verify).
func TestBreakerOpenDegradedEquality(t *testing.T) {
	s, err := New(Config{
		Engine:   persistentCrash(),
		MaxBatch: 1,
		Retries:  -1,
		Degraded: true,
		Breaker: resilience.BreakerConfig{
			Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := randKeys(rand.New(rand.NewSource(21)), 777, 1<<31)
	// The first two requests trip the breaker but are themselves served
	// degraded (retries exhausted immediately with Retries: -1).
	for i := 0; i < 2; i++ {
		if _, err := s.Sort(context.Background(), keys); err != nil {
			t.Fatalf("request %d not healed by degraded fallback: %v", i, err)
		}
	}
	sorted, degraded, err := s.SortDegradable(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("breaker-open request must be flagged degraded")
	}
	want := sortedRef(keys)
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("degraded output wrong at %d: %d != %d", i, sorted[i], want[i])
		}
	}
	if verify.Sum(sorted) != verify.Sum(keys) {
		t.Fatal("degraded output is not a permutation of the input (checksum mismatch)")
	}
	if got := s.Metrics().DegradedCount(); got != 3 {
		t.Errorf("degraded count = %v, want 3", got)
	}
}

// TestRetriesExhaustedDegraded: with the breaker disabled, a failure
// that survives the whole retry budget still reaches the caller as a
// correct degraded response, and the retries are counted.
func TestRetriesExhaustedDegraded(t *testing.T) {
	s, err := New(Config{
		Engine:         persistentCrash(),
		MaxBatch:       1,
		Retries:        1,
		RetryBackoff:   time.Microsecond,
		DisableBreaker: true,
		Degraded:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := randKeys(rand.New(rand.NewSource(22)), 512, 1<<31)
	sorted, degraded, err := s.SortDegradable(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("retries-exhausted request must be flagged degraded")
	}
	if verify.Sum(sorted) != verify.Sum(keys) {
		t.Fatal("degraded output is not a permutation of the input")
	}
	if got := s.Metrics().RetryCount(); got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
}

// TestQuarantineNotOnCancel is the satellite edge case: a run aborted
// by the caller's deadline says nothing about engine health — the
// engine must be recycled, not quarantined, and the failure must not
// count against the breaker.
func TestQuarantineNotOnCancel(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{
		Kind: fault.Delay, Proc: 1, Round: 0, Delay: 2 * time.Second,
	})
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors:  2,
			Backend:     parbitonic.Native,
			WrapCharger: inj.Wrap,
		},
		MaxBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = s.Sort(ctx, []uint32{2, 1, 4, 3})
	if !errors.Is(err, spmd.ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want a deadline abort, got %v", err)
	}
	// The aborted run's engine is returned asynchronously to the
	// caller's deadline; poll briefly for the Put.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ps := s.Pool().Stats()
		if ps.Quarantined != 0 {
			t.Fatalf("deadline abort quarantined the engine: %+v", ps)
		}
		if ps.Idle == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never recycled after deadline abort: %+v", ps)
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.breaker.State(); st != resilience.Closed {
		t.Errorf("breaker = %v after a caller abort, want closed", st)
	}
}

// TestChaosSoakZeroClientErrors is the acceptance soak in miniature:
// a live HTTP server under sustained chaos injection (crash, delay,
// corrupt — caught by per-run verification) must answer EVERY client
// request 2xx — healthy, retried, or degraded — with every response
// bit-correct against the sequential baseline, and the recovery
// counters must show up in the Prometheus scrape.
func TestChaosSoakZeroClientErrors(t *testing.T) {
	wrap, injected := fault.ChaosWrapper(fault.ChaosConfig{
		P: 4, Every: 3, Seed: 32, Rounds: 4,
	})
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors:  4,
			Backend:     parbitonic.Native,
			Verify:      true, // corrupt faults must be caught, not served
			WrapCharger: wrap,
		},
		MaxBatch: 4,
		Degraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, nil))
	defer ts.Close()

	soakFor := 1200 * time.Millisecond
	if testing.Short() {
		soakFor = 200 * time.Millisecond
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var requests, degradedSeen int
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			client := ts.Client()
			for end := time.Now().Add(soakFor); time.Now().Before(end); {
				keys := randKeys(rng, 256, 1<<31)
				body, _ := json.Marshal(sortRequest{Keys: keys})
				resp, err := client.Post(ts.URL+"/sort", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d under chaos: %s", c, resp.StatusCode, raw)
					return
				}
				var out sortResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				want := sortedRef(keys)
				for i := range want {
					if out.Keys[i] != want[i] {
						t.Errorf("client %d: response not bit-correct at %d", c, i)
						return
					}
				}
				mu.Lock()
				requests++
				if out.Degraded {
					degradedSeen++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if requests == 0 {
		t.Fatal("soak sent no requests")
	}
	if injected() == 0 {
		t.Fatal("chaos injected no faults — the soak proved nothing")
	}
	t.Logf("soak: %d requests, %d degraded, %d faults injected",
		requests, degradedSeen, injected())

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"parbitonic_serve_retries_total",
		"parbitonic_serve_degraded_total",
		"parbitonic_serve_breaker_state",
		"parbitonic_serve_quarantined_engines_total",
		"parbitonic_serve_evicted_engines_total",
	} {
		if !bytes.Contains(scrape, []byte(series)) {
			t.Errorf("scrape is missing %s", series)
		}
	}
}
