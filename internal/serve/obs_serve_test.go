package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/fault"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
)

// TestRetriedRequestStages is the stage-clock regression test: a
// request whose first engine attempt crashes and whose retry succeeds
// must come out with a non-negative stage breakdown that sums to no
// more than its end-to-end latency — re-queued hops must never produce
// a negative delta (the bug the one-reading-per-hop design removes).
func TestRetriedRequestStages(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.Crash, Proc: 1, Round: 0})
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors:  2,
			Backend:     parbitonic.Native,
			WrapCharger: inj.Wrap,
		},
		MaxBatch:       1,
		Retries:        2,
		RetryBackoff:   200 * time.Microsecond,
		DisableBreaker: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := randKeys(rand.New(rand.NewSource(7)), 512, 1<<31)
	sorted, err := s.Sort(context.Background(), keys)
	if err != nil {
		t.Fatalf("retried request must succeed: %v", err)
	}
	want := sortedRef(keys)
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("retried output wrong at %d", i)
		}
	}
	if got := s.Metrics().RetryCount(); got != 1 {
		t.Fatalf("retries = %v, want 1", got)
	}

	recent := s.Metrics().RecentRequests()
	if len(recent) != 1 {
		t.Fatalf("recent requests = %d, want 1", len(recent))
	}
	rec := recent[0]
	if !rec.Retried {
		t.Error("record must be marked retried")
	}
	if rec.Stages[obs.StageRetry] <= 0 {
		t.Errorf("retry stage = %v, want > 0 (the backoff sleep)", rec.Stages[obs.StageRetry])
	}
	if rec.Stages[obs.StageEngine] <= 0 {
		t.Errorf("engine stage = %v, want > 0 (two attempts)", rec.Stages[obs.StageEngine])
	}
	for st, d := range rec.Stages {
		if d < 0 {
			t.Errorf("stage %v is negative: %v", obs.Stage(st), d)
		}
	}
	if sum := rec.Stages.Sum(); sum > rec.Total {
		t.Errorf("stage sum %v exceeds end-to-end latency %v", sum, rec.Total)
	}
	if neg := s.Metrics().Stages().Negatives(); neg != 0 {
		t.Errorf("negative stage readings = %d, want 0", neg)
	}
}

// TestBatchTraceFlowLinkage: a coalesced engine run's Chrome trace must
// carry one flow event pair (s -> f) per member request, each labeled
// with its request ID, so the rendered timeline ties N request rows to
// the single run that served them.
func TestBatchTraceFlowLinkage(t *testing.T) {
	ct := obs.NewChromeTrace()
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 2, Backend: parbitonic.Native, Obs: ct},
		MaxBatch: 4,
		MaxDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := []string{"flow-a", "flow-b", "flow-c"}
	coalesced := false
	for attempt := 0; attempt < 5 && !coalesced; attempt++ {
		ct.Reset()
		before, _ := s.Metrics().BatchCount()
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				ctx := obs.WithRequestID(context.Background(), id)
				if _, err := s.Sort(ctx, []uint32{uint32(3 + i), 1, 2}); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			}(i, id)
		}
		wg.Wait()
		after, _ := s.Metrics().BatchCount()
		coalesced = after == before+1 // all three shared one run
	}
	if t.Failed() {
		return
	}
	if !coalesced {
		t.Fatal("requests never coalesced into one run; cannot test flow linkage")
	}

	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			BP   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}

	requestsTrack := false
	starts := map[string]bool{}
	finishes := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Name == "thread_name" && e.Ph == "M" {
			if name, _ := e.Args["name"].(string); name == "requests" {
				requestsTrack = true
			}
		}
		id, _ := e.Args["request_id"].(string)
		switch e.Ph {
		case "s":
			starts[id] = true
		case "f":
			finishes[id] = true
			if e.BP != "e" {
				t.Errorf("flow finish for %q must bind enclosing (bp=e), got %q", id, e.BP)
			}
			if e.Tid != 0 {
				t.Errorf("flow finish for %q must land on a processor track, got tid %d", id, e.Tid)
			}
		}
	}
	if !requestsTrack {
		t.Error("trace is missing the named requests track")
	}
	for _, id := range ids {
		if !starts[id] {
			t.Errorf("no flow start for request %q", id)
		}
		if !finishes[id] {
			t.Errorf("no flow finish for request %q", id)
		}
	}
}

// TestDegradedSpanRequestID: a request served by the sequential
// fallback flushes a service-level degraded span carrying the owning
// request ID — the request's timeline shows who served it even though
// no processor did.
func TestDegradedSpanRequestID(t *testing.T) {
	ct := obs.NewChromeTrace()
	ecfg := persistentCrash()
	ecfg.Obs = ct
	s, err := New(Config{
		Engine:         ecfg,
		MaxBatch:       1,
		Retries:        -1,
		DisableBreaker: true,
		Degraded:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx := obs.WithRequestID(context.Background(), "deg-req-1")
	sorted, degraded, err := s.SortDegradable(ctx, []uint32{4, 2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("request must be served degraded")
	}
	for i, want := range []uint32{1, 2, 3, 4} {
		if sorted[i] != want {
			t.Fatalf("degraded output wrong at %d", i)
		}
	}

	found := false
	for _, sp := range ct.Spans() {
		if sp.Phase == obs.PhaseDegraded {
			found = true
			if sp.Req != "deg-req-1" {
				t.Errorf("degraded span carries request ID %q, want deg-req-1", sp.Req)
			}
			if sp.Proc >= 0 {
				t.Errorf("degraded span on processor %d, want a service-level track", sp.Proc)
			}
		}
	}
	if !found {
		t.Error("no degraded span was flushed")
	}

	rec := s.Metrics().RecentRequests()[0]
	if rec.ID != "deg-req-1" || !rec.Degraded {
		t.Errorf("record = %+v, want degraded deg-req-1", rec)
	}
	if rec.Stages[obs.StageEngine] <= 0 {
		t.Error("degraded serving time must be charged to the engine stage")
	}
}

// TestHTTPRequestIDEcho: EVERY /sort response path — success, 405, 400
// (malformed JSON and typed frame errors), 503 after shutdown — must
// echo X-Request-ID in the header and the JSON body, and a traceparent
// arrival joins on its trace-id.
func TestHTTPRequestIDEcho(t *testing.T) {
	s, ts := newTestServer(t)
	client := ts.Client()

	do := func(method, url, contentType, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Success: the client's ID comes back on the header and in the body.
	resp := do("POST", ts.URL+"/sort", "application/json", `{"keys":[3,1,2]}`,
		map[string]string{"X-Request-ID": "abc-echo-1"})
	if got := resp.Header.Get("X-Request-ID"); got != "abc-echo-1" {
		t.Errorf("success header echo = %q, want abc-echo-1", got)
	}
	var ok sortResponse
	json.NewDecoder(resp.Body).Decode(&ok)
	resp.Body.Close()
	if ok.RequestID != "abc-echo-1" {
		t.Errorf("success body request_id = %q, want abc-echo-1", ok.RequestID)
	}

	// Traceparent arrival: the trace-id is adopted.
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	resp = do("POST", ts.URL+"/sort", "application/json", `{"keys":[2,1]}`,
		map[string]string{"traceparent": "00-" + traceID + "-00f067aa0ba902b7-01"})
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Errorf("traceparent echo = %q, want the trace-id", got)
	}
	resp.Body.Close()

	// No ID offered: one is minted (16 hex digits).
	resp = do("POST", ts.URL+"/sort", "application/json", `{"keys":[2,1]}`, nil)
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("minted ID = %q, want 16 hex digits", got)
	}
	resp.Body.Close()

	// A hostile header (control characters) is replaced by a minted ID.
	// Go's HTTP client refuses to even send such a value, so this one
	// goes straight to the handler.
	hostile := httptest.NewRequest("POST", "/sort", strings.NewReader(`{"keys":[2,1]}`))
	hostile.Header.Set("Content-Type", "application/json")
	hostile.Header["X-Request-Id"] = []string{"evil\x01id"}
	rw := httptest.NewRecorder()
	handleSort(&front{u32: s}, rw, hostile)
	if got := rw.Header().Get("X-Request-ID"); len(got) != 16 || strings.ContainsAny(got, "\x01") {
		t.Errorf("hostile ID handling: header = %q, want a minted 16-hex ID", got)
	}

	// Error paths: each must echo the ID on header AND body.
	errCases := []struct {
		name, method, contentType, body string
		wantStatus                      int
	}{
		{"405-method", "GET", "", "", http.StatusMethodNotAllowed},
		{"400-malformed-json", "POST", "application/json", "{", http.StatusBadRequest},
		{"400-ragged-binary", "POST", "application/octet-stream", "abc", http.StatusBadRequest},
		{"400-frame-bad-version", "POST", "application/octet-stream", "PBSF\x63\x00\x00\x00", http.StatusBadRequest},
	}
	for _, tc := range errCases {
		id := "err-" + tc.name
		resp := do(tc.method, ts.URL+"/sort", tc.contentType, tc.body,
			map[string]string{"X-Request-ID": id})
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if got := resp.Header.Get("X-Request-ID"); got != id {
			t.Errorf("%s: header echo = %q, want %q", tc.name, got, id)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if e.RequestID != id {
			t.Errorf("%s: body request_id = %q, want %q", tc.name, e.RequestID, id)
		}
	}

	// The typed frame rejection keeps its machine-readable code.
	resp = do("POST", ts.URL+"/sort", "application/octet-stream", "PBSF\x63\x00\x00\x00",
		map[string]string{"X-Request-ID": "frame-code"})
	var fe errorResponse
	json.NewDecoder(resp.Body).Decode(&fe)
	resp.Body.Close()
	if fe.Code != "bad-version" || fe.RequestID != "frame-code" {
		t.Errorf("frame error body = %+v, want code bad-version with the ID", fe)
	}

	// 503 after Close still echoes.
	s.Close()
	resp = do("POST", ts.URL+"/sort", "application/json", `{"keys":[2,1]}`,
		map[string]string{"X-Request-ID": "after-close"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "after-close" {
		t.Errorf("post-close header echo = %q", got)
	}
	var ce errorResponse
	json.NewDecoder(resp.Body).Decode(&ce)
	resp.Body.Close()
	if ce.RequestID != "after-close" {
		t.Errorf("post-close body request_id = %q", ce.RequestID)
	}
}

// TestSortzEndpoint: the live ops page must expose recent requests with
// their IDs and non-negative stage breakdowns as JSON, and render the
// same through html/template for humans.
func TestSortzEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	for _, id := range []string{"sortz-a", "sortz-b"} {
		req, _ := http.NewRequest("POST", ts.URL+"/sort", strings.NewReader(`{"keys":[9,4,6,1]}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", id)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := client.Get(ts.URL + "/debug/sortz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("sortz JSON content type %q", ct)
	}
	var snap SortzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("sortz JSON: %v", err)
	}
	resp.Body.Close()

	if len(snap.Elems) != 1 || snap.Elems[0].Elem != "u32" {
		t.Fatalf("sortz elems = %+v, want one u32 entry", snap.Elems)
	}
	e := snap.Elems[0]
	if e.Negatives != 0 {
		t.Errorf("negative stage readings = %d, want 0", e.Negatives)
	}
	if _, ok := snap.Runtime["heap_bytes"]; !ok {
		t.Error("sortz runtime section missing heap_bytes")
	}
	seen := map[string]bool{}
	for _, rec := range e.Recent {
		seen[rec.ID] = true
		if rec.Total <= 0 {
			t.Errorf("request %s has total %v", rec.ID, rec.Total)
		}
		for st, d := range rec.Stages {
			if d < 0 {
				t.Errorf("request %s stage %v negative: %v", rec.ID, obs.Stage(st), d)
			}
		}
		if sum := rec.Stages.Sum(); sum > rec.Total {
			t.Errorf("request %s stage sum %v exceeds total %v", rec.ID, sum, rec.Total)
		}
	}
	if !seen["sortz-a"] || !seen["sortz-b"] {
		t.Errorf("recent requests missing the submitted IDs: %v", seen)
	}
	if len(e.Slowest) == 0 {
		t.Error("slowest ring is empty after served requests")
	}

	resp, err = client.Get(ts.URL + "/debug/sortz")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("sortz HTML content type %q", ct)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sortz", "elem u32", "sortz-a", "slowest requests", "recent requests"} {
		if !bytes.Contains(page, []byte(want)) {
			t.Errorf("sortz HTML missing %q", want)
		}
	}
}

// TestHealthzSLOUnready: sustained error-budget burn must flip /healthz
// to 503-unready with the burning element named, and the burn must be
// visible on /metrics.
func TestHealthzSLOUnready(t *testing.T) {
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 2, Backend: parbitonic.Native},
		MaxBatch: 1,
		SLO: obs.SLOConfig{
			// Nothing sorts in under a nanosecond: every served request
			// breaches, so a handful of requests is sustained burn.
			Threshold:   time.Nanosecond,
			Target:      0.5,
			MinSamples:  3,
			UnreadyBurn: 1.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, nil))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before traffic: %d, want 200 (no samples is not an incident)", resp.StatusCode)
	}

	for i := 0; i < 5; i++ {
		resp, err := client.Post(ts.URL+"/sort", "application/json", strings.NewReader(`{"keys":[5,3,4,1]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz under full burn: %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "unready" || len(health.Reasons) == 0 || !strings.Contains(health.Reasons[0], "u32") {
		t.Errorf("healthz body = %+v, want unready with the u32 burn named", health)
	}

	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`parbitonic_serve_slo_burn_rate{elem="u32"} 2`,
		`parbitonic_serve_slo_requests_total{elem="u32",verdict="breach"} 5`,
	} {
		if !bytes.Contains(scrape, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// lockedBuffer is a mutex-guarded bytes.Buffer for capturing slog
// output written from worker goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestE2EStageSumAcceptance is the PR's acceptance test: a request
// tagged X-Request-ID: abc gets the ID back, shows up in the
// structured logs, and its sortz stage breakdown sums to within 5% of
// its measured end-to-end latency. The request is large enough that
// engine time dominates scheduler handoff (the only uncharged
// residue).
func TestE2EStageSumAcceptance(t *testing.T) {
	logBuf := &lockedBuffer{}
	sink := obs.NewSlogSink(slog.New(slog.NewJSONHandler(logBuf, nil)))
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native, Obs: sink},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s, nil))
	defer ts.Close()
	client := ts.Client()

	keys := randKeys(rand.New(rand.NewSource(99)), 1<<18, 1<<31)
	body := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(body[4*i:], k)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/sort", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Request-ID", "abc")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "abc" {
		t.Fatalf("header echo = %q, want abc", got)
	}

	resp, err = client.Get(ts.URL + "/debug/sortz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap SortzSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var rec *RequestRecord
	for i := range snap.Elems[0].Recent {
		if snap.Elems[0].Recent[i].ID == "abc" {
			rec = &snap.Elems[0].Recent[i]
			break
		}
	}
	if rec == nil {
		t.Fatal("request abc not in the sortz recent ring")
	}
	if rec.Keys != len(keys) {
		t.Errorf("record keys = %d, want %d", rec.Keys, len(keys))
	}
	sum, total := rec.Stages.Sum(), rec.Total
	if sum <= 0 || total <= 0 {
		t.Fatalf("degenerate breakdown: sum %v, total %v", sum, total)
	}
	if sum > total {
		t.Errorf("stage sum %v exceeds end-to-end latency %v", sum, total)
	}
	if residue := total - sum; residue > total/20 {
		t.Errorf("stage sum %v accounts for less than 95%% of total %v (residue %v = %.1f%%)",
			sum, total, residue, 100*float64(residue)/float64(total))
	}

	logs := logBuf.String()
	if !strings.Contains(logs, `"requests":"abc"`) {
		t.Errorf("structured run logs never mention request abc:\n%s", firstLines(logs, 6))
	}
}

// firstLines returns at most n leading lines of s, for terse failures.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestSortzActiveBatches: an engine run in flight is visible on the
// ops page with its member request IDs, and disappears once done.
func TestSortzActiveBatches(t *testing.T) {
	gate := make(chan struct{})
	g := &gateCharger{gate: gate}
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors: 2,
			Backend:    parbitonic.Native,
			WrapCharger: func(inner spmd.Charger) spmd.Charger {
				g.Charger = inner
				return g
			},
		},
		MaxBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
	}()

	done := make(chan error, 1)
	go func() {
		ctx := obs.WithRequestID(context.Background(), "active-1")
		_, err := s.Sort(ctx, []uint32{4, 1, 3, 2})
		done <- err
	}()

	// Wait for the run to wedge on the gate, then snapshot.
	var active []ActiveBatch
	deadline := time.Now().Add(5 * time.Second)
	for {
		active = s.Metrics().ActiveBatches()
		if len(active) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never became active")
		}
		time.Sleep(time.Millisecond)
	}
	if len(active[0].Requests) != 1 || active[0].Requests[0] != "active-1" {
		t.Errorf("active batch requests = %v, want [active-1]", active[0].Requests)
	}
	if active[0].Keys != 4 {
		t.Errorf("active batch keys = %d, want 4", active[0].Keys)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for len(s.Metrics().ActiveBatches()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never left the active set")
		}
		time.Sleep(time.Millisecond)
	}
}
