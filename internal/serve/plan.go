package serve

import (
	"parbitonic"
	"parbitonic/internal/obs"
)

// planFor resolves the engine configuration, padded buffer size and
// (under Engine.Auto) the autotuner plan for a run of total keys.
//
// Without Auto this is the boot-time fixed shape. With Auto the
// planner is consulted per request size: totals that pad to the same
// power of two share a plan — the planner scores candidates on padded
// per-processor shares, so its decision depends only on the bucket —
// and resolved plans are cached on the server, so the machine profile
// is read and the candidate set scored once per bucket, not once per
// request. Every run counts toward the plan_chosen metric under its
// plan's shape; the first resolution of a bucket also emits an obs
// plan event (Detail: the plan, including its predicted cost).
//
// Engines then pool under the plan-chosen shape: pool keys derive
// from the resolved config, so a u32/4k-keys plan and a u32/1M-keys
// plan recycle separate engine sets, exactly as two fixed servers
// would.
func (s *ServerOf[E]) planFor(total int) (parbitonic.Config, int, *parbitonic.Plan, error) {
	if !s.cfg.Engine.Auto {
		return s.cfg.Engine, parbitonic.PaddedSize(total, s.cfg.Engine.Processors), nil, nil
	}
	bucket := parbitonic.PaddedSize(total, 1)
	s.planMu.Lock()
	plan, cached := s.plans[bucket]
	if !cached {
		var err error
		plan, err = parbitonic.PlanFor[E](bucket, s.cfg.Engine)
		if err != nil {
			s.planMu.Unlock()
			return parbitonic.Config{}, 0, nil, err
		}
		s.plans[bucket] = plan
	}
	s.planMu.Unlock()
	if !cached {
		s.emit(obs.EventPlan, plan.String(), "")
	}
	s.m.planChoose(plan.Algorithm.String(), plan.Processors)
	return plan.Apply(s.cfg.Engine), parbitonic.PaddedSize(total, plan.Processors), &plan, nil
}
