package serve

import (
	"sync"

	"parbitonic"
	"parbitonic/element"
)

// poolKey is the engine shape: engines are interchangeable exactly
// when processor count, backend, algorithm and the padded
// keys-per-processor share agree (share keeps staging and message
// buffers right-sized for the traffic that produced them). The element
// type is fixed by the pool's type parameter, not the key.
type poolKey struct {
	p       int
	backend parbitonic.Backend
	alg     parbitonic.Algorithm
	share   int
}

// keyFor buckets a request size into the engine shape it needs.
func keyFor(cfg parbitonic.Config, totalKeys int) poolKey {
	p := cfg.Processors
	return poolKey{
		p:       p,
		backend: cfg.Backend,
		alg:     cfg.Algorithm,
		share:   parbitonic.PaddedSize(totalKeys, p) / p,
	}
}

// evictAfter is how many consecutive unhealthy Puts a shape tolerates
// before its whole idle set is evicted: if three engines of one shape
// fail in a row, the fault is probably shape-wide (bad buffer sizing,
// poisoned staging state) rather than one sick engine, so the
// remaining idle engines of that shape are suspect too.
const evictAfter = 3

// PoolOf recycles parbitonic engines of one element type, keyed by
// shape. Get hands out an idle engine of the right shape or builds
// one; Put returns it with a health verdict — unhealthy engines are
// quarantined (destroyed, never recycled), and a run of consecutive
// unhealthy Puts for one shape evicts that shape's whole idle set.
// Each engine is used by one goroutine at a time (engines are not
// concurrency-safe); the pool itself is safe for concurrent use. Idle
// engines per shape are capped — extras are closed and released, so a
// traffic spike does not pin its high-water memory forever.
type PoolOf[E element.Elem] struct {
	mu          sync.Mutex
	idle        map[poolKey][]*parbitonic.EngineOf[E]
	failStreak  map[poolKey]int // consecutive unhealthy Puts per shape
	perKey      int
	gets        uint64
	hits        uint64
	quarantined uint64
	evicted     uint64
}

// Pool is the uint32 engine pool, the shape existing callers use.
type Pool = PoolOf[uint32]

// NewPool creates a uint32 engine pool keeping at most perKey idle
// engines per shape (perKey < 1 means 4).
func NewPool(perKey int) *Pool { return NewPoolOf[uint32](perKey) }

// NewPoolOf creates a pool of E-element engines keeping at most perKey
// idle engines per shape (perKey < 1 means 4).
func NewPoolOf[E element.Elem](perKey int) *PoolOf[E] {
	if perKey < 1 {
		perKey = 4
	}
	return &PoolOf[E]{
		idle:       make(map[poolKey][]*parbitonic.EngineOf[E]),
		failStreak: make(map[poolKey]int),
		perKey:     perKey,
	}
}

// Get returns an engine built from cfg and sized for totalKeys keys,
// reusing an idle one when the shape matches. The caller must hand it
// back with Put (with the same totalKeys) when the run completes —
// including after a failed run — along with a health verdict for the
// run (see resilience.EngineHealthy).
func (pl *PoolOf[E]) Get(cfg parbitonic.Config, totalKeys int) (*parbitonic.EngineOf[E], error) {
	k := keyFor(cfg, totalKeys)
	pl.mu.Lock()
	pl.gets++
	if free := pl.idle[k]; len(free) > 0 {
		e := free[len(free)-1]
		pl.idle[k] = free[:len(free)-1]
		pl.hits++
		pl.mu.Unlock()
		return e, nil
	}
	pl.mu.Unlock()
	return parbitonic.NewEngineOf[E](cfg)
}

// Put returns an engine to the pool under the shape it was fetched
// for. A healthy engine is recycled (beyond the per-shape cap it is
// simply dropped) and clears its shape's failure streak. An unhealthy
// engine — one whose run panicked or failed verification — is
// quarantined: destroyed instead of recycled, because an engine that
// just proved it can corrupt data has forfeited the benefit of the
// doubt. evictAfter consecutive unhealthy Puts for one shape evict
// that shape's entire idle set.
func (pl *PoolOf[E]) Put(e *parbitonic.EngineOf[E], totalKeys int, healthy bool) {
	if e == nil {
		return
	}
	k := keyFor(e.Config(), totalKeys)
	pl.mu.Lock()
	if healthy {
		pl.failStreak[k] = 0
		if len(pl.idle[k]) < pl.perKey {
			pl.idle[k] = append(pl.idle[k], e)
			pl.mu.Unlock()
			return
		}
		pl.mu.Unlock()
		e.Close() // over the cap: released, not recycled
		return
	}
	pl.quarantined++
	pl.failStreak[k]++
	var evicted []*parbitonic.EngineOf[E]
	if pl.failStreak[k] >= evictAfter {
		pl.failStreak[k] = 0
		evicted = pl.idle[k]
		pl.evicted += uint64(len(evicted))
		delete(pl.idle, k)
	}
	pl.mu.Unlock()
	e.Close()
	for _, v := range evicted {
		v.Close()
	}
}

// Close releases every idle engine and empties the pool. Engines
// currently checked out are untouched — their Put after Close recycles
// or releases them as usual. The pool stays usable (a fresh Get just
// builds), so Close is a drain, not a terminal state.
func (pl *PoolOf[E]) Close() {
	pl.mu.Lock()
	idle := pl.idle
	pl.idle = make(map[poolKey][]*parbitonic.EngineOf[E])
	pl.mu.Unlock()
	for _, free := range idle {
		for _, e := range free {
			e.Close()
		}
	}
}

// PoolStats is a snapshot of pool effectiveness counters.
type PoolStats struct {
	Gets        uint64 // total Get calls
	Hits        uint64 // Gets served by an idle engine (no construction)
	Idle        int    // engines currently parked, all shapes
	Quarantined uint64 // engines destroyed on an unhealthy Put
	Evicted     uint64 // idle engines evicted by a shape failure streak
}

// Stats returns a snapshot of the pool's counters.
func (pl *PoolOf[E]) Stats() PoolStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	idle := 0
	for _, free := range pl.idle {
		idle += len(free)
	}
	return PoolStats{
		Gets: pl.gets, Hits: pl.hits, Idle: idle,
		Quarantined: pl.quarantined, Evicted: pl.evicted,
	}
}
