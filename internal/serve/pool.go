package serve

import (
	"sync"

	"parbitonic"
)

// poolKey is the engine shape: engines are interchangeable exactly
// when processor count, backend, algorithm and the padded
// keys-per-processor share agree (share keeps staging and message
// buffers right-sized for the traffic that produced them).
type poolKey struct {
	p       int
	backend parbitonic.Backend
	alg     parbitonic.Algorithm
	share   int
}

// keyFor buckets a request size into the engine shape it needs.
func keyFor(cfg parbitonic.Config, totalKeys int) poolKey {
	p := cfg.Processors
	return poolKey{
		p:       p,
		backend: cfg.Backend,
		alg:     cfg.Algorithm,
		share:   parbitonic.PaddedSize(totalKeys, p) / p,
	}
}

// Pool recycles parbitonic Engines keyed by shape. Get hands out an
// idle engine of the right shape or builds one; Put returns it. Each
// engine is used by one goroutine at a time (engines are not
// concurrency-safe); the pool itself is safe for concurrent use.
// Idle engines per shape are capped — extras are dropped to the GC,
// so a traffic spike does not pin its high-water memory forever.
type Pool struct {
	mu     sync.Mutex
	idle   map[poolKey][]*parbitonic.Engine
	perKey int
	gets   uint64
	hits   uint64
}

// NewPool creates a pool keeping at most perKey idle engines per
// shape (perKey < 1 means 4).
func NewPool(perKey int) *Pool {
	if perKey < 1 {
		perKey = 4
	}
	return &Pool{idle: make(map[poolKey][]*parbitonic.Engine), perKey: perKey}
}

// Get returns an engine built from cfg and sized for totalKeys keys,
// reusing an idle one when the shape matches. The caller must hand it
// back with Put (with the same totalKeys) when the run completes —
// including after a failed run; engines survive failures.
func (pl *Pool) Get(cfg parbitonic.Config, totalKeys int) (*parbitonic.Engine, error) {
	k := keyFor(cfg, totalKeys)
	pl.mu.Lock()
	pl.gets++
	if free := pl.idle[k]; len(free) > 0 {
		e := free[len(free)-1]
		pl.idle[k] = free[:len(free)-1]
		pl.hits++
		pl.mu.Unlock()
		return e, nil
	}
	pl.mu.Unlock()
	return parbitonic.NewEngine(cfg)
}

// Put returns an engine to the pool under the shape it was fetched
// for. Beyond the per-shape cap the engine is simply dropped.
func (pl *Pool) Put(e *parbitonic.Engine, totalKeys int) {
	if e == nil {
		return
	}
	k := keyFor(e.Config(), totalKeys)
	pl.mu.Lock()
	if len(pl.idle[k]) < pl.perKey {
		pl.idle[k] = append(pl.idle[k], e)
	}
	pl.mu.Unlock()
}

// PoolStats is a snapshot of pool effectiveness counters.
type PoolStats struct {
	Gets uint64 // total Get calls
	Hits uint64 // Gets served by an idle engine (no construction)
	Idle int    // engines currently parked, all shapes
}

// Stats returns a snapshot of the pool's counters.
func (pl *Pool) Stats() PoolStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	idle := 0
	for _, free := range pl.idle {
		idle += len(free)
	}
	return PoolStats{Gets: pl.gets, Hits: pl.hits, Idle: idle}
}
