// Package serve turns the sorting library into a concurrent service:
// a front door that accepts many small independent Sort requests,
// coalesces them into the large runs the machinery is efficient at,
// and pushes back when it is full — the paper's coarse-grained
// N >> P regime (Ch. 3) applied to request traffic.
//
// Three mechanisms, layered:
//
//   - Pooling (PoolOf): engines are expensive to build — P workers, a
//     P×P exchange board, message-buffer pools — and cheap to reuse.
//     The pool keys engines by shape (P, backend, algorithm,
//     keys-per-processor share) and recycles them across requests, so
//     steady-state traffic pays construction ~never.
//
//   - Batching (ServerOf): requests arriving within a window
//     (Config.MaxDelay, up to Config.MaxBatch) are coalesced into ONE
//     padded sort. Each request's keys are tagged with a request index
//     in the high bits of the key, the concatenation is sorted once,
//     and results are sliced back out per request (the sorted stream is
//     grouped by tag) and copied out of the shared buffer. The LogGP
//     rationale (§3.4): remap time is T = (L+2o−g)R + G·V + (g−G)M, so
//     B requests sorted separately pay the per-remap latency term R
//     B times over; one batched run pays it once while V grows only
//     linearly — exactly the bulk-transfer regime LogGP rewards. See
//     DESIGN.md §10 for the tag-bit scheme and its correctness
//     argument. Tagging requires integer key images — uint32, uint64
//     and KV64 traffic batches; float requests always run solo (OR-ing
//     a tag into a float's bits would reorder values).
//
//   - Backpressure (ServerOf): admission is a bounded queue. A full
//     queue rejects immediately with ErrOverloaded (typed; HTTP 429)
//     instead of queueing unboundedly, per-request contexts ride the
//     runtime's fail-safe paths (cancellation and deadlines abort
//     in-flight runs promptly), and Close drains gracefully.
//
// Every server sorts ONE element type, fixed by its type parameter;
// Server is the uint32 instantiation existing callers use, and Gateway
// fronts one server per element type behind the versioned binary
// protocol. Observability threads through internal/obs: engine runs
// stream spans/events into the configured sink, and the serve layer
// adds queue-depth, batch-size, request-latency and rejection metrics
// (Metrics, Prometheus text, labeled by element type). Chaos testing
// threads through internal/fault via the Config.Engine.WrapCharger
// seam; per-batch result verification via Config.Engine.Verify.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/localsort"
	"parbitonic/internal/obs"
	"parbitonic/internal/resilience"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when the
// admission queue is full: the server is saturated and the caller
// should back off and retry. It is the load-shedding half of the
// backpressure design — requests are rejected at the door, never
// queued without bound.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// ErrClosed is returned for requests submitted after Close; in-flight
// and already-queued requests still complete (graceful drain).
var ErrClosed = errors.New("serve: server closed")

// ErrBreakerOpen is returned (and mapped to HTTP 503 with an honest
// Retry-After) when the server's circuit breaker is open: the backend
// has been failing persistently and requests fail fast instead of
// burning queue slots — unless degraded-mode fallback is enabled, in
// which case the request is served sequentially instead.
var ErrBreakerOpen = errors.New("serve: circuit breaker open, backend failing")

// Config configures a server. The zero value of every field except
// Engine.Processors is usable: defaults are applied by New.
type Config struct {
	// Engine is the template every pooled engine is built from:
	// Processors (required), Algorithm, Backend, Verify (per-batch
	// result verification), Obs (telemetry sink for every run),
	// WrapCharger (fault-injection seam), and the model overrides.
	//
	// With Engine.Auto set the shape fields become autotuner inputs
	// instead: the planner (internal/tune, TUNING.md) picks Algorithm,
	// Strategy and Processors per request size, Processors caps the
	// candidate P (0 means GOMAXPROCS), and engines pool under the
	// plan-chosen shapes. Resolved plans are cached per padded-size
	// bucket; choices surface as the plan_chosen counter, the
	// plan-drift histogram and obs plan events.
	Engine parbitonic.Config

	// MaxBatch is the most requests coalesced into one sort run.
	// 1 disables batching; 0 means the default 16.
	MaxBatch int

	// MaxBatchKeys caps the summed key count of a batch (pre-padding);
	// a request longer than this always runs solo. 0 means 1<<20.
	MaxBatchKeys int

	// MaxDelay is the batching window: how long the dispatcher holds
	// the first request of a batch open for companions. 0 means 200µs.
	// Latency cost is at most MaxDelay; throughput gain is the
	// amortized remap/setup cost (see the package comment).
	MaxDelay time.Duration

	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded. 0 means 256.
	QueueDepth int

	// Parallel is the number of batch executors — concurrent engine
	// runs. 0 means max(1, GOMAXPROCS / Engine.Processors), and larger
	// settings are clamped to that ceiling: each executor spins up
	// Engine.Processors goroutines, and beyond the core count extra
	// executors only thrash the scheduler (the engines' local-phase
	// compute shares one GOMAXPROCS-capped work-stealing pool already).
	Parallel int

	// PoolPerKey caps idle engines kept per (P, backend, algorithm,
	// share) shape. 0 means Parallel.
	PoolPerKey int

	// Retries is the per-request retry budget for transient engine
	// failures — contained panics and verification failures. 0 means the
	// default 2; negative disables retrying. Cancellation, deadline
	// expiry and overload are never retried.
	Retries int

	// RetryBackoff is the base backoff before the first retry; it
	// doubles per attempt with ±50% jitter, capped at 50×. 0 means 1ms.
	RetryBackoff time.Duration

	// DisableBreaker turns off the per-server circuit breaker. By
	// default every server carries one: persistent engine failures open
	// it and requests fail fast (ErrBreakerOpen) until a probe succeeds.
	DisableBreaker bool

	// Breaker tunes the circuit breaker; zero fields take the
	// resilience defaults (32-run window, 8 min samples, 50% failure
	// rate, 1s cooldown, 1 probe).
	Breaker resilience.BreakerConfig

	// Degraded enables degraded-mode fallback: when the breaker is open
	// or retries are exhausted, the request is served by a sequential
	// local sort on the caller's goroutine — correct but slow — instead
	// of failing. SortDegradable reports fallback use per request.
	Degraded bool

	// SLO is the per-server tail-latency objective: Threshold is the
	// latency bound, Target the fraction of successful requests that
	// must meet it (e.g. 50ms / 0.99). When enabled, the server tracks
	// error-budget burn rate over a sliding minute and reports
	// unreadiness (healthz 503) under sustained burn. The zero value
	// disables SLO tracking; tail quantiles are estimated regardless.
	SLO obs.SLOConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.MaxBatchKeys == 0 {
		c.MaxBatchKeys = 1 << 20
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	// Each executor drives an engine of P virtual processors — P
	// goroutines apiece — so more than GOMAXPROCS/P executors cannot
	// add compute, only scheduler thrash: the engines' heavy tile work
	// already shares the process-wide work-stealing pool
	// (internal/workpool), whose helper lanes are capped at GOMAXPROCS
	// across all engines in flight. Explicit settings clamp to the same
	// ceiling the default uses.
	{
		p := c.Engine.Processors
		if p < 1 {
			p = 1
		}
		maxPar := runtime.GOMAXPROCS(0) / p
		if maxPar < 1 {
			maxPar = 1
		}
		if c.Parallel == 0 || c.Parallel > maxPar {
			c.Parallel = maxPar
		}
	}
	if c.PoolPerKey == 0 {
		c.PoolPerKey = c.Parallel
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	return c
}

// request is one queued Sort call.
type request[E element.Elem] struct {
	keys   []E    // caller-owned; read-only until the response is sent
	maxKey uint64 // largest key order image, for the tag headroom check
	ctx    context.Context
	enq    time.Time
	id     string           // owning request ID (also in ctx; cached for hot paths)
	tr     *reqTrack        // stage-latency accumulator, owned by whoever owns the request
	res    chan response[E] // buffered 1: delivery never blocks a worker
}

// response carries a request's outcome; sorted is always freshly
// allocated (never a view into a pooled buffer).
type response[E element.Elem] struct {
	sorted []E
	err    error
}

// finish delivers the outcome and records the request's latency.
func (r *request[E]) finish(m *Metrics, sorted []E, err error) {
	m.observeRequest(time.Since(r.enq), err)
	r.res <- response[E]{sorted: sorted, err: err}
}

// ServerOf is the concurrent sort service for one element type:
// bounded admission queue, a batching dispatcher, Parallel executor
// workers drawing pooled engines. Create with NewOf, submit with Sort,
// shut down with Close.
type ServerOf[E element.Elem] struct {
	cfg     Config
	pool    *PoolOf[E]
	m       *Metrics
	policy  resilience.Policy
	breaker *resilience.Breaker // nil when Config.DisableBreaker
	queue   chan *request[E]
	exec    chan []*request[E]

	ctx    context.Context // canceled on Close: aborts in-flight runs' joint contexts
	cancel context.CancelFunc

	planMu sync.Mutex              // guards plans
	plans  map[int]parbitonic.Plan // Auto only: resolved plan per padded-size bucket

	mu     sync.RWMutex // guards closed vs queue sends
	closed bool
	wg     sync.WaitGroup // dispatcher + workers
}

// Server is the uint32 sort service, the shape existing callers use.
type Server = ServerOf[uint32]

// New validates cfg, applies defaults, and starts a uint32 service's
// dispatcher and executor goroutines. The returned server is ready;
// stop it with Close.
func New(cfg Config) (*Server, error) { return NewOf[uint32](cfg) }

// NewOf is New for any element type: the returned server sorts []E
// requests on pooled E-element engines.
func NewOf[E element.Elem](cfg Config) (*ServerOf[E], error) {
	cfg = cfg.withDefaults()
	p := cfg.Engine.Processors
	if cfg.Engine.Auto {
		if p != 0 && (p < 1 || p&(p-1) != 0) {
			return nil, fmt.Errorf("serve: under Engine.Auto, Processors is the plan's P cap and must be 0 or a positive power of two, got %d", p)
		}
	} else if p < 1 || p&(p-1) != 0 {
		return nil, fmt.Errorf("serve: Engine.Processors must be a positive power of two, got %d", p)
	}
	// Fail configuration errors (bad model overrides, unknown backend,
	// an unreadable machine profile) at startup, not on the first
	// request. Under Auto, engines are built per plan, so the probe
	// resolves a representative plan first.
	probe := cfg.Engine
	if cfg.Engine.Auto {
		plan, err := parbitonic.PlanFor[E](cfg.MaxBatchKeys, cfg.Engine)
		if err != nil {
			return nil, err
		}
		probe = plan.Apply(cfg.Engine)
	}
	if _, err := parbitonic.NewEngineOf[E](probe); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &ServerOf[E]{
		cfg:    cfg,
		pool:   NewPoolOf[E](cfg.PoolPerKey),
		policy: resilience.Policy{MaxRetries: cfg.Retries, BaseDelay: cfg.RetryBackoff},
		queue:  make(chan *request[E], cfg.QueueDepth),
		exec:   make(chan []*request[E]),
		ctx:    ctx,
		cancel: cancel,
	}
	if cfg.Engine.Auto {
		s.plans = make(map[int]parbitonic.Plan)
	}
	if !cfg.DisableBreaker {
		bc := cfg.Breaker
		elem := element.TypeOf[E]().String()
		user := bc.OnTransition
		bc.OnTransition = func(from, to resilience.BreakerState) {
			s.emit(obs.EventBreaker, elem+": "+from.String()+">"+to.String(), "")
			if user != nil {
				user(from, to)
			}
		}
		s.breaker = resilience.NewBreaker(bc)
	}
	s.m = newMetrics(element.TypeOf[E]().String(), func() int { return len(s.queue) }, s.pool, cfg.SLO)
	if s.breaker != nil {
		s.m.breakerState = func() int { return int(s.breaker.State()) }
	}
	s.wg.Add(1 + cfg.Parallel)
	go s.dispatch()
	for i := 0; i < cfg.Parallel; i++ {
		go s.worker()
	}
	return s, nil
}

// Metrics returns the server's serve-level metrics (queue depth,
// batch sizes, request latency, rejections) for mounting or scraping.
func (s *ServerOf[E]) Metrics() *Metrics { return s.m }

// Pool returns the server's engine pool (for stats inspection).
func (s *ServerOf[E]) Pool() *PoolOf[E] { return s.pool }

// Sort sorts keys through the service and returns a freshly allocated
// sorted slice; keys itself is only read, never mutated. The call
// blocks until the result is ready, ctx is done, or admission is
// refused: a full queue returns ErrOverloaded immediately, a closed
// server returns ErrClosed, and an open circuit breaker returns
// ErrBreakerOpen (unless Config.Degraded routes the request to the
// sequential fallback — Sort hides which path served it; use
// SortDegradable to see). Transient engine failures are retried
// transparently under Config.Retries. ctx cancellation and deadlines
// follow the request into the runtime — an in-flight solo run is
// aborted through the fail-safe paths, and a batched run is aborted
// once every member has given up. Float NaN keys are rejected by the
// engine (they are unordered); record elements sort by key with
// payloads carried along.
func (s *ServerOf[E]) Sort(ctx context.Context, keys []E) ([]E, error) {
	sorted, _, err := s.SortDegradable(ctx, keys)
	return sorted, err
}

// SortDegradable is Sort plus the degraded flag: it reports whether
// the result came from the sequential fallback (breaker open or
// retries exhausted, with Config.Degraded set) rather than the
// parallel engine path. The HTTP layer surfaces the flag as the
// Degraded response field and the X-Sort-Degraded header.
func (s *ServerOf[E]) SortDegradable(ctx context.Context, keys []E) ([]E, bool, error) {
	// Adopt the caller's request ID or mint one, so every request —
	// HTTP or programmatic — is traceable end to end.
	id := obs.RequestIDFrom(ctx)
	if id == "" {
		id = obs.NewRequestID()
		ctx = obs.WithRequestID(ctx, id)
	}
	tr := newReqTrack(id, len(keys))

	sorted, err := s.sortEngine(ctx, keys, tr)
	degraded := false
	if err != nil && s.cfg.Degraded && degradable(err) {
		out, derr := s.sortDegraded(ctx, keys, tr)
		if derr == nil {
			s.m.degrade()
			s.emit(obs.EventDegraded, err.Error(), id)
			sorted, err, degraded = out, nil, true
		}
		// On derr the engine path's error stays — it is the honest one.
	}
	if !tr.abandoned {
		s.m.recordRequest(tr, err, degraded)
	}
	return sorted, degraded, err
}

// degradable reports whether a failed engine-path request may be
// served by the sequential fallback: the breaker failing fast, or a
// transient failure that survived the retry budget. Caller aborts
// (cancel, deadline), overload and validation errors are not — the
// first ones have nobody left to serve, overload must stay honest
// backpressure, and validation fails identically on any path.
func degradable(err error) bool {
	return errors.Is(err, ErrBreakerOpen) || resilience.Retryable(err)
}

// sortDegraded wraps sortSequential with observability: the fallback's
// wall time is charged to the engine stage (it IS the service time of
// this request), and a successful fallback flushes a service-level
// degraded span carrying the request ID, so the request's timeline
// shows who served it even when no processor did.
func (s *ServerOf[E]) sortDegraded(ctx context.Context, keys []E, tr *reqTrack) ([]E, error) {
	tr.reset()
	start := time.Now()
	out, err := s.sortSequential(ctx, keys)
	d := time.Since(start)
	tr.add(obs.StageEngine, d)
	tr.reset()
	if err == nil {
		if sink := s.cfg.Engine.Obs; sink != nil {
			sink.FlushSpans(-1, []obs.Span{{
				Proc:  -1,
				Phase: obs.PhaseDegraded,
				Start: 0,
				End:   float64(d) / float64(time.Microsecond),
				Wall:  time.Now().UnixNano(),
				Req:   tr.id,
			}})
		}
	}
	return out, err
}

// sortSequential is the degraded-mode path: a sequential O(n) local
// sort on the caller's goroutine — no queue slot, no engine, no
// batching. It mirrors the engine path's semantics: NaN keys are
// rejected (the fallback must not quietly accept what the engine
// refuses) and the result is freshly allocated.
func (s *ServerOf[E]) sortSequential(ctx context.Context, keys []E) ([]E, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, k := range keys {
		if element.IsNaN(k) {
			return nil, fmt.Errorf("serve: keys[%d] is NaN; NaN keys are not sortable", i)
		}
	}
	out := append([]E(nil), keys...)
	localsort.RadixSort(out)
	return out, nil
}

// emit sends a serve-level event to the configured telemetry sink.
// req carries the owning request ID(s) — comma-joined for a batch,
// "" for events that are not request-scoped (breaker transitions).
func (s *ServerOf[E]) emit(kind, detail, req string) {
	if sink := s.cfg.Engine.Obs; sink != nil {
		sink.Emit(obs.Event{Kind: kind, Proc: -1, Detail: detail, Wall: time.Now().UnixNano(), Req: req})
	}
}

// retryAfterSeconds derives the honest Retry-After hint for a refused
// request: an open breaker's remaining cooldown, or — for overload —
// the time the batcher needs to drain the current queue (one MaxDelay
// window per MaxBatch requests). Zero means no hint; the floor is 1s,
// the header's resolution.
func (s *ServerOf[E]) retryAfterSeconds(err error) int {
	var d time.Duration
	switch {
	case errors.Is(err, ErrBreakerOpen):
		if s.breaker != nil {
			d = s.breaker.RetryAfter()
		}
	case errors.Is(err, ErrOverloaded):
		batches := len(s.queue)/s.cfg.MaxBatch + 1
		d = time.Duration(batches) * s.cfg.MaxDelay
	default:
		return 0
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// sortEngine is the parallel path: breaker admission, the bounded
// queue, and the batching/executor pipeline. tr travels with the
// request and accrues its stage breakdown hop by hop.
func (s *ServerOf[E]) sortEngine(ctx context.Context, keys []E, tr *reqTrack) ([]E, error) {
	if len(keys) == 0 {
		return []E{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.breaker != nil && !s.breaker.Allow() {
		s.m.failFast()
		return nil, ErrBreakerOpen
	}
	var mx uint64
	for _, k := range keys {
		if b := element.Bits(k); b > mx {
			mx = b
		}
	}
	req := &request[E]{
		keys:   keys,
		maxKey: mx,
		ctx:    ctx,
		enq:    time.Now(),
		id:     tr.id,
		tr:     tr,
		res:    make(chan response[E], 1),
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.m.reject()
		s.emit(obs.EventOverload, "admission queue full", tr.id)
		return nil, ErrOverloaded
	}

	select {
	case r := <-req.res:
		return r.sorted, r.err
	case <-ctx.Done():
		// The request stays in the pipeline; the worker's send into the
		// buffered res channel cannot block, and its result is dropped.
		// The pipeline still owns the track — mark it abandoned so its
		// durations are never read concurrently.
		tr.abandoned = true
		return nil, ctx.Err()
	}
}

// Close stops admission (new Sorts get ErrClosed), drains requests
// already queued — they complete normally — waits for in-flight runs,
// and releases the workers. Safe to call once.
func (s *ServerOf[E]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	s.cancel()
	s.pool.Close()
	return nil
}

// dispatch is the batching loop: it pulls the head request, holds the
// window open for compatible companions, and hands the batch to an
// executor. Executor handoff is an unbuffered send, so when every
// executor is busy the dispatcher blocks and arriving requests pile
// into the bounded queue — which is where overload becomes visible as
// ErrOverloaded at the door.
func (s *ServerOf[E]) dispatch() {
	defer s.wg.Done()
	defer close(s.exec)
	var pending *request[E] // head of the NEXT batch, parked by incompatibility
	for {
		var first *request[E]
		if pending != nil {
			first, pending = pending, nil
		} else {
			r, ok := <-s.queue
			if !ok {
				return
			}
			// One monotonic hop reading per pull closes the queue stage;
			// time until the engine starts accrues to the batch stage.
			r.tr.advance(obs.StageQueue)
			first = r
		}
		if first.ctx.Err() != nil {
			first.finish(s.m, nil, first.ctx.Err())
			continue
		}
		batch := []*request[E]{first}
		if s.cfg.MaxBatch > 1 && batchable(first, s.cfg) {
			timer := time.NewTimer(s.cfg.MaxDelay)
			total := len(first.keys)
			mx := first.maxKey
			drained := false
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						drained = true
						break collect
					}
					r.tr.advance(obs.StageQueue)
					if r.ctx.Err() != nil {
						r.finish(s.m, nil, r.ctx.Err())
						continue
					}
					if !fits(batch, total, mx, r, s.cfg) {
						pending = r
						break collect
					}
					batch = append(batch, r)
					total += len(r.keys)
					if r.maxKey > mx {
						mx = r.maxKey
					}
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
			s.exec <- batch
			if drained {
				return
			}
			continue
		}
		s.exec <- batch
	}
}

// batchable reports whether a request may share a run at all: the
// element type must admit tagging (an integer key image — floats never
// batch, because OR-ing a tag into float bits reorders values), its
// tag needs at least one high bit of headroom, and its size must fit
// under the batch cap. KV64 needs strict headroom: its padding
// sentinel is compared by key only, so no tagged key may ever equal
// the all-ones padding key (see fits).
func batchable[E element.Elem](r *request[E], cfg Config) bool {
	if len(r.keys) > cfg.MaxBatchKeys {
		return false
	}
	kb := uint(element.KeyBits[E]())
	switch element.TypeOf[E]() {
	case element.TF32, element.TF64:
		return false
	case element.TKV64:
		return r.maxKey < 1<<(kb-1)-1
	default:
		return r.maxKey < 1<<(kb-1)
	}
}

// fits reports whether adding r to batch keeps the tag-bit scheme
// sound: with k members, tags need b = bits.Len(k-1) high bits, so
// every member's keys must fit in the remaining KeyBits-b bits, and
// the summed size must stay under MaxBatchKeys. For KV64 the bound is
// strict (maxKey < mask, not ≤): padding sorts by key alone, so a
// tagged record whose key equaled the all-ones padding key could swap
// places with padding under the unstable sort and leak a padding
// record into the last request's result.
func fits[E element.Elem](batch []*request[E], total int, mx uint64, r *request[E], cfg Config) bool {
	if !batchable(r, cfg) || total+len(r.keys) > cfg.MaxBatchKeys {
		return false
	}
	k := len(batch) + 1
	b := uint(bits.Len(uint(k - 1)))
	kb := uint(element.KeyBits[E]())
	if r.maxKey > mx {
		mx = r.maxKey
	}
	limit := uint64(1) << (kb - b)
	if element.TypeOf[E]() == element.TKV64 {
		limit-- // strict: stay below the padding key, not just the tag
	}
	return mx < limit
}

// worker executes batches until the dispatcher closes the feed.
func (s *ServerOf[E]) worker() {
	defer s.wg.Done()
	var slab []E // per-worker batch staging, grow-only
	for batch := range s.exec {
		s.runBatch(batch, &slab)
	}
}
