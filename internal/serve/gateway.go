package serve

import (
	"context"
	"fmt"

	"parbitonic/element"
)

// Versioned binary frame, v1. The sort-server's original binary body
// was a bare little-endian uint32 stream with no header; the versioned
// frame prefixes an 8-byte header so a request can name its element
// type:
//
//	[0:4]  magic "PBSF"
//	[4]    version (currently 1)
//	[5]    element type byte (element.Type values: 0=u32, 1=u64,
//	       2=f32, 3=f64, 4=kv64)
//	[6:8]  reserved, must be zero
//	[8:]   payload: little-endian elements (kv64: key word then
//	       payload word)
//
// A body that does not start with the magic is decoded as a legacy
// unversioned u32 stream, so old clients keep working unchanged. (The
// one collision: a legacy stream whose first key is 0x46534250 —
// "PBSF" little-endian — reads as a frame header; such a client must
// switch to versioned frames.) Responses mirror the request: versioned
// in, versioned out.
const (
	frameVersion   = 1
	frameHeaderLen = 8
)

var frameMagic = [4]byte{'P', 'B', 'S', 'F'}

// FrameError describes a malformed versioned binary frame. The HTTP
// layer maps it to status 400 with the machine-readable Code in the
// JSON error body, so clients can distinguish (say) an element-width
// mismatch from a bad version without parsing prose.
type FrameError struct {
	// Code is one of "truncated-header", "bad-version",
	// "bad-elem-type", "bad-reserved", "width-mismatch".
	Code string
	// Detail is the human-readable explanation.
	Detail string
}

// Error formats the failure with its code.
func (e *FrameError) Error() string {
	return fmt.Sprintf("serve: bad frame (%s): %s", e.Code, e.Detail)
}

// decodeFrame classifies a binary body: a versioned frame yields its
// element type and payload, anything else is a legacy u32 stream
// (versioned == false). Payload width is validated later by the typed
// server, which knows its element width.
func decodeFrame(raw []byte) (t element.Type, payload []byte, versioned bool, err error) {
	if len(raw) < len(frameMagic) || [4]byte(raw[:4]) != frameMagic {
		return 0, raw, false, nil
	}
	if len(raw) < frameHeaderLen {
		return 0, nil, true, &FrameError{Code: "truncated-header", Detail: fmt.Sprintf("frame header is %d bytes, need %d", len(raw), frameHeaderLen)}
	}
	if raw[4] != frameVersion {
		return 0, nil, true, &FrameError{Code: "bad-version", Detail: fmt.Sprintf("frame version %d, this server speaks %d", raw[4], frameVersion)}
	}
	t = element.Type(raw[5])
	if t.Width() == 0 {
		return 0, nil, true, &FrameError{Code: "bad-elem-type", Detail: fmt.Sprintf("unknown element type byte %d", raw[5])}
	}
	if raw[6] != 0 || raw[7] != 0 {
		return 0, nil, true, &FrameError{Code: "bad-reserved", Detail: "reserved header bytes must be zero"}
	}
	return t, raw[frameHeaderLen:], true, nil
}

// frameHeader renders the v1 header for a response of element type t.
func frameHeader(t element.Type) []byte {
	h := make([]byte, frameHeaderLen)
	copy(h, frameMagic[:])
	h[4] = frameVersion
	h[5] = byte(t)
	return h
}

// elemServer is the type-erased face of a ServerOf: the Gateway routes
// each versioned frame to the server of its element type through it.
type elemServer interface {
	sortPayload(ctx context.Context, payload []byte) (out []byte, degraded bool, err error)
	retryAfterSeconds(err error) int
	Metrics() *Metrics
	poolStats() PoolStats
	Close() error
}

// sortPayload decodes a frame payload into elements, sorts them
// through the service, and re-encodes, reporting whether the
// degraded-mode fallback served the request. A payload whose length is
// not a multiple of the element width is rejected with a
// width-mismatch FrameError before touching the queue.
func (s *ServerOf[E]) sortPayload(ctx context.Context, payload []byte) ([]byte, bool, error) {
	w := element.Width[E]()
	if len(payload)%w != 0 {
		return nil, false, &FrameError{
			Code:   "width-mismatch",
			Detail: fmt.Sprintf("payload length %d is not a multiple of the %d-byte %s element", len(payload), w, element.TypeOf[E]()),
		}
	}
	keys := make([]E, len(payload)/w)
	for i := range keys {
		keys[i] = element.Get[E](payload[i*w:])
	}
	sorted, degraded, err := s.SortDegradable(ctx, keys)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, len(sorted)*w)
	for i, e := range sorted {
		element.Put(out[i*w:], e)
	}
	return out, degraded, nil
}

// poolStats exposes the pool counters through the type-erased face.
func (s *ServerOf[E]) poolStats() PoolStats { return s.pool.Stats() }

// Gateway fronts one typed server per element type behind a single
// HTTP handler (NewGatewayHandler): versioned binary frames route to
// the server of their element type; JSON and legacy binary requests go
// to the u32 server. All servers share one Config (and therefore one
// engine shape), but each has its own pool, queue and batcher —
// batches never mix element types.
type Gateway struct {
	u32     *Server
	servers map[element.Type]elemServer
	order   []element.Type // scrape/stats order, deterministic
}

// NewGateway starts one server per element type from the shared cfg.
// On any constructor error the already-started servers are closed.
func NewGateway(cfg Config) (*Gateway, error) {
	g := &Gateway{servers: make(map[element.Type]elemServer)}
	add := func(t element.Type, s elemServer, err error) error {
		if err != nil {
			g.Close()
			return fmt.Errorf("serve: gateway %s server: %w", t, err)
		}
		g.servers[t] = s
		g.order = append(g.order, t)
		return nil
	}
	u32, err := NewOf[uint32](cfg)
	if err := add(element.TU32, u32, err); err != nil {
		return nil, err
	}
	g.u32 = u32
	u64s, err := NewOf[uint64](cfg)
	if err := add(element.TU64, u64s, err); err != nil {
		return nil, err
	}
	f32s, err := NewOf[float32](cfg)
	if err := add(element.TF32, f32s, err); err != nil {
		return nil, err
	}
	f64s, err := NewOf[float64](cfg)
	if err := add(element.TF64, f64s, err); err != nil {
		return nil, err
	}
	kvs, err := NewOf[element.KV64](cfg)
	if err := add(element.TKV64, kvs, err); err != nil {
		return nil, err
	}
	return g, nil
}

// U32 returns the gateway's uint32 server — the one JSON and legacy
// binary requests are served by.
func (g *Gateway) U32() *Server { return g.u32 }

// Close shuts every typed server down (graceful drain each).
func (g *Gateway) Close() error {
	for _, s := range g.servers {
		if s != nil {
			s.Close()
		}
	}
	return nil
}
