package serve

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"parbitonic"
)

// benchKeys builds the request corpus once: many independent 1k-key
// requests, keys small enough to batch.
func benchKeys(n, size int) [][]uint32 {
	rng := rand.New(rand.NewSource(42))
	out := make([][]uint32, n)
	for i := range out {
		out[i] = randKeys(rng, size, 1<<24)
	}
	return out
}

// BenchmarkServeBatched is the throughput story of the serve layer:
// 1k-key requests through the batching server (pooled engines, one
// padded run per window) — compare with
// BenchmarkServePerRequestEngine below, which builds an engine per
// request the way naive service code would.
func BenchmarkServeBatched(b *testing.B) {
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxBatch: 32,
		MaxDelay: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	corpus := benchKeys(256, 1024)
	b.SetParallelism(max(1, 128/runtime.GOMAXPROCS(0)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Sort(context.Background(), corpus[i%len(corpus)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkServePerRequestEngine is the baseline the batching server
// is measured against: every request pays engine construction and a
// full solo run.
func BenchmarkServePerRequestEngine(b *testing.B) {
	cfg := parbitonic.Config{Processors: 4, Backend: parbitonic.Native}
	corpus := benchKeys(256, 1024)
	b.SetParallelism(max(1, 128/runtime.GOMAXPROCS(0)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e, err := parbitonic.NewEngine(cfg)
			if err != nil {
				b.Error(err)
				return
			}
			keys := append([]uint32(nil), corpus[i%len(corpus)]...)
			if _, err := e.SortPadded(keys); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
