package serve_test

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"parbitonic"
	"parbitonic/internal/serve"
)

// ExampleServer_batchedSort shows the service front door: concurrent
// small Sort calls are transparently coalesced into one padded engine
// run, and each caller gets back exactly its own sorted keys.
func ExampleServer_batchedSort() {
	srv, err := serve.New(serve.Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxBatch: 8,
		MaxDelay: 10 * time.Millisecond, // hold the window open for companions
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	inputs := [][]uint32{
		{5, 1, 4},
		{9, 8, 7, 6},
		{2, 3},
	}
	results := make([][]uint32, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in []uint32) {
			defer wg.Done()
			out, err := srv.Sort(context.Background(), in)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = out
		}(i, in)
	}
	wg.Wait()
	fmt.Println(results[0], results[1], results[2])
	// Output: [1 4 5] [6 7 8 9] [2 3]
}

// ExamplePool shows direct engine pooling without the server: repeated
// same-shape sorts reuse one engine instead of rebuilding workers and
// exchange buffers per request.
func ExamplePool() {
	pool := serve.NewPool(2)
	cfg := parbitonic.Config{Processors: 2, Backend: parbitonic.Native}

	for i := 0; i < 3; i++ {
		eng, err := pool.Get(cfg, 8)
		if err != nil {
			log.Fatal(err)
		}
		keys := []uint32{4, 3, 2, 1, 8, 7, 6, 5}
		if _, err := eng.Sort(keys); err != nil {
			log.Fatal(err)
		}
		pool.Put(eng, 8, true)
		if i == 0 {
			fmt.Println(keys)
		}
	}
	st := pool.Stats()
	fmt.Printf("gets=%d hits=%d idle=%d\n", st.Gets, st.Hits, st.Idle)
	// Output:
	// [1 2 3 4 5 6 7 8]
	// gets=3 hits=2 idle=1
}
