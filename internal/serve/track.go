package serve

import (
	"time"

	"parbitonic/internal/obs"
)

// reqTrack is one request's stage-latency accumulator, created at
// admission and carried with the request through the pipeline. Time is
// attributed hop-by-hop: each advance takes ONE monotonic clock
// reading and charges the interval since the previous hop to a stage —
// never by re-deriving deltas from stored wall timestamps, which can
// go negative when a request re-enters a stage across retry re-queues.
// Externally measured intervals (engine attempts, retry backoff) are
// folded in with add, which accumulates — a retried request simply
// charges the engine stage more than once.
//
// Ownership moves with the request: admission (caller goroutine) →
// dispatcher → executor worker → back to the caller with the response.
// Each owner touches it exclusively, with the response channel
// providing the synchronization; the one unsynchronized path — the
// caller abandoning a request whose worker still holds the track —
// sets abandoned (a caller-only field) and never reads the durations.
type reqTrack struct {
	id        string
	keys      int
	wallStart time.Time // wall-clock admission instant, for display
	enq       time.Time // monotonic anchor; total latency = Since(enq)
	mark      time.Time // previous hop's monotonic reading
	dur       obs.StageBreakdown
	neg       int // readings clamped from negative (monotonic clock: always 0)

	// abandoned is set by the caller when it gives up on a request the
	// pipeline still owns (context done while queued or running); the
	// track's durations are then never read again.
	abandoned bool
}

// newReqTrack anchors a track at the admission instant.
func newReqTrack(id string, keys int) *reqTrack {
	now := time.Now()
	return &reqTrack{id: id, keys: keys, wallStart: now, enq: now, mark: now}
}

// advance charges the interval since the previous hop to stage s,
// using a single monotonic reading, and moves the hop mark.
func (t *reqTrack) advance(s obs.Stage) {
	now := time.Now()
	d := now.Sub(t.mark)
	if d < 0 {
		d = 0
		t.neg++
	}
	t.dur[s] += d
	t.mark = now
}

// add folds an externally measured interval into stage s (engine
// attempt wall time, retry backoff sleep). Negative inputs are clamped
// and counted like a bad hop reading.
func (t *reqTrack) add(s obs.Stage, d time.Duration) {
	if d < 0 {
		t.neg++
		return
	}
	t.dur[s] += d
}

// reset moves the hop mark to now without charging the elapsed
// interval — used after a window whose time was already folded in via
// add, so it is not double-counted by the next advance.
func (t *reqTrack) reset() { t.mark = time.Now() }

// total returns the request's end-to-end latency so far.
func (t *reqTrack) total() time.Duration { return time.Since(t.enq) }
