package serve

import (
	"encoding/json"
	"html/template"
	"net/http"
	"time"

	"parbitonic/internal/obs"
	"parbitonic/internal/resilience"
)

// The /debug/sortz ops surface: one page answering "what is the sort
// service doing right now, and where did the slow requests spend their
// time" — recent and slowest requests with per-stage breakdowns,
// breaker and pool state, active engine runs, tail estimates, SLO burn
// and runtime health. HTML for humans, ?format=json for machines (the
// CI load-smoke gate consumes the JSON). Durations in the JSON are
// nanoseconds (Go's time.Duration encoding).

// SortzSLO is the SLO section of one element server's sortz entry.
type SortzSLO struct {
	// ThresholdMS is the latency objective bound in milliseconds.
	ThresholdMS float64 `json:"threshold_ms"`
	// Target is the fraction of requests that must meet the bound.
	Target float64 `json:"target"`
	// BurnRate is the current error-budget burn over the sliding window.
	BurnRate float64 `json:"burn_rate"`
	// Ready is false under sustained burn (healthz then reports 503).
	Ready bool `json:"ready"`
}

// SortzElem is one element server's sortz entry.
type SortzElem struct {
	// Elem names the server's element type (u32, u64, ...).
	Elem string `json:"elem"`
	// QueueDepth is the admission queue's occupancy at snapshot time.
	QueueDepth int `json:"queue_depth"`
	// Breaker is the circuit breaker position ("none" when disabled).
	Breaker string `json:"breaker"`
	// Pool is the engine pool's counters.
	Pool PoolStats `json:"pool"`
	// Requests counts completed requests by outcome.
	Requests map[string]float64 `json:"requests"`
	// Retries counts engine runs retried after transient failures.
	Retries float64 `json:"retries"`
	// Degraded counts requests served by the sequential fallback.
	Degraded float64 `json:"degraded"`
	// P50, P95 and P99 are the streaming end-to-end latency tail
	// estimates in seconds.
	P50 float64 `json:"p50_seconds"`
	// P95 is the 95th-percentile estimate in seconds.
	P95 float64 `json:"p95_seconds"`
	// P99 is the 99th-percentile estimate in seconds.
	P99 float64 `json:"p99_seconds"`
	// Negatives counts stage readings clamped from negative (must be 0).
	Negatives uint64 `json:"negative_stage_readings"`
	// SLO is the objective section; nil when none is configured.
	SLO *SortzSLO `json:"slo,omitempty"`
	// Active lists the engine runs in flight at snapshot time.
	Active []ActiveBatch `json:"active_batches"`
	// Slowest lists the slowest completed requests since start.
	Slowest []RequestRecord `json:"slowest"`
	// Recent lists the last completed requests, newest first.
	Recent []RequestRecord `json:"recent"`
}

// SortzSnapshot is the machine-readable /debug/sortz payload.
type SortzSnapshot struct {
	// Now is the wall-clock snapshot instant.
	Now time.Time `json:"now"`
	// Runtime holds the Go runtime health signals (heap, goroutines,
	// GC pause and scheduler latency tails).
	Runtime map[string]any `json:"runtime"`
	// Elems holds one entry per element server, in gateway order.
	Elems []SortzElem `json:"elems"`
}

// sortzSnapshot assembles the live snapshot across the front's servers.
func sortzSnapshot(f *front, rh *obs.RuntimeHealth) SortzSnapshot {
	snap := SortzSnapshot{Now: time.Now(), Runtime: rh.Snapshot()}
	for _, t := range f.order {
		m := f.servers[t].Metrics()
		p50, p95, p99 := m.Stages().Quantiles()
		e := SortzElem{
			Elem:       m.Elem(),
			QueueDepth: m.queueDepth(),
			Breaker:    breakerName(m),
			Pool:       m.pool.Stats(),
			Requests:   requestCounts(m),
			Retries:    m.RetryCount(),
			Degraded:   m.DegradedCount(),
			P50:        p50,
			P95:        p95,
			P99:        p99,
			Negatives:  m.Stages().Negatives(),
			Active:     m.ActiveBatches(),
			Slowest:    m.SlowestRequests(),
			Recent:     m.RecentRequests(),
		}
		if cfg, ok := m.Stages().SLOConfigured(); ok {
			ready, burn := m.Stages().SLOReady()
			e.SLO = &SortzSLO{
				ThresholdMS: float64(cfg.Threshold) / float64(time.Millisecond),
				Target:      cfg.Target,
				BurnRate:    burn,
				Ready:       ready,
			}
		}
		snap.Elems = append(snap.Elems, e)
	}
	return snap
}

func breakerName(m *Metrics) string {
	if m.breakerState == nil {
		return "none"
	}
	return resilience.BreakerState(m.breakerState()).String()
}

func requestCounts(m *Metrics) map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}

// handleSortz serves the ops page: JSON for ?format=json, HTML
// otherwise. Request IDs are client-supplied strings; the HTML path
// renders through html/template so they cannot inject markup.
func handleSortz(f *front, rh *obs.RuntimeHealth, w http.ResponseWriter, r *http.Request) {
	snap := sortzSnapshot(f, rh)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	sortzTmpl.Execute(w, snap)
}

// sortzFuncs formats durations and instants for the HTML view.
var sortzFuncs = template.FuncMap{
	"dur": func(d time.Duration) string { return d.Round(time.Microsecond).String() },
	"stage": func(b obs.StageBreakdown, i int) string {
		return b[obs.Stage(i)].Round(time.Microsecond).String()
	},
	"when": func(t time.Time) string { return t.Format("15:04:05.000") },
	"ms": func(v float64) string {
		return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
	},
}

var sortzTmpl = template.Must(template.New("sortz").Funcs(sortzFuncs).Parse(`<!doctype html>
<html><head><title>sortz</title><style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
.bad { color: #b00; font-weight: bold; } .ok { color: #080; }
.meta { color: #666; }
</style></head><body>
<h1>sortz — sort service ops</h1>
<p class="meta">{{when .Now}} · heap {{index .Runtime "heap_bytes"}} B · goroutines {{index .Runtime "goroutines"}} · gc p99 {{index .Runtime "gc_pause_p99_s"}}s · sched p99 {{index .Runtime "sched_latency_p99_s"}}s</p>
{{range .Elems}}
<h2>elem {{.Elem}}</h2>
<p>queue {{.QueueDepth}} · breaker {{.Breaker}} ·
pool idle {{.Pool.Idle}} / quarantined {{.Pool.Quarantined}} ·
retries {{.Retries}} · degraded {{.Degraded}} ·
p50 {{ms .P50}} · p95 {{ms .P95}} · p99 {{ms .P99}} ·
negative stage readings {{if .Negatives}}<span class="bad">{{.Negatives}}</span>{{else}}<span class="ok">0</span>{{end}}
{{with .SLO}} · SLO {{.Target}} under {{.ThresholdMS}}ms: burn {{printf "%.2f" .BurnRate}} {{if .Ready}}<span class="ok">ready</span>{{else}}<span class="bad">UNREADY</span>{{end}}{{end}}</p>
{{if .Active}}
<h3>active batches</h3>
<table><tr><th>seq</th><th>keys</th><th class="l">started</th><th class="l">requests</th></tr>
{{range .Active}}<tr><td>{{.Seq}}</td><td>{{.Keys}}</td><td class="l">{{when .Started}}</td><td class="l">{{range .Requests}}{{.}} {{end}}</td></tr>
{{end}}</table>
{{end}}
<h3>slowest requests</h3>
<table><tr><th class="l">id</th><th>keys</th><th class="l">outcome</th><th class="l">start</th><th>total</th><th>queue</th><th>batch</th><th>engine</th><th>retry</th><th>copyout</th></tr>
{{range .Slowest}}<tr><td class="l">{{.ID}}</td><td>{{.Keys}}</td><td class="l">{{.Outcome}}{{if .Degraded}} (degraded){{end}}{{if .Retried}} (retried){{end}}</td><td class="l">{{when .Start}}</td><td>{{dur .Total}}</td><td>{{stage .Stages 0}}</td><td>{{stage .Stages 1}}</td><td>{{stage .Stages 2}}</td><td>{{stage .Stages 3}}</td><td>{{stage .Stages 4}}</td></tr>
{{end}}</table>
<h3>recent requests</h3>
<table><tr><th class="l">id</th><th>keys</th><th class="l">outcome</th><th class="l">start</th><th>total</th><th>queue</th><th>batch</th><th>engine</th><th>retry</th><th>copyout</th></tr>
{{range .Recent}}<tr><td class="l">{{.ID}}</td><td>{{.Keys}}</td><td class="l">{{.Outcome}}{{if .Degraded}} (degraded){{end}}{{if .Retried}} (retried){{end}}</td><td class="l">{{when .Start}}</td><td>{{dur .Total}}</td><td>{{stage .Stages 0}}</td><td>{{stage .Stages 1}}</td><td>{{stage .Stages 2}}</td><td>{{stage .Stages 3}}</td><td>{{stage .Stages 4}}</td></tr>
{{end}}</table>
{{end}}
</body></html>
`))
