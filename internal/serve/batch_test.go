package serve

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"parbitonic/internal/obs"
)

func mkReq(keys []uint32) *request[uint32] {
	var mx uint32
	for _, k := range keys {
		if k > mx {
			mx = k
		}
	}
	tr := newReqTrack("test", len(keys))
	return &request[uint32]{
		keys:   keys,
		maxKey: uint64(mx),
		ctx:    context.Background(),
		enq:    time.Now(),
		id:     tr.id,
		tr:     tr,
		res:    make(chan response[uint32], 1),
	}
}

func TestTagShift(t *testing.T) {
	cases := []struct {
		k     int
		shift uint
	}{
		{2, 31}, {3, 30}, {4, 30}, {5, 29}, {8, 29}, {9, 28}, {16, 28}, {17, 27},
	}
	for _, c := range cases {
		if got := tagShift[uint32](c.k); got != c.shift {
			t.Errorf("tagShift(%d) = %d, want %d", c.k, got, c.shift)
		}
	}
}

// TestFitsTagHeadroom pins the admission rule at its bit boundaries:
// two requests using all 31 low bits batch together (1 tag bit), but a
// third member needs 2 tag bits, which those keys no longer clear.
func TestFitsTagHeadroom(t *testing.T) {
	cfg := Config{}.withDefaults()
	big := mkReq([]uint32{1<<31 - 1}) // max key that is batchable at all
	if !batchable(big, cfg) {
		t.Fatal("1<<31-1 must be batchable")
	}
	if !fits([]*request[uint32]{big}, 1, big.maxKey, mkReq([]uint32{1<<31 - 1}), cfg) {
		t.Error("two 31-bit requests must fit (1 tag bit)")
	}
	batch2 := []*request[uint32]{big, big}
	if fits(batch2, 2, big.maxKey, mkReq([]uint32{7}), cfg) {
		t.Error("a third member needs 2 tag bits; 31-bit keys in the batch must block it")
	}
	small := mkReq([]uint32{1<<30 - 1})
	if !fits([]*request[uint32]{small, small}, 2, small.maxKey, mkReq([]uint32{5}), cfg) {
		t.Error("three 30-bit requests must fit (2 tag bits)")
	}
	if batchable(mkReq([]uint32{1 << 31}), cfg) {
		t.Error("a key using bit 31 leaves no tag headroom and must not be batchable")
	}

	// Size cap: summed keys beyond MaxBatchKeys must not fit.
	cfg.MaxBatchKeys = 4
	a := mkReq([]uint32{1, 2, 3})
	if fits([]*request[uint32]{a}, 3, a.maxKey, mkReq([]uint32{4, 5}), cfg) {
		t.Error("batch exceeding MaxBatchKeys must not fit")
	}
}

// TestPackSplitRoundTrip drives packBatch -> sort -> splitBatch
// directly (no server) and checks every member gets exactly its own
// sorted multiset back, duplicates across requests included.
func TestPackSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batch := []*request[uint32]{
		mkReq([]uint32{5, 1, 5, 0, 9}),
		mkReq([]uint32{5, 5, 5}), // duplicates shared with member 0
		mkReq(randKeys(rng, 100, 1<<20)),
		mkReq([]uint32{0}),
	}
	total := 0
	for _, r := range batch {
		total += len(r.keys)
	}
	shift := tagShift[uint32](len(batch))
	buf := make([]uint32, 128) // > total, exercises padding
	packBatch(buf, batch, shift, total)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })

	m := newMetrics("u32", func() int { return 0 }, NewPool(1), obs.SLOConfig{})
	splitBatch(buf, batch, shift, m)
	for j, r := range batch {
		got := (<-r.res).sorted
		want := sortedRef(r.keys)
		if len(got) != len(want) {
			t.Fatalf("member %d: got %d keys, want %d", j, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("member %d: wrong key at %d: got %d want %d", j, i, got[i], want[i])
			}
		}
	}
}

// TestBatchNoRetention is the regression test for the pooled-buffer
// aliasing bug class: after splitBatch delivers results, scribbling
// over the shared sort buffer must not disturb what callers received —
// results must be copies, never views into pooled memory.
func TestBatchNoRetention(t *testing.T) {
	batch := []*request[uint32]{
		mkReq([]uint32{3, 1, 2}),
		mkReq([]uint32{6, 4, 5}),
	}
	shift := tagShift[uint32](len(batch))
	buf := make([]uint32, 8)
	packBatch(buf, batch, shift, 6)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	m := newMetrics("u32", func() int { return 0 }, NewPool(1), obs.SLOConfig{})
	splitBatch(buf, batch, shift, m)

	outs := [][]uint32{(<-batch[0].res).sorted, (<-batch[1].res).sorted}
	for i := range buf {
		buf[i] = 0xDEADBEEF // pooled buffer reused by the next batch
	}
	want := [][]uint32{{1, 2, 3}, {4, 5, 6}}
	for j := range want {
		for i := range want[j] {
			if outs[j][i] != want[j][i] {
				t.Fatalf("member %d result corrupted by buffer reuse at %d: %v", j, i, outs[j])
			}
		}
	}
}

// TestJointContextCancelsWhenAllAbandon: the batch context must stay
// live while any member still waits, and die once every member's
// context is done.
func TestJointContextCancelsWhenAllAbandon(t *testing.T) {
	s := &Server{ctx: context.Background()}
	c1, cancel1 := context.WithCancel(context.Background())
	c2, cancel2 := context.WithCancel(context.Background())
	batch := []*request[uint32]{mkReq(nil), mkReq(nil)}
	batch[0].ctx, batch[1].ctx = c1, c2
	ctx, stop := s.jointContext(batch)
	defer stop()

	cancel1()
	select {
	case <-ctx.Done():
		t.Fatal("joint context died while a member still waits")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("joint context survived all members abandoning")
	}
}

// TestJointContextDeadline: when every member has a deadline the joint
// context carries the LATEST one (no member is cut short; the batch
// dies when no one is left waiting anyway).
func TestJointContextDeadline(t *testing.T) {
	s := &Server{ctx: context.Background()}
	near, cancelN := context.WithTimeout(context.Background(), 50*time.Millisecond)
	far, cancelF := context.WithDeadline(context.Background(), time.Now().Add(10*time.Second))
	defer cancelN()
	defer cancelF()
	batch := []*request[uint32]{mkReq(nil), mkReq(nil)}
	batch[0].ctx, batch[1].ctx = near, far
	ctx, stop := s.jointContext(batch)
	defer stop()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("joint context of all-deadline members must carry a deadline")
	}
	fd, _ := far.Deadline()
	if !d.Equal(fd) {
		t.Fatalf("joint deadline %v, want the latest member deadline %v", d, fd)
	}

	// A mixed batch (one member without a deadline) must not have one.
	batch[1].ctx = context.Background()
	ctx2, stop2 := s.jointContext(batch)
	defer stop2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("joint context must drop the deadline when a member has none")
	}
}
