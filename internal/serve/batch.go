package serve

import (
	"context"
	"math/bits"
	"sync/atomic"
	"time"

	"parbitonic"
)

// runBatch executes one batch on a pooled engine and delivers every
// member's result. slab is the worker's recycled staging buffer.
//
// Solo requests (len(batch) == 1) run untagged under the request's own
// context, riding the runtime's fail-safe cancellation directly.
// Multi-request batches are tag-encoded (see packBatch), run under a
// joint context that aborts only when every member has given up, and
// sliced back out with splitBatch — which copies results out of the
// slab, so nothing a caller holds aliases pooled memory.
func (s *Server) runBatch(batch []*request, slab *[]uint32) {
	s.m.observeBatch(len(batch))
	if len(batch) == 1 {
		s.runSolo(batch[0])
		return
	}

	ctx, stop := s.jointContext(batch)
	defer stop()

	total := 0
	for _, r := range batch {
		total += len(r.keys)
	}
	shift := tagShift(len(batch))
	padded := parbitonic.PaddedSize(total, s.cfg.Engine.Processors)
	if cap(*slab) < padded {
		*slab = make([]uint32, padded)
	}
	buf := (*slab)[:padded]
	packBatch(buf, batch, shift, total)

	eng, err := s.pool.Get(s.cfg.Engine, padded)
	if err == nil {
		_, err = eng.SortContext(ctx, buf)
		s.pool.Put(eng, padded)
	}
	if err != nil {
		for _, r := range batch {
			r.finish(s.m, nil, err)
		}
		return
	}
	splitBatch(buf, batch, shift, s.m)
}

// runSolo sorts one request on a pooled engine under its own context.
func (s *Server) runSolo(r *request) {
	out := append([]uint32(nil), r.keys...)
	padded := parbitonic.PaddedSize(len(out), s.cfg.Engine.Processors)
	eng, err := s.pool.Get(s.cfg.Engine, padded)
	if err == nil {
		_, err = eng.SortPaddedContext(r.ctx, out)
		s.pool.Put(eng, padded)
	}
	if err != nil {
		r.finish(s.m, nil, err)
		return
	}
	r.finish(s.m, out, nil)
}

// jointContext derives the context a multi-request batch runs under:
// it is canceled when the server closes, when every member's context
// is done (no one is left to collect the result), or — when every
// member carries a deadline — at the latest of those deadlines.
func (s *Server) jointContext(batch []*request) (context.Context, func()) {
	base := s.ctx
	latest := time.Time{}
	allDeadlines := true
	for _, r := range batch {
		d, ok := r.ctx.Deadline()
		if !ok {
			allDeadlines = false
			break
		}
		if d.After(latest) {
			latest = d
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if allDeadlines {
		ctx, cancel = context.WithDeadline(base, latest)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	remaining := int32(len(batch))
	stops := make([]func() bool, 0, len(batch))
	for _, r := range batch {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if atomic.AddInt32(&remaining, -1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// tagShift returns the bit position the request tag occupies for a
// k-request batch: tags need b = bits.Len(k-1) high bits, keys keep
// the low 32-b. The dispatcher's fits() guarantees every member's
// keys clear the shift.
func tagShift(k int) uint {
	return 32 - uint(bits.Len(uint(k-1)))
}

// packBatch writes the tag-encoded concatenation of the batch into
// buf[:total] — request j's key x becomes j<<shift | x — and fills
// buf[total:] with maximal padding. Because tags occupy the high bits,
// sorting buf groups it by request in submission order, each group
// internally sorted; padding (all ones) sorts to the very end (it is
// ≥ every tagged value, including ties within the last group, which
// are value-identical and therefore interchangeable).
func packBatch(buf []uint32, batch []*request, shift uint, total int) {
	pos := 0
	for j, r := range batch {
		tag := uint32(j) << shift
		for _, k := range r.keys {
			buf[pos] = tag | k
			pos++
		}
	}
	for i := total; i < len(buf); i++ {
		buf[i] = ^uint32(0)
	}
}

// splitBatch slices the sorted tagged buffer back into per-request
// results: request j's sorted keys are the len(r.keys) entries
// starting at the prefix sum of earlier members, with the tag masked
// off. Results are COPIED out — buf is pooled worker memory and must
// not escape (see TestBatchNoRetention).
func splitBatch(buf []uint32, batch []*request, shift uint, m *Metrics) {
	mask := uint32(1)<<shift - 1
	pos := 0
	for _, r := range batch {
		out := make([]uint32, len(r.keys))
		for i := range out {
			out[i] = buf[pos+i] & mask
		}
		pos += len(r.keys)
		r.finish(m, out, nil)
	}
}
