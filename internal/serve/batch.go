package serve

import (
	"context"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/obs"
	"parbitonic/internal/resilience"
)

// runBatch executes one batch on a pooled engine and delivers every
// member's result. slab is the worker's recycled staging buffer.
//
// Solo requests (len(batch) == 1) run untagged under the request's own
// context, riding the runtime's fail-safe cancellation directly.
// Multi-request batches are tag-encoded (see packBatch), run under a
// joint context that aborts only when every member has given up, and
// sliced back out with splitBatch — which copies results out of the
// slab, so nothing a caller holds aliases pooled memory.
func (s *ServerOf[E]) runBatch(batch []*request[E], slab *[]E) {
	s.m.observeBatch(len(batch))
	if len(batch) == 1 {
		s.runSolo(batch[0])
		return
	}

	ctx, stop := s.jointContext(batch)
	defer stop()

	total := 0
	ids := make([]string, len(batch))
	for i, r := range batch {
		total += len(r.keys)
		ids[i] = r.id
	}
	// The joint context derives from the SERVER's context, not the
	// members' — so the member request IDs must be re-attached for the
	// engine run's telemetry to carry its owners.
	ctx = obs.WithRequestIDs(ctx, ids)
	reqs := strings.Join(ids, ",")
	bid := s.m.batchStart(ids, total)
	defer s.m.batchEnd(bid)

	shift := tagShift[E](len(batch))
	ecfg, padded, plan, perr := s.planFor(total)
	if perr != nil {
		for _, r := range batch {
			r.finish(s.m, nil, perr)
		}
		return
	}
	if cap(*slab) < padded {
		*slab = make([]E, padded)
	}
	buf := (*slab)[:padded]
	packBatch(buf, batch, shift, total)
	for _, r := range batch {
		r.tr.advance(obs.StageBatch)
	}

	err := s.runPooled(ctx, ecfg, padded, plan, func(eng *parbitonic.EngineOf[E]) error {
		_, err := eng.SortContext(ctx, buf)
		return err
	}, func() { packBatch(buf, batch, shift, total) },
		func(st obs.Stage, d time.Duration) {
			for _, r := range batch {
				r.tr.add(st, d)
			}
		}, reqs)
	// Engine and retry time were folded in via the note callback; move
	// every member's hop mark past the run so the next advance charges
	// only the copy-out.
	for _, r := range batch {
		r.tr.reset()
	}
	if err != nil {
		for _, r := range batch {
			r.finish(s.m, nil, err)
		}
		return
	}
	splitBatch(buf, batch, shift, s.m)
}

// runSolo sorts one request on a pooled engine under its own context.
func (s *ServerOf[E]) runSolo(r *request[E]) {
	bid := s.m.batchStart([]string{r.id}, len(r.keys))
	defer s.m.batchEnd(bid)
	out := append([]E(nil), r.keys...)
	ecfg, padded, plan, perr := s.planFor(len(out))
	if perr != nil {
		r.finish(s.m, nil, perr)
		return
	}
	r.tr.advance(obs.StageBatch)
	err := s.runPooled(r.ctx, ecfg, padded, plan, func(eng *parbitonic.EngineOf[E]) error {
		_, err := eng.SortPaddedContext(r.ctx, out)
		return err
	}, func() { copy(out, r.keys) },
		func(st obs.Stage, d time.Duration) { r.tr.add(st, d) }, r.id)
	r.tr.reset()
	if err != nil {
		r.finish(s.m, nil, err)
		return
	}
	r.tr.advance(obs.StageCopyOut)
	r.finish(s.m, out, nil)
}

// runPooled is the retrying engine-run loop every batch and solo run
// goes through. Each attempt checks an engine out of the pool,
// executes run, and hands the engine back with its health verdict —
// a panicked or verify-failing engine is quarantined (destroyed),
// never recycled — then feeds the outcome to the circuit breaker. A
// transient failure is re-attempted under the server's retry policy:
// a jittered exponential backoff that never sleeps past ctx's
// deadline budget, with repack restoring the input buffer first (a
// failed run leaves its contents unspecified).
// note reports measured intervals back to the batch's stage trackers —
// engine attempt wall time, retry backoff sleeps, and repack time
// (charged to the batch stage) — and reqs carries the owning request
// ID(s) for the retry/quarantine events.
//
// ecfg is the engine configuration this run pools under — the fixed
// Config.Engine, or the plan-resolved shape under Engine.Auto, in
// which case plan carries the autotuner decision: a successful native
// run feeds measured/predicted into the plan-drift histogram, so
// mispredictions are visible per server. Quarantine, eviction and the
// circuit breaker act on the outcome exactly as for a fixed shape —
// an unhealthy plan-chosen engine is destroyed, its shape's idle set
// evicted on a streak, and persistent failures open the breaker
// regardless of which plan picked the shape.
func (s *ServerOf[E]) runPooled(ctx context.Context, ecfg parbitonic.Config, padded int, plan *parbitonic.Plan, run func(*parbitonic.EngineOf[E]) error, repack func(), note func(obs.Stage, time.Duration), reqs string) error {
	for attempt := 0; ; attempt++ {
		eng, err := s.pool.Get(ecfg, padded)
		if err != nil {
			return err
		}
		t0 := time.Now()
		err = run(eng)
		elapsed := time.Since(t0)
		note(obs.StageEngine, elapsed)
		healthy := resilience.EngineHealthy(err)
		s.pool.Put(eng, padded, healthy)
		if !healthy {
			s.emit(obs.EventQuarantine, err.Error(), reqs)
		}
		s.recordBreaker(err, healthy)
		if err == nil {
			if plan != nil && ecfg.Backend == parbitonic.Native && plan.PredictedUS > 0 {
				// Simulated plans predict model time, not wall time —
				// only native runs have a comparable measurement.
				s.m.planObserve(float64(elapsed) / float64(time.Microsecond) / plan.PredictedUS)
			}
			return nil
		}
		d, ok := s.policy.ShouldRetry(ctx, attempt, err)
		if !ok {
			return err
		}
		s.m.retry()
		s.emit(obs.EventRetry, err.Error(), reqs)
		t1 := time.Now()
		serr := resilience.Sleep(ctx, d)
		note(obs.StageRetry, time.Since(t1))
		if serr != nil {
			return err
		}
		t2 := time.Now()
		repack()
		note(obs.StageBatch, time.Since(t2))
	}
}

// recordBreaker feeds one engine-run outcome to the circuit breaker.
// Only outcomes that say something about backend health count: success
// and engine-quarantining failures. Caller-driven aborts (cancel,
// deadline) are silent — a client hanging up must never open the
// breaker.
func (s *ServerOf[E]) recordBreaker(err error, healthy bool) {
	if s.breaker == nil {
		return
	}
	if err == nil {
		s.breaker.Record(false)
	} else if !healthy {
		s.breaker.Record(true)
	}
}

// jointContext derives the context a multi-request batch runs under:
// it is canceled when the server closes, when every member's context
// is done (no one is left to collect the result), or — when every
// member carries a deadline — at the latest of those deadlines.
func (s *ServerOf[E]) jointContext(batch []*request[E]) (context.Context, func()) {
	base := s.ctx
	latest := time.Time{}
	allDeadlines := true
	for _, r := range batch {
		d, ok := r.ctx.Deadline()
		if !ok {
			allDeadlines = false
			break
		}
		if d.After(latest) {
			latest = d
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if allDeadlines {
		ctx, cancel = context.WithDeadline(base, latest)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	remaining := int32(len(batch))
	stops := make([]func() bool, 0, len(batch))
	for _, r := range batch {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if atomic.AddInt32(&remaining, -1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// tagShift returns the bit position the request tag occupies for a
// k-request batch: tags need b = bits.Len(k-1) high bits of the key
// image, keys keep the low KeyBits-b. The dispatcher's fits()
// guarantees every member's keys clear the shift.
func tagShift[E element.Elem](k int) uint {
	return uint(element.KeyBits[E]()) - uint(bits.Len(uint(k-1)))
}

// packBatch writes the tag-encoded concatenation of the batch into
// buf[:total] — request j's key x becomes j<<shift | x (for records,
// the tag lands in the key word; the payload travels untouched) — and
// fills buf[total:] with maximal padding. Because tags occupy the high
// bits, sorting buf groups it by request in submission order, each
// group internally sorted; padding (all-ones key) sorts to the very
// end (the dispatcher guarantees it is ≥ every tagged value — strictly
// greater for records — and scalar ties with the last group are
// value-identical and therefore interchangeable). Only integer-image
// types reach here; the dispatcher never batches floats.
func packBatch[E element.Elem](buf []E, batch []*request[E], shift uint, total int) {
	switch element.TypeOf[E]() {
	case element.TU32:
		out := element.Cast[uint32](buf)
		pos := 0
		for j, r := range batch {
			tag := uint32(j) << shift
			for _, k := range element.Cast[uint32](r.keys) {
				out[pos] = tag | k
				pos++
			}
		}
	case element.TU64:
		out := element.Cast[uint64](buf)
		pos := 0
		for j, r := range batch {
			tag := uint64(j) << shift
			for _, k := range element.Cast[uint64](r.keys) {
				out[pos] = tag | k
				pos++
			}
		}
	case element.TKV64:
		out := element.Cast[element.KV64](buf)
		pos := 0
		for j, r := range batch {
			tag := uint64(j) << shift
			for _, k := range element.Cast[element.KV64](r.keys) {
				out[pos] = element.KV64{K: tag | k.K, V: k.V}
				pos++
			}
		}
	default:
		panic("serve: packBatch on an untaggable element type")
	}
	pad := element.Max[E]()
	for i := total; i < len(buf); i++ {
		buf[i] = pad
	}
}

// splitBatch slices the sorted tagged buffer back into per-request
// results: request j's sorted keys are the len(r.keys) entries
// starting at the prefix sum of earlier members, with the tag masked
// off the key image (record payloads pass through untouched). Results
// are COPIED out — buf is pooled worker memory and must not escape
// (see TestBatchNoRetention).
func splitBatch[E element.Elem](buf []E, batch []*request[E], shift uint, m *Metrics) {
	switch element.TypeOf[E]() {
	case element.TU32:
		in := element.Cast[uint32](buf)
		mask := uint32(1)<<shift - 1
		pos := 0
		for _, r := range batch {
			out := make([]E, len(r.keys))
			o := element.Cast[uint32](out)
			for i := range o {
				o[i] = in[pos+i] & mask
			}
			pos += len(r.keys)
			r.tr.advance(obs.StageCopyOut)
			r.finish(m, out, nil)
		}
	case element.TU64:
		in := element.Cast[uint64](buf)
		mask := uint64(1)<<shift - 1
		pos := 0
		for _, r := range batch {
			out := make([]E, len(r.keys))
			o := element.Cast[uint64](out)
			for i := range o {
				o[i] = in[pos+i] & mask
			}
			pos += len(r.keys)
			r.tr.advance(obs.StageCopyOut)
			r.finish(m, out, nil)
		}
	case element.TKV64:
		in := element.Cast[element.KV64](buf)
		mask := uint64(1)<<shift - 1
		pos := 0
		for _, r := range batch {
			out := make([]E, len(r.keys))
			o := element.Cast[element.KV64](out)
			for i := range o {
				o[i] = element.KV64{K: in[pos+i].K & mask, V: in[pos+i].V}
			}
			pos += len(r.keys)
			r.tr.advance(obs.StageCopyOut)
			r.finish(m, out, nil)
		}
	default:
		panic("serve: splitBatch on an untaggable element type")
	}
}
