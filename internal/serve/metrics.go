package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// latencyBuckets are the request-latency histogram upper bounds in
// seconds: log-spaced from 100µs (a pooled in-memory hit) to 10s.
var latencyBuckets = [...]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 10}

// sizeBuckets are the batch-size histogram upper bounds in requests.
var sizeBuckets = [...]float64{1, 2, 4, 8, 16, 32, 64}

// hist is a fixed-bucket cumulative histogram (Prometheus semantics):
// counts[i] counts observations ≤ bounds[i], overflow lands only in
// the implicit +Inf bucket.
type hist struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i]++
	}
	h.sum += v
	h.count++
}

// poolStatser decouples Metrics from the pool's element type: every
// PoolOf instantiation satisfies it.
type poolStatser interface {
	Stats() PoolStats
}

// Metrics aggregates the serve layer's operational signals — the ones
// engine-run telemetry (internal/obs) cannot see because they live in
// front of the runtime: admission rejections, queue depth, batch
// sizes, end-to-end request latency. Scrape via WriteProm (the HTTP
// handler merges it into /metrics); every series carries an elem label
// naming the server's element type, so the per-type servers behind a
// Gateway scrape as one valid exposition. All methods are safe for
// concurrent use.
type Metrics struct {
	mu       sync.Mutex
	elem     string             // element-type label value (u32, u64, ...)
	requests map[string]float64 // outcome -> count
	batches  float64
	batched  float64 // requests that shared a run with >= 1 companion
	retries  float64 // engine runs retried after a transient failure
	degraded float64 // requests served by the sequential fallback
	latency  *hist   // seconds, admission to response
	size     *hist   // requests per batch

	queueDepth   func() int // sampled at scrape time
	breakerState func() int // sampled at scrape time; nil = no breaker
	pool         poolStatser
}

func newMetrics(elem string, queueDepth func() int, pool poolStatser) *Metrics {
	return &Metrics{
		elem: elem,
		requests: map[string]float64{
			"ok": 0, "overloaded": 0, "canceled": 0, "deadline": 0,
			"verify-failure": 0, "breaker-open": 0, "error": 0,
		},
		latency:    newHist(latencyBuckets[:]),
		size:       newHist(sizeBuckets[:]),
		queueDepth: queueDepth,
		pool:       pool,
	}
}

// outcome classifies a completed request's error for the counter
// label set (pre-registered at zero in newMetrics so absent series
// never alias to zero series in alerts).
func outcome(err error) string {
	var verr *verify.Error
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, spmd.ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, spmd.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.As(err, &verr):
		return "verify-failure"
	default:
		return "error"
	}
}

func (m *Metrics) observeRequest(d time.Duration, err error) {
	m.mu.Lock()
	m.requests[outcome(err)]++
	m.latency.observe(d.Seconds())
	m.mu.Unlock()
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.requests["overloaded"]++
	m.mu.Unlock()
}

// failFast counts a request refused by an open circuit breaker.
func (m *Metrics) failFast() {
	m.mu.Lock()
	m.requests["breaker-open"]++
	m.mu.Unlock()
}

// retry counts one engine-run retry of a transient failure.
func (m *Metrics) retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// degrade counts one request served by the sequential fallback.
func (m *Metrics) degrade() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

func (m *Metrics) observeBatch(size int) {
	m.mu.Lock()
	m.batches++
	if size > 1 {
		m.batched += float64(size)
	}
	m.size.observe(float64(size))
	m.mu.Unlock()
}

// RequestCount returns the count of requests with the given outcome
// ("ok", "overloaded", "canceled", "deadline", "verify-failure",
// "error").
func (m *Metrics) RequestCount(outcome string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[outcome]
}

// BatchCount returns (batches executed, requests that shared a batch).
func (m *Metrics) BatchCount() (batches, batchedRequests float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches, m.batched
}

// RetryCount returns how many engine runs were retried.
func (m *Metrics) RetryCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

// DegradedCount returns how many requests the sequential fallback
// served.
func (m *Metrics) DegradedCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// WriteProm writes the serve metrics in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WriteProm(w io.Writer) error {
	return m.writeProm(w, true)
}

// writeProm is WriteProm with the HELP/TYPE headers optional: when
// several per-element servers scrape into one response (Gateway), only
// the first may emit headers — a metric name must carry at most one
// TYPE line per exposition.
func (m *Metrics) writeProm(w io.Writer, headers bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if !headers {
		raw := p
		p = func(format string, args ...any) {
			if len(format) > 0 && format[0] == '#' {
				return
			}
			raw(format, args...)
		}
	}

	p("# HELP parbitonic_serve_requests_total Sort requests by outcome.\n")
	p("# TYPE parbitonic_serve_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p("parbitonic_serve_requests_total{elem=%q,outcome=%q} %v\n", m.elem, k, m.requests[k])
	}

	p("# HELP parbitonic_serve_queue_depth Requests waiting in the admission queue (sampled at scrape).\n")
	p("# TYPE parbitonic_serve_queue_depth gauge\n")
	p("parbitonic_serve_queue_depth{elem=%q} %d\n", m.elem, m.queueDepth())

	p("# HELP parbitonic_serve_batches_total Engine runs executed (a batch of size 1 is a solo run).\n")
	p("# TYPE parbitonic_serve_batches_total counter\n")
	p("parbitonic_serve_batches_total{elem=%q} %v\n", m.elem, m.batches)

	p("# HELP parbitonic_serve_batched_requests_total Requests that shared a run with at least one companion.\n")
	p("# TYPE parbitonic_serve_batched_requests_total counter\n")
	p("parbitonic_serve_batched_requests_total{elem=%q} %v\n", m.elem, m.batched)

	p("# HELP parbitonic_serve_retries_total Engine runs retried after a transient failure.\n")
	p("# TYPE parbitonic_serve_retries_total counter\n")
	p("parbitonic_serve_retries_total{elem=%q} %v\n", m.elem, m.retries)

	p("# HELP parbitonic_serve_degraded_total Requests served by the sequential degraded-mode fallback.\n")
	p("# TYPE parbitonic_serve_degraded_total counter\n")
	p("parbitonic_serve_degraded_total{elem=%q} %v\n", m.elem, m.degraded)

	if m.breakerState != nil {
		p("# HELP parbitonic_serve_breaker_state Circuit breaker position (0 closed, 1 open, 2 half-open).\n")
		p("# TYPE parbitonic_serve_breaker_state gauge\n")
		p("parbitonic_serve_breaker_state{elem=%q} %d\n", m.elem, m.breakerState())
	}

	p("# HELP parbitonic_serve_batch_requests Requests coalesced per engine run.\n")
	p("# TYPE parbitonic_serve_batch_requests histogram\n")
	m.writeServeHist(p, "parbitonic_serve_batch_requests", m.size)

	p("# HELP parbitonic_serve_request_seconds End-to-end request latency, admission to response.\n")
	p("# TYPE parbitonic_serve_request_seconds histogram\n")
	m.writeServeHist(p, "parbitonic_serve_request_seconds", m.latency)

	ps := m.pool.Stats()
	p("# HELP parbitonic_serve_pool_gets_total Engine checkouts from the pool.\n")
	p("# TYPE parbitonic_serve_pool_gets_total counter\n")
	p("parbitonic_serve_pool_gets_total{elem=%q} %d\n", m.elem, ps.Gets)
	p("# HELP parbitonic_serve_pool_hits_total Checkouts served without constructing an engine.\n")
	p("# TYPE parbitonic_serve_pool_hits_total counter\n")
	p("parbitonic_serve_pool_hits_total{elem=%q} %d\n", m.elem, ps.Hits)
	p("# HELP parbitonic_serve_pool_idle_engines Engines currently parked in the pool.\n")
	p("# TYPE parbitonic_serve_pool_idle_engines gauge\n")
	p("parbitonic_serve_pool_idle_engines{elem=%q} %d\n", m.elem, ps.Idle)
	p("# HELP parbitonic_serve_quarantined_engines_total Engines destroyed instead of recycled after an unhealthy run.\n")
	p("# TYPE parbitonic_serve_quarantined_engines_total counter\n")
	p("parbitonic_serve_quarantined_engines_total{elem=%q} %d\n", m.elem, ps.Quarantined)
	p("# HELP parbitonic_serve_evicted_engines_total Idle engines evicted by a per-shape failure streak.\n")
	p("# TYPE parbitonic_serve_evicted_engines_total counter\n")
	p("parbitonic_serve_evicted_engines_total{elem=%q} %d\n", m.elem, ps.Evicted)

	return err
}

func (m *Metrics) writeServeHist(p func(string, ...any), name string, h *hist) {
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i]
		p("%s_bucket{elem=%q,le=\"%g\"} %d\n", name, m.elem, ub, cum)
	}
	p("%s_bucket{elem=%q,le=\"+Inf\"} %d\n", name, m.elem, h.count)
	p("%s_sum{elem=%q} %v\n", name, m.elem, h.sum)
	p("%s_count{elem=%q} %d\n", name, m.elem, h.count)
}
