package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/verify"
)

// recentKeep and slowestKeep size the sortz request rings: the last N
// completed requests and the N slowest seen since start.
const (
	recentKeep  = 64
	slowestKeep = 16
)

// RequestRecord is one completed request as the ops surface shows it:
// identity, size, outcome, and the per-stage latency breakdown.
// Durations encode to JSON as nanoseconds.
type RequestRecord struct {
	// ID is the request's ID (client-supplied or minted).
	ID string `json:"id"`
	// Keys is the request's key count.
	Keys int `json:"keys"`
	// Outcome is the request's outcome label ("ok", "overloaded", ...).
	Outcome string `json:"outcome"`
	// Degraded marks requests served by the sequential fallback.
	Degraded bool `json:"degraded"`
	// Retried marks requests whose engine run was retried.
	Retried bool `json:"retried"`
	// Start is the wall-clock admission instant.
	Start time.Time `json:"start"`
	// Total is the end-to-end latency, admission to record.
	Total time.Duration `json:"total"`
	// Stages is the per-stage breakdown; it sums to ~Total.
	Stages obs.StageBreakdown `json:"stages"`
}

// ActiveBatch is one engine run currently in flight: which request IDs
// it coalesced and how many keys it carries.
type ActiveBatch struct {
	// Seq is the run's sequence number (monotonic per server).
	Seq uint64 `json:"seq"`
	// Requests lists the coalesced member request IDs.
	Requests []string `json:"requests"`
	// Keys is the batch's summed key count, pre-padding.
	Keys int `json:"keys"`
	// Started is when the run entered flight.
	Started time.Time `json:"started"`
}

// latencyBuckets are the request-latency histogram upper bounds in
// seconds: log-spaced from 100µs (a pooled in-memory hit) to 10s.
var latencyBuckets = [...]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 10}

// sizeBuckets are the batch-size histogram upper bounds in requests.
var sizeBuckets = [...]float64{1, 2, 4, 8, 16, 32, 64}

// driftBuckets are the plan-drift histogram upper bounds: the
// measured/predicted engine-time ratio of Auto runs, bracketed around
// 1.0 (an exact prediction). Mass above 2 means the planner's machine
// profile no longer describes the host — re-calibrate (TUNING.md).
var driftBuckets = [...]float64{0.5, 0.75, 0.9, 1, 1.1, 1.25, 1.5, 2, 4}

// planShape identifies one autotuner-chosen execution shape for the
// plan_chosen counter labels.
type planShape struct {
	alg string
	p   int
}

// hist is a fixed-bucket cumulative histogram (Prometheus semantics):
// counts[i] counts observations ≤ bounds[i], overflow lands only in
// the implicit +Inf bucket.
type hist struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i]++
	}
	h.sum += v
	h.count++
}

// poolStatser decouples Metrics from the pool's element type: every
// PoolOf instantiation satisfies it.
type poolStatser interface {
	Stats() PoolStats
}

// Metrics aggregates the serve layer's operational signals — the ones
// engine-run telemetry (internal/obs) cannot see because they live in
// front of the runtime: admission rejections, queue depth, batch
// sizes, end-to-end request latency. Scrape via WriteProm (the HTTP
// handler merges it into /metrics); every series carries an elem label
// naming the server's element type, so the per-type servers behind a
// Gateway scrape as one valid exposition. All methods are safe for
// concurrent use.
type Metrics struct {
	mu       sync.Mutex
	elem     string             // element-type label value (u32, u64, ...)
	requests map[string]float64 // outcome -> count
	batches  float64
	batched  float64 // requests that shared a run with >= 1 companion
	retries  float64 // engine runs retried after a transient failure
	degraded float64 // requests served by the sequential fallback
	latency  *hist   // seconds, admission to response
	size     *hist   // requests per batch

	planKinds map[planShape]float64 // Auto runs by plan-chosen shape
	planDrift *hist                 // measured/predicted engine time, native Auto runs

	queueDepth   func() int // sampled at scrape time
	breakerState func() int // sampled at scrape time; nil = no breaker
	pool         poolStatser

	stages *obs.Stages // request-scoped stage/tail/SLO telemetry; own locking

	recent    [recentKeep]RequestRecord // ring of the last completed requests
	recentPos int
	recentN   int
	slowest   []RequestRecord // the slowest requests seen, descending by Total

	active   map[uint64]ActiveBatch // engine runs in flight, by sequence
	batchSeq uint64
}

func newMetrics(elem string, queueDepth func() int, pool poolStatser, slo obs.SLOConfig) *Metrics {
	return &Metrics{
		elem: elem,
		requests: map[string]float64{
			"ok": 0, "overloaded": 0, "canceled": 0, "deadline": 0,
			"verify-failure": 0, "breaker-open": 0, "error": 0,
		},
		latency:    newHist(latencyBuckets[:]),
		size:       newHist(sizeBuckets[:]),
		planKinds:  make(map[planShape]float64),
		planDrift:  newHist(driftBuckets[:]),
		queueDepth: queueDepth,
		pool:       pool,
		stages:     obs.NewStages(elem, slo),
		active:     make(map[uint64]ActiveBatch),
	}
}

// outcome classifies a completed request's error for the counter
// label set (pre-registered at zero in newMetrics so absent series
// never alias to zero series in alerts).
func outcome(err error) string {
	var verr *verify.Error
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, spmd.ErrCanceled), errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, spmd.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.As(err, &verr):
		return "verify-failure"
	default:
		return "error"
	}
}

func (m *Metrics) observeRequest(d time.Duration, err error) {
	m.mu.Lock()
	m.requests[outcome(err)]++
	m.latency.observe(d.Seconds())
	m.mu.Unlock()
}

func (m *Metrics) reject() {
	m.mu.Lock()
	m.requests["overloaded"]++
	m.mu.Unlock()
}

// failFast counts a request refused by an open circuit breaker.
func (m *Metrics) failFast() {
	m.mu.Lock()
	m.requests["breaker-open"]++
	m.mu.Unlock()
}

// retry counts one engine-run retry of a transient failure.
func (m *Metrics) retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// degrade counts one request served by the sequential fallback.
func (m *Metrics) degrade() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// planChoose counts one engine run executed under an autotuner-chosen
// plan shape (Config.Engine.Auto).
func (m *Metrics) planChoose(alg string, p int) {
	m.mu.Lock()
	m.planKinds[planShape{alg: alg, p: p}]++
	m.mu.Unlock()
}

// planObserve records the measured/predicted engine-time ratio of one
// successful native Auto run: 1.0 means the planner's cost model was
// exact, above 1 the run was slower than predicted.
func (m *Metrics) planObserve(ratio float64) {
	m.mu.Lock()
	m.planDrift.observe(ratio)
	m.mu.Unlock()
}

// PlanChosenCount returns how many engine runs executed under the
// given autotuner-chosen shape (algorithm name as parbitonic renders
// it, processor count). Always zero without Engine.Auto.
func (m *Metrics) PlanChosenCount(alg string, p int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planKinds[planShape{alg: alg, p: p}]
}

// PlanDrift returns the count and sum of the plan-drift ratio
// observations (successful native Auto runs); sum/count is the mean
// measured/predicted ratio.
func (m *Metrics) PlanDrift() (count uint64, sum float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planDrift.count, m.planDrift.sum
}

// recordRequest folds one completed request's stage track into the
// request-scoped telemetry: stage histograms, tail estimators, the SLO
// window, and the sortz recent/slowest rings. Called by the submitting
// goroutine at SortDegradable exit (never for abandoned requests, whose
// tracks the pipeline still owns).
func (m *Metrics) recordRequest(tr *reqTrack, err error, degraded bool) {
	total := tr.total()
	m.stages.Observe(tr.dur, total, tr.neg, err == nil)
	rec := RequestRecord{
		ID:       tr.id,
		Keys:     tr.keys,
		Outcome:  outcome(err),
		Degraded: degraded,
		Retried:  tr.dur[obs.StageRetry] > 0,
		Start:    tr.wallStart,
		Total:    total,
		Stages:   tr.dur,
	}
	m.mu.Lock()
	m.recent[m.recentPos] = rec
	m.recentPos = (m.recentPos + 1) % recentKeep
	if m.recentN < recentKeep {
		m.recentN++
	}
	i := sort.Search(len(m.slowest), func(i int) bool { return m.slowest[i].Total < rec.Total })
	if i < slowestKeep {
		m.slowest = append(m.slowest, RequestRecord{})
		copy(m.slowest[i+1:], m.slowest[i:])
		m.slowest[i] = rec
		if len(m.slowest) > slowestKeep {
			m.slowest = m.slowest[:slowestKeep]
		}
	}
	m.mu.Unlock()
}

// batchStart registers an engine run entering flight and returns its
// sequence number for batchEnd.
func (m *Metrics) batchStart(ids []string, keys int) uint64 {
	m.mu.Lock()
	m.batchSeq++
	seq := m.batchSeq
	m.active[seq] = ActiveBatch{
		Seq: seq, Requests: append([]string(nil), ids...),
		Keys: keys, Started: time.Now(),
	}
	m.mu.Unlock()
	return seq
}

// batchEnd removes a completed engine run from the active set.
func (m *Metrics) batchEnd(seq uint64) {
	m.mu.Lock()
	delete(m.active, seq)
	m.mu.Unlock()
}

// Stages returns the request-scoped stage/tail/SLO telemetry.
func (m *Metrics) Stages() *obs.Stages { return m.stages }

// Elem returns the element-type label the server's series carry.
func (m *Metrics) Elem() string { return m.elem }

// RecentRequests returns the last completed requests, newest first.
func (m *Metrics) RecentRequests() []RequestRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RequestRecord, 0, m.recentN)
	for i := 0; i < m.recentN; i++ {
		out = append(out, m.recent[(m.recentPos-1-i+2*recentKeep)%recentKeep])
	}
	return out
}

// SlowestRequests returns the slowest completed requests since start,
// slowest first.
func (m *Metrics) SlowestRequests() []RequestRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]RequestRecord(nil), m.slowest...)
}

// ActiveBatches returns the engine runs currently in flight, oldest
// first.
func (m *Metrics) ActiveBatches() []ActiveBatch {
	m.mu.Lock()
	out := make([]ActiveBatch, 0, len(m.active))
	for _, b := range m.active {
		out = append(out, b)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

func (m *Metrics) observeBatch(size int) {
	m.mu.Lock()
	m.batches++
	if size > 1 {
		m.batched += float64(size)
	}
	m.size.observe(float64(size))
	m.mu.Unlock()
}

// RequestCount returns the count of requests with the given outcome
// ("ok", "overloaded", "canceled", "deadline", "verify-failure",
// "error").
func (m *Metrics) RequestCount(outcome string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[outcome]
}

// BatchCount returns (batches executed, requests that shared a batch).
func (m *Metrics) BatchCount() (batches, batchedRequests float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches, m.batched
}

// RetryCount returns how many engine runs were retried.
func (m *Metrics) RetryCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

// DegradedCount returns how many requests the sequential fallback
// served.
func (m *Metrics) DegradedCount() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// WriteProm writes the serve metrics in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WriteProm(w io.Writer) error {
	return m.writeProm(w, true)
}

// writeProm is WriteProm with the HELP/TYPE headers optional: when
// several per-element servers scrape into one response (Gateway), only
// the first may emit headers — a metric name must carry at most one
// TYPE line per exposition.
func (m *Metrics) writeProm(w io.Writer, headers bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if !headers {
		raw := p
		p = func(format string, args ...any) {
			if len(format) > 0 && format[0] == '#' {
				return
			}
			raw(format, args...)
		}
	}

	p("# HELP parbitonic_serve_requests_total Sort requests by outcome.\n")
	p("# TYPE parbitonic_serve_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p("parbitonic_serve_requests_total{elem=%q,outcome=%q} %v\n", m.elem, k, m.requests[k])
	}

	p("# HELP parbitonic_serve_queue_depth Requests waiting in the admission queue (sampled at scrape).\n")
	p("# TYPE parbitonic_serve_queue_depth gauge\n")
	p("parbitonic_serve_queue_depth{elem=%q} %d\n", m.elem, m.queueDepth())

	p("# HELP parbitonic_serve_batches_total Engine runs executed (a batch of size 1 is a solo run).\n")
	p("# TYPE parbitonic_serve_batches_total counter\n")
	p("parbitonic_serve_batches_total{elem=%q} %v\n", m.elem, m.batches)

	p("# HELP parbitonic_serve_batched_requests_total Requests that shared a run with at least one companion.\n")
	p("# TYPE parbitonic_serve_batched_requests_total counter\n")
	p("parbitonic_serve_batched_requests_total{elem=%q} %v\n", m.elem, m.batched)

	p("# HELP parbitonic_serve_retries_total Engine runs retried after a transient failure.\n")
	p("# TYPE parbitonic_serve_retries_total counter\n")
	p("parbitonic_serve_retries_total{elem=%q} %v\n", m.elem, m.retries)

	p("# HELP parbitonic_serve_degraded_total Requests served by the sequential degraded-mode fallback.\n")
	p("# TYPE parbitonic_serve_degraded_total counter\n")
	p("parbitonic_serve_degraded_total{elem=%q} %v\n", m.elem, m.degraded)

	if len(m.planKinds) > 0 {
		p("# HELP parbitonic_serve_plan_chosen_total Engine runs by autotuner-chosen plan shape (Config.Engine.Auto).\n")
		p("# TYPE parbitonic_serve_plan_chosen_total counter\n")
		shapes := make([]planShape, 0, len(m.planKinds))
		for k := range m.planKinds {
			shapes = append(shapes, k)
		}
		sort.Slice(shapes, func(i, j int) bool {
			if shapes[i].alg != shapes[j].alg {
				return shapes[i].alg < shapes[j].alg
			}
			return shapes[i].p < shapes[j].p
		})
		for _, k := range shapes {
			p("parbitonic_serve_plan_chosen_total{elem=%q,alg=%q,p=\"%d\"} %v\n", m.elem, k.alg, k.p, m.planKinds[k])
		}
		p("# HELP parbitonic_serve_plan_drift_ratio Measured/predicted engine time of successful Auto runs (native backend).\n")
		p("# TYPE parbitonic_serve_plan_drift_ratio histogram\n")
		m.writeServeHist(p, "parbitonic_serve_plan_drift_ratio", m.planDrift)
	}

	if m.breakerState != nil {
		p("# HELP parbitonic_serve_breaker_state Circuit breaker position (0 closed, 1 open, 2 half-open).\n")
		p("# TYPE parbitonic_serve_breaker_state gauge\n")
		p("parbitonic_serve_breaker_state{elem=%q} %d\n", m.elem, m.breakerState())
	}

	p("# HELP parbitonic_serve_batch_requests Requests coalesced per engine run.\n")
	p("# TYPE parbitonic_serve_batch_requests histogram\n")
	m.writeServeHist(p, "parbitonic_serve_batch_requests", m.size)

	p("# HELP parbitonic_serve_request_seconds End-to-end request latency, admission to response.\n")
	p("# TYPE parbitonic_serve_request_seconds histogram\n")
	m.writeServeHist(p, "parbitonic_serve_request_seconds", m.latency)

	ps := m.pool.Stats()
	p("# HELP parbitonic_serve_pool_gets_total Engine checkouts from the pool.\n")
	p("# TYPE parbitonic_serve_pool_gets_total counter\n")
	p("parbitonic_serve_pool_gets_total{elem=%q} %d\n", m.elem, ps.Gets)
	p("# HELP parbitonic_serve_pool_hits_total Checkouts served without constructing an engine.\n")
	p("# TYPE parbitonic_serve_pool_hits_total counter\n")
	p("parbitonic_serve_pool_hits_total{elem=%q} %d\n", m.elem, ps.Hits)
	p("# HELP parbitonic_serve_pool_idle_engines Engines currently parked in the pool.\n")
	p("# TYPE parbitonic_serve_pool_idle_engines gauge\n")
	p("parbitonic_serve_pool_idle_engines{elem=%q} %d\n", m.elem, ps.Idle)
	p("# HELP parbitonic_serve_quarantined_engines_total Engines destroyed instead of recycled after an unhealthy run.\n")
	p("# TYPE parbitonic_serve_quarantined_engines_total counter\n")
	p("parbitonic_serve_quarantined_engines_total{elem=%q} %d\n", m.elem, ps.Quarantined)
	p("# HELP parbitonic_serve_evicted_engines_total Idle engines evicted by a per-shape failure streak.\n")
	p("# TYPE parbitonic_serve_evicted_engines_total counter\n")
	p("parbitonic_serve_evicted_engines_total{elem=%q} %d\n", m.elem, ps.Evicted)

	if err == nil {
		err = m.stages.WriteProm(w, headers)
	}
	return err
}

func (m *Metrics) writeServeHist(p func(string, ...any), name string, h *hist) {
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i]
		p("%s_bucket{elem=%q,le=\"%g\"} %d\n", name, m.elem, ub, cum)
	}
	p("%s_bucket{elem=%q,le=\"+Inf\"} %d\n", name, m.elem, h.count)
	p("%s_sum{elem=%q} %v\n", name, m.elem, h.sum)
	p("%s_count{elem=%q} %d\n", name, m.elem, h.count)
}
