package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s, nil))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestHTTPSortJSON(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(sortRequest{Keys: []uint32{5, 3, 9, 1, 3}})
	resp, err := http.Post(ts.URL+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out sortResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 3, 5, 9}
	for i := range want {
		if out.Keys[i] != want[i] {
			t.Fatalf("got %v want %v", out.Keys, want)
		}
	}
}

func TestHTTPSortBinary(t *testing.T) {
	_, ts := newTestServer(t)
	keys := randKeys(rand.New(rand.NewSource(2)), 1000, 1<<28)
	raw := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(raw[4*i:], k)
	}
	resp, err := http.Post(ts.URL+"/sort", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("response content type %q", ct)
	}
	got, err := readBinaryKeys(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRef(keys)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("binary round-trip wrong at %d", i)
		}
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	s, ts := newTestServer(t)

	// 405: wrong method.
	resp, _ := http.Get(ts.URL + "/sort")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sort status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()

	// 400: malformed JSON.
	resp, _ = http.Post(ts.URL+"/sort", "application/json", strings.NewReader("{"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// 400: binary body not a multiple of 4.
	resp, _ = http.Post(ts.URL+"/sort", "application/octet-stream", strings.NewReader("abc"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged binary status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// 400: bad timeout_ms.
	resp, _ = http.Post(ts.URL+"/sort?timeout_ms=bogus", "application/json", strings.NewReader(`{"keys":[2,1]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout_ms status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// 200: a generous timeout_ms sorts fine.
	resp, _ = http.Post(ts.URL+"/sort?timeout_ms=30000", "application/json", strings.NewReader(`{"keys":[2,1]}`))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("timeout_ms=30000 status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// 503 after Close.
	s.Close()
	resp, _ = http.Post(ts.URL+"/sort", "application/json", strings.NewReader(`{"keys":[2,1]}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close status %d, want 503", resp.StatusCode)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if !strings.Contains(e.Error, "closed") {
		t.Errorf("post-close error body %q", e.Error)
	}
}

func TestHTTPOverloadIs429(t *testing.T) {
	gate := make(chan struct{})
	g := &gateCharger{gate: gate}
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors: 2,
			Backend:    parbitonic.Native,
			WrapCharger: func(inner spmd.Charger) spmd.Charger {
				g.Charger = inner
				return g
			},
		},
		MaxBatch:   1,
		QueueDepth: 1,
		Parallel:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s, nil))
	defer func() {
		close(gate)
		ts.Close()
		s.Close()
	}()

	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/sort", "application/json", strings.NewReader(`{"keys":[3,1,2,4]}`))
		if err != nil {
			t.Error(err)
		}
		return resp
	}
	// Wedge the worker, the dispatcher and the queue (see
	// TestOverloadTyped for the accounting), then expect 429.
	for i := 0; i < 3; i++ {
		go func() {
			if resp := post(); resp != nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(50 * time.Millisecond)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	resp.Body.Close()
}

func TestHTTPObsEndpoints(t *testing.T) {
	rm := obs.NewMetrics()
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 2, Backend: parbitonic.Native, Obs: rm},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s, rm))
	defer func() { ts.Close(); s.Close() }()

	resp, _ := http.Post(ts.URL+"/sort", "application/json", strings.NewReader(`{"keys":[9,1,5]}`))
	resp.Body.Close()

	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Get(ts.URL + "/metrics")
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`parbitonic_serve_requests_total{elem="u32",outcome="ok"} 1`,
		"parbitonic_serve_queue_depth",
		"parbitonic_serve_batches_total",
		"parbitonic_serve_request_seconds_count",
		"parbitonic_runs_total", // engine-run metrics merged in
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, _ = http.Get(ts.URL + "/stats")
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	resp.Body.Close()
	if _, ok := stats["pool"]; !ok {
		t.Error("/stats missing pool section")
	}

	resp, _ = http.Get(ts.URL + "/debug/vars")
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	resp.Body.Close()
	if _, ok := vars["parbitonic"]; !ok {
		t.Error("/debug/vars missing parbitonic key")
	}
}
