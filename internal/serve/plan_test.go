package serve

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/obs"
	"parbitonic/internal/resilience"
	"parbitonic/internal/spmd"
)

// tuneProfile is the committed machine profile the autotuner tests
// plan against (the same one TUNING.md's worked example uses).
var tuneProfile = filepath.Join("..", "tune", "testdata", "profile_example.json")

// autoEngine returns an Auto engine template capped at P=1, which
// pins the planner's choice (P=1 runs sequentially as smart bitonic)
// so the assertions are host-independent.
func autoEngine(sink obs.Sink) parbitonic.Config {
	return parbitonic.Config{
		Auto:        true,
		Processors:  1,
		Backend:     parbitonic.Native,
		ProfilePath: tuneProfile,
		Obs:         sink,
	}
}

// TestAutoPlanSelection: an Auto server consults the planner per
// request size — one plan event per padded-size bucket, a plan_chosen
// count per engine run, drift observations for successful native
// runs, and engines pooled under the plan-chosen shape.
func TestAutoPlanSelection(t *testing.T) {
	metrics := obs.NewMetrics()
	s, err := New(Config{Engine: autoEngine(metrics), MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Three requests in two padded-size buckets (100 and 120 both pad
	// to 128; 3000 pads to 4096).
	for _, n := range []int{100, 120, 3000} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32((n - i) * 2654435761)
		}
		out, err := s.Sort(context.Background(), keys)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Fatalf("n=%d: result unsorted", n)
		}
	}

	if got := metrics.EventCount(obs.EventPlan); got != 2 {
		t.Errorf("plan events = %v, want 2 (one per size bucket)", got)
	}
	alg := parbitonic.SmartBitonic.String()
	if got := s.Metrics().PlanChosenCount(alg, 1); got != 3 {
		t.Errorf("plan_chosen{%s,1} = %v, want 3 (one per run)", alg, got)
	}
	if count, sum := s.Metrics().PlanDrift(); count != 3 || sum <= 0 {
		t.Errorf("plan drift count=%d sum=%v, want 3 observations with positive sum", count, sum)
	}
	if ps := s.Pool().Stats(); ps.Hits < 1 {
		t.Errorf("pool hits = %d, want >= 1 (same-bucket requests share plan-shaped engines)", ps.Hits)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`parbitonic_serve_plan_chosen_total{elem="u32",alg="smart-bitonic",p="1"} 3`,
		"parbitonic_serve_plan_drift_ratio_count",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// autoCrashCharger panics on every processor at the start of every
// run: a persistently failing backend that fails regardless of which
// shape the planner picked.
type autoCrashCharger struct {
	spmd.Charger
}

func (c *autoCrashCharger) Start(p *spmd.PC) {
	panic("persistent backend fault")
}

// TestAutoPlanQuarantineBreaker: plan-chosen engines ride the same
// health machinery as fixed shapes — unhealthy runs quarantine the
// engine, persistent failures open the breaker, and a breaker-refused
// request never consults the planner.
func TestAutoPlanQuarantineBreaker(t *testing.T) {
	eng := autoEngine(nil)
	eng.WrapCharger = func(inner spmd.Charger) spmd.Charger {
		return &autoCrashCharger{Charger: inner}
	}
	s, err := New(Config{
		Engine:   eng,
		MaxBatch: 1,
		Retries:  -1,
		Breaker: resilience.BreakerConfig{
			Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := []uint32{3, 1, 2, 4}
	var pe *spmd.PanicError
	for i := 0; i < 2; i++ {
		if _, err := s.Sort(context.Background(), keys); !errors.As(err, &pe) {
			t.Fatalf("request %d: want a contained panic, got %v", i, err)
		}
	}
	if _, err := s.Sort(context.Background(), keys); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after 2 failures the breaker must fail fast, got %v", err)
	}

	if ps := s.Pool().Stats(); ps.Quarantined != 2 {
		t.Errorf("quarantined = %d, want 2 (plan-chosen engines are destroyed on unhealthy runs)", ps.Quarantined)
	}
	alg := parbitonic.SmartBitonic.String()
	if got := s.Metrics().PlanChosenCount(alg, 1); got != 2 {
		t.Errorf("plan_chosen{%s,1} = %v, want 2 (the breaker-refused request never reached the planner)", alg, got)
	}
	if count, _ := s.Metrics().PlanDrift(); count != 0 {
		t.Errorf("plan drift count = %d, want 0 (only successful runs are compared to their prediction)", count)
	}
}

// TestAutoRejectsBadProcessorsCap: under Auto, Processors is the plan
// cap and must be 0 or a power of two.
func TestAutoRejectsBadProcessorsCap(t *testing.T) {
	_, err := New(Config{Engine: parbitonic.Config{Auto: true, Processors: 3}})
	if err == nil {
		t.Fatal("want an error for Auto with Processors=3")
	}
}
