package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"parbitonic"
	"parbitonic/internal/fault"
	"parbitonic/internal/spmd"
)

func sortedRef(keys []uint32) []uint32 {
	out := append([]uint32(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randKeys(rng *rand.Rand, n int, max uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % max
	}
	return out
}

// waitGoroutines polls until the goroutine count drops back to (or
// below) base, failing the test if it does not — the no-leak check.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base)
}

func TestServeSortMatchesStdlib(t *testing.T) {
	for _, backend := range []parbitonic.Backend{parbitonic.Simulated, parbitonic.Native} {
		s, err := New(Config{
			Engine:   parbitonic.Config{Processors: 4, Backend: backend, Verify: true},
			MaxDelay: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for c := 0; c < 16; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					n := 100 + (c*31+i*17)%900 // deliberately non-power-of-two
					keys := randKeys(rand.New(rand.NewSource(int64(c*100+i))), n, 1<<28)
					want := sortedRef(keys)
					got, err := s.Sort(context.Background(), keys)
					if err != nil {
						errs <- err
						return
					}
					for j := range want {
						if got[j] != want[j] {
							errs <- errors.New("output diverges from reference")
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("%v: %v", backend, err)
		}
		s.Close()
	}
}

// TestBatchingCoalesces holds the window open and fires concurrent
// requests: some must share a run, and every result must still be
// that request's own sorted keys.
func TestBatchingCoalesces(t *testing.T) {
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxBatch: 8,
		MaxDelay: 50 * time.Millisecond,
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 8
	var wg sync.WaitGroup
	outs := make([][]uint32, clients)
	ins := make([][]uint32, clients)
	for c := 0; c < clients; c++ {
		ins[c] = randKeys(rand.New(rand.NewSource(int64(c))), 200+c*13, 1<<20)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got, err := s.Sort(context.Background(), ins[c])
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			outs[c] = got
		}(c)
	}
	wg.Wait()
	for c := range outs {
		want := sortedRef(ins[c])
		for i := range want {
			if outs[c][i] != want[i] {
				t.Fatalf("client %d result wrong at %d", c, i)
			}
		}
	}
	if _, batched := s.Metrics().BatchCount(); batched < 2 {
		t.Errorf("expected at least one multi-request batch, got %v batched requests", batched)
	}
}

// TestFullRangeKeysRunSolo: keys using bit 31 leave no tag headroom,
// so such requests must bypass batching and still come back correct.
func TestFullRangeKeysRunSolo(t *testing.T) {
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxBatch: 8,
		MaxDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := []uint32{^uint32(0), 0, 1<<31 + 5, 7, 1 << 31}
	want := sortedRef(keys)
	got, err := s.Sort(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full-range result wrong at %d: got %v want %v", i, got, want)
		}
	}
	if _, batched := s.Metrics().BatchCount(); batched != 0 {
		t.Errorf("full-range request was batched (%v batched requests)", batched)
	}
}

// gateCharger blocks the first processor entering a run until the gate
// opens — a deterministic way to wedge the executor for backpressure
// tests.
type gateCharger struct {
	spmd.Charger
	gate chan struct{}
	once sync.Once
}

func (g *gateCharger) Start(p *spmd.PC) {
	g.once.Do(func() { <-g.gate })
	g.Charger.Start(p)
}

// TestOverloadTyped wedges the single executor and fills the
// single-slot queue: the next request must be rejected immediately
// with ErrOverloaded (not queued, not blocked).
func TestOverloadTyped(t *testing.T) {
	gate := make(chan struct{})
	g := &gateCharger{gate: gate}
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors: 2,
			Backend:    parbitonic.Native,
			WrapCharger: func(inner spmd.Charger) spmd.Charger {
				g.Charger = inner
				return g
			},
		},
		MaxBatch:   1,
		QueueDepth: 1,
		Parallel:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := []uint32{3, 1, 2, 4}
	results := make(chan error, 3)
	submit := func() {
		_, err := s.Sort(context.Background(), keys)
		results <- err
	}
	// r1 occupies the worker (wedged at the gate); r2 is held by the
	// dispatcher waiting for the worker; r3 fills the 1-slot queue.
	go submit()
	time.Sleep(50 * time.Millisecond)
	go submit()
	time.Sleep(50 * time.Millisecond)
	go submit()
	time.Sleep(50 * time.Millisecond)

	if _, err := s.Sort(context.Background(), keys); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if got := s.Metrics().RequestCount("overloaded"); got != 1 {
		t.Errorf("overloaded counter = %v, want 1", got)
	}

	close(gate) // release the wedge; everything queued must complete
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued request %d failed after release: %v", i, err)
		}
	}
	s.Close()
}

// TestPerRequestDeadline: a request whose deadline expires while the
// executor is wedged comes back with context.DeadlineExceeded right
// away — the caller is never held past its deadline.
func TestPerRequestDeadline(t *testing.T) {
	gate := make(chan struct{})
	g := &gateCharger{gate: gate}
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors: 2,
			Backend:    parbitonic.Native,
			WrapCharger: func(inner spmd.Charger) spmd.Charger {
				g.Charger = inner
				return g
			},
		},
		MaxBatch: 1,
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Sort(ctx, []uint32{2, 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline return took %v", elapsed)
	}
	close(gate)
	s.Close()
}

// TestChaosUnderLoad injects a crash fault through the WrapCharger
// seam with retries disabled: the poisoned request fails with a
// contained *spmd.PanicError carrying the injected fault, the
// panicked engine is quarantined (destroyed, not recycled), and a
// fresh engine serves the next request correctly.
func TestChaosUnderLoad(t *testing.T) {
	// Round 1 matters: a crash AFTER the first remap leaves mid-exchange
	// scratch state behind, which engine recovery must fully clear
	// (see spmd.TestNoStaleOutsAfterAbort).
	inj := fault.NewInjector(fault.Plan{Kind: fault.Crash, Proc: 1, Round: 1})
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors:  4,
			Backend:     parbitonic.Native,
			WrapCharger: inj.Wrap,
		},
		MaxBatch: 1,
		Retries:  -1, // surface the raw containment path
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := randKeys(rand.New(rand.NewSource(3)), 512, 1<<30)
	_, err = s.Sort(context.Background(), keys)
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected a contained *spmd.PanicError, got %v", err)
	}
	if _, ok := pe.Value.(*fault.Crashed); !ok {
		t.Fatalf("panic value is not the injected fault: %v", pe.Value)
	}
	if !inj.Fired() {
		t.Fatal("injector did not fire")
	}
	if ps := s.Pool().Stats(); ps.Quarantined != 1 || ps.Idle != 0 {
		t.Errorf("panicked engine not quarantined: %+v", ps)
	}

	want := sortedRef(keys)
	got, err := s.Sort(context.Background(), keys)
	if err != nil {
		t.Fatalf("sort after injected crash: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-crash result wrong at %d", i)
		}
	}
}

// TestRetryHealsTransientFault is the tentpole's core promise: a
// one-shot injected crash is retried transparently — the caller sees
// a correct result and no error, the retry is counted, and the
// panicked engine was quarantined rather than recycled.
func TestRetryHealsTransientFault(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Kind: fault.Crash, Proc: 1, Round: 1})
	s, err := New(Config{
		Engine: parbitonic.Config{
			Processors:  4,
			Backend:     parbitonic.Native,
			WrapCharger: inj.Wrap,
		},
		MaxBatch: 1, // default Retries: 2
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := randKeys(rand.New(rand.NewSource(7)), 512, 1<<30)
	want := sortedRef(keys)
	got, err := s.Sort(context.Background(), keys)
	if err != nil {
		t.Fatalf("retry did not heal the injected crash: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("healed result wrong at %d", i)
		}
	}
	if !inj.Fired() {
		t.Fatal("injector did not fire")
	}
	if got := s.Metrics().RetryCount(); got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
	if ps := s.Pool().Stats(); ps.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", ps.Quarantined)
	}
}

// TestCloseSemantics: Close drains queued work, rejects new work with
// ErrClosed, and releases every goroutine the server started.
func TestCloseSemantics(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Config{
		Engine:   parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			keys := randKeys(rand.New(rand.NewSource(int64(c))), 300, 1<<20)
			want := sortedRef(keys)
			got, err := s.Sort(context.Background(), keys)
			if err != nil {
				t.Errorf("pre-close request: %v", err)
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("pre-close result wrong")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(context.Background(), []uint32{2, 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed after Close, got %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	waitGoroutines(t, base)
}

// TestServeLoad64 is the acceptance load test: 64 concurrent clients
// of 4k-key requests, zero errors, and the goroutine count returns to
// baseline after drain.
func TestServeLoad64(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	base := runtime.NumGoroutine()
	s, err := New(Config{
		Engine:     parbitonic.Config{Processors: 4, Backend: parbitonic.Native},
		QueueDepth: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients, reqs, n = 64, 4, 4096
	var wg sync.WaitGroup
	var failures sync.Map
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < reqs; i++ {
				keys := randKeys(rng, n, 1<<24)
				want := sortedRef(keys)
				got, err := s.Sort(context.Background(), keys)
				if err != nil {
					failures.Store(c*1000+i, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						failures.Store(c*1000+i, errors.New("wrong output"))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	nfail := 0
	failures.Range(func(k, v any) bool {
		t.Errorf("request %v: %v", k, v)
		nfail++
		return nfail < 10
	})
	batches, batched := s.Metrics().BatchCount()
	t.Logf("load: %d requests, %v runs, %v batched requests, pool %+v",
		clients*reqs, batches, batched, s.Pool().Stats())
	s.Close()
	waitGoroutines(t, base)
}

// TestZeroAndErrorInputs covers the trivial edges of the front door.
func TestZeroAndErrorInputs(t *testing.T) {
	s, err := New(Config{Engine: parbitonic.Config{Processors: 2, Backend: parbitonic.Native}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Sort(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sort: %v %v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Sort(ctx, []uint32{2, 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled sort: %v", err)
	}
	if _, err := New(Config{Engine: parbitonic.Config{Processors: 3}}); err == nil ||
		!strings.Contains(err.Error(), "power of two") {
		t.Fatalf("bad processors accepted: %v", err)
	}
}
