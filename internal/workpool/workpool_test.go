package workpool

import (
	"sync/atomic"
	"testing"
)

// TestParallelForCoversEveryIndex proves every index is executed
// exactly once across pool sizes, tile grains and index-space sizes,
// including the inline fast paths.
func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		p := New(size)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{1, 8, 64, 1024} {
				hits := make([]int32, n)
				p.ParallelFor(n, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("size=%d n=%d grain=%d: index %d executed %d times", size, n, grain, i, h)
					}
				}
			}
		}
		p.Close()
	}
}

// TestParallelForWorkConserving proves completion does not depend on
// helper availability: saturate every helper with a blocking job, then
// run another ParallelFor — the caller must finish it alone.
func TestParallelForWorkConserving(t *testing.T) {
	p := New(4)
	defer p.Close()
	release := make(chan struct{})
	blocked := make(chan struct{}, 3)
	go func() {
		p.ParallelFor(3, 1, func(lo, hi int) {
			blocked <- struct{}{}
			<-release
		})
	}()
	// The blocking job's caller takes one tile itself; up to two
	// helpers take the rest. Whatever the split, all helpers that will
	// ever touch it are now stuck, and the next job must still finish.
	<-blocked
	var sum atomic.Int64
	p.ParallelFor(100, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	close(release)
	if got := sum.Load(); got != 99*100/2 {
		t.Fatalf("sum = %d, want %d", got, 99*100/2)
	}
}

// TestParallelForNilAndSingle covers the degenerate pools: a nil pool
// and a one-lane pool both run inline.
func TestParallelForNilAndSingle(t *testing.T) {
	var nilPool *Pool
	if nilPool.Size() != 1 {
		t.Fatalf("nil pool size = %d, want 1", nilPool.Size())
	}
	ran := 0
	nilPool.ParallelFor(10, 3, func(lo, hi int) { ran += hi - lo })
	if ran != 10 {
		t.Fatalf("nil pool ran %d of 10", ran)
	}
	one := New(0) // clamps to 1
	defer one.Close()
	if one.Size() != 1 {
		t.Fatalf("one-lane pool size = %d, want 1", one.Size())
	}
	ran = 0
	one.ParallelFor(10, 100, func(lo, hi int) { ran += hi - lo })
	if ran != 10 {
		t.Fatalf("one-lane pool ran %d of 10", ran)
	}
}

// TestParallelForPanicPropagates proves a panic in any tile reaches
// the submitting caller after all lanes have stopped.
func TestParallelForPanicPropagates(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := New(size)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("size=%d: recovered %v, want boom", size, r)
				}
			}()
			p.ParallelFor(64, 4, func(lo, hi int) {
				if lo <= 32 && 32 < hi {
					panic("boom")
				}
			})
			t.Fatalf("size=%d: ParallelFor returned without panicking", size)
		}()
		p.Close()
	}
}

// TestSharedSingleton proves Shared returns one process-wide pool.
func TestSharedSingleton(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared() returned distinct pools")
	}
	if a.Size() < 1 {
		t.Fatalf("shared pool size = %d", a.Size())
	}
}
