// Package workpool provides the process-wide work-stealing pool behind
// the native backend's local phases. The SPMD runtime gives every
// virtual processor its own goroutine, so a run at P > GOMAXPROCS (or
// several pooled engines running at once — the serve layer's batching
// case) can put far more runnable goroutines on the scheduler than
// there are cores. The pool inverts that: heavy tile-granular work
// (local sorts, bitonic merges) is offered to a fixed set of helper
// workers — GOMAXPROCS-1 for the shared pool — and the submitting
// goroutine always participates, so idle cores steal tiles from busy
// virtual processors while the aggregate executing-worker count stays
// capped at GOMAXPROCS no matter how many engines are in flight.
//
// ParallelFor is work-conserving: the caller claims tiles itself, so a
// job completes even if every helper is busy elsewhere, and a pool of
// size 1 degenerates to a plain loop with no synchronization at all.
// Correctness therefore never depends on helper availability — helpers
// only add throughput — which is what makes one shared pool safe to
// use from arbitrarily many concurrent engines.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes tile-granular work with a bounded helper count.
type Pool struct {
	spares    int
	jobs      chan *job
	closeOnce sync.Once
	closed    chan struct{}
}

// job is one ParallelFor invocation: a [0,n) index space claimed in
// grain-sized tiles via an atomic cursor. Whoever holds a tile —
// caller or helper — runs f on it; the claim is the steal.
type job struct {
	next  atomic.Int64
	n     int64
	grain int64
	f     func(lo, hi int)
	wg    sync.WaitGroup
	fail  atomic.Pointer[panicValue]
}

type panicValue struct{ v any }

// New creates a pool with size execution lanes: the caller of
// ParallelFor is always one lane, so size-1 persistent helper
// goroutines are started. size < 1 is treated as 1 (no helpers).
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{
		spares: size - 1,
		jobs:   make(chan *job, 4*size),
		closed: make(chan struct{}),
	}
	for i := 0; i < p.spares; i++ {
		go p.worker()
	}
	return p
}

var sharedOnce sync.Once
var sharedPool *Pool

// Shared returns the process-wide pool, sized to GOMAXPROCS at first
// use. Every native engine routes its local phases through it, which
// is what caps the aggregate worker count across concurrently running
// engines at the core count.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Size returns the pool's lane count (helpers + the caller).
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.spares + 1
}

// Close stops the helper goroutines. For tests of non-shared pools
// only; no ParallelFor may be in flight or issued afterwards.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.closed) })
}

func (p *Pool) worker() {
	for {
		select {
		case j := <-p.jobs:
			j.run()
			j.wg.Done()
		case <-p.closed:
			return
		}
	}
}

// run claims and executes tiles until the index space is exhausted. A
// panic out of f is captured once (first wins) and re-raised by the
// submitting caller; the panicking worker stops claiming, the others
// finish their tiles normally.
func (j *job) run() {
	defer func() {
		if r := recover(); r != nil {
			j.fail.CompareAndSwap(nil, &panicValue{r})
		}
	}()
	for {
		start := j.next.Add(j.grain) - j.grain
		if start >= j.n {
			return
		}
		end := start + j.grain
		if end > j.n {
			end = j.n
		}
		j.f(int(start), int(end))
	}
}

// ParallelFor runs f over [0,n) in grain-sized tiles, on the caller
// plus however many pool helpers are free — at most enough to give
// every tile its own lane. It returns when every tile has completed.
// Tiles execute in claim order but concurrently; f must be safe for
// concurrent invocation on disjoint ranges. If any invocation panics,
// ParallelFor re-panics with the first captured value after all lanes
// have stopped.
//
// The fast path — nil pool, single-lane pool, or n <= grain — calls f
// inline with zero synchronization, so callers can use ParallelFor
// unconditionally and pay nothing when parallelism is unavailable.
func (p *Pool) ParallelFor(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if p == nil || p.spares == 0 || n <= grain {
		f(0, n)
		return
	}
	j := &job{n: int64(n), grain: int64(grain), f: f}
	// One lane per tile beyond the caller's; posting is best-effort —
	// a full queue means every helper is saturated, and the caller
	// completes the job alone.
	posts := (n+grain-1)/grain - 1
	if posts > p.spares {
		posts = p.spares
	}
	for i := 0; i < posts; i++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j:
		default:
			j.wg.Done()
			posts = i
		}
	}
	j.run()
	j.wg.Wait()
	if pv := j.fail.Load(); pv != nil {
		panic(pv.v)
	}
}
