package addr

import (
	"fmt"
	"sync"
)

// bitMove describes moving bit `from` of a source word to bit `to` of a
// destination word.
type bitMove struct{ from, to int }

func gather(word int, moves []bitMove) int {
	out := 0
	for _, m := range moves {
		out |= (word >> uint(m.from) & 1) << uint(m.to)
	}
	return out
}

// RemapPlan precomputes everything needed to remap data from layout Old
// to layout New with long messages: destination processors, pack offsets
// (the "pack mask" of Figure 3.18) and unpack positions (the "unpack
// mask" of Figure 3.19). Because all layouts are bit permutations the
// plan is a set of bit-routing tables independent of the data.
type RemapPlan struct {
	Old, New *Layout // source and destination layouts

	// Changed is N_BitsChanged of Lemma 3: the number of absolute-address
	// bits that are local under Old but select the processor under New.
	Changed int

	// MsgLen is the number of elements each processor sends to (and
	// receives from) every other member of its communication group:
	// n / 2^Changed (Lemma 4).
	MsgLen int

	destFromP []bitMove // dest proc bits sourced from the sender's proc number
	destFromL []bitMove // dest proc bits sourced from the sender's local address
	offFromL  []bitMove // message offset bits sourced from the sender's local address
	nlFromM   []bitMove // new local bits sourced from the message offset
	nlFromP   []bitMove // new local bits sourced from the sender's proc number

	// Lazily built lookup tables: the l-dependent parts of Dest and
	// PackOffset, and the m-dependent part of UnpackLocal, are
	// processor-independent, so one table per plan serves every
	// processor. Built on first use; safe for concurrent readers.
	lutOnce sync.Once
	destLut []int32 // [n] destination bits contributed by l
	offLut  []int32 // [n] pack offset of l
	nlLut   []int32 // [MsgLen] new-local bits contributed by m
	hasLuts bool

	// Lazily built inverse (gather) tables for the shared-memory
	// zero-copy remap: for each NEW local address they name the source
	// the element comes from. Processor-independent like the forward
	// LUTs; see GatherLuts.
	gatherOnce sync.Once
	groupLut   []int32 // [n] sender-group index of new local address i
	srcLut     []int32 // [n] old-local bits of i contributed by the message offset
	hasGather  bool
}

// lutMaxEntries bounds LUT memory: plans over more local keys than this
// fall back to per-call bit gathering.
const lutMaxEntries = 1 << 22

func (p *RemapPlan) luts() bool {
	p.lutOnce.Do(func() {
		n := p.Old.LocalN()
		if n > lutMaxEntries {
			return
		}
		p.destLut = make([]int32, n)
		p.offLut = make([]int32, n)
		for l := 0; l < n; l++ {
			p.destLut[l] = int32(gather(l, p.destFromL))
			p.offLut[l] = int32(gather(l, p.offFromL))
		}
		p.nlLut = make([]int32, p.MsgLen)
		for m := 0; m < p.MsgLen; m++ {
			p.nlLut[m] = int32(gather(m, p.nlFromM))
		}
		p.hasLuts = true
	})
	return p.hasLuts
}

// Route fills dest[l] and off[l] for every local address of processor
// proc in one pass — the hot path used by the machine's remap exchange.
func (p *RemapPlan) Route(proc int, dest, off []int32) {
	n := p.Old.LocalN()
	if len(dest) != n || len(off) != n {
		panic("addr: Route buffer length mismatch")
	}
	fixed := int32(gather(proc, p.destFromP))
	if p.luts() {
		for l := 0; l < n; l++ {
			dest[l] = fixed | p.destLut[l]
			off[l] = p.offLut[l]
		}
		return
	}
	for l := 0; l < n; l++ {
		dest[l] = fixed | int32(gather(l, p.destFromL))
		off[l] = int32(gather(l, p.offFromL))
	}
}

// UnpackTable fills nl[m] with the new local address for each message
// position of a message arriving from srcProc.
func (p *RemapPlan) UnpackTable(srcProc int, nl []int32) {
	if len(nl) != p.MsgLen {
		panic("addr: UnpackTable buffer length mismatch")
	}
	fixed := int32(gather(srcProc, p.nlFromP))
	if p.luts() {
		for m := range nl {
			nl[m] = fixed | p.nlLut[m]
		}
		return
	}
	for m := range nl {
		nl[m] = fixed | int32(gather(m, p.nlFromM))
	}
}

// GatherLuts returns the processor-independent inverse routing tables
// of the plan, for remaps that pull data instead of pushing it (the
// shared-memory zero-copy path): for the element at NEW local address
// i on any receiving processor q,
//
//	source processor = q's Senders()[group[i]]
//	source local address = q's GatherLBase() | local[i]
//
// The tables invert the pack/unpack masks exactly, so a gather remap
// produces bit-identical placement to pack → exchange → unpack. Plans
// over more than lutMaxEntries local keys report ok=false; callers
// fall back to the message path.
func (p *RemapPlan) GatherLuts() (group, local []int32, ok bool) {
	p.gatherOnce.Do(func() {
		n := p.Old.LocalN()
		if n > lutMaxEntries {
			return
		}
		p.groupLut = make([]int32, n)
		p.srcLut = make([]int32, n)
		for i := 0; i < n; i++ {
			g, l := int32(0), int32(0)
			// New local bits sourced from the sender's processor number
			// select the sender within the communication group; the group
			// index enumerates nlFromP in move order, matching Senders.
			for j, mv := range p.nlFromP {
				g |= int32(i>>uint(mv.to)&1) << uint(j)
			}
			// New local bits sourced from the message offset invert
			// through the pack mask: nlFromM maps offset bit j to new
			// local bit, offFromL maps old local bit to offset bit j —
			// the two tables share the offset-bit enumeration order.
			for j, mv := range p.nlFromM {
				l |= int32(i>>uint(mv.to)&1) << uint(p.offFromL[j].from)
			}
			p.groupLut[i] = g
			p.srcLut[i] = l
		}
		p.hasGather = true
	})
	return p.groupLut, p.srcLut, p.hasGather
}

// Senders returns the processors that send data to proc under the
// plan (including proc itself when it keeps data), indexed by the
// sender-group value of GatherLuts.
func (p *RemapPlan) Senders(proc int) []int {
	base := 0
	for _, mv := range p.destFromP {
		base |= (proc >> uint(mv.to) & 1) << uint(mv.from)
	}
	out := make([]int, p.GroupSize())
	for g := range out {
		s := base
		for j, mv := range p.nlFromP {
			s |= (g >> uint(j) & 1) << uint(mv.from)
		}
		out[g] = s
	}
	return out
}

// GatherLBase returns the old-local address bits that the receiving
// processor's own number determines: the bits that routed the element
// to proc in the first place (the inverse of the destination mask).
func (p *RemapPlan) GatherLBase(proc int) int {
	base := 0
	for _, mv := range p.destFromL {
		base |= (proc >> uint(mv.to) & 1) << uint(mv.from)
	}
	return base
}

// NewRemapPlan builds the plan for remapping from old to new. The two
// layouts must have identical dimensions.
func NewRemapPlan(old, new *Layout) *RemapPlan {
	if old.LgN != new.LgN || old.LgP != new.LgP {
		panic(fmt.Sprintf("addr: remap between incompatible layouts (%d/%d vs %d/%d)",
			old.LgN, old.LgP, new.LgN, new.LgP))
	}
	p := &RemapPlan{Old: old, New: new}

	// Where does each absolute bit live under the old layout?
	type src struct {
		inProc bool
		pos    int
	}
	oldSrc := make([]src, old.LgN)
	for i, b := range old.ProcBits {
		oldSrc[b] = src{true, i}
	}
	for i, b := range old.LocalBits {
		oldSrc[b] = src{false, i}
	}

	for i, b := range new.ProcBits {
		s := oldSrc[b]
		if s.inProc {
			p.destFromP = append(p.destFromP, bitMove{s.pos, i})
		} else {
			p.destFromL = append(p.destFromL, bitMove{s.pos, i})
			p.Changed++
		}
	}
	// New local bits: those sourced from the sender's local address form
	// the message offset (in new-local significance order); those sourced
	// from the sender's processor number are fixed per sender and are
	// reconstructed by the receiver during unpacking.
	off := 0
	for i, b := range new.LocalBits {
		s := oldSrc[b]
		if s.inProc {
			p.nlFromP = append(p.nlFromP, bitMove{s.pos, i})
		} else {
			p.offFromL = append(p.offFromL, bitMove{s.pos, off})
			p.nlFromM = append(p.nlFromM, bitMove{off, i})
			off++
		}
	}
	p.MsgLen = 1 << uint(off)
	if p.MsgLen != old.LocalN()>>uint(p.Changed) {
		panic("addr: remap plan internal inconsistency")
	}
	return p
}

// Dest returns the destination processor for the element held at local
// address l on processor proc under the old layout.
func (p *RemapPlan) Dest(proc, l int) int {
	return gather(proc, p.destFromP) | gather(l, p.destFromL)
}

// PackOffset returns the element's position inside the long message to
// its destination processor. Elements with the same destination receive
// distinct offsets in 0..MsgLen-1, ordered by their new local address —
// exactly the pack-mask ordering of Figure 3.20.
func (p *RemapPlan) PackOffset(l int) int {
	return gather(l, p.offFromL)
}

// UnpackLocal returns, on the receiving processor, the local address
// under the new layout for the element at position m of the message
// received from srcProc (the unpack mask of Figure 3.21).
func (p *RemapPlan) UnpackLocal(srcProc, m int) int {
	return gather(m, p.nlFromM) | gather(srcProc, p.nlFromP)
}

// GroupSize returns the number of processors in each communication
// group: 2^Changed (Lemma 4).
func (p *RemapPlan) GroupSize() int { return 1 << uint(p.Changed) }

// Dests returns every destination processor for data held by proc,
// including proc itself if it keeps data, in ascending offset order of
// the varying destination bits.
func (p *RemapPlan) Dests(proc int) []int {
	return p.AppendDests(make([]int, 0, p.GroupSize()), proc)
}

// AppendDests appends proc's destination group to dst and returns it,
// for callers that route every round and keep their own scratch.
func (p *RemapPlan) AppendDests(dst []int, proc int) []int {
	fixed := gather(proc, p.destFromP)
	for g := 0; g < p.GroupSize(); g++ {
		d := fixed
		for i, m := range p.destFromL {
			d |= (g >> uint(i) & 1) << uint(m.to)
		}
		dst = append(dst, d)
	}
	return dst
}

// KeepCount returns how many of its n elements a processor keeps across
// the remap: n / 2^Changed (Lemma 4). Note a processor keeps exactly
// MsgLen elements only if it is a member of its own destination group;
// a processor outside its group keeps nothing (see SendCounts for the
// exact per-processor accounting).
func (p *RemapPlan) KeepCount() int { return p.MsgLen }

// SendVolume returns the number of elements a processor sends to other
// processors during the remap, assuming it is a member of its own
// destination group: n - n / 2^Changed.
func (p *RemapPlan) SendVolume() int {
	return p.Old.LocalN() - p.MsgLen
}

// SendCounts returns the exact packed-path communication counters for
// proc: how many elements it ships to other processors and in how many
// messages. These equal SendVolume and GroupSize-1 only when proc is a
// member of its own destination group; a processor outside its group
// keeps nothing and sends all LocalN elements in GroupSize messages.
// Some remaps of the smart schedule in the tall-P regime produce such
// processors, so zero-copy paths that want counter parity with the
// packed exchange must use this, not SendVolume.
func (p *RemapPlan) SendCounts(proc int) (vol, msgs int) {
	vary := 0
	for _, m := range p.destFromL {
		vary |= 1 << uint(m.to)
	}
	vol, msgs = p.Old.LocalN(), p.GroupSize()
	if proc&^vary == gather(proc, p.destFromP) {
		vol -= p.MsgLen
		msgs--
	}
	return vol, msgs
}

// ChangedBits computes N_BitsChanged of Lemma 3 for a remap from old to
// new without building a full plan: the number of absolute-address bits
// that are local under old and select the processor under new.
func ChangedBits(old, new *Layout) int {
	n := 0
	for _, b := range new.ProcBits {
		if old.IsLocalBit(b) {
			n++
		}
	}
	return n
}

// Apply routes every element of the distributed array from layout old to
// layout new entirely sequentially: data[p] is the local slice of
// processor p. It is the reference implementation used to validate both
// the plan-driven machine remap and the analytic formulas. The returned
// slices are freshly allocated.
func Apply(old, new *Layout, data [][]uint32) [][]uint32 {
	P := old.P()
	n := old.LocalN()
	out := make([][]uint32, P)
	for p := range out {
		out[p] = make([]uint32, n)
	}
	for p := 0; p < P; p++ {
		if len(data[p]) != n {
			panic(fmt.Sprintf("addr: Apply processor %d holds %d elements, want %d", p, len(data[p]), n))
		}
		for l := 0; l < n; l++ {
			abs := old.Abs(p, l)
			q, nl := new.Rel(abs)
			out[q][nl] = data[p][l]
		}
	}
	return out
}
