// Package addr implements the absolute/relative address machinery of
// Chapter 3 of the paper.
//
// Every node of the bitonic sorting network has an absolute address of
// lg N bits (the row it was initially mapped to, Definition 6). A data
// layout maps each absolute address to a relative address: a processor
// number of lg P bits plus a local address of lg n bits (n = N/P). All
// layouts used by the paper — blocked (Definition 4), cyclic
// (Definition 5) and the smart layouts (Definition 7) — are pure bit
// permutations: each bit of the relative address is one particular bit
// of the absolute address. This package represents layouts that way and
// derives from them everything Chapter 3 needs: address conversion,
// changed-bit counts (Lemma 3), communication groups (Lemma 4) and pack
// plans for long-message remaps (§3.3.1).
//
// Bit indexing convention: bits are 0-indexed from the least-significant
// bit. The paper counts steps from 1, so its "step s" compares nodes
// whose absolute addresses differ in bit s-1 here, and its "stage
// lg n + k" consists of compare-exchange phases on bits
// lgn+k-1, lgn+k-2, ..., 0 with the merge direction of row r given by
// bit lgn+k of r (ascending when 0).
package addr

import (
	"fmt"
	"strings"
)

// Layout is a bit-permutation data layout: relative-address bit i of the
// processor number is absolute-address bit ProcBits[i], and local-address
// bit i is absolute-address bit LocalBits[i] (both 0-indexed, LSB first).
// Together ProcBits and LocalBits must partition 0..LgN-1.
type Layout struct {
	LgN       int    // lg of the total number of keys
	LgP       int    // lg of the number of processors
	ProcBits  []int  // len LgP; ProcBits[i] = abs bit giving proc bit i
	LocalBits []int  // len LgN-LgP; LocalBits[i] = abs bit giving local bit i
	Name      string // human-readable label for traces and figures
}

// LgLocal returns lg n, the number of local-address bits.
func (l *Layout) LgLocal() int { return l.LgN - l.LgP }

// N returns the total number of keys 2^LgN.
func (l *Layout) N() int { return 1 << l.LgN }

// P returns the number of processors 2^LgP.
func (l *Layout) P() int { return 1 << l.LgP }

// LocalN returns the keys per processor n = N/P.
func (l *Layout) LocalN() int { return 1 << l.LgLocal() }

// Proc returns the processor number holding absolute address abs.
func (l *Layout) Proc(abs int) int {
	p := 0
	for i, b := range l.ProcBits {
		p |= (abs >> uint(b) & 1) << uint(i)
	}
	return p
}

// Local returns the local address of absolute address abs on its
// processor.
func (l *Layout) Local(abs int) int {
	v := 0
	for i, b := range l.LocalBits {
		v |= (abs >> uint(b) & 1) << uint(i)
	}
	return v
}

// Rel returns both halves of the relative address of abs.
func (l *Layout) Rel(abs int) (proc, local int) {
	return l.Proc(abs), l.Local(abs)
}

// Abs reconstructs the absolute address from a relative address.
func (l *Layout) Abs(proc, local int) int {
	abs := 0
	for i, b := range l.ProcBits {
		abs |= (proc >> uint(i) & 1) << uint(b)
	}
	for i, b := range l.LocalBits {
		abs |= (local >> uint(i) & 1) << uint(b)
	}
	return abs
}

// Validate checks that the layout is a bijection: ProcBits and LocalBits
// must together use every absolute-address bit exactly once.
func (l *Layout) Validate() error {
	if len(l.ProcBits) != l.LgP {
		return fmt.Errorf("addr: layout %q has %d proc bits, want %d", l.Name, len(l.ProcBits), l.LgP)
	}
	if len(l.LocalBits) != l.LgN-l.LgP {
		return fmt.Errorf("addr: layout %q has %d local bits, want %d", l.Name, len(l.LocalBits), l.LgN-l.LgP)
	}
	seen := make([]bool, l.LgN)
	for _, b := range append(append([]int{}, l.ProcBits...), l.LocalBits...) {
		if b < 0 || b >= l.LgN {
			return fmt.Errorf("addr: layout %q references bit %d outside 0..%d", l.Name, b, l.LgN-1)
		}
		if seen[b] {
			return fmt.Errorf("addr: layout %q uses bit %d twice", l.Name, b)
		}
		seen[b] = true
	}
	return nil
}

// Equal reports whether two layouts map addresses identically.
func (l *Layout) Equal(o *Layout) bool {
	if l.LgN != o.LgN || l.LgP != o.LgP {
		return false
	}
	for i := range l.ProcBits {
		if l.ProcBits[i] != o.ProcBits[i] {
			return false
		}
	}
	for i := range l.LocalBits {
		if l.LocalBits[i] != o.LocalBits[i] {
			return false
		}
	}
	return true
}

// IsLocalBit reports whether absolute-address bit b is part of the local
// address under l (so a compare-exchange on bit b executes locally).
func (l *Layout) IsLocalBit(b int) bool {
	for _, lb := range l.LocalBits {
		if lb == b {
			return true
		}
	}
	return false
}

// String renders the absolute-address bit pattern MSB-first in the style
// of Figure 3.4: 'P' marks bits that select the processor, 'L' bits that
// form the local address. The trailing digit strings give the field
// orders.
func (l *Layout) String() string {
	var sb strings.Builder
	if l.Name != "" {
		fmt.Fprintf(&sb, "%s: ", l.Name)
	}
	for b := l.LgN - 1; b >= 0; b-- {
		if l.IsLocalBit(b) {
			sb.WriteByte('L')
		} else {
			sb.WriteByte('P')
		}
	}
	return sb.String()
}

// Blocked returns the blocked layout of Definition 4: key i lives on
// processor floor(i/n), so the top lg P absolute bits select the
// processor and the bottom lg n bits are the local address.
func Blocked(lgN, lgP int) *Layout {
	checkDims(lgN, lgP)
	lgn := lgN - lgP
	l := &Layout{LgN: lgN, LgP: lgP, Name: "blocked"}
	for i := 0; i < lgP; i++ {
		l.ProcBits = append(l.ProcBits, lgn+i)
	}
	for i := 0; i < lgn; i++ {
		l.LocalBits = append(l.LocalBits, i)
	}
	return l
}

// Cyclic returns the cyclic layout of Definition 5: key i lives on
// processor i mod P, so the bottom lg P absolute bits select the
// processor and the top lg n bits are the local address.
func Cyclic(lgN, lgP int) *Layout {
	checkDims(lgN, lgP)
	lgn := lgN - lgP
	l := &Layout{LgN: lgN, LgP: lgP, Name: "cyclic"}
	for i := 0; i < lgP; i++ {
		l.ProcBits = append(l.ProcBits, i)
	}
	for i := 0; i < lgn; i++ {
		l.LocalBits = append(l.LocalBits, lgP+i)
	}
	return l
}

// Smart returns the smart layout of Definition 7 for a remap performed
// at step s (1-indexed, as in the paper) of stage lgn+k, where
// 0 < k <= lgP and 0 < s <= lgn+k. The returned layout lets the next
// lg n steps of the bitonic sorting network execute locally (Lemma 2).
//
// For an inside remap (s >= lgn) the local field is the single run of
// bits B = s-1 .. s-lgn (Figure 3.7); for a crossing remap (s < lgn) it
// is the two runs B = lgn+k .. t and D = s-1 .. 0 with t = s+k+1
// (Figure 3.8, all 0-indexed here). The processor number is formed from
// the remaining fields A|C with A most significant; the local address is
// B|D with B most significant, matching the figures.
//
// The special last-remap case (k = lgP, s <= lgn) degenerates to the
// blocked layout, exactly as Definition 7 prescribes (a = lgn, b = 0,
// t = lgn).
func Smart(lgN, lgP, k, s int) *Layout {
	checkDims(lgN, lgP)
	lgn := lgN - lgP
	if k <= 0 || k > lgP {
		panic(fmt.Sprintf("addr: Smart stage parameter k=%d outside 1..%d", k, lgP))
	}
	if s <= 0 || s > lgn+k {
		panic(fmt.Sprintf("addr: Smart step s=%d outside 1..%d", s, lgn+k))
	}
	if k == lgP && s <= lgn {
		b := Blocked(lgN, lgP)
		b.Name = fmt.Sprintf("smart(k=%d,s=%d,last)", k, s)
		return b
	}
	l := &Layout{LgN: lgN, LgP: lgP, Name: fmt.Sprintf("smart(k=%d,s=%d)", k, s)}
	if s >= lgn {
		// Inside remap: local bits are s-1 .. s-lgn; t low bits (C) and
		// the high bits (A) form the processor number as A|C.
		t := s - lgn
		for i := 0; i < t; i++ { // C field, low part of proc number
			l.ProcBits = append(l.ProcBits, i)
		}
		for b := s; b < lgN; b++ { // A field, high part
			l.ProcBits = append(l.ProcBits, b)
		}
		for i := 0; i < lgn; i++ { // B field, the whole local address
			l.LocalBits = append(l.LocalBits, t+i)
		}
		return l
	}
	// Crossing remap: a = s steps finish stage lgn+k (bits a-1..0, the D
	// field) and b = lgn-a steps start stage lgn+k+1 (bits t+b-1..t, the
	// B field), with t = s+k+1.
	a := s
	b := lgn - a
	t := s + k + 1
	for i := a; i < t; i++ { // C field (k+1 bits), low part of proc number
		l.ProcBits = append(l.ProcBits, i)
	}
	for i := t + b; i < lgN; i++ { // A field, high part
		l.ProcBits = append(l.ProcBits, i)
	}
	for i := 0; i < a; i++ { // D field, low part of local address
		l.LocalBits = append(l.LocalBits, i)
	}
	for i := 0; i < b; i++ { // B field, high part of local address
		l.LocalBits = append(l.LocalBits, t+i)
	}
	return l
}

// SwapLocalFields returns a copy of l whose local address interprets the
// same bits with the low a bits and the remaining high bits interchanged:
// local' = D<<b | B where local = B<<a | D. Theorem 3 uses this for the
// second phase of a crossing remap ("we change the local remap by
// interchanging the first b bits of the local address with the last a
// bits"). The processor mapping is unchanged, so no communication is
// implied — it is a purely local re-indexing.
func (l *Layout) SwapLocalFields(a int) *Layout {
	lgn := l.LgLocal()
	if a < 0 || a > lgn {
		panic(fmt.Sprintf("addr: SwapLocalFields a=%d outside 0..%d", a, lgn))
	}
	out := &Layout{LgN: l.LgN, LgP: l.LgP, Name: l.Name + "+swapped"}
	out.ProcBits = append([]int{}, l.ProcBits...)
	b := lgn - a
	// old local bit order: [D (a bits) | B (b bits)] reading LSB first.
	// new order: [B | D].
	out.LocalBits = append(out.LocalBits, l.LocalBits[a:]...) // B becomes low
	out.LocalBits = append(out.LocalBits, l.LocalBits[:a]...) // D becomes high
	if len(out.LocalBits) != a+b {
		panic("addr: SwapLocalFields internal error")
	}
	return out
}

func checkDims(lgN, lgP int) {
	if lgP < 0 || lgN < lgP {
		panic(fmt.Sprintf("addr: invalid dimensions lgN=%d lgP=%d", lgN, lgP))
	}
}
