package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allDims() [][2]int {
	var dims [][2]int
	for lgN := 1; lgN <= 12; lgN++ {
		for lgP := 0; lgP <= lgN; lgP++ {
			dims = append(dims, [2]int{lgN, lgP})
		}
	}
	return dims
}

func TestBlockedMatchesDefinition4(t *testing.T) {
	for _, d := range allDims() {
		lgN, lgP := d[0], d[1]
		l := Blocked(lgN, lgP)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		n := l.LocalN()
		for i := 0; i < l.N(); i++ {
			if got, want := l.Proc(i), i/n; got != want {
				t.Fatalf("blocked(%d,%d): key %d on proc %d, Definition 4 wants %d", lgN, lgP, i, got, want)
			}
			if got, want := l.Local(i), i%n; got != want {
				t.Fatalf("blocked(%d,%d): key %d at local %d, want %d", lgN, lgP, i, got, want)
			}
		}
	}
}

func TestCyclicMatchesDefinition5(t *testing.T) {
	for _, d := range allDims() {
		lgN, lgP := d[0], d[1]
		l := Cyclic(lgN, lgP)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		P := l.P()
		for i := 0; i < l.N(); i++ {
			if got, want := l.Proc(i), i%P; got != want {
				t.Fatalf("cyclic(%d,%d): key %d on proc %d, want %d", lgN, lgP, i, got, want)
			}
			if got, want := l.Local(i), i/P; got != want {
				t.Fatalf("cyclic(%d,%d): key %d at local %d, want %d", lgN, lgP, i, got, want)
			}
		}
	}
}

func TestAbsRelRoundTrip(t *testing.T) {
	layouts := []*Layout{
		Blocked(10, 3), Cyclic(10, 3),
		Smart(10, 3, 1, 8), Smart(10, 3, 2, 4), Smart(10, 3, 3, 10),
	}
	for _, l := range layouts {
		for abs := 0; abs < l.N(); abs++ {
			p, loc := l.Rel(abs)
			if p < 0 || p >= l.P() || loc < 0 || loc >= l.LocalN() {
				t.Fatalf("%s: abs %d maps out of range (%d,%d)", l.Name, abs, p, loc)
			}
			if back := l.Abs(p, loc); back != abs {
				t.Fatalf("%s: roundtrip %d -> (%d,%d) -> %d", l.Name, abs, p, loc, back)
			}
		}
	}
}

// Every layout must be a bijection between absolute and relative
// addresses.
func TestLayoutBijective(t *testing.T) {
	check := func(l *Layout) {
		seen := make([]bool, l.N())
		for p := 0; p < l.P(); p++ {
			for loc := 0; loc < l.LocalN(); loc++ {
				abs := l.Abs(p, loc)
				if abs < 0 || abs >= l.N() || seen[abs] {
					t.Fatalf("%s: (%d,%d) -> abs %d duplicated or out of range", l.Name, p, loc, abs)
				}
				seen[abs] = true
			}
		}
	}
	for _, d := range [][2]int{{8, 2}, {8, 4}, {10, 5}, {6, 6}, {9, 0}} {
		check(Blocked(d[0], d[1]))
		check(Cyclic(d[0], d[1]))
	}
	lgN, lgP := 9, 3
	lgn := lgN - lgP
	for k := 1; k <= lgP; k++ {
		for s := 1; s <= lgn+k; s++ {
			check(Smart(lgN, lgP, k, s))
		}
	}
}

// Lemma 2 precondition: after a smart remap at (k, s), the lg n network
// steps that follow all operate on bits that are local.
func TestSmartLayoutMakesNextStepsLocal(t *testing.T) {
	for _, d := range [][2]int{{8, 2}, {10, 4}, {12, 5}, {6, 4}} {
		lgN, lgP := d[0], d[1]
		lgn := lgN - lgP
		for k := 1; k <= lgP; k++ {
			for s := 1; s <= lgn+k; s++ {
				l := Smart(lgN, lgP, k, s)
				if err := l.Validate(); err != nil {
					t.Fatal(err)
				}
				var stepBits []int
				if k == lgP && s <= lgn {
					// Last remap: only the remaining s steps of the final
					// stage follow; they are bits s-1..0.
					for b := 0; b < s; b++ {
						stepBits = append(stepBits, b)
					}
				} else if s >= lgn {
					for b := s - lgn; b < s; b++ {
						stepBits = append(stepBits, b)
					}
				} else {
					for b := 0; b < s; b++ {
						stepBits = append(stepBits, b)
					}
					for b := 0; b < lgn-s; b++ {
						stepBits = append(stepBits, lgN-lgP+k-b)
					}
				}
				for _, b := range stepBits {
					if !l.IsLocalBit(b) {
						t.Fatalf("smart(lgN=%d,lgP=%d,k=%d,s=%d): step bit %d is not local (%s)",
							lgN, lgP, k, s, b, l)
					}
				}
			}
		}
	}
}

func TestSmartLastRemapIsBlocked(t *testing.T) {
	lgN, lgP := 10, 3
	lgn := lgN - lgP
	blocked := Blocked(lgN, lgP)
	for s := 1; s <= lgn; s++ {
		l := Smart(lgN, lgP, lgP, s)
		if !l.Equal(blocked) {
			t.Fatalf("last remap (s=%d) should be the blocked layout, got %s", s, l)
		}
	}
}

func TestSmartPanicsOnBadParams(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {4, 1}, {1, 0}, {1, 12}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Smart(k=%d,s=%d) should panic", bad[0], bad[1])
				}
			}()
			Smart(10, 3, bad[0], bad[1])
		}()
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l := Blocked(6, 2)
	l.ProcBits[0] = l.LocalBits[0] // duplicate use of a bit
	if l.Validate() == nil {
		t.Error("Validate should reject duplicated bit")
	}
	l2 := Blocked(6, 2)
	l2.ProcBits[1] = 99
	if l2.Validate() == nil {
		t.Error("Validate should reject out-of-range bit")
	}
	l3 := Blocked(6, 2)
	l3.ProcBits = l3.ProcBits[:1]
	if l3.Validate() == nil {
		t.Error("Validate should reject wrong proc-bit count")
	}
	l4 := Blocked(6, 2)
	l4.LocalBits = append(l4.LocalBits, 5)
	if l4.Validate() == nil {
		t.Error("Validate should reject wrong local-bit count")
	}
}

func TestStringPattern(t *testing.T) {
	// Blocked N=32, P=4: PPLLL (MSB first).
	l := Blocked(5, 2)
	l.Name = ""
	if got := l.String(); got != "PPLLL" {
		t.Errorf("blocked pattern = %q, want PPLLL", got)
	}
	c := Cyclic(5, 2)
	c.Name = ""
	if got := c.String(); got != "LLLPP" {
		t.Errorf("cyclic pattern = %q, want LLLPP", got)
	}
}

func TestSwapLocalFields(t *testing.T) {
	lgN, lgP := 10, 3
	lgn := lgN - lgP
	for k := 1; k < lgP; k++ {
		for s := 1; s < lgn; s++ { // crossing remaps
			l := Smart(lgN, lgP, k, s)
			sw := l.SwapLocalFields(s)
			if err := sw.Validate(); err != nil {
				t.Fatal(err)
			}
			for abs := 0; abs < l.N(); abs++ {
				if l.Proc(abs) != sw.Proc(abs) {
					t.Fatalf("SwapLocalFields changed processor assignment at abs %d", abs)
				}
			}
			// Swapping twice with the complementary split restores the
			// original local order.
			b := lgn - s
			back := sw.SwapLocalFields(b)
			for abs := 0; abs < l.N(); abs++ {
				if l.Local(abs) != back.Local(abs) {
					t.Fatalf("double swap did not restore local order at abs %d", abs)
				}
			}
		}
	}
}

func TestSwapLocalFieldsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SwapLocalFields should panic on out-of-range a")
		}
	}()
	Blocked(6, 2).SwapLocalFields(7)
}

func TestEqual(t *testing.T) {
	a := Blocked(8, 3)
	b := Blocked(8, 3)
	if !a.Equal(b) {
		t.Error("identical blocked layouts should be Equal")
	}
	if a.Equal(Cyclic(8, 3)) {
		t.Error("blocked and cyclic should differ")
	}
	if a.Equal(Blocked(8, 2)) {
		t.Error("different dims should differ")
	}
}

// Property: Proc/Local of random layouts built from random bit
// permutations roundtrip through Abs.
func TestQuickRandomPermutationLayouts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lgN := 2 + rng.Intn(10)
		lgP := rng.Intn(lgN + 1)
		perm := rng.Perm(lgN)
		l := &Layout{LgN: lgN, LgP: lgP, ProcBits: perm[:lgP], LocalBits: perm[lgP:], Name: "random"}
		if err := l.Validate(); err != nil {
			return false
		}
		for trial := 0; trial < 32; trial++ {
			abs := rng.Intn(l.N())
			p, loc := l.Rel(abs)
			if l.Abs(p, loc) != abs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
