package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// layoutPairs returns interesting (old, new) remap pairs for a given
// dimension, covering blocked<->cyclic and consecutive smart layouts.
func layoutPairs(lgN, lgP int) [][2]*Layout {
	lgn := lgN - lgP
	pairs := [][2]*Layout{
		{Blocked(lgN, lgP), Cyclic(lgN, lgP)},
		{Cyclic(lgN, lgP), Blocked(lgN, lgP)},
	}
	var smarts []*Layout
	for k := 1; k <= lgP; k++ {
		for s := 1; s <= lgn+k; s += 2 {
			smarts = append(smarts, Smart(lgN, lgP, k, s))
		}
	}
	prev := Blocked(lgN, lgP)
	for _, s := range smarts {
		pairs = append(pairs, [2]*Layout{prev, s})
		prev = s
	}
	return pairs
}

func TestRemapPlanRoutesLikeLayouts(t *testing.T) {
	for _, d := range [][2]int{{8, 2}, {8, 4}, {10, 3}, {6, 3}} {
		for _, pair := range layoutPairs(d[0], d[1]) {
			old, new := pair[0], pair[1]
			plan := NewRemapPlan(old, new)
			if got := ChangedBits(old, new); got != plan.Changed {
				t.Fatalf("%s->%s: ChangedBits=%d, plan.Changed=%d", old.Name, new.Name, got, plan.Changed)
			}
			n := old.LocalN()
			for p := 0; p < old.P(); p++ {
				seen := map[[2]int]bool{}
				for l := 0; l < n; l++ {
					abs := old.Abs(p, l)
					wantQ, wantNL := new.Rel(abs)
					q := plan.Dest(p, l)
					if q != wantQ {
						t.Fatalf("%s->%s: Dest(%d,%d)=%d, want %d", old.Name, new.Name, p, l, q, wantQ)
					}
					m := plan.PackOffset(l)
					if m < 0 || m >= plan.MsgLen {
						t.Fatalf("%s->%s: PackOffset(%d)=%d out of range %d", old.Name, new.Name, l, m, plan.MsgLen)
					}
					if seen[[2]int{q, m}] {
						t.Fatalf("%s->%s: duplicate slot (%d,%d)", old.Name, new.Name, q, m)
					}
					seen[[2]int{q, m}] = true
					if nl := plan.UnpackLocal(p, m); nl != wantNL {
						t.Fatalf("%s->%s: UnpackLocal(%d,%d)=%d, want %d", old.Name, new.Name, p, m, nl, wantNL)
					}
				}
			}
		}
	}
}

// Lemma 4: processors exchange data in groups of 2^Changed; each
// processor keeps n/2^Changed elements and sends n/2^Changed to every
// other group member.
func TestRemapPlanLemma4(t *testing.T) {
	for _, d := range [][2]int{{8, 3}, {10, 4}, {6, 3}} {
		for _, pair := range layoutPairs(d[0], d[1]) {
			old, new := pair[0], pair[1]
			plan := NewRemapPlan(old, new)
			n := old.LocalN()
			for p := 0; p < old.P(); p++ {
				counts := map[int]int{}
				for l := 0; l < n; l++ {
					counts[plan.Dest(p, l)]++
				}
				if len(counts) != plan.GroupSize() {
					t.Fatalf("%s->%s proc %d: %d destinations, want group size %d",
						old.Name, new.Name, p, len(counts), plan.GroupSize())
				}
				for q, c := range counts {
					if c != plan.MsgLen {
						t.Fatalf("%s->%s proc %d: sends %d to %d, want %d", old.Name, new.Name, p, c, q, plan.MsgLen)
					}
				}
				dests := plan.Dests(p)
				if len(dests) != plan.GroupSize() {
					t.Fatalf("Dests length %d, want %d", len(dests), plan.GroupSize())
				}
				for _, q := range dests {
					if counts[q] == 0 {
						t.Fatalf("%s->%s proc %d: Dests lists %d which receives nothing", old.Name, new.Name, p, q)
					}
				}
				if plan.SendVolume() != n-plan.MsgLen {
					t.Fatalf("SendVolume=%d, want %d", plan.SendVolume(), n-plan.MsgLen)
				}
				if plan.KeepCount() != plan.MsgLen {
					t.Fatalf("KeepCount=%d, want %d", plan.KeepCount(), plan.MsgLen)
				}
			}
		}
	}
}

// For smart-remap sequences the paper additionally claims group members
// are consecutive processors starting at a multiple of the group size
// (Lemma 4). Verify it for consecutive smart layouts.
func TestSmartGroupsAreConsecutive(t *testing.T) {
	lgN, lgP := 12, 4
	lgn := lgN - lgP
	prev := Blocked(lgN, lgP)
	// Follow the natural smart-remap progression: remap at the first
	// step of each communication phase. Here we take the canonical
	// HeadRemap positions: each remap executes lg n steps.
	k, s := 1, lgn+1
	for k <= lgP {
		cur := Smart(lgN, lgP, k, s)
		plan := NewRemapPlan(prev, cur)
		for p := 0; p < 1<<lgP; p++ {
			dests := plan.Dests(p)
			min, max := dests[0], dests[0]
			for _, q := range dests {
				if q < min {
					min = q
				}
				if q > max {
					max = q
				}
			}
			gs := plan.GroupSize()
			if max-min+1 != gs || min%gs != 0 {
				t.Fatalf("remap %s->%s proc %d: group %v not consecutive aligned", prev.Name, cur.Name, p, dests)
			}
			if min != gs*(p/gs) {
				t.Fatalf("group start %d, Lemma 4 wants %d", min, gs*(p/gs))
			}
		}
		prev = cur
		// Advance lg n steps through the network (the smart schedule).
		if s > lgn {
			s -= lgn
		} else {
			k++
			s = s + k - lgn // NextStep via t = s+k+1 in 1-indexed terms
			s = 0
			break
		}
		if s <= 0 {
			break
		}
	}
}

func TestApplyMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range [][2]int{{8, 3}, {10, 2}} {
		for _, pair := range layoutPairs(d[0], d[1]) {
			old, new := pair[0], pair[1]
			P, n := old.P(), old.LocalN()
			data := make([][]uint32, P)
			for p := range data {
				data[p] = make([]uint32, n)
				for l := range data[p] {
					data[p][l] = rng.Uint32()
				}
			}
			want := Apply(old, new, data)

			// Plan-driven: pack, transfer, unpack.
			plan := NewRemapPlan(old, new)
			msgs := map[[2]int][]uint32{} // (src,dst) -> message
			for p := 0; p < P; p++ {
				for _, q := range plan.Dests(p) {
					msgs[[2]int{p, q}] = make([]uint32, plan.MsgLen)
				}
				for l := 0; l < n; l++ {
					q := plan.Dest(p, l)
					msgs[[2]int{p, q}][plan.PackOffset(l)] = data[p][l]
				}
			}
			got := make([][]uint32, P)
			for q := range got {
				got[q] = make([]uint32, n)
			}
			for key, msg := range msgs {
				src, dst := key[0], key[1]
				for m, v := range msg {
					got[dst][plan.UnpackLocal(src, m)] = v
				}
			}
			for p := 0; p < P; p++ {
				for l := 0; l < n; l++ {
					if got[p][l] != want[p][l] {
						t.Fatalf("%s->%s: plan-driven remap differs at (%d,%d)", old.Name, new.Name, p, l)
					}
				}
			}
		}
	}
}

func TestApplyPanicsOnShortData(t *testing.T) {
	old, new := Blocked(4, 1), Cyclic(4, 1)
	data := [][]uint32{make([]uint32, 8), make([]uint32, 7)}
	defer func() {
		if recover() == nil {
			t.Fatal("Apply should panic on wrong per-processor length")
		}
	}()
	Apply(old, new, data)
}

func TestNewRemapPlanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRemapPlan should panic on dimension mismatch")
		}
	}()
	NewRemapPlan(Blocked(8, 2), Blocked(8, 3))
}

// Identity remap: zero changed bits, everything kept.
func TestIdentityRemap(t *testing.T) {
	l := Blocked(8, 3)
	plan := NewRemapPlan(l, Blocked(8, 3))
	if plan.Changed != 0 || plan.GroupSize() != 1 || plan.SendVolume() != 0 {
		t.Fatalf("identity remap: changed=%d group=%d send=%d", plan.Changed, plan.GroupSize(), plan.SendVolume())
	}
	for l2 := 0; l2 < l.LocalN(); l2++ {
		if plan.PackOffset(l2) != l2 {
			t.Fatalf("identity pack offset should be identity")
		}
	}
}

// Property: the pack offsets of elements bound for one destination are
// exactly 0..MsgLen-1 (the long message is dense).
func TestQuickPackOffsetsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lgN := 4 + rng.Intn(6)
		lgP := 1 + rng.Intn(lgN-1)
		pairs := layoutPairs(lgN, lgP)
		pair := pairs[rng.Intn(len(pairs))]
		plan := NewRemapPlan(pair[0], pair[1])
		p := rng.Intn(pair[0].P())
		used := map[int]map[int]bool{}
		for l := 0; l < pair[0].LocalN(); l++ {
			q := plan.Dest(p, l)
			if used[q] == nil {
				used[q] = map[int]bool{}
			}
			m := plan.PackOffset(l)
			if used[q][m] {
				return false
			}
			used[q][m] = true
		}
		for _, offs := range used {
			if len(offs) != plan.MsgLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Route and UnpackTable (the LUT-backed hot paths) must agree with the
// per-element Dest/PackOffset/UnpackLocal definitions.
func TestRouteTablesMatchScalarPath(t *testing.T) {
	for _, d := range [][2]int{{8, 3}, {10, 4}} {
		for _, pair := range layoutPairs(d[0], d[1]) {
			plan := NewRemapPlan(pair[0], pair[1])
			n := pair[0].LocalN()
			dest := make([]int32, n)
			off := make([]int32, n)
			nl := make([]int32, plan.MsgLen)
			for p := 0; p < pair[0].P(); p++ {
				plan.Route(p, dest, off)
				for l := 0; l < n; l++ {
					if int(dest[l]) != plan.Dest(p, l) || int(off[l]) != plan.PackOffset(l) {
						t.Fatalf("%s->%s: Route differs at (%d,%d)", pair[0].Name, pair[1].Name, p, l)
					}
				}
				plan.UnpackTable(p, nl)
				for m := 0; m < plan.MsgLen; m++ {
					if int(nl[m]) != plan.UnpackLocal(p, m) {
						t.Fatalf("%s->%s: UnpackTable differs at (%d,%d)", pair[0].Name, pair[1].Name, p, m)
					}
				}
			}
		}
	}
}

func TestRoutePanicsOnShortBuffers(t *testing.T) {
	plan := NewRemapPlan(Blocked(6, 2), Cyclic(6, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	plan.Route(0, make([]int32, 3), make([]int32, 3))
}

// TestGatherLutsInvertPlan proves the inverse (pull) routing tables
// reproduce exactly the placement of the forward (push) path: for every
// receiving processor q and new local address i, the element gathered
// from Senders(q)[group[i]] at old local GatherLBase(q)|local[i] is the
// element the pack → exchange → unpack pipeline would have delivered
// there — validated against the layouts themselves and against Apply.
func TestGatherLutsInvertPlan(t *testing.T) {
	for _, d := range [][2]int{{8, 2}, {8, 4}, {10, 3}, {6, 3}} {
		for _, pair := range layoutPairs(d[0], d[1]) {
			old, new := pair[0], pair[1]
			plan := NewRemapPlan(old, new)
			group, local, ok := plan.GatherLuts()
			if !ok {
				t.Fatalf("%s->%s: GatherLuts unavailable at n=%d", old.Name, new.Name, old.LocalN())
			}
			n := old.LocalN()
			P := old.P()

			data := make([][]uint32, P)
			rng := rand.New(rand.NewSource(7))
			for p := range data {
				data[p] = make([]uint32, n)
				for l := range data[p] {
					data[p][l] = rng.Uint32()
				}
			}
			want := Apply(old, new, data)

			for q := 0; q < P; q++ {
				senders := plan.Senders(q)
				if len(senders) != plan.GroupSize() {
					t.Fatalf("%s->%s: Senders(%d) has %d entries, want %d",
						old.Name, new.Name, q, len(senders), plan.GroupSize())
				}
				base := plan.GatherLBase(q)
				for i := 0; i < n; i++ {
					abs := new.Abs(q, i)
					wantSrc, wantSL := old.Rel(abs)
					src := senders[group[i]]
					sl := base | int(local[i])
					if src != wantSrc || sl != wantSL {
						t.Fatalf("%s->%s: gather(%d,%d) = proc %d local %d, want proc %d local %d",
							old.Name, new.Name, q, i, src, sl, wantSrc, wantSL)
					}
					if got := data[src][sl]; got != want[q][i] {
						t.Fatalf("%s->%s: gathered value %d != Apply value %d at (%d,%d)",
							old.Name, new.Name, got, want[q][i], q, i)
					}
				}
			}
		}
	}
}
