package network

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lg := range []int{0, 1, 2, 5, 10, 14} {
		n := 1 << uint(lg)
		data := make([]uint32, n)
		for i := range data {
			data[i] = rng.Uint32()
		}
		want := append([]uint32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		Sort(data)
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("n=%d: wrong at %d", n, i)
			}
		}
	}
}

func TestSortPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Sort(make([]uint32, 12))
}

// The zero-one principle: a comparator network sorts all inputs iff it
// sorts all 0-1 inputs. Exhaustively check every boolean input for
// N = 16 — a complete correctness proof of the network construction.
func TestZeroOnePrincipleExhaustive(t *testing.T) {
	const lgN = 4
	const n = 1 << lgN
	cs := Comparators(lgN)
	data := make([]uint32, n)
	for mask := 0; mask < 1<<n; mask++ {
		ones := 0
		for i := 0; i < n; i++ {
			data[i] = uint32(mask >> uint(i) & 1)
			ones += int(data[i])
		}
		ApplyComparators(data, cs)
		for i := 0; i < n; i++ {
			want := uint32(0)
			if i >= n-ones {
				want = 1
			}
			if data[i] != want {
				t.Fatalf("mask %b: output %v not sorted", mask, data)
			}
		}
	}
}

// The network has exactly N/2 * lgN(lgN+1)/2 comparators.
func TestComparatorCount(t *testing.T) {
	for lgN := 1; lgN <= 8; lgN++ {
		n := 1 << uint(lgN)
		want := n / 2 * lgN * (lgN + 1) / 2
		if got := len(Comparators(lgN)); got != want {
			t.Errorf("lgN=%d: %d comparators, want %d", lgN, got, want)
		}
	}
}

// Lemma 6 and Lemma 7 must hold at every stage boundary and column of a
// real execution.
func TestLemma6And7DuringExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		lgN := 3 + rng.Intn(6)
		n := 1 << uint(lgN)
		data := make([]uint32, n)
		for i := range data {
			data[i] = rng.Uint32() % 64 // force duplicates too
		}
		for stage := 1; stage <= lgN; stage++ {
			if err := CheckStageInput(data, stage); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for bit := stage - 1; bit >= 0; bit-- {
				// Before executing step bit+1 ... we are at column bit+1.
				if err := CheckColumn(data, bit+1); err != nil {
					t.Fatalf("trial %d stage %d: %v", trial, stage, err)
				}
				RunStep(data, stage, bit)
			}
		}
		for i := 1; i < n; i++ {
			if data[i-1] > data[i] {
				t.Fatalf("trial %d: final output not sorted", trial)
			}
		}
	}
}

func TestCheckersRejectBadData(t *testing.T) {
	if err := CheckStageInput([]uint32{1, 0, 0, 1}, 2); err == nil {
		t.Error("CheckStageInput should reject non-alternating runs")
	}
	if err := CheckColumn([]uint32{1, 0, 1, 0}, 2); err == nil {
		t.Error("CheckColumn should reject non-bitonic sequences")
	}
	if err := CheckStageInput([]uint32{1, 2}, 5); err == nil {
		t.Error("CheckStageInput should reject oversized stage")
	}
	if err := CheckColumn([]uint32{1, 2}, 5); err == nil {
		t.Error("CheckColumn should reject oversized column")
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(10))
		data := make([]uint32, n)
		for i := range data {
			data[i] = rng.Uint32() % 1000
		}
		want := append([]uint32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		Sort(data)
		for i := range want {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNetworkSort(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]uint32, 1<<14)
	for i := range data {
		data[i] = rng.Uint32()
	}
	work := make([]uint32, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, data)
		Sort(work)
	}
}
