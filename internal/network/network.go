// Package network implements the bitonic sorting network of Definition 3
// directly: lg N stages, where stage k performs compare-exchange steps
// on address bits k-1 .. 0 and the merge direction of row r is given by
// bit k of r. It serves as the sequential reference implementation that
// every parallel algorithm in this module is validated against, and
// provides the data-format checkers for Lemma 6 and Lemma 7. All
// entry points are generic over the element layer; as a reference
// implementation they compare through element.Less rather than
// dispatching to specialized kernels.
package network

import (
	"fmt"

	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/intbits"
)

// Sort runs the full bitonic sorting network on data in place. The
// length must be a power of two. Complexity is O(n lg^2 n).
func Sort[E element.Elem](data []E) {
	n := len(data)
	if n&(n-1) != 0 {
		panic("network: length must be a power of two")
	}
	lgN := intbits.Log2(n)
	for stage := 1; stage <= lgN; stage++ {
		RunStage(data, stage)
	}
}

// RunStage executes all steps of one stage (bits stage-1 down to 0).
func RunStage[E element.Elem](data []E, stage int) {
	for bit := stage - 1; bit >= 0; bit-- {
		RunStep(data, stage, bit)
	}
}

// RunStep executes one compare-exchange step: every pair of rows
// differing in the given bit is ordered, ascending where bit `stage` of
// the row is 0 and descending where it is 1 (Definition 3's
// (r div 2^c) mod 2 = (r div 2^s) mod 2 rule). For the final stage
// (stage == lg N) the direction is ascending everywhere.
func RunStep[E element.Elem](data []E, stage, bit int) {
	n := len(data)
	for r := 0; r < n; r++ {
		if r>>uint(bit)&1 != 0 {
			continue
		}
		partner := r | 1<<uint(bit)
		asc := r>>uint(stage)&1 == 0
		if element.Less(data[partner], data[r]) == asc {
			data[r], data[partner] = data[partner], data[r]
		}
	}
}

// CheckStageInput verifies Lemma 6: the input of stage k consists of
// alternating increasing and decreasing sorted sequences of length
// 2^(k-1).
func CheckStageInput[E element.Elem](data []E, stage int) error {
	n := len(data)
	run := 1 << uint(stage-1)
	if run > n {
		return fmt.Errorf("network: stage %d run length %d exceeds data size %d", stage, run, n)
	}
	for i := 0; i*run < n; i++ {
		seg := data[i*run : (i+1)*run]
		asc := i%2 == 0
		if !bitseq.IsSorted(seg, asc) {
			return fmt.Errorf("network: stage %d input run %d not sorted (asc=%v)", stage, i, asc)
		}
	}
	return nil
}

// CheckColumn verifies Lemma 7: at column s of a stage (i.e. after the
// stage has executed its steps down to, but not including, step s) the
// data consists of 2^(lgN-s) bitonic sequences of length 2^s, with the
// bitonic-split dominance ordering inside each enclosing merge.
func CheckColumn[E element.Elem](data []E, col int) error {
	n := len(data)
	seq := 1 << uint(col)
	if seq > n {
		return fmt.Errorf("network: column %d sequence length %d exceeds data size %d", col, seq, n)
	}
	for i := 0; i*seq < n; i++ {
		if !bitseq.IsBitonic(data[i*seq : (i+1)*seq]) {
			return fmt.Errorf("network: column %d sequence %d not bitonic", col, i)
		}
	}
	return nil
}

// Comparator is one compare-exchange of the network: rows Low and High
// (Low < High) are compared and Low receives the minimum iff MinAtLow.
type Comparator struct {
	Low, High int
	MinAtLow  bool
}

// Comparators lists every compare-exchange of the network for 2^lgN
// inputs in execution order. Useful for zero-one-principle testing and
// for counting the network's O(n lg^2 n) size.
func Comparators(lgN int) []Comparator {
	n := 1 << uint(lgN)
	var out []Comparator
	for stage := 1; stage <= lgN; stage++ {
		for bit := stage - 1; bit >= 0; bit-- {
			for r := 0; r < n; r++ {
				if r>>uint(bit)&1 != 0 {
					continue
				}
				out = append(out, Comparator{
					Low:      r,
					High:     r | 1<<uint(bit),
					MinAtLow: r>>uint(stage)&1 == 0,
				})
			}
		}
	}
	return out
}

// ApplyComparators runs a comparator list over data in place.
func ApplyComparators[E element.Elem](data []E, cs []Comparator) {
	for _, c := range cs {
		if element.Less(data[c.High], data[c.Low]) == c.MinAtLow {
			data[c.Low], data[c.High] = data[c.High], data[c.Low]
		}
	}
}
