package ntt

import (
	"testing"
	"testing/quick"

	"parbitonic/internal/machine"
	"parbitonic/internal/workload"
)

func testMachine(t testing.TB, cfg machine.Config) *machine.Machine {
	t.Helper()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m
}

func randomPoints(n int, seed uint64) []uint32 {
	rng := workload.NewRNG(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % Modulus
	}
	return out
}

func TestModArithmetic(t *testing.T) {
	if modAdd(Modulus-1, 1) != 0 {
		t.Error("modAdd wraparound")
	}
	if modSub(0, 1) != Modulus-1 {
		t.Error("modSub wraparound")
	}
	if modMul(Modulus-1, Modulus-1) != 1 {
		t.Error("(-1)*(-1) should be 1")
	}
	if ModPow(2, 10) != 1024 {
		t.Error("ModPow small case")
	}
	for _, a := range []uint32{1, 2, 31, 12345, Modulus - 2} {
		if modMul(a, ModInv(a)) != 1 {
			t.Errorf("ModInv(%d) wrong", a)
		}
	}
}

func TestRootOrders(t *testing.T) {
	for lg := 0; lg <= 12; lg++ {
		w := Root(lg)
		if ModPow(w, uint64(1)<<uint(lg)) != 1 {
			t.Fatalf("Root(%d) is not a 2^%d-th root", lg, lg)
		}
		if lg > 0 && ModPow(w, uint64(1)<<uint(lg-1)) == 1 {
			t.Fatalf("Root(%d) is not primitive", lg)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, lg := range []int{0, 1, 2, 4, 6, 8} {
		n := 1 << uint(lg)
		a := randomPoints(n, uint64(lg)+1)
		want := NaiveDFT(a)
		got := append([]uint32(nil), a...)
		Forward(got)
		for i := 0; i < n; i++ {
			if got[i] != want[BitRev(i, lg)] {
				t.Fatalf("lg=%d: Forward[%d]=%d, naive[bitrev]=%d", lg, i, got[i], want[BitRev(i, lg)])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, lg := range []int{0, 1, 3, 7, 12, 16} {
		n := 1 << uint(lg)
		a := randomPoints(n, uint64(lg)+99)
		work := append([]uint32(nil), a...)
		Forward(work)
		Inverse(work)
		for i := range a {
			if work[i] != a[i] {
				t.Fatalf("lg=%d: roundtrip broken at %d", lg, i)
			}
		}
	}
}

func TestConvolveMatchesSchoolbook(t *testing.T) {
	rng := workload.NewRNG(5)
	for trial := 0; trial < 30; trial++ {
		la := 1 + rng.Intn(40)
		lb := 1 + rng.Intn(40)
		a := randomPoints(la, uint64(trial))
		b := randomPoints(lb, uint64(trial)+1000)
		want := make([]uint32, la+lb-1)
		for i, x := range a {
			for j, y := range b {
				want[i+j] = modAdd(want[i+j], modMul(x, y))
			}
		}
		got := Convolve(a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: convolution wrong at %d", trial, i)
			}
		}
	}
}

func TestBitRev(t *testing.T) {
	if BitRev(0b0011, 4) != 0b1100 {
		t.Error("BitRev(0011)")
	}
	if BitRev(1, 1) != 1 || BitRev(0, 0) != 0 {
		t.Error("BitRev degenerate")
	}
}

func TestLayoutChain(t *testing.T) {
	// N >= P^2: exactly 2 layouts (the classic single-remap FFT).
	chain := LayoutChain(12, 4)
	if len(chain) != 2 {
		t.Fatalf("lgN=12 lgP=4: chain length %d, want 2", len(chain))
	}
	// The final layout must be blocked.
	last := chain[len(chain)-1]
	for i, b := range last.LocalBits {
		if b != i {
			t.Fatalf("final layout not blocked: %v", last.LocalBits)
		}
	}
	// n < P: more chunks, ceil(lgN/lgn) total.
	chain = LayoutChain(10, 8) // lgn = 2
	if want := 5; len(chain) != want {
		t.Fatalf("lgN=10 lgP=8: chain length %d, want %d", len(chain), want)
	}
	// Every consecutive pair differs (no wasted remaps).
	for i := 1; i < len(chain); i++ {
		if chain[i-1].Equal(chain[i]) {
			t.Fatalf("chain repeats layout at %d", i)
		}
	}
}

func TestParallelForwardMatchesSequential(t *testing.T) {
	for _, d := range [][2]int{{0, 6}, {1, 5}, {2, 4}, {3, 5}, {4, 4}, {5, 2}, {3, 2}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		all := randomPoints(p*n, uint64(lgP*10+lgn))
		want := append([]uint32(nil), all...)
		Forward(want)

		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), all[i*n:(i+1)*n]...)
		}
		m := testMachine(t, machine.DefaultConfig(p))
		res, err := ParallelForward(m, data)
		if err != nil {
			t.Fatal(err)
		}
		got := flatten(m.Data())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lgP=%d lgn=%d: parallel differs from sequential at %d", lgP, lgn, i)
			}
		}
		// Remap count: the layout-chain length minus shared prefixes,
		// plus the initial blocked->first-chunk remap.
		wantRemaps := len(LayoutChain(lgP+lgn, lgP))
		if lgP == 0 {
			wantRemaps = 0
		}
		if lgP > 0 && res.Mean.Remaps != wantRemaps {
			t.Errorf("lgP=%d lgn=%d: %d remaps, want %d", lgP, lgn, res.Mean.Remaps, wantRemaps)
		}
	}
}

func TestParallelRoundTrip(t *testing.T) {
	for _, d := range [][2]int{{2, 5}, {3, 4}, {4, 3}, {1, 6}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		all := randomPoints(p*n, 77)
		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), all[i*n:(i+1)*n]...)
		}
		m := testMachine(t, machine.DefaultConfig(p))
		if _, err := ParallelForward(m, data); err != nil {
			t.Fatal(err)
		}
		if _, err := ParallelInverse(m, m.Data()); err != nil {
			t.Fatal(err)
		}
		got := flatten(m.Data())
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("lgP=%d lgn=%d: roundtrip broken at %d", lgP, lgn, i)
			}
		}
	}
}

func TestBlockedForwardMatchesSequential(t *testing.T) {
	for _, d := range [][2]int{{1, 5}, {2, 4}, {3, 4}, {4, 3}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		all := randomPoints(p*n, 31)
		want := append([]uint32(nil), all...)
		Forward(want)
		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), all[i*n:(i+1)*n]...)
		}
		m := testMachine(t, machine.DefaultConfig(p))
		if _, err := BlockedForward(m, data); err != nil {
			t.Fatal(err)
		}
		got := flatten(m.Data())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lgP=%d lgn=%d: blocked baseline differs at %d", lgP, lgn, i)
			}
		}
	}
}

// The paper's claim transplanted: the remapped FFT transfers far less
// data than the fixed-blocked FFT and therefore wins whenever volume
// dominates (always under short messages; under long messages the
// blocked variant's few huge messages keep it competitive at small P —
// the same §3.4.3 caveat as for the sorts).
func TestRemappedBeatsBlocked(t *testing.T) {
	lgP, lgn := 4, 12
	p, n := 1<<uint(lgP), 1<<uint(lgn)
	all := randomPoints(p*n, 13)
	mk := func() [][]uint32 {
		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), all[i*n:(i+1)*n]...)
		}
		return data
	}
	cfg := machine.DefaultConfig(p)
	cfg.Long = false // LogP regime: volume dominates
	smart, err := ParallelForward(testMachine(t, cfg), mk())
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := BlockedForward(testMachine(t, cfg), mk())
	if err != nil {
		t.Fatal(err)
	}
	if smart.Time >= blocked.Time {
		t.Errorf("remapped FFT (%v) should beat blocked FFT (%v) under LogP", smart.Time, blocked.Time)
	}
	if smart.Mean.VolumeSent >= blocked.Mean.VolumeSent {
		t.Errorf("remapped FFT volume %d should be below blocked %d", smart.Mean.VolumeSent, blocked.Mean.VolumeSent)
	}
	// The volume gap is the lgP/2(1-1/P) factor: blocked moves n keys
	// per remote step, the remapped chain ~n per remap with only
	// ceil(lgP/lgn)+1 remaps.
	if ratio := float64(blocked.Mean.VolumeSent) / float64(smart.Mean.VolumeSent); ratio < 1.5 {
		t.Errorf("volume ratio %.2f too small", ratio)
	}
}

func TestDimsErrors(t *testing.T) {
	m := testMachine(t, machine.DefaultConfig(4))
	if _, err := ParallelForward(m, make([][]uint32, 3)); err == nil {
		t.Error("wrong slice count should error")
	}
	bad := [][]uint32{make([]uint32, 3), make([]uint32, 3), make([]uint32, 3), make([]uint32, 3)}
	if _, err := ParallelForward(m, bad); err == nil {
		t.Error("non-power-of-two share should error")
	}
	ragged := [][]uint32{make([]uint32, 4), make([]uint32, 4), make([]uint32, 4), make([]uint32, 2)}
	if _, err := ParallelForward(m, ragged); err == nil {
		t.Error("ragged data should error")
	}
}

func TestQuickParallelMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		lgP := rng.Intn(4)
		lgn := 1 + rng.Intn(5)
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		all := randomPoints(p*n, seed)
		want := append([]uint32(nil), all...)
		Forward(want)
		data := make([][]uint32, p)
		for i := range data {
			data[i] = append([]uint32(nil), all[i*n:(i+1)*n]...)
		}
		m := testMachine(t, machine.DefaultConfig(p))
		if _, err := ParallelForward(m, data); err != nil {
			return false
		}
		got := flatten(m.Data())
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func flatten(data [][]uint32) []uint32 {
	var out []uint32
	for _, d := range data {
		out = append(out, d...)
	}
	return out
}

func BenchmarkSequentialNTT(b *testing.B) {
	data := randomPoints(1<<16, 1)
	work := make([]uint32, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, data)
		Forward(work)
	}
}

func BenchmarkParallelNTT(b *testing.B) {
	const p, lgn = 8, 13
	all := randomPoints(p<<lgn, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := make([][]uint32, p)
		for j := range data {
			data[j] = append([]uint32(nil), all[j<<lgn:(j+1)<<lgn]...)
		}
		m := testMachine(b, machine.DefaultConfig(p))
		if _, err := ParallelForward(m, data); err != nil {
			b.Fatal(err)
		}
	}
}
