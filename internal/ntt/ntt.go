// Package ntt demonstrates the paper's closing claim that its remapping
// technique "is applicable in a large variety of applications... We can
// mention here the FFT which is based on a butterfly network" (Ch. 7).
//
// The FFT butterfly is one stage of the bitonic sorting network's
// communication structure, so the same layout machinery applies: cover
// the lg N butterfly steps with data layouts that keep lg n consecutive
// steps local, remapping between them. For N >= P² one remap suffices
// (the classic cyclic-to-blocked FFT of [CKP+93]); in general
// ceil(lgP / lg n) inter-chunk remaps are needed.
//
// To keep the simulated machine's uint32-typed memory we implement the
// transform as a number-theoretic transform (an exact FFT over Z_p with
// p = 15·2^27 + 1), which has the identical butterfly data flow.
package ntt

import "fmt"

// Modulus is the NTT-friendly prime 15·2^27 + 1: Z_p has roots of unity
// of every power-of-two order up to 2^27.
const Modulus = 2013265921

// generator is a primitive root modulo Modulus.
const generator = 31

// maxLgN is the largest supported transform size exponent.
const maxLgN = 27

func modAdd(a, b uint32) uint32 {
	s := a + b
	if s >= Modulus || s < a {
		s -= Modulus
	}
	return s
}

func modSub(a, b uint32) uint32 {
	if a >= b {
		return a - b
	}
	return a + Modulus - b
}

func modMul(a, b uint32) uint32 {
	return uint32(uint64(a) * uint64(b) % Modulus)
}

// ModPow returns base^exp mod Modulus.
func ModPow(base uint32, exp uint64) uint32 {
	result := uint32(1)
	b := base % Modulus
	for exp > 0 {
		if exp&1 == 1 {
			result = modMul(result, b)
		}
		b = modMul(b, b)
		exp >>= 1
	}
	return result
}

// ModInv returns the multiplicative inverse mod Modulus (which is
// prime, so a^(p-2)).
func ModInv(a uint32) uint32 { return ModPow(a, Modulus-2) }

// Root returns a primitive 2^lgN-th root of unity.
func Root(lgN int) uint32 {
	if lgN < 0 || lgN > maxLgN {
		panic(fmt.Sprintf("ntt: unsupported size 2^%d", lgN))
	}
	return ModPow(generator, (Modulus-1)>>uint(lgN))
}

// twiddles precomputes w^0 .. w^(n/2-1) for the root of order n = 2^lgN.
func twiddles(lgN int, inverse bool) []uint32 {
	w := Root(lgN)
	if inverse {
		w = ModInv(w)
	}
	half := 1 << uint(lgN) >> 1
	if half == 0 {
		half = 1
	}
	tw := make([]uint32, half)
	tw[0] = 1
	for i := 1; i < half; i++ {
		tw[i] = modMul(tw[i-1], w)
	}
	return tw
}

// ForwardStep performs the decimation-in-frequency butterfly pass on
// absolute-address bit `bit`: for every pair (i, j = i|2^bit),
// a[i], a[j] = a[i]+a[j], (a[i]-a[j])·w^((i mod 2^bit) << (lgN-1-bit)).
// Running it for bit = lgN-1 down to 0 computes the forward transform
// with bit-reversed output. tw must come from twiddles(lgN, false).
//
// The pass's structure — pairs differing in exactly one address bit —
// is what makes it layout-remappable with the Chapter 3 machinery.
func ForwardStep(data []uint32, lgN, bit int, tw []uint32) {
	n := len(data)
	shift := uint(lgN - 1 - bit)
	mask := 1<<uint(bit) - 1
	for i := 0; i < n; i++ {
		if i>>uint(bit)&1 != 0 {
			continue
		}
		j := i | 1<<uint(bit)
		u, v := data[i], data[j]
		data[i] = modAdd(u, v)
		data[j] = modMul(modSub(u, v), tw[(i&mask)<<shift])
	}
}

// InverseStep is the inverse butterfly pass on bit `bit` (run for
// bit = 0 up to lgN-1 on bit-reversed input, then scale by N^-1).
// tw must come from twiddles(lgN, true).
func InverseStep(data []uint32, lgN, bit int, tw []uint32) {
	n := len(data)
	shift := uint(lgN - 1 - bit)
	mask := 1<<uint(bit) - 1
	for i := 0; i < n; i++ {
		if i>>uint(bit)&1 != 0 {
			continue
		}
		j := i | 1<<uint(bit)
		u := data[i]
		v := modMul(data[j], tw[(i&mask)<<shift])
		data[i] = modAdd(u, v)
		data[j] = modSub(u, v)
	}
}

// Forward computes the in-place forward NTT of data (length a power of
// two, values < Modulus). The output is in bit-reversed index order:
// afterwards data[i] holds X[BitRev(i, lgN)].
func Forward(data []uint32) {
	lgN := checkedLg(len(data))
	tw := twiddles(lgN, false)
	for bit := lgN - 1; bit >= 0; bit-- {
		ForwardStep(data, lgN, bit, tw)
	}
}

// Inverse computes the in-place inverse NTT of bit-reverse-ordered
// spectrum data, producing the natural-order sequence (exact inverse of
// Forward).
func Inverse(data []uint32) {
	lgN := checkedLg(len(data))
	tw := twiddles(lgN, true)
	for bit := 0; bit < lgN; bit++ {
		InverseStep(data, lgN, bit, tw)
	}
	inv := ModInv(uint32(len(data) % Modulus))
	for i := range data {
		data[i] = modMul(data[i], inv)
	}
}

// BitRev reverses the low `bits` bits of i.
func BitRev(i, bits int) int {
	out := 0
	for b := 0; b < bits; b++ {
		out |= (i >> uint(b) & 1) << uint(bits-1-b)
	}
	return out
}

// NaiveDFT computes the N² reference transform: X[k] = sum a[j] w^(jk),
// natural order. Used only by tests.
func NaiveDFT(a []uint32) []uint32 {
	lgN := checkedLg(len(a))
	w := Root(lgN)
	n := len(a)
	out := make([]uint32, n)
	for k := 0; k < n; k++ {
		wk := ModPow(w, uint64(k))
		cur := uint32(1)
		var sum uint32
		for j := 0; j < n; j++ {
			sum = modAdd(sum, modMul(a[j], cur))
			cur = modMul(cur, wk)
		}
		out[k] = sum
	}
	return out
}

// Convolve multiplies two polynomials modulo Modulus via the NTT. The
// result has length len(a)+len(b)-1.
func Convolve(a, b []uint32) []uint32 {
	outLen := len(a) + len(b) - 1
	size := 1
	for size < outLen {
		size *= 2
	}
	fa := make([]uint32, size)
	fb := make([]uint32, size)
	copy(fa, a)
	copy(fb, b)
	Forward(fa)
	Forward(fb)
	for i := range fa {
		fa[i] = modMul(fa[i], fb[i])
	}
	Inverse(fa)
	return fa[:outLen]
}

func checkedLg(n int) int {
	if n == 0 || n&(n-1) != 0 {
		panic("ntt: length must be a power of two")
	}
	lg := 0
	for 1<<uint(lg) < n {
		lg++
	}
	if lg > maxLgN {
		panic(fmt.Sprintf("ntt: size 2^%d exceeds the 2^%d root order", lg, maxLgN))
	}
	return lg
}
