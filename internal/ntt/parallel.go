package ntt

import (
	"fmt"

	"parbitonic/internal/addr"
	"parbitonic/internal/machine"
)

// LayoutChain returns the minimal sequence of data layouts that covers
// the forward transform's lg N butterfly steps (bits lgN-1 .. 0) with
// lg n consecutive steps local per layout — the paper's remapping idea
// transplanted from the bitonic network to the FFT butterfly. The
// first layout makes the top lg n bits local; the last is the blocked
// layout. For N >= P² the chain has length 2: the classic
// cyclic-to-blocked FFT remap of [CKP+93].
func LayoutChain(lgN, lgP int) []*addr.Layout {
	lgn := lgN - lgP
	if lgn < 1 {
		panic("ntt: need at least 2 points per processor")
	}
	var chain []*addr.Layout
	hi := lgN
	for hi > 0 {
		lo := hi - lgn
		if lo < 0 {
			lo = 0
		}
		l := &addr.Layout{LgN: lgN, LgP: lgP, Name: fmt.Sprintf("fft-chunk[%d,%d)", lo, lo+lgn)}
		for i := 0; i < lgn; i++ {
			l.LocalBits = append(l.LocalBits, lo+i)
		}
		for b := 0; b < lgN; b++ {
			if b < lo || b >= lo+lgn {
				l.ProcBits = append(l.ProcBits, b)
			}
		}
		if err := l.Validate(); err != nil {
			panic(err)
		}
		chain = append(chain, l)
		hi = lo
	}
	return chain
}

// stepLocal runs one butterfly pass on absolute bit `bit` over pr's
// local data under layout l (the bit must be local). Forward or inverse
// per the inv flag; tw from twiddles(lgN, inv).
func stepLocal(pr *machine.Proc, l *addr.Layout, lgN, bit int, tw []uint32, inv bool) {
	localBit := -1
	for i, b := range l.LocalBits {
		if b == bit {
			localBit = i
			break
		}
	}
	if localBit == -1 {
		panic(fmt.Sprintf("ntt: bit %d not local under %s", bit, l.Name))
	}
	data := pr.Data
	lmask := 1 << uint(localBit)
	shift := uint(lgN - 1 - bit)
	amask := 1<<uint(bit) - 1
	for lo := range data {
		if lo&lmask != 0 {
			continue
		}
		hi := lo | lmask
		abs := l.Abs(pr.ID, lo)
		t := tw[(abs&amask)<<shift]
		u, v := data[lo], data[hi]
		if inv {
			v = modMul(v, t)
			data[lo] = modAdd(u, v)
			data[hi] = modSub(u, v)
		} else {
			data[lo] = modAdd(u, v)
			data[hi] = modMul(modSub(u, v), t)
		}
	}
	pr.ChargeCompareExchange(len(data))
}

// ParallelForward computes the forward NTT of the distributed sequence
// (data[p] holds points p*n..(p+1)*n-1, blocked layout; values <
// Modulus) using the remapped layout chain. The result, like Forward's,
// is in bit-reversed index order, blocked layout. It takes ownership of
// data; retrieve the output with m.Data().
func ParallelForward(m *machine.Machine, data [][]uint32) (machine.Result, error) {
	lgN, lgP, err := dims(m, data)
	if err != nil {
		return machine.Result{}, err
	}
	lgn := lgN - lgP
	chain := LayoutChain(lgN, lgP)
	plans := plansAlong(append([]*addr.Layout{addr.Blocked(lgN, lgP)}, chain...))
	tw := twiddles(lgN, false)
	res, runErr := m.Run(data, func(pr *machine.Proc) {
		hi := lgN
		for i, l := range chain {
			if plans[i] != nil {
				pr.RemapExchange(plans[i], false)
			}
			lo := hi - lgn
			if lo < 0 {
				lo = 0
			}
			for bit := hi - 1; bit >= lo; bit-- {
				stepLocal(pr, l, lgN, bit, tw, false)
			}
			hi = lo
		}
	})
	if runErr != nil {
		return machine.Result{}, runErr
	}
	return res, nil
}

// ParallelInverse inverts a bit-reverse-ordered distributed spectrum
// back to the natural-order sequence (blocked layout both ways).
func ParallelInverse(m *machine.Machine, data [][]uint32) (machine.Result, error) {
	lgN, lgP, err := dims(m, data)
	if err != nil {
		return machine.Result{}, err
	}
	lgn := lgN - lgP
	chain := LayoutChain(lgN, lgP)
	// Inverse walks the chunks upward: reverse the chain; the first
	// chunk is the blocked layout (no initial remap) and a final remap
	// returns to blocked.
	rev := make([]*addr.Layout, len(chain))
	for i, l := range chain {
		rev[len(chain)-1-i] = l
	}
	seq := append([]*addr.Layout{addr.Blocked(lgN, lgP)}, rev...)
	seq = append(seq, addr.Blocked(lgN, lgP))
	plans := plansAlong(seq)
	tw := twiddles(lgN, true)
	nInv := ModInv(uint32(1 << uint(lgN) % Modulus))
	res, runErr := m.Run(data, func(pr *machine.Proc) {
		lo := 0
		for i, l := range rev {
			if plans[i] != nil {
				pr.RemapExchange(plans[i], false)
			}
			// Chunk boundaries mirror the forward chain exactly.
			hi := lo + chunkWidth(lgN, lgn, lo)
			for bit := lo; bit < hi; bit++ {
				stepLocal(pr, l, lgN, bit, tw, true)
			}
			lo = hi
		}
		if plans[len(rev)] != nil {
			pr.RemapExchange(plans[len(rev)], false)
		}
		for i := range pr.Data {
			pr.Data[i] = modMul(pr.Data[i], nInv)
		}
		pr.ChargeCompute(pr.Costs().Merge * float64(len(pr.Data)))
	})
	if runErr != nil {
		return machine.Result{}, runErr
	}
	return res, nil
}

// chunkWidth returns how many bits the chunk starting at bit lo covers
// in the forward chain (whose boundaries are computed from the top).
func chunkWidth(lgN, lgn, lo int) int {
	// Forward chunks are [hi-lgn, hi) from the top; the bottom chunk is
	// [0, lgn). Reconstruct the boundary containing lo.
	hi := lgN
	for hi > 0 {
		l := hi - lgn
		if l < 0 {
			l = 0
		}
		if lo == l {
			return hi - l
		}
		hi = l
	}
	panic("ntt: lo is not a chunk boundary")
}

// plansAlong builds remap plans between consecutive layouts, nil when
// two neighbours are equal (no communication needed).
func plansAlong(seq []*addr.Layout) []*addr.RemapPlan {
	plans := make([]*addr.RemapPlan, len(seq)-1)
	for i := 1; i < len(seq); i++ {
		if !seq[i-1].Equal(seq[i]) {
			plans[i-1] = addr.NewRemapPlan(seq[i-1], seq[i])
		}
	}
	return plans
}

// BlockedForward is the baseline: a fixed blocked layout where the
// top lg P butterfly passes exchange full local arrays between pairs of
// processors — the FFT analogue of the Blocked-Merge bitonic sort.
func BlockedForward(m *machine.Machine, data [][]uint32) (machine.Result, error) {
	lgN, lgP, err := dims(m, data)
	if err != nil {
		return machine.Result{}, err
	}
	lgn := lgN - lgP
	blocked := addr.Blocked(lgN, lgP)
	tw := twiddles(lgN, false)
	res, runErr := m.Run(data, func(pr *machine.Proc) {
		n := len(pr.Data)
		shiftBase := lgN - 1
		for bit := lgN - 1; bit >= lgn; bit-- {
			procBit := bit - lgn
			partner := pr.ID ^ 1<<uint(procBit)
			theirs := pr.PairExchange(partner, pr.Data)
			iAmLow := pr.ID>>uint(procBit)&1 == 0
			out := make([]uint32, n)
			shift := uint(shiftBase - bit)
			amask := 1<<uint(bit) - 1
			for l := 0; l < n; l++ {
				t := tw[(blocked.Abs(pr.ID, l)&amask)<<shift]
				if iAmLow {
					out[l] = modAdd(pr.Data[l], theirs[l])
				} else {
					out[l] = modMul(modSub(theirs[l], pr.Data[l]), t)
				}
			}
			pr.Data = out
			pr.ChargeCompareExchange(n)
		}
		for bit := lgn - 1; bit >= 0; bit-- {
			stepLocal(pr, blocked, lgN, bit, tw, false)
		}
	})
	if runErr != nil {
		return machine.Result{}, runErr
	}
	return res, nil
}

func dims(m *machine.Machine, data [][]uint32) (lgN, lgP int, err error) {
	P := m.P()
	if len(data) != P {
		return 0, 0, fmt.Errorf("ntt: %d data slices for %d processors", len(data), P)
	}
	n := len(data[0])
	if n == 0 || n&(n-1) != 0 {
		return 0, 0, fmt.Errorf("ntt: points per processor must be a positive power of two, got %d", n)
	}
	for i := range data {
		if len(data[i]) != n {
			return 0, 0, fmt.Errorf("ntt: ragged data at processor %d", i)
		}
	}
	for lgP = 0; 1<<uint(lgP) < P; lgP++ {
	}
	lgn := 0
	for 1<<uint(lgn) < n {
		lgn++
	}
	lgN = lgn + lgP
	if lgN > maxLgN {
		return 0, 0, fmt.Errorf("ntt: total size 2^%d exceeds 2^%d", lgN, maxLgN)
	}
	if P > 1 && lgn < 1 {
		return 0, 0, fmt.Errorf("ntt: need at least 2 points per processor")
	}
	return lgN, lgP, nil
}
