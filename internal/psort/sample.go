package psort

import (
	"context"
	"fmt"
	"sort"

	"parbitonic/element"
	"parbitonic/internal/localsort"
	"parbitonic/internal/spmd"
)

// SampleSortResult carries the machine result plus the output balance
// information that §5.5 discusses: sample sort's performance depends on
// how evenly the splitters divide the input.
type SampleSortResult struct {
	spmd.Result
	// MaxKeys is the largest number of keys any processor ended up
	// with; n is the balanced share. MaxKeys/n is the imbalance factor.
	MaxKeys int
}

// SampleSort runs a one-pass parallel sample sort in the style of
// [AISS95]: local radix sort, splitter selection from P-1 evenly spaced
// local samples per processor, an all-to-all redistribution, and a
// final p-way merge of the received sorted runs. The output is globally
// sorted in processor order but generally *unbalanced* — low-entropy
// inputs concentrate keys on few processors, which is exactly the
// sensitivity the paper contrasts with bitonic sort's obliviousness.
// It takes ownership of data; retrieve the output with m.Data().
func SampleSort[E element.Elem](m spmd.BackendOf[E], data [][]E) (SampleSortResult, error) {
	return SampleSortContext(context.Background(), m, data)
}

// SampleSortContext is SampleSort under a context: cancellation or
// deadline expiry aborts the run with a typed error (spmd.ErrCanceled
// / ErrDeadline); a processor panic surfaces as a *spmd.PanicError.
func SampleSortContext[E element.Elem](ctx context.Context, m spmd.BackendOf[E], data [][]E) (SampleSortResult, error) {
	P := m.P()
	if len(data) != P {
		return SampleSortResult{}, fmt.Errorf("psort: %d data slices for %d processors", len(data), P)
	}
	n := len(data[0])
	for i := range data {
		if len(data[i]) != n {
			return SampleSortResult{}, fmt.Errorf("psort: ragged data at processor %d", i)
		}
	}
	res, err := m.RunContext(ctx, data, func(pr *spmd.ProcOf[E]) { sampleBody(pr, n) })
	if err != nil {
		return SampleSortResult{}, err
	}
	out := SampleSortResult{Result: res}
	for _, d := range m.Data() {
		if len(d) > out.MaxKeys {
			out.MaxKeys = len(d)
		}
	}
	return out, nil
}

func sampleBody[E element.Elem](pr *spmd.ProcOf[E], n int) {
	P := pr.P()
	if P == 1 {
		localsort.RadixSort(pr.Data)
		pr.ChargeRadixSort(n)
		return
	}

	// Phase 1: local sort.
	localsort.RadixSort(pr.Data)
	pr.ChargeRadixSort(n)

	// Phase 2: every processor contributes P-1 evenly spaced samples;
	// an all-gather gives everyone the full P(P-1) sample set, from
	// which each processor deterministically derives the same P-1
	// splitters — no separate broadcast step needed.
	samples := make([]E, 0, P-1)
	for i := 1; i < P; i++ {
		samples = append(samples, pr.Data[i*n/P])
	}
	gathered := pr.AllGather(samples)
	all := make([]E, 0, P*(P-1))
	for _, s := range gathered {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return element.Less(all[i], all[j]) })
	splitters := make([]E, P-1)
	for i := 1; i < P; i++ {
		splitters[i-1] = all[i*(P-1)]
	}
	pr.ChargeCompute(pr.Costs().Merge * float64(len(all)))

	// Phase 3: partition the sorted local keys by the splitters (binary
	// searches) and redistribute. Keys equal to a splitter go right, so
	// duplicates of one value all land on one processor — the
	// low-entropy hazard of §5.5. (For records "equal" means equal
	// keys: all payloads of one key value land together.)
	bounds := make([]int, P+1)
	bounds[P] = n
	for i, s := range splitters {
		bounds[i+1] = sort.Search(n, func(j int) bool { return element.Less(s, pr.Data[j]) })
	}
	for i := 1; i < P; i++ { // bounds must be monotone even with duplicate splitters
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	msgs := make([][]E, P)
	for q := 0; q < P; q++ {
		msgs[q] = pr.Data[bounds[q]:bounds[q+1]]
	}
	if pr.Long() {
		pr.ChargeCompute(pr.Costs().Pack * float64(n*pr.Words()))
	}
	in := pr.Exchange(msgs)

	// Phase 4: p-way merge of the received runs (each already sorted
	// ascending). The merge replaces a separate unpack pass — the §4.3
	// fusion applied to sample sort, as [AISS95] does.
	runs := make([]localsort.RunOf[E], 0, P)
	total := 0
	for _, msg := range in {
		runs = append(runs, localsort.RunOf[E]{Keys: msg})
		total += len(msg)
	}
	merged := make([]E, total)
	localsort.MergeRuns(merged, runs)
	pr.Data = merged
	pr.ChargeMerge(total)
	pr.Barrier()
}
