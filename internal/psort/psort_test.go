package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"parbitonic/internal/machine"
	"parbitonic/internal/trace"
	"parbitonic/internal/workload"
)

func testMachine(p int) *machine.Machine {
	m, err := machine.New(machine.DefaultConfig(p))
	if err != nil {
		panic(err)
	}
	return m
}

func flatten(data [][]uint32) []uint32 {
	var out []uint32
	for _, d := range data {
		out = append(out, d...)
	}
	return out
}

func reference(data [][]uint32) []uint32 {
	want := flatten(data)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

func copyData(data [][]uint32) [][]uint32 {
	out := make([][]uint32, len(data))
	for i := range data {
		out[i] = append([]uint32(nil), data[i]...)
	}
	return out
}

func TestRadixSortSortsEverything(t *testing.T) {
	for _, d := range [][2]int{{0, 6}, {1, 5}, {2, 6}, {3, 4}, {4, 5}, {5, 6}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		for _, dist := range workload.Dists() {
			data := workload.PerProc(dist, p, n, 77)
			want := reference(data)
			m := testMachine(p)
			if _, err := RadixSort(m, copyData(data)); err != nil {
				t.Fatal(err)
			}
			got := flatten(m.Data())
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("radix lgP=%d lgn=%d %v: wrong at %d", lgP, lgn, dist, i)
				}
			}
			// Radix output must be perfectly balanced.
			for pi, dd := range m.Data() {
				if len(dd) != n {
					t.Fatalf("radix proc %d holds %d keys, want %d", pi, len(dd), n)
				}
			}
		}
	}
}

func TestSampleSortSortsEverything(t *testing.T) {
	for _, d := range [][2]int{{0, 6}, {1, 5}, {2, 6}, {3, 5}, {4, 6}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		for _, dist := range workload.Dists() {
			data := workload.PerProc(dist, p, n, 99)
			want := reference(data)
			m := testMachine(p)
			res, err := SampleSort(m, copyData(data))
			if err != nil {
				t.Fatal(err)
			}
			got := flatten(m.Data())
			if len(got) != len(want) {
				t.Fatalf("sample lgP=%d lgn=%d %v: lost keys (%d vs %d)", lgP, lgn, dist, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample lgP=%d lgn=%d %v: wrong at %d", lgP, lgn, dist, i)
				}
			}
			if res.MaxKeys < n {
				t.Fatalf("MaxKeys %d below balanced share %d", res.MaxKeys, n)
			}
		}
	}
}

// §5.5: low-entropy inputs unbalance sample sort severely; the uniform
// workload stays near-balanced.
func TestSampleSortImbalance(t *testing.T) {
	p, n := 8, 1<<10
	uni := workload.PerProc(workload.Uniform31, p, n, 5)
	m := testMachine(p)
	resU, err := SampleSort(m, copyData(uni))
	if err != nil {
		t.Fatal(err)
	}
	if resU.MaxKeys > 2*n {
		t.Errorf("uniform input should be near-balanced, max %d for share %d", resU.MaxKeys, n)
	}

	eq := workload.PerProc(workload.AllEqual, p, n, 5)
	m2 := testMachine(p)
	resE, err := SampleSort(m2, copyData(eq))
	if err != nil {
		t.Fatal(err)
	}
	if resE.MaxKeys != p*n {
		t.Errorf("all-equal input should land on one processor, max %d of %d", resE.MaxKeys, p*n)
	}
	if resE.Time <= resU.Time {
		t.Errorf("low entropy should slow sample sort: %v vs %v", resE.Time, resU.Time)
	}
}

// Sample sort should beat parallel radix sort on uniform keys (paper
// Figures 5.7/5.8: sample sort is the overall winner).
func TestSampleBeatsRadixOnUniform(t *testing.T) {
	p, n := 16, 1<<12
	data := workload.PerProc(workload.Uniform31, p, n, 6)
	m1 := testMachine(p)
	rs, err := RadixSort(m1, copyData(data))
	if err != nil {
		t.Fatal(err)
	}
	m2 := testMachine(p)
	ss, err := SampleSort(m2, copyData(data))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Time >= rs.Time {
		t.Errorf("sample sort (%v) should beat radix sort (%v)", ss.Time, rs.Time)
	}
}

// The radix histogram exchange is a fixed cost: time per key must drop
// substantially as n grows.
func TestRadixFixedCostAmortizes(t *testing.T) {
	p := 8
	perKey := func(lgn int) float64 {
		n := 1 << uint(lgn)
		data := workload.PerProc(workload.Uniform31, p, n, 7)
		m := testMachine(p)
		res, err := RadixSort(m, data)
		if err != nil {
			t.Fatal(err)
		}
		return res.TimePerKey(p * n)
	}
	small, large := perKey(6), perKey(14)
	if large >= small/2 {
		t.Errorf("per-key time should amortize: small-n %v, large-n %v", small, large)
	}
}

func TestPSortRejectsBadShapes(t *testing.T) {
	m := testMachine(4)
	if _, err := RadixSort(m, make([][]uint32, 3)); err == nil {
		t.Error("radix: wrong slice count should error")
	}
	if _, err := SampleSort(m, make([][]uint32, 3)); err == nil {
		t.Error("sample: wrong slice count should error")
	}
	ragged := [][]uint32{make([]uint32, 4), make([]uint32, 4), make([]uint32, 4), make([]uint32, 3)}
	if _, err := RadixSort(m, copyData(ragged)); err == nil {
		t.Error("radix: ragged should error")
	}
	if _, err := SampleSort(m, copyData(ragged)); err == nil {
		t.Error("sample: ragged should error")
	}
}

func TestQuickBothSortersRandom(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		lgP := rng.Intn(4)
		lgn := 2 + rng.Intn(6)
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		dist := workload.Dists()[rng.Intn(len(workload.Dists()))]
		data := workload.PerProc(dist, p, n, seed)
		want := reference(data)

		m1 := testMachine(p)
		if _, err := RadixSort(m1, copyData(data)); err != nil {
			return false
		}
		got1 := flatten(m1.Data())
		m2 := testMachine(p)
		if _, err := SampleSort(m2, copyData(data)); err != nil {
			return false
		}
		got2 := flatten(m2.Data())
		for i := range want {
			if got1[i] != want[i] || got2[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The trace recorder makes §5.5's load imbalance directly visible:
// sample sort on a zero-entropy input idles most processors at
// barriers, while the uniform input keeps them busy.
func TestTraceShowsSampleSortImbalance(t *testing.T) {
	run := func(d workload.Dist) float64 {
		var rec trace.Recorder
		cfg := machine.DefaultConfig(8)
		cfg.Trace = &rec
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data := workload.PerProc(d, 8, 1<<10, 3)
		if _, err := SampleSort(m, copyData(data)); err != nil {
			t.Fatal(err)
		}
		if len(rec.Events()) == 0 {
			t.Fatal("trace recorded nothing")
		}
		return rec.WaitShare()
	}
	uniform := run(workload.Uniform31)
	skewed := run(workload.AllEqual)
	if skewed <= uniform {
		t.Errorf("skewed input should idle processors more: wait share %.3f vs %.3f", skewed, uniform)
	}
	if skewed < 0.3 {
		t.Errorf("all-equal input should be dominated by waiting, got %.3f", skewed)
	}
}
