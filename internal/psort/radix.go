// Package psort implements the two comparator algorithms of §5.5 —
// parallel radix sort and parallel sample sort — on the same simulated
// machine and with the same long-message discipline as the bitonic
// sorts, following the structure of the optimized Split-C
// implementations of [AISS95] that the paper compares against.
//
// Both algorithms are generic over the element layer: radix sort runs
// over the elements' order images (so floats sort by value and KV64
// records by key), sample sort compares through element.Less. Charges
// scale with the element width via PC.Words, so uint32 runs charge
// exactly the paper's model.
package psort

import (
	"context"
	"fmt"

	"parbitonic/element"
	"parbitonic/internal/localsort"
	"parbitonic/internal/spmd"
)

const (
	radixBits = 11
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

// RadixSort runs a parallel LSD radix sort: for each 11-bit digit of
// the key (three per 32 bits of key width), processors build local
// histograms, exchange them to compute every key's global rank, and
// redistribute the keys so that processor q receives global ranks
// [q*n, (q+1)*n). The output is globally sorted and perfectly balanced.
// It takes ownership of data; retrieve the output with m.Data().
//
// The per-pass histogram exchange and scan is the fixed cost that makes
// parallel radix sort expensive for small n — the source of the
// bitonic-vs-radix crossover in Figures 5.7/5.8.
func RadixSort[E element.Elem](m spmd.BackendOf[E], data [][]E) (spmd.Result, error) {
	return RadixSortContext(context.Background(), m, data)
}

// RadixSortContext is RadixSort under a context: cancellation or
// deadline expiry aborts the run with a typed error (spmd.ErrCanceled
// / ErrDeadline); a processor panic surfaces as a *spmd.PanicError.
func RadixSortContext[E element.Elem](ctx context.Context, m spmd.BackendOf[E], data [][]E) (spmd.Result, error) {
	P := m.P()
	if len(data) != P {
		return spmd.Result{}, fmt.Errorf("psort: %d data slices for %d processors", len(data), P)
	}
	n := len(data[0])
	for i := range data {
		if len(data[i]) != n {
			return spmd.Result{}, fmt.Errorf("psort: ragged data at processor %d", i)
		}
	}
	return m.RunContext(ctx, data, func(pr *spmd.ProcOf[E]) { radixBody(pr, n) })
}

func radixBody[E element.Elem](pr *spmd.ProcOf[E], n int) {
	P := pr.P()
	w := float64(pr.Words())
	passes := localsort.RadixPassesOf[E]()
	// Float elements run the whole sort in order-image space (a
	// bijective, order-preserving bit transform): every counting pass is
	// then a native integer loop and the images travel the exchanges
	// unchanged. Integer and record elements are their own images.
	imageIn(pr.Data)
	scratch := make([]E, n)
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)

		// Local stable counting sort by this pass's digit; afterwards
		// the local keys are in (digit, previous order) order, which is
		// global-rank order within each digit.
		var hist [radixSize]uint32
		countScatter(pr.Data, scratch, shift, &hist)
		pr.Data, scratch = scratch, pr.Data
		pr.ChargeCompute(pr.Costs().RadixPass * float64(n) * w)

		// Exchange histograms so every processor can compute global
		// ranks: senderStart[p][d] is the global rank of processor p's
		// first digit-d key. Counts travel as elements through their
		// order images (lossless: they are far below any key width).
		mine := make([]E, radixSize)
		for d, c := range hist {
			mine[d] = element.FromBits[E](uint64(c), 0)
		}
		histIn := pr.AllGather(mine)

		senderStart := make([][]int, P)
		for p := range senderStart {
			senderStart[p] = make([]int, radixSize)
		}
		counts := make([][]int, P)
		for p := range counts {
			counts[p] = make([]int, radixSize)
			for d, v := range histIn[p] {
				counts[p][d] = int(element.Bits(v))
			}
		}
		running := 0
		for d := 0; d < radixSize; d++ {
			for p := 0; p < P; p++ {
				senderStart[p][d] = running
				running += counts[p][d]
			}
		}
		pr.ChargeCompute(pr.Costs().RadixPass * float64(radixSize*P) / 4)

		// Route: my digit-d keys occupy global ranks
		// [senderStart[me][d], +hist[d]); walking my digit-sorted keys
		// assigns consecutive ranks per digit, so per-destination
		// messages come out in (digit, rank) order automatically.
		msgs := make([][]E, P)
		d := 0
		remaining := int(hist[0])
		rank := senderStart[pr.ID][0]
		for _, k := range pr.Data {
			for remaining == 0 {
				d++
				remaining = int(hist[d])
				rank = senderStart[pr.ID][d]
			}
			q := rank / n
			msgs[q] = append(msgs[q], k)
			rank++
			remaining--
		}
		if pr.Long() {
			pr.ChargeCompute(pr.Costs().Pack * float64(n) * w)
		}
		in := pr.Exchange(msgs)

		// Unpack: sender p's digit-d keys destined to me occupy the
		// contiguous rank range [senderStart[p][d], +count) clipped to
		// my segment, and p's message lists them in (digit, rank) order.
		next := pr.Data[:n]
		base := pr.ID * n
		for p := 0; p < P; p++ {
			msg := in[p]
			idx := 0
			for d := 0; d < radixSize && idx < len(msg); d++ {
				cnt := counts[p][d]
				if cnt == 0 {
					continue
				}
				lo, hi := senderStart[p][d], senderStart[p][d]+cnt
				if hi <= base || lo >= base+n {
					continue
				}
				from, to := maxInt(lo, base), minInt(hi, base+n)
				for r := from; r < to; r++ {
					next[r-base] = msg[idx]
					idx++
				}
			}
			if idx != len(msg) {
				panic("psort: radix unpack consumed wrong message length")
			}
		}
		pr.Data = next
		scratch = scratch[:n]
		if pr.Long() {
			pr.ChargeCompute(pr.Costs().Unpack * float64(n) * w)
		}
	}
	imageOut(pr.Data)
}

// imageIn replaces float elements by their integer order images in
// place; other element kinds are untouched (they are their own image).
func imageIn[E element.Elem](data []E) {
	switch any(*new(E)).(type) {
	case float32:
		s := element.Cast[float32](data)
		u := element.Cast[uint32](data)
		for i, f := range s {
			u[i] = uint32(element.Bits(f))
		}
	case float64:
		s := element.Cast[float64](data)
		u := element.Cast[uint64](data)
		for i, f := range s {
			u[i] = element.Bits(f)
		}
	}
}

// imageOut inverts imageIn.
func imageOut[E element.Elem](data []E) {
	switch any(*new(E)).(type) {
	case float32:
		s := element.Cast[float32](data)
		u := element.Cast[uint32](data)
		for i, x := range u {
			s[i] = element.FromBits[float32](uint64(x), 0)
		}
	case float64:
		s := element.Cast[float64](data)
		u := element.Cast[uint64](data)
		for i, x := range u {
			s[i] = element.FromBits[float64](x, 0)
		}
	}
}

// countScatter performs one stable counting pass: it fills hist with
// the digit histogram of src at the given shift and scatters src into
// dst in digit order. Element kinds dispatch to monomorphic kernels
// over their (image) key representation.
func countScatter[E element.Elem](src, dst []E, shift uint, hist *[radixSize]uint32) {
	switch any(*new(E)).(type) {
	case uint32, float32:
		countScatterUint(element.Cast[uint32](src), element.Cast[uint32](dst), shift, hist)
	case uint64, float64:
		countScatterUint(element.Cast[uint64](src), element.Cast[uint64](dst), shift, hist)
	default:
		countScatterKV(element.Cast[element.KV64](src), element.Cast[element.KV64](dst), shift, hist)
	}
}

type uintKey interface {
	uint32 | uint64
}

func countScatterUint[T uintKey](src, dst []T, shift uint, hist *[radixSize]uint32) {
	for _, k := range src {
		hist[(k>>shift)&radixMask]++
	}
	var offs [radixSize]int
	sum := 0
	for d := 0; d < radixSize; d++ {
		offs[d] = sum
		sum += int(hist[d])
	}
	for _, k := range src {
		d := (k >> shift) & radixMask
		dst[offs[d]] = k
		offs[d]++
	}
}

func countScatterKV(src, dst []element.KV64, shift uint, hist *[radixSize]uint32) {
	for _, r := range src {
		hist[(r.K>>shift)&radixMask]++
	}
	var offs [radixSize]int
	sum := 0
	for d := 0; d < radixSize; d++ {
		offs[d] = sum
		sum += int(hist[d])
	}
	for _, r := range src {
		d := (r.K >> shift) & radixMask
		dst[offs[d]] = r
		offs[d]++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
