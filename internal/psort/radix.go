// Package psort implements the two comparator algorithms of §5.5 —
// parallel radix sort and parallel sample sort — on the same simulated
// machine and with the same long-message discipline as the bitonic
// sorts, following the structure of the optimized Split-C
// implementations of [AISS95] that the paper compares against.
package psort

import (
	"context"
	"fmt"

	"parbitonic/internal/spmd"
)

const (
	radixBits = 11
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
	passes    = 3
)

// RadixSort runs a parallel LSD radix sort: for each of the three
// 11-bit digits, processors build local histograms, exchange them to
// compute every key's global rank, and redistribute the keys so that
// processor q receives global ranks [q*n, (q+1)*n). The output is
// globally sorted and perfectly balanced. It takes ownership of data;
// retrieve the output with m.Data().
//
// The per-pass histogram exchange and scan is the fixed cost that makes
// parallel radix sort expensive for small n — the source of the
// bitonic-vs-radix crossover in Figures 5.7/5.8.
func RadixSort(m spmd.Backend, data [][]uint32) (spmd.Result, error) {
	return RadixSortContext(context.Background(), m, data)
}

// RadixSortContext is RadixSort under a context: cancellation or
// deadline expiry aborts the run with a typed error (spmd.ErrCanceled
// / ErrDeadline); a processor panic surfaces as a *spmd.PanicError.
func RadixSortContext(ctx context.Context, m spmd.Backend, data [][]uint32) (spmd.Result, error) {
	P := m.P()
	if len(data) != P {
		return spmd.Result{}, fmt.Errorf("psort: %d data slices for %d processors", len(data), P)
	}
	n := len(data[0])
	for i := range data {
		if len(data[i]) != n {
			return spmd.Result{}, fmt.Errorf("psort: ragged data at processor %d", i)
		}
	}
	return m.RunContext(ctx, data, func(pr *spmd.Proc) { radixBody(pr, n) })
}

func radixBody(pr *spmd.Proc, n int) {
	P := pr.P()
	scratch := make([]uint32, n)
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)
		digit := func(k uint32) int { return int(k>>shift) & radixMask }

		// Local stable counting sort by this pass's digit; afterwards
		// the local keys are in (digit, previous order) order, which is
		// global-rank order within each digit.
		var hist [radixSize]uint32
		for _, k := range pr.Data {
			hist[digit(k)]++
		}
		offs := make([]int, radixSize)
		sum := 0
		for d := 0; d < radixSize; d++ {
			offs[d] = sum
			sum += int(hist[d])
		}
		for _, k := range pr.Data {
			d := digit(k)
			scratch[offs[d]] = k
			offs[d]++
		}
		pr.Data, scratch = scratch, pr.Data
		pr.ChargeCompute(pr.Costs().RadixPass * float64(n))

		// Exchange histograms so every processor can compute global
		// ranks: senderStart[p][d] is the global rank of processor p's
		// first digit-d key.
		histIn := pr.AllGather(append([]uint32(nil), hist[:]...))

		senderStart := make([][]int, P)
		for p := range senderStart {
			senderStart[p] = make([]int, radixSize)
		}
		running := 0
		for d := 0; d < radixSize; d++ {
			for p := 0; p < P; p++ {
				senderStart[p][d] = running
				running += int(histIn[p][d])
			}
		}
		pr.ChargeCompute(pr.Costs().RadixPass * float64(radixSize*P) / 4)

		// Route: my digit-d keys occupy global ranks
		// [senderStart[me][d], +hist[d]); walking my digit-sorted keys
		// assigns consecutive ranks per digit, so per-destination
		// messages come out in (digit, rank) order automatically.
		msgs := make([][]uint32, P)
		d := 0
		remaining := int(hist[0])
		rank := senderStart[pr.ID][0]
		for _, k := range pr.Data {
			for remaining == 0 {
				d++
				remaining = int(hist[d])
				rank = senderStart[pr.ID][d]
			}
			q := rank / n
			msgs[q] = append(msgs[q], k)
			rank++
			remaining--
		}
		if pr.Long() {
			pr.ChargeCompute(pr.Costs().Pack * float64(n))
		}
		in := pr.Exchange(msgs)

		// Unpack: sender p's digit-d keys destined to me occupy the
		// contiguous rank range [senderStart[p][d], +count) clipped to
		// my segment, and p's message lists them in (digit, rank) order.
		next := pr.Data[:n]
		base := pr.ID * n
		for p := 0; p < P; p++ {
			msg := in[p]
			idx := 0
			for d := 0; d < radixSize && idx < len(msg); d++ {
				cnt := int(histIn[p][d])
				if cnt == 0 {
					continue
				}
				lo, hi := senderStart[p][d], senderStart[p][d]+cnt
				if hi <= base || lo >= base+n {
					continue
				}
				from, to := maxInt(lo, base), minInt(hi, base+n)
				for r := from; r < to; r++ {
					next[r-base] = msg[idx]
					idx++
				}
			}
			if idx != len(msg) {
				panic("psort: radix unpack consumed wrong message length")
			}
		}
		pr.Data = next
		scratch = scratch[:n]
		if pr.Long() {
			pr.ChargeCompute(pr.Costs().Unpack * float64(n))
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
