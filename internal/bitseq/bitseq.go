// Package bitseq implements primitives on bitonic sequences: predicates,
// bitonic split and merge (Definitions 1-2 of the paper), linear-time
// sorting of a bitonic sequence, and the paper's Algorithm 2 which finds
// the minimum of a duplicate-free bitonic sequence in O(log n) time
// (Lemma 8).
//
// A sequence a_0..a_{n-1} is bitonic if some cyclic shift of it first
// monotonically increases and then monotonically decreases. Viewed on a
// circle (Figure 4.6 of the paper) a bitonic sequence has a single
// "rising" arc and a single "falling" arc.
//
// Every routine is generic over the element layer. The hot kernels
// (Split, SortBitonic and the Algorithm 2 search) dispatch on the
// element kind once per call and run monomorphic bodies — native <
// over the scalar types, key comparison for KV64 records — so the
// uint32 instantiation compiles to exactly the loops the paper's
// analysis counts.
package bitseq

import "parbitonic/element"

// IsSortedAsc reports whether s is monotonically non-decreasing.
func IsSortedAsc[E element.Elem](s []E) bool {
	for i := 1; i < len(s); i++ {
		if element.Less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

// IsSortedDesc reports whether s is monotonically non-increasing.
func IsSortedDesc[E element.Elem](s []E) bool {
	for i := 1; i < len(s); i++ {
		if element.Less(s[i-1], s[i]) {
			return false
		}
	}
	return true
}

// IsSorted reports whether s is monotonic in the direction given by asc.
func IsSorted[E element.Elem](s []E, asc bool) bool {
	if asc {
		return IsSortedAsc(s)
	}
	return IsSortedDesc(s)
}

// IsBitonic reports whether s is a bitonic sequence per Definition 1:
// some cyclic shift of s first monotonically increases then monotonically
// decreases. Equivalently, walking the circular sequence of strict
// comparisons between neighbours, the direction changes at most twice.
// Sequences with duplicates are handled: runs of equal elements carry no
// direction of their own (for records, equal means equal keys).
func IsBitonic[E element.Elem](s []E) bool {
	n := len(s)
	if n <= 2 {
		return true
	}
	changes := 0
	prevSign := 0 // last non-zero circular difference sign seen
	for i := 0; i < n; i++ {
		a, b := s[i], s[(i+1)%n]
		var sign int
		switch {
		case element.Less(a, b):
			sign = 1
		case element.Less(b, a):
			sign = -1
		default:
			continue
		}
		if prevSign != 0 && sign != prevSign {
			changes++
		}
		prevSign = sign
	}
	// A circular walk over an increase-then-decrease shape crosses the
	// max once and the min once: at most 2 direction changes.
	return changes <= 2
}

// Split performs an in-place bitonic split (Definition 2) on s, whose
// length must be even: afterwards s[:n/2] holds min(a_i, a_{i+n/2}) and
// s[n/2:] holds max(a_i, a_{i+n/2}). If s was bitonic, both halves are
// bitonic and every element of the first half is <= every element of the
// second half.
func Split[E element.Elem](s []E) {
	if len(s)%2 != 0 {
		panic("bitseq: Split on odd-length sequence")
	}
	switch any(*new(E)).(type) {
	case uint32:
		uintSplit(element.Cast[uint32](s))
	case uint64:
		uintSplit(element.Cast[uint64](s))
	case float32:
		ordSplit(element.Cast[float32](s))
	case float64:
		ordSplit(element.Cast[float64](s))
	default:
		kvSplit(element.Cast[element.KV64](s))
	}
}

// uintKey are the unsigned key widths with a branchless compare-
// exchange: integer min/max compile to conditional moves, so the split
// sweep has no data-dependent branch for the predictor to miss on
// random keys. Floats stay on the compare-swap form — min/max would
// rewrite the bit image of -0/+0 and NaN ties, and a compare-exchange
// must move elements, never rewrite them.
type uintKey interface {
	uint32 | uint64
}

func uintSplit[T uintKey](s []T) {
	h := len(s) / 2
	a, b := s[:h], s[h:h+h]
	for i := range a {
		x, y := a[i], b[i]
		a[i], b[i] = min(x, y), max(x, y)
	}
}

func ordSplit[T element.Ord](s []T) {
	h := len(s) / 2
	for i := 0; i < h; i++ {
		if s[i] > s[i+h] {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

func kvSplit(s []element.KV64) {
	h := len(s) / 2
	for i := 0; i < h; i++ {
		if s[i].K > s[i+h].K {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

// SplitDesc is Split with the comparison reversed: the first half
// receives the maxima and the second half the minima.
func SplitDesc[E element.Elem](s []E) {
	if len(s)%2 != 0 {
		panic("bitseq: SplitDesc on odd-length sequence")
	}
	switch any(*new(E)).(type) {
	case uint32:
		uintSplitDesc(element.Cast[uint32](s))
	case uint64:
		uintSplitDesc(element.Cast[uint64](s))
	case float32:
		ordSplitDesc(element.Cast[float32](s))
	case float64:
		ordSplitDesc(element.Cast[float64](s))
	default:
		kvSplitDesc(element.Cast[element.KV64](s))
	}
}

func uintSplitDesc[T uintKey](s []T) {
	h := len(s) / 2
	a, b := s[:h], s[h:h+h]
	for i := range a {
		x, y := a[i], b[i]
		a[i], b[i] = max(x, y), min(x, y)
	}
}

func ordSplitDesc[T element.Ord](s []T) {
	h := len(s) / 2
	for i := 0; i < h; i++ {
		if s[i] < s[i+h] {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

func kvSplitDesc(s []element.KV64) {
	h := len(s) / 2
	for i := 0; i < h; i++ {
		if s[i].K < s[i+h].K {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

// mergeTileBytes bounds the segment size the cache-blocked Merge
// finishes depth-first: once a segment fits the budget (half of a
// typical 32 KiB L1d, leaving room for the write-back halves), all its
// remaining split levels run while it is cache-resident.
const mergeTileBytes = 16 << 10

// Merge sorts the bitonic sequence s in place in the direction given by
// asc using recursive bitonic splits (the bitonic merge of §2.1.2). The
// length of s must be a power of two. Cost is O(n log n) comparisons;
// SortBitonic is the O(n) alternative used by the optimized local
// computation.
//
// The split levels are walked depth-first below an L1-sized tile: the
// breadth-first network would stream the whole array once per level
// (log n full-cache-miss passes), while finishing each tile before
// moving on touches every cache line O(1) times beyond the first
// levels. The network itself is unchanged — splits at width w within a
// segment still precede the w/2 splits inside it, and disjoint
// segments are independent — so the output is element-for-element
// identical to the breadth-first order.
func Merge[E element.Elem](s []E, asc bool) {
	n := len(s)
	if n&(n-1) != 0 {
		panic("bitseq: Merge requires power-of-two length")
	}
	tile := mergeTileBytes / int(element.TypeOf[E]().Width())
	if tile < 2 {
		tile = 2
	}
	mergeRec(s, asc, tile)
}

func mergeRec[E element.Elem](s []E, asc bool, tile int) {
	n := len(s)
	if n <= 1 {
		return
	}
	if n <= tile {
		// The whole segment is cache-resident: the remaining levels run
		// breadth-first with no further call overhead.
		for width := n; width > 1; width /= 2 {
			for base := 0; base < n; base += width {
				if asc {
					Split(s[base : base+width])
				} else {
					SplitDesc(s[base : base+width])
				}
			}
		}
		return
	}
	if asc {
		Split(s)
	} else {
		SplitDesc(s)
	}
	mergeRec(s[:n/2], asc, tile)
	mergeRec(s[n/2:], asc, tile)
}

// Rotate returns a copy of s cyclically shifted left by k positions
// (element k becomes element 0). Rotating a bitonic sequence yields a
// bitonic sequence.
func Rotate[E element.Elem](s []E, k int) []E {
	n := len(s)
	out := make([]E, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	copy(out, s[k:])
	copy(out[n-k:], s[:k])
	return out
}

// MinIndex returns the index of a minimum element of the bitonic
// sequence s. For duplicate-free input it runs Algorithm 2 of the paper
// in O(log n) time; whenever two splitters compare equal it falls back
// to a linear scan of the remaining arc, as §4.2 prescribes. The answer
// is always an index of a true minimum (minimum key, for records).
func MinIndex[E element.Elem](s []E) int {
	return minIndex(s, false)
}

// MaxIndex returns the index of a maximum element of the bitonic
// sequence s, with the same complexity contract as MinIndex. It runs
// Algorithm 2 under the reversed order.
func MaxIndex[E element.Elem](s []E) int {
	return minIndex(s, true)
}

// minIndex dispatches Algorithm 2 by element kind; rev runs it under
// the reversed order (turning the minimum search into a maximum
// search — order-isomorphic, so Lemma 8 applies unchanged).
func minIndex[E element.Elem](s []E, rev bool) int {
	switch any(*new(E)).(type) {
	case uint32:
		return ordMinIndex(element.Cast[uint32](s), rev)
	case uint64:
		return ordMinIndex(element.Cast[uint64](s), rev)
	case float32:
		return ordMinIndex(element.Cast[float32](s), rev)
	case float64:
		return ordMinIndex(element.Cast[float64](s), rev)
	default:
		return kvMinIndex(element.Cast[element.KV64](s), rev)
	}
}

func ordMinIndex[T element.Ord](s []T, rev bool) int {
	n := len(s)
	switch n {
	case 0:
		panic("bitseq: MinIndex of empty sequence")
	case 1:
		return 0
	case 2:
		if (s[1] < s[0]) != rev && s[1] != s[0] {
			return 1
		}
		if rev && s[1] > s[0] {
			return 1
		}
		return 0
	}
	lt := func(a, b T) bool {
		if rev {
			return b < a
		}
		return a < b
	}

	// Step 1: three splitters breaking the circle into three arcs.
	a, b, c := 0, n/3, 2*n/3
	va, vb, vc := s[a], s[b], s[c]
	if va == vb || vb == vc || va == vc {
		return ordLinearMinArc(s, 0, n, rev)
	}
	// lo..mid..hi is a clockwise arc known to contain the minimum, with
	// s[mid] < s[lo] and s[mid] < s[hi] maintained as the invariant
	// (strictness holds because ties divert to the linear scan).
	var lo, mid, hi int
	switch {
	case lt(va, vb) && lt(va, vc):
		lo, mid, hi = c, a+n, b+n // arc c -> a -> b (wrapping)
	case lt(vb, va) && lt(vb, vc):
		lo, mid, hi = a, b, c
	default:
		lo, mid, hi = b, c, a+n
	}

	for hi-lo > 3 {
		x := (lo + mid) / 2
		y := (mid + hi) / 2
		vx, vm, vy := s[x%n], s[mid%n], s[y%n]
		// Equal splitters void the uniqueness argument of Lemma 8:
		// switch to the linear search on the remaining arc.
		if vx == vm || vm == vy || (x != mid && y != mid && vx == vy) {
			return ordLinearMinArc(s, lo, hi-lo+1, rev)
		}
		switch {
		case lt(vx, vm) && lt(vx, vy):
			mid, hi = x, mid
		case lt(vm, vx) && lt(vm, vy):
			lo, hi = x, y
		default:
			lo, mid = mid, y
		}
	}
	return ordLinearMinArc(s, lo, hi-lo+1, rev)
}

// ordLinearMinArc scans the circular arc of length count starting at
// start and returns the index (mod len(s)) of its minimum (maximum
// when rev). The two loops are kept separate so each compiles to the
// direct compare the paper's linear fallback costs out.
func ordLinearMinArc[T element.Ord](s []T, start, count int, rev bool) int {
	n := len(s)
	best := start % n
	if rev {
		for i := 1; i < count; i++ {
			idx := (start + i) % n
			if s[idx] > s[best] {
				best = idx
			}
		}
		return best
	}
	for i := 1; i < count; i++ {
		idx := (start + i) % n
		if s[idx] < s[best] {
			best = idx
		}
	}
	return best
}

func kvMinIndex(s []element.KV64, rev bool) int {
	n := len(s)
	switch n {
	case 0:
		panic("bitseq: MinIndex of empty sequence")
	case 1:
		return 0
	case 2:
		if (s[1].K < s[0].K) != rev && s[1].K != s[0].K {
			return 1
		}
		if rev && s[1].K > s[0].K {
			return 1
		}
		return 0
	}
	lt := func(a, b uint64) bool {
		if rev {
			return b < a
		}
		return a < b
	}

	a, b, c := 0, n/3, 2*n/3
	va, vb, vc := s[a].K, s[b].K, s[c].K
	if va == vb || vb == vc || va == vc {
		return kvLinearMinArc(s, 0, n, rev)
	}
	var lo, mid, hi int
	switch {
	case lt(va, vb) && lt(va, vc):
		lo, mid, hi = c, a+n, b+n
	case lt(vb, va) && lt(vb, vc):
		lo, mid, hi = a, b, c
	default:
		lo, mid, hi = b, c, a+n
	}

	for hi-lo > 3 {
		x := (lo + mid) / 2
		y := (mid + hi) / 2
		vx, vm, vy := s[x%n].K, s[mid%n].K, s[y%n].K
		if vx == vm || vm == vy || (x != mid && y != mid && vx == vy) {
			return kvLinearMinArc(s, lo, hi-lo+1, rev)
		}
		switch {
		case lt(vx, vm) && lt(vx, vy):
			mid, hi = x, mid
		case lt(vm, vx) && lt(vm, vy):
			lo, hi = x, y
		default:
			lo, mid = mid, y
		}
	}
	return kvLinearMinArc(s, lo, hi-lo+1, rev)
}

func kvLinearMinArc(s []element.KV64, start, count int, rev bool) int {
	n := len(s)
	best := start % n
	if rev {
		for i := 1; i < count; i++ {
			idx := (start + i) % n
			if s[idx].K > s[best].K {
				best = idx
			}
		}
		return best
	}
	for i := 1; i < count; i++ {
		idx := (start + i) % n
		if s[idx].K < s[best].K {
			best = idx
		}
	}
	return best
}

// SortBitonic sorts the bitonic sequence src into dst (which must have
// the same length) in the direction given by asc, in O(n) time
// (Lemma 9): it locates the minimum with MinIndex and then merges the
// two monotonic circular runs that meet there.
//
// src and dst must not overlap. src is left unchanged.
func SortBitonic[E element.Elem](dst, src []E, asc bool) {
	if len(dst) != len(src) {
		panic("bitseq: SortBitonic length mismatch")
	}
	switch any(*new(E)).(type) {
	case uint32:
		ordSortBitonic(element.Cast[uint32](dst), element.Cast[uint32](src), asc)
	case uint64:
		ordSortBitonic(element.Cast[uint64](dst), element.Cast[uint64](src), asc)
	case float32:
		ordSortBitonic(element.Cast[float32](dst), element.Cast[float32](src), asc)
	case float64:
		ordSortBitonic(element.Cast[float64](dst), element.Cast[float64](src), asc)
	default:
		kvSortBitonic(element.Cast[element.KV64](dst), element.Cast[element.KV64](src), asc)
	}
}

func ordSortBitonic[T element.Ord](dst, src []T, asc bool) {
	n := len(src)
	if n == 0 {
		return
	}
	m := ordMinIndex(src, false)
	// Walking clockwise from the minimum the circular sequence rises to
	// the maximum and then falls back. The unconsumed elements always
	// form a contiguous circular arc [fi..bj]; that arc is bitonic with
	// its maximum inside, so its minimum sits at one of the two ends.
	//
	// The cursors wrap at most once each, so the hot loop carries a
	// predictable wrap test instead of a modulo — the divide dominated
	// this kernel's run time. The ascending and descending emissions are
	// separate loops for the same reason: the direction is loop-
	// invariant. Comparisons and tie-breaks are exactly the modulo
	// form's, so the emitted order is element-for-element identical.
	fi := m // forward cursor (clockwise)
	bj := m - 1
	if bj < 0 {
		bj = n - 1 // backward cursor (counterclockwise)
	}
	if asc {
		for emitted := 0; emitted < n; emitted++ {
			if src[fi] <= src[bj] {
				dst[emitted] = src[fi]
				fi++
				if fi == n {
					fi = 0
				}
			} else {
				dst[emitted] = src[bj]
				bj--
				if bj < 0 {
					bj = n - 1
				}
			}
		}
		return
	}
	for emitted := n - 1; emitted >= 0; emitted-- {
		if src[fi] <= src[bj] {
			dst[emitted] = src[fi]
			fi++
			if fi == n {
				fi = 0
			}
		} else {
			dst[emitted] = src[bj]
			bj--
			if bj < 0 {
				bj = n - 1
			}
		}
	}
}

func kvSortBitonic(dst, src []element.KV64, asc bool) {
	n := len(src)
	if n == 0 {
		return
	}
	m := kvMinIndex(src, false)
	fi := m
	bj := m - 1
	if bj < 0 {
		bj = n - 1
	}
	if asc {
		for emitted := 0; emitted < n; emitted++ {
			if src[fi].K <= src[bj].K {
				dst[emitted] = src[fi]
				fi++
				if fi == n {
					fi = 0
				}
			} else {
				dst[emitted] = src[bj]
				bj--
				if bj < 0 {
					bj = n - 1
				}
			}
		}
		return
	}
	for emitted := n - 1; emitted >= 0; emitted-- {
		if src[fi].K <= src[bj].K {
			dst[emitted] = src[fi]
			fi++
			if fi == n {
				fi = 0
			}
		} else {
			dst[emitted] = src[bj]
			bj--
			if bj < 0 {
				bj = n - 1
			}
		}
	}
}
