// Package bitseq implements primitives on bitonic sequences: predicates,
// bitonic split and merge (Definitions 1-2 of the paper), linear-time
// sorting of a bitonic sequence, and the paper's Algorithm 2 which finds
// the minimum of a duplicate-free bitonic sequence in O(log n) time
// (Lemma 8).
//
// A sequence a_0..a_{n-1} is bitonic if some cyclic shift of it first
// monotonically increases and then monotonically decreases. Viewed on a
// circle (Figure 4.6 of the paper) a bitonic sequence has a single
// "rising" arc and a single "falling" arc.
package bitseq

// IsSortedAsc reports whether s is monotonically non-decreasing.
func IsSortedAsc(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// IsSortedDesc reports whether s is monotonically non-increasing.
func IsSortedDesc(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] < s[i] {
			return false
		}
	}
	return true
}

// IsSorted reports whether s is monotonic in the direction given by asc.
func IsSorted(s []uint32, asc bool) bool {
	if asc {
		return IsSortedAsc(s)
	}
	return IsSortedDesc(s)
}

// IsBitonic reports whether s is a bitonic sequence per Definition 1:
// some cyclic shift of s first monotonically increases then monotonically
// decreases. Equivalently, walking the circular sequence of strict
// comparisons between neighbours, the direction changes at most twice.
// Sequences with duplicates are handled: runs of equal elements carry no
// direction of their own.
func IsBitonic(s []uint32) bool {
	n := len(s)
	if n <= 2 {
		return true
	}
	changes := 0
	prevSign := 0 // last non-zero circular difference sign seen
	for i := 0; i < n; i++ {
		a, b := s[i], s[(i+1)%n]
		var sign int
		switch {
		case a < b:
			sign = 1
		case a > b:
			sign = -1
		default:
			continue
		}
		if prevSign != 0 && sign != prevSign {
			changes++
		}
		prevSign = sign
	}
	// A circular walk over an increase-then-decrease shape crosses the
	// max once and the min once: at most 2 direction changes.
	return changes <= 2
}

// Split performs an in-place bitonic split (Definition 2) on s, whose
// length must be even: afterwards s[:n/2] holds min(a_i, a_{i+n/2}) and
// s[n/2:] holds max(a_i, a_{i+n/2}). If s was bitonic, both halves are
// bitonic and every element of the first half is <= every element of the
// second half.
func Split(s []uint32) {
	n := len(s)
	if n%2 != 0 {
		panic("bitseq: Split on odd-length sequence")
	}
	h := n / 2
	for i := 0; i < h; i++ {
		if s[i] > s[i+h] {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

// SplitDesc is Split with the comparison reversed: the first half
// receives the maxima and the second half the minima.
func SplitDesc(s []uint32) {
	n := len(s)
	if n%2 != 0 {
		panic("bitseq: SplitDesc on odd-length sequence")
	}
	h := n / 2
	for i := 0; i < h; i++ {
		if s[i] < s[i+h] {
			s[i], s[i+h] = s[i+h], s[i]
		}
	}
}

// Merge sorts the bitonic sequence s in place in the direction given by
// asc using recursive bitonic splits (the bitonic merge of §2.1.2). The
// length of s must be a power of two. Cost is O(n log n) comparisons;
// SortBitonic is the O(n) alternative used by the optimized local
// computation.
func Merge(s []uint32, asc bool) {
	n := len(s)
	if n&(n-1) != 0 {
		panic("bitseq: Merge requires power-of-two length")
	}
	for width := n; width > 1; width /= 2 {
		for base := 0; base < n; base += width {
			if asc {
				Split(s[base : base+width])
			} else {
				SplitDesc(s[base : base+width])
			}
		}
	}
}

// Rotate returns a copy of s cyclically shifted left by k positions
// (element k becomes element 0). Rotating a bitonic sequence yields a
// bitonic sequence.
func Rotate(s []uint32, k int) []uint32 {
	n := len(s)
	out := make([]uint32, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	copy(out, s[k:])
	copy(out[n-k:], s[:k])
	return out
}

// MinIndex returns the index of a minimum element of the bitonic
// sequence s. For duplicate-free input it runs Algorithm 2 of the paper
// in O(log n) time; whenever two splitters compare equal it falls back
// to a linear scan of the remaining arc, as §4.2 prescribes. The answer
// is always an index of a true minimum.
func MinIndex(s []uint32) int {
	n := len(s)
	switch n {
	case 0:
		panic("bitseq: MinIndex of empty sequence")
	case 1:
		return 0
	case 2:
		if s[1] < s[0] {
			return 1
		}
		return 0
	}

	// Step 1: three splitters breaking the circle into three arcs.
	a, b, c := 0, n/3, 2*n/3
	va, vb, vc := s[a], s[b], s[c]
	if va == vb || vb == vc || va == vc {
		return linearMinArc(s, 0, n)
	}
	// lo..mid..hi is a clockwise arc known to contain the minimum, with
	// s[mid] < s[lo] and s[mid] < s[hi] maintained as the invariant
	// (strictness holds because ties divert to the linear scan).
	var lo, mid, hi int
	switch {
	case va < vb && va < vc:
		lo, mid, hi = c, a+n, b+n // arc c -> a -> b (wrapping)
	case vb < va && vb < vc:
		lo, mid, hi = a, b, c
	default:
		lo, mid, hi = b, c, a+n
	}

	for hi-lo > 3 {
		x := (lo + mid) / 2
		y := (mid + hi) / 2
		vx, vm, vy := s[x%n], s[mid%n], s[y%n]
		// Equal splitters void the uniqueness argument of Lemma 8:
		// switch to the linear search on the remaining arc.
		if vx == vm || vm == vy || (x != mid && y != mid && vx == vy) {
			return linearMinArc(s, lo, hi-lo+1)
		}
		switch {
		case vx < vm && vx < vy:
			mid, hi = x, mid
		case vm < vx && vm < vy:
			lo, hi = x, y
		default:
			lo, mid = mid, y
		}
	}
	return linearMinArc(s, lo, hi-lo+1)
}

// linearMinArc scans the circular arc of length count starting at start
// and returns the index (mod len(s)) of its minimum.
func linearMinArc(s []uint32, start, count int) int {
	n := len(s)
	best := start % n
	for i := 1; i < count; i++ {
		idx := (start + i) % n
		if s[idx] < s[best] {
			best = idx
		}
	}
	return best
}

// MaxIndex returns the index of a maximum element of the bitonic
// sequence s, with the same complexity contract as MinIndex. It runs
// Algorithm 2 on the complemented keys.
func MaxIndex(s []uint32) int {
	inv := make([]uint32, len(s))
	for i, v := range s {
		inv[i] = ^v
	}
	return MinIndex(inv)
}

// SortBitonic sorts the bitonic sequence src into dst (which must have
// the same length) in the direction given by asc, in O(n) time
// (Lemma 9): it locates the minimum with MinIndex and then merges the
// two monotonic circular runs that meet there.
//
// src and dst must not overlap. src is left unchanged.
func SortBitonic(dst, src []uint32, asc bool) {
	n := len(src)
	if len(dst) != n {
		panic("bitseq: SortBitonic length mismatch")
	}
	if n == 0 {
		return
	}
	m := MinIndex(src)
	// Walking clockwise from the minimum the circular sequence rises to
	// the maximum and then falls back. The unconsumed elements always
	// form a contiguous circular arc [fi..bj]; that arc is bitonic with
	// its maximum inside, so its minimum sits at one of the two ends.
	fi := m               // forward cursor (clockwise)
	bj := (m - 1 + n) % n // backward cursor (counterclockwise)
	for emitted := 0; emitted < n; emitted++ {
		var v uint32
		if src[fi] <= src[bj] {
			v = src[fi]
			fi = (fi + 1) % n
		} else {
			v = src[bj]
			bj = (bj - 1 + n) % n
		}
		if asc {
			dst[emitted] = v
		} else {
			dst[n-1-emitted] = v
		}
	}
}
