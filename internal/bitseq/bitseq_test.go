package bitseq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// makeBitonic builds a bitonic sequence of length n with distinct values:
// it rises for `up` elements and falls for the rest, then is rotated by
// rot. Distinctness holds because values are a permutation of 0..n-1.
func makeBitonic(n, up, rot int, rng *rand.Rand) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	// Build rise of length `up` then fall of length n-up by dealing the
	// sorted values: the largest value is the peak; the ascending run
	// takes `up` values ending at the peak, descending run the rest.
	seq := make([]uint32, 0, n)
	asc := vals[n-up : n]
	desc := vals[:n-up]
	seq = append(seq, asc...)
	for i := len(desc) - 1; i >= 0; i-- {
		seq = append(seq, desc[i])
	}
	return Rotate(seq, rot)
}

func argmin(s []uint32) int {
	best := 0
	for i, v := range s {
		if v < s[best] {
			best = i
		}
	}
	return best
}

func TestIsSorted(t *testing.T) {
	cases := []struct {
		s         []uint32
		asc, desc bool
	}{
		{[]uint32{}, true, true},
		{[]uint32{5}, true, true},
		{[]uint32{1, 2, 3}, true, false},
		{[]uint32{3, 2, 1}, false, true},
		{[]uint32{2, 2, 2}, true, true},
		{[]uint32{1, 3, 2}, false, false},
	}
	for _, c := range cases {
		if got := IsSortedAsc(c.s); got != c.asc {
			t.Errorf("IsSortedAsc(%v) = %v, want %v", c.s, got, c.asc)
		}
		if got := IsSortedDesc(c.s); got != c.desc {
			t.Errorf("IsSortedDesc(%v) = %v, want %v", c.s, got, c.desc)
		}
		if got := IsSorted(c.s, true); got != c.asc {
			t.Errorf("IsSorted(%v, asc) = %v, want %v", c.s, got, c.asc)
		}
		if got := IsSorted(c.s, false); got != c.desc {
			t.Errorf("IsSorted(%v, desc) = %v, want %v", c.s, got, c.desc)
		}
	}
}

func TestIsBitonicExamples(t *testing.T) {
	// The two examples from §2.1.1 of the paper.
	a := []uint32{2, 3, 4, 5, 6, 7, 8, 8, 7, 5, 3, 2, 1}
	b := []uint32{6, 7, 8, 8, 7, 5, 3, 2, 1, 2, 3, 4, 5}
	if !IsBitonic(a) {
		t.Errorf("paper example 1 should be bitonic: %v", a)
	}
	if !IsBitonic(b) {
		t.Errorf("paper example 2 (cyclic shift) should be bitonic: %v", b)
	}
	notBitonic := []uint32{1, 3, 1, 3, 1}
	if IsBitonic(notBitonic) {
		t.Errorf("%v should not be bitonic", notBitonic)
	}
}

func TestIsBitonicAllRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 24; n++ {
		for up := 1; up <= n; up++ {
			s := makeBitonic(n, up, 0, rng)
			for rot := 0; rot < n; rot++ {
				if r := Rotate(s, rot); !IsBitonic(r) {
					t.Fatalf("n=%d up=%d rot=%d: %v should be bitonic", n, up, rot, r)
				}
			}
		}
	}
}

func TestIsBitonicRejectsRandomNonBitonic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		s := make([]uint32, 32)
		for j := range s {
			s[j] = rng.Uint32() % 1000
		}
		if !IsBitonic(s) {
			rejected++
		}
	}
	if rejected < trials*9/10 {
		t.Errorf("random length-32 sequences should almost never be bitonic; rejected only %d/%d", rejected, trials)
	}
}

func TestSplitProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 << rng.Intn(6) // 2..64
		up := 1 + rng.Intn(n)
		rot := rng.Intn(n)
		s := makeBitonic(n, up, rot, rng)
		orig := append([]uint32(nil), s...)
		Split(s)
		lo, hi := s[:n/2], s[n/2:]
		if !IsBitonic(lo) {
			t.Fatalf("low half not bitonic: %v from %v", lo, orig)
		}
		if !IsBitonic(hi) {
			t.Fatalf("high half not bitonic: %v from %v", hi, orig)
		}
		var maxLo, minHi uint32 = 0, ^uint32(0)
		for _, v := range lo {
			if v > maxLo {
				maxLo = v
			}
		}
		for _, v := range hi {
			if v < minHi {
				minHi = v
			}
		}
		if maxLo > minHi {
			t.Fatalf("split ordering violated: max(lo)=%d > min(hi)=%d (input %v)", maxLo, minHi, orig)
		}
	}
}

func TestSplitDescMirrorsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 << rng.Intn(5)
		s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
		a := append([]uint32(nil), s...)
		b := append([]uint32(nil), s...)
		Split(a)
		SplitDesc(b)
		for i := 0; i < n/2; i++ {
			if a[i] != b[i+n/2] || a[i+n/2] != b[i] {
				t.Fatalf("SplitDesc is not the mirror of Split: %v vs %v", a, b)
			}
		}
	}
}

func TestMergeSortsBitonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 << rng.Intn(8)
		s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
		want := append([]uint32(nil), s...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		asc := append([]uint32(nil), s...)
		Merge(asc, true)
		if !IsSortedAsc(asc) {
			t.Fatalf("Merge asc failed: %v", asc)
		}
		for i := range want {
			if asc[i] != want[i] {
				t.Fatalf("Merge asc is not a permutation-preserving sort at %d", i)
			}
		}

		desc := append([]uint32(nil), s...)
		Merge(desc, false)
		if !IsSortedDesc(desc) {
			t.Fatalf("Merge desc failed: %v", desc)
		}
		for i := range want {
			if desc[n-1-i] != want[i] {
				t.Fatalf("Merge desc wrong multiset at %d", i)
			}
		}
	}
}

func TestMergePanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge should panic on non-power-of-two length")
		}
	}()
	Merge(make([]uint32, 3), true)
}

func TestRotate(t *testing.T) {
	s := []uint32{0, 1, 2, 3, 4}
	if got := Rotate(s, 2); got[0] != 2 || got[4] != 1 {
		t.Errorf("Rotate(+2) = %v", got)
	}
	if got := Rotate(s, -1); got[0] != 4 {
		t.Errorf("Rotate(-1) = %v", got)
	}
	if got := Rotate(s, 5); got[0] != 0 {
		t.Errorf("Rotate(n) should be identity, got %v", got)
	}
	if got := Rotate[uint32](nil, 3); len(got) != 0 {
		t.Errorf("Rotate(nil) = %v", got)
	}
}

// TestMinIndexExhaustive checks Algorithm 2 against a linear scan for
// every (length, peak position, rotation) combination of distinct-valued
// bitonic sequences up to length 40.
func TestMinIndexExhaustive(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for up := 1; up <= n; up++ {
			base := makeBitonic(n, up, 0, nil)
			for rot := 0; rot < n; rot++ {
				s := Rotate(base, rot)
				got := MinIndex(s)
				want := argmin(s)
				if s[got] != s[want] {
					t.Fatalf("n=%d up=%d rot=%d: MinIndex=%d (val %d), argmin=%d (val %d) in %v",
						n, up, rot, got, s[got], want, s[want], s)
				}
			}
		}
	}
}

func TestMinIndexRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(1<<12)
		s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
		got := MinIndex(s)
		if s[got] != s[argmin(s)] {
			t.Fatalf("trial %d: wrong minimum", trial)
		}
	}
}

func TestMinIndexWithDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(256)
		// Low-cardinality values force duplicate splitters and exercise
		// the linear fallback.
		s := make([]uint32, n)
		for i := range s {
			s[i] = uint32(rng.Intn(4))
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		up := 1 + rng.Intn(n)
		seq := append(append([]uint32{}, s[n-up:]...), reversed(s[:n-up])...)
		seq = Rotate(seq, rng.Intn(n))
		if !IsBitonic(seq) {
			t.Fatalf("test generator produced non-bitonic input")
		}
		got := MinIndex(seq)
		if seq[got] != seq[argmin(seq)] {
			t.Fatalf("duplicates: MinIndex returned %d (val %d), want val %d", got, seq[got], seq[argmin(seq)])
		}
	}
}

func reversed(s []uint32) []uint32 {
	out := make([]uint32, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func TestMaxIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(512)
		s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
		got := MaxIndex(s)
		want := 0
		for i, v := range s {
			if v > s[want] {
				want = i
			}
		}
		if s[got] != s[want] {
			t.Fatalf("MaxIndex wrong: got val %d want %d", s[got], s[want])
		}
	}
}

// TestMinIndexLogarithmic verifies the O(log n) claim of Lemma 8 by
// counting positions inspected on duplicate-free inputs.
func TestMinIndexLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		worst := 0
		for trial := 0; trial < 50; trial++ {
			s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
			inspected := countMinIndexInspections(s)
			if inspected > worst {
				worst = inspected
			}
		}
		// Each iteration halves the arc and inspects O(1) positions;
		// the final linear scan touches <= 4. Allow a generous constant.
		limit := 8*log2ceil(n) + 16
		if worst > limit {
			t.Errorf("n=%d: MinIndex inspected %d positions, want <= %d", n, worst, limit)
		}
	}
}

func log2ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// countMinIndexInspections re-runs the MinIndex control flow, counting
// every sequence position it reads. It mirrors MinIndex exactly; the
// equality of results is asserted as a side check.
func countMinIndexInspections(s []uint32) int {
	n := len(s)
	count := 0
	read := func(i int) uint32 { count++; return s[i%n] }
	if n <= 2 {
		return n
	}
	a, b, c := 0, n/3, 2*n/3
	va, vb, vc := read(a), read(b), read(c)
	if va == vb || vb == vc || va == vc {
		return count + n
	}
	var lo, mid, hi int
	switch {
	case va < vb && va < vc:
		lo, mid, hi = c, a+n, b+n
	case vb < va && vb < vc:
		lo, mid, hi = a, b, c
	default:
		lo, mid, hi = b, c, a+n
	}
	for hi-lo > 3 {
		x := (lo + mid) / 2
		y := (mid + hi) / 2
		vx, vm, vy := read(x), read(mid), read(y)
		if vx == vm || vm == vy || (x != mid && y != mid && vx == vy) {
			return count + (hi - lo + 1)
		}
		switch {
		case vx < vm && vx < vy:
			mid, hi = x, mid
		case vm < vx && vm < vy:
			lo, hi = x, y
		default:
			lo, mid = mid, y
		}
	}
	return count + (hi - lo + 1)
}

func TestSortBitonic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(1024)
		s := makeBitonic(n, 1+rng.Intn(n), rng.Intn(n), rng)
		want := append([]uint32(nil), s...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		dst := make([]uint32, n)
		SortBitonic(dst, s, true)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("SortBitonic asc mismatch at %d: got %v", i, dst[:min(n, 16)])
			}
		}
		SortBitonic(dst, s, false)
		for i := range want {
			if dst[n-1-i] != want[i] {
				t.Fatalf("SortBitonic desc mismatch at %d", i)
			}
		}
	}
}

func TestSortBitonicDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(256)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(rng.Intn(8))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		up := 1 + rng.Intn(n)
		seq := append(append([]uint32{}, vals[n-up:]...), reversed(vals[:n-up])...)
		seq = Rotate(seq, rng.Intn(n))
		dst := make([]uint32, n)
		SortBitonic(dst, seq, true)
		if !IsSortedAsc(dst) {
			t.Fatalf("not sorted: %v", dst)
		}
		// multiset check
		if !sameMultiset(dst, vals) {
			t.Fatalf("multiset changed")
		}
	}
}

func sameMultiset(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[uint32]int{}
	for _, v := range a {
		m[v]++
	}
	for _, v := range b {
		m[v]--
	}
	for _, c := range m {
		if c != 0 {
			return false
		}
	}
	return true
}

// Property: for any bitonic input, SortBitonic agrees with Merge.
func TestQuickSortBitonicMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(9))
		s := makeBitonic(n, 1+r.Intn(n), r.Intn(n), rng)
		a := make([]uint32, n)
		SortBitonic(a, s, true)
		b := append([]uint32(nil), s...)
		Merge(b, true)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortBitonicEmptyAndMismatch(t *testing.T) {
	SortBitonic[uint32](nil, nil, true) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	SortBitonic(make([]uint32, 2), make([]uint32, 3), true)
}
