// Package localsort provides the fast local computation routines of
// Chapter 4: LSD radix sort (the paper's choice for the first lg n
// stages, §4.4), linear two-way and p-way merges (§4.3's unpack fusion),
// and block/strided bitonic-merge sorting built on bitseq.SortBitonic
// (Theorems 2 and 3). All routines are O(n) or O(n · passes) and avoid
// comparisons beyond what the input format requires, which is exactly
// why the paper replaces the compare-exchange simulation with them.
//
// Every routine is generic over the element layer and dispatches once
// per call to a monomorphic kernel: integer keys radix-sort directly,
// float keys radix-sort their order images (a bijective bit transform,
// so the passes stay pure integer loops), and KV64 records move whole
// 16-byte elements keyed by K. The uint32 instantiation compiles to
// exactly the pre-generic loops.
package localsort

import (
	"parbitonic/element"
	"parbitonic/internal/bitseq"
)

const (
	radixBits = 11
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

// RadixPasses is the number of counting passes RadixSort performs per
// 32 bits of key; exported so cost models can charge it faithfully.
// Keys wider than 32 bits take proportionally more passes (see
// RadixPassesOf).
const RadixPasses = 3

// RadixPassesOf returns the number of counting passes RadixSort
// performs for element type E: RadixPasses per 32 bits of key width
// (3 for uint32/float32, 6 for uint64/float64/KV64).
func RadixPassesOf[E element.Elem]() int {
	return RadixPasses * element.KeyBits[E]() / 32
}

// RadixSort sorts keys in place, ascending, using least-significant-
// digit radix sort with 11-bit digits (3 passes per 32 bits of key).
// Floats sort via their order image, so NaNs order after +Inf and
// -0 before +0; KV64 records sort by K (not stably).
func RadixSort[E element.Elem](keys []E) {
	if len(keys) < 2 {
		return
	}
	switch any(*new(E)).(type) {
	case uint32:
		radixUint(element.Cast[uint32](keys), RadixPasses)
	case uint64:
		radixUint(element.Cast[uint64](keys), 2*RadixPasses)
	case float32:
		s := element.Cast[float32](keys)
		u := element.Cast[uint32](keys)
		for i, f := range s {
			u[i] = uint32(element.Bits(f))
		}
		radixUint(u, RadixPasses)
		for i, x := range u {
			s[i] = element.FromBits[float32](uint64(x), 0)
		}
	case float64:
		s := element.Cast[float64](keys)
		u := element.Cast[uint64](keys)
		for i, f := range s {
			u[i] = element.Bits(f)
		}
		radixUint(u, 2*RadixPasses)
		for i, x := range u {
			s[i] = element.FromBits[float64](x, 0)
		}
	default:
		radixKV(element.Cast[element.KV64](keys))
	}
}

// uintKey are the unsigned widths radix passes run over; every element
// kind reduces to one of them (floats via the order-image transform).
type uintKey interface {
	uint32 | uint64
}

func radixUint[T uintKey](keys []T, passes int) {
	n := len(keys)
	scratch := make([]T, n)
	src, dst := keys, scratch
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)
		var count [radixSize]int
		for _, k := range src {
			count[(k>>shift)&radixMask]++
		}
		sum := 0
		for d := 0; d < radixSize; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, k := range src {
			d := (k >> shift) & radixMask
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(keys, src)
	}
}

func radixKV(recs []element.KV64) {
	n := len(recs)
	scratch := make([]element.KV64, n)
	src, dst := recs, scratch
	passes := 2 * RadixPasses
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)
		var count [radixSize]int
		for _, r := range src {
			count[(r.K>>shift)&radixMask]++
		}
		sum := 0
		for d := 0; d < radixSize; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, r := range src {
			d := (r.K >> shift) & radixMask
			dst[count[d]] = r
			count[d]++
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(recs, src)
	}
}

// Sort sorts keys in place in the direction given by asc, using radix
// sort (a descending sort is an ascending sort followed by a linear
// reversal).
func Sort[E element.Elem](keys []E, asc bool) {
	RadixSort(keys)
	if !asc {
		Reverse(keys)
	}
}

// Reverse reverses keys in place.
func Reverse[E element.Elem](keys []E) {
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
}

// MergeTwo merges the ascending-sorted slices a and b into dst (whose
// length must be len(a)+len(b)) in the direction given by asc.
func MergeTwo[E element.Elem](dst, a, b []E, asc bool) {
	if len(dst) != len(a)+len(b) {
		panic("localsort: MergeTwo length mismatch")
	}
	switch any(*new(E)).(type) {
	case uint32:
		ordMergeTwo(element.Cast[uint32](dst), element.Cast[uint32](a), element.Cast[uint32](b), asc)
	case uint64:
		ordMergeTwo(element.Cast[uint64](dst), element.Cast[uint64](a), element.Cast[uint64](b), asc)
	case float32:
		ordMergeTwo(element.Cast[float32](dst), element.Cast[float32](a), element.Cast[float32](b), asc)
	case float64:
		ordMergeTwo(element.Cast[float64](dst), element.Cast[float64](a), element.Cast[float64](b), asc)
	default:
		kvMergeTwo(element.Cast[element.KV64](dst), element.Cast[element.KV64](a), element.Cast[element.KV64](b), asc)
	}
}

func ordMergeTwo[T element.Ord](dst, a, b []T, asc bool) {
	i, j := 0, 0
	put := func(pos int, v T) {
		if asc {
			dst[pos] = v
		} else {
			dst[len(dst)-1-pos] = v
		}
	}
	for k := 0; k < len(dst); k++ {
		switch {
		case i == len(a):
			put(k, b[j])
			j++
		case j == len(b):
			put(k, a[i])
			i++
		case a[i] <= b[j]:
			put(k, a[i])
			i++
		default:
			put(k, b[j])
			j++
		}
	}
}

func kvMergeTwo(dst, a, b []element.KV64, asc bool) {
	i, j := 0, 0
	put := func(pos int, v element.KV64) {
		if asc {
			dst[pos] = v
		} else {
			dst[len(dst)-1-pos] = v
		}
	}
	for k := 0; k < len(dst); k++ {
		switch {
		case i == len(a):
			put(k, b[j])
			j++
		case j == len(b):
			put(k, a[i])
			i++
		case a[i].K <= b[j].K:
			put(k, a[i])
			i++
		default:
			put(k, b[j])
			j++
		}
	}
}

// RunOf is one sorted input run for MergeRuns. Desc marks runs stored
// in descending order (they are consumed from the tail), which is how
// the long messages from the second half of a communication group
// arrive in §4.3's unpack-fused merge.
type RunOf[E element.Elem] struct {
	Keys []E
	Desc bool
}

// Run is a uint32 run, the element type of the paper's experiments.
type Run = RunOf[uint32]

func (r RunOf[E]) len() int { return len(r.Keys) }

func (r RunOf[E]) at(i int) E {
	if r.Desc {
		return r.Keys[len(r.Keys)-1-i]
	}
	return r.Keys[i]
}

// MergeRuns merges the sorted runs into dst ascending using a
// tournament (loser) tree: O(total · log p) comparisons for p runs.
// This is the p-way merge the paper fuses with unpacking so the
// separate unpack pass disappears (§4.3).
func MergeRuns[E element.Elem](dst []E, runs []RunOf[E]) {
	total := 0
	for _, r := range runs {
		total += r.len()
	}
	if len(dst) != total {
		panic("localsort: MergeRuns length mismatch")
	}
	MergeRunsEmit(runs, total, func(rank int, v E) { dst[rank] = v })
}

// MergeRunsEmit is MergeRuns with a caller-supplied sink: emit is
// called once per element in ascending order with its rank. This lets
// the packing for the next remap be the merge's own emission pass —
// the thesis's "single local computation step" future work (Ch. 7).
// total must equal the summed run lengths.
func MergeRunsEmit[E element.Elem](runs []RunOf[E], total int, emit func(rank int, v E)) {
	check := 0
	for _, r := range runs {
		check += r.len()
	}
	if check != total {
		panic("localsort: MergeRunsEmit length mismatch")
	}
	switch len(runs) {
	case 0:
		return
	case 1:
		for i := 0; i < runs[0].len(); i++ {
			emit(i, runs[0].at(i))
		}
		return
	}
	// The tournament compares key views cast from the element storage
	// (free reinterprets), so every comparison is a native compare while
	// emission hands back the original elements — records keep their
	// payloads without any per-element conversion.
	switch any(*new(E)).(type) {
	case uint32:
		mergeRunsEmitOrd[E, uint32](runs, total, emit)
	case uint64:
		mergeRunsEmitOrd[E, uint64](runs, total, emit)
	case float32:
		mergeRunsEmitOrd[E, float32](runs, total, emit)
	case float64:
		mergeRunsEmitOrd[E, float64](runs, total, emit)
	default:
		mergeRunsEmitKV(runs, total, emit)
	}
}

// mergeRunsEmitOrd runs the tournament tree comparing []T views of the
// runs' key storage. T is E's scalar view (identical width), so keyAt
// indexes the same memory the emitted elements come from.
func mergeRunsEmitOrd[E element.Elem, T element.Ord](runs []RunOf[E], total int, emit func(rank int, v E)) {
	p := len(runs)
	size := 1
	for size < p {
		size *= 2
	}
	keys := make([][]T, p)
	for r := range runs {
		keys[r] = element.Cast[T](runs[r].Keys)
	}
	pos := make([]int, p) // cursor into each run
	head := func(r int) (T, bool) {
		if r >= p || pos[r] >= len(keys[r]) {
			var zero T
			return zero, false
		}
		if runs[r].Desc {
			return keys[r][len(keys[r])-1-pos[r]], true
		}
		return keys[r][pos[r]], true
	}
	// tree[i] holds the run index winning subtree i; leaves are
	// tree[size-1+j] for run j.
	tree := make([]int, 2*size-1)
	var build func(node int) int
	build = func(node int) int {
		if node >= size-1 {
			r := node - (size - 1)
			tree[node] = r
			return r
		}
		l := build(2*node + 1)
		r := build(2*node + 2)
		lv, lok := head(l)
		rv, rok := head(r)
		win := l
		if !lok || (rok && rv < lv) {
			win = r
		}
		tree[node] = win
		return win
	}
	build(0)

	for k := 0; k < total; k++ {
		r := tree[0]
		if _, ok := head(r); !ok {
			panic("localsort: MergeRuns internal error (empty winner)")
		}
		emit(k, runs[r].at(pos[r]))
		pos[r]++
		// Replay the path from r's leaf to the root.
		node := size - 1 + r
		for node > 0 {
			parent := (node - 1) / 2
			l, rr := tree[2*parent+1], tree[2*parent+2]
			lv, lok := head(l)
			rv, rok := head(rr)
			win := l
			if !lok || (rok && rv < lv) {
				win = rr
			}
			tree[parent] = win
			node = parent
		}
	}
}

// mergeRunsEmitKV is the tournament over KV64 record runs, comparing
// keys only.
func mergeRunsEmitKV[E element.Elem](runs []RunOf[E], total int, emit func(rank int, v E)) {
	p := len(runs)
	size := 1
	for size < p {
		size *= 2
	}
	keys := make([][]element.KV64, p)
	for r := range runs {
		keys[r] = element.Cast[element.KV64](runs[r].Keys)
	}
	pos := make([]int, p)
	head := func(r int) (uint64, bool) {
		if r >= p || pos[r] >= len(keys[r]) {
			return 0, false
		}
		if runs[r].Desc {
			return keys[r][len(keys[r])-1-pos[r]].K, true
		}
		return keys[r][pos[r]].K, true
	}
	tree := make([]int, 2*size-1)
	var build func(node int) int
	build = func(node int) int {
		if node >= size-1 {
			r := node - (size - 1)
			tree[node] = r
			return r
		}
		l := build(2*node + 1)
		r := build(2*node + 2)
		lv, lok := head(l)
		rv, rok := head(r)
		win := l
		if !lok || (rok && rv < lv) {
			win = r
		}
		tree[node] = win
		return win
	}
	build(0)

	for k := 0; k < total; k++ {
		r := tree[0]
		if _, ok := head(r); !ok {
			panic("localsort: MergeRuns internal error (empty winner)")
		}
		emit(k, runs[r].at(pos[r]))
		pos[r]++
		node := size - 1 + r
		for node > 0 {
			parent := (node - 1) / 2
			l, rr := tree[2*parent+1], tree[2*parent+2]
			lv, lok := head(l)
			rv, rok := head(rr)
			win := l
			if !lok || (rok && rv < lv) {
				win = rr
			}
			tree[parent] = win
			node = parent
		}
	}
}

// SortBitonicBlocks sorts each contiguous block of blockLen keys, every
// block being a bitonic sequence, in the direction dir(block) returns.
// scratch must be at least blockLen long (it is allocated when nil).
// This is the Theorem 2/3 phase-one primitive.
func SortBitonicBlocks[E element.Elem](keys []E, blockLen int, dir func(block int) bool, scratch []E) {
	if blockLen <= 0 || len(keys)%blockLen != 0 {
		panic("localsort: SortBitonicBlocks bad block length")
	}
	if len(scratch) < blockLen {
		scratch = make([]E, blockLen)
	}
	for b := 0; b*blockLen < len(keys); b++ {
		blk := keys[b*blockLen : (b+1)*blockLen]
		bitseq.SortBitonic(scratch[:blockLen], blk, dir(b))
		copy(blk, scratch[:blockLen])
	}
}

// SortBitonicStrided sorts the strided subsequence
// keys[start], keys[start+stride], ... (count elements), which must be
// bitonic, in the direction given by asc. Used for the second phase of
// a crossing remap (Theorem 3), where the blocks to sort are
// interleaved in local memory. scratch needs 2*count capacity.
func SortBitonicStrided[E element.Elem](keys []E, start, stride, count int, asc bool, scratch []E) {
	if len(scratch) < 2*count {
		scratch = make([]E, 2*count)
	}
	in, out := scratch[:count], scratch[count:2*count]
	for i := 0; i < count; i++ {
		in[i] = keys[start+i*stride]
	}
	bitseq.SortBitonic(out, in, asc)
	for i := 0; i < count; i++ {
		keys[start+i*stride] = out[i]
	}
}
