// Package localsort provides the fast local computation routines of
// Chapter 4: LSD radix sort (the paper's choice for the first lg n
// stages, §4.4), linear two-way and p-way merges (§4.3's unpack fusion),
// and block/strided bitonic-merge sorting built on bitseq.SortBitonic
// (Theorems 2 and 3). All routines are O(n) or O(n · passes) and avoid
// comparisons beyond what the input format requires, which is exactly
// why the paper replaces the compare-exchange simulation with them.
//
// Every routine is generic over the element layer and dispatches once
// per call to a monomorphic kernel: integer keys radix-sort directly,
// float keys radix-sort their order images (a bijective bit transform,
// so the passes stay pure integer loops), and KV64 records move whole
// 16-byte elements keyed by K. The uint32 instantiation compiles to
// exactly the pre-generic loops.
package localsort

import (
	"sync"
	"sync/atomic"

	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/workpool"
)

// poolOverride lets tests route the parallel kernels through a pool of
// their own sizing; when nil the kernels use the process-wide shared
// pool (helpers = GOMAXPROCS-1, so on a single-core machine every
// kernel below runs its plain sequential path).
var poolOverride atomic.Pointer[workpool.Pool]

// SetPool overrides the worker pool the parallel kernels
// (SortBitonicBlocks, SortBitonicStridedBatch, the large-n radix)
// submit tiles to; nil restores the process-wide shared pool. It is a
// test hook — forcing a multi-lane pool exercises the concurrent tile
// paths on machines whose shared pool has no helpers — and must not be
// called while kernels are running.
func SetPool(p *workpool.Pool) {
	if p == nil {
		poolOverride.Store(nil)
		return
	}
	poolOverride.Store(p)
}

func kernelPool() *workpool.Pool {
	if p := poolOverride.Load(); p != nil {
		return p
	}
	return workpool.Shared()
}

// Digit widths of the adaptive radix layout. Small inputs use 8-bit
// LSD digits: the count tables live on the stack and the pass count
// per 32 bits is even, so the last permute lands back in the caller's
// array with no copy-back. Large key-only inputs switch to the hybrid
// layout — one MSD partition by the top 11 bits (the paper's digit
// width) into 2048 regions, each finished by an 11-bit LSD radix whose
// working set is cache-resident (see radixUintHybrid). KV64 records
// keep a flat LSD with 16-bit digits: fewer whole-record permute
// passes beat partition locality at 16 bytes per element.
const (
	radixSmallBits = 8
	radixSmallSize = 1 << radixSmallBits
	radixLargeBits = 16
	radixLargeSize = 1 << radixLargeBits

	// hybridTopBits is the MSD partition width of the large-n hybrid;
	// hybridMaxLowPasses bounds its per-region LSD pass count
	// (ceil((64-11)/11) for uint64 keys).
	hybridTopBits      = 11
	hybridTopSize      = 1 << hybridTopBits
	hybridMaxLowPasses = 5

	// radixLargeMin is the element count from which the large layouts
	// pay for their table zeroing and prefix sums.
	radixLargeMin = 1 << 16
)

// RadixPasses is the number of counting passes the §3.4/§4.4 cost
// model charges per 32 bits of key — the paper's 11-bit/3-pass layout.
// The implementation adapts its real digit width to n (see RadixSort)
// but the model constant is part of the calibrated cost semantics, so
// it stays fixed; internal/tune owns translating measured wall time
// into per-model-pass costs.
const RadixPasses = 3

// RadixPassesOf returns the number of model counting passes charged
// for element type E: RadixPasses per 32 bits of key width (3 for
// uint32/float32, 6 for uint64/float64/KV64).
func RadixPassesOf[E element.Elem]() int {
	return RadixPasses * element.KeyBits[E]() / 32
}

// countPool recycles the large-layout count tables across radix sorts:
// the KV64 16-bit LSD wants up to 4 passes × 64Ki uint32 entries, and
// the key hybrid borrows a small prefix for its partition and region
// tables.
var countPool = sync.Pool{
	New: func() any {
		b := make([]uint32, 4*radixLargeSize)
		return &b
	},
}

// RadixSort sorts keys in place, ascending, with least-significant-
// digit radix sort. Floats sort via their order image, so NaNs order
// after +Inf and -0 before +0; KV64 records sort by K, stably (every
// pass layout is a stable LSD permutation, so records with equal keys
// keep their input order). Allocates a transient n-element scratch;
// hot paths pass their own via RadixSortScratch.
func RadixSort[E element.Elem](keys []E) {
	RadixSortScratch(keys, nil)
}

// RadixSortScratch is RadixSort with a caller-owned ping-pong buffer:
// scratch must hold at least len(keys) elements (nil allocates one).
// With scratch supplied the sort performs zero allocations in steady
// state — count tables are pooled or stack-resident, and every pass
// layout uses an even pass count so the result ends in keys without a
// copy-back.
func RadixSortScratch[E element.Elem](keys, scratch []E) {
	if len(keys) < 2 {
		return
	}
	if len(scratch) < len(keys) {
		scratch = make([]E, len(keys))
	} else {
		scratch = scratch[:len(keys)]
	}
	switch any(*new(E)).(type) {
	case uint32:
		radixUint(element.Cast[uint32](keys), element.Cast[uint32](scratch), 32)
	case uint64:
		radixUint(element.Cast[uint64](keys), element.Cast[uint64](scratch), 64)
	case float32:
		s := element.Cast[float32](keys)
		u := element.Cast[uint32](keys)
		for i, f := range s {
			u[i] = uint32(element.Bits(f))
		}
		radixUint(u, element.Cast[uint32](scratch), 32)
		for i, x := range u {
			s[i] = element.FromBits[float32](uint64(x), 0)
		}
	case float64:
		s := element.Cast[float64](keys)
		u := element.Cast[uint64](keys)
		for i, f := range s {
			u[i] = element.Bits(f)
		}
		radixUint(u, element.Cast[uint64](scratch), 64)
		for i, x := range u {
			s[i] = element.FromBits[float64](x, 0)
		}
	default:
		radixKV(element.Cast[element.KV64](keys), element.Cast[element.KV64](scratch))
	}
}

// uintKey are the unsigned widths radix passes run over; every element
// kind reduces to one of them (floats via the order-image transform).
type uintKey interface {
	uint32 | uint64
}

// radixUint sorts keys using scratch as the ping-pong buffer. Small
// inputs run a flat LSD with 8-bit digits and stack tables; large
// inputs take the cache-blocked MSD+LSD hybrid. Both are stable, so
// the choice is invisible in the output.
func radixUint[T uintKey](keys, scratch []T, keyBits int) {
	if len(keys) >= radixLargeMin {
		radixUintHybrid(keys, scratch, keyBits)
		return
	}
	var count [(64 / radixSmallBits) * radixSmallSize]uint32
	radixUintPasses(keys, scratch, keyBits/radixSmallBits, radixSmallBits, count[:])
}

// radixUintHybrid sorts large key arrays with one MSD partition pass
// followed by cache-resident LSD finishing. The top hybridTopBits bits
// scatter every key into its final 2048-aligned region — a few hundred
// elements each on uniform inputs — and each region is then finished
// independently by an LSD radix over the remaining low bits whose
// working set (region, bounce space, count tables) stays in cache.
// DRAM sees three sequential sweeps (histogram, partition read,
// partition write) plus one read+write of cache-warm regions, versus
// the 2·passes+3 full-array sweeps of the flat layout whose every
// permute round-trips memory. The parity of the low-pass count picks
// the partition direction up front so the result lands in keys with no
// final copy: an even count first mirrors keys into scratch (fused
// into the histogram read) and partitions back into keys; an odd count
// partitions into scratch and lets the finishing passes carry the keys
// home. Region scatter is stable and the per-region LSD is stable, so
// the whole is a stable sort like the flat layout it replaces.
func radixUintHybrid[T uintKey](keys, scratch []T, keyBits int) {
	topShift := uint(keyBits - hybridTopBits)
	lowBits := keyBits - hybridTopBits
	passes := (lowBits + hybridTopBits - 1) / hybridTopBits
	cp := countPool.Get().(*[]uint32)
	count := (*cp)[:hybridTopSize]
	starts := (*cp)[hybridTopSize : 2*hybridTopSize]
	clear(count)
	var from, into, other []T
	if passes&1 == 0 {
		for i, k := range keys {
			count[int(k>>topShift)]++
			scratch[i] = k
		}
		from, into, other = scratch, keys, scratch
	} else {
		for _, k := range keys {
			count[int(k>>topShift)]++
		}
		from, into, other = keys, scratch, keys
	}
	sum := uint32(0)
	for d := range count {
		c := count[d]
		count[d] = sum
		starts[d] = sum
		sum += c
	}
	for _, k := range from {
		d := int(k >> topShift)
		into[count[d]] = k
		count[d]++
	}
	// Regions are disjoint in keys, scratch and the shared (now
	// read-only) offset tables, so they finish in parallel on whatever
	// helper lanes are idle; each tile draws its own digit tables from
	// the pool. A single-lane pool runs one inline tile — the plain
	// sequential loop.
	wp := kernelPool()
	if wp.Size() == 1 {
		// Sequential: borrow cp's tail for the digit tables and skip
		// the closure, so the whole sort allocates nothing.
		low := (*cp)[2*hybridTopSize : (2+hybridMaxLowPasses)*hybridTopSize]
		hybridFinishRange(keys, into, other, starts, count, lowBits, low, 0, hybridTopSize)
	} else {
		wp.ParallelFor(hybridTopSize, (hybridTopSize+wp.Size()-1)/wp.Size(), func(dlo, dhi int) {
			tp := countPool.Get().(*[]uint32)
			low := (*tp)[:hybridMaxLowPasses*hybridTopSize]
			hybridFinishRange(keys, into, other, starts, count, lowBits, low, dlo, dhi)
			countPool.Put(tp)
		})
	}
	countPool.Put(cp)
}

// hybridFinishRange finishes the hybrid regions [dlo, dhi): each
// region of into is LSD-sorted over its low bits, bouncing through
// other, and lands back in keys.
func hybridFinishRange[T uintKey](keys, into, other []T, starts, count []uint32, lowBits int, low []uint32, dlo, dhi int) {
	for d := dlo; d < dhi; d++ {
		lo, hi := int(starts[d]), int(count[d])
		if hi-lo < 2 {
			if hi == lo+1 {
				keys[lo] = into[lo]
			}
			continue
		}
		res := lsdLow(into[lo:hi], other[lo:hi], lowBits, low)
		if &res[0] != &keys[lo] {
			copy(keys[lo:hi], res)
		}
	}
}

// lsdLow finishes one hybrid region: it sorts seg by its low lowBits
// bits with 11-bit digits (the last pass takes the remainder), bouncing
// between seg and buf, and returns whichever of the two holds the
// result. Identity passes (single occupied bucket) are skipped. The
// two-pass shape every uint32 region takes is unrolled — its fused
// histogram read is the hottest loop of the large-n sort.
func lsdLow[T uintKey](seg, buf []T, lowBits int, count []uint32) []T {
	n := uint32(len(seg))
	if lowBits == 21 { // uint32 keys: one 11-bit and one 10-bit pass
		c0 := count[:1<<11]
		c1 := count[1<<11 : 1<<11+1<<10]
		clear(c0)
		clear(c1)
		for _, k := range seg {
			c0[int(k&0x7ff)]++
			c1[int(k>>11&0x3ff)]++
		}
		src, dst := seg, buf
		if c0[int(src[0]&0x7ff)] != n {
			scatterPass(src, dst, 0, 0x7ff, c0)
			src, dst = dst, src
		}
		if c1[int(src[0]>>11&0x3ff)] != n {
			scatterPass(src, dst, 11, 0x3ff, c1)
			src, dst = dst, src
		}
		return src
	}
	var shifts [hybridMaxLowPasses]uint
	var masks [hybridMaxLowPasses]T
	var offs [hybridMaxLowPasses]int
	passes, off := 0, 0
	for b := 0; b < lowBits; b += hybridTopBits {
		w := min(hybridTopBits, lowBits-b)
		shifts[passes] = uint(b)
		masks[passes] = T(1)<<w - 1
		offs[passes] = off
		off += 1 << w
		passes++
	}
	clear(count[:off])
	for _, k := range seg {
		for p := 0; p < passes; p++ {
			count[offs[p]+int(k>>shifts[p]&masks[p])]++
		}
	}
	src, dst := seg, buf
	for p := 0; p < passes; p++ {
		cnt := count[offs[p] : offs[p]+int(masks[p])+1]
		if cnt[int(src[0]>>shifts[p]&masks[p])] == n {
			continue
		}
		scatterPass(src, dst, shifts[p], masks[p], cnt)
		src, dst = dst, src
	}
	return src
}

// scatterPass turns the digit histogram cnt into running offsets and
// permutes src into dst by the digit at shift/mask — one stable
// counting-sort pass.
func scatterPass[T uintKey](src, dst []T, shift uint, mask T, cnt []uint32) {
	sum := uint32(0)
	for d := range cnt {
		c := cnt[d]
		cnt[d] = sum
		sum += c
	}
	for _, k := range src {
		d := int(k >> shift & mask)
		dst[cnt[d]] = k
		cnt[d]++
	}
}

func radixUintPasses[T uintKey](keys, scratch []T, passes, bits int, count []uint32) {
	n := len(keys)
	size := 1 << bits
	mask := T(size - 1)
	count = count[:passes*size]
	clear(count)
	for _, k := range keys {
		for p, off := 0, 0; p < passes; p, off = p+1, off+size {
			count[off+int(k>>(uint(p*bits))&mask)]++
		}
	}
	src, dst := keys, scratch
	for p := 0; p < passes; p++ {
		shift := uint(p * bits)
		cnt := count[p*size : (p+1)*size]
		if cnt[int(src[0]>>shift&mask)] == uint32(n) {
			continue // all keys share this digit: the pass is the identity
		}
		sum := uint32(0)
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, k := range src {
			d := int(k >> shift & mask)
			dst[cnt[d]] = k
			cnt[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// radixKV is the record form of radixUint: 64-bit key digits, whole
// 16-byte elements moved per pass. Stability of every pass keeps
// equal-key records in input order.
func radixKV(recs, scratch []element.KV64) {
	n := len(recs)
	bits, passes := radixSmallBits, 64/radixSmallBits
	if n >= radixLargeMin {
		bits, passes = radixLargeBits, 64/radixLargeBits
	}
	size := 1 << bits
	mask := uint64(size - 1)
	cp := countPool.Get().(*[]uint32)
	count := (*cp)[:passes*size]
	clear(count)
	for _, r := range recs {
		for p, off := 0, 0; p < passes; p, off = p+1, off+size {
			count[off+int(r.K>>(uint(p*bits))&mask)]++
		}
	}
	src, dst := recs, scratch
	for p := 0; p < passes; p++ {
		shift := uint(p * bits)
		cnt := count[p*size : (p+1)*size]
		if cnt[int(src[0].K>>shift&mask)] == uint32(n) {
			continue
		}
		sum := uint32(0)
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, r := range src {
			d := int(r.K >> shift & mask)
			dst[cnt[d]] = r
			cnt[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &recs[0] {
		copy(recs, src)
	}
	countPool.Put(cp)
}

// Sort sorts keys in place in the direction given by asc, using radix
// sort (a descending sort is an ascending sort followed by a linear
// reversal).
func Sort[E element.Elem](keys []E, asc bool) {
	RadixSort(keys)
	if !asc {
		Reverse(keys)
	}
}

// SortScratch is Sort with a caller-owned radix ping-pong buffer; see
// RadixSortScratch.
func SortScratch[E element.Elem](keys []E, asc bool, scratch []E) {
	RadixSortScratch(keys, scratch)
	if !asc {
		Reverse(keys)
	}
}

// Reverse reverses keys in place.
func Reverse[E element.Elem](keys []E) {
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
}

// MergeTwo merges the ascending-sorted slices a and b into dst (whose
// length must be len(a)+len(b)) in the direction given by asc.
func MergeTwo[E element.Elem](dst, a, b []E, asc bool) {
	if len(dst) != len(a)+len(b) {
		panic("localsort: MergeTwo length mismatch")
	}
	switch any(*new(E)).(type) {
	case uint32:
		ordMergeTwo(element.Cast[uint32](dst), element.Cast[uint32](a), element.Cast[uint32](b), asc)
	case uint64:
		ordMergeTwo(element.Cast[uint64](dst), element.Cast[uint64](a), element.Cast[uint64](b), asc)
	case float32:
		ordMergeTwo(element.Cast[float32](dst), element.Cast[float32](a), element.Cast[float32](b), asc)
	case float64:
		ordMergeTwo(element.Cast[float64](dst), element.Cast[float64](a), element.Cast[float64](b), asc)
	default:
		kvMergeTwo(element.Cast[element.KV64](dst), element.Cast[element.KV64](a), element.Cast[element.KV64](b), asc)
	}
}

// The merge loops run the two-pointer body with the emission
// direction hoisted out (the closure-per-element form defeated
// inlining and re-tested the direction n times). Once either input is
// exhausted the remainder is a bulk copy, which memmoves instead of
// looping for the ascending tail.
func ordMergeTwo[T element.Ord](dst, a, b []T, asc bool) {
	i, j := 0, 0
	if asc {
		k := 0
		for i < len(a) && j < len(b) {
			if a[i] <= b[j] {
				dst[k] = a[i]
				i++
			} else {
				dst[k] = b[j]
				j++
			}
			k++
		}
		k += copy(dst[k:], a[i:])
		copy(dst[k:], b[j:])
		return
	}
	for k := len(dst) - 1; k >= 0; k-- {
		switch {
		case i == len(a):
			dst[k] = b[j]
			j++
		case j == len(b):
			dst[k] = a[i]
			i++
		case a[i] <= b[j]:
			dst[k] = a[i]
			i++
		default:
			dst[k] = b[j]
			j++
		}
	}
}

func kvMergeTwo(dst, a, b []element.KV64, asc bool) {
	i, j := 0, 0
	if asc {
		k := 0
		for i < len(a) && j < len(b) {
			if a[i].K <= b[j].K {
				dst[k] = a[i]
				i++
			} else {
				dst[k] = b[j]
				j++
			}
			k++
		}
		k += copy(dst[k:], a[i:])
		copy(dst[k:], b[j:])
		return
	}
	for k := len(dst) - 1; k >= 0; k-- {
		switch {
		case i == len(a):
			dst[k] = b[j]
			j++
		case j == len(b):
			dst[k] = a[i]
			i++
		case a[i].K <= b[j].K:
			dst[k] = a[i]
			i++
		default:
			dst[k] = b[j]
			j++
		}
	}
}

// RunOf is one sorted input run for MergeRuns. Desc marks runs stored
// in descending order (they are consumed from the tail), which is how
// the long messages from the second half of a communication group
// arrive in §4.3's unpack-fused merge.
type RunOf[E element.Elem] struct {
	Keys []E
	Desc bool
}

// Run is a uint32 run, the element type of the paper's experiments.
type Run = RunOf[uint32]

func (r RunOf[E]) len() int { return len(r.Keys) }

func (r RunOf[E]) at(i int) E {
	if r.Desc {
		return r.Keys[len(r.Keys)-1-i]
	}
	return r.Keys[i]
}

// MergeRuns merges the sorted runs into dst ascending using a
// tournament (loser) tree: O(total · log p) comparisons for p runs.
// This is the p-way merge the paper fuses with unpacking so the
// separate unpack pass disappears (§4.3).
func MergeRuns[E element.Elem](dst []E, runs []RunOf[E]) {
	total := 0
	for _, r := range runs {
		total += r.len()
	}
	if len(dst) != total {
		panic("localsort: MergeRuns length mismatch")
	}
	MergeRunsEmit(runs, total, func(rank int, v E) { dst[rank] = v })
}

// MergeRunsEmit is MergeRuns with a caller-supplied sink: emit is
// called once per element in ascending order with its rank. This lets
// the packing for the next remap be the merge's own emission pass —
// the thesis's "single local computation step" future work (Ch. 7).
// total must equal the summed run lengths.
func MergeRunsEmit[E element.Elem](runs []RunOf[E], total int, emit func(rank int, v E)) {
	check := 0
	for _, r := range runs {
		check += r.len()
	}
	if check != total {
		panic("localsort: MergeRunsEmit length mismatch")
	}
	switch len(runs) {
	case 0:
		return
	case 1:
		for i := 0; i < runs[0].len(); i++ {
			emit(i, runs[0].at(i))
		}
		return
	}
	// The tournament compares key views cast from the element storage
	// (free reinterprets), so every comparison is a native compare while
	// emission hands back the original elements — records keep their
	// payloads without any per-element conversion.
	switch any(*new(E)).(type) {
	case uint32:
		mergeRunsEmitOrd[E, uint32](runs, total, emit)
	case uint64:
		mergeRunsEmitOrd[E, uint64](runs, total, emit)
	case float32:
		mergeRunsEmitOrd[E, float32](runs, total, emit)
	case float64:
		mergeRunsEmitOrd[E, float64](runs, total, emit)
	default:
		mergeRunsEmitKV(runs, total, emit)
	}
}

// maxStackRuns bounds the tournament state kept in stack arrays: runs
// of p-way merges with p beyond it (no algorithm in this module gets
// there below P=16) fall back to heap tables.
const maxStackRuns = 16

// mergeRunsEmitOrd runs the tournament tree comparing []T views of the
// runs' key storage. T is E's scalar view (identical width), so keyAt
// indexes the same memory the emitted elements come from. All merge
// state lives in stack arrays for p <= maxStackRuns, making the
// steady-state merge allocation-free.
func mergeRunsEmitOrd[E element.Elem, T element.Ord](runs []RunOf[E], total int, emit func(rank int, v E)) {
	p := len(runs)
	size := 1
	for size < p {
		size *= 2
	}
	var keysBuf [maxStackRuns][]T
	var posBuf [maxStackRuns]int
	var treeBuf [2*maxStackRuns - 1]int
	var keys [][]T
	var pos []int
	var tree []int
	if p <= maxStackRuns {
		keys, pos, tree = keysBuf[:p], posBuf[:p], treeBuf[:2*size-1]
	} else {
		keys, pos, tree = make([][]T, p), make([]int, p), make([]int, 2*size-1)
	}
	for r := range runs {
		keys[r] = element.Cast[T](runs[r].Keys)
	}
	head := func(r int) (T, bool) {
		if r >= p || pos[r] >= len(keys[r]) {
			var zero T
			return zero, false
		}
		if runs[r].Desc {
			return keys[r][len(keys[r])-1-pos[r]], true
		}
		return keys[r][pos[r]], true
	}
	// tree[i] holds the run index winning subtree i; leaves are
	// tree[size-1+j] for run j. Winners propagate bottom-up.
	for j := 0; j < size; j++ {
		tree[size-1+j] = j
	}
	for node := size - 2; node >= 0; node-- {
		l, r := tree[2*node+1], tree[2*node+2]
		lv, lok := head(l)
		rv, rok := head(r)
		win := l
		if !lok || (rok && rv < lv) {
			win = r
		}
		tree[node] = win
	}

	for k := 0; k < total; k++ {
		r := tree[0]
		if _, ok := head(r); !ok {
			panic("localsort: MergeRuns internal error (empty winner)")
		}
		emit(k, runs[r].at(pos[r]))
		pos[r]++
		// Replay the path from r's leaf to the root.
		node := size - 1 + r
		for node > 0 {
			parent := (node - 1) / 2
			l, rr := tree[2*parent+1], tree[2*parent+2]
			lv, lok := head(l)
			rv, rok := head(rr)
			win := l
			if !lok || (rok && rv < lv) {
				win = rr
			}
			tree[parent] = win
			node = parent
		}
	}
}

// mergeRunsEmitKV is the tournament over KV64 record runs, comparing
// keys only.
func mergeRunsEmitKV[E element.Elem](runs []RunOf[E], total int, emit func(rank int, v E)) {
	p := len(runs)
	size := 1
	for size < p {
		size *= 2
	}
	var keysBuf [maxStackRuns][]element.KV64
	var posBuf [maxStackRuns]int
	var treeBuf [2*maxStackRuns - 1]int
	var keys [][]element.KV64
	var pos []int
	var tree []int
	if p <= maxStackRuns {
		keys, pos, tree = keysBuf[:p], posBuf[:p], treeBuf[:2*size-1]
	} else {
		keys, pos, tree = make([][]element.KV64, p), make([]int, p), make([]int, 2*size-1)
	}
	for r := range runs {
		keys[r] = element.Cast[element.KV64](runs[r].Keys)
	}
	head := func(r int) (uint64, bool) {
		if r >= p || pos[r] >= len(keys[r]) {
			return 0, false
		}
		if runs[r].Desc {
			return keys[r][len(keys[r])-1-pos[r]].K, true
		}
		return keys[r][pos[r]].K, true
	}
	for j := 0; j < size; j++ {
		tree[size-1+j] = j
	}
	for node := size - 2; node >= 0; node-- {
		l, r := tree[2*node+1], tree[2*node+2]
		lv, lok := head(l)
		rv, rok := head(r)
		win := l
		if !lok || (rok && rv < lv) {
			win = r
		}
		tree[node] = win
	}

	for k := 0; k < total; k++ {
		r := tree[0]
		if _, ok := head(r); !ok {
			panic("localsort: MergeRuns internal error (empty winner)")
		}
		emit(k, runs[r].at(pos[r]))
		pos[r]++
		node := size - 1 + r
		for node > 0 {
			parent := (node - 1) / 2
			l, rr := tree[2*parent+1], tree[2*parent+2]
			lv, lok := head(l)
			rv, rok := head(rr)
			win := l
			if !lok || (rok && rv < lv) {
				win = rr
			}
			tree[parent] = win
			node = parent
		}
	}
}

// SortBitonicBlocks sorts each contiguous block of blockLen keys, every
// block being a bitonic sequence, in the direction dir(block) returns.
// scratch must be at least blockLen long (it is allocated when nil).
// This is the Theorem 2/3 phase-one primitive. Blocks are independent,
// so on a multi-lane pool they sort on idle helper lanes, each tile
// with its own scratch; a single-lane pool takes the sequential path
// with the caller's scratch and allocates nothing.
func SortBitonicBlocks[E element.Elem](keys []E, blockLen int, dir func(block int) bool, scratch []E) {
	if blockLen <= 0 || len(keys)%blockLen != 0 {
		panic("localsort: SortBitonicBlocks bad block length")
	}
	nb := len(keys) / blockLen
	wp := kernelPool()
	if wp.Size() == 1 || nb == 1 {
		if len(scratch) < blockLen {
			scratch = make([]E, blockLen)
		}
		sortBlockRange(keys, blockLen, dir, scratch, 0, nb)
		return
	}
	wp.ParallelFor(nb, (nb+wp.Size()-1)/wp.Size(), func(lo, hi int) {
		sortBlockRange(keys, blockLen, dir, make([]E, blockLen), lo, hi)
	})
}

func sortBlockRange[E element.Elem](keys []E, blockLen int, dir func(block int) bool, scratch []E, lo, hi int) {
	for b := lo; b < hi; b++ {
		blk := keys[b*blockLen : (b+1)*blockLen]
		bitseq.SortBitonic(scratch[:blockLen], blk, dir(b))
		copy(blk, scratch[:blockLen])
	}
}

// SortBitonicStrided sorts the strided subsequence
// keys[start], keys[start+stride], ... (count elements), which must be
// bitonic, in the direction given by asc. Used for the second phase of
// a crossing remap (Theorem 3), where the blocks to sort are
// interleaved in local memory. scratch needs 2*count capacity.
func SortBitonicStrided[E element.Elem](keys []E, start, stride, count int, asc bool, scratch []E) {
	if len(scratch) < 2*count {
		scratch = make([]E, 2*count)
	}
	in, out := scratch[:count], scratch[count:2*count]
	for i := 0; i < count; i++ {
		in[i] = keys[start+i*stride]
	}
	bitseq.SortBitonic(out, in, asc)
	for i := 0; i < count; i++ {
		keys[start+i*stride] = out[i]
	}
}

// stridedGroupBytes bounds the column-group working set of
// SortBitonicStridedBatch so gathers, sorts and scatters stay
// cache-resident.
const stridedGroupBytes = 32 << 10

// SortBitonicStridedBatch runs the complete phase-two sweep of a
// crossing remap (Theorem 3): it sorts ALL stride interleaved columns
// keys[d], keys[d+stride], ... (count elements each, each bitonic) in
// direction asc. Column-at-a-time sweeps (SortBitonicStrided in a
// loop) stream the entire array once per column because consecutive
// column elements sit stride apart; this version processes columns in
// cache-sized groups — one sequential pass gathers a group into
// contiguous per-column scratch, the sorts run in cache, one
// sequential pass scatters back — so every cache line of keys is
// loaded O(stride/group) times instead of stride times.
//
// scratch wants (group+1)*count elements where group =
// stridedGroupBytes / (count * elem width); pass what you have (nil
// allocates) — an undersized scratch only shrinks the group on the
// sequential path. Column groups touch disjoint key columns, so on a
// multi-lane pool they run on idle helper lanes, each tile with its
// own gather scratch.
func SortBitonicStridedBatch[E element.Elem](keys []E, stride, count int, asc bool, scratch []E) {
	if stride <= 0 || count <= 0 || stride*count != len(keys) {
		panic("localsort: SortBitonicStridedBatch dimension mismatch")
	}
	w := int(element.TypeOf[E]().Width())
	g := stridedGroupBytes / (count * w)
	if g < 1 {
		g = 1
	}
	if g > stride {
		g = stride
	}
	wp := kernelPool()
	if wp.Size() == 1 || stride <= g {
		if len(scratch) >= 2*count && len(scratch) < (g+1)*count {
			g = len(scratch)/count - 1 // work within the caller's scratch
		}
		if len(scratch) < (g+1)*count {
			scratch = make([]E, (g+1)*count)
		}
		stridedGroupRange(keys, stride, count, asc, g, scratch, 0, (stride+g-1)/g)
		return
	}
	ng := (stride + g - 1) / g
	wp.ParallelFor(ng, (ng+wp.Size()-1)/wp.Size(), func(lo, hi int) {
		stridedGroupRange(keys, stride, count, asc, g, make([]E, (g+1)*count), lo, hi)
	})
}

// stridedGroupRange processes column groups [lo,hi): gather the group's
// columns into contiguous scratch, sort each in cache, scatter back.
func stridedGroupRange[E element.Elem](keys []E, stride, count int, asc bool, g int, scratch []E, lo, hi int) {
	cols := scratch[:g*count]
	tmp := scratch[g*count : (g+1)*count]
	for gi := lo; gi < hi; gi++ {
		d0 := gi * g
		gn := min(g, stride-d0)
		for j := 0; j < count; j++ {
			row := keys[j*stride+d0 : j*stride+d0+gn]
			for c, v := range row {
				cols[c*count+j] = v
			}
		}
		for c := 0; c < gn; c++ {
			col := cols[c*count : (c+1)*count]
			bitseq.SortBitonic(tmp, col, asc)
			copy(col, tmp)
		}
		for j := 0; j < count; j++ {
			row := keys[j*stride+d0 : j*stride+d0+gn]
			for c := range row {
				row[c] = cols[c*count+j]
			}
		}
	}
}
