// Package localsort provides the fast local computation routines of
// Chapter 4: LSD radix sort (the paper's choice for the first lg n
// stages, §4.4), linear two-way and p-way merges (§4.3's unpack fusion),
// and block/strided bitonic-merge sorting built on bitseq.SortBitonic
// (Theorems 2 and 3). All routines are O(n) or O(n · passes) and avoid
// comparisons beyond what the input format requires, which is exactly
// why the paper replaces the compare-exchange simulation with them.
package localsort

import (
	"parbitonic/internal/bitseq"
)

const (
	radixBits = 11
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

// RadixPasses is the number of counting passes RadixSort performs on
// 32-bit keys; exported so cost models can charge it faithfully.
const RadixPasses = 3

// RadixSort sorts keys in place, ascending, using least-significant-
// digit radix sort with 11-bit digits (3 passes over 32-bit keys).
func RadixSort(keys []uint32) {
	n := len(keys)
	if n < 2 {
		return
	}
	scratch := make([]uint32, n)
	src, dst := keys, scratch
	for pass := 0; pass < RadixPasses; pass++ {
		shift := uint(pass * radixBits)
		var count [radixSize]int
		for _, k := range src {
			count[(k>>shift)&radixMask]++
		}
		sum := 0
		for d := 0; d < radixSize; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, k := range src {
			d := (k >> shift) & radixMask
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	if RadixPasses%2 == 1 {
		copy(keys, src)
	}
}

// Sort sorts keys in place in the direction given by asc, using radix
// sort (a descending sort is an ascending sort followed by a linear
// reversal).
func Sort(keys []uint32, asc bool) {
	RadixSort(keys)
	if !asc {
		Reverse(keys)
	}
}

// Reverse reverses keys in place.
func Reverse(keys []uint32) {
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
}

// MergeTwo merges the ascending-sorted slices a and b into dst (whose
// length must be len(a)+len(b)) in the direction given by asc.
func MergeTwo(dst, a, b []uint32, asc bool) {
	if len(dst) != len(a)+len(b) {
		panic("localsort: MergeTwo length mismatch")
	}
	i, j := 0, 0
	put := func(pos int, v uint32) {
		if asc {
			dst[pos] = v
		} else {
			dst[len(dst)-1-pos] = v
		}
	}
	for k := 0; k < len(dst); k++ {
		switch {
		case i == len(a):
			put(k, b[j])
			j++
		case j == len(b):
			put(k, a[i])
			i++
		case a[i] <= b[j]:
			put(k, a[i])
			i++
		default:
			put(k, b[j])
			j++
		}
	}
}

// Run is one sorted input run for MergeRuns. Desc marks runs stored in
// descending order (they are consumed from the tail), which is how the
// long messages from the second half of a communication group arrive in
// §4.3's unpack-fused merge.
type Run struct {
	Keys []uint32
	Desc bool
}

func (r Run) len() int { return len(r.Keys) }

func (r Run) at(i int) uint32 {
	if r.Desc {
		return r.Keys[len(r.Keys)-1-i]
	}
	return r.Keys[i]
}

// MergeRuns merges the sorted runs into dst ascending using a
// tournament (loser) tree: O(total · log p) comparisons for p runs.
// This is the p-way merge the paper fuses with unpacking so the
// separate unpack pass disappears (§4.3).
func MergeRuns(dst []uint32, runs []Run) {
	total := 0
	for _, r := range runs {
		total += r.len()
	}
	if len(dst) != total {
		panic("localsort: MergeRuns length mismatch")
	}
	MergeRunsEmit(runs, total, func(rank int, v uint32) { dst[rank] = v })
}

// MergeRunsEmit is MergeRuns with a caller-supplied sink: emit is
// called once per element in ascending order with its rank. This lets
// the packing for the next remap be the merge's own emission pass —
// the thesis's "single local computation step" future work (Ch. 7).
// total must equal the summed run lengths.
func MergeRunsEmit(runs []Run, total int, emit func(rank int, v uint32)) {
	check := 0
	for _, r := range runs {
		check += r.len()
	}
	if check != total {
		panic("localsort: MergeRunsEmit length mismatch")
	}
	switch len(runs) {
	case 0:
		return
	case 1:
		for i := 0; i < runs[0].len(); i++ {
			emit(i, runs[0].at(i))
		}
		return
	}

	// Tournament tree over run heads. size = next power of two >= p.
	p := len(runs)
	size := 1
	for size < p {
		size *= 2
	}
	const exhausted = ^uint32(0)
	pos := make([]int, p) // cursor into each run
	head := func(r int) (uint32, bool) {
		if r >= p || pos[r] >= runs[r].len() {
			return exhausted, false
		}
		return runs[r].at(pos[r]), true
	}
	// tree[i] holds the run index winning subtree i; leaves are
	// tree[size-1+j] for run j.
	tree := make([]int, 2*size-1)
	var build func(node int) int
	build = func(node int) int {
		if node >= size-1 {
			r := node - (size - 1)
			tree[node] = r
			return r
		}
		l := build(2*node + 1)
		r := build(2*node + 2)
		lv, lok := head(l)
		rv, rok := head(r)
		win := l
		if !lok || (rok && rv < lv) {
			win = r
		}
		tree[node] = win
		return win
	}
	build(0)

	for k := 0; k < total; k++ {
		r := tree[0]
		v, ok := head(r)
		if !ok {
			panic("localsort: MergeRuns internal error (empty winner)")
		}
		emit(k, v)
		pos[r]++
		// Replay the path from r's leaf to the root.
		node := size - 1 + r
		for node > 0 {
			parent := (node - 1) / 2
			l, rr := tree[2*parent+1], tree[2*parent+2]
			lv, lok := head(l)
			rv, rok := head(rr)
			win := l
			if !lok || (rok && rv < lv) {
				win = rr
			}
			tree[parent] = win
			node = parent
		}
	}
}

// SortBitonicBlocks sorts each contiguous block of blockLen keys, every
// block being a bitonic sequence, in the direction dir(block) returns.
// scratch must be at least blockLen long (it is allocated when nil).
// This is the Theorem 2/3 phase-one primitive.
func SortBitonicBlocks(keys []uint32, blockLen int, dir func(block int) bool, scratch []uint32) {
	if blockLen <= 0 || len(keys)%blockLen != 0 {
		panic("localsort: SortBitonicBlocks bad block length")
	}
	if len(scratch) < blockLen {
		scratch = make([]uint32, blockLen)
	}
	for b := 0; b*blockLen < len(keys); b++ {
		blk := keys[b*blockLen : (b+1)*blockLen]
		bitseq.SortBitonic(scratch[:blockLen], blk, dir(b))
		copy(blk, scratch[:blockLen])
	}
}

// SortBitonicStrided sorts the strided subsequence
// keys[start], keys[start+stride], ... (count elements), which must be
// bitonic, in the direction given by asc. Used for the second phase of
// a crossing remap (Theorem 3), where the blocks to sort are
// interleaved in local memory. scratch needs 2*count capacity.
func SortBitonicStrided(keys []uint32, start, stride, count int, asc bool, scratch []uint32) {
	if len(scratch) < 2*count {
		scratch = make([]uint32, 2*count)
	}
	in, out := scratch[:count], scratch[count:2*count]
	for i := 0; i < count; i++ {
		in[i] = keys[start+i*stride]
	}
	bitseq.SortBitonic(out, in, asc)
	for i := 0; i < count; i++ {
		keys[start+i*stride] = out[i]
	}
}
