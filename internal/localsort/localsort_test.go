package localsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"parbitonic/internal/bitseq"
)

func randomKeys(rng *rand.Rand, n int) []uint32 {
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	return keys
}

func sortedCopy(keys []uint32) []uint32 {
	out := append([]uint32(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRadixSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 17, 256, 1000, 1 << 14} {
		keys := randomKeys(rng, n)
		want := sortedCopy(keys)
		RadixSort(keys)
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestRadixSortExtremeValues(t *testing.T) {
	keys := []uint32{^uint32(0), 0, 1, ^uint32(0) - 1, 0, 1 << 31, (1 << 31) - 1}
	want := sortedCopy(keys)
	RadixSort(keys)
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("mismatch at %d: %v", i, keys)
		}
	}
}

func TestSortDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := randomKeys(rng, 999)
	want := sortedCopy(keys)
	Sort(keys, false)
	for i := range want {
		if keys[len(keys)-1-i] != want[i] {
			t.Fatalf("descending sort wrong at %d", i)
		}
	}
}

func TestQuickRadixSortIsSortingNetworkEquivalent(t *testing.T) {
	f := func(keys []uint32) bool {
		mine := append([]uint32(nil), keys...)
		RadixSort(mine)
		want := sortedCopy(keys)
		for i := range want {
			if mine[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		a := sortedCopy(randomKeys(rng, rng.Intn(50)))
		b := sortedCopy(randomKeys(rng, rng.Intn(50)))
		dst := make([]uint32, len(a)+len(b))
		MergeTwo(dst, a, b, true)
		want := sortedCopy(append(append([]uint32{}, a...), b...))
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("asc merge wrong at %d", i)
			}
		}
		MergeTwo(dst, a, b, false)
		for i := range want {
			if dst[len(dst)-1-i] != want[i] {
				t.Fatalf("desc merge wrong at %d", i)
			}
		}
	}
}

func TestMergeTwoPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MergeTwo(make([]uint32, 3), make([]uint32, 1), make([]uint32, 1), true)
}

func TestMergeRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(9)
		var runs []Run
		var all []uint32
		for i := 0; i < p; i++ {
			keys := sortedCopy(randomKeys(rng, rng.Intn(40)))
			all = append(all, keys...)
			if rng.Intn(2) == 0 {
				Reverse(keys)
				runs = append(runs, Run{Keys: keys, Desc: true})
			} else {
				runs = append(runs, Run{Keys: keys})
			}
		}
		dst := make([]uint32, len(all))
		MergeRuns(dst, runs)
		want := sortedCopy(all)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d (p=%d): wrong at %d", trial, p, i)
			}
		}
	}
}

func TestMergeRunsEdgeCases(t *testing.T) {
	MergeRuns[uint32](nil, nil) // empty: no panic
	dst := make([]uint32, 3)
	MergeRuns(dst, []Run{{Keys: []uint32{3, 2, 1}, Desc: true}})
	if dst[0] != 1 || dst[2] != 3 {
		t.Errorf("single descending run: %v", dst)
	}
	// Runs with empty slices mixed in.
	dst = make([]uint32, 2)
	MergeRuns(dst, []Run{{}, {Keys: []uint32{5, 9}}, {}})
	if dst[0] != 5 || dst[1] != 9 {
		t.Errorf("empty-run merge: %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MergeRuns(make([]uint32, 1), []Run{{Keys: []uint32{1, 2}}})
}

func makeBitonicBlock(rng *rand.Rand, n int) []uint32 {
	keys := sortedCopy(randomKeys(rng, n))
	up := 1 + rng.Intn(n)
	blk := make([]uint32, 0, n)
	blk = append(blk, keys[n-up:]...)
	for i := n - up - 1; i >= 0; i-- {
		blk = append(blk, keys[i])
	}
	return bitseq.Rotate(blk, rng.Intn(n))
}

func TestSortBitonicBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		blockLen := 1 << (1 + rng.Intn(6))
		blocks := 1 + rng.Intn(8)
		keys := make([]uint32, 0, blockLen*blocks)
		for b := 0; b < blocks; b++ {
			keys = append(keys, makeBitonicBlock(rng, blockLen)...)
		}
		dirs := make([]bool, blocks)
		for b := range dirs {
			dirs[b] = rng.Intn(2) == 0
		}
		want := make([][]uint32, blocks)
		for b := 0; b < blocks; b++ {
			want[b] = sortedCopy(keys[b*blockLen : (b+1)*blockLen])
		}
		SortBitonicBlocks(keys, blockLen, func(b int) bool { return dirs[b] }, nil)
		for b := 0; b < blocks; b++ {
			for i := 0; i < blockLen; i++ {
				got := keys[b*blockLen+i]
				exp := want[b][i]
				if !dirs[b] {
					exp = want[b][blockLen-1-i]
				}
				if got != exp {
					t.Fatalf("block %d dir %v wrong at %d", b, dirs[b], i)
				}
			}
		}
	}
}

func TestSortBitonicBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on indivisible block length")
		}
	}()
	SortBitonicBlocks(make([]uint32, 10), 3, func(int) bool { return true }, nil)
}

func TestSortBitonicStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		stride := 1 << (1 + rng.Intn(4))
		count := 1 << (1 + rng.Intn(5))
		keys := make([]uint32, stride*count)
		for i := range keys {
			keys[i] = rng.Uint32()
		}
		// Plant a bitonic sequence along each stride lane; sort lane 0
		// ascending and verify only lane values moved.
		for lane := 0; lane < stride; lane++ {
			blk := makeBitonicBlock(rng, count)
			for i := 0; i < count; i++ {
				keys[lane+i*stride] = blk[i]
			}
		}
		before := append([]uint32(nil), keys...)
		lane := rng.Intn(stride)
		SortBitonicStrided(keys, lane, stride, count, true, nil)
		var got, all []uint32
		for i := 0; i < count; i++ {
			got = append(got, keys[lane+i*stride])
			all = append(all, before[lane+i*stride])
		}
		want := sortedCopy(all)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lane not sorted at %d", i)
			}
		}
		for i := range keys {
			if (i-lane)%stride != 0 && keys[i] != before[i] {
				t.Fatalf("non-lane element %d was modified", i)
			}
		}
	}
}

func BenchmarkRadixSort(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := randomKeys(rng, 1<<16)
	work := make([]uint32, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		RadixSort(work)
	}
}

func BenchmarkSortBitonicVsRadix(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	blk := makeBitonicBlock(rng, 1<<16)
	b.Run("bitonic-merge-sort", func(b *testing.B) {
		dst := make([]uint32, len(blk))
		for i := 0; i < b.N; i++ {
			bitseq.SortBitonic(dst, blk, true)
		}
	})
	b.Run("radix-sort", func(b *testing.B) {
		work := make([]uint32, len(blk))
		for i := 0; i < b.N; i++ {
			copy(work, blk)
			RadixSort(work)
		}
	})
}
