// The race runtime instruments with allocations of its own, so the
// allocator-accounting assertions only mean something unraced.
//go:build !race

package localsort_test

import (
	"testing"

	"parbitonic/element"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/localsort"
	"parbitonic/internal/workload"
	"parbitonic/internal/workpool"
)

// The kernels promise zero steady-state allocations when the caller
// supplies scratch: count tables are pooled or stack-resident, runs
// tables live on the stack, and the ping-pong layouts end in place.
// These tests pin that promise with the allocator's own accounting.
// The sequential paths are what they cover — a size-1 pool is forced
// so the tests mean the same thing on any host; the parallel tile
// paths draw per-tile scratch by design and are exercised for
// correctness in TestKernelsParallelPoolMatchSequential.

const allocN = 1 << 16 // past radixLargeMin, so the hybrid path runs

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm the buffer pools before measuring
	if avg := testing.AllocsPerRun(10, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op in steady state, want 0", name, avg)
	}
}

func runKernelAllocs[E element.Elem](t *testing.T) {
	keys := workload.Elems[E](workload.FullRange, allocN, 42)
	scratch := make([]E, allocN)

	assertZeroAllocs(t, "RadixSortScratch", func() {
		localsort.RadixSortScratch(keys, scratch)
	})
	assertZeroAllocs(t, "SortScratch", func() {
		localsort.SortScratch(keys, false, scratch)
	})

	a := workload.Elems[E](workload.Sorted, allocN/2, 1)
	b := workload.Elems[E](workload.Sorted, allocN/2, 2)
	dst := make([]E, allocN)
	assertZeroAllocs(t, "MergeTwo", func() {
		localsort.MergeTwo(dst, a, b, true)
	})

	// Hoisted: a func literal inside a measured closure of a generic
	// function allocates its dictionary capture per run.
	dir := func(b int) bool { return b%2 == 0 }
	assertZeroAllocs(t, "SortBitonicBlocks", func() {
		localsort.SortBitonicBlocks(keys, 1024, dir, scratch)
	})
	assertZeroAllocs(t, "SortBitonicStridedBatch", func() {
		localsort.SortBitonicStridedBatch(keys, 256, allocN/256, true, scratch)
	})

	localsort.Sort(keys, true) // bitonic input for the bitseq kernels
	localsort.Reverse(keys[allocN/2:])
	assertZeroAllocs(t, "bitseq.Split", func() {
		bitseq.Split(keys)
	})
	assertZeroAllocs(t, "bitseq.Merge", func() {
		bitseq.Merge(keys, true)
	})
	tmp := make([]E, allocN)
	assertZeroAllocs(t, "bitseq.SortBitonic", func() {
		bitseq.SortBitonic(tmp, keys, true)
	})
}

// TestKernelAllocs asserts every localsort kernel runs allocation-free
// in steady state for all five element types.
func TestKernelAllocs(t *testing.T) {
	seq := workpool.New(1)
	defer seq.Close()
	localsort.SetPool(seq)
	defer localsort.SetPool(nil)

	t.Run("u32", runKernelAllocs[uint32])
	t.Run("u64", runKernelAllocs[uint64])
	t.Run("f32", runKernelAllocs[float32])
	t.Run("f64", runKernelAllocs[float64])
	t.Run("kv64", runKernelAllocs[element.KV64])
}

// TestKernelsParallelPoolMatchSequential runs the tiled kernel paths
// under a multi-lane pool — regardless of host core count — and checks
// they produce exactly what the sequential paths produce. Run with
// -race, this also exercises the tile hand-off.
func TestKernelsParallelPoolMatchSequential(t *testing.T) {
	par := workpool.New(4)
	defer par.Close()

	check := func(name string, got, want []uint32) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: diverges from sequential at %d: got %d, want %d", name, i, got[i], want[i])
			}
		}
	}

	one := workpool.New(1)
	defer one.Close()
	defer localsort.SetPool(nil)

	n := 1 << 17
	in := workload.Elems[uint32](workload.FullRange, n, 7)
	scratch := make([]uint32, n)

	seq := append([]uint32(nil), in...)
	localsort.SetPool(one)
	localsort.RadixSortScratch(seq, scratch)
	got := append([]uint32(nil), in...)
	localsort.SetPool(par)
	localsort.RadixSortScratch(got, scratch)
	check("RadixSortScratch", got, seq)

	dir := func(b int) bool { return b%3 != 0 }
	seq = append([]uint32(nil), in...)
	localsort.SetPool(one)
	localsort.SortBitonicBlocks(seq, 2048, dir, scratch)
	got = append([]uint32(nil), in...)
	localsort.SetPool(par)
	localsort.SortBitonicBlocks(got, 2048, dir, scratch)
	check("SortBitonicBlocks", got, seq)

	seq = append([]uint32(nil), in...)
	localsort.SetPool(one)
	localsort.SortBitonicStridedBatch(seq, 512, n/512, false, scratch)
	got = append([]uint32(nil), in...)
	localsort.SetPool(par)
	localsort.SortBitonicStridedBatch(got, 512, n/512, false, scratch)
	check("SortBitonicStridedBatch", got, seq)
}
