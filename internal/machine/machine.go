// Package machine is the LogP/LogGP *simulator* backend of the SPMD
// runtime (internal/spmd): P virtual processors execute as goroutines
// with private memories and communicate through collective exchanges,
// while a per-processor virtual clock is charged using the formulas of
// §3.4 for communication and a per-element cost model for local
// computation — the distributed-memory machine the paper ran on (a
// Meiko CS-2 programmed in Split-C).
//
// The simulator therefore serves two purposes at once: the algorithms
// really execute (so correctness is exercised end to end, with true
// concurrency across the goroutines), and every run yields the model
// times, volumes, message counts and phase breakdowns that the paper's
// tables and figures report. For running the same algorithms at real
// hardware speed instead, see internal/native, the wall-clock backend
// of the same runtime.
package machine

import (
	"parbitonic/element"
	"parbitonic/internal/logp"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/trace"
)

// The runtime types algorithms and callers program against live in
// internal/spmd; the historical names are preserved here because this
// package is where simulator users import them from.

// Proc is one virtual processor, owned by exactly one goroutine during
// Run.
type Proc = spmd.Proc

// CostModel gives the virtual cost, in model microseconds per element,
// of each local-computation routine.
type CostModel = spmd.CostModel

// Stats accumulates per-processor counters and virtual time by phase.
type Stats = spmd.Stats

// Result is what a completed SPMD run reports.
type Result = spmd.Result

// DefaultCosts returns the shipped fallback cost model for the
// simulated CS-2 (see spmd.DefaultCosts; host calibration is
// internal/tune's job).
func DefaultCosts() CostModel { return spmd.DefaultCosts() }

// Config configures a simulated machine.
type Config struct {
	P     int         // number of processors (power of two)
	Model logp.Params // LogGP communication parameters
	Costs CostModel   // per-key local computation costs (see DefaultCosts)
	Long  bool        // use long messages (LogGP) rather than per-key short messages (LogP)

	// Trace, when non-nil, records every virtual-time span (including
	// barrier waits) for timeline rendering. Adds some overhead.
	Trace *trace.Recorder

	// Sink, when non-nil, receives the observability stream (spans,
	// run lifecycle, abort events) and enables pprof goroutine labels;
	// see spmd.EngineConfig.Sink.
	Sink obs.Sink

	// Labels are static telemetry labels ("alg", "backend", ...) for
	// run metadata and pprof labels.
	Labels map[string]string

	// WrapCharger, when non-nil, wraps the virtual-time charger before
	// the engine is built. This is the seam fault injection
	// (internal/fault) hooks into: the wrapper observes every phase
	// boundary of every processor.
	WrapCharger func(spmd.Charger) spmd.Charger
}

// DefaultConfig returns a Meiko-like machine with P processors and long
// messages enabled.
func DefaultConfig(p int) Config {
	return Config{P: p, Model: logp.MeikoCS2(p), Costs: DefaultCosts(), Long: true}
}

// MachineOf is a simulated P-processor distributed-memory machine over
// element type E: the shared SPMD engine driven by the virtual-time
// charger. It implements spmd.BackendOf[E]. The charger's per-key
// LogGP accounting is parameterized by the element width (see
// simCharger), so a uint32 machine charges exactly the paper's model.
type MachineOf[E element.Elem] struct {
	*spmd.EngineOf[E]
	cfg Config
}

// Machine is the uint32 machine, the element type of the paper's
// experiments.
type Machine = MachineOf[uint32]

// NewOf creates a machine over element type E. P must be a power of
// two and at least 1; invalid configurations are reported as errors.
func NewOf[E element.Elem](cfg Config) (*MachineOf[E], error) {
	if cfg.Costs.RadixPasses <= 0 {
		cfg.Costs = DefaultCosts()
	}
	var charge spmd.Charger = &simCharger{
		model: cfg.Model,
		costs: cfg.Costs,
		long:  cfg.Long,
	}
	if cfg.WrapCharger != nil {
		charge = cfg.WrapCharger(charge)
	}
	eng, err := spmd.NewEngineOf[E](spmd.EngineConfig{
		P:      cfg.P,
		Costs:  cfg.Costs,
		Long:   cfg.Long,
		Charge: charge,
		Trace:  cfg.Trace,
		Sink:   cfg.Sink,
		Labels: cfg.Labels,
	})
	if err != nil {
		return nil, err
	}
	return &MachineOf[E]{EngineOf: eng, cfg: cfg}, nil
}

// New creates a uint32 machine; see NewOf.
func New(cfg Config) (*Machine, error) { return NewOf[uint32](cfg) }

// Config returns the machine configuration.
func (m *MachineOf[E]) Config() Config { return m.cfg }

// simCharger advances the virtual clocks: every phase costs what the
// LogGP formulas (communication) and the calibrated per-element cost
// model (computation) say it would on the modelled machine. Spans go
// through PC.Span, which feeds both the trace recorder and the
// observability sink.
//
// Element width enters through p.Words(): pack/unpack and wire volume
// are memory-bound, so their per-element costs scale with the
// element's size in the 4-byte keys the model was calibrated for.
// Words() is 1 for uint32, making those runs bit-identical to the
// pre-generic charger.
type simCharger struct {
	model logp.Params
	costs CostModel
	long  bool
}

// span records a phase of duration t starting at the processor's
// current virtual clock.
func (c *simCharger) span(p *spmd.PC, ph trace.Phase, t float64) {
	p.Span(ph, p.Clock, p.Clock+t)
}

func (c *simCharger) Start(*spmd.PC) {}

func (c *simCharger) Synced(*spmd.PC) {}

func (c *simCharger) Compute(p *spmd.PC, t float64) {
	c.span(p, trace.Compute, t)
	p.Clock += t
	p.Stats.ComputeTime += t
}

func (c *simCharger) Pack(p *spmd.PC, n int) {
	w := n * p.Words()
	t := c.costs.Pack * float64(w) * c.costs.CacheFactor(w)
	c.span(p, trace.Pack, t)
	p.Clock += t
	p.Stats.PackTime += t
}

func (c *simCharger) Unpack(p *spmd.PC, n int) {
	w := n * p.Words()
	t := c.costs.Unpack * float64(w) * c.costs.CacheFactor(w)
	c.span(p, trace.Unpack, t)
	p.Clock += t
	p.Stats.UnpackTime += t
}

func (c *simCharger) Transfer(p *spmd.PC, volume, msgs int) {
	var t float64
	if c.long {
		t = c.model.LongRemapTime(volume*p.Words(), msgs)
	} else {
		t = c.model.ShortRemapTime(volume * p.Words())
	}
	c.span(p, trace.Transfer, t)
	p.Clock += t
	p.Stats.TransferTime += t
}
