// Package machine simulates the distributed-memory SPMD machine the
// paper ran on (a Meiko CS-2 programmed in Split-C). P virtual
// processors execute as goroutines with private memories and
// communicate through collective exchanges; a per-processor virtual
// clock is charged using the LogP/LogGP formulas of §3.4 for
// communication and a per-element cost model for local computation.
//
// The simulator therefore serves two purposes at once: the algorithms
// really execute (so correctness is exercised end to end, with true
// concurrency across the goroutines), and every run yields the model
// times, volumes, message counts and phase breakdowns that the paper's
// tables and figures report.
package machine

import (
	"fmt"
	"sync"

	"parbitonic/internal/addr"
	"parbitonic/internal/logp"
	"parbitonic/internal/trace"
)

// CostModel gives the virtual cost, in model microseconds per element,
// of each local-computation routine. The defaults are calibrated so the
// simulated per-key times land in the same regime as the paper's Meiko
// CS-2 measurements (see DESIGN.md §2); only relative magnitudes carry
// meaning.
type CostModel struct {
	RadixPass       float64 // one counting pass of LSD radix sort, per key
	RadixPasses     int     // passes needed for 32-bit keys
	Merge           float64 // linear merge / bitonic-merge-sort work, per key
	CompareExchange float64 // one simulated network step, per key
	Pack            float64 // packing into long messages, per key
	Unpack          float64 // unpacking from long messages, per key

	// CacheAlpha adds a relative penalty per doubling of the local data
	// size beyond 2^LgCacheKeys keys, modelling the cache misses the
	// paper observes ("when we increase the number of elements, a higher
	// percentage of the total execution time is spent during the local
	// computation phases... due to cache misses", §5.3). Every
	// computation charge is multiplied by
	// 1 + CacheAlpha * max(0, lg n - LgCacheKeys).
	CacheAlpha  float64
	LgCacheKeys int
}

// DefaultCosts returns the calibrated cost model. The per-key values
// are model microseconds per local element, back-solved from the
// paper's per-key tables: pack/unpack reproduce Table 5.4's 0.35/0.13
// µs per key at P=16 over 5 remaps; radix/merge/compare-exchange place
// the three algorithms of Table 5.1 in the measured ratios; the cache
// term reproduces the per-key growth with n. LgCacheKeys = 18 is the
// CS-2 node's 1 MB external cache in 4-byte keys.
func DefaultCosts() CostModel {
	return CostModel{
		RadixPass:       0.50,
		RadixPasses:     3,
		Merge:           0.90,
		CompareExchange: 0.55,
		Pack:            0.55,
		Unpack:          0.25,
		CacheAlpha:      0.045,
		LgCacheKeys:     18,
	}
}

// Config configures a simulated machine.
type Config struct {
	P     int         // number of processors (power of two)
	Model logp.Params // LogGP communication parameters
	Costs CostModel
	Long  bool // use long messages (LogGP) rather than per-key short messages (LogP)

	// Trace, when non-nil, records every virtual-time span (including
	// barrier waits) for timeline rendering. Adds some overhead.
	Trace *trace.Recorder
}

// DefaultConfig returns a Meiko-like machine with P processors and long
// messages enabled.
func DefaultConfig(p int) Config {
	return Config{P: p, Model: logp.MeikoCS2(p), Costs: DefaultCosts(), Long: true}
}

// Stats accumulates per-processor counters and virtual time by phase.
type Stats struct {
	Remaps       int // collective remap operations participated in
	MessagesSent int // messages to *other* processors
	VolumeSent   int // keys sent to other processors

	ComputeTime  float64 // local sorts, merges, compare-exchange steps
	PackTime     float64
	TransferTime float64
	UnpackTime   float64
}

// CommTime returns the communication portion of the time: packing,
// transfer and unpacking.
func (s Stats) CommTime() float64 { return s.PackTime + s.TransferTime + s.UnpackTime }

// Total returns all charged time.
func (s Stats) Total() float64 { return s.ComputeTime + s.CommTime() }

func (s *Stats) add(o Stats) {
	s.Remaps += o.Remaps
	s.MessagesSent += o.MessagesSent
	s.VolumeSent += o.VolumeSent
	s.ComputeTime += o.ComputeTime
	s.PackTime += o.PackTime
	s.TransferTime += o.TransferTime
	s.UnpackTime += o.UnpackTime
}

// Result is what a completed SPMD run reports.
type Result struct {
	Time    float64 // makespan: the maximum final virtual clock, model µs
	PerProc []Stats
	Sum     Stats // per-processor stats summed over all processors
	Mean    Stats // per-processor averages (the machine is symmetric)
}

// TimePerKey returns Time divided by the total key count, the paper's
// "execution time per key" metric.
func (r Result) TimePerKey(totalKeys int) float64 { return r.Time / float64(totalKeys) }

// Machine is a simulated P-processor distributed-memory machine.
type Machine struct {
	cfg   Config
	board [][]delivery // board[src][dst], rewritten every exchange round
	bar   *barrier
	procs []*Proc
}

type delivery struct {
	data []uint32
}

// Proc is one virtual processor, owned by exactly one goroutine during
// Run.
type Proc struct {
	ID   int
	m    *Machine
	Data []uint32 // local keys; algorithms read and replace freely

	Clock float64
	Stats Stats
}

// New creates a machine. P must be a power of two and at least 1.
func New(cfg Config) *Machine {
	if cfg.P < 1 || cfg.P&(cfg.P-1) != 0 {
		panic(fmt.Sprintf("machine: P=%d must be a positive power of two", cfg.P))
	}
	if cfg.Costs.RadixPasses <= 0 {
		cfg.Costs = DefaultCosts()
	}
	m := &Machine{cfg: cfg, bar: newBarrier(cfg.P)}
	m.board = make([][]delivery, cfg.P)
	for i := range m.board {
		m.board[i] = make([]delivery, cfg.P)
	}
	m.procs = make([]*Proc, cfg.P)
	for i := range m.procs {
		m.procs[i] = &Proc{ID: i, m: m}
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Run executes body once per processor, concurrently, SPMD style, and
// aggregates the results. data[i] becomes processor i's initial local
// memory (may be nil). If any processor panics, Run re-panics with its
// message after unblocking the others.
func (m *Machine) Run(data [][]uint32, body func(p *Proc)) Result {
	if data != nil && len(data) != m.cfg.P {
		panic(fmt.Sprintf("machine: Run got %d data slices for %d processors", len(data), m.cfg.P))
	}
	var wg sync.WaitGroup
	panics := make(chan interface{}, m.cfg.P)
	for i := range m.procs {
		p := m.procs[i]
		p.Clock = 0
		p.Stats = Stats{}
		if data != nil {
			p.Data = data[i]
		} else {
			p.Data = nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
					m.bar.poison()
				}
			}()
			body(p)
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		m.bar.reset()
		panic(fmt.Sprintf("machine: processor panicked: %v", r))
	default:
	}

	var res Result
	res.PerProc = make([]Stats, m.cfg.P)
	for i, p := range m.procs {
		res.PerProc[i] = p.Stats
		res.Sum.add(p.Stats)
		if p.Clock > res.Time {
			res.Time = p.Clock
		}
	}
	res.Mean = res.Sum
	f := float64(m.cfg.P)
	res.Mean.Remaps /= m.cfg.P
	res.Mean.MessagesSent /= m.cfg.P
	res.Mean.VolumeSent /= m.cfg.P
	res.Mean.ComputeTime /= f
	res.Mean.PackTime /= f
	res.Mean.TransferTime /= f
	res.Mean.UnpackTime /= f
	return res
}

// Data returns the final local data of every processor after a Run.
func (m *Machine) Data() [][]uint32 {
	out := make([][]uint32, m.cfg.P)
	for i, p := range m.procs {
		out[i] = p.Data
	}
	return out
}

// ---- virtual time charging ----

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.cfg.P }

// Costs exposes the machine's computation cost model.
func (p *Proc) Costs() CostModel { return p.m.cfg.Costs }

// Long reports whether the machine uses long messages.
func (p *Proc) Long() bool { return p.m.cfg.Long }

// ChargeCompute advances the clock by t model µs of local computation.
func (p *Proc) ChargeCompute(t float64) {
	p.span(trace.Compute, t)
	p.Clock += t
	p.Stats.ComputeTime += t
}

// span records a phase of duration t starting at the current clock.
func (p *Proc) span(ph trace.Phase, t float64) {
	if rec := p.m.cfg.Trace; rec != nil {
		rec.Add(trace.Event{Proc: p.ID, Phase: ph, Start: p.Clock, End: p.Clock + t})
	}
}

// cacheFactor is the cache-miss multiplier for memory-bound work over n
// local keys.
func (c CostModel) cacheFactor(n int) float64 {
	if c.CacheAlpha == 0 {
		return 1
	}
	lg := 0
	for 1<<uint(lg) < n {
		lg++
	}
	if lg <= c.LgCacheKeys {
		return 1
	}
	return 1 + c.CacheAlpha*float64(lg-c.LgCacheKeys)
}

// ChargeRadixSort charges a full local radix sort of n keys.
func (p *Proc) ChargeRadixSort(n int) {
	c := p.m.cfg.Costs
	p.ChargeCompute(c.RadixPass * float64(c.RadixPasses) * float64(n) * c.cacheFactor(n))
}

// ChargeMerge charges linear merge work over n keys (bitonic merge
// sort, two-way or p-way merging — all O(n) routines of Chapter 4).
func (p *Proc) ChargeMerge(n int) {
	c := p.m.cfg.Costs
	p.ChargeCompute(c.Merge * float64(n) * c.cacheFactor(n))
}

// ChargeCompareExchange charges one simulated network step over n keys.
func (p *Proc) ChargeCompareExchange(n int) {
	c := p.m.cfg.Costs
	p.ChargeCompute(c.CompareExchange * float64(n) * c.cacheFactor(n))
}

func (p *Proc) chargePack(n int) {
	c := p.m.cfg.Costs
	t := c.Pack * float64(n) * c.cacheFactor(n)
	p.span(trace.Pack, t)
	p.Clock += t
	p.Stats.PackTime += t
}

func (p *Proc) chargeUnpack(n int) {
	c := p.m.cfg.Costs
	t := c.Unpack * float64(n) * c.cacheFactor(n)
	p.span(trace.Unpack, t)
	p.Clock += t
	p.Stats.UnpackTime += t
}

func (p *Proc) chargeTransfer(volume, msgs int) {
	var t float64
	if p.m.cfg.Long {
		t = p.m.cfg.Model.LongRemapTime(volume, msgs)
	} else {
		t = p.m.cfg.Model.ShortRemapTime(volume)
	}
	p.span(trace.Transfer, t)
	p.Clock += t
	p.Stats.TransferTime += t
}

// ---- collectives ----

// Barrier synchronizes all processors and advances every clock to the
// maximum (the machine is bulk-synchronous between phases, like the
// barrier-separated phases of the Split-C implementation).
func (p *Proc) Barrier() {
	p.m.bar.maxClock(p)
}

// Exchange performs an all-to-all: out[q] is sent to processor q
// (out[p.ID] is kept locally, nil entries send nothing) and the result
// holds one slice per source processor (the local slice comes back in
// position p.ID). Transfer time is charged per the machine's message
// mode and all clocks synchronize afterwards.
func (p *Proc) Exchange(out [][]uint32) [][]uint32 {
	m := p.m
	if len(out) != m.cfg.P {
		panic(fmt.Sprintf("machine: Exchange wants %d destination slices, got %d", m.cfg.P, len(out)))
	}
	vol, msgs := 0, 0
	for q, msg := range out {
		m.board[p.ID][q] = delivery{data: msg}
		if q != p.ID && len(msg) > 0 {
			vol += len(msg)
			msgs++
		}
	}
	p.Stats.VolumeSent += vol
	p.Stats.MessagesSent += msgs
	m.bar.maxClock(p) // publish sends
	in := make([][]uint32, m.cfg.P)
	for src := 0; src < m.cfg.P; src++ {
		in[src] = m.board[src][p.ID].data
	}
	p.chargeTransfer(vol, msgs)
	m.bar.maxClock(p) // everyone has read; board reusable, clocks synced
	return in
}

// PairExchange swaps data with one partner processor: both send their
// slice and receive the other's. Every processor must participate in
// the round (processors pair up mutually). Used by the Blocked-Merge
// baseline, whose remote steps exchange full halves between pairs.
func (p *Proc) PairExchange(partner int, out []uint32) []uint32 {
	m := p.m
	if partner < 0 || partner >= m.cfg.P || partner == p.ID {
		panic(fmt.Sprintf("machine: bad partner %d for processor %d", partner, p.ID))
	}
	m.board[p.ID][partner] = delivery{data: out}
	p.Stats.VolumeSent += len(out)
	p.Stats.MessagesSent++
	m.bar.maxClock(p)
	in := m.board[partner][p.ID].data
	p.chargeTransfer(len(out), 1)
	m.bar.maxClock(p)
	return in
}

// RemapExchange routes p.Data from plan.Old to plan.New: it packs the
// local keys into per-destination long messages using the plan's pack
// mask, exchanges them, and unpacks into the new local order
// (Figure 3.17's three phases). Pack and unpack costs are charged
// unless fused is true, modelling §4.3's fusion of packing/unpacking
// with the local sorts (the data movement still happens; only the extra
// passes disappear).
//
// In short-message mode each key is its own message and no pack/unpack
// cost arises (there is nothing to pack), exactly as in §3.3.
func (p *Proc) RemapExchange(plan *addr.RemapPlan, fused bool) {
	m := p.m
	n := plan.Old.LocalN()
	if len(p.Data) != n {
		panic(fmt.Sprintf("machine: processor %d holds %d keys, plan wants %d", p.ID, len(p.Data), n))
	}
	// Pack: one message buffer per destination in the group, routed by
	// the plan's (precompiled) pack masks.
	out := make([][]uint32, m.cfg.P)
	for _, q := range plan.Dests(p.ID) {
		out[q] = make([]uint32, plan.MsgLen)
	}
	dest := make([]int32, n)
	off := make([]int32, n)
	plan.Route(p.ID, dest, off)
	for l := 0; l < n; l++ {
		out[dest[l]][off[l]] = p.Data[l]
	}
	if m.cfg.Long && !fused {
		p.chargePack(n)
	}
	in := p.Exchange(out)
	// Unpack into the new local order.
	next := make([]uint32, n)
	nl := make([]int32, plan.MsgLen)
	for src, msg := range in {
		if len(msg) == 0 {
			continue
		}
		plan.UnpackTable(src, nl)
		for i, v := range msg {
			next[nl[i]] = v
		}
	}
	p.Data = next
	if m.cfg.Long && !fused {
		p.chargeUnpack(n)
	}
	p.Stats.Remaps++
}

// RemapExchangeRuns is RemapExchange without the unpack phase: it
// packs p.Data per the plan, exchanges, and returns the received long
// messages indexed by source processor so the caller can fuse the
// unpacking into its local computation (§4.3's p-way merge). p.Data is
// set to nil; the caller must install the merged result. No unpack
// time is charged, and pack time only when fusedPack is false.
func (p *Proc) RemapExchangeRuns(plan *addr.RemapPlan, fusedPack bool) [][]uint32 {
	m := p.m
	n := plan.Old.LocalN()
	if len(p.Data) != n {
		panic(fmt.Sprintf("machine: processor %d holds %d keys, plan wants %d", p.ID, len(p.Data), n))
	}
	out := make([][]uint32, m.cfg.P)
	for _, q := range plan.Dests(p.ID) {
		out[q] = make([]uint32, plan.MsgLen)
	}
	dest := make([]int32, n)
	off := make([]int32, n)
	plan.Route(p.ID, dest, off)
	for l := 0; l < n; l++ {
		out[dest[l]][off[l]] = p.Data[l]
	}
	if m.cfg.Long && !fusedPack {
		p.chargePack(n)
	}
	in := p.Exchange(out)
	p.Data = nil
	p.Stats.Remaps++
	return in
}

// RemapExchangePrepacked performs a remap whose messages the caller has
// already packed (out[q] must be a plan.MsgLen slice for every group
// destination, nil elsewhere). Used when the local computation emits
// directly into the message buffers — the thesis's "single local
// computation step" future work — so neither pack nor unpack time is
// charged. Returns the received messages by source; p.Data is set nil.
func (p *Proc) RemapExchangePrepacked(plan *addr.RemapPlan, out [][]uint32) [][]uint32 {
	m := p.m
	if len(out) != m.cfg.P {
		panic(fmt.Sprintf("machine: prepacked exchange wants %d slices, got %d", m.cfg.P, len(out)))
	}
	for _, q := range plan.Dests(p.ID) {
		if len(out[q]) != plan.MsgLen {
			panic(fmt.Sprintf("machine: prepacked message to %d has %d keys, plan wants %d", q, len(out[q]), plan.MsgLen))
		}
	}
	in := p.Exchange(out)
	p.Data = nil
	p.Stats.Remaps++
	return in
}
