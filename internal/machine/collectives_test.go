package machine

import (
	"errors"
	"testing"

	"parbitonic/internal/spmd"
)

func TestAllGather(t *testing.T) {
	const P = 8
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		in := p.AllGather([]uint32{uint32(p.ID), uint32(p.ID * 2)})
		for src := 0; src < P; src++ {
			if len(in[src]) != 2 || in[src][0] != uint32(src) || in[src][1] != uint32(src*2) {
				t.Errorf("proc %d: from %d got %v", p.ID, src, in[src])
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	const P = 8
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		var payload []uint32
		if p.ID == 3 {
			payload = []uint32{7, 8, 9}
		}
		got := p.Broadcast(3, payload)
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Errorf("proc %d: broadcast got %v", p.ID, got)
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	const P = 4
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		got := p.AllReduceSum([]uint32{uint32(p.ID), 1})
		if got[0] != 0+1+2+3 || got[1] != P {
			t.Errorf("proc %d: sum %v", p.ID, got)
		}
	})
}

func TestExclusiveScanSum(t *testing.T) {
	const P = 4
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		got := p.ExclusiveScanSum([]uint32{1, uint32(p.ID)})
		wantA := uint32(p.ID) // p ones below me
		var wantB uint32
		for q := 0; q < p.ID; q++ {
			wantB += uint32(q)
		}
		if got[0] != wantA || got[1] != wantB {
			t.Errorf("proc %d: scan %v, want [%d %d]", p.ID, got, wantA, wantB)
		}
	})
}

func TestCollectiveLengthMismatch(t *testing.T) {
	m := mustNew(t, testConfig(2, true))
	_, err := m.Run(nil, func(p *Proc) {
		p.AllReduceSum(make([]uint32, 1+p.ID))
	})
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("mismatched AllReduceSum returned %v, want *spmd.PanicError", err)
	}
}
