package machine

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"parbitonic/internal/addr"
	"parbitonic/internal/logp"
	"parbitonic/internal/spmd"
)

func testConfig(p int, long bool) Config {
	cfg := DefaultConfig(p)
	cfg.Long = long
	return cfg
}

func mustNew(t testing.TB, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func mustRun(t testing.TB, m *Machine, data [][]uint32, body func(*Proc)) Result {
	t.Helper()
	res, err := m.Run(data, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunClockIsMakespan(t *testing.T) {
	m := mustNew(t, testConfig(4, true))
	res := mustRun(t, m, nil, func(p *Proc) {
		p.ChargeCompute(float64(p.ID) * 10) // proc 3 is slowest
	})
	if res.Time != 30 {
		t.Errorf("makespan %v, want 30", res.Time)
	}
	if res.Sum.ComputeTime != 60 {
		t.Errorf("summed compute %v, want 60", res.Sum.ComputeTime)
	}
	if res.Mean.ComputeTime != 15 {
		t.Errorf("mean compute %v, want 15", res.Mean.ComputeTime)
	}
}

func TestBarrierSyncsClocks(t *testing.T) {
	m := mustNew(t, testConfig(8, true))
	mustRun(t, m, nil, func(p *Proc) {
		p.ChargeCompute(float64(p.ID))
		p.Barrier()
		if p.Clock != 7 {
			t.Errorf("proc %d clock %v after barrier, want 7", p.ID, p.Clock)
		}
	})
}

func TestExchangeDelivers(t *testing.T) {
	const P = 8
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		out := make([][]uint32, P)
		for q := 0; q < P; q++ {
			out[q] = []uint32{uint32(p.ID*100 + q)}
		}
		in := p.Exchange(out)
		for src := 0; src < P; src++ {
			if len(in[src]) != 1 || in[src][0] != uint32(src*100+p.ID) {
				t.Errorf("proc %d: from %d got %v", p.ID, src, in[src])
			}
		}
	})
}

func TestExchangeAccounting(t *testing.T) {
	const P = 4
	for _, long := range []bool{true, false} {
		m := mustNew(t, testConfig(P, long))
		res := mustRun(t, m, nil, func(p *Proc) {
			out := make([][]uint32, P)
			for q := 0; q < P; q++ {
				out[q] = make([]uint32, 10)
			}
			out[(p.ID+1)%P] = nil // skip one destination
			p.Exchange(out)
		})
		// Each proc sends to P-2 others (skipping itself and one nil).
		wantVol, wantMsgs := 10*(P-2), P-2
		for i, s := range res.PerProc {
			if s.VolumeSent != wantVol || s.MessagesSent != wantMsgs {
				t.Errorf("long=%v proc %d: vol=%d msgs=%d, want %d/%d", long, i, s.VolumeSent, s.MessagesSent, wantVol, wantMsgs)
			}
			var want float64
			model := m.Config().Model
			if long {
				want = model.LongRemapTime(wantVol, wantMsgs)
			} else {
				want = model.ShortRemapTime(wantVol)
			}
			if math.Abs(s.TransferTime-want) > 1e-9 {
				t.Errorf("long=%v proc %d: transfer %v, want %v", long, i, s.TransferTime, want)
			}
		}
	}
}

func TestPairExchange(t *testing.T) {
	const P = 8
	m := mustNew(t, testConfig(P, true))
	mustRun(t, m, nil, func(p *Proc) {
		partner := p.ID ^ 1
		got := p.PairExchange(partner, []uint32{uint32(p.ID)})
		if len(got) != 1 || got[0] != uint32(partner) {
			t.Errorf("proc %d: got %v from partner %d", p.ID, got, partner)
		}
	})
}

// RemapExchange must move the data exactly as the sequential reference
// addr.Apply does, for both message modes and both fusion settings.
func TestRemapExchangeMatchesApply(t *testing.T) {
	lgN, lgP := 10, 3
	P := 1 << uint(lgP)
	rng := rand.New(rand.NewSource(7))
	layouts := []*addr.Layout{
		addr.Blocked(lgN, lgP),
		addr.Smart(lgN, lgP, 1, lgN-lgP+1),
		addr.Smart(lgN, lgP, 2, 3),
		addr.Cyclic(lgN, lgP),
		addr.Blocked(lgN, lgP),
	}
	for _, long := range []bool{true, false} {
		for _, fused := range []bool{false, true} {
			data := make([][]uint32, P)
			for p := range data {
				data[p] = make([]uint32, 1<<uint(lgN-lgP))
				for i := range data[p] {
					data[p][i] = rng.Uint32()
				}
			}
			want := data
			m := mustNew(t, testConfig(P, long))
			mustRun(t, m, data, func(p *Proc) {
				p.Data = append([]uint32(nil), p.Data...)
				for i := 1; i < len(layouts); i++ {
					plan := addr.NewRemapPlan(layouts[i-1], layouts[i])
					p.RemapExchange(plan, fused)
				}
			})
			for i := 1; i < len(layouts); i++ {
				want = addr.Apply(layouts[i-1], layouts[i], want)
			}
			got := m.Data()
			for p := 0; p < P; p++ {
				for l := range got[p] {
					if got[p][l] != want[p][l] {
						t.Fatalf("long=%v fused=%v: mismatch at proc %d local %d", long, fused, p, l)
					}
				}
			}
		}
	}
}

func TestRemapExchangePhaseCharges(t *testing.T) {
	lgN, lgP := 8, 2
	P := 1 << uint(lgP)
	n := 1 << uint(lgN-lgP)
	plan := addr.NewRemapPlan(addr.Blocked(lgN, lgP), addr.Cyclic(lgN, lgP))
	run := func(long, fused bool) Result {
		data := make([][]uint32, P)
		for p := range data {
			data[p] = make([]uint32, n)
		}
		m := mustNew(t, testConfig(P, long))
		return mustRun(t, m, data, func(p *Proc) { p.RemapExchange(plan, fused) })
	}

	longSep := run(true, false)
	costs := DefaultCosts()
	for i, s := range longSep.PerProc {
		if math.Abs(s.PackTime-costs.Pack*float64(n)) > 1e-9 {
			t.Errorf("proc %d pack time %v", i, s.PackTime)
		}
		if math.Abs(s.UnpackTime-costs.Unpack*float64(n)) > 1e-9 {
			t.Errorf("proc %d unpack time %v", i, s.UnpackTime)
		}
		if s.Remaps != 1 {
			t.Errorf("proc %d remaps %d", i, s.Remaps)
		}
	}

	longFused := run(true, true)
	if longFused.Sum.PackTime != 0 || longFused.Sum.UnpackTime != 0 {
		t.Error("fused remap should charge no pack/unpack time")
	}
	if longFused.Time >= longSep.Time {
		t.Error("fused remap should be faster than separate phases")
	}

	short := run(false, false)
	if short.Sum.PackTime != 0 || short.Sum.UnpackTime != 0 {
		t.Error("short messages have no pack/unpack phases")
	}
	if short.Time <= longSep.Time {
		t.Error("short messages should be slower than long messages at this size")
	}
}

// Lemma 4 made operational: during a smart remap the per-processor
// volume must be n - n/2^changed.
func TestRemapVolumeMatchesLemma4(t *testing.T) {
	lgN, lgP := 10, 3
	P := 1 << uint(lgP)
	n := 1 << uint(lgN-lgP)
	old := addr.Blocked(lgN, lgP)
	new := addr.Smart(lgN, lgP, 1, lgN-lgP+1)
	plan := addr.NewRemapPlan(old, new)
	data := make([][]uint32, P)
	for p := range data {
		data[p] = make([]uint32, n)
	}
	m := mustNew(t, testConfig(P, true))
	res := mustRun(t, m, data, func(p *Proc) { p.RemapExchange(plan, false) })
	want := n - n>>uint(plan.Changed)
	for i, s := range res.PerProc {
		if s.VolumeSent != want {
			t.Errorf("proc %d sent %d keys, Lemma 4 wants %d", i, s.VolumeSent, want)
		}
		if s.MessagesSent != plan.GroupSize()-1 {
			t.Errorf("proc %d sent %d messages, want %d", i, s.MessagesSent, plan.GroupSize()-1)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	const P = 8
	body := func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.ChargeCompute(float64((p.ID*7+round)%5) + 1)
			out := make([][]uint32, P)
			for q := range out {
				out[q] = make([]uint32, (p.ID+q+round)%4)
			}
			p.Exchange(out)
		}
	}
	m1 := mustNew(t, testConfig(P, true))
	r1 := mustRun(t, m1, nil, body)
	m2 := mustNew(t, testConfig(P, true))
	r2 := mustRun(t, m2, nil, body)
	if r1.Time != r2.Time {
		t.Errorf("nondeterministic makespan: %v vs %v", r1.Time, r2.Time)
	}
	for i := range r1.PerProc {
		if r1.PerProc[i] != r2.PerProc[i] {
			t.Errorf("nondeterministic stats on proc %d", i)
		}
	}
}

func TestPanicSurfacesAsErrorWithoutDeadlock(t *testing.T) {
	m := mustNew(t, testConfig(4, true))
	_, err := m.Run(nil, func(p *Proc) {
		if p.ID == 2 {
			panic("boom")
		}
		p.Barrier() // would deadlock without poisoning
	})
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *spmd.PanicError", err)
	}
	if pe.Proc != 2 || pe.Value != "boom" || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("PanicError{Proc: %d, Value: %v, stack %d bytes}", pe.Proc, pe.Value, len(pe.Stack))
	}
	// The machine must be reusable after a failure.
	res := mustRun(t, m, nil, func(p *Proc) { p.Barrier() })
	if res.Time != 0 {
		t.Errorf("post-failure run time %v", res.Time)
	}
}

func TestNewRejectsBadP(t *testing.T) {
	for _, p := range []int{0, 3, -4, 6} {
		if _, err := New(testConfig(p, true)); err == nil {
			t.Errorf("P=%d should be rejected", p)
		}
	}
}

func TestTimePerKey(t *testing.T) {
	r := Result{Time: 1000}
	if got := r.TimePerKey(500); got != 2 {
		t.Errorf("TimePerKey = %v", got)
	}
}

func TestChargeHelpers(t *testing.T) {
	m := mustNew(t, Config{P: 1, Model: logp.MeikoCS2(1), Costs: CostModel{
		RadixPass: 2, RadixPasses: 3, Merge: 5, CompareExchange: 7, Pack: 1, Unpack: 1,
	}, Long: true})
	res := mustRun(t, m, nil, func(p *Proc) {
		p.ChargeRadixSort(10)       // 2*3*10 = 60
		p.ChargeMerge(10)           // 50
		p.ChargeCompareExchange(10) // 70
	})
	if res.Time != 180 {
		t.Errorf("charged %v, want 180", res.Time)
	}
}

func TestCacheFactor(t *testing.T) {
	c := DefaultCosts()
	if f := c.CacheFactor(1 << c.LgCacheKeys); f != 1 {
		t.Errorf("at-cache factor %v, want 1", f)
	}
	small := c.CacheFactor(1 << 10)
	big := c.CacheFactor(1 << (c.LgCacheKeys + 3))
	if small != 1 {
		t.Errorf("in-cache factor %v, want 1", small)
	}
	want := 1 + 3*c.CacheAlpha
	if math.Abs(big-want) > 1e-12 {
		t.Errorf("3-doublings factor %v, want %v", big, want)
	}
	zero := CostModel{RadixPasses: 1}
	if zero.CacheFactor(1<<30) != 1 {
		t.Error("zero alpha must be free")
	}
}

func TestRemapExchangeRunsAndPrepacked(t *testing.T) {
	lgN, lgP := 8, 2
	P := 1 << uint(lgP)
	n := 1 << uint(lgN-lgP)
	planA := addr.NewRemapPlan(addr.Blocked(lgN, lgP), addr.Cyclic(lgN, lgP))
	planB := addr.NewRemapPlan(addr.Cyclic(lgN, lgP), addr.Blocked(lgN, lgP))
	rng := rand.New(rand.NewSource(3))
	data := make([][]uint32, P)
	for p := range data {
		data[p] = make([]uint32, n)
		for i := range data[p] {
			data[p][i] = rng.Uint32()
		}
	}
	want := addr.Apply(planA.Old, planA.New, data)
	want = addr.Apply(planB.Old, planB.New, want)

	copied := make([][]uint32, P)
	for p := range data {
		copied[p] = append([]uint32(nil), data[p]...)
	}
	m := mustNew(t, testConfig(P, true))
	res := mustRun(t, m, copied, func(p *Proc) {
		// Remap 1: keep the runs, reassemble manually via unpack table.
		in := p.RemapExchangeRuns(planA, true)
		next := make([]uint32, n)
		nl := make([]int32, planA.MsgLen)
		for src, msg := range in {
			if len(msg) == 0 {
				continue
			}
			planA.UnpackTable(src, nl)
			for i, v := range msg {
				next[nl[i]] = v
			}
		}
		p.Data = next
		// Remap 2: pre-pack by hand, then exchange prepacked.
		out := make([][]uint32, P)
		for _, q := range planB.Dests(p.ID) {
			out[q] = make([]uint32, planB.MsgLen)
		}
		dest := make([]int32, n)
		off := make([]int32, n)
		planB.Route(p.ID, dest, off)
		for l := 0; l < n; l++ {
			out[dest[l]][off[l]] = p.Data[l]
		}
		in2 := p.RemapExchangePrepacked(planB, out)
		final := make([]uint32, n)
		nl2 := make([]int32, planB.MsgLen)
		for src, msg := range in2 {
			if len(msg) == 0 {
				continue
			}
			planB.UnpackTable(src, nl2)
			for i, v := range msg {
				final[nl2[i]] = v
			}
		}
		p.Data = final
	})
	for p := 0; p < P; p++ {
		for l := 0; l < n; l++ {
			if m.Data()[p][l] != want[p][l] {
				t.Fatalf("runs/prepacked pipeline differs at (%d,%d)", p, l)
			}
		}
	}
	if res.Mean.Remaps != 2 {
		t.Errorf("remaps %d, want 2", res.Mean.Remaps)
	}
	if res.Sum.PackTime != 0 || res.Sum.UnpackTime != 0 {
		t.Errorf("fused paths must charge no pack/unpack time: %v/%v", res.Sum.PackTime, res.Sum.UnpackTime)
	}
}

func TestRemapExchangePrepackedValidation(t *testing.T) {
	plan := addr.NewRemapPlan(addr.Blocked(4, 1), addr.Cyclic(4, 1))
	m := mustNew(t, testConfig(2, true))
	_, err := m.Run(nil, func(p *Proc) {
		out := make([][]uint32, 2)
		out[0] = make([]uint32, 1) // wrong length: plan.MsgLen is larger
		out[1] = make([]uint32, 1)
		p.RemapExchangePrepacked(plan, out)
	})
	var pe *spmd.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("short prepacked message returned %v, want *spmd.PanicError", err)
	}
}
