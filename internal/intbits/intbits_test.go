package intbits

import "testing"

func TestLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {7, 3}, {8, 3},
		{9, 4}, {1023, 10}, {1024, 10}, {1025, 11}, {1 << 20, 20}, {1<<20 + 1, 21},
	}
	for _, c := range cases {
		if got := Log2(c.n); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Must agree with the loop implementation it replaced.
	loop := func(n int) int {
		k := 0
		for 1<<uint(k) < n {
			k++
		}
		return k
	}
	for n := 0; n < 1<<12; n++ {
		if Log2(n) != loop(n) {
			t.Fatalf("Log2(%d) = %d, loop says %d", n, Log2(n), loop(n))
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := CeilPow2(c.n); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024, 1 << 30} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -1, -2, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}
