// Package intbits centralizes the small power-of-two bit arithmetic
// the module needs everywhere: ceil-log2, next-power-of-two round-up
// and power-of-two testing, all constant-time via math/bits. Before
// this package existed, four copies of a linear-loop log2 lived in
// parbitonic, core, network and experiments.
package intbits

import "math/bits"

// Log2 returns the smallest k with 1<<k >= n (ceil(lg n)); for a power
// of two this is the exact base-2 logarithm. Log2(n) = 0 for n <= 1.
func Log2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CeilPow2 returns the smallest power of two >= n (1 for n <= 1).
func CeilPow2(n int) int {
	return 1 << uint(Log2(n))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}
