// Package logp implements the LogP and LogGP models of parallel
// computation used by §3.4 of the paper to analyze remap-based bitonic
// sort, together with the paper's closed-form communication metrics
// (number of remaps R, volume per processor V, messages per processor M)
// for the three remapping strategies: Blocked, Cyclic-Blocked, and Smart.
//
// Under LogP (Culler et al.) a machine is characterized by the latency
// L, the per-message send/receive overhead o, the per-message gap g and
// the processor count P. LogGP (Alexandrov et al.) adds G, the gap per
// byte of a long message. Following the paper's formulas we express G in
// time-per-key units (the paper's keys are 4-byte integers).
package logp

import (
	"fmt"
	"math"

	"parbitonic/internal/schedule"
)

// Params holds the LogGP machine parameters, in microseconds (per key
// for GKey and ShortKey).
type Params struct {
	L    float64 // latency of one message
	O    float64 // send/receive overhead ("o" in the model)
	Gap  float64 // gap between successive (long) messages ("g")
	GKey float64 // gap per key within a long message ("G" scaled by key size)
	// ShortKey is the effective end-to-end cost per key of the
	// short-message remap path. The LogP model uses g for this; on the
	// real machine each elementwise Split-C put pays round-trip costs
	// well beyond the raw inter-message gap, so we carry the two values
	// separately and use ShortKey in the short-message formulas.
	ShortKey float64
	P        int // number of processors
}

// MeikoCS2 returns Meiko-CS-2-like parameters. L, o and g follow the
// published LogGP measurements of the machine. GKey = 0.64 µs/key
// reproduces Table 5.4's long-message transfer time of 0.16 µs per key
// exactly (0.64·lgP/P at P=16). ShortKey = 52.8 µs/key is back-solved
// from Table 5.3's measured 13.2 µs/key short-message time (time/N with
// V = lgP·n keys per processor at P=16): the elementwise put path is
// round-trip-limited, far costlier than the raw gap. Absolute times are
// "model microseconds"; shapes are what the reproduction matches
// (DESIGN.md §2).
func MeikoCS2(p int) Params {
	return Params{L: 7.5, O: 1.7, Gap: 13.2, GKey: 0.64, ShortKey: 52.8, P: p}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.L < 0 || p.O < 0 || p.Gap <= 0 || p.GKey <= 0 || p.ShortKey <= 0 || p.P <= 0 {
		return fmt.Errorf("logp: invalid parameters %+v", p)
	}
	if p.GKey > p.Gap {
		return fmt.Errorf("logp: G (%v) should not exceed g (%v)", p.GKey, p.Gap)
	}
	if p.Gap > p.ShortKey {
		return fmt.Errorf("logp: g (%v) should not exceed the short-message per-key cost (%v)", p.Gap, p.ShortKey)
	}
	return nil
}

// ShortRemapTime is the LogP time a processor spends communicating in
// one remap that transfers volume keys as individual short messages
// (§3.4.2): L + 2o + g(V-1). A remap with zero volume costs nothing.
func (p Params) ShortRemapTime(volume int) float64 {
	if volume <= 0 {
		return 0
	}
	return p.L + 2*p.O + p.ShortKey*float64(volume-1)
}

// LongRemapTime is the LogGP time for one remap that transfers volume
// keys grouped into msgs long messages (§3.4.3):
// L + 2o + G(V-M) + g(M-1).
func (p Params) LongRemapTime(volume, msgs int) float64 {
	if volume <= 0 || msgs <= 0 {
		return 0
	}
	return p.L + 2*p.O + p.GKey*float64(volume-msgs) + p.Gap*float64(msgs-1)
}

// TotalShort is the LogP total communication time for R remaps moving V
// keys in total: (L+2o)R + g(V-R) (§3.4.2).
func (p Params) TotalShort(r, v int) float64 {
	if r <= 0 {
		return 0
	}
	return (p.L+2*p.O)*float64(r) + p.ShortKey*float64(v-r)
}

// TotalLong is the LogGP total communication time for R remaps moving V
// keys in M long messages: (L+2o-g)R + GV + (g-G)M (§3.4.3).
func (p Params) TotalLong(r, v, m int) float64 {
	if r <= 0 {
		return 0
	}
	return (p.L+2*p.O-p.Gap)*float64(r) + p.GKey*float64(v) + (p.Gap-p.GKey)*float64(m)
}

// Metrics are the three communication metrics of §3.4 for one strategy,
// all per processor: R remaps (communication steps), V keys transferred,
// M messages sent.
type Metrics struct {
	Name string
	R    int
	V    int
	M    int
}

// ShortTime evaluates the LogP (short message) communication time for
// these metrics; under short messages M == V.
func (m Metrics) ShortTime(p Params) float64 { return p.TotalShort(m.R, m.V) }

// LongTime evaluates the LogGP (long message) communication time.
func (m Metrics) LongTime(p Params) float64 { return p.TotalLong(m.R, m.V, m.M) }

// Blocked returns the §3.4.2/§3.4.3 metrics for the fixed blocked layout
// of [BLM+91]: every one of the lgP(lgP+1)/2 remote steps pairs
// processors which exchange their full n keys in one message.
func Blocked(lgP, n int) Metrics {
	steps := lgP * (lgP + 1) / 2
	return Metrics{Name: "blocked", R: steps, V: n * steps, M: steps}
}

// CyclicBlocked returns the metrics for the cyclic-blocked strategy of
// [CDMS94]: 2 lgP remaps, each an all-to-all in which every processor
// sends n/P keys to each of the other P-1 processors.
func CyclicBlocked(lgP, n int) Metrics {
	p := 1 << uint(lgP)
	return Metrics{
		Name: "cyclic-blocked",
		R:    2 * lgP,
		V:    2 * lgP * (n - n/p),
		M:    2 * lgP * (p - 1),
	}
}

// Smart returns the exact metrics of the paper's smart strategy,
// computed from the actual remap schedule (Head strategy). lgN must
// satisfy lgN > lgP.
func Smart(lgN, lgP int) Metrics {
	n := 1 << uint(lgN-lgP)
	sched := schedule.New(lgN, lgP, schedule.Head)
	return Metrics{
		Name: "smart",
		R:    len(sched),
		V:    schedule.Volume(sched, n),
		M:    schedule.Messages(sched),
	}
}

// SmartUsualCase returns the paper's closed forms for the usual regime
// lgP(lgP+1)/2 <= lg n: R = lgP+1, V = n·lgP, and the message lower
// bound M >= 3(P-1) - lgP (§3.4.3).
func SmartUsualCase(lgN, lgP int) Metrics {
	lgn := lgN - lgP
	if lgP*(lgP+1)/2 > lgn {
		panic("logp: SmartUsualCase outside the usual regime")
	}
	n := 1 << uint(lgn)
	p := 1 << uint(lgP)
	return Metrics{Name: "smart(closed-form)", R: lgP + 1, V: n * lgP, M: 3*(p-1) - lgP}
}

// Best returns the strategy with the smallest communication time under
// the given model and message mode — the §3.4.3 decision procedure
// ("given the model parameters we can decide which algorithm is the
// best communication-wise for a given data size").
func Best(p Params, long bool, candidates []Metrics) (Metrics, float64) {
	bestT := math.Inf(1)
	var best Metrics
	for _, m := range candidates {
		t := m.ShortTime(p)
		if long {
			t = m.LongTime(p)
		}
		if t < bestT {
			bestT = t
			best = m
		}
	}
	return best, bestT
}
