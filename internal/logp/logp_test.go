package logp

import (
	"math"
	"testing"

	"parbitonic/internal/schedule"
)

func TestMeikoParamsValid(t *testing.T) {
	p := MeikoCS2(32)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.P != 32 {
		t.Errorf("P = %d", p.P)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{L: -1, O: 1, Gap: 1, GKey: 0.5, P: 4},
		{L: 1, O: 1, Gap: 0, GKey: 0.5, P: 4},
		{L: 1, O: 1, Gap: 1, GKey: 2, P: 4}, // G > g
		{L: 1, O: 1, Gap: 1, GKey: 0.5, P: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %d should be invalid: %+v", i, p)
		}
	}
}

// The per-remap and total formulas must be consistent: summing
// per-remap times over a schedule with uniform volumes equals the total
// formula.
func TestShortTotalsConsistent(t *testing.T) {
	p := MeikoCS2(16)
	r, perRemap := 6, 100
	sum := 0.0
	for i := 0; i < r; i++ {
		sum += p.ShortRemapTime(perRemap)
	}
	total := p.TotalShort(r, r*perRemap)
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("sum of per-remap times %v != total %v", sum, total)
	}
}

func TestLongTotalsConsistent(t *testing.T) {
	p := MeikoCS2(16)
	r, vol, msgs := 5, 120, 7
	sum := 0.0
	for i := 0; i < r; i++ {
		sum += p.LongRemapTime(vol, msgs)
	}
	total := p.TotalLong(r, r*vol, r*msgs)
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("sum %v != total %v", sum, total)
	}
}

func TestZeroVolumeCostsNothing(t *testing.T) {
	p := MeikoCS2(4)
	if p.ShortRemapTime(0) != 0 || p.LongRemapTime(0, 0) != 0 || p.TotalShort(0, 0) != 0 || p.TotalLong(0, 0, 0) != 0 {
		t.Error("empty communication should be free")
	}
}

// §3.4.2: the three strategies' metric tables. Smart must win all three
// short-message metrics in the usual regime.
func TestSmartOptimalUnderLogP(t *testing.T) {
	for _, d := range [][2]int{{20, 4}, {19, 4}, {24, 5}} {
		lgN, lgP := d[0], d[1]
		n := 1 << uint(lgN-lgP)
		b := Blocked(lgP, n)
		cb := CyclicBlocked(lgP, n)
		sm := Smart(lgN, lgP)
		if !(sm.R < cb.R && sm.R < b.R) {
			t.Errorf("lgN=%d lgP=%d: smart R=%d not minimal (cb=%d, blocked=%d)", lgN, lgP, sm.R, cb.R, b.R)
		}
		if !(sm.V < cb.V && sm.V < b.V) {
			t.Errorf("lgN=%d lgP=%d: smart V=%d not minimal (cb=%d, blocked=%d)", lgN, lgP, sm.V, cb.V, b.V)
		}
		// Under short messages M == V, so smart also minimizes M.
		p := MeikoCS2(1 << uint(lgP))
		if st := sm.ShortTime(p); st >= cb.ShortTime(p) || st >= b.ShortTime(p) {
			t.Errorf("lgN=%d lgP=%d: smart not fastest under LogP", lgN, lgP)
		}
	}
}

// §3.4.3: under LogGP with long messages the blocked strategy sends the
// fewest messages, and for very small P it can win outright.
func TestBlockedFewestMessages(t *testing.T) {
	lgN, lgP := 20, 4
	n := 1 << uint(lgN-lgP)
	b := Blocked(lgP, n)
	cb := CyclicBlocked(lgP, n)
	sm := Smart(lgN, lgP)
	if !(b.M < sm.M && b.M < cb.M) {
		t.Errorf("blocked M=%d should be minimal (smart=%d, cb=%d)", b.M, sm.M, cb.M)
	}
}

func TestSmartUsualCaseClosedForm(t *testing.T) {
	lgN, lgP := 20, 4
	exact := Smart(lgN, lgP)
	cf := SmartUsualCase(lgN, lgP)
	if exact.R != cf.R {
		t.Errorf("R: exact %d, closed form %d", exact.R, cf.R)
	}
	if exact.V != cf.V {
		t.Errorf("V: exact %d, closed form %d", exact.V, cf.V)
	}
	if exact.M < cf.M {
		t.Errorf("M: exact %d below the paper's lower bound %d", exact.M, cf.M)
	}
}

func TestSmartUsualCasePanicsOutsideRegime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic outside the usual regime")
		}
	}()
	SmartUsualCase(10, 6)
}

// The paper: V_CyclicBlocked / V_Smart ~= 2(1 - 1/P) in the usual
// regime.
func TestVolumeRatioApproximation(t *testing.T) {
	for _, d := range [][2]int{{20, 4}, {24, 5}, {22, 3}} {
		lgN, lgP := d[0], d[1]
		P := float64(int(1) << uint(lgP))
		n := 1 << uint(lgN-lgP)
		ratio := float64(CyclicBlocked(lgP, n).V) / float64(Smart(lgN, lgP).V)
		want := 2 * (1 - 1/P)
		if math.Abs(ratio-want) > 1e-9 {
			t.Errorf("lgN=%d lgP=%d: ratio %v, want %v", lgN, lgP, ratio, want)
		}
	}
}

func TestBest(t *testing.T) {
	lgN, lgP := 20, 1 // P = 2: blocked should win with long messages
	n := 1 << uint(lgN-lgP)
	p := MeikoCS2(2)
	cands := []Metrics{Blocked(lgP, n), CyclicBlocked(lgP, n), Smart(lgN, lgP)}
	best, tBest := Best(p, true, cands)
	if best.Name != "blocked" {
		t.Errorf("for P=2 with long messages blocked should win, got %s", best.Name)
	}
	if tBest <= 0 {
		t.Errorf("best time %v", tBest)
	}
	// Under short messages with a larger P, smart must win (it then
	// strictly minimizes both R and V). At P=2 the strategies tie on V
	// and blocked/cyclic-blocked can edge ahead on the fixed costs — the
	// paper makes the same observation for small P in §3.4.3.
	lgP = 4
	n = 1 << uint(lgN-lgP)
	cands = []Metrics{Blocked(lgP, n), CyclicBlocked(lgP, n), Smart(lgN, lgP)}
	bestS, _ := Best(MeikoCS2(16), false, cands)
	if bestS.Name != "smart" {
		t.Errorf("under LogP smart should win, got %s", bestS.Name)
	}
}

// Cross-check Metrics.V for smart against the schedule volume helper.
func TestSmartMetricsMatchSchedule(t *testing.T) {
	for _, d := range [][2]int{{16, 4}, {12, 3}, {18, 5}} {
		lgN, lgP := d[0], d[1]
		n := 1 << uint(lgN-lgP)
		sched := schedule.New(lgN, lgP, schedule.Head)
		m := Smart(lgN, lgP)
		if m.R != len(sched) || m.V != schedule.Volume(sched, n) || m.M != schedule.Messages(sched) {
			t.Errorf("lgN=%d lgP=%d: metrics %+v disagree with schedule", lgN, lgP, m)
		}
	}
}
