package workload

import (
	"testing"
	"testing/quick"
)

func TestKeysDeterministic(t *testing.T) {
	for _, d := range Dists() {
		a := Keys(d, 1000, 7)
		b := Keys(d, 1000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic at %d", d, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Keys(Uniform31, 1000, 1)
	b := Keys(Uniform31, 1000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/1000 identical keys", same)
	}
}

func TestUniform31Range(t *testing.T) {
	for _, k := range Keys(Uniform31, 10000, 3) {
		if k >= 1<<31 {
			t.Fatalf("key %d outside [0, 2^31) — the paper's generator range", k)
		}
	}
}

func TestUniform31LooksUniform(t *testing.T) {
	keys := Keys(Uniform31, 1<<16, 4)
	var buckets [16]int
	for _, k := range keys {
		buckets[k>>27]++
	}
	want := len(keys) / 16
	for i, c := range buckets {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d keys, expected about %d", i, c, want)
		}
	}
}

func TestShapedDistributions(t *testing.T) {
	s := Keys(Sorted, 100, 5)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatal("Sorted is not sorted")
		}
	}
	r := Keys(Reverse, 100, 5)
	for i := 1; i < len(r); i++ {
		if r[i-1] < r[i] {
			t.Fatal("Reverse is not reversed")
		}
	}
	few := map[uint32]bool{}
	for _, k := range Keys(FewDistinct, 10000, 5) {
		few[k] = true
	}
	if len(few) > 8 {
		t.Errorf("FewDistinct produced %d distinct values", len(few))
	}
	eq := Keys(AllEqual, 100, 5)
	for _, k := range eq {
		if k != eq[0] {
			t.Fatal("AllEqual not constant")
		}
	}
}

func TestGaussianConcentrates(t *testing.T) {
	keys := Keys(Gaussian, 1<<14, 6)
	mid := uint32(1 << 30)
	within := 0
	for _, k := range keys {
		if k > mid/2 && k < mid+mid/2 {
			within++
		}
	}
	// Mean of four uniforms: the +/-25% band around the mean covers
	// about +/-1.7 sigma, i.e. ~91% of the mass.
	if within < len(keys)*85/100 {
		t.Errorf("Gaussian: only %d/%d within the central band", within, len(keys))
	}
}

func TestPerProcDealsBlocked(t *testing.T) {
	parts := PerProc(Sorted, 4, 8, 1)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	for p, part := range parts {
		if len(part) != 8 {
			t.Fatalf("part %d has %d keys", p, len(part))
		}
		for i, k := range part {
			if k != uint32(p*8+i) {
				t.Fatalf("blocked deal broken at proc %d index %d", p, i)
			}
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZeroSeedRemapped(t *testing.T) {
	a := NewRNG(0).Next()
	if a == 0 {
		t.Error("zero seed should still produce entropy")
	}
}

func TestQuickRNGNoShortCycles(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		seen := map[uint64]bool{}
		for i := 0; i < 1000; i++ {
			v := r.Next()
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown distribution should panic")
		}
	}()
	Keys(Dist(99), 10, 1)
}

func TestDistStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Dists() {
		name := d.String()
		if name == "" || seen[name] {
			t.Errorf("empty or duplicate name for %d: %q", int(d), name)
		}
		seen[name] = true
	}
	if Dist(99).String() != "dist(99)" {
		t.Errorf("fallback name: %s", Dist(99).String())
	}
}
