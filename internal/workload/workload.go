// Package workload generates the key distributions used by the
// experiments. The paper uses "random, uniformly-distributed 32-bit
// keys" whose generator "produces numbers in the range 0 through
// 2^31 - 1" (§5.3); Uniform31 reproduces that. The other distributions
// exercise the §5.5 discussion: sample sort degrades on low-entropy
// inputs while bitonic sort is oblivious to the distribution.
package workload

import (
	"fmt"

	"parbitonic/element"
)

// Dist selects a key distribution.
type Dist int

const (
	// Uniform31 draws uniform keys in [0, 2^31) — the paper's workload.
	Uniform31 Dist = iota
	// FullRange draws uniform keys over all 32 bits.
	FullRange
	// Sorted produces an already ascending sequence.
	Sorted
	// Reverse produces a descending sequence.
	Reverse
	// FewDistinct draws from only 8 distinct values (low entropy).
	FewDistinct
	// Gaussian approximates a normal distribution by averaging four
	// uniform draws (low variance around 2^30).
	Gaussian
	// AllEqual produces a constant sequence (zero entropy).
	AllEqual
)

func (d Dist) String() string {
	switch d {
	case Uniform31:
		return "uniform31"
	case FullRange:
		return "fullrange"
	case Sorted:
		return "sorted"
	case Reverse:
		return "reverse"
	case FewDistinct:
		return "fewdistinct"
	case Gaussian:
		return "gaussian"
	case AllEqual:
		return "allequal"
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// Dists lists every distribution, for sweep-style tests.
func Dists() []Dist {
	return []Dist{Uniform31, FullRange, Sorted, Reverse, FewDistinct, Gaussian, AllEqual}
}

// RNG is a small deterministic xorshift64* generator, so experiments
// are reproducible without importing math/rand state semantics.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed nonzero value.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Keys generates n keys of the given distribution.
func Keys(d Dist, n int, seed uint64) []uint32 {
	rng := NewRNG(seed)
	out := make([]uint32, n)
	switch d {
	case Uniform31:
		for i := range out {
			out[i] = rng.Uint32() & 0x7fffffff
		}
	case FullRange:
		for i := range out {
			out[i] = rng.Uint32()
		}
	case Sorted:
		for i := range out {
			out[i] = uint32(i)
		}
	case Reverse:
		for i := range out {
			out[i] = uint32(n - i)
		}
	case FewDistinct:
		vals := make([]uint32, 8)
		for i := range vals {
			vals[i] = rng.Uint32() & 0x7fffffff
		}
		for i := range out {
			out[i] = vals[rng.Intn(len(vals))]
		}
	case Gaussian:
		for i := range out {
			s := uint64(0)
			for j := 0; j < 4; j++ {
				s += uint64(rng.Uint32() & 0x7fffffff)
			}
			out[i] = uint32(s / 4)
		}
	case AllEqual:
		v := rng.Uint32() & 0x7fffffff
		for i := range out {
			out[i] = v
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %d", int(d)))
	}
	return out
}

// PerProc generates N = n*P keys and deals them blocked: processor p
// receives keys[p*n : (p+1)*n], the paper's initial blocked layout.
func PerProc(d Dist, p, n int, seed uint64) [][]uint32 {
	all := Keys(d, p*n, seed)
	out := make([][]uint32, p)
	for i := range out {
		out[i] = all[i*n : (i+1)*n : (i+1)*n]
	}
	return out
}

// Elems generates n elements of the given distribution for any element
// type: the 32-bit key stream of Keys is carried into E's key space
// through a monotone order-image conversion, so the distribution's
// *structure* (orderings, duplicates, entropy) carries over to every
// element type and an element workload sorts the same way its uint32
// counterpart does. Float keys are spread across the finite image
// window (the raw 32-bit image of a small key would be a NaN bit
// pattern); for float32 the window is slightly narrower than 32 bits,
// so distinct full-range keys can collide — harmless for sorting
// workloads. Record elements (KV64) receive the element's position as
// payload, making every record distinguishable — which is what
// payload-permutation checks need.
func Elems[E element.Elem](d Dist, n int, seed uint64) []E {
	keys := Keys(d, n, seed)
	out := make([]E, n)
	switch any(*new(E)).(type) {
	case float32:
		// Order images of -Inf and +Inf: the valid float32 window.
		const lo, hi = uint64(0x007FFFFF), uint64(0xFF800000)
		for i, k := range keys {
			out[i] = element.FromBits[E](lo+uint64(k)*(hi-lo)>>32, 0)
		}
	case float64:
		// Order images of -Inf and +Inf for float64; the stride keeps
		// the map injective over 32-bit keys.
		const lo, hi = uint64(0x000FFFFFFFFFFFFF), uint64(0xFFF0000000000000)
		step := (hi - lo) >> 32
		for i, k := range keys {
			out[i] = element.FromBits[E](lo+uint64(k)*step, 0)
		}
	default:
		for i, k := range keys {
			out[i] = element.FromBits[E](uint64(k), uint64(i))
		}
	}
	return out
}

// PerProcOf is PerProc for any element type: N = n*P elements of the
// distribution dealt blocked. Payload words (for record elements) are
// globally unique across the whole input.
func PerProcOf[E element.Elem](d Dist, p, n int, seed uint64) [][]E {
	all := Elems[E](d, p*n, seed)
	out := make([][]E, p)
	for i := range out {
		out[i] = all[i*n : (i+1)*n : (i+1)*n]
	}
	return out
}
