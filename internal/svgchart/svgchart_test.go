package svgchart

import (
	"encoding/xml"
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:   "Figure 5.2 — µs per key",
		YLabel:  "µs/key",
		XLabels: []string{"128K", "256K", "512K", "1024K"},
		Series: []Series{
			{Name: "smart", Y: []float64{0.66, 0.65, 0.64, 0.58}},
			{Name: "cyclic-blocked", Y: []float64{0.90, 0.88, 0.87, 0.87}},
			{Name: "blocked-merge", Y: []float64{1.43, 1.43, 1.43, 1.43}},
		},
	}
}

// Every rendered chart must be well-formed XML.
func TestRenderIsWellFormedXML(t *testing.T) {
	out := demoChart().Render()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, out)
		}
	}
}

func TestRenderContents(t *testing.T) {
	out := demoChart().Render()
	for _, want := range []string{"polyline", "smart", "cyclic-blocked", "blocked-merge", "128K", "1024K", "µs/key", "<svg"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 3 {
		t.Errorf("want 3 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if got := strings.Count(out, "<circle"); got != 12 {
		t.Errorf("want 12 point markers, got %d", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	c := demoChart()
	if c.Render() != c.Render() {
		t.Error("nondeterministic render")
	}
}

func TestRenderDegenerate(t *testing.T) {
	empty := &Chart{Title: "x"}
	if out := empty.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say so: %s", out)
	}
	flat := &Chart{XLabels: []string{"a"}, Series: []Series{{Name: "s", Y: []float64{5}}}}
	out := flat.Render()
	if !strings.Contains(out, "<polyline") {
		t.Errorf("flat chart should still plot: %s", out)
	}
	// Escaping: titles with XML metacharacters must not break the doc.
	evil := &Chart{Title: `a<b & "c"`, XLabels: []string{"x"}, Series: []Series{{Name: "<s>", Y: []float64{1}}}}
	got := evil.Render()
	dec := xml.NewDecoder(strings.NewReader(got))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("escaping broken: %v", err)
		}
	}
}

func TestFmtNum(t *testing.T) {
	cases := map[float64]string{0.5: "0.5", 42: "42", 0: "0", 1234: "1.23e+03", 0.001: "1.0e-03"}
	for in, want := range cases {
		if got := fmtNum(in); got != want {
			t.Errorf("fmtNum(%v) = %q, want %q", in, got, want)
		}
	}
}
