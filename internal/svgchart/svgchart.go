// Package svgchart emits the evaluation figures as standalone SVG
// documents using only the standard library, so the reproduction can
// regenerate graphical versions of Figures 5.1-5.8 alongside the data
// tables. Output is deterministic.
package svgchart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a categorical-x line chart (matching the paper's figures,
// which plot metric-vs-size or metric-vs-P with discrete x values).
type Chart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series

	// Width and Height of the SVG canvas in pixels (defaults 640x400).
	Width, Height int
}

// palette holds distinguishable stroke colours.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
)

// Render returns the chart as a complete SVG document.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	cols := len(c.XLabels)
	if cols == 0 || len(c.Series) == 0 || plotW <= 0 || plotH <= 0 {
		sb.WriteString(`<text x="20" y="60" font-family="sans-serif" font-size="12">(no data)</text>` + "\n</svg>\n")
		return sb.String()
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		sb.WriteString(`<text x="20" y="60" font-family="sans-serif" font-size="12">(no data)</text>` + "\n</svg>\n")
		return sb.String()
	}
	if lo > 0 && lo < hi/3 || lo == hi {
		lo = 0 // anchor at zero unless the values are tightly clustered
	}
	if hi == lo {
		hi = lo + 1
	}

	xAt := func(i int) float64 {
		if cols == 1 {
			return float64(marginLeft) + float64(plotW)/2
		}
		return float64(marginLeft) + float64(i)*float64(plotW)/float64(cols-1)
	}
	yAt := func(v float64) float64 {
		return float64(marginTop) + (hi-v)/(hi-lo)*float64(plotH)
	}

	// Axes and gridlines with 5 y ticks.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	for t := 0; t <= 4; t++ {
		v := lo + (hi-lo)*float64(t)/4
		y := yAt(v)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, fmtNum(v))
	}
	for i, xl := range c.XLabels {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xAt(i), marginTop+plotH+18, escape(xl))
	}
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-family="sans-serif" font-size="11" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series polylines with point markers and a legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Y {
			if i >= cols {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.Y {
			if i >= cols {
				break
			}
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", xAt(i), yAt(v), color)
		}
		ly := marginTop + 8 + si*16
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-130, ly, marginLeft+plotW-110, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginLeft+plotW-104, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func fmtNum(v float64) string {
	switch {
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
