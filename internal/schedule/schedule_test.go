package schedule

import (
	"testing"

	"parbitonic/internal/addr"
)

// The paper's running example (Figures 3.3 and 3.4): N=256 elements on
// P=16 processors gives exactly 7 remaps with changed-bit sequence
// 1, 2, 3, 3, 4, 4, 2.
func TestPaperExampleN256P16(t *testing.T) {
	lgN, lgP := 8, 4
	sched := New(lgN, lgP, Head)
	wantPos := [][2]int{{1, 5}, {1, 1}, {2, 3}, {3, 6}, {3, 2}, {4, 6}, {4, 2}}
	wantBits := []int{1, 2, 3, 3, 4, 4, 2}
	if len(sched) != len(wantPos) {
		t.Fatalf("got %d remaps, want %d", len(sched), len(wantPos))
	}
	if NumRemaps(lgN, lgP) != 7 {
		t.Fatalf("NumRemaps = %d, want 7", NumRemaps(lgN, lgP))
	}
	for i, r := range sched {
		if r.K != wantPos[i][0] || r.S != wantPos[i][1] {
			t.Errorf("remap %d at (k=%d,s=%d), want (%d,%d)", i, r.K, r.S, wantPos[i][0], wantPos[i][1])
		}
		if r.BitsChanged != wantBits[i] {
			t.Errorf("remap %d changed %d bits, want %d (Figure 3.4)", i, r.BitsChanged, wantBits[i])
		}
	}
	if last := sched[len(sched)-1]; last.Kind != Last || last.StepsAfter != 2 {
		t.Errorf("last remap kind=%v steps=%d, want last/2", last.Kind, last.StepsAfter)
	}
	// Paper: 7 remaps here vs 8 for cyclic-blocked (2 lg P).
	if 2*lgP <= len(sched) {
		t.Errorf("smart should beat cyclic-blocked remap count: %d vs %d", len(sched), 2*lgP)
	}
}

func TestStepsSumToTotal(t *testing.T) {
	for _, d := range [][2]int{{8, 4}, {10, 3}, {12, 5}, {20, 5}, {6, 4}, {9, 8}} {
		lgN, lgP := d[0], d[1]
		for _, strat := range []Strategy{Head, Tail, Middle1, Middle2} {
			sched := New(lgN, lgP, strat)
			sum := 0
			for _, r := range sched {
				sum += r.StepsAfter
				if r.StepsAfter <= 0 || r.StepsAfter > lgN-lgP {
					t.Fatalf("%v lgN=%d lgP=%d: remap %d executes %d steps", strat, lgN, lgP, r.Index, r.StepsAfter)
				}
			}
			if sum != TotalSteps(lgN, lgP) {
				t.Errorf("%v lgN=%d lgP=%d: steps sum %d, want %d", strat, lgN, lgP, sum, TotalSteps(lgN, lgP))
			}
		}
	}
}

func TestNumRemapsMatchesScheduleLength(t *testing.T) {
	for lgN := 2; lgN <= 16; lgN++ {
		for lgP := 1; lgP < lgN; lgP++ {
			if got, want := len(New(lgN, lgP, Head)), NumRemaps(lgN, lgP); got != want {
				t.Errorf("lgN=%d lgP=%d: len=%d formula=%d", lgN, lgP, got, want)
			}
		}
	}
}

// Lemma 3: the analytic changed-bit formula must match the layouts.
func TestLemma3MatchesLayouts(t *testing.T) {
	for lgN := 2; lgN <= 14; lgN++ {
		for lgP := 1; lgP < lgN; lgP++ {
			for _, r := range New(lgN, lgP, Head) {
				if want := Lemma3Bits(lgN, lgP, r.K, r.S); r.BitsChanged != want {
					t.Errorf("lgN=%d lgP=%d remap (k=%d,s=%d,%v): layout says %d bits, Lemma 3 says %d",
						lgN, lgP, r.K, r.S, r.Kind, r.BitsChanged, want)
				}
			}
		}
	}
}

// For usual computations (lgP(lgP+1)/2 <= lg n) the paper derives
// R = lgP + 1 and V = n lgP exactly.
func TestUsualCaseClosedForms(t *testing.T) {
	for _, d := range [][2]int{{14, 4}, {20, 5}, {11, 3}} {
		lgN, lgP := d[0], d[1]
		lgn := lgN - lgP
		if lgP*(lgP+1)/2 > lgn {
			t.Fatalf("test config lgN=%d lgP=%d is not in the usual regime", lgN, lgP)
		}
		sched := New(lgN, lgP, Head)
		if len(sched) != lgP+1 {
			t.Errorf("lgN=%d lgP=%d: %d remaps, want lgP+1=%d", lgN, lgP, len(sched), lgP+1)
		}
		n := 1 << uint(lgn)
		if v := Volume(sched, n); v != n*lgP {
			t.Errorf("lgN=%d lgP=%d: volume %d, want n*lgP=%d", lgN, lgP, v, n*lgP)
		}
		if last := sched[len(sched)-1]; last.StepsAfter != lgP*(lgP+1)/2 {
			t.Errorf("last remap executes %d steps, want lgP(lgP+1)/2=%d", last.StepsAfter, lgP*(lgP+1)/2)
		}
	}
}

func TestVolumeFormulaMatchesSchedule(t *testing.T) {
	for lgN := 4; lgN <= 16; lgN++ {
		for lgP := 1; lgP <= lgN/2; lgP++ { // n >= P as the paper assumes
			n := 1 << uint(lgN-lgP)
			sched := New(lgN, lgP, Head)
			got := float64(Volume(sched, n))
			want := VolumeFormula(lgN, lgP, n)
			if got != want {
				t.Errorf("lgN=%d lgP=%d: Volume=%v formula=%v", lgN, lgP, got, want)
			}
		}
	}
}

// §3.2.1: exactly one OutRemap ends within each of the last lgP stages;
// InRemaps appear exactly in the stages flagged by HasTwoRemaps.
func TestRemapTaxonomy(t *testing.T) {
	for _, d := range [][2]int{{8, 4}, {12, 4}, {14, 3}, {16, 4}, {10, 2}} {
		lgN, lgP := d[0], d[1]
		lgn := lgN - lgP
		sched := New(lgN, lgP, Head)
		outPerStage := map[int]int{}
		inPerStage := map[int]int{}
		for i, r := range sched {
			if i == len(sched)-1 {
				continue // LastRemap counted separately
			}
			endStage := r.K
			if r.Kind == Crossing {
				endStage = r.K + 1
			}
			if r.Kind == Crossing || r.S == lgn+r.K {
				outPerStage[endStage]++
			} else {
				inPerStage[endStage]++
			}
		}
		for k := 1; k <= lgP; k++ {
			wantOut := 1
			if k == lgP {
				// The final stage's OutRemap may be the LastRemap itself,
				// which we excluded above.
				last := sched[len(sched)-1]
				if last.K == lgP && (outPerStage[lgP] == 0) {
					wantOut = 0
				}
			}
			if outPerStage[k] != wantOut {
				t.Errorf("lgN=%d lgP=%d: stage lgn+%d has %d OutRemaps, want %d", lgN, lgP, k, outPerStage[k], wantOut)
			}
			wantIn := 0
			if HasTwoRemaps(lgN, lgP, k) && k != lgP {
				wantIn = 1
			}
			if k != lgP && inPerStage[k] != wantIn {
				t.Errorf("lgN=%d lgP=%d: stage lgn+%d has %d InRemaps, HasTwoRemaps=%v", lgN, lgP, k, inPerStage[k], HasTwoRemaps(lgN, lgP, k))
			}
		}
	}
}

// Lemma 5: V_Tail <= V_Head < V_Middle1 (when Middle1 adds a remap) and
// V_Tail <= V_Middle2, for n >= P^2. When lgP(lgP+1)/2 <= lg n,
// V_Head == V_Tail.
func TestLemma5VolumeOrdering(t *testing.T) {
	for _, d := range [][2]int{{12, 4}, {10, 4}, {14, 5}, {16, 4}, {12, 3}, {18, 5}} {
		lgN, lgP := d[0], d[1]
		lgn := lgN - lgP
		if lgn < 2*lgP { // n >= P^2 precondition of Lemma 5
			continue
		}
		n := 1 << uint(lgn)
		vHead := Volume(New(lgN, lgP, Head), n)
		vTail := Volume(New(lgN, lgP, Tail), n)
		vM1 := Volume(New(lgN, lgP, Middle1), n)
		vM2 := Volume(New(lgN, lgP, Middle2), n)
		if vTail > vHead {
			t.Errorf("lgN=%d lgP=%d: V_Tail=%d > V_Head=%d", lgN, lgP, vTail, vHead)
		}
		if RemainingSteps(lgN, lgP) >= 2 && vHead >= vM1 {
			t.Errorf("lgN=%d lgP=%d: V_Head=%d >= V_Middle1=%d", lgN, lgP, vHead, vM1)
		}
		if vTail > vM2 {
			t.Errorf("lgN=%d lgP=%d: V_Tail=%d > V_Middle2=%d", lgN, lgP, vTail, vM2)
		}
		if lgP*(lgP+1)/2 <= lgn && vHead != vTail {
			t.Errorf("lgN=%d lgP=%d: usual case should give V_Head == V_Tail (%d vs %d)", lgN, lgP, vHead, vTail)
		}
	}
}

// Every remap's layout must make the steps it is responsible for local,
// for every strategy (including partial chunks).
func TestScheduleStepsAreLocal(t *testing.T) {
	for _, d := range [][2]int{{8, 4}, {10, 3}, {12, 5}, {6, 4}, {9, 6}} {
		lgN, lgP := d[0], d[1]
		for _, strat := range []Strategy{Head, Tail, Middle1, Middle2} {
			for _, r := range New(lgN, lgP, strat) {
				steps := StepsFrom(lgN, lgP, r.K, r.S, r.StepsAfter)
				for _, st := range steps {
					if !r.Layout.IsLocalBit(st.Bit) {
						t.Fatalf("%v lgN=%d lgP=%d remap (k=%d,s=%d): step bit %d not local under %s",
							strat, lgN, lgP, r.K, r.S, st.Bit, r.Layout)
					}
				}
			}
		}
	}
}

func TestStepsFromOrdering(t *testing.T) {
	// lgN=5, lgP=2, lgn=3. Stage 4 steps 4..1 then stage 5 steps 5..1.
	steps := StepsFrom(5, 2, 1, 4, 9)
	wantBits := []int{3, 2, 1, 0, 4, 3, 2, 1, 0}
	wantStage := []int{4, 4, 4, 4, 5, 5, 5, 5, 5}
	for i := range steps {
		if steps[i].Bit != wantBits[i] || steps[i].Stage != wantStage[i] {
			t.Fatalf("step %d = %+v, want bit %d stage %d", i, steps[i], wantBits[i], wantStage[i])
		}
	}
	// Direction: stage 5 (== lgN) is ascending for every row.
	for abs := 0; abs < 32; abs++ {
		if !(Step{Bit: 0, Stage: 5}).Ascending(abs) {
			t.Fatalf("final stage must be ascending everywhere")
		}
	}
	// Stage 4: rows with bit 4 set are descending.
	if (Step{Bit: 0, Stage: 4}).Ascending(1 << 4) {
		t.Fatal("row 16 should be descending in stage 4")
	}
}

func TestStepsFromPanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepsFrom should panic when running past the final stage")
		}
	}()
	StepsFrom(5, 2, 2, 1, 2)
}

// Groups must be consecutive aligned processor ranges at every remap of
// the real schedule (Lemma 4's stronger claim).
func TestGroupsConsecutive(t *testing.T) {
	for _, d := range [][2]int{{10, 4}, {12, 5}, {8, 3}} {
		lgN, lgP := d[0], d[1]
		for _, r := range New(lgN, lgP, Head) {
			for p := 0; p < 1<<uint(lgP); p++ {
				dests := r.Plan.Dests(p)
				min, max := dests[0], dests[0]
				for _, q := range dests {
					if q < min {
						min = q
					}
					if q > max {
						max = q
					}
				}
				gs := r.Plan.GroupSize()
				if max-min+1 != gs || min != gs*(p/gs) {
					t.Fatalf("lgN=%d lgP=%d remap (k=%d,s=%d): proc %d group %v not consecutive/aligned",
						lgN, lgP, r.K, r.S, p, dests)
				}
			}
		}
	}
}

func TestEmptyAndInvalidSchedules(t *testing.T) {
	if s := New(10, 0, Head); len(s) != 0 {
		t.Errorf("P=1 should yield an empty schedule, got %d remaps", len(s))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lg n = 0 should panic")
		}
	}()
	New(4, 4, Head)
}

func TestFirstChangeStepRecurrence(t *testing.T) {
	// s_k must equal the S position of the first remap ending within
	// stage lgn+k in the Head schedule, whenever that remap exists with
	// a_k > 0; when a_k == 0 an OutRemap starts exactly at the stage
	// boundary (s_k = lgn+k).
	for _, d := range [][2]int{{8, 4}, {12, 4}, {16, 5}} {
		lgN, lgP := d[0], d[1]
		lgn := lgN - lgP
		sched := New(lgN, lgP, Head)
		for k := 1; k <= lgP; k++ {
			sk := FirstChangeStep(lgN, lgP, k)
			if sk < 1 || sk > lgn+k {
				t.Fatalf("s_%d = %d out of range", k, sk)
			}
			// Find the first remap whose covered steps end inside stage
			// lgn+k; its position must be (k, s_k) when it starts inside
			// the stage.
			for _, r := range sched {
				if r.K == k && r.S < lgn+k && r.Kind != Last {
					if r.S != sk && sk != lgn+k {
						t.Errorf("lgN=%d lgP=%d stage %d: first in-stage remap at s=%d, formula s_k=%d",
							lgN, lgP, k, r.S, sk)
					}
					break
				}
			}
		}
	}
}

// Layouts along the schedule are valid and distinct from their
// predecessors (except trivially when a remap is a no-op, which must
// never happen).
func TestScheduleLayoutsValidAndMoving(t *testing.T) {
	for _, d := range [][2]int{{8, 4}, {14, 4}, {9, 5}} {
		lgN, lgP := d[0], d[1]
		prev := addr.Blocked(lgN, lgP)
		for _, r := range New(lgN, lgP, Head) {
			if err := r.Layout.Validate(); err != nil {
				t.Fatal(err)
			}
			if r.BitsChanged == 0 {
				t.Fatalf("lgN=%d lgP=%d remap (k=%d,s=%d) is a no-op", lgN, lgP, r.K, r.S)
			}
			if r.Plan.Old != prev && !r.Plan.Old.Equal(prev) {
				t.Fatalf("plan chain broken at remap %d", r.Index)
			}
			prev = r.Layout
		}
	}
}
