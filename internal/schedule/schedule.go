// Package schedule generates the smart-remap schedule of §3.2 of the
// paper: the sequence of (stage, step) positions at which the parallel
// bitonic sort remaps its data, the Definition 7 parameters (k, s, a, b,
// t) of each remap, the inside/crossing/Out/In/Last taxonomy of §3.2.1,
// the changed-bit counts of Lemma 3, and the remap-shifting strategies
// of Lemma 5 (HeadRemap, TailRemap, MiddleRemap1, MiddleRemap2).
//
// Conventions follow the paper: stages are numbered 1..lgN, stage
// lgn + k (k = 1..lgP) has steps lgn+k .. 1 counted right-to-left, and
// step s compares absolute addresses differing in bit s-1 (0-indexed).
package schedule

import (
	"fmt"

	"parbitonic/internal/addr"
)

// Kind classifies a remap.
type Kind int

const (
	// Inside: the lg n steps following the remap stay within one stage
	// (s >= lg n, Figure 3.5).
	Inside Kind = iota
	// Crossing: the steps span a stage boundary (s < lg n, Figure 3.6).
	Crossing
	// Last: the final remap (k = lgP, s <= lg n); the layout degenerates
	// to blocked and only s more steps remain.
	Last
)

func (k Kind) String() string {
	switch k {
	case Inside:
		return "inside"
	case Crossing:
		return "crossing"
	case Last:
		return "last"
	}
	return "unknown"
}

// Remap describes one smart remap of the schedule.
type Remap struct {
	Index int // 0-based position in the schedule

	// K and S locate the remap: it happens just before executing step S
	// of stage lgn+K (paper notation, S counted from the left).
	K, S int

	// A, B, T are the Definition 7 parameters (in steps/bits).
	A, B, T int

	Kind Kind

	// StepsAfter is how many network steps execute locally after this
	// remap before the next one: lg n everywhere except possibly the
	// first and last remap, depending on the strategy.
	StepsAfter int

	// BitsChanged is N_BitsChanged of Lemma 3 for this remap relative to
	// the previous layout in the schedule (the blocked layout for
	// remap 0).
	BitsChanged int

	// Layout is the smart data layout installed by this remap.
	Layout *addr.Layout

	// Plan routes data from the previous layout to Layout.
	Plan *addr.RemapPlan
}

// Strategy selects how remaps are shifted relative to the step stream
// (Lemma 5).
type Strategy int

const (
	// Head executes lg n steps after every remap except the last
	// (the paper's default, used by Algorithm 1).
	Head Strategy = iota
	// Tail executes the leftover N_RemainingSteps after the FIRST remap
	// and lg n after every other.
	Tail
	// Middle1 splits the leftover between the first and last remap,
	// adding one extra remap.
	Middle1
	// Middle2 shifts remaps left: first remap executes
	// lgn - (lgn+rem)/2 ... concretely the leftover lgn+rem is split
	// between first and last remap without changing the remap count.
	Middle2
)

func (s Strategy) String() string {
	switch s {
	case Head:
		return "head"
	case Tail:
		return "tail"
	case Middle1:
		return "middle1"
	case Middle2:
		return "middle2"
	}
	return "unknown"
}

// TotalSteps returns the number of network steps in the last lg P
// stages: lgP*lgn + lgP(lgP+1)/2.
func TotalSteps(lgN, lgP int) int {
	lgn := lgN - lgP
	return lgP*lgn + lgP*(lgP+1)/2
}

// RemainingSteps returns N_RemainingSteps = (lgP(lgP+1)/2) mod lg n,
// the leftover after the Head strategy's full lg n chunks (Lemma 5).
func RemainingSteps(lgN, lgP int) int {
	lgn := lgN - lgP
	return (lgP * (lgP + 1) / 2) % lgn
}

// NumRemaps returns R_Smart = ceil(lgP + lgP(lgP+1)/(2*lgn)) (§3.2.1),
// the number of remaps of the Head (and Tail) strategies.
func NumRemaps(lgN, lgP int) int {
	lgn := lgN - lgP
	num := lgP*lgn + lgP*(lgP+1)/2 // total steps
	return (num + lgn - 1) / lgn   // ceil(total / lgn)
}

// position is a (k, s) cursor into the step stream of the last lgP
// stages.
type position struct{ k, s int }

// advance moves the cursor forward by j network steps.
func (p position) advance(lgN, lgP, j int) position {
	lgn := lgN - lgP
	for j > 0 {
		if p.s > j {
			p.s -= j
			return p
		}
		j -= p.s
		p.k++
		p.s = lgn + p.k
	}
	return p
}

// chunks returns the per-remap local step counts for a strategy.
// The sum is always TotalSteps.
func chunks(lgN, lgP int, strat Strategy) []int {
	lgn := lgN - lgP
	if lgn <= 0 {
		panic("schedule: need at least 2 keys per processor (lg n >= 1)")
	}
	total := TotalSteps(lgN, lgP)
	rem := total % lgn
	full := total / lgn
	var out []int
	switch strat {
	case Head:
		for i := 0; i < full; i++ {
			out = append(out, lgn)
		}
		if rem > 0 {
			out = append(out, rem)
		}
	case Tail:
		if rem > 0 {
			out = append(out, rem)
		}
		for i := 0; i < full; i++ {
			out = append(out, lgn)
		}
	case Middle1:
		// Split the leftover across both ends, adding one remap. When
		// there is no leftover fall back to Head (the paper defines
		// Middle1 only for rem > 0 split into two positive parts).
		if rem < 2 {
			return chunks(lgN, lgP, Head)
		}
		out = append(out, rem/2)
		for i := 0; i < full; i++ {
			out = append(out, lgn)
		}
		out = append(out, rem-rem/2)
	case Middle2:
		// Shift remaps left: first and last remap share lgn+rem steps,
		// keeping the remap count; requires the tail part to get at
		// least rem steps (Lemma 5's N_StepsTail >= rem). With no
		// leftover the only feasible split is the Head schedule itself.
		if rem == 0 || full < 1 {
			return chunks(lgN, lgP, Head)
		}
		share := lgn + rem
		head := share / 2
		if head == 0 {
			head = 1
		}
		tail := share - head
		if tail < rem {
			tail = rem
			head = share - rem
		}
		out = append(out, head)
		for i := 0; i < full-1; i++ {
			out = append(out, lgn)
		}
		out = append(out, tail)
	default:
		panic(fmt.Sprintf("schedule: unknown strategy %d", strat))
	}
	return out
}

// New generates the smart-remap schedule for sorting 2^lgN keys on
// 2^lgP processors with the given strategy. The returned remaps carry
// the layout of Definition 7 and the routing plan from the previous
// layout (the first remap's plan starts from the blocked layout, which
// is where the algorithm stands after the purely local first lg n
// stages).
//
// lgP == 0 yields an empty schedule (single processor: everything is
// local). lg n must be at least 1.
func New(lgN, lgP int, strat Strategy) []Remap {
	if lgP == 0 {
		return nil
	}
	lgn := lgN - lgP
	if lgn <= 0 {
		panic("schedule: need at least 2 keys per processor (lg n >= 1)")
	}
	sizes := chunks(lgN, lgP, strat)
	prev := addr.Blocked(lgN, lgP)
	pos := position{k: 1, s: lgn + 1}
	out := make([]Remap, 0, len(sizes))
	for i, sz := range sizes {
		r := describe(lgN, lgP, pos.k, pos.s)
		r.Index = i
		r.StepsAfter = sz
		r.BitsChanged = addr.ChangedBits(prev, r.Layout)
		r.Plan = addr.NewRemapPlan(prev, r.Layout)
		out = append(out, r)
		prev = r.Layout
		pos = pos.advance(lgN, lgP, sz)
	}
	if pos.k != lgP+1 {
		panic(fmt.Sprintf("schedule: internal error, cursor ended at stage lgn+%d", pos.k))
	}
	return out
}

// describe builds the Remap metadata (without Index/StepsAfter/
// BitsChanged) for a remap at stage lgn+k, step s.
func describe(lgN, lgP, k, s int) Remap {
	lgn := lgN - lgP
	r := Remap{K: k, S: s, Layout: addr.Smart(lgN, lgP, k, s)}
	switch {
	case k == lgP && s <= lgn:
		r.Kind = Last
		r.A, r.B, r.T = lgn, 0, lgn
	case s >= lgn:
		r.Kind = Inside
		r.A, r.B, r.T = 0, lgn, s-lgn
	default:
		r.Kind = Crossing
		r.A, r.B, r.T = s, lgn-s, s+k+1
	}
	return r
}

// Step identifies one compare-exchange phase of the bitonic sorting
// network: all pairs of absolute addresses differing in bit Bit are
// compared, and the merge direction of row r is ascending iff bit Stage
// of r is 0 (for the final stage Stage == lgN and the direction is
// ascending everywhere, consistent with treating the missing bit as 0).
type Step struct {
	Bit   int // 0-indexed absolute-address bit (paper step number - 1)
	Stage int // paper stage number lgn+k
}

// Ascending reports the merge direction for the row with absolute
// address abs at this step.
func (s Step) Ascending(abs int) bool {
	return abs>>uint(s.Stage)&1 == 0
}

// StepsFrom enumerates count network steps starting at step s of stage
// lgn+k (inclusive), in execution order.
func StepsFrom(lgN, lgP, k, s, count int) []Step {
	lgn := lgN - lgP
	out := make([]Step, 0, count)
	for len(out) < count {
		if k > lgP {
			panic("schedule: StepsFrom ran past the final stage")
		}
		out = append(out, Step{Bit: s - 1, Stage: lgn + k})
		s--
		if s == 0 {
			k++
			s = lgn + k
		}
	}
	return out
}

// Lemma3Bits returns the N_BitsChanged value Lemma 3 predicts for a
// remap at (k, s). It covers the n >= P case, the n < P correction, and
// the last-remap special case.
func Lemma3Bits(lgN, lgP, k, s int) int {
	lgn := lgN - lgP
	if k == lgP && s <= lgn { // last remap
		if s <= lgP {
			return s
		}
		return lgP
	}
	if s < lgn { // crossing
		if k+1 > lgn { // n < P: at most lg n bits can leave the local part
			return lgn
		}
		return k + 1
	}
	// inside
	if k > lgn { // n < P correction
		return lgn
	}
	return k
}

// FirstChangeStep returns s_k of §3.2.1: the step at which the data
// layout changes for the first time within stage lgn+k under the Head
// strategy. a_k = k(k-1)/2 mod lg n.
func FirstChangeStep(lgN, lgP, k int) int {
	lgn := lgN - lgP
	ak := (k * (k - 1) / 2) % lgn
	if ak == 0 {
		return lgn + k
	}
	return k + ak
}

// HasTwoRemaps reports whether stage lgn+k has two remaps ending within
// it under the Head strategy (an InRemap in the paper's taxonomy):
// lgn+k > s_k >= lgn.
func HasTwoRemaps(lgN, lgP, k int) bool {
	lgn := lgN - lgP
	sk := FirstChangeStep(lgN, lgP, k)
	return sk >= lgn && sk < lgn+k
}

// Volume returns the total number of elements each processor transfers
// across the whole schedule: sum over remaps of n(1 - 1/2^BitsChanged)
// (§3.2.1).
func Volume(sched []Remap, n int) int {
	total := 0
	for _, r := range sched {
		total += n - n>>uint(r.BitsChanged)
	}
	return total
}

// VolumeFormula evaluates the paper's closed-form V_Smart =
// n(lgP + 1/P - 1/2^N_Last + sum over InRemap stages of (1 - 1/2^k))
// for the Head strategy with n >= P. The caller should compare against
// Volume(New(lgN, lgP, Head), n).
func VolumeFormula(lgN, lgP int, n int) float64 {
	if lgP == 0 {
		return 0
	}
	lgn := lgN - lgP
	if lgn <= 0 {
		panic("schedule: VolumeFormula needs lg n >= 1")
	}
	P := float64(int(1) << uint(lgP))
	v := float64(lgP) + 1/P
	// N_Last: bits changed at the last remap.
	sched := New(lgN, lgP, Head)
	last := sched[len(sched)-1]
	v -= 1 / float64(int(1)<<uint(last.BitsChanged))
	for k := 1; k <= lgP; k++ {
		if !HasTwoRemaps(lgN, lgP, k) {
			continue
		}
		// When the in-stage remap of the final stage happens exactly at
		// step lg n it *is* the last remap, already accounted by N_Last.
		if k == lgP && FirstChangeStep(lgN, lgP, k) == lgn {
			continue
		}
		v += 1 - 1/float64(int(1)<<uint(k))
	}
	return float64(n) * v
}

// Messages returns a lower bound on the total number of messages each
// processor sends across the schedule: sum of (2^BitsChanged - 1)
// (§3.4.3; each remap talks to the other group members once thanks to
// long messages).
func Messages(sched []Remap) int {
	total := 0
	for _, r := range sched {
		total += 1<<uint(r.BitsChanged) - 1
	}
	return total
}
