// Package experiments regenerates every table and figure of the
// paper's Chapter 5 evaluation (plus the Chapter 3/4 analyses) on the
// simulated machine, printing the measured model values next to the
// paper's Meiko CS-2 measurements so the shapes can be compared
// directly. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/asciichart"
	"parbitonic/internal/intbits"
	"parbitonic/internal/logp"
	"parbitonic/internal/schedule"
	"parbitonic/internal/svgchart"
	"parbitonic/internal/workload"
)

// Config scales the experiments. Scale divides the paper's key counts
// by 2^Scale so the suite can run quickly (Scale 0 reproduces the
// paper's sizes: 128K..1M keys per processor).
type Config struct {
	Seed  uint64
	Scale int
	// Elem selects the element type the element-parameterized
	// experiments measure natively (cmd/experiments -keytype); the
	// zero value is u32, the paper's key type.
	Elem element.Type
}

// DefaultConfig runs at 1/64 of the paper's sizes — every shape
// (orderings, ratios, crossovers) is preserved because the model is
// linear in n beyond the fixed costs.
func DefaultConfig() Config { return Config{Seed: 1996, Scale: 6} }

// Table is a rendered experiment: an ID matching the paper, a title,
// column headers, rows, and notes about how to read the comparison.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// ChartYCols marks the columns to plot against column 0 when the
	// experiment corresponds to a figure; empty means no chart.
	ChartYCols []int
	ChartYLab  string
}

// Chart builds the ASCII rendering of the experiment's figure, or nil
// if the experiment is table-only.
func (t *Table) Chart() *asciichart.Chart {
	if len(t.ChartYCols) == 0 {
		return nil
	}
	c := &asciichart.Chart{Title: t.ID + " — " + t.Title, YLabel: t.ChartYLab}
	for _, row := range t.Rows {
		c.XLabels = append(c.XLabels, row[0])
	}
	for _, col := range t.ChartYCols {
		s := asciichart.Series{Name: t.Columns[col]}
		for _, row := range t.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				return nil
			}
			s.Y = append(s.Y, v)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// SVG builds the SVG rendering of the experiment's figure, or nil for
// table-only experiments.
func (t *Table) SVG() *svgchart.Chart {
	ac := t.Chart()
	if ac == nil {
		return nil
	}
	c := &svgchart.Chart{Title: ac.Title, YLabel: ac.YLabel, XLabels: ac.XLabels}
	for _, s := range ac.Series {
		c.Series = append(c.Series, svgchart.Series{Name: s.Name, Y: s.Y})
	}
	return c
}

// Render writes the table as GitHub-flavoured markdown.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "> %s\n", n)
	}
	fmt.Fprintln(w)
}

// paperSizesK are the paper's keys-per-processor sweep in units of K
// (2^10) keys: 128K, 256K, 512K, 1024K.
var paperSizesK = []int{128, 256, 512, 1024}

func (c Config) keysPerProc(kKeys int) int {
	n := (kKeys << 10) >> uint(c.Scale)
	if n < 64 {
		n = 64
	}
	return n
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func sec(v float64) string { return fmt.Sprintf("%.2f", v/1e6) } // model µs -> s

// run sorts a fresh uniform workload and returns the result.
func (c Config) run(p, n int, cfg parbitonic.Config) parbitonic.Result {
	cfg.Processors = p
	keys := workload.Keys(workload.Uniform31, p*n, c.Seed)
	res, err := parbitonic.Sort(keys, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			panic("experiments: output not sorted")
		}
	}
	return res
}

// paper51/52 hold the Meiko measurements of Tables 5.1 and 5.2
// (µs per key and total seconds on 32 processors).
var paper51 = map[int][3]float64{ // keys/proc(K) -> blocked-merge, cyclic-blocked, smart
	128:  {1.07, 0.68, 0.52},
	256:  {1.19, 0.75, 0.51},
	512:  {1.26, 0.89, 0.53},
	1024: {1.25, 0.86, 0.59},
}

var paper52 = map[int][3]float64{
	128:  {5.52, 2.85, 2.18},
	256:  {10.04, 6.35, 4.26},
	512:  {21.14, 14.96, 8.95},
	1024: {42.03, 28.58, 20.01},
}

// Table51 reproduces Table 5.1 / Figure 5.2: execution time per key for
// the three bitonic implementations on 32 processors.
func Table51(c Config) *Table {
	t := &Table{
		ID:    "Table 5.1 / Figure 5.2",
		Title: "execution time per key (µs), 32 processors",
		Columns: []string{"keys/proc", "blocked-merge (model)", "cyclic-blocked (model)", "smart (model)",
			"blocked-merge (paper)", "cyclic-blocked (paper)", "smart (paper)"},
		ChartYCols: []int{3, 2, 1},
		ChartYLab:  "model µs/key",
		Notes: []string{
			"Shape to match: smart < cyclic-blocked < blocked-merge at every size; smart ~2x faster than blocked-merge.",
			fmt.Sprintf("Model sizes are the paper's divided by 2^%d; per-key times are size-stable apart from the cache term.", c.Scale),
		},
	}
	const p = 32
	for _, k := range paperSizesK {
		n := c.keysPerProc(k)
		bm := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.BlockedMergeBitonic})
		cb := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.CyclicBlockedBitonic})
		sm := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		pp := paper51[k]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f2(bm.TimePerKey()), f2(cb.TimePerKey()), f2(sm.TimePerKey()),
			f2(pp[0]), f2(pp[1]), f2(pp[2]),
		})
	}
	return t
}

// Table52 reproduces Table 5.2 / Figure 5.1: total execution time. At
// Scale > 0 the model seconds are scaled back up by 2^Scale for
// comparability (the model is linear in n at these sizes).
func Table52(c Config) *Table {
	t := &Table{
		ID:    "Table 5.2 / Figure 5.1",
		Title: "total execution time (s), 32 processors",
		Columns: []string{"keys/proc", "blocked-merge (model)", "cyclic-blocked (model)", "smart (model)",
			"blocked-merge (paper)", "cyclic-blocked (paper)", "smart (paper)"},
		Notes: []string{"Model totals are rescaled by 2^Scale to the paper's key counts."},
	}
	const p = 32
	mult := float64(int(1) << uint(c.Scale))
	for _, k := range paperSizesK {
		n := c.keysPerProc(k)
		bm := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.BlockedMergeBitonic})
		cb := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.CyclicBlockedBitonic})
		sm := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		pp := paper52[k]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			sec(bm.Time * mult), sec(cb.Time * mult), sec(sm.Time * mult),
			f2(pp[0]), f2(pp[1]), f2(pp[2]),
		})
	}
	return t
}

// Fig53 reproduces Figure 5.3: total sorting time and speedup for 1M
// keys on 2..32 processors (smart algorithm).
func Fig53(c Config) *Table {
	t := &Table{
		ID:         "Figure 5.3",
		Title:      "sorting 1M keys on 2..32 processors (smart)",
		Columns:    []string{"P", "total time (model s)", "speedup vs P=2", "parallel efficiency"},
		ChartYCols: []int{2},
		ChartYLab:  "speedup vs P=2",
		Notes: []string{
			"Shape to match: monotone speedup with decreasing efficiency as P grows (communication share rises).",
		},
	}
	total := (1 << 20) >> uint(c.Scale)
	var base float64
	for _, p := range []int{2, 4, 8, 16, 32} {
		n := total / p
		res := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		if p == 2 {
			base = res.Time
		}
		speed := base / res.Time
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p), sec(res.Time), f2(speed), f2(speed / float64(p) * 2),
		})
	}
	return t
}

// Fig54 reproduces Figure 5.4: the communication/computation breakdown
// of the smart algorithm on 16 processors across sizes.
func Fig54(c Config) *Table {
	t := &Table{
		ID:         "Figure 5.4",
		Title:      "communication vs computation breakdown (smart, 16 processors)",
		Columns:    []string{"keys/proc", "compute µs/key", "comm µs/key", "compute %"},
		ChartYCols: []int{1, 2},
		ChartYLab:  "model µs/key",
		Notes: []string{
			"Shape to match: computation dominates and its share grows with n (cache effects).",
		},
	}
	const p = 16
	for _, k := range paperSizesK {
		n := c.keysPerProc(k)
		res := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		total := res.ComputeTime + res.CommTime()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f3(res.ComputeTime / float64(p*n)),
			f3(res.CommTime() / float64(p*n)),
			fmt.Sprintf("%.0f%%", res.ComputeTime/total*100),
		})
	}
	return t
}

var paper53 = map[int][2]float64{ // keys/proc(K) -> short, long (µs/key)
	128:  {13.23, 0.98},
	256:  {13.25, 1.09},
	512:  {13.26, 1.12},
	1024: {13.74, 1.21},
}

// Table53 reproduces Table 5.3 / Figure 5.5: communication time per key
// for the short- and long-message versions on 16 processors.
func Table53(c Config) *Table {
	t := &Table{
		ID:    "Table 5.3 / Figure 5.5",
		Title: "communication time per key (µs), 16 processors",
		Columns: []string{"keys/proc", "short (model)", "long (model)", "short/long (model)",
			"short (paper)", "long (paper)", "short/long (paper)"},
		ChartYCols: []int{1, 2},
		ChartYLab:  "comm µs/key",
		Notes: []string{
			"Shape to match: long messages win by an order of magnitude.",
			"The long-message version here keeps pack/unpack separate, as §5.4 specifies.",
		},
	}
	const p = 16
	for _, k := range paperSizesK {
		n := c.keysPerProc(k)
		short := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, ShortMessages: true})
		long := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		sPer := short.CommTime() / float64(p*n)
		lPer := long.CommTime() / float64(p*n)
		pp := paper53[k]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f2(sPer), f2(lPer), f2(sPer / lPer),
			f2(pp[0]), f2(pp[1]), f2(pp[0] / pp[1]),
		})
	}
	return t
}

var paper54 = map[int][3]float64{ // keys/proc(K) -> pack, transfer, unpack
	128:  {0.35, 0.15, 0.15},
	256:  {0.37, 0.15, 0.15},
	512:  {0.38, 0.16, 0.14},
	1024: {0.38, 0.16, 0.13},
}

// Table54 reproduces Table 5.4 / Figure 5.6: the pack/transfer/unpack
// breakdown of the long-message communication phase on 16 processors.
func Table54(c Config) *Table {
	t := &Table{
		ID:    "Table 5.4 / Figure 5.6",
		Title: "long-message communication breakdown, µs per key, 16 processors",
		Columns: []string{"keys/proc", "pack (model)", "transfer (model)", "unpack (model)",
			"pack (paper)", "transfer (paper)", "unpack (paper)"},
		ChartYCols: []int{1, 2, 3},
		ChartYLab:  "µs/key",
		Notes: []string{
			"Shape to match: packing and unpacking dominate the long-message communication time; the wire transfer itself is small.",
		},
	}
	const p = 16
	for _, k := range paperSizesK {
		n := c.keysPerProc(k)
		res := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		pp := paper54[k]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f3(res.PackTime / float64(p*n)), f3(res.TransferTime / float64(p*n)), f3(res.UnpackTime / float64(p*n)),
			f2(pp[0]), f2(pp[1]), f2(pp[2]),
		})
	}
	return t
}

// Fig57 and Fig58 reproduce Figures 5.7/5.8: bitonic vs radix vs sample
// sort per-key times on 16 and 32 processors.
func Fig57(c Config) *Table { return compareSorts(c, 16, "Figure 5.7") }
func Fig58(c Config) *Table { return compareSorts(c, 32, "Figure 5.8") }

func compareSorts(c Config, p int, id string) *Table {
	t := &Table{
		ID:         id,
		Title:      fmt.Sprintf("bitonic vs radix vs sample sort, µs per key, %d processors", p),
		Columns:    []string{"keys/proc", "bitonic (model)", "radix (model)", "sample (model)", "bitonic beats radix?"},
		ChartYCols: []int{1, 2, 3},
		ChartYLab:  "model µs/key",
		Notes: []string{
			"Shape to match: sample sort fastest overall; bitonic beats radix for small per-processor counts and loses for large ones (the crossover of §5.5).",
			"Bitonic runs fully fused (FullSort) where the usual regime lgP(lgP+1)/2 <= lg n holds; at reduced scales the regime boundary can fall inside the sweep and shows as a step in the bitonic column. At the paper's true sizes the regime holds throughout.",
		},
	}
	// Extend the sweep downward to show the small-n regime where bitonic
	// wins (the paper's plots start at 16K keys/processor). Sizes that
	// collapse together after scaling are skipped.
	seen := map[int]bool{}
	for _, k := range append([]int{16, 32, 64}, paperSizesK...) {
		n := c.keysPerProc(k)
		if seen[n] {
			continue
		}
		seen[n] = true
		bi := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, FusePackUnpack: true})
		ra := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.RadixSort})
		sa := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SampleSort})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f2(bi.TimePerKey()), f2(ra.TimePerKey()), f2(sa.TimePerKey()),
			fmt.Sprintf("%v", bi.Time < ra.Time),
		})
	}
	return t
}

// AnalysisRVM reproduces the §3.4.2/§3.4.3 metric tables: remaps R,
// per-processor volume V and messages M for the three remapping
// strategies, analytically and as measured by the simulator.
func AnalysisRVM(c Config) *Table {
	lgP := 4
	n := c.keysPerProc(256)
	lgn := intbits.Log2(n)
	lgN := lgn + lgP
	t := &Table{
		ID:      "§3.4 analysis",
		Title:   fmt.Sprintf("communication metrics per processor (P=16, n=%d)", n),
		Columns: []string{"strategy", "R (analytic)", "V (analytic)", "M (analytic)", "R (measured)", "V (measured)", "M (measured)"},
		Notes: []string{
			"Smart minimizes R and V; blocked minimizes M — §3.4.3's observation that no strategy wins every metric.",
		},
	}
	type alg struct {
		m   logp.Metrics
		cfg parbitonic.Config
	}
	algs := []alg{
		{logp.Blocked(lgP, n), parbitonic.Config{Algorithm: parbitonic.BlockedMergeBitonic}},
		{logp.CyclicBlocked(lgP, n), parbitonic.Config{Algorithm: parbitonic.CyclicBlockedBitonic}},
		{logp.Smart(lgN, lgP), parbitonic.Config{Algorithm: parbitonic.SmartBitonic}},
	}
	for _, a := range algs {
		res := c.run(1<<uint(lgP), n, a.cfg)
		// The blocked strategy's "remaps" are its pairwise exchange
		// steps, which the machine counts as messages.
		measuredR := res.Remaps
		if a.cfg.Algorithm == parbitonic.BlockedMergeBitonic {
			measuredR = res.MessagesSent
		}
		t.Rows = append(t.Rows, []string{
			a.m.Name,
			fmt.Sprintf("%d", a.m.R), fmt.Sprintf("%d", a.m.V), fmt.Sprintf("%d", a.m.M),
			fmt.Sprintf("%d", measuredR), fmt.Sprintf("%d", res.VolumeSent), fmt.Sprintf("%d", res.MessagesSent),
		})
	}
	return t
}

// AblationShift reproduces the Lemma 5 comparison: total transferred
// volume per processor under the four remap-shifting strategies.
func AblationShift(c Config) *Table {
	t := &Table{
		ID:      "Lemma 5 ablation",
		Title:   "per-processor volume by remap-shift strategy",
		Columns: []string{"lgN", "lgP", "head", "tail", "middle1", "middle2"},
		Notes:   []string{"Shape to match: tail <= head < middle1 and tail <= middle2 whenever n >= P²."},
	}
	for _, d := range [][2]int{{16, 4}, {18, 5}, {20, 4}, {14, 3}} {
		lgN, lgP := d[0], d[1]
		n := 1 << uint(lgN-lgP)
		row := []string{fmt.Sprintf("%d", lgN), fmt.Sprintf("%d", lgP)}
		for _, s := range []schedule.Strategy{schedule.Head, schedule.Tail, schedule.Middle1, schedule.Middle2} {
			row = append(row, fmt.Sprintf("%d", schedule.Volume(schedule.New(lgN, lgP, s), n)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AblationCompute reproduces the Chapter 4 claim: replacing the
// compare-exchange simulation with linear sorts cuts the local
// computation substantially.
func AblationCompute(c Config) *Table {
	t := &Table{
		ID:      "Chapter 4 ablation",
		Title:   "local computation: simulated steps vs optimized sorts (smart, 16 processors)",
		Columns: []string{"keys/proc", "simulated compute µs/key", "optimized compute µs/key", "speedup"},
		Notes:   []string{"Shape to match: the optimized computation is several times cheaper (O(n) merges vs O(n lg n) step simulation)."},
	}
	const p = 16
	for _, k := range []int{128, 1024} {
		n := c.keysPerProc(k)
		sim := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic, SimulateSteps: true})
		opt := c.run(p, n, parbitonic.Config{Algorithm: parbitonic.SmartBitonic})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", k),
			f3(sim.ComputeTime / float64(p*n)), f3(opt.ComputeTime / float64(p*n)),
			f2(sim.ComputeTime / opt.ComputeTime),
		})
	}
	return t
}

// All runs every experiment in paper order.
func All(c Config) []*Table {
	return []*Table{
		Table51(c), Table52(c), Fig53(c), Fig54(c),
		Table53(c), Table54(c), Fig57(c), Fig58(c),
		AnalysisRVM(c), AblationShift(c), AblationCompute(c),
		FutureWorkOverlap(c), NativeThroughput(c), ElemWidth(c),
	}
}

// FutureWorkOverlap quantifies the thesis's Chapter 7 suggestion to
// "overlap computation and communication": from a traced run, a
// processor that could fully hide communication behind computation
// would be busy for max(compute, comm) instead of compute + comm. The
// table reports the resulting lower bound on total time per algorithm
// and the potential saving.
func FutureWorkOverlap(c Config) *Table {
	t := &Table{
		ID:      "Chapter 7 what-if",
		Title:   "potential gain from overlapping communication with computation",
		Columns: []string{"algorithm", "measured (model s)", "overlap bound (model s)", "potential saving"},
		Notes: []string{
			"Bound: per processor, busy time max(compute, comm) instead of compute+comm; barriers unchanged.",
			"Communication-heavy algorithms have the most to gain — the same conclusion the thesis draws when listing overlap as future work.",
		},
	}
	const p = 16
	n := c.keysPerProc(256)
	for _, alg := range []parbitonic.Algorithm{
		parbitonic.SmartBitonic, parbitonic.CyclicBlockedBitonic, parbitonic.BlockedMergeBitonic,
	} {
		res := c.run(p, n, parbitonic.Config{Algorithm: alg})
		comm := res.CommTime()
		comp := res.ComputeTime
		bound := res.Time - (comp + comm) + maxF(comp, comm)
		t.Rows = append(t.Rows, []string{
			alg.String(),
			fmt.Sprintf("%.4f", res.Time/1e6), fmt.Sprintf("%.4f", bound/1e6),
			fmt.Sprintf("%.0f%%", (1-bound/res.Time)*100),
		})
	}
	return t
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
