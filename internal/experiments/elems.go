package experiments

import (
	"fmt"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/workload"
)

// ElemWidth is not a paper reproduction: it sweeps the element layer
// across every supported key type on one configuration and shows how
// the model's communication charges scale with element width — the
// 8-byte and 16-byte types pay exactly their words multiple of the
// uint32 Gap/gap volume terms, while the per-message and per-remap
// fixed costs stay flat. The native wall-clock column is measured only
// for the element type selected by Config.Elem (cmd/experiments
// -keytype), since wall measurements are the expensive part.
func ElemWidth(c Config) *Table {
	const p = 16
	n := c.keysPerProc(256)
	t := &Table{
		ID:    "Element width",
		Title: fmt.Sprintf("smart bitonic across element types (P=%d, n=%d uniform keys per proc, simulated)", p, n),
		Columns: []string{"elem", "width B", "words", "model us/key", "vs u32",
			"native us/key"},
		Notes: []string{
			"words = element width / 4; transfer and pack/unpack charges scale by it, fixed per-remap and per-message costs do not. 64-bit keys also double the local radix pass count, so u64/f64/kv64 land slightly above their pure width ratio.",
			"the native column is measured wall clock for the -keytype element only (\"-\" elsewhere).",
		},
	}
	var base float64
	for _, et := range element.Types() {
		var model, native float64
		switch et {
		case element.TU32:
			model, native = elemRun[uint32](c, p, n, et == c.Elem)
		case element.TU64:
			model, native = elemRun[uint64](c, p, n, et == c.Elem)
		case element.TF32:
			model, native = elemRun[float32](c, p, n, et == c.Elem)
		case element.TF64:
			model, native = elemRun[float64](c, p, n, et == c.Elem)
		case element.TKV64:
			model, native = elemRun[element.KV64](c, p, n, et == c.Elem)
		}
		if et == element.TU32 {
			base = model
		}
		nat := "-"
		if native > 0 {
			nat = fmt.Sprintf("%.4f", native)
		}
		t.Rows = append(t.Rows, []string{
			et.String(),
			fmt.Sprintf("%d", et.Width()),
			fmt.Sprintf("%d", et.Width()/4),
			fmt.Sprintf("%.4f", model),
			f2(model / base),
			nat,
		})
	}
	return t
}

// elemRun sorts one element type's workload on the simulated backend
// (and, when asked, the native backend) and returns us/key for each.
func elemRun[E element.Elem](c Config, p, n int, measureNative bool) (modelUSKey, nativeUSKey float64) {
	data := workload.Elems[E](workload.Uniform31, p*n, c.Seed)
	res, err := parbitonic.Sort(data, parbitonic.Config{
		Processors: p,
		Backend:    parbitonic.Simulated,
		Verify:     true,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %s simulated: %v", element.TypeOf[E](), err))
	}
	modelUSKey = res.TimePerKey()
	if measureNative {
		data = workload.Elems[E](workload.Uniform31, p*n, c.Seed)
		nres, err := parbitonic.Sort(data, parbitonic.Config{
			Processors: p,
			Backend:    parbitonic.Native,
			Verify:     true,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %s native: %v", element.TypeOf[E](), err))
		}
		nativeUSKey = nres.TimePerKey()
	}
	return modelUSKey, nativeUSKey
}
