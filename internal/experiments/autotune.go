package experiments

import (
	"fmt"

	"parbitonic"
	"parbitonic/element"
	"parbitonic/internal/workload"
)

// autotuneAlgs are the fixed algorithms the autotuner is raced
// against; sample and radix are covered by the planner's candidate
// set but excluded here to keep the sweep to the paper's bitonic
// family.
var autotuneAlgs = []parbitonic.Algorithm{
	parbitonic.SmartBitonic, parbitonic.CyclicBlockedBitonic, parbitonic.BlockedMergeBitonic,
}

// AutotunedVsFixed is not a paper reproduction: it races the
// cost-model autotuner (Config.Auto, internal/tune) against every
// fixed (algorithm, P) shape on the native backend, at three total
// sizes for the narrowest and widest element types. A healthy planner
// lands at or near the best fixed shape and never at the worst; the
// drift column (measured/predicted) says how much to trust the
// machine profile — re-calibrate when it wanders from 1 (TUNING.md).
func AutotunedVsFixed(c Config) *Table {
	t := &Table{
		ID:    "Autotuned vs fixed",
		Title: "planner-chosen shape vs best and worst fixed (algorithm, P), native backend, wall ms",
		Columns: []string{"keys", "elem", "auto plan", "auto ms", "best fixed", "best ms",
			"worst fixed", "worst ms", "drift"},
		Notes: []string{
			"fixed sweep: smart, cyclic-blocked and blocked-merge bitonic at every power-of-two P up to 4 (P=1 collapses them to one sequential sort).",
			"drift = measured wall time / the plan's predicted time; far from 1 means the machine profile no longer describes this host — run bitonic-sort -calibrate (see TUNING.md).",
		},
	}
	for _, kKeys := range []int{64, 256, 1024} {
		total := 4 * c.keysPerProc(kKeys)
		t.Rows = append(t.Rows,
			autoVsFixed[uint32](c, total),
			autoVsFixed[element.KV64](c, total))
	}
	return t
}

// autoVsFixed runs one (size, element type) cell: the Auto sort, then
// the full fixed sweep, returning the rendered table row.
func autoVsFixed[E element.Elem](c Config, total int) []string {
	var rep parbitonic.SortReport
	data := workload.Elems[E](workload.Uniform31, total, c.Seed)
	res, err := parbitonic.Sort(data, parbitonic.Config{
		Auto:    true,
		Backend: parbitonic.Native,
		Observe: func(r parbitonic.SortReport) { rep = r },
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %s auto: %v", element.TypeOf[E](), err))
	}
	autoMS := res.Time / 1e3
	drift := "-"
	planName := "?"
	if rep.Plan != nil {
		planName = fmt.Sprintf("%v P=%d", rep.Plan.Algorithm, rep.Plan.Processors)
		if rep.Plan.PredictedUS > 0 {
			drift = f2(res.Time / rep.Plan.PredictedUS)
		}
	}

	bestMS, worstMS := 0.0, 0.0
	bestName, worstName := "", ""
	for p := 1; p <= 4 && p <= total/2; p *= 2 {
		for _, alg := range autotuneAlgs {
			if p == 1 && alg != parbitonic.SmartBitonic {
				continue // P=1 runs one local sort regardless of algorithm
			}
			fixed := workload.Elems[E](workload.Uniform31, total, c.Seed)
			fres, err := parbitonic.Sort(fixed, parbitonic.Config{
				Processors: p,
				Algorithm:  alg,
				Backend:    parbitonic.Native,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %s %v P=%d: %v", element.TypeOf[E](), alg, p, err))
			}
			ms := fres.Time / 1e3
			name := fmt.Sprintf("%v P=%d", alg, p)
			if bestName == "" || ms < bestMS {
				bestName, bestMS = name, ms
			}
			if worstName == "" || ms > worstMS {
				worstName, worstMS = name, ms
			}
		}
	}
	return []string{
		fmt.Sprintf("%d", total), element.TypeOf[E]().String(),
		planName, f2(autoMS),
		bestName, f2(bestMS),
		worstName, f2(worstMS),
		drift,
	}
}
