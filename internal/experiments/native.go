package experiments

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"parbitonic"
	"parbitonic/internal/intbits"
	"parbitonic/internal/workload"
)

// NativeThroughput is not a paper reproduction: it pits the smart
// bitonic sort running on the native wall-clock backend against Go's
// single-threaded slices.Sort over the same keys — the sanity check
// that the paper's algorithm, executed for real rather than simulated,
// is a usable parallel sort on the host machine.
func NativeThroughput(c Config) *Table {
	p := intbits.CeilPow2(runtime.GOMAXPROCS(0))
	if p < 4 {
		p = 4
	}
	t := &Table{
		ID:    "Native throughput",
		Title: fmt.Sprintf("smart bitonic on the native backend (P=%d goroutines) vs single-threaded slices.Sort, wall ms", p),
		Columns: []string{"keys total", "native smart (ms)", "slices.Sort (ms)", "speedup",
			"native us/key"},
		Notes: []string{
			fmt.Sprintf("host: GOMAXPROCS=%d; native times are measured wall clock, not model time.", runtime.GOMAXPROCS(0)),
			"speedup > 1 means the parallel bitonic sort beats the stdlib sequential sort.",
		},
		ChartYCols: []int{1, 2},
		ChartYLab:  "wall ms",
	}
	for _, kKeys := range paperSizesK {
		n := c.keysPerProc(kKeys)
		keys := workload.Keys(workload.Uniform31, p*n, c.Seed)

		ref := slices.Clone(keys)
		t0 := time.Now()
		slices.Sort(ref)
		stdMS := time.Since(t0).Seconds() * 1e3

		res, err := parbitonic.Sort(keys, parbitonic.Config{
			Processors: p,
			Backend:    parbitonic.Native,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		if !slices.Equal(keys, ref) {
			panic("experiments: native sort output differs from slices.Sort")
		}
		natMS := res.Time / 1e3
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p*n),
			f2(natMS), f2(stdMS), f2(stdMS / natMS),
			fmt.Sprintf("%.4f", res.TimePerKey()),
		})
	}
	return t
}
