package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parbitonic"
	"parbitonic/internal/intbits"
	"parbitonic/internal/serve"
	"parbitonic/internal/workload"
)

// loadConcurrency is the offered-concurrency sweep of the serve-load
// experiments.
var loadConcurrency = []int{1, 4, 16, 64}

// serveLoadKeys is the per-request key count of the load experiments:
// small enough that per-request overhead (engine setup, remap latency)
// dominates — the regime batching exists for.
const serveLoadKeys = 1024

// loadTag masks workload keys to 24 bits so deep batches stay
// tag-addressable (a 16-way batch needs 4 high bits free; see the
// serve package's tag-bit scheme).
const loadTag = 1<<24 - 1

// ServeLoad measures the sort service in-process: throughput and
// latency percentiles of 1k-key requests at increasing offered
// concurrency, against a baseline that builds an engine per request —
// the naive service loop the pooling/batching layer replaces.
func ServeLoad(c Config) *Table {
	p := intbits.CeilPow2(runtime.GOMAXPROCS(0))
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	t := &Table{
		ID: "Serve load",
		Title: fmt.Sprintf("sort service, %d-key requests on the native backend (P=%d): batching server vs per-request engine",
			serveLoadKeys, p),
		Columns: []string{"clients", "mode", "req/s", "p50 ms", "p99 ms", "reqs batched"},
		Notes: []string{
			"batched = pooled engines + request coalescing (serve.Server); per-request = a fresh engine and a solo run per call.",
			"keys are masked to 24 bits so deep batches keep tag headroom; full-range keys would fall back to solo runs.",
			"the acceptance bar is >=2x batched over per-request throughput at 64 clients.",
		},
	}

	reqsPer := 64 >> min(c.Scale, 4)
	if reqsPer < 4 {
		reqsPer = 4
	}

	srv, err := serve.New(serve.Config{
		Engine: parbitonic.Config{Processors: p, Backend: parbitonic.Native},
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer srv.Close()

	var batchedAt64, soloAt64 float64
	for _, clients := range loadConcurrency {
		rps, p50, p99 := runLoad(clients, reqsPer, c.Seed, func(keys []uint32) error {
			_, err := srv.Sort(context.Background(), keys)
			return err
		})
		_, batched := srv.Metrics().BatchCount()
		if clients == 64 {
			batchedAt64 = rps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", clients), "batched", f1(rps), f2(p50), f2(p99), fmt.Sprintf("%.0f", batched),
		})
	}

	ecfg := parbitonic.Config{Processors: p, Backend: parbitonic.Native}
	for _, clients := range loadConcurrency {
		rps, p50, p99 := runLoad(clients, reqsPer, c.Seed, func(keys []uint32) error {
			e, err := parbitonic.NewEngine(ecfg)
			if err != nil {
				return err
			}
			out := append([]uint32(nil), keys...)
			_, err = e.SortPadded(out)
			return err
		})
		if clients == 64 {
			soloAt64 = rps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", clients), "per-request", f1(rps), f2(p50), f2(p99), "0",
		})
	}
	if soloAt64 > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("measured: %.2fx batched over per-request at 64 clients.", batchedAt64/soloAt64))
	}
	return t
}

// LoadHTTP drives a live sort-server over HTTP (binary content type)
// through the same concurrency sweep as ServeLoad. url is the server
// base, e.g. http://localhost:8357. Every request carries a unique
// X-Request-ID; a response that fails to echo it back counts as an
// error, so CI's zero-errors gate also gates trace propagation.
func LoadHTTP(url string, reqsPerClient int, seed uint64) *Table {
	t := &Table{
		ID:      "HTTP load",
		Title:   fmt.Sprintf("POST %s/sort, %d-key binary requests", url, serveLoadKeys),
		Columns: []string{"clients", "req/s", "p50 ms", "p99 ms", "errors"},
		Notes: []string{
			"wire format: application/octet-stream, little-endian uint32 keys.",
			"latency includes HTTP round-trip; compare shapes, not absolutes, with the in-process Serve load table.",
			"every request sends X-Request-ID; a missing or wrong echo on the response counts as an error.",
		},
	}
	client := &http.Client{Timeout: 60 * time.Second}
	var reqSeq atomic.Uint64
	for _, clients := range loadConcurrency {
		var errs int64
		var errMu sync.Mutex
		rps, p50, p99 := runLoad(clients, reqsPerClient, seed, func(keys []uint32) error {
			body := make([]byte, 4*len(keys))
			for i, k := range keys {
				binary.LittleEndian.PutUint32(body[4*i:], k)
			}
			id := fmt.Sprintf("load-%d-%d", clients, reqSeq.Add(1))
			req, err := http.NewRequest(http.MethodPost, url+"/sort", bytes.NewReader(body))
			if err == nil {
				req.Header.Set("Content-Type", "application/octet-stream")
				req.Header.Set("X-Request-ID", id)
				var resp *http.Response
				resp, err = client.Do(req)
				if err == nil {
					_, err = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					} else if got := resp.Header.Get("X-Request-ID"); got != id {
						err = fmt.Errorf("request ID not echoed: sent %q, got %q", id, got)
					}
				}
			}
			if err != nil {
				errMu.Lock()
				errs++
				errMu.Unlock()
			}
			return err
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", clients), f1(rps), f2(p50), f2(p99), fmt.Sprintf("%d", errs),
		})
	}
	return t
}

// runLoad fans clients goroutines out over one request function and
// returns throughput (requests/s) and latency percentiles (ms). Every
// client issues reqsPer requests of serveLoadKeys keys.
func runLoad(clients, reqsPer int, seed uint64, do func([]uint32) error) (rps, p50ms, p99ms float64) {
	lat := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			keys := workload.Keys(workload.Uniform31, serveLoadKeys, seed+uint64(c))
			for i := range keys {
				keys[i] &= loadTag
			}
			for i := 0; i < reqsPer; i++ {
				t0 := time.Now()
				if err := do(keys); err != nil {
					continue
				}
				lat[c] = append(lat[c], time.Since(t0).Seconds()*1e3)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(all)
	return float64(len(all)) / wall, percentile(all, 0.50), percentile(all, 0.99)
}

// percentile reads the q-quantile (0..1) of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
