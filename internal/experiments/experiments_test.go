package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// fastConfig keeps test runtimes low while preserving every shape.
func fastConfig() Config { return Config{Seed: 7, Scale: 9} }

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestTable51Ordering(t *testing.T) {
	tab := Table51(fastConfig())
	if len(tab.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		bm, cb, sm := cell(tab, r, 1), cell(tab, r, 2), cell(tab, r, 3)
		if !(sm < cb && cb < bm) {
			t.Errorf("row %d: smart=%v cyclic=%v blocked=%v — paper ordering violated", r, sm, cb, bm)
		}
		if ratio := bm / sm; ratio < 1.5 || ratio > 3.5 {
			t.Errorf("row %d: blocked/smart ratio %.2f outside the paper's ~2x regime", r, ratio)
		}
	}
}

func TestTable52ConsistentWithTable51(t *testing.T) {
	cfg := fastConfig()
	t51, t52 := Table51(cfg), Table52(cfg)
	// total = perkey * N with N = 32 * keysPerProc * 2^scale (model
	// totals are rescaled): ratios across algorithms must match.
	for r := range t52.Rows {
		r51 := cell(t51, r, 1) / cell(t51, r, 3)
		r52 := cell(t52, r, 1) / cell(t52, r, 3)
		if diff := r51/r52 - 1; diff > 0.25 || diff < -0.25 {
			t.Errorf("row %d: per-key and total ratios disagree: %v vs %v", r, r51, r52)
		}
	}
}

func TestFig53SpeedupShape(t *testing.T) {
	tab := Fig53(fastConfig())
	prev := 0.0
	for r := range tab.Rows {
		s := cell(tab, r, 2)
		if s < prev {
			t.Errorf("speedup not monotone at row %d: %v after %v", r, s, prev)
		}
		prev = s
	}
	// Efficiency must decay.
	if first, last := cell(tab, 0, 3), cell(tab, len(tab.Rows)-1, 3); last >= first {
		t.Errorf("efficiency should decrease with P: %v -> %v", first, last)
	}
}

func TestFig54ComputationDominates(t *testing.T) {
	tab := Fig54(Config{Seed: 7, Scale: 6})
	for r := range tab.Rows {
		comp, comm := cell(tab, r, 1), cell(tab, r, 2)
		if comp <= comm {
			t.Errorf("row %d: computation (%v) should dominate communication (%v)", r, comp, comm)
		}
	}
}

func TestTable53LongBeatsShortByOrderOfMagnitude(t *testing.T) {
	tab := Table53(fastConfig())
	for r := range tab.Rows {
		ratio := cell(tab, r, 3)
		if ratio < 8 {
			t.Errorf("row %d: short/long ratio %v below an order of magnitude", r, ratio)
		}
	}
}

func TestTable54PackUnpackDominate(t *testing.T) {
	tab := Table54(Config{Seed: 7, Scale: 6})
	for r := range tab.Rows {
		pack, transfer, unpack := cell(tab, r, 1), cell(tab, r, 2), cell(tab, r, 3)
		if pack+unpack <= transfer {
			t.Errorf("row %d: pack+unpack (%v) should dominate transfer (%v)", r, pack+unpack, transfer)
		}
	}
}

func TestFig57And58Shapes(t *testing.T) {
	for _, tab := range []*Table{Fig57(Config{Seed: 7, Scale: 4}), Fig58(Config{Seed: 7, Scale: 4})} {
		sawBitonicWin, sawRadixWin := false, false
		for r := range tab.Rows {
			bi, ra, sa := cell(tab, r, 1), cell(tab, r, 2), cell(tab, r, 3)
			if r >= len(tab.Rows)-4 && (sa >= bi || sa >= ra) {
				t.Errorf("%s row %d: sample sort (%v) should be fastest (bitonic %v, radix %v)", tab.ID, r, sa, bi, ra)
			}
			if bi < ra {
				sawBitonicWin = true
			} else {
				sawRadixWin = true
			}
		}
		if !sawBitonicWin || !sawRadixWin {
			t.Errorf("%s: expected a bitonic-vs-radix crossover (bitonic wins small n, radix wins large n): bitonicWin=%v radixWin=%v",
				tab.ID, sawBitonicWin, sawRadixWin)
		}
		// Crossover direction: bitonic wins first, radix wins last.
		if first, last := cell(tab, 0, 1) < cell(tab, 0, 2), cell(tab, len(tab.Rows)-1, 1) < cell(tab, len(tab.Rows)-1, 2); !first || last {
			t.Errorf("%s: crossover direction wrong (first bitonicWin=%v, last bitonicWin=%v)", tab.ID, first, last)
		}
	}
}

func TestAnalysisRVMConsistency(t *testing.T) {
	tab := AnalysisRVM(fastConfig())
	for r := range tab.Rows {
		for c := 1; c <= 3; c++ {
			if tab.Rows[r][c] != tab.Rows[r][c+3] {
				t.Errorf("row %d (%s): analytic %s=%s, measured %s", r, tab.Rows[r][0],
					tab.Columns[c], tab.Rows[r][c], tab.Rows[r][c+3])
			}
		}
	}
}

func TestAblationShiftOrdering(t *testing.T) {
	tab := AblationShift(fastConfig())
	for r := range tab.Rows {
		head, tail, m1, m2 := cell(tab, r, 2), cell(tab, r, 3), cell(tab, r, 4), cell(tab, r, 5)
		if tail > head || tail > m2 {
			t.Errorf("row %d: tail=%v should be minimal (head=%v, m2=%v)", r, tail, head, m2)
		}
		if m1 < head {
			t.Errorf("row %d: middle1=%v should not beat head=%v", r, m1, head)
		}
	}
}

func TestAblationComputeSpeedup(t *testing.T) {
	tab := AblationCompute(fastConfig())
	for r := range tab.Rows {
		if s := cell(tab, r, 3); s < 1.5 {
			t.Errorf("row %d: optimized computation speedup %v too small", r, s)
		}
	}
}

func TestAllRunsAndRenders(t *testing.T) {
	var sb strings.Builder
	for _, tab := range All(fastConfig()) {
		if tab.ID == "" || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Errorf("degenerate table %+v", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: ragged row %v", tab.ID, row)
			}
		}
		tab.Render(&sb)
	}
	out := sb.String()
	for _, want := range []string{"Table 5.1", "Table 5.2", "Figure 5.3", "Figure 5.4", "Table 5.3", "Table 5.4", "Figure 5.7", "Figure 5.8", "§3.4", "Lemma 5", "Chapter 4", "Chapter 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFutureWorkOverlapBounds(t *testing.T) {
	tab := FutureWorkOverlap(fastConfig())
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 algorithms, got %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		measured, bound := cell(tab, r, 1), cell(tab, r, 2)
		if bound > measured || bound <= 0 {
			t.Errorf("row %d: bound %v not in (0, measured=%v]", r, bound, measured)
		}
	}
}
