// Package native is the wall-clock backend of the SPMD runtime
// (internal/spmd): the same goroutine-per-processor algorithm bodies
// that the simulator runs, executed for real speed rather than model
// fidelity. Nothing on the hot path does model arithmetic — the
// charger only timestamps phase boundaries — message buffers are
// pooled across remap rounds, and the collective exchange hands slices
// over zero-copy, so a P-processor sort is a genuine parallel sort of
// the host machine.
//
// Reporting keeps the simulator's shape: Result.Time is the measured
// wall-clock makespan in microseconds and the Stats phase fields hold
// measured wall time per phase, so the same tables, traces and
// comparisons work against either backend. What the native backend
// does NOT do is charge LogGP communication costs — transfer time here
// is the (near-zero) cost of publishing slice headers through shared
// memory, with synchronization visible as barrier-wait trace spans and
// as the gap between Time and the per-phase busy totals.
package native

import (
	"context"
	"time"

	"parbitonic/element"
	"parbitonic/internal/obs"
	"parbitonic/internal/spmd"
	"parbitonic/internal/trace"
)

// Config configures a native engine.
type Config struct {
	P int // number of processors (power of two, >= 1)

	// Costs is carried for API compatibility with the simulator (the
	// Charge* helpers consult it to compute model values the wall-clock
	// charger then ignores); zero value uses the defaults.
	Costs spmd.CostModel

	// Trace, when non-nil, records measured wall-clock spans per phase
	// (including barrier waits). Adds some overhead.
	Trace *trace.Recorder

	// Sink, when non-nil, receives the observability stream (spans,
	// run lifecycle, abort events) and enables pprof goroutine labels;
	// see spmd.EngineConfig.Sink.
	Sink obs.Sink

	// Labels are static telemetry labels ("alg", "backend", ...) for
	// run metadata and pprof labels.
	Labels map[string]string

	// WrapCharger, when non-nil, wraps the wall-clock charger before
	// the engine is built. This is the seam fault injection
	// (internal/fault) hooks into: the wrapper observes every phase
	// boundary of every processor.
	WrapCharger func(spmd.Charger) spmd.Charger
}

// EngineOf is a P-worker shared-memory execution engine over element
// type E. It implements spmd.BackendOf[E].
type EngineOf[E element.Elem] struct {
	*spmd.EngineOf[E]
	ch *wallCharger
}

// Engine is the uint32 native engine, the element type of the paper's
// experiments.
type Engine = EngineOf[uint32]

// NewOf creates a native engine over element type E. P must be a power
// of two and at least 1; invalid configurations are reported as
// errors. P may exceed the host's core count — the algorithms are
// bulk-synchronous, so oversubscription costs only scheduling overhead.
func NewOf[E element.Elem](cfg Config) (*EngineOf[E], error) {
	ch := &wallCharger{}
	var charge spmd.Charger = ch
	if cfg.WrapCharger != nil {
		charge = cfg.WrapCharger(charge)
	}
	eng, err := spmd.NewEngineOf[E](spmd.EngineConfig{
		P:      cfg.P,
		Costs:  cfg.Costs,
		Long:   true, // long-message code paths; pack cost is real copying here
		Shared: true, // one address space: remaps may gather directly
		Charge: charge,
		Trace:  cfg.Trace,
		Sink:   cfg.Sink,
		Labels: cfg.Labels,
	})
	if err != nil {
		return nil, err
	}
	ch.marks = make([]time.Time, cfg.P)
	return &EngineOf[E]{EngineOf: eng, ch: ch}, nil
}

// New creates a uint32 native engine; see NewOf.
func New(cfg Config) (*Engine, error) { return NewOf[uint32](cfg) }

// Run executes body once per processor at native speed. Result.Time is
// the measured wall-clock duration of the whole run in microseconds;
// per-processor Stats hold measured per-phase wall time.
func (e *EngineOf[E]) Run(data [][]E, body func(p *spmd.ProcOf[E])) (spmd.Result, error) {
	return e.RunContext(context.Background(), data, body)
}

// RunContext is Run under a context: cancellation or deadline expiry
// aborts the run promptly with a typed error (see spmd.Backend), and
// the worker goroutines are joined before it returns — a canceled
// native sort leaks nothing.
func (e *EngineOf[E]) RunContext(ctx context.Context, data [][]E, body func(p *spmd.ProcOf[E])) (spmd.Result, error) {
	start := time.Now()
	res, err := e.EngineOf.RunContext(ctx, data, body)
	if err != nil {
		return spmd.Result{}, err
	}
	res.Time = time.Since(start).Seconds() * 1e6
	return res, nil
}

// wallCharger implements spmd.Charger by measuring, not modelling: each
// hook attributes the wall time elapsed since the processor's previous
// phase boundary to the phase that just ended. marks is indexed by
// processor ID; each goroutine touches only its own slot. Spans go
// through PC.Span, which feeds both the trace recorder and the
// observability sink.
type wallCharger struct {
	marks []time.Time
}

// lap returns the µs elapsed since the processor's last phase boundary
// and advances the boundary.
func (c *wallCharger) lap(p *spmd.PC) float64 {
	now := time.Now()
	dt := now.Sub(c.marks[p.ID]).Seconds() * 1e6
	c.marks[p.ID] = now
	if dt < 0 {
		return 0
	}
	return dt
}

func (c *wallCharger) span(p *spmd.PC, ph trace.Phase, dt float64) {
	p.Span(ph, p.Clock, p.Clock+dt)
}

func (c *wallCharger) Start(p *spmd.PC) { c.marks[p.ID] = time.Now() }

// Synced resets the phase boundary after a barrier so time spent
// waiting for peers (already folded into Clock by the barrier's
// max-reduction) is not double-counted into the next busy phase.
func (c *wallCharger) Synced(p *spmd.PC) { c.marks[p.ID] = time.Now() }

func (c *wallCharger) Compute(p *spmd.PC, _ float64) {
	dt := c.lap(p)
	c.span(p, trace.Compute, dt)
	p.Clock += dt
	p.Stats.ComputeTime += dt
}

func (c *wallCharger) Pack(p *spmd.PC, _ int) {
	dt := c.lap(p)
	c.span(p, trace.Pack, dt)
	p.Clock += dt
	p.Stats.PackTime += dt
}

func (c *wallCharger) Unpack(p *spmd.PC, _ int) {
	dt := c.lap(p)
	c.span(p, trace.Unpack, dt)
	p.Clock += dt
	p.Stats.UnpackTime += dt
}

func (c *wallCharger) Transfer(p *spmd.PC, _, _ int) {
	dt := c.lap(p)
	c.span(p, trace.Transfer, dt)
	p.Clock += dt
	p.Stats.TransferTime += dt
}
