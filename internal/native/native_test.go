package native

import (
	"strings"
	"testing"

	"parbitonic/internal/spmd"
	"parbitonic/internal/trace"
)

func mustNew(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func mustRun(t testing.TB, e *Engine, data [][]uint32, body func(*spmd.Proc)) spmd.Result {
	t.Helper()
	res, err := e.Run(data, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestRunMeasuresWallTime checks the wall-clock accounting shape: the
// makespan covers the run, per-phase stats are non-negative, and busy
// time never exceeds the makespan.
func TestRunMeasuresWallTime(t *testing.T) {
	e := mustNew(t, Config{P: 4})
	data := make([][]uint32, 4)
	for i := range data {
		data[i] = make([]uint32, 1<<12)
		for j := range data[i] {
			data[i][j] = uint32((i*31 + j*7) % 997)
		}
	}
	res := mustRun(t, e, data, func(p *spmd.Proc) {
		s := uint32(0)
		for _, v := range p.Data {
			s += v
		}
		p.Data[0] = s
		p.ChargeCompute(0) // argument ignored; wall time is measured
		p.Barrier()
	})
	if res.Time <= 0 {
		t.Fatalf("wall makespan %v, want > 0", res.Time)
	}
	for i, st := range res.PerProc {
		if st.ComputeTime < 0 || st.PackTime < 0 || st.TransferTime < 0 || st.UnpackTime < 0 {
			t.Fatalf("proc %d: negative phase time: %+v", i, st)
		}
		busy := st.ComputeTime + st.PackTime + st.TransferTime + st.UnpackTime
		if busy > res.Time*1.0001 {
			t.Fatalf("proc %d: busy %v exceeds makespan %v", i, busy, res.Time)
		}
	}
}

// TestExchangeIsZeroCopy verifies receivers see the sender's backing
// array itself, not a copy — the handoff the package documents.
func TestExchangeIsZeroCopy(t *testing.T) {
	e := mustNew(t, Config{P: 2})
	payload := []uint32{1, 2, 3}
	mustRun(t, e, nil, func(p *spmd.Proc) {
		out := make([][]uint32, 2)
		if p.ID == 0 {
			out[1] = payload
		}
		in := p.Exchange(out)
		if p.ID == 1 {
			if len(in[0]) != 3 || &in[0][0] != &payload[0] {
				t.Error("native: exchange copied the payload")
			}
		}
	})
}

// TestChargeHelpersMeasure checks that the model-charging helpers used
// by the algorithm bodies attribute elapsed wall time to the right
// phase under the native charger, and that barriers reset the lap so
// waits are not double-counted as compute.
func TestChargeHelpersMeasure(t *testing.T) {
	e := mustNew(t, Config{P: 2})
	res := mustRun(t, e, nil, func(p *spmd.Proc) {
		x := 0
		for i := 0; i < 1<<16; i++ {
			x += i
		}
		_ = x
		p.ChargeMerge(1 << 16)
		p.Barrier()
	})
	if res.Sum.ComputeTime <= 0 {
		t.Fatalf("ComputeTime %v, want > 0 after ChargeMerge", res.Sum.ComputeTime)
	}
	if res.Sum.PackTime != 0 || res.Sum.UnpackTime != 0 {
		t.Fatalf("unexpected pack/unpack time in compute-only run: %+v", res.Sum)
	}
}

// TestTraceRecordsSpans checks the traced timeline includes the
// measured phases.
func TestTraceRecordsSpans(t *testing.T) {
	rec := new(trace.Recorder)
	e := mustNew(t, Config{P: 2, Trace: rec})
	data := [][]uint32{{4, 3, 2, 1}, {8, 7, 6, 5}}
	mustRun(t, e, data, func(p *spmd.Proc) {
		p.ChargeCompute(0)
		p.Barrier()
	})
	tl := rec.Timeline(40)
	if !strings.Contains(tl, "proc") || !strings.Contains(tl, "C") {
		t.Fatalf("traced native run produced no compute spans:\n%s", tl)
	}
}

// TestBackendInterface pins that *Engine satisfies spmd.Backend.
func TestBackendInterface(t *testing.T) {
	var b spmd.Backend = mustNew(t, Config{P: 1})
	if b.P() != 1 {
		t.Fatalf("P() = %d, want 1", b.P())
	}
}

// TestBadPErrors mirrors the simulator's constructor contract: an
// invalid processor count is a returned error, not a panic.
func TestBadPErrors(t *testing.T) {
	if _, err := New(Config{P: 3}); err == nil {
		t.Fatal("New(P=3) returned nil error")
	}
}
