package core

import (
	"testing"

	"parbitonic/internal/addr"
	"parbitonic/internal/bitseq"
	"parbitonic/internal/localsort"
	"parbitonic/internal/schedule"
)

// seqState is a goroutine-free executor of the smart algorithm used for
// exhaustive verification: it performs the same initial sorts, remaps
// (via the sequential reference addr.Apply) and local phases as
// smartSort, without the machine.
type seqState struct {
	lgN, lgP int
	data     [][]uint32
}

func (s *seqState) run(optimized bool) {
	for p := range s.data {
		localsort.Sort(s.data[p], p%2 == 0)
	}
	if s.lgP == 0 {
		return
	}
	prev := addr.Blocked(s.lgN, s.lgP)
	for _, r := range schedule.New(s.lgN, s.lgP, schedule.Head) {
		s.data = addr.Apply(prev, r.Layout, s.data)
		prev = r.Layout
		for p := range s.data {
			if optimized {
				s.phaseOptimized(r, p)
			} else {
				for _, st := range schedule.StepsFrom(s.lgN, s.lgP, r.K, r.S, r.StepsAfter) {
					s.stepSim(r.Layout, st, p)
				}
			}
		}
	}
}

func (s *seqState) stepSim(l *addr.Layout, st schedule.Step, p int) {
	localBit := -1
	for i, b := range l.LocalBits {
		if b == st.Bit {
			localBit = i
		}
	}
	data := s.data[p]
	mask := 1 << uint(localBit)
	for lo := range data {
		if lo&mask != 0 {
			continue
		}
		hi := lo | mask
		if (data[lo] > data[hi]) == st.Ascending(l.Abs(p, lo)) {
			data[lo], data[hi] = data[hi], data[lo]
		}
	}
}

func (s *seqState) phaseOptimized(r schedule.Remap, p int) {
	lgn := s.lgN - s.lgP
	data := s.data[p]
	n := len(data)
	switch r.Kind {
	case schedule.Inside:
		out := make([]uint32, n)
		bitseq.SortBitonic(out, data, ascFor(r.Layout, p, lgn+r.K))
		copy(data, out)
	case schedule.Crossing:
		blockLen := 1 << uint(r.A)
		topMask := 1 << uint(r.B-1)
		localsort.SortBitonicBlocks(data, blockLen, func(blk int) bool { return blk&topMask == 0 }, nil)
		asc := ascFor(r.Layout, p, lgn+r.K+1)
		for d := 0; d < blockLen; d++ {
			localsort.SortBitonicStrided(data, d, blockLen, 1<<uint(r.B), asc, nil)
		}
	case schedule.Last:
		localsort.SortBitonicBlocks(data, 1<<uint(r.S), func(int) bool { return true }, nil)
	}
}

// TestZeroOnePrincipleSmartExhaustive verifies the complete distributed
// smart algorithm — schedule, layouts, remap routing and the Chapter 4
// optimized phases — on EVERY 0-1 input for several (N, P) shapes. By
// the zero-one principle this proves the construction sorts all inputs
// of those shapes.
func TestZeroOnePrincipleSmartExhaustive(t *testing.T) {
	// Shapes are capped at N = 16 keys: the check enumerates all 2^N
	// boolean inputs.
	shapes := [][2]int{ // lgP, lgn
		{1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 1},
	}
	for _, optimized := range []bool{true, false} {
		for _, sh := range shapes {
			lgP, lgn := sh[0], sh[1]
			lgN := lgP + lgn
			N := 1 << uint(lgN)
			P := 1 << uint(lgP)
			n := N / P
			for mask := 0; mask < 1<<uint(N); mask++ {
				ones := 0
				st := seqState{lgN: lgN, lgP: lgP, data: make([][]uint32, P)}
				for p := 0; p < P; p++ {
					st.data[p] = make([]uint32, n)
					for i := 0; i < n; i++ {
						bit := uint32(mask >> uint(p*n+i) & 1)
						st.data[p][i] = bit
						ones += int(bit)
					}
				}
				st.run(optimized)
				pos := 0
				for p := 0; p < P; p++ {
					for i := 0; i < n; i++ {
						want := uint32(0)
						if pos >= N-ones {
							want = 1
						}
						if st.data[p][i] != want {
							t.Fatalf("optimized=%v lgP=%d lgn=%d mask=%b: wrong at global %d",
								optimized, lgP, lgn, mask, pos)
						}
						pos++
					}
				}
			}
		}
	}
}

// The same exhaustive check for the cyclic-blocked baseline shapes that
// satisfy n >= P.
func TestZeroOnePrincipleStepsEquivalence(t *testing.T) {
	// Spot-check that the sequential executor agrees with itself across
	// modes on every 0-1 input of one shape (optimized == simulated
	// elementwise, mirroring TestOptimizedMatchesSimulatedExactly but
	// exhaustively).
	lgP, lgn := 2, 2
	lgN := lgP + lgn
	N := 1 << uint(lgN)
	P := 1 << uint(lgP)
	n := N / P
	for mask := 0; mask < 1<<uint(N); mask++ {
		mk := func() seqState {
			st := seqState{lgN: lgN, lgP: lgP, data: make([][]uint32, P)}
			for p := 0; p < P; p++ {
				st.data[p] = make([]uint32, n)
				for i := 0; i < n; i++ {
					st.data[p][i] = uint32(mask >> uint(p*n+i) & 1)
				}
			}
			return st
		}
		a, b := mk(), mk()
		a.run(true)
		b.run(false)
		for p := 0; p < P; p++ {
			for i := 0; i < n; i++ {
				if a.data[p][i] != b.data[p][i] {
					t.Fatalf("mask=%b: modes disagree at (%d,%d)", mask, p, i)
				}
			}
		}
	}
}
