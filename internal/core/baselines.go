package core

import (
	"parbitonic/element"
	"parbitonic/internal/addr"
	"parbitonic/internal/intbits"
	"parbitonic/internal/localsort"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
)

// cyclicBlockedSort is the [CDMS94] baseline of §2.3: for each of the
// last lg P stages, remap blocked->cyclic, execute the first k steps
// locally (bitonic-split sweeps), remap back to blocked, and finish the
// stage with a local sort. Requires n >= P.
func cyclicBlockedSort[E element.Elem](pr *spmd.ProcOf[E], toCyclic, toBlocked *addr.RemapPlan, opts Options) {
	n := len(pr.Data)
	lgn, lgP := intbits.Log2(n), intbits.Log2(pr.P())
	lgN := lgn + lgP

	sortScratch := pr.GetBuf(n)
	localsort.SortScratch(pr.Data, pr.ID%2 == 0, sortScratch)
	pr.ChargeRadixSort(n)
	if lgP == 0 {
		pr.PutBuf(sortScratch)
		return
	}

	blocked := toBlocked.New
	cyclic := toCyclic.New

	scratch := make([]E, 2*(1<<uint(lgP)))
	for k := 1; k <= lgP; k++ {
		stage := lgn + k
		if !pr.DirectRemap(toCyclic) {
			pr.RemapExchange(toCyclic, false)
		}
		// First k steps of the stage execute locally under cyclic. They
		// form, for every group of 2^k keys whose absolute addresses
		// differ only in bits lgn..lgn+k-1, a complete butterfly: the
		// group is bitonic (Lemma 7) and comes out sorted. [CDMS94]
		// exploits exactly this, computing the cyclic phase with bitonic
		// merges — one linear pass instead of k compare-exchange sweeps.
		if opts.Compute == Optimized {
			// Under cyclic, absolute bit lgn+i is local bit lgn-lgP+i:
			// groups are strided with stride 2^(lgn-lgP) and count 2^k;
			// the direction bit (absolute lgn+k) is local bit lgn-lgP+k.
			stride := 1 << uint(lgn-lgP)
			mask := (1<<uint(k) - 1) * stride // the varied local bits
			dirBit := stride << uint(k)
			for base := 0; base < n; base++ {
				if base&mask != 0 {
					continue
				}
				asc := stage == lgN || base&dirBit == 0
				localsort.SortBitonicStrided(pr.Data, base, stride, 1<<uint(k), asc, scratch)
			}
			pr.ChargeMerge(n)
		} else {
			for j := 0; j < k; j++ {
				simulateStep(pr, cyclic, schedule.Step{Bit: stage - 1 - j, Stage: stage})
			}
		}
		if !pr.DirectRemap(toBlocked) {
			pr.RemapExchange(toBlocked, false)
		}
		// Remaining lg n steps under blocked: each processor holds one
		// bitonic sequence (Lemma 7 at column lg n); [CDMS94] finishes
		// with a local radix sort in the stage's direction.
		if opts.Compute == Optimized {
			localsort.SortScratch(pr.Data, ascFor(blocked, pr.ID, stage), sortScratch)
			pr.ChargeRadixSort(n)
		} else {
			for j := lgn; j >= 1; j-- {
				simulateStep(pr, blocked, schedule.Step{Bit: j - 1, Stage: stage})
			}
		}
	}
	pr.PutBuf(sortScratch)
}

// compareSplit fills out with the element-wise minima (keepMin) or
// maxima of mine and theirs — the remote compare-split kept half of a
// [BLM+91] step. Dispatches to a monomorphic kernel per element kind.
func compareSplit[E element.Elem](out, mine, theirs []E, keepMin bool) {
	switch any(*new(E)).(type) {
	case uint32:
		ordCompareSplit(element.Cast[uint32](out), element.Cast[uint32](mine), element.Cast[uint32](theirs), keepMin)
	case uint64:
		ordCompareSplit(element.Cast[uint64](out), element.Cast[uint64](mine), element.Cast[uint64](theirs), keepMin)
	case float32:
		ordCompareSplit(element.Cast[float32](out), element.Cast[float32](mine), element.Cast[float32](theirs), keepMin)
	case float64:
		ordCompareSplit(element.Cast[float64](out), element.Cast[float64](mine), element.Cast[float64](theirs), keepMin)
	default:
		kvCompareSplit(element.Cast[element.KV64](out), element.Cast[element.KV64](mine), element.Cast[element.KV64](theirs), keepMin)
	}
}

func ordCompareSplit[T element.Ord](out, mine, theirs []T, keepMin bool) {
	if keepMin {
		for i, m := range mine {
			if other := theirs[i]; other < m {
				out[i] = other
			} else {
				out[i] = m
			}
		}
	} else {
		for i, m := range mine {
			if other := theirs[i]; other > m {
				out[i] = other
			} else {
				out[i] = m
			}
		}
	}
}

func kvCompareSplit(out, mine, theirs []element.KV64, keepMin bool) {
	if keepMin {
		for i, m := range mine {
			if other := theirs[i]; other.K < m.K {
				out[i] = other
			} else {
				out[i] = m
			}
		}
	} else {
		for i, m := range mine {
			if other := theirs[i]; other.K > m.K {
				out[i] = other
			} else {
				out[i] = m
			}
		}
	}
}

// blockedMergeSort is the [BLM+91] baseline of §5.3: a fixed blocked
// layout. For stage lg n + k the first k steps pair processors that
// exchange their full n keys and keep the element-wise minima or maxima
// (a remote compare-split); the remaining lg n steps are a local sort.
func blockedMergeSort[E element.Elem](pr *spmd.ProcOf[E]) {
	n := len(pr.Data)
	lgn, lgP := intbits.Log2(n), intbits.Log2(pr.P())
	lgN := lgn + lgP

	sortScratch := pr.GetBuf(n)
	localsort.SortScratch(pr.Data, pr.ID%2 == 0, sortScratch)
	pr.ChargeRadixSort(n)
	if lgP == 0 {
		pr.PutBuf(sortScratch)
		return
	}
	blocked := addr.Blocked(lgN, lgP)

	// spare holds the local array a compare-split just replaced. The
	// partner is still reading it (its compare-split of the same step
	// runs concurrently with ours), so it can only go back to the pool
	// once a barrier separates us — the next PairExchange provides one.
	// The very last spare is simply dropped: no barrier follows it
	// inside this function.
	var spare []E
	for k := 1; k <= lgP; k++ {
		stage := lgn + k
		asc := ascFor(blocked, pr.ID, stage)
		for j := 0; j < k; j++ {
			bit := stage - 1 - j // always >= lg n: a remote step
			procBit := bit - lgn
			partner := pr.ID ^ 1<<uint(procBit)
			theirs := pr.PairExchange(partner, pr.Data)
			if spare != nil {
				pr.PutBuf(spare) // previous round's array: barrier passed
			}
			// My rows have absolute bit `bit` equal to my processor bit;
			// the row with the bit clear receives the minimum iff the
			// merge is ascending (Definition 3).
			iAmLow := pr.ID>>uint(procBit)&1 == 0
			keepMin := iAmLow == asc
			out := pr.GetBuf(n)
			compareSplit(out, pr.Data, theirs, keepMin)
			spare = pr.Data
			pr.Data = out
			// The [BLM+91] step "simulates a merge step" over both the
			// local and the received keys: 2n elements of linear work.
			pr.ChargeMerge(2 * n)
		}
		// Remaining lg n steps are local; [BLM+91] uses a radix sort.
		localsort.SortScratch(pr.Data, asc, sortScratch)
		pr.ChargeRadixSort(n)
	}
	pr.PutBuf(sortScratch)
}
