package core

import (
	"sort"
	"testing"
	"testing/quick"

	"parbitonic/internal/logp"
	"parbitonic/internal/machine"
	"parbitonic/internal/schedule"
	"parbitonic/internal/workload"
)

func testMachine(p int, long bool) *machine.Machine {
	cfg := machine.DefaultConfig(p)
	cfg.Long = long
	m, err := machine.New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// runSort sorts a fresh workload and returns (result, output, want).
func runSort(t *testing.T, lgP, lgn int, d workload.Dist, seed uint64, long bool, opts Options) (machine.Result, []uint32, []uint32) {
	t.Helper()
	p, n := 1<<uint(lgP), 1<<uint(lgn)
	data := workload.PerProc(d, p, n, seed)
	want := Flatten(data)
	want = append([]uint32(nil), want...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	// Algorithms take ownership; pass copies so `want` stays intact.
	owned := make([][]uint32, p)
	for i := range data {
		owned[i] = append([]uint32(nil), data[i]...)
	}
	m := testMachine(p, long)
	res, err := Sort(m, owned, opts)
	if err != nil {
		t.Fatalf("Sort(%+v): %v", opts, err)
	}
	return res, Flatten(m.Data()), want
}

func checkSorted(t *testing.T, label string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d keys, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: wrong key at %d: got %d want %d", label, i, got[i], want[i])
		}
	}
}

// Every algorithm, in both compute and message modes, must sort every
// distribution.
func TestAllAlgorithmsSortEverything(t *testing.T) {
	dims := [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 5}, {3, 3}, {3, 6}, {4, 4}, {4, 7}, {0, 5}, {3, 2}, {4, 2}, {5, 1}, {6, 2}}
	for _, alg := range []Algorithm{Smart, CyclicBlocked, BlockedMerge} {
		for _, comp := range []Compute{Optimized, Simulated} {
			if alg == BlockedMerge && comp == Simulated {
				continue // blocked-merge has a single implementation
			}
			for _, long := range []bool{true, false} {
				for _, d := range dims {
					lgP, lgn := d[0], d[1]
					if alg == CyclicBlocked && lgn < lgP {
						continue
					}
					for _, dist := range workload.Dists() {
						opts := Options{Algorithm: alg, Compute: comp}
						res, got, want := runSort(t, lgP, lgn, dist, 42, long, opts)
						label := alg.String() + "/" + comp.String() + "/" + dist.String()
						checkSorted(t, label, got, want)
						if res.Time <= 0 {
							t.Errorf("%s: nonpositive model time %v", label, res.Time)
						}
					}
				}
			}
		}
	}
}

// Theorems 2 and 3, end to end: the optimized local computation must
// produce exactly the same distributed data as simulating every network
// step, not merely a sorted result.
func TestOptimizedMatchesSimulatedExactly(t *testing.T) {
	// Includes n < P shapes: the paper notes the smart remapping "does
	// not impose any restriction on N and P" (§3.2), and Lemma 3's
	// special cases must hold there too.
	for _, d := range [][2]int{{2, 3}, {3, 4}, {4, 5}, {3, 7}, {5, 5}, {2, 8}, {4, 4}, {4, 2}, {5, 2}, {6, 1}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		for seed := uint64(1); seed <= 3; seed++ {
			run := func(comp Compute) [][]uint32 {
				data := workload.PerProc(workload.FullRange, p, n, seed)
				owned := make([][]uint32, p)
				for i := range data {
					owned[i] = append([]uint32(nil), data[i]...)
				}
				m := testMachine(p, true)
				if _, err := Sort(m, owned, Options{Algorithm: Smart, Compute: comp}); err != nil {
					t.Fatal(err)
				}
				return m.Data()
			}
			opt := run(Optimized)
			sim := run(Simulated)
			for pi := range opt {
				for l := range opt[pi] {
					if opt[pi][l] != sim[pi][l] {
						t.Fatalf("lgP=%d lgn=%d seed=%d: proc %d local %d: optimized %d, simulated %d",
							lgP, lgn, seed, pi, l, opt[pi][l], sim[pi][l])
					}
				}
			}
		}
	}
}

// The cyclic-blocked optimized computation (strided bitonic merges +
// radix sorts) must also match its own step-by-step simulation exactly.
func TestCyclicBlockedOptimizedMatchesSimulated(t *testing.T) {
	for _, d := range [][2]int{{2, 3}, {3, 4}, {4, 5}, {3, 6}} {
		lgP, lgn := d[0], d[1]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		for seed := uint64(1); seed <= 3; seed++ {
			run := func(comp Compute) [][]uint32 {
				data := workload.PerProc(workload.FullRange, p, n, seed)
				owned := make([][]uint32, p)
				for i := range data {
					owned[i] = append([]uint32(nil), data[i]...)
				}
				m := testMachine(p, true)
				if _, err := Sort(m, owned, Options{Algorithm: CyclicBlocked, Compute: comp}); err != nil {
					t.Fatal(err)
				}
				return m.Data()
			}
			opt := run(Optimized)
			sim := run(Simulated)
			for pi := range opt {
				for l := range opt[pi] {
					if opt[pi][l] != sim[pi][l] {
						t.Fatalf("lgP=%d lgn=%d seed=%d: proc %d local %d differ", lgP, lgn, seed, pi, l)
					}
				}
			}
		}
	}
}

// The measured communication counters must equal the analytic values of
// Chapter 3 / §3.4.
func TestSmartCountersMatchAnalysis(t *testing.T) {
	for _, d := range [][2]int{{2, 4}, {3, 5}, {4, 6}, {4, 8}, {5, 5}} {
		lgP, lgn := d[0], d[1]
		lgN := lgP + lgn
		opts := Options{Algorithm: Smart, Compute: Optimized}
		res, got, want := runSort(t, lgP, lgn, workload.Uniform31, 9, true, opts)
		checkSorted(t, "smart", got, want)
		sched := schedule.New(lgN, lgP, schedule.Head)
		n := 1 << uint(lgn)
		if res.Mean.Remaps != len(sched) {
			t.Errorf("lgP=%d lgn=%d: %d remaps, schedule says %d", lgP, lgn, res.Mean.Remaps, len(sched))
		}
		if res.Mean.VolumeSent != schedule.Volume(sched, n) {
			t.Errorf("lgP=%d lgn=%d: volume %d, analysis says %d", lgP, lgn, res.Mean.VolumeSent, schedule.Volume(sched, n))
		}
		if res.Mean.MessagesSent != schedule.Messages(sched) {
			t.Errorf("lgP=%d lgn=%d: messages %d, analysis says %d", lgP, lgn, res.Mean.MessagesSent, schedule.Messages(sched))
		}
	}
}

func TestCyclicBlockedCountersMatchAnalysis(t *testing.T) {
	for _, d := range [][2]int{{2, 4}, {3, 5}, {4, 6}} {
		lgP, lgn := d[0], d[1]
		n := 1 << uint(lgn)
		opts := Options{Algorithm: CyclicBlocked, Compute: Optimized}
		res, got, want := runSort(t, lgP, lgn, workload.Uniform31, 11, true, opts)
		checkSorted(t, "cyclic-blocked", got, want)
		m := logp.CyclicBlocked(lgP, n)
		if res.Mean.Remaps != m.R {
			t.Errorf("lgP=%d lgn=%d: %d remaps, want %d", lgP, lgn, res.Mean.Remaps, m.R)
		}
		if res.Mean.VolumeSent != m.V {
			t.Errorf("lgP=%d lgn=%d: volume %d, want %d", lgP, lgn, res.Mean.VolumeSent, m.V)
		}
		if res.Mean.MessagesSent != m.M {
			t.Errorf("lgP=%d lgn=%d: messages %d, want %d", lgP, lgn, res.Mean.MessagesSent, m.M)
		}
	}
}

func TestBlockedMergeCountersMatchAnalysis(t *testing.T) {
	for _, d := range [][2]int{{2, 4}, {3, 5}, {4, 6}} {
		lgP, lgn := d[0], d[1]
		n := 1 << uint(lgn)
		res, got, want := runSort(t, lgP, lgn, workload.Uniform31, 13, true, Options{Algorithm: BlockedMerge})
		checkSorted(t, "blocked-merge", got, want)
		m := logp.Blocked(lgP, n)
		if res.Mean.MessagesSent != m.M {
			t.Errorf("lgP=%d lgn=%d: messages %d, want %d", lgP, lgn, res.Mean.MessagesSent, m.M)
		}
		if res.Mean.VolumeSent != m.V {
			t.Errorf("lgP=%d lgn=%d: volume %d, want %d", lgP, lgn, res.Mean.VolumeSent, m.V)
		}
	}
}

// The headline result: smart < cyclic-blocked < blocked-merge in model
// time, at realistic sizes with long messages.
func TestAlgorithmOrdering(t *testing.T) {
	for _, d := range [][2]int{{4, 10}, {5, 10}, {4, 12}} {
		lgP, lgn := d[0], d[1]
		times := map[Algorithm]float64{}
		for _, alg := range []Algorithm{Smart, CyclicBlocked, BlockedMerge} {
			res, got, want := runSort(t, lgP, lgn, workload.Uniform31, 5, true, Options{Algorithm: alg})
			checkSorted(t, alg.String(), got, want)
			times[alg] = res.Time
		}
		if !(times[Smart] < times[CyclicBlocked] && times[CyclicBlocked] < times[BlockedMerge]) {
			t.Errorf("lgP=%d lgn=%d: ordering violated: smart=%.0f cyclic=%.0f blocked=%.0f",
				lgP, lgn, times[Smart], times[CyclicBlocked], times[BlockedMerge])
		}
	}
}

// Long messages must beat short messages (Table 5.3's direction), and
// fusing pack/unpack must beat not fusing (§4.3).
func TestMessageModeAndFusionOrdering(t *testing.T) {
	lgP, lgn := 4, 10
	long, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 3, true, Options{Algorithm: Smart})
	short, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 3, false, Options{Algorithm: Smart})
	if long.Time >= short.Time {
		t.Errorf("long messages (%.0f) should beat short (%.0f)", long.Time, short.Time)
	}
	fused, got, want := runSort(t, lgP, lgn, workload.Uniform31, 3, true, Options{Algorithm: Smart, Fused: true})
	checkSorted(t, "fused", got, want)
	if fused.Time >= long.Time {
		t.Errorf("fused (%.0f) should beat unfused (%.0f)", fused.Time, long.Time)
	}
	if fused.Sum.PackTime != 0 || fused.Sum.UnpackTime != 0 {
		t.Error("fused run should charge no pack/unpack time")
	}
}

// Remap-shift strategies (Lemma 5) must still sort, with simulated
// computation.
func TestStrategiesSort(t *testing.T) {
	for _, strat := range []schedule.Strategy{schedule.Tail, schedule.Middle1, schedule.Middle2} {
		for _, d := range [][2]int{{3, 4}, {4, 5}, {2, 6}} {
			opts := Options{Algorithm: Smart, Compute: Simulated, Strategy: strat}
			_, got, want := runSort(t, d[0], d[1], workload.FullRange, 8, true, opts)
			checkSorted(t, "strategy "+strat.String(), got, want)
		}
	}
}

// Tail must transfer no more than Head (Lemma 5) as measured, not just
// analytically.
func TestTailVolumeNoWorseThanHead(t *testing.T) {
	for _, d := range [][2]int{{4, 10}, {3, 9}, {4, 8}} {
		lgP, lgn := d[0], d[1]
		head, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 2, true,
			Options{Algorithm: Smart, Compute: Simulated, Strategy: schedule.Head})
		tail, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 2, true,
			Options{Algorithm: Smart, Compute: Simulated, Strategy: schedule.Tail})
		if tail.Mean.VolumeSent > head.Mean.VolumeSent {
			t.Errorf("lgP=%d lgn=%d: tail volume %d > head volume %d", lgP, lgn,
				tail.Mean.VolumeSent, head.Mean.VolumeSent)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		p, n int
		opts Options
	}{
		{4, 12, Options{}},                        // non power of two n
		{4, 0, Options{}},                         // empty
		{4, 1, Options{Algorithm: Smart}},         // n too small
		{8, 4, Options{Algorithm: CyclicBlocked}}, // n < P
		{4, 8, Options{Algorithm: Smart, Compute: Optimized, Strategy: schedule.Tail}},
		{4, 8, Options{Algorithm: CyclicBlocked, Fused: true}},
	}
	for i, c := range cases {
		if err := c.opts.Validate(c.p, c.n); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, c)
		}
	}
	if err := (Options{Algorithm: Smart}).Validate(4, 8); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestSortRejectsBadShapes(t *testing.T) {
	m := testMachine(4, true)
	if _, err := Sort(m, make([][]uint32, 3), Options{}); err == nil {
		t.Error("wrong processor count should error")
	}
	data := [][]uint32{make([]uint32, 4), make([]uint32, 4), make([]uint32, 4), make([]uint32, 2)}
	if _, err := Sort(m, data, Options{}); err == nil {
		t.Error("ragged data should error")
	}
}

func TestSingleProcessor(t *testing.T) {
	for _, alg := range []Algorithm{Smart, CyclicBlocked, BlockedMerge} {
		_, got, want := runSort(t, 0, 8, workload.FullRange, 21, true, Options{Algorithm: alg})
		checkSorted(t, "P=1 "+alg.String(), got, want)
	}
}

// Property: random shapes and seeds, all algorithms agree with the
// reference sort.
func TestQuickRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		lgP := 1 + rng.Intn(4)
		lgn := lgP + rng.Intn(4) // keep n >= P so cyclic-blocked is legal
		alg := []Algorithm{Smart, CyclicBlocked, BlockedMerge}[rng.Intn(3)]
		comp := []Compute{Optimized, Simulated}[rng.Intn(2)]
		if alg == BlockedMerge {
			comp = Optimized
		}
		dist := workload.Dists()[rng.Intn(len(workload.Dists()))]
		p, n := 1<<uint(lgP), 1<<uint(lgn)
		data := workload.PerProc(dist, p, n, seed)
		want := append([]uint32(nil), Flatten(data)...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		owned := make([][]uint32, p)
		for i := range data {
			owned[i] = append([]uint32(nil), data[i]...)
		}
		m := testMachine(p, rng.Intn(2) == 0)
		if _, err := Sort(m, owned, Options{Algorithm: alg, Compute: comp}); err != nil {
			return false
		}
		got := Flatten(m.Data())
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FullSort (§4.1 + §4.3 fully fused) must sort everything in the usual
// regime and transfer exactly the same volume as the canonical smart
// implementation, while charging strictly less time.
func TestFullSortMode(t *testing.T) {
	for _, d := range [][2]int{{1, 2}, {2, 4}, {3, 6}, {4, 10}, {5, 15}, {0, 6}} {
		lgP, lgn := d[0], d[1]
		for _, dist := range workload.Dists() {
			opts := Options{Algorithm: Smart, Compute: FullSort}
			res, got, want := runSort(t, lgP, lgn, dist, 17, true, opts)
			checkSorted(t, "fullsort/"+dist.String(), got, want)
			if res.Sum.PackTime != 0 || res.Sum.UnpackTime != 0 {
				t.Fatalf("FullSort must not charge pack/unpack time")
			}
		}
		optRes, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 17, true,
			Options{Algorithm: Smart, Compute: Optimized})
		fsRes, _, _ := runSort(t, lgP, lgn, workload.Uniform31, 17, true,
			Options{Algorithm: Smart, Compute: FullSort})
		if fsRes.Mean.VolumeSent != optRes.Mean.VolumeSent || fsRes.Mean.Remaps != optRes.Mean.Remaps {
			t.Errorf("lgP=%d lgn=%d: FullSort comm counters differ from Optimized: %+v vs %+v",
				lgP, lgn, fsRes.Mean, optRes.Mean)
		}
		if lgP > 0 && fsRes.Time >= optRes.Time {
			t.Errorf("lgP=%d lgn=%d: FullSort (%v) should beat Optimized (%v)", lgP, lgn, fsRes.Time, optRes.Time)
		}
	}
}

// Outside the usual regime FullSort must be rejected, not silently
// wrong.
func TestFullSortRejectedOutsideRegime(t *testing.T) {
	if err := (Options{Algorithm: Smart, Compute: FullSort}).Validate(1<<4, 1<<3); err == nil {
		t.Error("lgP=4 lgn=3 should be outside the usual regime")
	}
	if err := (Options{Algorithm: CyclicBlocked, Compute: FullSort}).Validate(4, 64); err == nil {
		t.Error("FullSort must be Smart-only")
	}
}

// Per-remap messages of FullSort arrive as sorted runs — the §4.3
// precondition. Covered implicitly by sortedness above; here we check
// the stronger per-processor invariant: after every run the machine's
// final data is fully sorted per processor and globally.
func TestFullSortFinalLayoutBlockedSorted(t *testing.T) {
	lgP, lgn := 4, 12
	p, n := 1<<uint(lgP), 1<<uint(lgn)
	data := workload.PerProc(workload.Uniform31, p, n, 23)
	owned := make([][]uint32, p)
	for i := range data {
		owned[i] = append([]uint32(nil), data[i]...)
	}
	m := testMachine(p, true)
	if _, err := Sort(m, owned, Options{Algorithm: Smart, Compute: FullSort}); err != nil {
		t.Fatal(err)
	}
	var prev uint32
	for pi, d := range m.Data() {
		if len(d) != n {
			t.Fatalf("proc %d holds %d keys, want %d (blocked output)", pi, len(d), n)
		}
		for _, v := range d {
			if v < prev {
				t.Fatalf("global order violated at proc %d", pi)
			}
			prev = v
		}
	}
}
