// Package core implements the parallel bitonic sort algorithms the
// paper builds and evaluates, on top of the simulated SPMD machine:
//
//   - Smart: the paper's contribution (Algorithm 1) — the smart-layout
//     remapping schedule of Chapter 3 with the optimized local
//     computation of Chapter 4.
//   - CyclicBlocked: the [CDMS94] baseline of §2.3, alternating blocked
//     and cyclic layouts (two remaps per stage).
//   - BlockedMerge: the [BLM+91] baseline of §5.3, a fixed blocked
//     layout with pairwise remote compare-split steps.
//
// Every algorithm starts from a blocked layout (data[p] holds keys
// p*n .. (p+1)*n-1) and finishes with the keys globally sorted
// ascending in a blocked layout.
package core

import (
	"context"
	"fmt"

	"parbitonic/element"
	"parbitonic/internal/addr"
	"parbitonic/internal/intbits"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
)

// Algorithm selects a parallel sorting algorithm.
type Algorithm int

const (
	// Smart is Algorithm 1 of the paper.
	Smart Algorithm = iota
	// CyclicBlocked is the periodic blocked<->cyclic remapping of §2.3.
	CyclicBlocked
	// BlockedMerge is the fixed-blocked-layout baseline of [BLM+91].
	BlockedMerge
)

// String returns the CLI/metrics name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Smart:
		return "smart"
	case CyclicBlocked:
		return "cyclic-blocked"
	case BlockedMerge:
		return "blocked-merge"
	}
	return "unknown"
}

// Compute selects how the local phases between remaps execute.
type Compute int

const (
	// Optimized replaces compare-exchange simulation with the linear
	// sorts of Chapter 4 (Theorems 2 and 3).
	Optimized Compute = iota
	// Simulated executes every network step as compare-exchange sweeps —
	// the unoptimized local computation, kept as the correctness oracle
	// and for the Chapter 4 ablation.
	Simulated
	// FullSort is the fully fused production variant of §4.1 + §4.3
	// (Figures 4.5 and 4.8): in the usual regime
	// (lgP(lgP+1)/2 <= lg n) every local phase is a single p-way merge
	// of the incoming long messages — each message arrives as a sorted
	// run because the previous phase left every processor fully sorted
	// and the pack masks preserve that order — and packing is folded
	// into the sort's emission. No separate pack or unpack pass exists.
	FullSort
)

// String returns the CLI/metrics name of the compute mode.
func (c Compute) String() string {
	switch c {
	case Optimized:
		return "optimized"
	case Simulated:
		return "simulated"
	case FullSort:
		return "fullsort"
	}
	return "unknown"
}

// Options configures a sort.
type Options struct {
	Algorithm Algorithm // which parallel sort to run
	Compute   Compute   // how the local phases between remaps execute
	// Strategy shifts the smart remaps per Lemma 5. Optimized
	// computation requires Head (the default); other strategies run
	// with Simulated compute.
	Strategy schedule.Strategy
	// Fused folds the pack and unpack passes into the local sorts
	// (§4.3); only meaningful with Smart + Optimized + long messages.
	Fused bool
}

// Validate checks option consistency against a machine and data shape.
func (o Options) Validate(p, n int) error {
	if n < 1 || n&(n-1) != 0 {
		return fmt.Errorf("core: keys per processor must be a positive power of two, got %d", n)
	}
	if p > 1 && n < 2 && o.Algorithm != BlockedMerge {
		return fmt.Errorf("core: %v needs at least 2 keys per processor", o.Algorithm)
	}
	if o.Algorithm == CyclicBlocked && n < p {
		return fmt.Errorf("core: cyclic-blocked requires N >= P^2 (n=%d < P=%d), see §2.3", n, p)
	}
	if o.Compute != Simulated && o.Strategy != schedule.Head {
		return fmt.Errorf("core: %v computation requires the Head remap strategy", o.Compute)
	}
	if o.Fused && (o.Algorithm != Smart || o.Compute == Simulated) {
		return fmt.Errorf("core: fused pack/unpack requires Smart without step simulation")
	}
	if o.Compute == FullSort {
		if o.Algorithm != Smart {
			return fmt.Errorf("core: FullSort applies to the Smart algorithm only")
		}
		lgn, lgP := intbits.Log2(n), intbits.Log2(p)
		if p > 1 && lgP*(lgP+1)/2 > lgn {
			return fmt.Errorf("core: FullSort requires the usual regime lgP(lgP+1)/2 <= lg n (lgP=%d, lgn=%d)", lgP, lgn)
		}
	}
	return nil
}

// Sort runs the selected algorithm on machine m over data (one slice of
// n keys per processor, blocked layout). It takes ownership of data —
// the slices are consumed. On return the machine's processors hold the
// globally sorted keys in blocked layout; retrieve them with m.Data().
func Sort[E element.Elem](m spmd.BackendOf[E], data [][]E, opts Options) (spmd.Result, error) {
	return SortContext(context.Background(), m, data, opts)
}

// SortContext is Sort under a context: cancellation or deadline expiry
// aborts the run with a typed error (spmd.ErrCanceled / ErrDeadline)
// instead of blocking until completion; a processor panic surfaces as
// a *spmd.PanicError. The machine's data is unspecified after a
// failure.
func SortContext[E element.Elem](ctx context.Context, m spmd.BackendOf[E], data [][]E, opts Options) (spmd.Result, error) {
	p := m.P()
	if len(data) != p {
		return spmd.Result{}, fmt.Errorf("core: %d data slices for %d processors", len(data), p)
	}
	n := len(data[0])
	for i, d := range data {
		if len(d) != n {
			return spmd.Result{}, fmt.Errorf("core: processor %d holds %d keys, want %d", i, len(d), n)
		}
	}
	body, err := Compile[E](p, n, opts)
	if err != nil {
		return spmd.Result{}, err
	}
	return m.RunContext(ctx, data, body)
}

// Compile validates opts against the machine shape (p processors of n
// keys each) and builds the per-processor SPMD body, performing every
// shape-dependent construction — remap schedules, plans, gather
// tables — up front. The returned body is shared read-only by all
// processors and stays valid for any machine of the same shape, so an
// engine that sorts repeatedly can compile once and amortize both the
// construction and the closure allocation across runs.
func Compile[E element.Elem](p, n int, opts Options) (func(*spmd.ProcOf[E]), error) {
	if err := opts.Validate(p, n); err != nil {
		return nil, err
	}
	switch opts.Algorithm {
	case Smart:
		// Build the schedule (layouts + remap plans) once; it is shared
		// read-only by all processors.
		var sched []schedule.Remap
		if p > 1 {
			sched = schedule.New(intbits.Log2(n)+intbits.Log2(p), intbits.Log2(p), opts.Strategy)
		}
		return func(pr *spmd.ProcOf[E]) { smartSort(pr, sched, opts) }, nil
	case CyclicBlocked:
		var toCyclic, toBlocked *addr.RemapPlan
		if p > 1 {
			lgN, lgP := intbits.Log2(n)+intbits.Log2(p), intbits.Log2(p)
			toCyclic = addr.NewRemapPlan(addr.Blocked(lgN, lgP), addr.Cyclic(lgN, lgP))
			toBlocked = addr.NewRemapPlan(addr.Cyclic(lgN, lgP), addr.Blocked(lgN, lgP))
		}
		return func(pr *spmd.ProcOf[E]) { cyclicBlockedSort(pr, toCyclic, toBlocked, opts) }, nil
	case BlockedMerge:
		return func(pr *spmd.ProcOf[E]) { blockedMergeSort(pr) }, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
}

// ascFor returns the merge direction of stage `stage` for every element
// on processor proc under layout l. The direction bit (absolute-address
// bit `stage`) must be a processor bit of l, or beyond the address
// width (final stage), in which case the direction is ascending.
func ascFor(l *addr.Layout, proc, stage int) bool {
	if stage >= l.LgN {
		return true
	}
	for i, b := range l.ProcBits {
		if b == stage {
			return proc>>uint(i)&1 == 0
		}
	}
	panic(fmt.Sprintf("core: stage bit %d is not processor-determined under %s", stage, l.Name))
}

// simulateStep executes one network step on the local data of proc pr
// under layout l: compare-exchange every local pair whose absolute
// addresses differ in st.Bit, which must be a local bit of l. This is
// the unoptimized local computation (and the oracle for Chapter 4).
func simulateStep[E element.Elem](pr *spmd.ProcOf[E], l *addr.Layout, st schedule.Step) {
	localBit := -1
	for i, b := range l.LocalBits {
		if b == st.Bit {
			localBit = i
			break
		}
	}
	if localBit == -1 {
		panic(fmt.Sprintf("core: step bit %d is not local under %s", st.Bit, l.Name))
	}
	mask := 1 << uint(localBit)
	switch any(*new(E)).(type) {
	case uint32:
		ordSimulateStep(element.Cast[uint32](pr.Data), pr.ID, l, st, mask)
	case uint64:
		ordSimulateStep(element.Cast[uint64](pr.Data), pr.ID, l, st, mask)
	case float32:
		ordSimulateStep(element.Cast[float32](pr.Data), pr.ID, l, st, mask)
	case float64:
		ordSimulateStep(element.Cast[float64](pr.Data), pr.ID, l, st, mask)
	default:
		kvSimulateStep(element.Cast[element.KV64](pr.Data), pr.ID, l, st, mask)
	}
	pr.ChargeCompareExchange(len(pr.Data))
}

func ordSimulateStep[T element.Ord](data []T, id int, l *addr.Layout, st schedule.Step, mask int) {
	for lo := range data {
		if lo&mask != 0 {
			continue
		}
		hi := lo | mask
		abs := l.Abs(id, lo)
		asc := st.Ascending(abs)
		if (data[lo] > data[hi]) == asc {
			data[lo], data[hi] = data[hi], data[lo]
		}
	}
}

func kvSimulateStep(data []element.KV64, id int, l *addr.Layout, st schedule.Step, mask int) {
	for lo := range data {
		if lo&mask != 0 {
			continue
		}
		hi := lo | mask
		abs := l.Abs(id, lo)
		asc := st.Ascending(abs)
		if (data[lo].K > data[hi].K) == asc {
			data[lo], data[hi] = data[hi], data[lo]
		}
	}
}

// Flatten reassembles the machine's final blocked-layout data into one
// global slice.
func Flatten[E element.Elem](data [][]E) []E {
	var out []E
	for _, d := range data {
		out = append(out, d...)
	}
	return out
}
