package core

import (
	"fmt"

	"parbitonic/element"

	"parbitonic/internal/bitseq"
	"parbitonic/internal/intbits"
	"parbitonic/internal/localsort"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
)

// smartSort is Algorithm 1: local sort for the first lg n stages, then
// the smart-remap schedule with either the Chapter 4 optimized
// computation or the compare-exchange simulation between remaps.
//
// The schedule (with its remap plans) is precomputed once by Sort and
// shared read-only by all processors.
func smartSort[E element.Elem](pr *spmd.ProcOf[E], sched []schedule.Remap, opts Options) {
	n := len(pr.Data)
	lgn, lgP := intbits.Log2(n), intbits.Log2(pr.P())
	lgN := lgn + lgP

	// Stages 1..lg n: entirely local under the blocked layout. Their net
	// effect is one sorted run per processor, alternating direction
	// (Lemma 6 at the input of stage lg n + 1).
	localsort.Sort(pr.Data, pr.ID%2 == 0)
	pr.ChargeRadixSort(n)
	if lgP == 0 {
		return
	}

	if opts.Compute == FullSort {
		fullSortRun(pr, sched, lgn, lgP)
		return
	}
	for _, r := range sched {
		pr.RemapExchange(r.Plan, opts.Fused)
		if opts.Compute == Simulated {
			for _, st := range schedule.StepsFrom(lgN, lgP, r.K, r.S, r.StepsAfter) {
				simulateStep(pr, r.Layout, st)
			}
			continue
		}
		smartPhase(pr, r, lgn, lgP)
	}
}

// fullSortRun is the FullSort (fully fused) execution: in the usual
// regime the schedule is [inside, crossing..., last] and after every
// remap each processor's keys are a permutation of the canonical
// network state at the granularity the next remap routes at, so the
// entire local phase is one merge of the incoming runs:
//
//   - every incoming long message is a sorted run (the sender was fully
//     sorted and the pack mask preserves local order within a message);
//   - merging all runs in the processor's merge-region direction yields
//     the canonical per-processor multiset fully sorted, which is what
//     the next remap needs (§4.1, Figures 4.3-4.5);
//   - packing for the next remap is the merge's emission pass, so no
//     separate pack or unpack pass is charged (§4.3, Figure 4.8).
func fullSortRun[E element.Elem](pr *spmd.ProcOf[E], sched []schedule.Remap, lgn, lgP int) {
	// dirAfter gives the direction processor q's keys are sorted in
	// once remap i's local phase completed: the merge direction of the
	// stage the phase ends in, which is processor-determined.
	dirAfter := func(i, q int) bool {
		r := sched[i]
		switch r.Kind {
		case schedule.Inside:
			return ascFor(r.Layout, q, lgn+r.K)
		case schedule.Crossing:
			return ascFor(r.Layout, q, lgn+r.K+1)
		default: // last: the final stage is ascending everywhere
			return true
		}
	}
	// The first exchange packs the initial radix-sorted keys; afterwards
	// every phase is ONE pass: a p-way merge of the received runs whose
	// emission writes straight into the next remap's message buffers
	// (merge = unpack + sort + pack in a single local computation step,
	// the thesis's first Chapter 7 refinement). Only the final phase
	// materializes a local array.
	n := len(pr.Data)
	dest := make([]int32, n)
	off := make([]int32, n)
	in := pr.RemapExchangeRuns(sched[0].Plan, true)
	// recycle hands the round's consumed message buffers back to the
	// engine pool; the next round's pack reuses them, so steady-state
	// FullSort allocates nothing per remap.
	recycle := func() {
		for _, msg := range in {
			if len(msg) > 0 {
				pr.PutBuf(msg)
			}
		}
	}
	for i, r := range sched {
		// The usual-regime shape Validate guaranteed: an inside remap,
		// then crossings, then the last remap.
		switch {
		case i == 0 && r.Kind != schedule.Inside,
			i > 0 && i < len(sched)-1 && r.Kind != schedule.Crossing,
			i == len(sched)-1 && i > 0 && r.Kind != schedule.Last:
			panic("core: unexpected schedule shape for FullSort")
		}
		runs := make([]localsort.RunOf[E], 0, len(in))
		total := 0
		for src, msg := range in {
			if len(msg) == 0 {
				continue
			}
			srcAsc := src%2 == 0 // after the initial local sorts
			if i > 0 {
				srcAsc = dirAfter(i-1, src)
			}
			runs = append(runs, localsort.RunOf[E]{Keys: msg, Desc: !srcAsc})
			total += len(msg)
		}
		if total != n {
			panic("core: FullSort lost keys across a remap")
		}

		if i == len(sched)-1 {
			// Final phase: the last remap's steps sort ascending; the
			// merge materializes the finished local array.
			merged := make([]E, total)
			localsort.MergeRuns(merged, runs)
			pr.Data = merged
			pr.ChargeMerge(total)
			recycle()
			return
		}

		// Merge-with-pack: element of ascending rank e sits at local
		// index e (ascending region) or n-1-e (descending region), and
		// goes to the next plan's destination slot for that index.
		next := sched[i+1].Plan
		out := pr.PackBuffers(next)
		next.Route(pr.ID, dest, off)
		if dirAfter(i, pr.ID) {
			localsort.MergeRunsEmit(runs, total, func(rank int, v E) {
				out[dest[rank]][off[rank]] = v
			})
		} else {
			localsort.MergeRunsEmit(runs, total, func(rank int, v E) {
				l := n - 1 - rank
				out[dest[l]][off[l]] = v
			})
		}
		pr.ChargeMerge(total)
		recycle()
		in = pr.RemapExchangePrepacked(next, out)
		pr.ClearPackBuffers()
	}
}

// smartPhase runs the optimized local computation for the lg n (or, for
// the last remap, S) steps following remap r, per Theorems 2 and 3.
func smartPhase[E element.Elem](pr *spmd.ProcOf[E], r schedule.Remap, lgn, lgP int) {
	n := len(pr.Data)
	switch r.Kind {
	case schedule.Inside:
		// Theorem 2: the local keys form one bitonic sequence; the lg n
		// steps sort it in the direction of stage lgn+K, which is
		// processor-determined for an inside remap.
		asc := ascFor(r.Layout, pr.ID, lgn+r.K)
		out := make([]E, n)
		bitseq.SortBitonic(out, pr.Data, asc)
		pr.Data = out
		pr.ChargeMerge(n)

	case schedule.Crossing:
		// Theorem 3, phase one: 2^B contiguous blocks of 2^A keys, each
		// bitonic, sorted by the A steps that finish stage lgn+K. The
		// direction bit (absolute bit lgn+K) is the top local bit, i.e.
		// the top bit of the block index.
		blockLen := 1 << uint(r.A)
		topMask := 1 << uint(r.B-1)
		scratch := make([]E, 2*max(blockLen, 1<<uint(r.B)))
		localsort.SortBitonicBlocks(pr.Data, blockLen, func(blk int) bool {
			return blk&topMask == 0
		}, scratch)
		pr.ChargeMerge(n)

		// Theorem 3, phase two: reinterpreting the local address with
		// its low A and high B bit fields interchanged, 2^A interleaved
		// sequences of 2^B keys, each bitonic, sorted by the B steps
		// that open stage lgn+K+1. That stage's direction bit is the
		// lowest bit of the A field — processor-determined.
		asc := ascFor(r.Layout, pr.ID, lgn+r.K+1)
		for d := 0; d < blockLen; d++ {
			localsort.SortBitonicStrided(pr.Data, d, blockLen, 1<<uint(r.B), asc, scratch)
		}
		pr.ChargeMerge(n)

	case schedule.Last:
		// Blocked layout again; S steps of the final stage remain. They
		// sort each contiguous run of 2^S keys (bitonic by Lemma 7)
		// ascending — the final stage is ascending everywhere.
		if r.StepsAfter != r.S {
			panic(fmt.Sprintf("core: last remap executes %d steps, expected %d", r.StepsAfter, r.S))
		}
		localsort.SortBitonicBlocks(pr.Data, 1<<uint(r.S), func(int) bool { return true }, nil)
		pr.ChargeMerge(n)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
