package core

import (
	"fmt"

	"parbitonic/element"

	"parbitonic/internal/bitseq"
	"parbitonic/internal/intbits"
	"parbitonic/internal/localsort"
	"parbitonic/internal/schedule"
	"parbitonic/internal/spmd"
)

// smartSort is Algorithm 1: local sort for the first lg n stages, then
// the smart-remap schedule with either the Chapter 4 optimized
// computation or the compare-exchange simulation between remaps.
//
// The schedule (with its remap plans) is precomputed once by Sort and
// shared read-only by all processors.
func smartSort[E element.Elem](pr *spmd.ProcOf[E], sched []schedule.Remap, opts Options) {
	n := len(pr.Data)
	lgn, lgP := intbits.Log2(n), intbits.Log2(pr.P())
	lgN := lgn + lgP

	// Stages 1..lg n: entirely local under the blocked layout. Their net
	// effect is one sorted run per processor, alternating direction
	// (Lemma 6 at the input of stage lg n + 1). One pooled n-element
	// scratch serves the radix sort and every later local phase, so the
	// whole run allocates nothing in steady state.
	scratch := pr.GetBuf(n)
	localsort.SortScratch(pr.Data, pr.ID%2 == 0, scratch)
	pr.ChargeRadixSort(n)
	if lgP == 0 {
		pr.PutBuf(scratch)
		return
	}

	if opts.Compute == FullSort {
		pr.PutBuf(scratch)
		fullSortRun(pr, sched, lgn, lgP)
		return
	}
	for _, r := range sched {
		if !pr.DirectRemap(r.Plan) {
			pr.RemapExchange(r.Plan, opts.Fused)
		}
		if opts.Compute == Simulated {
			for _, st := range schedule.StepsFrom(lgN, lgP, r.K, r.S, r.StepsAfter) {
				simulateStep(pr, r.Layout, st)
			}
			continue
		}
		scratch = smartPhase(pr, r, lgn, lgP, scratch)
	}
	pr.PutBuf(scratch)
}

// fullScratch is a processor's persistent FullSort working state,
// parked on pr.Scratch between runs: the run table, the round's
// routing views, and the two emission closures. The closures are
// built once — a fresh func literal per round would heap-allocate its
// capture — and read the routing views through the struct, which the
// loop repoints every round.
type fullScratch[E element.Elem] struct {
	runs      []localsort.RunOf[E]
	out       [][]E
	dest, off []int32
	n         int
	emitAsc   func(int, E)
	emitDesc  func(int, E)
}

func newFullScratch[E element.Elem](p int) *fullScratch[E] {
	s := &fullScratch[E]{runs: make([]localsort.RunOf[E], 0, p)}
	// Merge-with-pack emission: the element of ascending rank e sits at
	// local index e (ascending region) or n-1-e (descending region),
	// and goes to the next plan's destination slot for that index.
	s.emitAsc = func(rank int, v E) { s.out[s.dest[rank]][s.off[rank]] = v }
	s.emitDesc = func(rank int, v E) {
		l := s.n - 1 - rank
		s.out[s.dest[l]][s.off[l]] = v
	}
	return s
}

// dirAfterRemap gives the direction processor q's keys are sorted in
// once remap i's local phase completed: the merge direction of the
// stage the phase ends in, which is processor-determined.
func dirAfterRemap(sched []schedule.Remap, lgn, i, q int) bool {
	r := sched[i]
	switch r.Kind {
	case schedule.Inside:
		return ascFor(r.Layout, q, lgn+r.K)
	case schedule.Crossing:
		return ascFor(r.Layout, q, lgn+r.K+1)
	default: // last: the final stage is ascending everywhere
		return true
	}
}

// recycleRuns hands a round's consumed message buffers back to the
// processor's free list; the next round's pack reuses them, so
// steady-state FullSort allocates nothing per remap.
func recycleRuns[E element.Elem](pr *spmd.ProcOf[E], in [][]E) {
	for _, msg := range in {
		if len(msg) > 0 {
			pr.PutBuf(msg)
		}
	}
}

// fullSortRun is the FullSort (fully fused) execution: in the usual
// regime the schedule is [inside, crossing..., last] and after every
// remap each processor's keys are a permutation of the canonical
// network state at the granularity the next remap routes at, so the
// entire local phase is one merge of the incoming runs:
//
//   - every incoming long message is a sorted run (the sender was fully
//     sorted and the pack mask preserves local order within a message);
//   - merging all runs in the processor's merge-region direction yields
//     the canonical per-processor multiset fully sorted, which is what
//     the next remap needs (§4.1, Figures 4.3-4.5);
//   - packing for the next remap is the merge's emission pass, so no
//     separate pack or unpack pass exists (§4.3, Figure 4.8).
func fullSortRun[E element.Elem](pr *spmd.ProcOf[E], sched []schedule.Remap, lgn, lgP int) {
	// The first exchange packs the initial radix-sorted keys; afterwards
	// every phase is ONE pass: a p-way merge of the received runs whose
	// emission writes straight into the next remap's message buffers
	// (merge = unpack + sort + pack in a single local computation step,
	// the thesis's first Chapter 7 refinement). Only the final phase
	// materializes a local array. Routing tables come from the
	// processor's own pack scratch (safe here: prepacked exchanges never
	// run the pack routing) and the run table, routing views and
	// emission closures persist on the processor across rounds AND runs.
	n := len(pr.Data)
	s, _ := pr.Scratch.(*fullScratch[E])
	if s == nil {
		s = newFullScratch[E](pr.P())
		pr.Scratch = s
	}
	in := pr.RemapExchangeRuns(sched[0].Plan, true)
	for i, r := range sched {
		// The usual-regime shape Validate guaranteed: an inside remap,
		// then crossings, then the last remap.
		switch {
		case i == 0 && r.Kind != schedule.Inside,
			i > 0 && i < len(sched)-1 && r.Kind != schedule.Crossing,
			i == len(sched)-1 && i > 0 && r.Kind != schedule.Last:
			panic("core: unexpected schedule shape for FullSort")
		}
		runs := s.runs[:0]
		total := 0
		for src, msg := range in {
			if len(msg) == 0 {
				continue
			}
			srcAsc := src%2 == 0 // after the initial local sorts
			if i > 0 {
				srcAsc = dirAfterRemap(sched, lgn, i-1, src)
			}
			runs = append(runs, localsort.RunOf[E]{Keys: msg, Desc: !srcAsc})
			total += len(msg)
		}
		s.runs = runs
		if total != n {
			panic("core: FullSort lost keys across a remap")
		}

		if i == len(sched)-1 {
			// Final phase: the last remap's steps sort ascending; the
			// merge materializes the finished local array.
			merged := pr.GetBuf(total)
			localsort.MergeRuns(merged, runs)
			pr.Data = merged
			pr.ChargeMerge(total)
			recycleRuns(pr, in)
			return
		}

		next := sched[i+1].Plan
		s.out = pr.PackBuffers(next)
		s.dest, s.off = pr.RouteTables(n)
		s.n = n
		next.Route(pr.ID, s.dest, s.off)
		if dirAfterRemap(sched, lgn, i, pr.ID) {
			localsort.MergeRunsEmit(runs, total, s.emitAsc)
		} else {
			localsort.MergeRunsEmit(runs, total, s.emitDesc)
		}
		pr.ChargeMerge(total)
		recycleRuns(pr, in)
		in = pr.RemapExchangePrepacked(next, s.out)
		pr.ClearPackBuffers()
	}
}

// smartPhase runs the optimized local computation for the lg n (or, for
// the last remap, S) steps following remap r, per Theorems 2 and 3.
// scratch is an n-element pooled buffer owned by the caller; the
// returned slice replaces it (the inside phase ping-pongs it with the
// local array).
func smartPhase[E element.Elem](pr *spmd.ProcOf[E], r schedule.Remap, lgn, lgP int, scratch []E) []E {
	n := len(pr.Data)
	switch r.Kind {
	case schedule.Inside:
		// Theorem 2: the local keys form one bitonic sequence; the lg n
		// steps sort it in the direction of stage lgn+K, which is
		// processor-determined for an inside remap. The sort emits into
		// the scratch buffer, which then becomes the local array and the
		// old array the scratch — a ping-pong, no allocation.
		asc := ascFor(r.Layout, pr.ID, lgn+r.K)
		bitseq.SortBitonic(scratch[:n], pr.Data, asc)
		pr.Data, scratch = scratch[:n], pr.Data
		pr.ChargeMerge(n)

	case schedule.Crossing:
		// Theorem 3, phase one: 2^B contiguous blocks of 2^A keys, each
		// bitonic, sorted by the A steps that finish stage lgn+K. The
		// direction bit (absolute bit lgn+K) is the top local bit, i.e.
		// the top bit of the block index.
		blockLen := 1 << uint(r.A)
		topMask := 1 << uint(r.B-1)
		localsort.SortBitonicBlocks(pr.Data, blockLen, func(blk int) bool {
			return blk&topMask == 0
		}, scratch)
		pr.ChargeMerge(n)

		// Theorem 3, phase two: reinterpreting the local address with
		// its low A and high B bit fields interchanged, 2^A interleaved
		// sequences of 2^B keys, each bitonic, sorted by the B steps
		// that open stage lgn+K+1. That stage's direction bit is the
		// lowest bit of the A field — processor-determined. The batch
		// kernel sweeps the columns in cache-sized groups.
		asc := ascFor(r.Layout, pr.ID, lgn+r.K+1)
		localsort.SortBitonicStridedBatch(pr.Data, blockLen, 1<<uint(r.B), asc, scratch)
		pr.ChargeMerge(n)

	case schedule.Last:
		// Blocked layout again; S steps of the final stage remain. They
		// sort each contiguous run of 2^S keys (bitonic by Lemma 7)
		// ascending — the final stage is ascending everywhere.
		if r.StepsAfter != r.S {
			panic(fmt.Sprintf("core: last remap executes %d steps, expected %d", r.StepsAfter, r.S))
		}
		localsort.SortBitonicBlocks(pr.Data, 1<<uint(r.S), func(int) bool { return true }, scratch)
		pr.ChargeMerge(n)
	}
	return scratch
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
