// Package asciichart renders small line charts as text, so the
// figures of the paper's evaluation (Figures 5.1-5.8) can be inspected
// directly in a terminal next to their data tables. Rendering is
// deterministic: same input, same output.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a categorical-x line chart: every series must have one Y
// value per X label.
type Chart struct {
	Title   string
	YLabel  string
	XLabels []string
	Series  []Series
	// Height is the number of plot rows (default 12).
	Height int
}

// markers distinguish series on the grid; the first series wins
// collisions (drawn last wins would hide the headline series).
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart. It returns an error-free string even for
// degenerate inputs (empty series render as an empty frame).
func (c *Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	cols := len(c.XLabels)
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if cols == 0 || len(c.Series) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if hi == lo {
		hi = lo + 1
	}

	const colWidth = 7
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	// Plot series in reverse so series 0's marker survives collisions.
	for si := len(c.Series) - 1; si >= 0; si-- {
		s := c.Series[si]
		mark := markers[si%len(markers)]
		for x, v := range s.Y {
			if x >= cols {
				break
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[row][x*colWidth+colWidth/2] = mark
		}
	}

	axisw := 10
	for r := 0; r < height; r++ {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		label := ""
		if r == 0 || r == height-1 || r == height/2 {
			label = trimNum(yVal)
		}
		fmt.Fprintf(&sb, "%*s |%s\n", axisw, label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%*s +%s\n", axisw, "", strings.Repeat("-", cols*colWidth))
	sb.WriteString(strings.Repeat(" ", axisw+2))
	for _, xl := range c.XLabels {
		fmt.Fprintf(&sb, "%-*s", colWidth, clip(xl, colWidth-1))
	}
	sb.WriteString("\n")
	if c.YLabel != "" {
		fmt.Fprintf(&sb, "%*s (y: %s)\n", axisw, "", c.YLabel)
	}
	for i, s := range c.Series {
		fmt.Fprintf(&sb, "%*s %c = %s\n", axisw, "", markers[i%len(markers)], s.Name)
	}
	return sb.String()
}

func trimNum(v float64) string {
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w]
}
