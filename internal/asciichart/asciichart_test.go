package asciichart

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:   "demo",
		YLabel:  "µs/key",
		XLabels: []string{"128K", "256K", "512K"},
		Series: []Series{
			{Name: "smart", Y: []float64{0.5, 0.5, 0.6}},
			{Name: "blocked", Y: []float64{1.2, 1.3, 1.3}},
		},
	}
	out := c.Render()
	for _, want := range []string{"demo", "128K", "256K", "512K", "* = smart", "o = blocked", "µs/key"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers not plotted:\n%s", out)
	}
	// The max label (1.3) must appear on the top axis row and the min
	// (0.5) on the bottom.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "1.3") {
		t.Errorf("top row should carry the max label: %q", lines[1])
	}
}

func TestRenderDeterministic(t *testing.T) {
	c := &Chart{XLabels: []string{"a", "b"}, Series: []Series{{Name: "s", Y: []float64{1, 2}}}}
	if c.Render() != c.Render() {
		t.Error("render must be deterministic")
	}
}

func TestRenderDegenerate(t *testing.T) {
	if out := (&Chart{Title: "empty"}).Render(); !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart: %q", out)
	}
	// Flat series (hi == lo) must not divide by zero.
	c := &Chart{XLabels: []string{"x"}, Series: []Series{{Name: "flat", Y: []float64{5}}}}
	if out := c.Render(); !strings.Contains(out, "flat") {
		t.Errorf("flat chart broken: %q", out)
	}
	// Series with no points.
	c2 := &Chart{XLabels: []string{"x"}, Series: []Series{{Name: "none"}}}
	if out := c2.Render(); !strings.Contains(out, "no data") && !strings.Contains(out, "none") {
		t.Errorf("pointless series: %q", out)
	}
}

func TestMarkerOrderFavorsFirstSeries(t *testing.T) {
	// Two series with identical values collide on every point; series
	// 0's marker must win.
	c := &Chart{
		XLabels: []string{"a", "b"},
		Series: []Series{
			{Name: "first", Y: []float64{1, 2}},
			{Name: "second", Y: []float64{1, 2}},
		},
	}
	out := c.Render()
	if strings.Count(out, "o") > strings.Count(out, "* = ")+1 {
		t.Errorf("second series should be hidden under the first:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("first series missing:\n%s", out)
	}
}

func TestClipAndTrim(t *testing.T) {
	if clip("abcdefgh", 4) != "abcd" {
		t.Error("clip")
	}
	if clip("ab", 4) != "ab" {
		t.Error("clip short")
	}
	if trimNum(12345) != "1.23e+04" && trimNum(12345) != "12345" {
		// %.3g formatting
		t.Logf("trimNum(12345) = %q", trimNum(12345))
	}
	if trimNum(0.5) != "0.50" {
		t.Errorf("trimNum(0.5) = %q", trimNum(0.5))
	}
	if trimNum(42) != "42.0" {
		t.Errorf("trimNum(42) = %q", trimNum(42))
	}
}
