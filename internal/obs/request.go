package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
)

// Request identity. A request ID is the join key of the whole
// observability story: the HTTP layer mints one (or adopts the
// caller's X-Request-ID / W3C traceparent trace-id), the serve layer
// threads it through queue admission, batching, engine runs, retries
// and the degraded fallback via context, and every exporter — span
// stream, event stream, structured logs, the /debug/sortz page —
// carries it, so "where did this request's 40ms go?" is answerable
// from any of them.

// MaxRequestIDLen caps an adopted request ID; longer client-supplied
// values are truncated so a hostile header cannot bloat logs and
// traces.
const MaxRequestIDLen = 128

// reqKey is the context key request IDs travel under. A context
// carries a []string: one ID for a solo request, the coalesced set for
// a batched engine run.
type reqKey struct{}

// reqSeq disambiguates minted IDs if the system randomness source ever
// fails (it practically cannot); the counter suffix keeps IDs unique.
var reqSeq atomic.Uint64

// NewRequestID mints a fresh 16-hex-digit request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx carrying id as the request's identity,
// replacing any IDs already present. Empty ids are not stored.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqKey{}, []string{id})
}

// WithRequestIDs returns ctx carrying the full ID set of a coalesced
// batch, replacing any IDs already present.
func WithRequestIDs(ctx context.Context, ids []string) context.Context {
	if len(ids) == 0 {
		return ctx
	}
	return context.WithValue(ctx, reqKey{}, ids)
}

// RequestIDFrom returns the (first) request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	if ids, _ := ctx.Value(reqKey{}).([]string); len(ids) > 0 {
		return ids[0]
	}
	return ""
}

// RequestIDsFrom returns all request IDs carried by ctx (nil when
// none): one for a solo request, N for a batched engine run. The
// returned slice is shared — callers must not mutate it.
func RequestIDsFrom(ctx context.Context) []string {
	ids, _ := ctx.Value(reqKey{}).([]string)
	return ids
}

// CleanRequestID sanitizes a client-supplied request ID for adoption:
// it is truncated to MaxRequestIDLen and control characters (which
// would corrupt log lines and the Prometheus exposition) are rejected
// wholesale — a client that sends garbage gets a minted ID instead.
func CleanRequestID(id string) string {
	if len(id) > MaxRequestIDLen {
		id = id[:MaxRequestIDLen]
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] == 0x7f {
			return ""
		}
	}
	return id
}

// ParseTraceparent extracts the trace-id of a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") so a
// request arriving from an instrumented mesh joins our telemetry on
// the ID its distributed trace already carries. Returns "" when the
// header is not a valid traceparent or its trace-id is all zero.
func ParseTraceparent(h string) string {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return ""
	}
	if !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) {
		return ""
	}
	if parts[1] == strings.Repeat("0", 32) {
		return ""
	}
	return parts[1]
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
