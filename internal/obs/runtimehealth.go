package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
)

// Runtime health: the Go runtime signals that explain tail latency the
// request pipeline itself cannot — GC pauses stall every processor
// goroutine at once, scheduler latency delays barrier handoffs, heap
// growth forecasts the next pause. Sampled from runtime/metrics on the
// same scrape path as everything else, so one Prometheus query joins
// "p99 went up" with "because the heap doubled".

// runtimeSamples are the runtime/metrics series the sampler reads.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeHealth samples the Go runtime's health signals on demand —
// no background goroutine; WriteProm reads runtime/metrics at scrape
// time. Safe for concurrent use (each call reads into its own sample
// buffer).
type RuntimeHealth struct{}

// NewRuntimeHealth returns the sampler.
func NewRuntimeHealth() *RuntimeHealth { return &RuntimeHealth{} }

// histQuantile reads an approximate q-quantile off a runtime/metrics
// bucketed histogram: the upper bound of the bucket where the
// cumulative count crosses q. Returns 0 for an empty histogram;
// +Inf-bounded overflow falls back to the last finite bound.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i+1] is the bucket's upper bound; the histogram has
			// len(Counts)+1 boundaries.
			ub := h.Buckets[i+1]
			if ub > 1e300 { // +Inf overflow bucket
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// WriteProm samples the runtime and writes the health gauges in the
// Prometheus text exposition format: heap bytes, goroutine count, GC
// cycle counter, and p50/p99 of the runtime's GC-pause and
// scheduler-latency histograms. Every series is emitted on every
// scrape (no absent-vs-zero ambiguity).
func (r *RuntimeHealth) WriteProm(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	u64 := func(s metrics.Sample) uint64 {
		if s.Value.Kind() == metrics.KindUint64 {
			return s.Value.Uint64()
		}
		return 0
	}
	hist := func(s metrics.Sample) *metrics.Float64Histogram {
		if s.Value.Kind() == metrics.KindFloat64Histogram {
			return s.Value.Float64Histogram()
		}
		return nil
	}

	p("# HELP parbitonic_runtime_heap_bytes Live heap object bytes (runtime/metrics).\n")
	p("# TYPE parbitonic_runtime_heap_bytes gauge\n")
	p("parbitonic_runtime_heap_bytes %d\n", u64(samples[0]))

	p("# HELP parbitonic_runtime_goroutines Live goroutine count.\n")
	p("# TYPE parbitonic_runtime_goroutines gauge\n")
	p("parbitonic_runtime_goroutines %d\n", u64(samples[1]))

	p("# HELP parbitonic_runtime_gc_cycles_total Completed GC cycles.\n")
	p("# TYPE parbitonic_runtime_gc_cycles_total counter\n")
	p("parbitonic_runtime_gc_cycles_total %d\n", u64(samples[2]))

	p("# HELP parbitonic_runtime_gc_pause_seconds GC stop-the-world pause quantiles since process start.\n")
	p("# TYPE parbitonic_runtime_gc_pause_seconds gauge\n")
	gp := hist(samples[3])
	p("parbitonic_runtime_gc_pause_seconds{q=\"0.5\"} %g\n", sanitize(histQuantile(gp, 0.5)))
	p("parbitonic_runtime_gc_pause_seconds{q=\"0.99\"} %g\n", sanitize(histQuantile(gp, 0.99)))

	p("# HELP parbitonic_runtime_sched_latency_seconds Goroutine scheduling latency quantiles since process start.\n")
	p("# TYPE parbitonic_runtime_sched_latency_seconds gauge\n")
	sl := hist(samples[4])
	p("parbitonic_runtime_sched_latency_seconds{q=\"0.5\"} %g\n", sanitize(histQuantile(sl, 0.5)))
	p("parbitonic_runtime_sched_latency_seconds{q=\"0.99\"} %g\n", sanitize(histQuantile(sl, 0.99)))

	return err
}

// Snapshot returns the sampler's signals as a plain map for the sortz
// JSON payload.
func (r *RuntimeHealth) Snapshot() map[string]any {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	out := map[string]any{}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		out["heap_bytes"] = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		out["goroutines"] = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		out["gc_cycles"] = samples[2].Value.Uint64()
	}
	if samples[3].Value.Kind() == metrics.KindFloat64Histogram {
		out["gc_pause_p99_s"] = sanitize(histQuantile(samples[3].Value.Float64Histogram(), 0.99))
	}
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		out["sched_latency_p99_s"] = sanitize(histQuantile(samples[4].Value.Float64Histogram(), 0.99))
	}
	return out
}
