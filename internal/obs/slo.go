package obs

import "time"

// SLO machinery: a latency objective ("target fraction of requests
// complete under threshold") tracked as an error-budget burn rate over
// a sliding window, the way SRE-style alerting consumes it. A burn
// rate of 1.0 means breaches arrive exactly as fast as the budget
// allows; sustained burn well above 1 means the objective will be
// missed and the service should stop advertising itself as ready.

// SLOConfig is a latency objective. The zero value disables tracking.
type SLOConfig struct {
	// Threshold is the latency bound a request must finish under to
	// count as within-objective.
	Threshold time.Duration
	// Target is the fraction of requests that must meet Threshold,
	// e.g. 0.99. Must be in (0, 1) for tracking to engage.
	Target float64
	// UnreadyBurn is the burn rate at which Ready degrades to false
	// (sustained over the window). 0 means the default 2.0.
	UnreadyBurn float64
	// MinSamples is how many requests the window must hold before the
	// tracker will declare unreadiness — a single slow request on an
	// idle server is not an incident. 0 means the default 10.
	MinSamples int
}

// Enabled reports whether the config describes a live objective.
func (c SLOConfig) Enabled() bool {
	return c.Threshold > 0 && c.Target > 0 && c.Target < 1
}

// sloWindowSecs is the sliding-window length of the burn-rate
// computation: 60 one-second buckets.
const sloWindowSecs = 60

// SLOTracker counts within/over-threshold requests in a ring of
// one-second buckets and derives the burn rate over the last minute.
// Not safe for concurrent use; callers lock (serve.Metrics does).
type SLOTracker struct {
	cfg      SLOConfig
	total    [sloWindowSecs]float64 // requests per second-bucket
	breach   [sloWindowSecs]float64 // over-threshold requests per bucket
	bucketAt int64                  // unix second the current bucket maps to
	cumTotal float64                // lifetime request count
	cumBre   float64                // lifetime breach count

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewSLOTracker builds a tracker for cfg; returns nil when cfg is
// disabled (callers treat a nil tracker as "no objective").
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.UnreadyBurn <= 0 {
		cfg.UnreadyBurn = 2.0
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	return &SLOTracker{cfg: cfg, now: time.Now}
}

// Config returns the objective being tracked.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// rotate advances the ring to the wall second `sec`, zeroing buckets
// the window slid past.
func (t *SLOTracker) rotate(sec int64) {
	if t.bucketAt == 0 {
		t.bucketAt = sec
		return
	}
	gap := sec - t.bucketAt
	if gap <= 0 {
		return
	}
	if gap > sloWindowSecs {
		gap = sloWindowSecs
	}
	for i := int64(1); i <= gap; i++ {
		idx := (t.bucketAt + i) % sloWindowSecs
		t.total[idx] = 0
		t.breach[idx] = 0
	}
	t.bucketAt = sec
}

// Observe records one completed request's end-to-end latency.
func (t *SLOTracker) Observe(d time.Duration) {
	sec := t.now().Unix()
	t.rotate(sec)
	idx := sec % sloWindowSecs
	t.total[idx]++
	t.cumTotal++
	if d > t.cfg.Threshold {
		t.breach[idx]++
		t.cumBre++
	}
}

// BurnRate returns the error-budget burn rate over the sliding window:
// (observed breach fraction) / (allowed breach fraction). 0 when the
// window is empty; 1.0 means the budget is being spent exactly at the
// sustainable rate.
func (t *SLOTracker) BurnRate() float64 {
	t.rotate(t.now().Unix())
	var total, breach float64
	for i := range t.total {
		total += t.total[i]
		breach += t.breach[i]
	}
	if total == 0 {
		return 0
	}
	return (breach / total) / (1 - t.cfg.Target)
}

// WindowCounts returns the sliding window's totals (requests,
// breaches).
func (t *SLOTracker) WindowCounts() (total, breach float64) {
	t.rotate(t.now().Unix())
	for i := range t.total {
		total += t.total[i]
		breach += t.breach[i]
	}
	return total, breach
}

// Totals returns the lifetime counters (requests observed, breaches).
func (t *SLOTracker) Totals() (total, breach float64) {
	return t.cumTotal, t.cumBre
}

// Ready reports whether the service should advertise readiness under
// this objective, with the current burn rate: false once the window
// holds at least MinSamples requests and the burn rate has reached
// UnreadyBurn — sustained burn, not a single slow request.
func (t *SLOTracker) Ready() (bool, float64) {
	burn := t.BurnRate()
	total, _ := t.WindowCounts()
	if total >= float64(t.cfg.MinSamples) && burn >= t.cfg.UnreadyBurn {
		return false, burn
	}
	return true, burn
}
