package obs

import (
	"log/slog"
	"sort"
	"strings"
	"sync"
)

// SlogSink is a Sink that writes structured run logs through log/slog:
// one record per run start, one per run end (with the full counter and
// phase-time summary), and one per runtime event. Span flushes are
// deliberately not logged — a 16-processor sort produces thousands of
// spans per second, which belongs in the Chrome trace, not in logs.
type SlogSink struct {
	log *slog.Logger

	mu    sync.Mutex
	metas []RunMeta // open runs, matched FIFO to RunEnd calls
}

// NewSlogSink wraps a logger; nil uses slog.Default().
func NewSlogSink(l *slog.Logger) *SlogSink {
	if l == nil {
		l = slog.Default()
	}
	return &SlogSink{log: l}
}

// RunStart implements Sink: one Info line per run start.
func (s *SlogSink) RunStart(m RunMeta) {
	s.mu.Lock()
	s.metas = append(s.metas, m)
	s.mu.Unlock()
	args := []any{slog.Int("procs", m.P), slog.Int("keys", m.Keys)}
	if len(m.Requests) > 0 {
		args = append(args, slog.String("requests", strings.Join(m.Requests, ",")))
	}
	args = append(args, labelAttrs(m.Labels)...)
	s.log.Info("sort run started", args...)
}

// FlushSpans implements Sink as a no-op — per-span logging would be
// far too chatty for a log stream.
func (s *SlogSink) FlushSpans(int, []Span) {}

// Emit implements Sink: one Warn line per runtime event, carrying the
// owning request ID(s) when the event is request-scoped so logs join
// traces and metrics on one key.
func (s *SlogSink) Emit(e Event) {
	args := []any{
		slog.String("kind", e.Kind),
		slog.Int("proc", e.Proc),
		slog.Int("round", e.Round),
		slog.String("detail", e.Detail),
	}
	if e.Req != "" {
		args = append(args, slog.String("requests", e.Req))
	}
	s.log.Warn("runtime event", args...)
}

// RunEnd implements Sink: one Info (or Error) line per completed run.
func (s *SlogSink) RunEnd(sum RunSummary) {
	s.mu.Lock()
	var meta RunMeta
	if len(s.metas) > 0 {
		meta = s.metas[0]
		s.metas = s.metas[1:]
	}
	s.mu.Unlock()

	args := []any{
		slog.Float64("makespan_us", sum.Makespan),
		slog.Float64("wall_s", sum.WallSeconds),
		slog.Int("keys", sum.Keys),
		slog.Int("remaps", sum.Remaps),
		slog.Int("volume_keys", sum.Volume),
		slog.Int("messages", sum.Messages),
		slog.Float64("compute_us", sum.ComputeTime),
		slog.Float64("pack_us", sum.PackTime),
		slog.Float64("transfer_us", sum.TransferTime),
		slog.Float64("unpack_us", sum.UnpackTime),
	}
	if len(meta.Requests) > 0 {
		args = append(args, slog.String("requests", strings.Join(meta.Requests, ",")))
	}
	args = append(args, labelAttrs(meta.Labels)...)
	if sum.Err != "" {
		args = append(args, slog.String("err", sum.Err))
		s.log.Error("sort run failed", args...)
		return
	}
	s.log.Info("sort run finished", args...)
}

func labelAttrs(labels map[string]string) []any {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, slog.String(k, labels[k]))
	}
	return out
}
