package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseCompute: "compute", PhasePack: "pack", PhaseTransfer: "transfer",
		PhaseUnpack: "unpack", PhaseWait: "wait", PhaseAbort: "abort",
		NumPhases: "unknown",
	}
	for ph, w := range want {
		if got := ph.String(); got != w {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, got, w)
		}
	}
}

// recordingSink counts calls, for Multi fan-out checks.
type recordingSink struct {
	mu                           sync.Mutex
	starts, flushes, emits, ends int
	spans                        int
}

func (r *recordingSink) RunStart(RunMeta) { r.mu.Lock(); r.starts++; r.mu.Unlock() }
func (r *recordingSink) FlushSpans(_ int, s []Span) {
	r.mu.Lock()
	r.flushes++
	r.spans += len(s)
	r.mu.Unlock()
}
func (r *recordingSink) Emit(Event)        { r.mu.Lock(); r.emits++; r.mu.Unlock() }
func (r *recordingSink) RunEnd(RunSummary) { r.mu.Lock(); r.ends++; r.mu.Unlock() }

func TestMultiFanOutSkipsNil(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	m := Multi(a, nil, b, Nop{})
	m.RunStart(RunMeta{P: 4})
	m.FlushSpans(0, []Span{{Phase: PhaseCompute, End: 1}, {Phase: PhaseWait, End: 2}})
	m.Emit(Event{Kind: EventFault})
	m.RunEnd(RunSummary{})
	for _, s := range []*recordingSink{a, b} {
		if s.starts != 1 || s.flushes != 1 || s.spans != 2 || s.emits != 1 || s.ends != 1 {
			t.Fatalf("fan-out miscounted: %+v", s)
		}
	}
}

func TestChromeTraceJSON(t *testing.T) {
	c := NewChromeTrace()
	c.RunStart(RunMeta{P: 2, Keys: 128, Labels: map[string]string{"alg": "smart-bitonic", "backend": "native"}})
	c.FlushSpans(0, []Span{
		{Proc: 0, Round: 0, Phase: PhaseCompute, Start: 0, End: 10},
		{Proc: 0, Round: 0, Phase: PhaseTransfer, Start: 10, End: 12},
	})
	c.FlushSpans(1, []Span{{Proc: 1, Round: 1, Phase: PhaseWait, Start: 3, End: 9}})
	c.Emit(Event{Kind: EventFault, Proc: 1, Round: 1, Clock: 5, Detail: "crash@proc1/round1"})
	c.RunEnd(RunSummary{})

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var threads, complete, instants int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads++
				args := ev["args"].(map[string]any)
				names[args["name"].(string)] = true
			}
		case "X":
			complete++
		case "i":
			instants++
		}
	}
	if threads != 2 || !names["proc 0"] || !names["proc 1"] {
		t.Fatalf("want one named track per processor, got %d (%v)", threads, names)
	}
	if complete != 3 {
		t.Fatalf("want 3 complete span events, got %d", complete)
	}
	if instants != 1 {
		t.Fatalf("want 1 instant event for the fault, got %d", instants)
	}
	if got := c.Spans(); len(got) != 3 || got[0].Proc != 0 || got[2].Proc != 1 {
		t.Fatalf("Spans() not sorted by proc: %+v", got)
	}
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
}

func TestMetricsAggregationAndProm(t *testing.T) {
	m := NewMetrics()
	m.RunStart(RunMeta{P: 4, Keys: 1024})
	m.FlushSpans(0, []Span{
		{Phase: PhaseCompute, Start: 0, End: 100},    // 100 µs
		{Phase: PhaseTransfer, Start: 100, End: 150}, // 50 µs
	})
	m.Emit(Event{Kind: EventFault})
	m.Emit(Event{Kind: EventVerifyFailure})
	m.Emit(Event{Kind: EventVerifyFailure})
	m.RunEnd(RunSummary{Keys: 1024, Remaps: 20, Volume: 512, Messages: 60, Makespan: 1500, WallSeconds: 0.002})
	m.RunEnd(RunSummary{Err: "boom"})

	if got := m.RunCount("ok"); got != 1 {
		t.Fatalf("ok runs = %v, want 1", got)
	}
	if got := m.RunCount("error"); got != 1 {
		t.Fatalf("error runs = %v, want 1", got)
	}
	if got := m.EventCount(EventVerifyFailure); got != 2 {
		t.Fatalf("verify failures = %v, want 2", got)
	}
	if sec, n := m.PhaseSeconds(PhaseCompute); n != 1 || sec < 99e-6 || sec > 101e-6 {
		t.Fatalf("compute phase = (%v, %d), want ~100µs over 1 span", sec, n)
	}

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`parbitonic_runs_total{outcome="ok"} 1`,
		`parbitonic_runs_total{outcome="error"} 1`,
		`parbitonic_events_total{kind="fault"} 1`,
		`parbitonic_events_total{kind="verify-failure"} 2`,
		`parbitonic_events_total{kind="cancel"} 0`, // pre-registered at zero
		`parbitonic_keys_sorted_total 1024`,
		`parbitonic_remaps_total 20`,
		`parbitonic_volume_keys_total 512`,
		`parbitonic_messages_total 60`,
		`parbitonic_phase_seconds_bucket{phase="compute",le="0.0001"} 1`,
		`parbitonic_phase_seconds_count{phase="compute"} 1`,
		`parbitonic_run_makespan_seconds_count 1`,
		`parbitonic_run_wall_seconds_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n----\n%s", want, text)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.RunEnd(RunSummary{Keys: 64})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":    "parbitonic_runs_total",
		"/debug/vars": `"parbitonic"`,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s missing %q:\n%s", path, want, buf.String())
		}
	}
	if v := m.ExpvarFunc().String(); !strings.Contains(v, "keys_sorted") {
		t.Errorf("expvar snapshot missing keys_sorted: %s", v)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	var h histogram
	h.observe(1e-6) // exactly on the first bound: le="1e-06" must include it
	h.observe(2e-6)
	h.observe(1000) // beyond every bound: only +Inf
	if h.counts[0] != 1 {
		t.Errorf("first bucket = %d, want 1 (boundary value is <= bound)", h.counts[0])
	}
	if h.counts[1] != 1 {
		t.Errorf("second bucket = %d, want 1", h.counts[1])
	}
	if h.counts[len(histBuckets)] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.counts[len(histBuckets)])
	}
	if h.count != 3 {
		t.Errorf("count = %d, want 3", h.count)
	}
}

func TestSlogSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewSlogSink(slog.New(slog.NewTextHandler(&buf, nil)))
	s.RunStart(RunMeta{P: 8, Keys: 4096, Labels: map[string]string{"alg": "smart-bitonic"}})
	s.FlushSpans(0, []Span{{Phase: PhaseCompute, End: 1}}) // must not log
	s.Emit(Event{Kind: EventDeadline, Proc: 3, Detail: "deadline exceeded"})
	s.RunEnd(RunSummary{Keys: 4096, Makespan: 123, Remaps: 8})
	s.RunStart(RunMeta{P: 2})
	s.RunEnd(RunSummary{Err: "injected crash"})

	out := buf.String()
	for _, want := range []string{
		"sort run started", "procs=8", "alg=smart-bitonic",
		"runtime event", "kind=deadline",
		"sort run finished", "remaps=8",
		"sort run failed", `err="injected crash"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q\n----\n%s", want, out)
		}
	}
	// 2 starts + 1 event + 1 finish + 1 failure; span flushes add nothing.
	if strings.Count(out, "\n") != 5 {
		t.Errorf("want exactly 5 log records, got:\n%s", out)
	}
}

func TestConcurrentSinkUse(t *testing.T) {
	m := NewMetrics()
	c := NewChromeTrace()
	sink := Multi(m, c)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sink.FlushSpans(p, []Span{{Proc: p, Phase: PhaseCompute, Start: float64(i), End: float64(i) + 1}})
				sink.Emit(Event{Kind: EventAbort, Proc: p})
			}
		}(p)
	}
	wg.Wait()
	if _, n := m.PhaseSeconds(PhaseCompute); n != 400 {
		t.Fatalf("compute spans = %d, want 400", n)
	}
	if got := m.EventCount(EventAbort); got != 400 {
		t.Fatalf("abort events = %v, want 400", got)
	}
	if got := len(c.Spans()); got != 400 {
		t.Fatalf("chrome spans = %d, want 400", got)
	}
}
