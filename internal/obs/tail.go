package obs

import "sort"

// P2Quantile is a streaming quantile estimator using the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers track the running
// quantile in O(1) space and O(1) time per observation, no sample
// buffer. It is how the serve layer keeps live p50/p95/p99 tail
// estimates per element type without retaining request latencies.
//
// Accuracy is that of the published algorithm — a few percent of the
// true quantile on smooth distributions, exact until the fifth
// observation (the markers are seeded from the first five sorted
// samples). Not safe for concurrent use; callers lock.
type P2Quantile struct {
	q    float64    // target quantile in (0, 1)
	n    int        // observations seen
	pos  [5]float64 // marker positions (1-based ranks)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
	h    [5]float64 // marker heights (the value estimates)
}

// NewP2Quantile returns an estimator for quantile q in (0, 1).
func NewP2Quantile(q float64) *P2Quantile {
	p := &P2Quantile{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Observe feeds one sample.
func (p *P2Quantile) Observe(v float64) {
	if p.n < 5 {
		p.h[p.n] = v
		p.n++
		if p.n == 5 {
			sort.Float64s(p.h[:])
			for i := 0; i < 5; i++ {
				p.pos[i] = float64(i + 1)
				p.want[i] = 1 + 4*p.inc[i]
			}
		}
		return
	}

	// Find the cell v falls into and bump the end markers.
	var k int
	switch {
	case v < p.h[0]:
		p.h[0] = v
		k = 0
	case v >= p.h[4]:
		p.h[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	p.n++
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}

	// Nudge the three interior markers toward their desired positions,
	// parabolic interpolation first, linear as the fallback.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			hp := p.parabolic(i, s)
			if p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height update for marker i
// moving by s (±1).
func (p *P2Quantile) parabolic(i int, s float64) float64 {
	return p.h[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height update when the parabola overshoots a
// neighboring marker.
func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Count returns the number of observations seen.
func (p *P2Quantile) Count() int { return p.n }

// Value returns the current quantile estimate; 0 before any
// observation. Until five samples have arrived the estimate is read
// off the sorted sample set directly.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		s := append([]float64(nil), p.h[:p.n]...)
		sort.Float64s(s)
		i := int(p.q * float64(p.n-1))
		return s[i]
	}
	return p.h[2]
}
