package obs

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("minted IDs must be 16 hex digits, got %q, %q", a, b)
	}
	if !isHex(a) || !isHex(b) {
		t.Fatalf("minted IDs must be hex, got %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("two minted IDs collided: %q", a)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id := RequestIDFrom(ctx); id != "" {
		t.Fatalf("empty context carries ID %q", id)
	}
	if got := WithRequestID(ctx, ""); got != ctx {
		t.Fatal("empty ID must not be stored")
	}
	ctx = WithRequestID(ctx, "abc")
	if id := RequestIDFrom(ctx); id != "abc" {
		t.Fatalf("RequestIDFrom = %q, want abc", id)
	}
	// A batch's ID set replaces the solo ID; the first is the head.
	ctx = WithRequestIDs(ctx, []string{"x", "y", "z"})
	if id := RequestIDFrom(ctx); id != "x" {
		t.Fatalf("RequestIDFrom after batch = %q, want x", id)
	}
	ids := RequestIDsFrom(ctx)
	if len(ids) != 3 || ids[2] != "z" {
		t.Fatalf("RequestIDsFrom = %v", ids)
	}
}

func TestCleanRequestID(t *testing.T) {
	if got := CleanRequestID("abc-123"); got != "abc-123" {
		t.Errorf("clean ID mangled: %q", got)
	}
	long := strings.Repeat("a", MaxRequestIDLen+40)
	if got := CleanRequestID(long); len(got) != MaxRequestIDLen {
		t.Errorf("oversize ID truncated to %d, want %d", len(got), MaxRequestIDLen)
	}
	for _, bad := range []string{"a\nb", "a\x00b", "a\x7fb", "evil\r\nSet-Cookie: x"} {
		if got := CleanRequestID(bad); got != "" {
			t.Errorf("control characters must reject the whole ID, got %q from %q", got, bad)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := ParseTraceparent("00-" + traceID + "-00f067aa0ba902b7-01"); got != traceID {
		t.Errorf("valid traceparent: got %q", got)
	}
	for _, bad := range []string{
		"",
		"garbage",
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // all-zero trace-id
		"00-shorttraceid-00f067aa0ba902b7-01",
		"00-" + traceID + "-shortparent-01",
		"zz-" + traceID + "-00f067aa0ba902b7-01",
	} {
		if got := ParseTraceparent(bad); got != "" {
			t.Errorf("ParseTraceparent(%q) = %q, want \"\"", bad, got)
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	p := NewP2Quantile(0.5)
	if p.Value() != 0 {
		t.Fatal("empty estimator must report 0")
	}
	for _, v := range []float64{9, 1, 5} {
		p.Observe(v)
	}
	// Under five samples the estimate is read off the sorted set.
	if got := p.Value(); got != 5 {
		t.Fatalf("median of {1,5,9} = %v, want 5", got)
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d, want 3", p.Count())
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	samples := make([]float64, n)
	p50 := NewP2Quantile(0.5)
	p99 := NewP2Quantile(0.99)
	for i := range samples {
		v := rng.Float64()
		samples[i] = v
		p50.Observe(v)
		p99.Observe(v)
	}
	sort.Float64s(samples)
	exact50 := samples[n/2]
	exact99 := samples[n*99/100]
	if got := p50.Value(); got < exact50-0.02 || got > exact50+0.02 {
		t.Errorf("p50 estimate %v vs exact %v", got, exact50)
	}
	if got := p99.Value(); got < exact99-0.02 || got > exact99+0.02 {
		t.Errorf("p99 estimate %v vs exact %v", got, exact99)
	}
}

func TestSLOTrackerDisabled(t *testing.T) {
	if tr := NewSLOTracker(SLOConfig{}); tr != nil {
		t.Fatal("zero config must yield a nil tracker")
	}
	if tr := NewSLOTracker(SLOConfig{Threshold: time.Second}); tr != nil {
		t.Fatal("config without a target must yield a nil tracker")
	}
	if (SLOConfig{Threshold: time.Second, Target: 0.99}).Enabled() != true {
		t.Fatal("threshold+target must enable")
	}
}

func TestSLOTrackerBurnAndReady(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Threshold: 10 * time.Millisecond, Target: 0.9,
		UnreadyBurn: 2.0, MinSamples: 5,
	})
	// Deterministic clock, advanced by hand.
	clock := time.Unix(1_000_000, 0)
	tr.now = func() time.Time { return clock }

	for i := 0; i < 10; i++ {
		tr.Observe(5 * time.Millisecond) // within objective
	}
	if ready, burn := tr.Ready(); !ready || burn != 0 {
		t.Fatalf("all-ok window: ready=%v burn=%v, want ready at 0", ready, burn)
	}

	for i := 0; i < 10; i++ {
		tr.Observe(50 * time.Millisecond) // breach
	}
	// 10/20 breached against a 10% budget: burn 5.0, past UnreadyBurn.
	if ready, burn := tr.Ready(); ready || burn < 4.9 || burn > 5.1 {
		t.Fatalf("burning window: ready=%v burn=%v, want unready near 5.0", ready, burn)
	}
	if total, breach := tr.WindowCounts(); total != 20 || breach != 10 {
		t.Fatalf("window counts = %v/%v, want 20/10", breach, total)
	}
	if total, breach := tr.Totals(); total != 20 || breach != 10 {
		t.Fatalf("lifetime counts = %v/%v, want 20/10", breach, total)
	}

	// Sliding past the window forgets the burn: ready again.
	clock = clock.Add(2 * sloWindowSecs * time.Second)
	if ready, burn := tr.Ready(); !ready || burn != 0 {
		t.Fatalf("after the window slid: ready=%v burn=%v, want ready at 0", ready, burn)
	}
	if total, breach := tr.Totals(); total != 20 || breach != 10 {
		t.Fatalf("lifetime counts must survive rotation, got %v/%v", breach, total)
	}
}

func TestSLOTrackerMinSamples(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Threshold: time.Nanosecond, Target: 0.5, MinSamples: 10,
	})
	clock := time.Unix(2_000_000, 0)
	tr.now = func() time.Time { return clock }
	// Every request breaches, but a thin window must not declare
	// unreadiness — one slow request on an idle server is not an
	// incident.
	for i := 0; i < 9; i++ {
		tr.Observe(time.Second)
	}
	if ready, _ := tr.Ready(); !ready {
		t.Fatal("under MinSamples the tracker must stay ready")
	}
	tr.Observe(time.Second)
	if ready, burn := tr.Ready(); ready || burn < 2 {
		t.Fatalf("at MinSamples with full burn: ready=%v burn=%v", ready, burn)
	}
}

func TestStagesObserveGatesTails(t *testing.T) {
	s := NewStages("u32", SLOConfig{})
	var b StageBreakdown
	b[StageQueue] = time.Millisecond

	// A refusal (ok=false) feeds the stage histograms but must not
	// drag the tail estimators: a fast 429 cannot lower p50.
	s.Observe(b, time.Hour, 0, false)
	if p50, _, _ := s.Quantiles(); p50 != 0 {
		t.Fatalf("refusals fed the tails: p50=%v", p50)
	}
	if _, count := s.StageSeconds(StageQueue); count != 1 {
		t.Fatalf("stage histogram must see all outcomes, count=%d", count)
	}

	s.Observe(b, 2*time.Second, 0, true)
	if p50, _, _ := s.Quantiles(); p50 != 2 {
		t.Fatalf("served request must feed the tails: p50=%v, want 2", p50)
	}

	if s.Negatives() != 0 {
		t.Fatal("no clamps yet")
	}
	s.Observe(b, time.Second, 3, true)
	if s.Negatives() != 3 {
		t.Fatalf("Negatives = %d, want 3", s.Negatives())
	}
}

// TestStagesPromPreRegistered: every request-scoped series is present
// at zero on a fresh server — dashboards and alerts never face
// absent-vs-zero ambiguity (satellite: pre-register all new series).
func TestStagesPromPreRegistered(t *testing.T) {
	s := NewStages("kv64", SLOConfig{Threshold: 50 * time.Millisecond, Target: 0.99})
	var buf bytes.Buffer
	if err := s.WriteProm(&buf, true); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`parbitonic_serve_stage_seconds_bucket{elem="kv64",stage="queue",le="+Inf"} 0`,
		`parbitonic_serve_stage_seconds_bucket{elem="kv64",stage="batch",le="+Inf"} 0`,
		`parbitonic_serve_stage_seconds_bucket{elem="kv64",stage="engine",le="+Inf"} 0`,
		`parbitonic_serve_stage_seconds_bucket{elem="kv64",stage="retry",le="+Inf"} 0`,
		`parbitonic_serve_stage_seconds_bucket{elem="kv64",stage="copyout",le="+Inf"} 0`,
		`parbitonic_serve_stage_negative_total{elem="kv64"} 0`,
		`parbitonic_serve_latency_quantile_seconds{elem="kv64",q="0.5"} 0`,
		`parbitonic_serve_latency_quantile_seconds{elem="kv64",q="0.99"} 0`,
		`parbitonic_serve_slo_burn_rate{elem="kv64"} 0`,
		`parbitonic_serve_slo_requests_total{elem="kv64",verdict="ok"} 0`,
		`parbitonic_serve_slo_requests_total{elem="kv64",verdict="breach"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fresh exposition missing %q", want)
		}
	}
	// A non-head exposition (Gateway merge) drops the HELP/TYPE lines.
	buf.Reset()
	if err := s.WriteProm(&buf, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# HELP") {
		t.Error("headerless exposition still carries HELP lines")
	}
}

func TestRuntimeHealth(t *testing.T) {
	rh := NewRuntimeHealth()
	var buf bytes.Buffer
	if err := rh.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"parbitonic_runtime_heap_bytes",
		"parbitonic_runtime_goroutines",
		"parbitonic_runtime_gc_cycles_total",
		`parbitonic_runtime_gc_pause_seconds{q="0.99"}`,
		`parbitonic_runtime_sched_latency_seconds{q="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("runtime health exposition missing %q", want)
		}
	}
	snap := rh.Snapshot()
	for _, key := range []string{"heap_bytes", "goroutines", "gc_cycles", "gc_pause_p99_s", "sched_latency_p99_s"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("Snapshot missing %q", key)
		}
	}
}
