package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage identifies where a request's wall-clock time went inside the
// serve pipeline — the request-scoped analogue of Phase, which
// attributes engine time inside one run. The five stages partition a
// request's life from admission to response delivery.
type Stage uint8

// The stages, in pipeline order.
const (
	// StageQueue is admission-queue wait: enqueue to dispatcher pull.
	StageQueue Stage = iota
	// StageBatch is coalescing and executor wait: dispatcher pull to
	// engine-run start (the batching window plus any wait for a free
	// executor, plus input packing).
	StageBatch
	// StageEngine is time inside engine runs, summed across retry
	// attempts (degraded-fallback serving time also lands here).
	StageEngine
	// StageRetry is retry backoff: the deliberate sleeps between
	// failed attempts.
	StageRetry
	// StageCopyOut is result extraction: un-tagging and copying the
	// request's slice out of the shared batch buffer.
	StageCopyOut
	// NumStages is the count of stage values, for dense tables.
	NumStages
)

// String returns the lowercase stage name used in metric labels and
// the sortz page.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageBatch:
		return "batch"
	case StageEngine:
		return "engine"
	case StageRetry:
		return "retry"
	case StageCopyOut:
		return "copyout"
	}
	return "unknown"
}

// StageBreakdown is one request's per-stage wall-clock attribution.
type StageBreakdown [NumStages]time.Duration

// Sum returns the summed stage time; it should approach the request's
// end-to-end latency (the residue is scheduler handoff between hops).
func (b StageBreakdown) Sum() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// tailQuantiles are the tail points the streaming estimators track.
var tailQuantiles = [...]float64{0.50, 0.95, 0.99}

// Stages aggregates request-scoped latency telemetry for one element
// type: per-stage histograms, streaming p50/p95/p99 estimators of
// end-to-end latency, the negative-duration clamp counter (which a
// healthy monotonic pipeline keeps at zero), and the optional SLO
// burn-rate tracker. Safe for concurrent use.
type Stages struct {
	mu        sync.Mutex
	elem      string
	hist      [NumStages]histogram // stage durations, seconds
	negatives uint64               // clamped negative stage readings
	tails     [len(tailQuantiles)]*P2Quantile
	slo       *SLOTracker // nil when no objective is configured
}

// NewStages builds the per-element-type request telemetry aggregate;
// slo may be the zero SLOConfig to disable objective tracking.
func NewStages(elem string, slo SLOConfig) *Stages {
	s := &Stages{elem: elem, slo: NewSLOTracker(slo)}
	for i, q := range tailQuantiles {
		s.tails[i] = NewP2Quantile(q)
	}
	return s
}

// Observe folds one completed request in: its stage breakdown, its
// end-to-end latency, and how many of its stage readings had to be
// clamped from negative to zero (always 0 on a healthy monotonic
// clock; counted so CI can gate on it). ok marks a served request
// (including degraded fallbacks): only those feed the tail estimators
// and the SLO window — a fast 429 must not lower p50, and a latency
// objective judges service, not refusals.
func (s *Stages) Observe(b StageBreakdown, total time.Duration, negClamped int, ok bool) {
	s.mu.Lock()
	for st := Stage(0); st < NumStages; st++ {
		s.hist[st].observe(b[st].Seconds())
	}
	s.negatives += uint64(negClamped)
	if ok {
		for _, t := range s.tails {
			t.Observe(total.Seconds())
		}
		if s.slo != nil {
			s.slo.Observe(total)
		}
	}
	s.mu.Unlock()
}

// Quantiles returns the live p50/p95/p99 end-to-end latency estimates
// in seconds.
func (s *Stages) Quantiles() (p50, p95, p99 float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tails[0].Value(), s.tails[1].Value(), s.tails[2].Value()
}

// Negatives returns how many stage readings were clamped from
// negative.
func (s *Stages) Negatives() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.negatives
}

// StageSeconds returns one stage's total observed seconds and its
// observation count.
func (s *Stages) StageSeconds(st Stage) (seconds float64, count uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st >= NumStages {
		return 0, 0
	}
	return s.hist[st].sum, s.hist[st].count
}

// SLOReady reports readiness under the configured objective and the
// current burn rate; a Stages with no objective is always ready at
// burn 0.
func (s *Stages) SLOReady() (bool, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return true, 0
	}
	return s.slo.Ready()
}

// SLOConfigured returns the tracked objective and whether one exists.
func (s *Stages) SLOConfigured() (SLOConfig, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return SLOConfig{}, false
	}
	return s.slo.Config(), true
}

// WriteProm writes the request-scoped series in the Prometheus text
// exposition format. headers controls the HELP/TYPE lines (the
// Gateway's per-element scrapes emit them once). Every series is
// emitted unconditionally — stage histograms for all five stages, the
// negative counter, the tail gauges and the SLO pair — so dashboards
// never face absent-vs-zero ambiguity.
func (s *Stages) WriteProm(w io.Writer, headers bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			if !headers && len(format) > 0 && format[0] == '#' {
				return
			}
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP parbitonic_serve_stage_seconds Per-request wall time by pipeline stage (queue wait, batch coalesce, engine, retry backoff, copy-out).\n")
	p("# TYPE parbitonic_serve_stage_seconds histogram\n")
	for st := Stage(0); st < NumStages; st++ {
		h := &s.hist[st]
		label := fmt.Sprintf("elem=%q,stage=%q", s.elem, st)
		cum := uint64(0)
		for i, ub := range histBuckets {
			cum += h.counts[i]
			p("parbitonic_serve_stage_seconds_bucket{%s,le=\"%g\"} %d\n", label, ub, cum)
		}
		p("parbitonic_serve_stage_seconds_bucket{%s,le=\"+Inf\"} %d\n", label, h.count)
		p("parbitonic_serve_stage_seconds_sum{%s} %v\n", label, h.sum)
		p("parbitonic_serve_stage_seconds_count{%s} %d\n", label, h.count)
	}

	p("# HELP parbitonic_serve_stage_negative_total Stage readings clamped from negative to zero (must stay 0; a monotonic pipeline never produces one).\n")
	p("# TYPE parbitonic_serve_stage_negative_total counter\n")
	p("parbitonic_serve_stage_negative_total{elem=%q} %d\n", s.elem, s.negatives)

	p("# HELP parbitonic_serve_latency_quantile_seconds Streaming end-to-end latency tail estimates (P-square).\n")
	p("# TYPE parbitonic_serve_latency_quantile_seconds gauge\n")
	for i, q := range tailQuantiles {
		p("parbitonic_serve_latency_quantile_seconds{elem=%q,q=\"%g\"} %v\n", s.elem, q, sanitize(s.tails[i].Value()))
	}

	p("# HELP parbitonic_serve_slo_burn_rate Error-budget burn rate over the sliding window (0 when no objective is configured).\n")
	p("# TYPE parbitonic_serve_slo_burn_rate gauge\n")
	burn := 0.0
	var sloTotal, sloBreach float64
	if s.slo != nil {
		burn = s.slo.BurnRate()
		sloTotal, sloBreach = s.slo.Totals()
	}
	p("parbitonic_serve_slo_burn_rate{elem=%q} %v\n", s.elem, sanitize(burn))

	p("# HELP parbitonic_serve_slo_requests_total Requests judged against the latency objective, by verdict.\n")
	p("# TYPE parbitonic_serve_slo_requests_total counter\n")
	p("parbitonic_serve_slo_requests_total{elem=%q,verdict=\"ok\"} %v\n", s.elem, sloTotal-sloBreach)
	p("parbitonic_serve_slo_requests_total{elem=%q,verdict=\"breach\"} %v\n", s.elem, sloBreach)

	return err
}
