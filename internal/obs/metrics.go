package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
)

// histBuckets are the upper bounds, in seconds, of the phase- and
// run-time histograms: log-spaced from 1 µs (a single short phase) to
// 10 s (a large native sort), which covers both the simulator's
// virtual microseconds and native wall times.
var histBuckets = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

const numHistBuckets = 8 // len(histBuckets); array lengths must be constants

// histogram is a fixed-bucket cumulative histogram in the Prometheus
// sense: counts[i] counts observations <= histBuckets[i]; overflow
// lands only in the implicit +Inf bucket (count).
type histogram struct {
	counts [numHistBuckets + 1]uint64 // last slot = +Inf overflow
	sum    float64
	count  uint64
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(histBuckets[:], v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// knownEventKinds are pre-registered so a scrape always exposes the
// fault/verify/cancel counter families at zero — Prometheus treats an
// absent series and a zero series very differently for alerting.
var knownEventKinds = []string{
	EventFault, EventVerifyFailure, EventCancel, EventDeadline, EventPanic, EventAbort,
	EventOverload, EventRetry, EventQuarantine, EventBreaker, EventDegraded, EventPlan,
}

// Metrics is a Sink that aggregates the telemetry stream into
// Prometheus-style counters and histograms, exposed three ways: the
// text exposition format (WriteProm / ServeHTTP, scrapeable at
// /metrics), an expvar.Func for /debug/vars, and direct accessor
// methods for tests and programmatic inspection.
type Metrics struct {
	mu       sync.Mutex
	runs     map[string]float64 // outcome ("ok"/"error") -> runs
	events   map[string]float64 // event kind -> count
	keys     float64            // keys sorted, successful runs
	remaps   float64            // per-processor remap rounds, summed
	volume   float64            // keys sent between processors
	messages float64

	phase    [NumPhases]histogram // span durations by phase, seconds
	makespan histogram            // run makespan, backend-clock seconds
	wall     histogram            // run wall duration, seconds
}

// NewMetrics returns a Metrics sink with all known counter families
// pre-registered at zero.
func NewMetrics() *Metrics {
	m := &Metrics{
		runs:   map[string]float64{"ok": 0, "error": 0},
		events: map[string]float64{},
	}
	for _, k := range knownEventKinds {
		m.events[k] = 0
	}
	return m
}

// RunStart implements Sink as a no-op; runs are counted at RunEnd.
func (m *Metrics) RunStart(RunMeta) {}

// FlushSpans implements Sink: span durations feed the per-phase
// histograms (converted µs -> seconds).
func (m *Metrics) FlushSpans(_ int, spans []Span) {
	m.mu.Lock()
	for _, s := range spans {
		if s.Phase < NumPhases {
			m.phase[s.Phase].observe(s.Duration() / 1e6) // µs -> s
		}
	}
	m.mu.Unlock()
}

// Emit implements Sink: events bump the per-kind counters.
func (m *Metrics) Emit(e Event) {
	m.mu.Lock()
	m.events[e.Kind]++
	m.mu.Unlock()
}

// RunEnd implements Sink: it counts the run by outcome and folds the
// summary into the cumulative totals.
func (m *Metrics) RunEnd(s RunSummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.Err != "" {
		m.runs["error"]++
		return
	}
	m.runs["ok"]++
	m.keys += float64(s.Keys)
	m.remaps += float64(s.Remaps)
	m.volume += float64(s.Volume)
	m.messages += float64(s.Messages)
	m.makespan.observe(s.Makespan / 1e6)
	m.wall.observe(s.WallSeconds)
}

// EventCount returns the count of one event kind.
func (m *Metrics) EventCount(kind string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events[kind]
}

// RunCount returns the number of runs with the given outcome
// ("ok" or "error").
func (m *Metrics) RunCount(outcome string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs[outcome]
}

// PhaseSeconds returns the total observed time of one phase, in
// seconds, and the number of spans observed.
func (m *Metrics) PhaseSeconds(p Phase) (seconds float64, spans uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p >= NumPhases {
		return 0, 0
	}
	return m.phase[p].sum, m.phase[p].count
}

// WriteProm writes the metrics in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP parbitonic_runs_total Completed sort runs by outcome.\n")
	p("# TYPE parbitonic_runs_total counter\n")
	for _, outcome := range sortedKeys(m.runs) {
		p("parbitonic_runs_total{outcome=%q} %v\n", outcome, m.runs[outcome])
	}

	p("# HELP parbitonic_events_total Runtime events by kind: injected faults, verification failures, cancellations, deadlines, panics, aborts.\n")
	p("# TYPE parbitonic_events_total counter\n")
	for _, kind := range sortedKeys(m.events) {
		p("parbitonic_events_total{kind=%q} %v\n", kind, m.events[kind])
	}

	p("# HELP parbitonic_keys_sorted_total Keys sorted by successful runs.\n")
	p("# TYPE parbitonic_keys_sorted_total counter\n")
	p("parbitonic_keys_sorted_total %v\n", m.keys)

	p("# HELP parbitonic_remaps_total Remap rounds participated in, summed over processors (the paper's R).\n")
	p("# TYPE parbitonic_remaps_total counter\n")
	p("parbitonic_remaps_total %v\n", m.remaps)

	p("# HELP parbitonic_volume_keys_total Keys sent between processors (the paper's V).\n")
	p("# TYPE parbitonic_volume_keys_total counter\n")
	p("parbitonic_volume_keys_total %v\n", m.volume)

	p("# HELP parbitonic_messages_total Messages sent between processors (the paper's M).\n")
	p("# TYPE parbitonic_messages_total counter\n")
	p("parbitonic_messages_total %v\n", m.messages)

	p("# HELP parbitonic_phase_seconds Span durations by phase, backend-clock seconds.\n")
	p("# TYPE parbitonic_phase_seconds histogram\n")
	for ph := Phase(0); ph < NumPhases; ph++ {
		writeHist(p, "parbitonic_phase_seconds", fmt.Sprintf("phase=%q", ph), &m.phase[ph])
	}

	p("# HELP parbitonic_run_makespan_seconds Run makespan on the backend clock, seconds.\n")
	p("# TYPE parbitonic_run_makespan_seconds histogram\n")
	writeHist(p, "parbitonic_run_makespan_seconds", "", &m.makespan)

	p("# HELP parbitonic_run_wall_seconds Measured wall duration of runs, seconds.\n")
	p("# TYPE parbitonic_run_wall_seconds histogram\n")
	writeHist(p, "parbitonic_run_wall_seconds", "", &m.wall)

	return err
}

func writeHist(p func(string, ...any), name, label string, h *histogram) {
	sep := ""
	if label != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, ub := range histBuckets {
		cum += h.counts[i]
		p("%s_bucket{%s%sle=\"%g\"} %d\n", name, label, sep, ub, cum)
	}
	p("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, label, sep, h.count)
	if label != "" {
		label = "{" + label + "}"
	}
	p("%s_sum%s %v\n", name, label, h.sum)
	p("%s_count%s %d\n", name, label, h.count)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP serves the Prometheus exposition — mount at /metrics.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.WriteProm(w)
}

// ExpvarFunc returns an expvar.Func exposing a snapshot of all
// counters and per-phase totals, suitable for expvar.Publish or a
// /debug/vars handler.
func (m *Metrics) ExpvarFunc() expvar.Func {
	return func() any {
		m.mu.Lock()
		defer m.mu.Unlock()
		phases := map[string]any{}
		for ph := Phase(0); ph < NumPhases; ph++ {
			phases[ph.String()] = map[string]any{
				"seconds": sanitize(m.phase[ph].sum),
				"spans":   m.phase[ph].count,
			}
		}
		return map[string]any{
			"runs":        copyMap(m.runs),
			"events":      copyMap(m.events),
			"keys_sorted": m.keys,
			"remaps":      m.remaps,
			"volume_keys": m.volume,
			"messages":    m.messages,
			"phase":       phases,
		}
	}
}

func copyMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Handler returns an http.Handler serving the Prometheus exposition at
// /metrics and the expvar JSON dump at /debug/vars (the metrics appear
// under the "parbitonic" key, without touching the process-global
// expvar registry).
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m)
	vars := m.ExpvarFunc()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n%q: %s\n}\n", "parbitonic", vars.String())
	})
	return mux
}
