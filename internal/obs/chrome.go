package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ChromeTrace is a Sink that accumulates spans and events and writes
// them as Chrome trace-event JSON — the format chrome://tracing and
// Perfetto (ui.perfetto.dev) load directly. Each processor becomes one
// named track (tid), each span a complete ("X") event carrying its
// remap round, and each runtime event an instant ("i") marker, so a
// sort renders as the per-processor Gantt chart of Figure 5.4 with
// real zoom and span inspection instead of 80 ASCII buckets.
type ChromeTrace struct {
	mu     sync.Mutex
	meta   RunMeta
	hasRun bool
	spans  []Span
	events []Event
}

// NewChromeTrace returns an empty collector.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// RunStart implements Sink: it records the run's metadata for the
// trace header.
func (c *ChromeTrace) RunStart(m RunMeta) {
	c.mu.Lock()
	c.meta = m
	c.hasRun = true
	c.mu.Unlock()
}

// FlushSpans implements Sink: it copies the spans into the trace.
func (c *ChromeTrace) FlushSpans(_ int, spans []Span) {
	c.mu.Lock()
	c.spans = append(c.spans, spans...)
	c.mu.Unlock()
}

// Emit implements Sink: events become instant markers on the trace.
func (c *ChromeTrace) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// RunEnd implements Sink as a no-op; the trace is rendered on demand
// by WriteTo.
func (c *ChromeTrace) RunEnd(RunSummary) {}

// Reset discards everything collected so far.
func (c *ChromeTrace) Reset() {
	c.mu.Lock()
	c.meta, c.hasRun = RunMeta{}, false
	c.spans, c.events = nil, nil
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans, ordered by processor
// then start time.
func (c *ChromeTrace) Spans() []Span {
	c.mu.Lock()
	out := append([]Span(nil), c.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Events returns a copy of the collected runtime events in emission
// order.
func (c *ChromeTrace) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// chromeEvent is one entry of the traceEvents array; field names are
// fixed by the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the collected trace as a Chrome trace-event JSON
// object. Timestamps are the spans' backend-clock microseconds (the
// format's native unit), so the rendered timeline is the virtual-time
// schedule under the simulator and the measured one under the native
// backend.
func (c *ChromeTrace) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	meta, hasRun := c.meta, c.hasRun
	spans := append([]Span(nil), c.spans...)
	events := append([]Event(nil), c.events...)
	c.mu.Unlock()

	procs := meta.P
	for _, s := range spans {
		if s.Proc >= procs {
			procs = s.Proc + 1
		}
	}

	out := make([]chromeEvent, 0, len(spans)+len(events)+procs+1)
	procName := "parbitonic"
	if hasRun {
		if alg := meta.Labels["alg"]; alg != "" {
			procName += " " + alg
		}
		if bk := meta.Labels["backend"]; bk != "" {
			procName += " (" + bk + ")"
		}
	}
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": procName},
	})
	for p := 0; p < procs; p++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", p)},
		})
	}
	for _, s := range spans {
		dur := s.Duration()
		out = append(out, chromeEvent{
			Name: s.Phase.String(), Cat: "phase", Ph: "X",
			Pid: 0, Tid: s.Proc, Ts: s.Start, Dur: &dur,
			Args: map[string]any{"round": s.Round},
		})
	}
	for _, e := range events {
		tid := e.Proc
		if tid < 0 {
			tid = 0
		}
		out = append(out, chromeEvent{
			Name: e.Kind, Cat: "event", Ph: "i",
			Pid: 0, Tid: tid, Ts: e.Clock, S: "g",
			Args: map[string]any{"detail": e.Detail, "round": e.Round},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}
