package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ChromeTrace is a Sink that accumulates spans and events and writes
// them as Chrome trace-event JSON — the format chrome://tracing and
// Perfetto (ui.perfetto.dev) load directly. Each processor becomes one
// named track (tid), each span a complete ("X") event carrying its
// remap round, and each runtime event an instant ("i") marker, so a
// sort renders as the per-processor Gantt chart of Figure 5.4 with
// real zoom and span inspection instead of 80 ASCII buckets.
type ChromeTrace struct {
	mu     sync.Mutex
	meta   RunMeta
	hasRun bool
	spans  []Span
	events []Event
}

// NewChromeTrace returns an empty collector.
func NewChromeTrace() *ChromeTrace { return &ChromeTrace{} }

// RunStart implements Sink: it records the run's metadata for the
// trace header.
func (c *ChromeTrace) RunStart(m RunMeta) {
	c.mu.Lock()
	c.meta = m
	c.hasRun = true
	c.mu.Unlock()
}

// FlushSpans implements Sink: it copies the spans into the trace.
func (c *ChromeTrace) FlushSpans(_ int, spans []Span) {
	c.mu.Lock()
	c.spans = append(c.spans, spans...)
	c.mu.Unlock()
}

// Emit implements Sink: events become instant markers on the trace.
func (c *ChromeTrace) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// RunEnd implements Sink as a no-op; the trace is rendered on demand
// by WriteTo.
func (c *ChromeTrace) RunEnd(RunSummary) {}

// Reset discards everything collected so far.
func (c *ChromeTrace) Reset() {
	c.mu.Lock()
	c.meta, c.hasRun = RunMeta{}, false
	c.spans, c.events = nil, nil
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans, ordered by processor
// then start time.
func (c *ChromeTrace) Spans() []Span {
	c.mu.Lock()
	out := append([]Span(nil), c.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Events returns a copy of the collected runtime events in emission
// order.
func (c *ChromeTrace) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// chromeEvent is one entry of the traceEvents array; field names are
// fixed by the trace-event format. ID and BP serve the flow events
// ("s"/"f") that tie coalesced request IDs to the engine run that
// served them.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Virtual tracks of the rendered trace: engine processors occupy tids
// 0..P-1; service-level spans (degraded fallbacks) and the per-request
// flow anchors get their own named tracks below them.
const (
	serviceTid  = -1
	requestsTid = -2
)

// WriteJSON writes the collected trace as a Chrome trace-event JSON
// object. Timestamps are the spans' backend-clock microseconds (the
// format's native unit), so the rendered timeline is the virtual-time
// schedule under the simulator and the measured one under the native
// backend.
func (c *ChromeTrace) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	meta, hasRun := c.meta, c.hasRun
	spans := append([]Span(nil), c.spans...)
	events := append([]Event(nil), c.events...)
	c.mu.Unlock()

	procs := meta.P
	for _, s := range spans {
		if s.Proc >= procs {
			procs = s.Proc + 1
		}
	}

	out := make([]chromeEvent, 0, len(spans)+len(events)+procs+1)
	procName := "parbitonic"
	if hasRun {
		if alg := meta.Labels["alg"]; alg != "" {
			procName += " " + alg
		}
		if bk := meta.Labels["backend"]; bk != "" {
			procName += " (" + bk + ")"
		}
	}
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": procName},
	})
	for p := 0; p < procs; p++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", p)},
		})
	}

	// Run span bounds, for the per-request flow anchors.
	var runStart, runEnd float64
	service := false
	for i, s := range spans {
		if i == 0 || s.Start < runStart {
			runStart = s.Start
		}
		if s.End > runEnd {
			runEnd = s.End
		}
		if s.Proc < 0 {
			service = true
		}
	}
	if service {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: serviceTid,
			Args: map[string]any{"name": "service"},
		})
	}

	// Flow events: one track row per owning request, with an s→f flow
	// arrow from the request's anchor into processor 0's timeline, so a
	// coalesced batch renders as N request rows all feeding the single
	// engine run that served them.
	if hasRun && len(meta.Requests) > 0 {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: requestsTid,
			Args: map[string]any{"name": "requests"},
		})
		span := runEnd - runStart
		for i, id := range meta.Requests {
			args := map[string]any{"request_id": id}
			out = append(out, chromeEvent{
				Name: "req " + id, Cat: "request", Ph: "X",
				Pid: 0, Tid: requestsTid, Ts: runStart, Dur: &span, Args: args,
			})
			out = append(out, chromeEvent{
				Name: "request", Cat: "request", Ph: "s", ID: i + 1,
				Pid: 0, Tid: requestsTid, Ts: runStart, Args: args,
			})
			out = append(out, chromeEvent{
				Name: "request", Cat: "request", Ph: "f", BP: "e", ID: i + 1,
				Pid: 0, Tid: 0, Ts: runStart + span/2, Args: args,
			})
		}
	}

	for _, s := range spans {
		dur := s.Duration()
		tid := s.Proc
		if tid < 0 {
			tid = serviceTid
		}
		args := map[string]any{"round": s.Round}
		if s.Req != "" {
			args["request_id"] = s.Req
		}
		out = append(out, chromeEvent{
			Name: s.Phase.String(), Cat: "phase", Ph: "X",
			Pid: 0, Tid: tid, Ts: s.Start, Dur: &dur,
			Args: args,
		})
	}
	for _, e := range events {
		tid := e.Proc
		if tid < 0 {
			tid = 0
		}
		args := map[string]any{"detail": e.Detail, "round": e.Round}
		if e.Req != "" {
			args["request_id"] = e.Req
		}
		out = append(out, chromeEvent{
			Name: e.Kind, Cat: "event", Ph: "i",
			Pid: 0, Tid: tid, Ts: e.Clock, S: "g",
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}
