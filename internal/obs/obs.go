// Package obs is the observability layer of the SPMD runtime: a
// stdlib-only telemetry fabric the execution engine (internal/spmd)
// streams span, counter and run-lifecycle data into, and a set of
// exporters that turn the stream into the formats operators actually
// consume — Chrome trace-event JSON (Perfetto), Prometheus text
// exposition + expvar, and log/slog structured run logs.
//
// The design goal is that the paper's quantitative argument — remap
// count R, volume V, messages M, and the LogGP remap time
// T = (L+2o-g)R + GV + (g-G)M (§3.4) — stays observable in production:
// every phase of every remap round of every processor becomes a Span,
// every failure (fault injection, verification, cancellation, panic)
// becomes a counted Event, and every run opens and closes with
// RunStart/RunEnd carrying the aggregate counters the closed-form
// model predicts.
//
// Overhead discipline: the engine buffers spans per processor and
// flushes at barriers, so a Sink sees batched FlushSpans calls rather
// than per-span calls and the hot path takes no locks. Sinks must
// therefore be safe for concurrent use (flushes arrive from all
// processor goroutines); the spans slice passed to FlushSpans is
// reused by the caller and must be copied if retained. A nil sink (or
// the Nop sink) disables everything.
package obs

import "time"

// Phase identifies what a processor was doing during a span. The
// values mirror the phase taxonomy of the runtime (and of the paper's
// Figures 5.4/5.6 phase breakdowns), plus Abort for unwound work.
type Phase uint8

// The phases, in the order a remap round passes through them; Wait is
// barrier idle time and Abort is work unwound by a failed run.
const (
	PhaseCompute Phase = iota
	PhasePack
	PhaseTransfer
	PhaseUnpack
	PhaseWait
	PhaseAbort
	// PhaseDegraded is service time on the sequential degraded-mode
	// fallback (internal/serve): no processor ran it, but the work is
	// real and belongs on the request's timeline.
	PhaseDegraded
	NumPhases // count of phase values, for dense per-phase tables
)

// String returns the lowercase phase name used in metric labels and
// trace tracks.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhasePack:
		return "pack"
	case PhaseTransfer:
		return "transfer"
	case PhaseUnpack:
		return "unpack"
	case PhaseWait:
		return "wait"
	case PhaseAbort:
		return "abort"
	case PhaseDegraded:
		return "degraded"
	}
	return "unknown"
}

// Span is one completed phase of one processor. Start and End are on
// the backend clock in microseconds — virtual model time under the
// simulator, measured wall time under the native backend — so a span
// stream from either backend renders on one consistent timeline. Wall
// is the wall-clock instant (unix nanoseconds) the span was recorded,
// which under the simulator is the only real-time anchor.
type Span struct {
	Proc  int     // processor that executed the phase; -1 for service-level spans
	Round int     // remap rounds completed by the processor when the span ended
	Phase Phase   // what the processor was doing
	Start float64 // backend clock, µs
	End   float64 // backend clock, µs
	Wall  int64   // wall clock at record time, unix nanoseconds
	Req   string  // owning request ID, when the span is request-scoped (service-level spans like degraded fallbacks); "" for engine phase spans, whose run-level linkage lives in RunMeta.Requests
}

// Duration returns the span length in backend-clock microseconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Event kinds emitted by the runtime. Sinks should treat unknown kinds
// as opaque counters — the set may grow.
const (
	EventFault         = "fault"          // an injected fault fired (internal/fault)
	EventVerifyFailure = "verify-failure" // post-sort verification rejected the output
	EventCancel        = "cancel"         // run aborted by context cancellation
	EventDeadline      = "deadline"       // run aborted by context deadline
	EventPanic         = "panic"          // a processor body panicked
	EventAbort         = "abort"          // generic abort (cause in Detail)
	EventOverload      = "overload"       // a request was shed at admission (internal/serve)
	EventRetry         = "retry"          // a failed run was retried (internal/serve)
	EventQuarantine    = "quarantine"     // an engine was destroyed instead of recycled
	EventBreaker       = "breaker"        // a circuit breaker changed state (Detail: from>to)
	EventDegraded      = "degraded"       // a request was served by the sequential fallback
	EventPlan          = "plan"           // the autotuner chose an execution plan (Detail: the plan)
)

// Event is a discrete runtime occurrence worth counting and alerting
// on: faults firing, verification failures, cancellations, panics.
type Event struct {
	Kind   string  // one of the Event* constants
	Proc   int     // processor at fault; -1 when not attributable
	Round  int     // remap round, when meaningful
	Clock  float64 // backend clock at emission, µs; 0 when unknown
	Detail string  // human-readable cause, e.g. the error string
	Wall   int64   // unix nanoseconds
	Req    string  // owning request ID(s), comma-joined for a batch; "" when not request-scoped
}

// RunMeta opens a run: machine size, total keys, and the static labels
// (algorithm, backend, ...) the caller attached.
type RunMeta struct {
	P        int               // processor count
	Keys     int               // total key count
	Labels   map[string]string // read-only; shared across calls
	Start    time.Time         // wall-clock start of the run
	Requests []string          // owning request IDs from the run context (RequestIDsFrom): one for a solo request, N for a coalesced batch, nil outside the serve layer
}

// RunSummary closes a run with the aggregate counters of the
// completed (or failed) execution. Counter fields are summed over all
// processors; time fields are backend-clock microseconds.
type RunSummary struct {
	Err         string  // "" on success
	Makespan    float64 // maximum final processor clock, µs
	WallSeconds float64 // measured wall duration of the run
	Keys        int     // total keys sorted
	Remaps      int     // collective remap rounds, summed over processors
	Volume      int     // keys sent to other processors
	Messages    int     // messages sent to other processors

	ComputeTime  float64 // summed local computation
	PackTime     float64 // summed long-message packing
	TransferTime float64 // summed exchange time
	UnpackTime   float64 // summed unpacking
}

// Sink receives the telemetry stream of one or more runs. All methods
// must be safe for concurrent use: FlushSpans and Emit arrive from
// processor goroutines running in parallel.
type Sink interface {
	// RunStart is called once when a run begins.
	RunStart(m RunMeta)
	// FlushSpans delivers a processor's buffered spans, typically at a
	// barrier. The slice is reused by the caller after return — copy to
	// retain.
	FlushSpans(proc int, spans []Span)
	// Emit delivers a discrete event.
	Emit(e Event)
	// RunEnd is called once when the run completes or fails.
	RunEnd(s RunSummary)
}

// Nop is the disabled sink: every method is an empty function. The
// engine also treats a nil Sink as disabled without calling it; Nop
// exists for call sites that want a non-nil default.
type Nop struct{}

// RunStart implements Sink as a no-op.
func (Nop) RunStart(RunMeta) {}

// FlushSpans implements Sink as a no-op.
func (Nop) FlushSpans(int, []Span) {}

// Emit implements Sink as a no-op.
func (Nop) Emit(Event) {}

// RunEnd implements Sink as a no-op.
func (Nop) RunEnd(RunSummary) {}

// Multi fans the stream out to several sinks; nil entries are skipped.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return multi(live)
}

type multi []Sink

func (m multi) RunStart(meta RunMeta) {
	for _, s := range m {
		s.RunStart(meta)
	}
}

func (m multi) FlushSpans(proc int, spans []Span) {
	for _, s := range m {
		s.FlushSpans(proc, spans)
	}
}

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

func (m multi) RunEnd(sum RunSummary) {
	for _, s := range m {
		s.RunEnd(sum)
	}
}
